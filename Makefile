GO ?= go

.PHONY: all build test race lint bench vet fmt clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

lint:
	$(GO) run ./cmd/codalint ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
