GO ?= go

.PHONY: all build test race lint lint-ignores bench bench-json vet fmt clean crash

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# Durability gate: the full crash matrices (power cut at every journal
# write on both ends), torn-tail truncation, and journal-failure
# rejection tests, under the race detector.
crash:
	$(GO) test -race -count=1 -run 'Crash|Torn|Journal|Recovery|Corrupt' \
		./internal/wal/ ./internal/crashfs/ ./internal/venus/ ./internal/server/ ./internal/cml/

# Same wall-clock budget as CI so a local `make lint` catches an
# analysis-time regression before the workflow does.
lint:
	$(GO) run ./cmd/codalint -deadline 60s ./...

# Audit of every //codalint:ignore suppression (file:line, analyzer,
# reason).
lint-ignores:
	$(GO) run ./cmd/codalint -ignores ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# Machine-readable benchmark run: every figure's series plus a
# deterministic metrics-registry snapshot per run, as one JSON file.
bench-json:
	$(GO) run ./cmd/codabench -quick -json bench.json

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
