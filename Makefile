GO ?= go

.PHONY: all build test race lint lint-ignores lint-graph bench bench-json bench-allocs bench-gate bench-baseline vet fmt clean crash scenarios

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# Durability gate: the full crash matrices (power cut at every journal
# write on both ends), torn-tail truncation, and journal-failure
# rejection tests, under the race detector.
crash:
	$(GO) test -race -count=1 -run 'Crash|Torn|Journal|Recovery|Corrupt' \
		./internal/wal/ ./internal/crashfs/ ./internal/venus/ ./internal/server/ ./internal/cml/ ./internal/group/

# Scenario gate: the declarative corpus (parse, validate, run, golden
# dumps, determinism) plus the generated chaos matrix — the crash-point
# x victim x link-churn sweep expanded from crash_matrix.scn — all
# under the race detector. `codascn run` then executes the runnable
# corpus through the CLI path as well.
scenarios:
	$(GO) test -race -count=1 ./internal/scenario/
	$(GO) run ./cmd/codascn validate internal/scenario/testdata/scenarios
	$(GO) run ./cmd/codascn matrix -run internal/scenario/testdata/scenarios/crash_matrix.scn

# Same wall-clock budget as CI so a local `make lint` catches an
# analysis-time regression before the workflow does.
lint:
	$(GO) run ./cmd/codalint -deadline 60s ./...

# Audit of every //codalint:ignore suppression (file:line, analyzer,
# reason).
lint-ignores:
	$(GO) run ./cmd/codalint -ignores ./...

# Whole-program lock-order graph as Graphviz DOT (weak/conditional
# holds dashed). Pipe to `dot -Tsvg` to render.
lint-graph:
	$(GO) run ./cmd/codalint -lockgraph ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# Machine-readable benchmark run: every figure's series plus a
# deterministic metrics-registry snapshot per run, as one JSON file.
bench-json:
	$(GO) run ./cmd/codabench -quick -json bench.json

# Alloc-fenced benchmark sweep. -benchtime=200x fixes the iteration
# count so AllocsPerOp (and B/op, where amortized growth is charged)
# is reproducible run to run — a prerequisite for gating it strictly.
# BenchmarkReplicatedReintegrate rides along: a whole-sim benchmark, but
# deterministic for the same reason, pinning the replicated
# reintegration path's allocation budget.
bench-allocs:
	$(GO) test -run='^$$' -bench='BenchmarkAlloc|BenchmarkReplicatedReintegrate' -benchmem -benchtime=200x ./... | tee bench_allocs.txt

# Perf gate: diff the sweep and the figure series against the
# committed bench_baseline.json. Fails on any AllocsPerOp growth and
# on >threshold_pct regression of B/op or a gated series; writes the
# full comparison table to bench_diff.txt for the CI artifact.
bench-gate: bench-json bench-allocs
	$(GO) run ./cmd/benchgate -baseline bench_baseline.json -bench bench_allocs.txt -json bench.json -diff bench_diff.txt

# Refresh the committed baseline after an intentional perf change.
# Review the resulting bench_baseline.json diff like any other code.
bench-baseline: bench-json bench-allocs
	$(GO) run ./cmd/benchgate -baseline bench_baseline.json -bench bench_allocs.txt -json bench.json -update

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
