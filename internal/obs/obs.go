// Package obs is the repository's deterministic observability layer: a
// stdlib-only metrics registry (counters, gauges, histograms with fixed
// buckets) plus a structured event-trace ring buffer. Every timestamp
// comes from the injected simtime clock, and Dump sorts metrics and
// events by content, so two identical seeded sim runs produce
// byte-identical output — the same determinism contract codalint
// enforces for the rest of the tree.
//
// Registration is by injection: a *Registry is handed to constructors
// (rpc2.NewNode, venus.Config.Obs, server.WithObs, wal.Options.Obs...).
// There is no process-global registry. A nil *Registry is fully inert —
// every method on it, and on the nil handles it returns, is a no-op —
// so instrumented code never branches on "is observability on".
//
// Metric names are static snake_case string literals with a package
// prefix ("venus_cache_hits_total"); the codalint obsname analyzer
// enforces this so the metric catalog in DESIGN.md §10 stays greppable.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/simtime"
)

// Label is one key=value dimension on a metric. Label KEYS should be
// static; label VALUES may be dynamic (peer addresses, volume names).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric handle. The zero of a
// nil handle is inert: Add/Inc on a nil *Counter do nothing, which is
// what makes nil-registry injection free at instrumentation sites.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored; counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric handle.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (useful for in-flight style gauges).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registered time series: a (name, sorted labels) key
// plus the kind-specific state.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() int64
	hist    *Histogram
}

// key builds the registry map key for (name, labels). Labels must
// already be sorted.
func key(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Registry holds every registered metric and the event-trace ring. All
// methods are safe for concurrent use, and all are no-ops on a nil
// receiver.
type Registry struct {
	clock simtime.Clock

	mu      sync.Mutex
	metrics map[string]*metric

	// The event ring has its own lock so Event can be called while the
	// caller holds component locks (Venus records state transitions
	// under its own mutex): nothing holding evMu ever calls out, and
	// snapshot never holds mu while evaluating gauge funcs, so no lock
	// cycle can form through the registry.
	evMu         sync.Mutex
	events       []Event // ring buffer, eventCap entries
	eventCap     int     // ring capacity, traceCap unless WithEventCap
	eventsNext   int     // next write slot
	eventsFilled bool    // ring has wrapped at least once
	dropped      int64   // events overwritten after wrap

	// The span table (span.go) has the same isolation property: span
	// minting/ending under spanMu never calls out of the package.
	spanMu       sync.Mutex
	spans        []*Span
	spanCap      int // table capacity, defaultSpanCap unless WithSpanCap
	spanSeqs     map[string]*spanSeq
	spansDropped int64

	// Drop counters are registered metrics (every dump shows them, and
	// scenario asserts can bound them) as well as plain fields behind
	// the DroppedEvents/DroppedSpans accessors.
	evDropC *Counter
	spDropC *Counter
}

// traceCap bounds the event ring by default. Events are low-volume
// (state transitions, recovery summaries), so overflow means something
// is misusing Event as a per-packet log.
const traceCap = 8192

// Option configures a Registry at construction time.
type Option func(*Registry)

// WithEventCap sets the event ring capacity (default 8192). Fleet-scale
// worlds size per-shard registries down with this; n <= 0 is ignored.
func WithEventCap(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.eventCap = n
		}
	}
}

// WithSpanCap sets the span table capacity (default 65536); n <= 0 is
// ignored.
func WithSpanCap(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.spanCap = n
		}
	}
}

// NewRegistry returns an empty registry stamping events from clock.
func NewRegistry(clock simtime.Clock, opts ...Option) *Registry {
	r := &Registry{
		clock:    clock,
		metrics:  make(map[string]*metric),
		eventCap: traceCap,
		spanCap:  defaultSpanCap,
	}
	for _, o := range opts {
		o(r)
	}
	r.evDropC = r.Counter("obs_events_dropped_total")
	r.spDropC = r.Counter("obs_spans_dropped_total")
	return r
}

// lookup returns the metric for (name, labels), creating it with make
// if absent. It panics on a kind collision: metric names are static
// literals, so a collision is a programming error the test suite hits
// immediately.
func (r *Registry) lookup(name string, kind metricKind, labels []Label, make func(*metric)) *metric {
	ls := sortLabels(labels)
	k := key(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[k]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered as " + kind.String() + ", was " + m.kind.String())
		}
		return m
	}
	m := &metric{name: name, labels: ls, kind: kind}
	make(m)
	r.metrics[k] = m
	return m
}

// Counter returns the counter registered under (name, labels),
// creating it on first use. On a nil registry it returns a nil handle
// whose methods are no-ops.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindCounter, labels, func(m *metric) { m.counter = new(Counter) })
	return m.counter
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindGauge, labels, func(m *metric) { m.gauge = new(Gauge) })
	return m.gauge
}

// GaugeFunc registers a pull-style gauge evaluated at Dump/export time.
// Re-registering the same (name, labels) replaces the function (the
// last writer wins), so components that recreate state — e.g. a netmon
// peer being forgotten and re-learned — can re-register safely.
//
// fn runs without the registry lock held; it may take component locks
// but must not call back into the Registry.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	m := r.lookup(name, kindGaugeFunc, labels, func(m *metric) {})
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under (name, labels) with
// the given fixed bucket upper bounds (ascending, inclusive). If the
// metric already exists, the existing buckets are kept and the buckets
// argument is ignored.
func (r *Registry) Histogram(name string, buckets []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindHistogram, labels, func(m *metric) { m.hist = newHistogram(buckets) })
	return m.hist
}

// metricSnapshot is one resolved time series: scalar kinds carry Value,
// histograms carry the bucket state.
type metricSnapshot struct {
	Name   string
	Labels []Label
	Kind   string
	Value  int64
	Le     []int64 // histogram upper bounds
	Counts []int64 // per-bucket counts, last = overflow
	Sum    int64
	Count  int64
}

// snapshot resolves every registered metric — evaluating gauge funcs —
// sorted by (name, labels) so the ordering is deterministic. Gauge
// funcs run after the registry lock is released: they may take
// component locks (Venus's mutex, netmon peer mutexes) that are also
// held around registry calls, and evaluating them under r.mu would
// close a lock cycle.
func (r *Registry) snapshot() []metricSnapshot {
	type resolved struct {
		m  *metric
		fn func() int64
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	list := make([]resolved, 0, len(keys))
	for _, k := range keys {
		m := r.metrics[k]
		list = append(list, resolved{m: m, fn: m.fn})
	}
	r.mu.Unlock()

	out := make([]metricSnapshot, 0, len(list))
	for _, it := range list {
		m := it.m
		s := metricSnapshot{Name: m.name, Labels: m.labels, Kind: m.kind.String()}
		switch m.kind {
		case kindCounter:
			s.Value = m.counter.Value()
		case kindGauge:
			s.Value = m.gauge.Value()
		case kindGaugeFunc:
			s.Value = it.fn()
		case kindHistogram:
			s.Le, s.Counts, s.Sum, s.Count = m.hist.snapshot()
		}
		out = append(out, s)
	}
	return out
}
