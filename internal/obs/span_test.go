package obs

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestNilRegistrySpansInert(t *testing.T) {
	var r *Registry
	h := r.StartSpan("node", "fix_op", SpanContext{}, F("k", "v"))
	if h != nil {
		t.Fatalf("nil registry StartSpan = %v, want nil", h)
	}
	if sc := h.Context(); sc.Valid() {
		t.Errorf("nil handle context = %+v, want zero", sc)
	}
	h.End() // must not panic
	h.EndAt(time.Time{})
	if sp := r.Spans(); sp != nil {
		t.Errorf("nil registry Spans = %v", sp)
	}
	if n := r.DroppedSpans(); n != 0 {
		t.Errorf("nil registry DroppedSpans = %d", n)
	}
	if h2 := r.SpanAt("node", "fix_op", SpanContext{}, time.Time{}); h2 != nil {
		t.Errorf("nil registry SpanAt = %v, want nil", h2)
	}
}

func TestSpanTreeIdentity(t *testing.T) {
	r, sim := newTestRegistry()
	sim.Run(func() {
		root := r.StartSpan("client", "fix_root", SpanContext{}, F("path", "/f"))
		if !root.Context().Valid() {
			t.Fatal("root context invalid")
		}
		if root.Context().Trace != root.Context().Span {
			t.Error("a root's trace must be its own span ID")
		}
		sim.Sleep(time.Second)
		child := r.StartSpan("server", "fix_child", root.Context())
		if got, want := child.Context().Trace, root.Context().Trace; got != want {
			t.Errorf("child trace = %d, want inherited %d", got, want)
		}
		sim.Sleep(time.Second)
		child.End()
		root.End(F("outcome", "ok"))

		// Ending twice keeps the first end.
		sim.Sleep(time.Hour)
		root.End()
	})

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Content sort: the root started first.
	if spans[0].Name != "fix_root" || spans[1].Name != "fix_child" {
		t.Fatalf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Error("child does not point at the root")
	}
	if d := spans[0].Duration(); d != 2*time.Second {
		t.Errorf("root duration = %v, want 2s", d)
	}
	if d := spans[1].Duration(); d != time.Second {
		t.Errorf("child duration = %v, want 1s", d)
	}
	// End fields were appended after the start fields.
	if got, want := fieldsKey(spans[0].Fields), fieldsKey([]Field{F("path", "/f"), F("outcome", "ok")}); got != want {
		t.Errorf("root fields = %q, want %q", got, want)
	}
}

func TestSpanTableBoundedAndCounted(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	r := NewRegistry(s, WithSpanCap(2))
	a := r.StartSpan("n", "fix_a", SpanContext{})
	r.StartSpan("n", "fix_b", a.Context())
	dropped := r.StartSpan("n", "fix_c", a.Context())
	if dropped.Context().Valid() {
		t.Error("span over capacity kept a valid context")
	}
	dropped.End() // inert
	// A child of the dropped span carries an invalid parent, so it would
	// start a new root — which the full table also refuses.
	r.StartSpan("n", "fix_d", dropped.Context())
	if got := r.DroppedSpans(); got != 2 {
		t.Errorf("DroppedSpans = %d, want 2", got)
	}
	if got := r.spDropC.Value(); got != 2 {
		t.Errorf("obs_spans_dropped_total = %d, want 2", got)
	}
	if got := len(r.Spans()); got != 2 {
		t.Errorf("table holds %d spans, want 2", got)
	}
}

func TestSpanIDsDeterministicAcrossRuns(t *testing.T) {
	mint := func() []Span {
		r, _ := newTestRegistry()
		a := r.StartSpan("alpha", "fix_a", SpanContext{})
		r.StartSpan("beta", "fix_b", a.Context())
		r.StartSpan("alpha", "fix_c", a.Context())
		return r.Spans()
	}
	x, y := mint(), mint()
	for i := range x {
		if x[i].ID != y[i].ID || x[i].Trace != y[i].Trace || x[i].Parent != y[i].Parent {
			t.Errorf("span %d identity differs across identical runs: %+v vs %+v", i, x[i], y[i])
		}
	}
}

func TestCriticalPathSelfTime(t *testing.T) {
	r, s := newTestRegistry()
	t0 := s.Now()
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	// Root [0,10s]; an sftp child [1s,4s] holding a retransmit wait
	// [2s,3s]; a patience wait [5s,7s] directly under the root. Every
	// instant is charged exactly once, to the innermost span covering it.
	root := r.SpanAt("c", "venus_reintegrate", SpanContext{}, at(0))
	ship := r.SpanAt("c", "sftp_transfer", root.Context(), at(1*time.Second))
	rexmit := r.SpanAt("c", "rpc2_retransmit_wait", ship.Context(), at(2*time.Second))
	rexmit.EndAt(at(3 * time.Second))
	ship.EndAt(at(4 * time.Second))
	wait := r.SpanAt("c", "venus_patience_wait", root.Context(), at(5*time.Second))
	wait.EndAt(at(7 * time.Second))
	root.EndAt(at(10 * time.Second))

	cp := CriticalPath(r.Spans(), "venus_reintegrate")
	want := map[string]time.Duration{
		"fragment_serialization": 2 * time.Second, // ship [1,4] minus rexmit [2,3]
		"retransmit":             1 * time.Second,
		"patience_wait":          2 * time.Second,
		"other":                  5 * time.Second, // root minus child union [1,4]+[5,7]
	}
	var sum time.Duration
	for _, b := range CriticalPathBuckets {
		sum += cp[b]
		if w, ok := want[b]; ok && cp[b] != w {
			t.Errorf("bucket %s = %v, want %v", b, cp[b], w)
		} else if !ok && cp[b] != 0 {
			t.Errorf("bucket %s = %v, want 0", b, cp[b])
		}
	}
	if sum != 10*time.Second {
		t.Errorf("buckets sum to %v, want the root's 10s", sum)
	}
}

func TestExportTraceDeterministicAcrossInterleavings(t *testing.T) {
	// Two registries record the same sibling spans in opposite arrival
	// orders at the same instants; the canonical subtree renumbering must
	// serialize them byte-identically.
	build := func(flip bool) []byte {
		r, sim := newTestRegistry()
		sim.Run(func() {
			root := r.StartSpan("c", "fix_root", SpanContext{})
			sim.Sleep(time.Second)
			names := []string{"fix_a", "fix_b"}
			if flip {
				names[0], names[1] = names[1], names[0]
			}
			var kids []*SpanHandle
			for _, nm := range names {
				kids = append(kids, r.StartSpan("c", nm, root.Context()))
			}
			sim.Sleep(time.Second)
			for _, k := range kids {
				k.End()
			}
			root.End()
		})
		return r.ExportTrace()
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Errorf("export differs across interleavings:\n%s\nvs\n%s", a, b)
	}
	if len(a) == 0 || a[len(a)-1] != '\n' {
		t.Error("export must be newline-terminated")
	}
	if !bytes.Contains(a, []byte(`"ph": "X"`)) && !bytes.Contains(a, []byte(`"ph":"X"`)) {
		t.Errorf("export has no complete events:\n%s", a)
	}
}
