package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one # TYPE header per metric
// name, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastName := ""
	for _, s := range r.snapshot() {
		if s.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastName = s.Name
		}
		if s.Kind == "histogram" {
			if err := writePromHistogram(w, s); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Value); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, s metricSnapshot) error {
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Le) {
			le = fmt.Sprintf("%d", s.Le[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Count)
	return err
}

// promLabels renders {k="v",...}, optionally appending one extra label
// (the histogram "le"). Go's %q escaping of backslash, quote, and
// newline matches the exposition format's label escaping.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// Handler serves the registry over HTTP: Prometheus text at the
// endpoint itself, the deterministic JSON dump at <path>/dump (any path
// ending in /dump or ?format=json). Wire it into codasrv/codaclient via
// their -metrics flags.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasSuffix(req.URL.Path, "/dump") || req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(r.Dump())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
