package obs

import "sync"

// Histogram counts int64 observations into fixed buckets. Bucket
// bounds are inclusive upper bounds ("le" in Prometheus terms): an
// observation v lands in the first bucket with v <= bound, or in the
// implicit overflow (+Inf) bucket past the last bound. Bounds are fixed
// at registration so two runs observing the same values produce
// identical bucket vectors — no adaptive resizing, no float math.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // ascending upper bounds
	counts []int64 // len(bounds)+1; last entry is the overflow bucket
	sum    int64
	count  int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := make([]int64, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bs,
		counts: make([]int64, len(bs)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := len(h.bounds) // overflow by default
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.count++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies the bucket state.
func (h *Histogram) snapshot() (bounds, counts []int64, sum, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = make([]int64, len(h.bounds))
	copy(bounds, h.bounds)
	counts = make([]int64, len(h.counts))
	copy(counts, h.counts)
	return bounds, counts, h.sum, h.count
}
