package obs

import (
	"sort"
	"time"
)

// Field is one key=value annotation on a trace event.
type Field struct {
	Key, Value string
}

// F is shorthand for constructing a Field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Event is one entry in the trace ring: a kind (static snake_case
// literal, like metric names), a clock timestamp, and free-form fields.
type Event struct {
	Time   time.Time
	Kind   string
	Fields []Field
}

// Event appends a trace event stamped from the registry's injected
// clock. The ring holds the most recent eventCap events; older ones
// are overwritten, counted both in obs_events_dropped_total and the
// DroppedEvents accessor.
func (r *Registry) Event(kind string, fields ...Field) {
	if r == nil {
		return
	}
	var now time.Time
	if r.clock != nil {
		now = r.clock.Now()
	}
	fs := make([]Field, len(fields))
	copy(fs, fields)
	e := Event{Time: now, Kind: kind, Fields: fs}

	r.evMu.Lock()
	defer r.evMu.Unlock()
	if r.events == nil {
		cap := r.eventCap
		if cap == 0 {
			cap = traceCap
		}
		r.events = make([]Event, cap)
	}
	if r.eventsFilled {
		r.dropped++
		r.evDropC.Inc()
	}
	r.events[r.eventsNext] = e
	r.eventsNext++
	if r.eventsNext == len(r.events) {
		r.eventsNext = 0
		r.eventsFilled = true
	}
}

// Events returns the buffered events sorted by (time, kind, fields).
// Counters are commutative, so goroutine interleaving never changes
// final metric values; event *arrival order* at the same sim instant
// can differ run to run, so the content sort — not arrival order — is
// what the determinism contract covers.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.evMu.Lock()
	var out []Event
	if r.eventsFilled {
		out = make([]Event, 0, len(r.events))
		out = append(out, r.events[r.eventsNext:]...)
		out = append(out, r.events[:r.eventsNext]...)
	} else {
		out = make([]Event, r.eventsNext)
		copy(out, r.events[:r.eventsNext])
	}
	r.evMu.Unlock()

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return fieldsKey(a.Fields) < fieldsKey(b.Fields)
	})
	return out
}

// DroppedEvents reports how many events the ring has overwritten.
func (r *Registry) DroppedEvents() int64 {
	if r == nil {
		return 0
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	return r.dropped
}

func fieldsKey(fs []Field) string {
	s := ""
	for _, f := range fs {
		s += f.Key + "\x00" + f.Value + "\x00"
	}
	return s
}
