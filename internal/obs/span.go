package obs

import (
	"sort"
	"time"
)

// Causal span tracing. A span is a timed interval on one node with a
// (trace, span, parent) identity; spans form trees that cross nodes
// because the SpanContext travels on the wire (rpc2 packet header,
// sftp fragment header). IDs are minted deterministically from the
// seeded world: no wall clock, no randomness — each registry keeps a
// per-node-label counter, and a span's ID is (node index, node-local
// sequence). Raw IDs still depend on goroutine interleaving at the
// same sim instant, so every deterministic consumer (ExportTrace, the
// scenario golden files) renumbers spans by content, never by raw ID.
//
// A nil *Registry, and the nil *SpanHandle it returns, are fully
// inert, mirroring the metric handles. Sites that only want to trace
// inside an existing tree guard on parent.Valid() so an untraced
// operation mints nothing at all.

// SpanContext identifies a span for propagation: Trace is the root
// span's ID, Span the current span's. The zero value means "no trace"
// and is what untraced wire traffic carries (all-zero header bytes).
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context belongs to a live trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// Span is one recorded span. Parent is zero for a root; Trace equals
// the root span's ID for every span in the tree (a root's Trace is its
// own ID). End/Ended are set by SpanHandle.End.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Node   string
	Name   string
	Start  time.Time
	End    time.Time
	Ended  bool
	Fields []Field
}

// Duration is End-Start for an ended span, zero otherwise.
func (s *Span) Duration() time.Duration {
	if !s.Ended {
		return 0
	}
	return s.End.Sub(s.Start)
}

// spanSeq is one node label's ID allocator: idx is the order the label
// was first seen by this registry, seq the per-label sequence.
type spanSeq struct {
	idx uint64
	seq uint64
}

// defaultSpanCap bounds the span table. Spans are per-operation, not
// per-packet, so a long replay mints tens of thousands at most; once
// the table is full new spans are dropped (counted, and returning an
// invalid context so their would-be children are suppressed too —
// partial trees would make the retained set interleaving-dependent).
const defaultSpanCap = 65536

// SpanHandle is the live handle for an in-flight span. A nil handle
// (nil registry, or a dropped span) is inert: End is a no-op and
// Context returns the zero SpanContext.
type SpanHandle struct {
	r  *Registry
	sp *Span
	sc SpanContext
}

// StartSpan starts a span on node (a stable node label: the same
// client=/node= value the metrics use) beginning now. name must be a
// static snake_case literal with a package prefix — the codalint
// obsname analyzer enforces this, same as metric names. A zero parent
// starts a new root whose Trace is its own ID.
func (r *Registry) StartSpan(node, name string, parent SpanContext, fields ...Field) *SpanHandle {
	if r == nil {
		return nil
	}
	var now time.Time
	if r.clock != nil {
		now = r.clock.Now()
	}
	return r.startSpanAt(node, name, parent, now, fields)
}

// SpanAt is StartSpan with an explicit start instant, for spans whose
// extent is only known after the fact (a failover wait measured around
// a call that timed out). start must come from the same injected clock
// domain as everything else.
func (r *Registry) SpanAt(node, name string, parent SpanContext, start time.Time, fields ...Field) *SpanHandle {
	if r == nil {
		return nil
	}
	return r.startSpanAt(node, name, parent, start, fields)
}

func (r *Registry) startSpanAt(node, name string, parent SpanContext, start time.Time, fields []Field) *SpanHandle {
	var fs []Field
	if len(fields) > 0 {
		fs = make([]Field, len(fields))
		copy(fs, fields)
	}
	sp := &Span{Parent: parent.Span, Node: node, Name: name, Start: start, Fields: fs}

	r.spanMu.Lock()
	cap := r.spanCap
	if cap == 0 {
		cap = defaultSpanCap
	}
	if len(r.spans) >= cap {
		r.spansDropped++
		r.spanMu.Unlock()
		r.spDropC.Inc()
		return &SpanHandle{}
	}
	if r.spanSeqs == nil {
		r.spanSeqs = make(map[string]*spanSeq)
	}
	seq := r.spanSeqs[node]
	if seq == nil {
		seq = &spanSeq{idx: uint64(len(r.spanSeqs))}
		r.spanSeqs[node] = seq
	}
	seq.seq++
	sp.ID = seq.idx<<40 | seq.seq
	if parent.Valid() {
		sp.Trace = parent.Trace
	} else {
		sp.Trace = sp.ID
	}
	r.spans = append(r.spans, sp)
	r.spanMu.Unlock()
	return &SpanHandle{r: r, sp: sp, sc: SpanContext{Trace: sp.Trace, Span: sp.ID}}
}

// Context returns the span's propagation context (zero on a nil or
// dropped handle, so children of a dropped span are suppressed too).
func (h *SpanHandle) Context() SpanContext {
	if h == nil {
		return SpanContext{}
	}
	return h.sc
}

// End finishes the span at the registry clock's current instant,
// appending any extra fields. Ending twice keeps the first end.
func (h *SpanHandle) End(fields ...Field) {
	if h == nil || h.sp == nil {
		return
	}
	var now time.Time
	if h.r.clock != nil {
		now = h.r.clock.Now()
	}
	h.EndAt(now, fields...)
}

// EndAt is End at an explicit instant from the injected clock domain.
func (h *SpanHandle) EndAt(end time.Time, fields ...Field) {
	if h == nil || h.sp == nil {
		return
	}
	h.r.spanMu.Lock()
	if !h.sp.Ended {
		h.sp.Ended = true
		h.sp.End = end
		if len(fields) > 0 {
			h.sp.Fields = append(h.sp.Fields, fields...)
		}
	}
	h.r.spanMu.Unlock()
}

// Spans returns copies of every recorded span, content-sorted by
// (start, node, name, fields, end) — the same contract as Events: raw
// IDs and arrival order vary with goroutine interleaving at one sim
// instant, content does not.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	out := make([]Span, 0, len(r.spans))
	for _, sp := range r.spans {
		c := *sp
		if len(sp.Fields) > 0 {
			c.Fields = make([]Field, len(sp.Fields))
			copy(c.Fields, sp.Fields)
		}
		out = append(out, c)
	}
	r.spanMu.Unlock()

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if ka, kb := fieldsKey(a.Fields), fieldsKey(b.Fields); ka != kb {
			return ka < kb
		}
		return a.End.Before(b.End)
	})
	return out
}

// DroppedSpans reports how many spans the bounded table has refused.
func (r *Registry) DroppedSpans() int64 {
	if r == nil {
		return 0
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	return r.spansDropped
}
