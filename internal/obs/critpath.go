package obs

import (
	"sort"
	"time"
)

// Critical-path attribution: given a span tree, "where did the time
// go?" is answered by exclusive self-time — each span's duration minus
// the union of its children's intervals — folded into a small fixed
// set of buckets (the paper's §6 suspects: patience waits, retransmit
// backoff, fragment serialization on the weak link, fsync, failover,
// server apply). Self-time, not inclusive time, so the buckets of one
// tree sum to exactly the root's elapsed time and nothing is counted
// twice.

// CriticalPathBuckets lists every bucket in canonical order. "other"
// absorbs spans with no mapped bucket and every root's own self-time.
var CriticalPathBuckets = []string{
	"patience_wait",
	"retransmit",
	"fragment_serialization",
	"fsync",
	"failover",
	"server_apply",
	"other",
}

// CriticalPathBucket maps a span name to its attribution bucket.
func CriticalPathBucket(name string) string {
	switch name {
	case "venus_patience_wait":
		return "patience_wait"
	case "rpc2_retransmit_wait":
		return "retransmit"
	case "venus_fragment_ship", "sftp_transfer", "sftp_receive":
		return "fragment_serialization"
	case "wal_fsync":
		return "fsync"
	case "venus_failover_wait":
		return "failover"
	case "server_apply", "wal_append":
		return "server_apply"
	}
	return "other"
}

// CriticalPath attributes the elapsed time of every ended root span
// named rootName (across all of spans' traces) to exclusive self-time
// buckets. The result has an entry for every CriticalPathBuckets name,
// zero when nothing landed there; the values sum to the roots' total
// elapsed time.
func CriticalPath(spans []Span, rootName string) map[string]time.Duration {
	out := make(map[string]time.Duration, len(CriticalPathBuckets))
	for _, b := range CriticalPathBuckets {
		out[b] = 0
	}

	ended := make([]*Span, 0, len(spans))
	byID := make(map[uint64]*Span, len(spans))
	children := make(map[uint64][]*Span)
	for i := range spans {
		if !spans[i].Ended {
			continue
		}
		sp := &spans[i]
		ended = append(ended, sp)
		byID[sp.ID] = sp
	}
	for _, sp := range ended {
		if sp.Parent != 0 {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}

	for _, root := range ended {
		if root.Name != rootName {
			continue
		}
		if root.Parent != 0 {
			if _, ok := byID[root.Parent]; ok {
				continue // only true tree roots
			}
		}
		// Iterative DFS with a visited set: IDs are unique so cycles
		// cannot form, but a corrupt table must not hang the analyzer.
		visited := make(map[uint64]bool)
		stack := []*Span{root}
		for len(stack) > 0 {
			sp := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[sp.ID] {
				continue
			}
			visited[sp.ID] = true
			out[CriticalPathBucket(sp.Name)] += selfTime(sp, children[sp.ID])
			stack = append(stack, children[sp.ID]...)
		}
	}
	return out
}

// CriticalPath is the registry-level convenience over Spans().
func (r *Registry) CriticalPath(rootName string) map[string]time.Duration {
	return CriticalPath(r.Spans(), rootName)
}

// selfTime is sp's duration minus the union of its children's
// intervals, each clamped to sp's own interval.
func selfTime(sp *Span, kids []*Span) time.Duration {
	total := sp.End.Sub(sp.Start)
	if total <= 0 || len(kids) == 0 {
		if total < 0 {
			return 0
		}
		return total
	}
	type iv struct{ s, e time.Time }
	ivs := make([]iv, 0, len(kids))
	for _, k := range kids {
		s, e := k.Start, k.End
		if s.Before(sp.Start) {
			s = sp.Start
		}
		if e.After(sp.End) {
			e = sp.End
		}
		if e.After(s) {
			ivs = append(ivs, iv{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s.Before(ivs[j].s) })
	var covered time.Duration
	var curS, curE time.Time
	for i, v := range ivs {
		if i == 0 || v.s.After(curE) {
			covered += curE.Sub(curS)
			curS, curE = v.s, v.e
			continue
		}
		if v.e.After(curE) {
			curE = v.e
		}
	}
	covered += curE.Sub(curS)
	if covered >= total {
		return 0
	}
	return total - covered
}
