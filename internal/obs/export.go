package obs

import (
	"encoding/json"
	"sort"
	"strconv"
)

// Chrome trace-event / Perfetto JSON export. The file must be
// byte-identical across two identical seeded runs, but raw span IDs
// depend on goroutine interleaving at one sim instant, so the exporter
// renumbers everything by content: spans are arranged into trees,
// every subtree gets a canonical key built purely from span content
// (start, node, name, fields, end) plus its children's keys, siblings
// and roots are sorted by that key, and a pre-order DFS assigns the
// sequential export IDs that appear in the file. Two runs that record
// the same spans therefore emit the same bytes no matter how the raw
// IDs were interleaved.

// traceEvent is one Chrome trace-event object. Fixed struct field
// order (encoding/json preserves it) keeps the output deterministic.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int64  `json:"tid"`
	Args any    `json:"args,omitempty"`
}

// spanArgs annotates a ph="X" event with the renumbered identity.
type spanArgs struct {
	Span   int64  `json:"span"`
	Parent int64  `json:"parent"`
	Trace  int64  `json:"trace"`
	Fields string `json:"fields,omitempty"`
}

type metaArgs struct {
	Name string `json:"name"`
}

type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

type expNode struct {
	sp       *Span
	children []*expNode
	key      string
}

// ExportTrace renders every ended span as Chrome trace-event JSON
// (complete "X" events, one process per node label, one thread per
// trace tree), deterministic and byte-identical for identical seeded
// runs. A nil registry exports an empty, still-valid document.
func (r *Registry) ExportTrace() []byte {
	spans := r.Spans()

	nodes := make([]*expNode, 0, len(spans))
	byID := make(map[uint64]*expNode, len(spans))
	for i := range spans {
		if !spans[i].Ended {
			continue
		}
		n := &expNode{sp: &spans[i]}
		nodes = append(nodes, n)
		byID[spans[i].ID] = n
	}
	var roots []*expNode
	for _, n := range nodes {
		if p, ok := byID[n.sp.Parent]; ok && n.sp.Parent != 0 {
			p.children = append(p.children, n)
		} else {
			// True roots, plus orphans whose parent was dropped or
			// never ended — exporting them flat beats losing them.
			roots = append(roots, n)
		}
	}
	for _, n := range nodes {
		if n.key == "" {
			keyOf(n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].key < roots[j].key })

	// Process IDs: node labels sorted, numbered from 1.
	labelSet := make(map[string]bool)
	for _, n := range nodes {
		labelSet[n.sp.Node] = true
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	pid := make(map[string]int, len(labels))
	doc := traceDoc{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for i, l := range labels {
		pid[l] = i + 1
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: i + 1, Args: metaArgs{Name: l},
		})
	}

	// Pre-order DFS over sorted roots assigns export IDs; each root's
	// tree is one thread (tid = 1-based root index).
	nextID := int64(0)
	for ti, root := range roots {
		var walk func(n *expNode, parent int64)
		walk = func(n *expNode, parent int64) {
			nextID++
			id := nextID
			sp := n.sp
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   sp.Start.UnixMicro(),
				Dur:  sp.End.Sub(sp.Start).Microseconds(),
				Pid:  pid[sp.Node],
				Tid:  int64(ti + 1),
				Args: spanArgs{Span: id, Parent: parent, Trace: int64(ti + 1), Fields: fieldsString(sp.Fields)},
			})
			kids := append([]*expNode(nil), n.children...)
			sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })
			for _, k := range kids {
				walk(k, id)
			}
		}
		walk(root, 0)
	}

	out, err := json.Marshal(doc)
	if err != nil {
		// Only plain structs and strings are marshaled; this cannot
		// fail, but an exporter must never panic a run.
		return []byte("{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n")
	}
	return append(out, '\n')
}

// keyOf computes n's canonical subtree key post-order: own content,
// then the sorted keys of the children. Identical keys mean identical
// subtrees, so any sort tie is emission-order irrelevant.
func keyOf(n *expNode) string {
	if n.key != "" {
		return n.key
	}
	sp := n.sp
	own := strconv.FormatInt(sp.Start.UnixMicro(), 10) + "\x00" +
		sp.Node + "\x00" + sp.Name + "\x00" + fieldsKey(sp.Fields) + "\x00" +
		strconv.FormatInt(sp.End.UnixMicro(), 10)
	if len(n.children) == 0 {
		n.key = own
		return own
	}
	kids := make([]string, 0, len(n.children))
	for _, k := range n.children {
		kids = append(kids, keyOf(k))
	}
	sort.Strings(kids)
	for _, k := range kids {
		own += "\x01" + k
	}
	n.key = own
	return own
}

// fieldsString renders span fields compactly for the args payload.
func fieldsString(fs []Field) string {
	s := ""
	for i, f := range fs {
		if i > 0 {
			s += " "
		}
		s += f.Key + "=" + f.Value
	}
	return s
}
