package obs

import (
	"encoding/json"
	"fmt"
)

// dumpMetric is the JSON shape of one time series in a Dump.
type dumpMetric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  int64             `json:"value"`
	Le     []int64           `json:"le,omitempty"`
	Counts []int64           `json:"counts,omitempty"`
	Sum    int64             `json:"sum,omitempty"`
	Count  int64             `json:"count,omitempty"`
}

// dumpEvent is the JSON shape of one trace event. Time is nanoseconds
// since the Unix epoch on the injected clock.
type dumpEvent struct {
	T      int64             `json:"t"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// dumpDoc is the top-level Dump document.
type dumpDoc struct {
	Metrics       []dumpMetric `json:"metrics"`
	Events        []dumpEvent  `json:"events"`
	DroppedEvents int64        `json:"dropped_events,omitempty"`
}

// Dump serializes the registry — every metric, gauge funcs evaluated,
// plus the sorted event trace — to JSON. The output is deterministic:
// metrics are sorted by (name, labels), events by (time, kind, fields),
// and map keys are sorted by encoding/json. Two identical seeded sim
// runs therefore produce byte-identical dumps, which the determinism
// test in internal/experiments pins.
func (r *Registry) Dump() []byte {
	doc := dumpDoc{Metrics: []dumpMetric{}, Events: []dumpEvent{}}
	if r != nil {
		for _, s := range r.snapshot() {
			dm := dumpMetric{
				Name:   s.Name,
				Kind:   s.Kind,
				Value:  s.Value,
				Le:     s.Le,
				Counts: s.Counts,
				Sum:    s.Sum,
				Count:  s.Count,
			}
			if len(s.Labels) > 0 {
				dm.Labels = make(map[string]string, len(s.Labels))
				for _, l := range s.Labels {
					dm.Labels[l.Key] = l.Value
				}
			}
			doc.Metrics = append(doc.Metrics, dm)
		}
		for _, e := range r.Events() {
			de := dumpEvent{T: e.Time.UnixNano(), Kind: e.Kind}
			if len(e.Fields) > 0 {
				de.Fields = make(map[string]string, len(e.Fields))
				for _, f := range e.Fields {
					de.Fields[f.Key] = f.Value
				}
			}
			doc.Events = append(doc.Events, de)
		}
		doc.DroppedEvents = r.DroppedEvents()
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// The document is plain structs and strings; Marshal cannot fail
		// on it short of a bug here.
		panic(fmt.Sprintf("obs: dump marshal: %v", err))
	}
	return append(out, '\n')
}
