package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

func newTestRegistry() (*Registry, *simtime.Sim) {
	s := simtime.NewSim(simtime.Epoch1995)
	return NewRegistry(s), s
}

func TestCounterGauge(t *testing.T) {
	r, _ := newTestRegistry()
	c := r.Counter("fix_ops_total", L("op", "read"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up; negative deltas are dropped
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("fix_ops_total", L("op", "read")); again != c {
		t.Error("re-registration did not return the same handle")
	}
	if other := r.Counter("fix_ops_total", L("op", "write")); other == c {
		t.Error("different labels must be a different series")
	}

	g := r.Gauge("fix_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("fix_x_total").Inc()
	r.Gauge("fix_g").Set(3)
	r.GaugeFunc("fix_f", func() int64 { return 1 })
	r.Histogram("fix_h", []int64{1, 2}).Observe(5)
	r.Event("fix_ev", F("k", "v"))
	if evs := r.Events(); evs != nil {
		t.Errorf("nil registry events = %v", evs)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry prom output: %q, %v", buf.String(), err)
	}
	// Dump on a nil registry is still a valid (empty) document.
	if !bytes.Contains(r.Dump(), []byte(`"metrics": []`)) {
		t.Errorf("nil dump = %s", r.Dump())
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r, _ := newTestRegistry()
	r.Counter("fix_thing")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("fix_thing")
}

func TestGaugeFuncLastWriterWins(t *testing.T) {
	r, _ := newTestRegistry()
	r.GaugeFunc("fix_level", func() int64 { return 1 })
	r.GaugeFunc("fix_level", func() int64 { return 2 })
	// The registry always carries its own drop counters; the test cares
	// only about the gauge under contention.
	var gauges []metricSnapshot
	for _, s := range r.snapshot() {
		if s.Name == "fix_level" {
			gauges = append(gauges, s)
		}
	}
	if len(gauges) != 1 || gauges[0].Value != 2 {
		t.Fatalf("snapshot = %+v, want single gauge of 2", gauges)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r, _ := newTestRegistry()
	h := r.Histogram("fix_lat_us", []int64{10, 100, 1000})

	// Bounds are inclusive: exactly-on-boundary observations land in
	// that bucket, one past it lands in the next.
	h.Observe(10)   // bucket 0 (le=10)
	h.Observe(11)   // bucket 1 (le=100)
	h.Observe(100)  // bucket 1
	h.Observe(1000) // bucket 2
	h.Observe(0)    // bucket 0
	h.Observe(-5)   // bucket 0: below the first bound still counts

	bounds, counts, sum, count := h.snapshot()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	want := []int64{3, 2, 1, 0}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("counts[%d] = %d, want %d (all: %v)", i, c, want[i], counts)
		}
	}
	if count != 6 || sum != 10+11+100+1000+0-5 {
		t.Errorf("count=%d sum=%d", count, sum)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r, _ := newTestRegistry()
	h := r.Histogram("fix_big_us", []int64{1, 2})
	h.Observe(3)
	h.Observe(1 << 40)
	_, counts, _, count := h.snapshot()
	if counts[2] != 2 || count != 2 {
		t.Errorf("overflow bucket = %d (counts %v), want 2", counts[2], counts)
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	r, _ := newTestRegistry()
	r.Histogram("fix_idle_us", []int64{1, 10})
	bounds, counts, sum, count := r.Histogram("fix_idle_us", nil).snapshot()
	if count != 0 || sum != 0 {
		t.Errorf("zero-observation histogram: count=%d sum=%d", count, sum)
	}
	for i, c := range counts {
		if c != 0 {
			t.Errorf("counts[%d] = %d, want 0", i, c)
		}
	}
	if len(bounds) != 2 {
		t.Errorf("re-registration must keep original bounds, got %v", bounds)
	}
	// A zero-observation histogram still renders all its buckets.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `fix_idle_us_bucket{le="+Inf"} 0`) {
		t.Errorf("prom output missing empty +Inf bucket:\n%s", buf.String())
	}
}

func TestHistogramAscendingBoundsEnforced(t *testing.T) {
	r, _ := newTestRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic")
		}
	}()
	r.Histogram("fix_bad", []int64{5, 5})
}

func TestEventRingAndOrdering(t *testing.T) {
	r, sim := newTestRegistry()
	sim.Run(func() {
		r.Event("fix_b", F("n", "1"))
		r.Event("fix_a", F("n", "2"))
	})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	// Same instant: sorted by kind, not arrival order.
	if evs[0].Kind != "fix_a" || evs[1].Kind != "fix_b" {
		t.Errorf("event order = %s, %s; want fix_a, fix_b", evs[0].Kind, evs[1].Kind)
	}
	if !evs[0].Time.Equal(simtime.Epoch1995) {
		t.Errorf("event time = %v, want the sim epoch", evs[0].Time)
	}
}

func TestEventRingOverflow(t *testing.T) {
	r, sim := newTestRegistry()
	sim.Run(func() {
		for i := 0; i < traceCap+10; i++ {
			r.Event("fix_tick")
			sim.Sleep(time.Millisecond)
		}
	})
	if got := len(r.Events()); got != traceCap {
		t.Errorf("ring holds %d, want %d", got, traceCap)
	}
	if got := r.DroppedEvents(); got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
	// The survivors are the newest events.
	evs := r.Events()
	first := evs[0].Time.Sub(simtime.Epoch1995)
	if first != 10*time.Millisecond {
		t.Errorf("oldest surviving event at +%v, want +10ms", first)
	}
}

func TestDumpDeterministicAcrossInterleavings(t *testing.T) {
	// Two runs bumping the same metrics from racing goroutines in
	// opposite completion order must dump identically: counters are
	// commutative and the dump sorts by content.
	run := func(flip bool) []byte {
		r, sim := newTestRegistry()
		done := simtime.NewQueue[int](sim)
		sim.Run(func() {
			for i := 0; i < 8; i++ {
				n := i
				if flip {
					n = 7 - i
				}
				delay := time.Duration(n) * time.Millisecond
				sim.Go(func() {
					sim.Sleep(delay)
					r.Counter("fix_work_total").Add(int64(n))
					r.Histogram("fix_work_us", []int64{2, 4, 8}).Observe(int64(n))
					r.Event("fix_done", F("after", delay.String()))
					done.Put(n)
				})
			}
			for i := 0; i < 8; i++ {
				done.Get()
			}
		})
		return r.Dump()
	}
	a, b := run(false), run(true)
	if !bytes.Equal(a, b) {
		t.Errorf("dumps differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r, _ := newTestRegistry()
	r.Counter("fix_ops_total", L("op", "read")).Add(3)
	r.Counter("fix_ops_total", L("op", "write")).Add(1)
	r.GaugeFunc("fix_depth", func() int64 { return 42 })
	h := r.Histogram("fix_lat_us", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# TYPE fix_depth gauge\n",
		"fix_depth 42\n",
		"# TYPE fix_lat_us histogram\n",
		`fix_lat_us_bucket{le="10"} 1`,
		`fix_lat_us_bucket{le="100"} 2`,
		`fix_lat_us_bucket{le="+Inf"} 3`,
		"fix_lat_us_sum 5055\n",
		"fix_lat_us_count 3\n",
		"# TYPE fix_ops_total counter\n",
		`fix_ops_total{op="read"} 3`,
		`fix_ops_total{op="write"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("prom output missing %q:\n%s", want, got)
		}
	}
	// One TYPE header per name, even with several label sets.
	if strings.Count(got, "# TYPE fix_ops_total") != 1 {
		t.Errorf("duplicate TYPE headers:\n%s", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	r, _ := newTestRegistry()
	r.Counter("fix_hits_total").Inc()

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "fix_hits_total 1") || !strings.Contains(ctype, "text/plain") {
		t.Errorf("prom endpoint: ctype=%q body=%q", ctype, body)
	}
	body, ctype = get("/metrics/dump")
	if !strings.Contains(body, `"fix_hits_total"`) || ctype != "application/json" {
		t.Errorf("dump endpoint: ctype=%q body=%q", ctype, body)
	}
}
