package rpc2

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// nullConn swallows packets so the benchmarks measure framing, not the
// network emulator's own delivery copies.
type nullConn struct{}

func (nullConn) Send(dst string, payload []byte) error { return nil }
func (nullConn) Recv() ([]byte, string, bool)          { return nil, "", false }
func (nullConn) RecvTimeout(d time.Duration) ([]byte, string, bool) {
	return nil, "", false
}
func (nullConn) LocalAddr() string { return "bench" }
func (nullConn) Close() error      { return nil }

// BenchmarkAllocSendPacket pins the framed control-packet send path at
// zero steady-state heap allocations: the frame is built in a pooled
// buffer and recycled as soon as the conn returns. Enforced by
// benchgate against bench_baseline.json.
func BenchmarkAllocSendPacket(b *testing.B) {
	n := &Node{conn: nullConn{}}
	body := make([]byte, 256)
	n.sendPacket("dst", kindReq, 0, 1, 2, 3, 4, obs.SpanContext{}, body) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.sendPacket("dst", kindReq, 0, uint64(i), 2, 3, 4, obs.SpanContext{}, body)
	}
}

// BenchmarkAllocSendSFTP pins the SFTP mux framing (one per shipped
// fragment) at zero steady-state allocations.
func BenchmarkAllocSendSFTP(b *testing.B) {
	n := &Node{conn: nullConn{}}
	payload := make([]byte, 1200)
	_ = n.sendSFTP("dst", payload) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.sendSFTP("dst", payload)
	}
}
