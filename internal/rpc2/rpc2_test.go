package rpc2

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

type world struct {
	sim *simtime.Sim
	net *netsim.Network
}

func newWorld(seed int64, p netsim.LinkParams) *world {
	s := simtime.NewSim(simtime.Epoch1995)
	n := netsim.New(s, seed)
	n.SetDefaults(p)
	return &world{sim: s, net: n}
}

func (w *world) node(name string, h Handler) *Node {
	return NewNode(w.sim, w.net.Host(name), netmon.NewMonitor(w.sim), h, nil)
}

func echoHandler(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
	return body, nil
}

func TestCallRoundTrip(t *testing.T) {
	w := newWorld(1, netsim.Ethernet.Params())
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		rep, err := c.Call("server", []byte("hello"), CallOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if string(rep) != "hello" {
			t.Errorf("reply = %q", rep)
		}
	})
}

func TestCallRemoteError(t *testing.T) {
	w := newWorld(2, netsim.Ethernet.Params())
	w.sim.Run(func() {
		w.node("server", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			return nil, fmt.Errorf("permission denied")
		})
		c := w.node("client", nil)
		_, err := c.Call("server", []byte("x"), CallOpts{})
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "permission denied" {
			t.Errorf("err = %v, want RemoteError(permission denied)", err)
		}
	})
}

func TestCallLargeBodyViaSFTP(t *testing.T) {
	w := newWorld(3, netsim.WaveLan.Params())
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		body := bytes.Repeat([]byte("z"), 200<<10)
		rep, err := c.Call("server", body, CallOpts{Timeout: 10 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep, body) {
			t.Errorf("large echo corrupted: %d bytes back, want %d", len(rep), len(body))
		}
	})
}

func TestCallSurvivesPacketLoss(t *testing.T) {
	p := netsim.WaveLan.Params()
	p.LossRate = 0.15
	w := newWorld(4, p)
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		for i := 0; i < 40; i++ {
			rep, err := c.Call("server", []byte{byte(i)}, CallOpts{Timeout: 5 * time.Minute, MaxRetries: 20})
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
			if len(rep) != 1 || rep[0] != byte(i) {
				t.Fatalf("call %d: bad reply %v", i, rep)
			}
		}
	})
}

func TestCallTimesOutOnDeadLink(t *testing.T) {
	w := newWorld(5, netsim.Ethernet.Params())
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		w.net.SetUp("client", "server", false)
		start := w.sim.Now()
		_, err := c.Call("server", []byte("x"), CallOpts{Timeout: 30 * time.Second})
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if elapsed := w.sim.Now().Sub(start); elapsed > 31*time.Second {
			t.Errorf("timeout took %v, want ≤ ~30s", elapsed)
		}
	})
}

func TestAtMostOnceExecution(t *testing.T) {
	// Heavy loss forces retransmissions; the server must still execute
	// each distinct request exactly once.
	p := netsim.ISDN.Params()
	p.LossRate = 0.3
	w := newWorld(6, p)
	w.sim.Run(func() {
		counts := make(map[string]int)
		w.node("server", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			counts[string(body)]++
			return body, nil
		})
		c := w.node("client", nil)
		const calls = 25
		for i := 0; i < calls; i++ {
			key := fmt.Sprintf("req-%d", i)
			if _, err := c.Call("server", []byte(key), CallOpts{Timeout: 10 * time.Minute, MaxRetries: 30}); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
		}
		for k, n := range counts {
			if n != 1 {
				t.Errorf("request %s executed %d times", k, n)
			}
		}
		if len(counts) != calls {
			t.Errorf("executed %d distinct requests, want %d", len(counts), calls)
		}
	})
}

func TestBusyKeepsSlowCallAlive(t *testing.T) {
	w := newWorld(7, netsim.Ethernet.Params())
	w.sim.Run(func() {
		srv := w.node("server", nil)
		srv.handler = func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			w.sim.Sleep(45 * time.Second) // longer than several RTOs
			return []byte("done"), nil
		}
		c := w.node("client", nil)
		rep, err := c.Call("server", []byte("slow"), CallOpts{Timeout: 2 * time.Minute, MaxRetries: 3})
		if err != nil {
			t.Fatalf("slow call failed: %v", err)
		}
		if string(rep) != "done" {
			t.Errorf("reply = %q", rep)
		}
	})
}

func TestRTTEstimateFromTimestampEcho(t *testing.T) {
	w := newWorld(8, netsim.Modem.Params())
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		for i := 0; i < 5; i++ {
			if _, err := c.Call("server", []byte("x"), CallOpts{}); err != nil {
				t.Fatal(err)
			}
		}
		srtt := c.Monitor().Peer("server").SRTT()
		// Modem: 2×100 ms latency plus serialization of ~100-byte
		// packets at 9600 b/s (~2×110 ms) ≈ 400 ms.
		if srtt < 200*time.Millisecond || srtt > time.Second {
			t.Errorf("SRTT over modem = %v, want ~400ms", srtt)
		}
	})
}

func TestAdaptiveRTOSpeedsRecovery(t *testing.T) {
	// After RTT samples exist, a lost packet should be retransmitted on
	// the order of the measured RTT, not InitialRTO.
	w := newWorld(9, netsim.Ethernet.Params())
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		for i := 0; i < 10; i++ {
			c.Call("server", []byte("warm"), CallOpts{})
		}
		// Now drop exactly the next request packet.
		w.net.Configure("client", "server", func(p *netsim.LinkParams) { p.LossRate = 1.0 })
		w.sim.AfterFunc(300*time.Millisecond, func() {
			w.net.Configure("client", "server", func(p *netsim.LinkParams) { p.LossRate = 0 })
		})
		start := w.sim.Now()
		if _, err := c.Call("server", []byte("x"), CallOpts{}); err != nil {
			t.Fatal(err)
		}
		elapsed := w.sim.Now().Sub(start)
		if elapsed >= netmon.InitialRTO {
			t.Errorf("recovery took %v; adaptive RTO should beat InitialRTO %v", elapsed, netmon.InitialRTO)
		}
	})
}

func TestProbe(t *testing.T) {
	w := newWorld(10, netsim.Modem.Params())
	w.sim.Run(func() {
		w.node("server", nil) // probes need no handler
		c := w.node("client", nil)
		if err := c.Probe("server", 30*time.Second); err != nil {
			t.Fatalf("probe failed: %v", err)
		}
		w.net.SetUp("client", "server", false)
		if err := c.Probe("server", 10*time.Second); !errors.Is(err, ErrTimeout) {
			t.Errorf("probe on dead link = %v, want ErrTimeout", err)
		}
	})
}

func TestUnifiedKeepaliveLiveness(t *testing.T) {
	w := newWorld(11, netsim.Ethernet.Params())
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		peer := c.Monitor().Peer("server")
		if peer.Alive(time.Minute) {
			t.Error("peer alive before traffic")
		}
		// A bulk SFTP transfer alone (no RPC reply packets) must refresh
		// liveness — the unified keepalive of §4.1.
		c.Call("server", bytes.Repeat([]byte("a"), 4<<10), CallOpts{})
		if !peer.Alive(time.Minute) {
			t.Error("peer not alive after traffic")
		}
	})
}

func TestServerCallsClient(t *testing.T) {
	// Symmetric operation: the server issues a call to the client, as
	// callback breaks require.
	w := newWorld(12, netsim.Ethernet.Params())
	w.sim.Run(func() {
		var gotBreak []byte
		w.node("client", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			gotBreak = body
			return nil, nil
		})
		srv := w.node("server", echoHandler)
		if _, err := srv.Call("client", []byte("callback-break"), CallOpts{}); err != nil {
			t.Fatal(err)
		}
		if string(gotBreak) != "callback-break" {
			t.Errorf("client saw %q", gotBreak)
		}
	})
}

func TestConcurrentCalls(t *testing.T) {
	w := newWorld(13, netsim.WaveLan.Params())
	w.sim.Run(func() {
		w.node("server", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			w.sim.Sleep(time.Duration(body[0]) * time.Millisecond)
			return body, nil
		})
		c := w.node("client", nil)
		done := simtime.NewQueue[error](w.sim)
		const calls = 20
		for i := 0; i < calls; i++ {
			i := i
			w.sim.Go(func() {
				rep, err := c.Call("server", []byte{byte(i), byte(i * 3)}, CallOpts{})
				if err == nil && (len(rep) != 2 || rep[0] != byte(i)) {
					err = fmt.Errorf("bad reply for %d", i)
				}
				done.Put(err)
			})
		}
		for i := 0; i < calls; i++ {
			if err, _ := done.Get(); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestCloseFailsPendingCalls(t *testing.T) {
	w := newWorld(14, netsim.Ethernet.Params())
	w.sim.Run(func() {
		w.node("server", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			w.sim.Sleep(time.Hour)
			return nil, nil
		})
		c := w.node("client", nil)
		done := simtime.NewQueue[error](w.sim)
		w.sim.Go(func() {
			_, err := c.Call("server", []byte("x"), CallOpts{Timeout: 2 * time.Hour})
			done.Put(err)
		})
		w.sim.Sleep(time.Second)
		c.Close()
		err, _ := done.Get()
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
			t.Errorf("pending call after Close: %v", err)
		}
		if _, err := c.Call("server", nil, CallOpts{}); !errors.Is(err, ErrClosed) {
			t.Errorf("call on closed node: %v", err)
		}
	})
}

func TestRawTransfer(t *testing.T) {
	w := newWorld(15, netsim.WaveLan.Params())
	w.sim.Run(func() {
		srv := w.node("server", nil)
		c := w.node("client", nil)
		data := bytes.Repeat([]byte("q"), 50<<10)
		done := simtime.NewQueue[error](w.sim)
		w.sim.Go(func() { done.Put(c.Transfer("server", 42, data)) })
		got, err := srv.AwaitTransfer("client", 42, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if e, _ := done.Get(); e != nil {
			t.Fatal(e)
		}
		if !bytes.Equal(got, data) {
			t.Error("raw transfer corrupted")
		}
	})
}

func TestReplyCacheFlushedOnClientRestart(t *testing.T) {
	// A restarted client begins a fresh sequence space at 1. The server's
	// reply cache must not answer the new node's first call with the old
	// node's first reply: the incarnation stamped on requests keys the
	// cache to one client lifetime.
	w := newWorld(11, netsim.Ethernet.Params())
	w.sim.Run(func() {
		var calls int
		w.node("server", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			calls++
			return []byte(fmt.Sprintf("exec %d: %s", calls, body)), nil
		})

		c1 := w.node("client", nil)
		rep, err := c1.Call("server", []byte("first life"), CallOpts{})
		if err != nil || string(rep) != "exec 1: first life" {
			t.Fatalf("first incarnation: %q, %v", rep, err)
		}
		c1.Close()

		w.sim.Sleep(time.Second) // a later birth instant → a new incarnation
		c2 := w.node("client", nil)
		rep, err = c2.Call("server", []byte("second life"), CallOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if string(rep) != "exec 2: second life" {
			t.Errorf("restarted client got %q — the old incarnation's cached reply", rep)
		}

		// Within one incarnation, at-most-once still holds: the sequence
		// space is fresh but retransmits of the same call stay dedup'd
		// (covered by TestAtMostOnceExecution; here we pin that restart
		// did not break normal caching).
		rep, err = c2.Call("server", []byte("again"), CallOpts{})
		if err != nil || string(rep) != "exec 3: again" {
			t.Errorf("follow-up call: %q, %v", rep, err)
		}
	})
}
