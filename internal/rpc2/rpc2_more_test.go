package rpc2

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestTimestampWraparound: the 32-bit microsecond timestamp wraps every
// ~71 minutes; RTT estimation must survive sessions longer than that.
func TestTimestampWraparound(t *testing.T) {
	w := newWorld(20, netsim.Modem.Params())
	w.sim.Run(func() {
		w.node("server", echoHandler)
		c := w.node("client", nil)
		for session := 0; session < 4; session++ {
			for i := 0; i < 3; i++ {
				if _, err := c.Call("server", []byte("tick"), CallOpts{}); err != nil {
					t.Fatalf("session %d call %d: %v", session, i, err)
				}
			}
			srtt := c.Monitor().Peer("server").SRTT()
			if srtt <= 0 || srtt > 5*time.Second {
				t.Fatalf("session %d: SRTT = %v; wraparound corrupted estimation", session, srtt)
			}
			// Straddle the uint32-microsecond wrap (~71.6 minutes).
			w.sim.Sleep(40 * time.Minute)
		}
	})
}

// TestReplyCacheEviction: the duplicate-suppression cache is bounded; old
// entries are evicted and do not leak.
func TestReplyCacheEviction(t *testing.T) {
	w := newWorld(21, netsim.Ethernet.Params())
	w.sim.Run(func() {
		srv := w.node("server", echoHandler)
		c := w.node("client", nil)
		for i := 0; i < 600; i++ {
			if _, err := c.Call("server", []byte{byte(i)}, CallOpts{}); err != nil {
				t.Fatal(err)
			}
		}
		srv.mu.Lock()
		pc := srv.replyCache["client"]
		cached := len(pc.replies)
		srv.mu.Unlock()
		if cached > 256 {
			t.Errorf("reply cache holds %d entries, want ≤ 256", cached)
		}
	})
}

// TestLargeRequestAndReplyBothViaSFTP exercises simultaneous big bodies in
// both directions.
func TestLargeRequestAndReplyBothViaSFTP(t *testing.T) {
	w := newWorld(22, netsim.WaveLan.Params())
	w.sim.Run(func() {
		w.node("server", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			// Reply with the reversed body (also large).
			out := make([]byte, len(body))
			for i, b := range body {
				out[len(body)-1-i] = b
			}
			return out, nil
		})
		c := w.node("client", nil)
		body := bytes.Repeat([]byte{1, 2, 3, 4}, 40<<10)
		rep, err := c.Call("server", body, CallOpts{Timeout: 10 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep) != len(body) || rep[0] != body[len(body)-1] {
			t.Error("reversed large reply corrupted")
		}
	})
}

// TestManyPeersIsolation: per-peer state (reply caches, RTT) must not
// bleed between clients.
func TestManyPeersIsolation(t *testing.T) {
	w := newWorld(23, netsim.Ethernet.Params())
	w.sim.Run(func() {
		hits := make(map[string]int)
		srv := w.node("server", func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
			hits[src]++
			return body, nil
		})
		_ = srv
		const n = 8
		for i := 0; i < n; i++ {
			c := w.node(fmt.Sprintf("client%d", i), nil)
			for j := 0; j < 5; j++ {
				if _, err := c.Call("server", []byte{byte(j)}, CallOpts{}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if len(hits) != n {
			t.Errorf("server saw %d distinct peers, want %d", len(hits), n)
		}
		for src, count := range hits {
			if count != 5 {
				t.Errorf("%s executed %d times, want 5 (at-most-once per peer)", src, count)
			}
		}
	})
}

// TestProbeRTTFeedsEstimator: probes alone must establish an RTT estimate
// (Venus uses them to judge connectivity without application traffic).
func TestProbeRTTFeedsEstimator(t *testing.T) {
	w := newWorld(24, netsim.ISDN.Params())
	w.sim.Run(func() {
		w.node("server", nil)
		c := w.node("client", nil)
		if err := c.Probe("server", 30*time.Second); err != nil {
			t.Fatal(err)
		}
		if c.Monitor().Peer("server").SRTT() <= 0 {
			t.Error("probe did not feed the RTT estimator")
		}
	})
}
