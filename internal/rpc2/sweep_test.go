package rpc2

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestReplyCacheEvictsSilentPeers: at-most-once state for a peer that has
// gone silent past the liveness window is reclaimed by the sweeper, while
// a peer that keeps calling retains its cache entry.
func TestReplyCacheEvictsSilentPeers(t *testing.T) {
	w := newWorld(11, netsim.Ethernet.Params())
	w.sim.Run(func() {
		srv := w.node("server", echoHandler)
		dead := w.node("dead", nil)
		live := w.node("live", nil)
		for _, c := range []*Node{dead, live} {
			if _, err := c.Call("server", []byte("hi"), CallOpts{}); err != nil {
				t.Fatal(err)
			}
		}
		if got := srv.ReplyCacheSize(); got != 2 {
			t.Fatalf("ReplyCacheSize = %d, want 2", got)
		}

		// The live peer calls every half hour — always within the TTL. The
		// dead peer never calls again.
		for i := 0; i < 6; i++ {
			w.sim.Sleep(30 * time.Minute)
			if _, err := live.Call("server", []byte("still here"), CallOpts{}); err != nil {
				t.Fatal(err)
			}
		}

		// Three hours in, well past replyCacheTTL: only the live peer's
		// entry remains.
		if got := srv.ReplyCacheSize(); got != 1 {
			t.Errorf("ReplyCacheSize = %d, want 1 (silent peer evicted)", got)
		}

		// The evicted peer calling again is still served correctly — losing
		// the cache entry costs duplicate suppression history, not liveness.
		rep, err := dead.Call("server", []byte("back"), CallOpts{})
		if err != nil || string(rep) != "back" {
			t.Fatalf("evicted peer's call = %q, %v", rep, err)
		}
		if got := srv.ReplyCacheSize(); got != 2 {
			t.Errorf("ReplyCacheSize after return = %d, want 2", got)
		}
	})
}
