// Package rpc2 is the remote procedure call layer of the reproduction,
// modeled on Coda's RPC2 (§4.1).
//
// Characteristics carried over from the paper's description:
//
//   - Adaptive retransmission: round-trip times are measured with timestamp
//     echoing (every packet carries a microsecond timestamp; replies echo
//     the timestamp of the specific copy they answer, so samples remain
//     valid across retransmissions — Karn's problem does not arise). The
//     samples feed the shared netmon estimator, whose Jacobson RTO drives
//     both RPC2 and SFTP retransmission, so the protocols work from LAN
//     speeds down to a 1.2 Kb/s serial line.
//   - Unified keepalives: any packet from a peer — request, reply, BUSY,
//     probe, or SFTP data/ack — refreshes the peer's liveness in netmon,
//     which Venus reads instead of generating its own keepalive traffic.
//   - BUSY responses: a server that is still executing a request answers
//     duplicate transmissions with BUSY, which parks the client without
//     backoff; long operations (reintegration) thus do not look like dead
//     servers.
//   - Side effects: bodies larger than one datagram travel via the SFTP
//     engine bound to the same endpoint, then a small header packet
//     references the completed transfer.
//
// A Node is symmetric: it issues calls and serves a handler, so servers can
// call clients (callback breaks) exactly as clients call servers.
package rpc2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sftp"
	"repro/internal/simtime"
)

// Packet kinds.
const (
	kindReq      = 1
	kindRep      = 2
	kindBusy     = 3
	kindProbe    = 4
	kindProbeAck = 5
	kindSFTP     = 6
)

// Flags.
const (
	flagBodyViaSFTP = 1 << 0
	flagAppError    = 1 << 1
)

// InlineLimit is the largest body carried inside the request/reply packet
// itself; larger bodies go through SFTP.
const InlineLimit = 1024

// Defaults for CallOpts.
const (
	DefaultTimeout    = 60 * time.Second
	DefaultMaxRetries = 8
	// sftpAwaitSlack bounds how long a node waits for a side-effect
	// transfer announced by a header packet.
	sftpAwaitSlack = 5 * time.Minute
)

// Reply-cache bounds. Beyond the per-peer entry cap, whole peer caches are
// reclaimed once netmon stops hearing from the peer: a host silent for
// replyCacheTTL cannot still be retransmitting a request, so at-most-once
// execution is preserved while long-lived nodes stop accumulating state
// for every peer that ever called.
const (
	replyCacheTTL      = time.Hour
	replySweepInterval = 5 * time.Minute
)

// Errors.
var (
	// ErrTimeout reports that the peer never answered.
	ErrTimeout = errors.New("rpc2: call timed out")
	// ErrClosed reports a call on a closed node.
	ErrClosed = errors.New("rpc2: node closed")
)

// RemoteError is an application-level failure returned by the peer's
// handler. The RPC itself succeeded.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc2: remote: " + e.Msg }

// Handler serves incoming calls. sc is the caller's span context as
// carried in the packet header (zero when the call is untraced);
// handlers pass it to StartSpan so server-side work joins the caller's
// trace tree. Returning a non-nil error ships the error string to the
// caller as a RemoteError.
type Handler func(src string, sc obs.SpanContext, body []byte) ([]byte, error)

// CallOpts tunes one call.
type CallOpts struct {
	// Timeout bounds the whole call; zero means DefaultTimeout.
	Timeout time.Duration
	// MaxRetries bounds header retransmissions; zero means
	// DefaultMaxRetries. Negative means no retries.
	MaxRetries int
	// Span, when valid, makes this call part of a trace: the node mints
	// an rpc2_call child span and propagates its context in the packet
	// header (and through SFTP side effects). Zero leaves the call
	// untraced — zero header bytes, no span minted.
	Span obs.SpanContext
}

// Node is one RPC2 endpoint: a datagram socket plus an SFTP engine, a
// handler for incoming calls, and shared peer estimates.
type Node struct {
	clock   simtime.Clock
	conn    netsim.PacketConn
	mon     *netmon.Monitor
	engine  *sftp.Engine
	handler Handler

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*simtime.Queue[inbound]
	// replyCache remembers recent replies per peer for duplicate
	// suppression (at-most-once execution).
	replyCache map[string]*peerCache
	closed     bool

	epoch time.Time // base for 32-bit microsecond timestamps
	// inc is the node's incarnation, stamped on every request it issues
	// and echoed by replies (RPC2's connection epoch). A restarted node
	// reuses sequence numbers from 1; without the incarnation a peer's
	// reply cache would answer the new node's calls with the old node's
	// replies. Receivers flush a peer's cache when its incarnation
	// changes, and callers discard echoes from a previous life.
	inc uint32

	// reg/self mint rpc2 spans (reg may be nil: tracing inert).
	reg  *obs.Registry
	self string

	met nodeMetrics
}

// nodeMetrics caches the node's metric handles, labeled by the node's
// own address so several nodes can share one registry. Handles are nil
// (inert) when no registry was injected.
type nodeMetrics struct {
	calls       *obs.Counter
	inflight    *obs.Gauge
	retransmits *obs.Counter
	busy        *obs.Counter
	timeouts    *obs.Counter
	handled     *obs.Counter
	dupReplies  *obs.Counter
	rtt         *obs.Histogram
}

// rttBucketsUS spans a LAN round trip to a saturated modem, in
// microseconds.
var rttBucketsUS = []int64{
	1_000, 5_000, 10_000, 50_000, 100_000,
	500_000, 1_000_000, 5_000_000, 10_000_000, 60_000_000,
}

type inbound struct {
	kind   byte
	flags  byte
	tsEcho uint32
	inc    uint32
	body   []byte
	src    string
}

type peerCache struct {
	inc        uint32 // incarnation of the peer this cache serves
	inProgress map[uint64]bool
	replies    map[uint64]wireReply
	order      []uint64
}

type wireReply struct {
	flags byte
	body  []byte
}

// NewNode creates a node on conn and starts its receive loop. handler may
// be nil for pure clients. reg may be nil; when present, the node, its
// SFTP engine, and the shared netmon estimator all publish through it —
// this is the single injection point for transport observability.
func NewNode(clock simtime.Clock, conn netsim.PacketConn, mon *netmon.Monitor, handler Handler, reg *obs.Registry) *Node {
	self := conn.LocalAddr()
	node := obs.L("node", self)
	n := &Node{
		clock:      clock,
		conn:       conn,
		mon:        mon,
		handler:    handler,
		pending:    make(map[uint64]*simtime.Queue[inbound]),
		replyCache: make(map[string]*peerCache),
		// Back-date the epoch so a timestamp can never be zero (zero
		// means "no echo" on the wire).
		epoch: clock.Now().Add(-time.Millisecond),
		inc:   incarnation(clock),
		reg:   reg,
		self:  self,
		met: nodeMetrics{
			calls:       reg.Counter("rpc2_calls_total", node),
			inflight:    reg.Gauge("rpc2_calls_inflight", node),
			retransmits: reg.Counter("rpc2_retransmits_total", node),
			busy:        reg.Counter("rpc2_busy_received_total", node),
			timeouts:    reg.Counter("rpc2_call_timeouts_total", node),
			handled:     reg.Counter("rpc2_requests_handled_total", node),
			dupReplies:  reg.Counter("rpc2_duplicate_requests_total", node),
			rtt:         reg.Histogram("rpc2_rtt_us", rttBucketsUS, node),
		},
	}
	reg.GaugeFunc("rpc2_reply_cache_peers", func() int64 { return int64(n.ReplyCacheSize()) }, node)
	mon.Observe(reg, self)
	n.engine = sftp.NewEngine(clock, mon, n.sendSFTP, reg, self)
	clock.Go(n.recvLoop)
	clock.Go(n.sweepReplyCache)
	return n
}

// sweepReplyCache drops peer caches for hosts netmon has not heard from
// within replyCacheTTL. Caches with a request still executing are kept:
// the reply must be recorded even if the client has vanished.
func (n *Node) sweepReplyCache() {
	for {
		n.clock.Sleep(replySweepInterval)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		// Probe in sorted order: Peer registers gauges on first sight,
		// and that registration order must not depend on map iteration.
		srcs := make([]string, 0, len(n.replyCache))
		for src := range n.replyCache {
			srcs = append(srcs, src)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			if len(n.replyCache[src].inProgress) > 0 {
				continue
			}
			if !n.mon.Peer(src).Alive(replyCacheTTL) {
				delete(n.replyCache, src)
			}
		}
		n.mu.Unlock()
	}
}

// ReplyCacheSize reports how many peers currently have cached replies
// (observability for the eviction policy).
func (n *Node) ReplyCacheSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.replyCache)
}

// Addr returns the node's own address.
func (n *Node) Addr() string { return n.conn.LocalAddr() }

// Monitor returns the shared peer estimator (exported to Venus, per §4.1).
func (n *Node) Monitor() *netmon.Monitor { return n.mon }

// Transfer ships data to dst over the node's SFTP engine outside any RPC;
// the peer claims it with AwaitTransfer. Used by the Figure 1 benchmark and
// available for raw bulk movement.
func (n *Node) Transfer(dst string, id uint64, data []byte) error {
	return n.engine.Send(dst, userXferID(id), data, obs.SpanContext{})
}

// AwaitTransfer receives a raw transfer sent with Transfer.
func (n *Node) AwaitTransfer(src string, id uint64, timeout time.Duration) ([]byte, error) {
	return n.engine.Await(src, userXferID(id), timeout)
}

// Close shuts the node down; in-flight calls fail with ErrClosed.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, q := range n.pending {
		q.Close()
	}
	n.mu.Unlock()
	_ = n.conn.Close()
}

// Call sends body to dst and returns the peer handler's reply.
func (n *Node) Call(dst string, body []byte, opts CallOpts) ([]byte, error) {
	if opts.Timeout == 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	peer := n.mon.Peer(dst)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	n.seq++
	seq := n.seq
	replies := simtime.NewQueue[inbound](n.clock)
	n.pending[seq] = replies
	n.mu.Unlock()
	n.met.calls.Inc()
	n.met.inflight.Add(1)
	defer func() {
		n.met.inflight.Add(-1)
		n.mu.Lock()
		delete(n.pending, seq)
		n.mu.Unlock()
	}()

	start := n.clock.Now()
	deadline := start.Add(opts.Timeout)

	// A valid parent context makes this call one rpc2_call span in the
	// caller's tree; its own context travels in every packet copy (and
	// with SFTP side effects). Untraced calls mint nothing and carry
	// zero header bytes.
	var sp *obs.SpanHandle
	wireCtx := obs.SpanContext{}
	if opts.Span.Valid() {
		sp = n.reg.StartSpan(n.self, "rpc2_call", opts.Span, obs.F("dst", dst))
		wireCtx = sp.Context()
	}
	defer sp.End()

	flags := byte(0)
	wireBody := body
	if len(body) > InlineLimit {
		// Ship the body via SFTP first; the header packet then refers
		// to the completed transfer.
		if err := n.engine.Send(dst, reqXferID(seq), body, wireCtx); err != nil {
			return nil, fmt.Errorf("rpc2: request side effect: %w", err)
		}
		flags |= flagBodyViaSFTP
		wireBody = nil
	}

	send := func() {
		n.sendPacket(dst, kindReq, flags, seq, n.ticks(), 0, n.inc, wireCtx, wireBody)
	}
	send()

	retries := 0
	rto := peer.RTO()
	for {
		remain := deadline.Sub(n.clock.Now())
		if remain <= 0 {
			n.met.timeouts.Inc()
			return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, dst, opts.Timeout)
		}
		wait := rto
		if wait > remain {
			wait = remain
		}
		waitStart := n.clock.Now()
		in, ok := replies.GetTimeout(wait)
		if !ok {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return nil, ErrClosed
			}
			retries++
			if retries > opts.MaxRetries {
				n.met.timeouts.Inc()
				return nil, fmt.Errorf("%w: %s after %d retries", ErrTimeout, dst, retries-1)
			}
			rto *= 2
			if rto > netmon.MaxRTO {
				rto = netmon.MaxRTO
			}
			n.met.retransmits.Inc()
			if wireCtx.Valid() {
				// The RTO the caller just burned waiting, attributed as
				// retransmit time on the critical path.
				n.reg.SpanAt(n.self, "rpc2_retransmit_wait", wireCtx, waitStart).End()
			}
			send()
			continue
		}
		switch in.kind {
		case kindBusy:
			// Server is working on it: wait a full fresh RTO without
			// counting a retry or backing off.
			n.met.busy.Inc()
			n.observeEcho(peer, in.tsEcho)
			retries = 0
			rto = peer.RTO()
			continue
		case kindRep:
			n.observeEcho(peer, in.tsEcho)
			rep := in.body
			if in.flags&flagBodyViaSFTP != 0 {
				var err error
				rep, err = n.engine.Await(dst, repXferID(seq), sftpAwaitSlack)
				if err != nil {
					return nil, fmt.Errorf("rpc2: reply side effect: %w", err)
				}
			}
			elapsed := n.clock.Now().Sub(start)
			peer.ObserveTransfer(int64(len(body)+len(rep)+64), elapsed)
			if in.flags&flagAppError != 0 {
				return nil, &RemoteError{Msg: string(rep)}
			}
			return rep, nil
		}
	}
}

// Probe performs a liveness/RTT exchange with dst using dedicated probe
// packets (no handler involvement on the peer).
func (n *Node) Probe(dst string, timeout time.Duration) error {
	peer := n.mon.Peer(dst)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.seq++
	seq := n.seq
	replies := simtime.NewQueue[inbound](n.clock)
	n.pending[seq] = replies
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.pending, seq)
		n.mu.Unlock()
	}()

	deadline := n.clock.Now().Add(timeout)
	rto := peer.RTO()
	for {
		n.sendPacket(dst, kindProbe, 0, seq, n.ticks(), 0, n.inc, obs.SpanContext{}, nil)
		remain := deadline.Sub(n.clock.Now())
		if remain <= 0 {
			return fmt.Errorf("%w: probe %s", ErrTimeout, dst)
		}
		wait := rto
		if wait > remain {
			wait = remain
		}
		if _, ok := replies.GetTimeout(wait); ok {
			return nil
		}
		rto *= 2
		if rto > netmon.MaxRTO {
			rto = netmon.MaxRTO
		}
	}
}

func (n *Node) recvLoop() {
	for {
		payload, src, ok := n.conn.Recv()
		if !ok {
			return
		}
		n.mon.Peer(src).Heard()
		if len(payload) == 0 {
			continue
		}
		if payload[0] == kindSFTP {
			n.engine.Deliver(src, payload[1:])
			continue
		}
		kind, flags, seq, ts, tsEcho, inc, sc, body, ok := decodePacket(payload)
		if !ok {
			continue
		}
		switch kind {
		case kindReq:
			n.handleRequest(src, flags, seq, ts, inc, sc, body)
		case kindRep, kindBusy:
			if inc != n.inc {
				continue // reply addressed to a previous incarnation of this node
			}
			n.mu.Lock()
			q := n.pending[seq]
			n.mu.Unlock()
			if q != nil {
				q.Put(inbound{kind: kind, flags: flags, tsEcho: tsEcho, inc: inc, body: body, src: src})
			}
		case kindProbe:
			n.sendPacket(src, kindProbeAck, 0, seq, n.ticks(), ts, inc, obs.SpanContext{}, nil)
		case kindProbeAck:
			if inc != n.inc {
				continue
			}
			n.observeEcho(n.mon.Peer(src), tsEcho)
			n.mu.Lock()
			q := n.pending[seq]
			n.mu.Unlock()
			if q != nil {
				q.Put(inbound{kind: kind, tsEcho: tsEcho, inc: inc, src: src})
			}
		}
	}
}

func (n *Node) handleRequest(src string, flags byte, seq uint64, ts, inc uint32, sc obs.SpanContext, body []byte) {
	n.mu.Lock()
	pc := n.replyCache[src]
	if pc == nil || pc.inc != inc {
		// First contact, or the peer restarted and began a new sequence
		// space: a fresh cache, abandoning the old incarnation's entries.
		// Handlers still running for the old cache write their replies
		// into the orphaned object, where no new-incarnation sequence
		// number can ever collide with them.
		pc = &peerCache{inc: inc, inProgress: make(map[uint64]bool), replies: make(map[uint64]wireReply)}
		n.replyCache[src] = pc
	}
	if rep, done := pc.replies[seq]; done {
		n.mu.Unlock()
		n.met.dupReplies.Inc()
		n.sendPacket(src, kindRep, rep.flags, seq, n.ticks(), ts, inc, obs.SpanContext{}, rep.body)
		return
	}
	if pc.inProgress[seq] {
		n.mu.Unlock()
		n.sendPacket(src, kindBusy, 0, seq, n.ticks(), ts, inc, obs.SpanContext{}, nil)
		return
	}
	pc.inProgress[seq] = true
	n.mu.Unlock()

	n.clock.Go(func() {
		reqBody := body
		if flags&flagBodyViaSFTP != 0 {
			var err error
			reqBody, err = n.engine.Await(src, reqXferID(seq), sftpAwaitSlack)
			if err != nil {
				n.mu.Lock()
				delete(pc.inProgress, seq)
				n.mu.Unlock()
				return // client will retry or give up
			}
		}

		n.met.handled.Inc()
		var repFlags byte
		var repBody []byte
		if n.handler == nil {
			repFlags = flagAppError
			repBody = []byte("no handler")
		} else if out, err := n.handler(src, sc, reqBody); err != nil {
			repFlags = flagAppError
			repBody = []byte(err.Error())
		} else {
			repBody = out
		}

		wire := repBody
		if len(repBody) > InlineLimit {
			// The reply side effect carries the caller's context so the
			// receive lands in the caller's rpc2_call span.
			if err := n.engine.Send(src, repXferID(seq), repBody, sc); err != nil {
				n.mu.Lock()
				delete(pc.inProgress, seq)
				n.mu.Unlock()
				return
			}
			repFlags |= flagBodyViaSFTP
			wire = nil
		}

		n.mu.Lock()
		delete(pc.inProgress, seq)
		pc.replies[seq] = wireReply{flags: repFlags, body: wire}
		pc.order = append(pc.order, seq)
		if len(pc.order) > 256 {
			delete(pc.replies, pc.order[0])
			pc.order = pc.order[1:]
		}
		n.mu.Unlock()
		n.sendPacket(src, kindRep, repFlags, seq, n.ticks(), ts, inc, obs.SpanContext{}, wire)
	})
}

// incarnation derives a node's birth stamp from its clock: truncated
// microseconds since the Unix epoch, never zero. Two incarnations of the
// same address collide only if created within the same microsecond or
// exactly 2^32 µs (~71 minutes) apart — a reboot cannot do either.
func incarnation(clock simtime.Clock) uint32 {
	v := uint32(clock.Now().UnixNano() / int64(time.Microsecond))
	if v == 0 {
		v = 1
	}
	return v
}

// ticks returns the node's clock as truncated microseconds for timestamp
// echoing. Wraparound (~71 minutes) is handled by unsigned subtraction.
func (n *Node) ticks() uint32 {
	return uint32(n.clock.Now().Sub(n.epoch) / time.Microsecond)
}

func (n *Node) observeEcho(peer *netmon.Peer, tsEcho uint32) {
	if tsEcho == 0 {
		return
	}
	delta := n.ticks() - tsEcho // wraps correctly
	if delta < 1<<31 {
		n.met.rtt.Observe(int64(delta))
		peer.ObserveRTT(time.Duration(delta) * time.Microsecond)
	}
}

// Transfer-ID spaces: request bodies, reply bodies, and user transfers must
// not collide on (peer, id).
func reqXferID(seq uint64) uint64 { return seq << 2 }
func repXferID(seq uint64) uint64 { return seq<<2 | 1 }
func userXferID(id uint64) uint64 { return id<<2 | 2 }

// packetHeader is the framed size of everything before the body:
// kind(1) flags(1) seq(8) ts(4) tsEcho(4) inc(4) trace(8) span(8).
// The trailing 16 bytes are the span context (PR 9); all-zero means
// the packet is untraced.
const packetHeader = 38

// appendPacket frames one packet into dst (the caller owns the buffer)
// and returns the extended slice.
//
//codalint:hotpath rpc2 wire framing
func appendPacket(dst []byte, kind, flags byte, seq uint64, ts, tsEcho, inc uint32, sc obs.SpanContext, body []byte) []byte {
	dst = append(dst, kind, flags)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, ts)
	dst = binary.BigEndian.AppendUint32(dst, tsEcho)
	dst = binary.BigEndian.AppendUint32(dst, inc)
	dst = binary.BigEndian.AppendUint64(dst, sc.Trace)
	dst = binary.BigEndian.AppendUint64(dst, sc.Span)
	return append(dst, body...)
}

// sendPacket frames one packet into a pooled buffer and hands it to the
// conn. PacketConn.Send must not retain the payload, so the buffer goes
// straight back to the pool: steady-state sends touch the heap zero
// times (pinned by BenchmarkAllocSendPacket and the benchgate). The
// span context is two fixed header words — propagation costs no
// allocations either way.
//
//codalint:hotpath rpc2 wire framing
func (n *Node) sendPacket(dst string, kind, flags byte, seq uint64, ts, tsEcho, inc uint32, sc obs.SpanContext, body []byte) {
	bp := bufpool.Get(packetHeader + len(body))
	*bp = appendPacket(*bp, kind, flags, seq, ts, tsEcho, inc, sc, body)
	_ = n.conn.Send(dst, *bp)
	bufpool.Put(bp)
}

// sendSFTP frames an SFTP fragment under the mux tag. This is the
// engine's ship callback: it fires once per fragment of every bulk
// transfer, the hottest send path in the system.
//
//codalint:hotpath sftp mux framing
func (n *Node) sendSFTP(dst string, payload []byte) error {
	bp := bufpool.Get(1 + len(payload))
	*bp = append(*bp, kindSFTP)
	*bp = append(*bp, payload...)
	err := n.conn.Send(dst, *bp)
	bufpool.Put(bp)
	return err
}

// decodePacket splits a framed packet; body aliases p, nothing is
// copied.
//
//codalint:hotpath rpc2 wire parsing
func decodePacket(p []byte) (kind, flags byte, seq uint64, ts, tsEcho, inc uint32, sc obs.SpanContext, body []byte, ok bool) {
	if len(p) < packetHeader {
		return
	}
	sc.Trace = binary.BigEndian.Uint64(p[22:])
	sc.Span = binary.BigEndian.Uint64(p[30:])
	return p[0], p[1], binary.BigEndian.Uint64(p[2:]),
		binary.BigEndian.Uint32(p[10:]), binary.BigEndian.Uint32(p[14:]),
		binary.BigEndian.Uint32(p[18:]), sc, p[packetHeader:], true
}
