package delta

import (
	"math/rand"
	"testing"
)

func benchData(size int) (base, target []byte) {
	rng := rand.New(rand.NewSource(1))
	base = make([]byte, size)
	rng.Read(base)
	target = append([]byte(nil), base...)
	for i := 0; i < 5; i++ {
		target[rng.Intn(len(target))] ^= 0x42
	}
	return base, target
}

func BenchmarkSign1MB(b *testing.B) {
	base, _ := benchData(1 << 20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sign(base, 0)
	}
}

func BenchmarkCompute1MBLightEdit(b *testing.B) {
	base, target := benchData(1 << 20)
	sig := Sign(base, 0)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(sig, target)
	}
}

func BenchmarkApply1MB(b *testing.B) {
	base, target := benchData(1 << 20)
	d := Compute(Sign(base, 0), target)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(base, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeWorstCaseUnrelated(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 256<<10)
	target := make([]byte, 256<<10)
	rng.Read(base)
	rng.Read(target)
	sig := Sign(base, 0)
	b.SetBytes(256 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(sig, target)
	}
}
