// Package delta implements rsync-style block differencing, the transport
// enhancement the paper lists as future work in §4.1: "We could also
// enhance SFTP to ship file differences rather than full contents."
//
// The receiver (here: the server, which holds the file's previous version)
// is described by a Signature: per-block rolling checksums (an Adler-32
// variant) and strong hashes (FNV-128 composed from two FNV-64 streams; no
// crypto needed, corruption is what we defend against and the final
// whole-file hash backstops it). The sender scans the new contents with a
// rolling window, matching blocks of the old file at any offset, and emits
// a Delta of copy-from-old and literal-insert operations. Applying the
// delta reconstructs the new file exactly; a whole-file hash in the delta
// lets the receiver verify the reconstruction before accepting it.
//
// Venus uses this during reintegration when weakly connected: a store
// record whose FID has a known previous version on the server ships a delta
// when it is smaller than the full contents (see venus's trickle path).
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// DefaultBlockSize balances signature size against match granularity; 2 KB
// suits the multi-kilobyte files of the workloads here.
const DefaultBlockSize = 2048

// ErrBaseMismatch reports that the delta was computed against a different
// base than the one presented for application.
var ErrBaseMismatch = errors.New("delta: base file does not match signature")

// ErrCorrupt reports a reconstruction whose hash failed verification.
var ErrCorrupt = errors.New("delta: reconstructed file failed verification")

// BlockSig identifies one block of the base file.
type BlockSig struct {
	Rolling uint32 // weak rolling checksum
	Strong  [16]byte
}

// Signature describes a base file for differencing.
type Signature struct {
	BlockSize int
	FileSize  int64
	Blocks    []BlockSig
	FileHash  [16]byte
}

// Op is one delta instruction: copy a block range from the base, or insert
// literal bytes.
type Op struct {
	// Copy: when Literal is nil, copy Blocks consecutive blocks starting
	// at block index From of the base.
	From   int
	Blocks int
	// Literal bytes to insert (when non-nil).
	Literal []byte
}

// Delta reconstructs a target file from a base file.
type Delta struct {
	BlockSize  int
	BaseHash   [16]byte // must match the base's Signature.FileHash
	TargetSize int64
	TargetHash [16]byte
	Ops        []Op
}

// WireSize estimates the delta's transmission cost in bytes.
func (d *Delta) WireSize() int64 {
	n := int64(64)
	for _, op := range d.Ops {
		if op.Literal != nil {
			n += int64(len(op.Literal)) + 8
		} else {
			n += 12
		}
	}
	return n
}

// strongHash produces a 16-byte hash from two seeded FNV-64 streams.
func strongHash(data []byte) [16]byte {
	var out [16]byte
	h1 := fnv.New64a()
	_, _ = h1.Write(data)
	binary.BigEndian.PutUint64(out[:8], h1.Sum64())
	h2 := fnv.New64()
	_, _ = h2.Write([]byte{0x5a})
	_, _ = h2.Write(data)
	binary.BigEndian.PutUint64(out[8:], h2.Sum64())
	return out
}

// rolling computes the Adler-style weak checksum of data.
func rolling(data []byte) (a, b uint32) {
	for i, c := range data {
		a += uint32(c)
		b += uint32(len(data)-i) * uint32(c)
	}
	return a & 0xffff, b & 0xffff
}

func combine(a, b uint32) uint32 { return a | b<<16 }

// Sign computes the signature of base with the given block size (0 means
// DefaultBlockSize).
func Sign(base []byte, blockSize int) Signature {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	sig := Signature{
		BlockSize: blockSize,
		FileSize:  int64(len(base)),
		FileHash:  strongHash(base),
	}
	for off := 0; off < len(base); off += blockSize {
		end := off + blockSize
		if end > len(base) {
			end = len(base)
		}
		block := base[off:end]
		a, b := rolling(block)
		sig.Blocks = append(sig.Blocks, BlockSig{
			Rolling: combine(a, b),
			Strong:  strongHash(block),
		})
	}
	return sig
}

// Compute produces a delta that transforms the file described by sig into
// target. Only full-size blocks of the base are match candidates (the
// final short block is cheaper to resend than to track).
func Compute(sig Signature, target []byte) Delta {
	bs := sig.BlockSize
	d := Delta{
		BlockSize:  bs,
		BaseHash:   sig.FileHash,
		TargetSize: int64(len(target)),
		TargetHash: strongHash(target),
	}

	// Index the base's full-size blocks by weak checksum.
	byWeak := make(map[uint32][]int)
	for i, b := range sig.Blocks {
		if (i+1)*bs <= int(sig.FileSize) { // full blocks only
			byWeak[b.Rolling] = append(byWeak[b.Rolling], i)
		}
	}

	var ops []Op
	var literal []byte
	flush := func() {
		if len(literal) > 0 {
			ops = append(ops, Op{Literal: append([]byte(nil), literal...)})
			literal = literal[:0]
		}
	}
	emitCopy := func(block int) {
		if n := len(ops); n > 0 && ops[n-1].Literal == nil &&
			ops[n-1].From+ops[n-1].Blocks == block {
			ops[n-1].Blocks++ // extend a run of consecutive blocks
			return
		}
		ops = append(ops, Op{From: block, Blocks: 1})
	}

	pos := 0
	if len(target) >= bs {
		a, b := rolling(target[:bs])
		for pos+bs <= len(target) {
			match := -1
			if cands := byWeak[combine(a, b)]; cands != nil {
				strong := strongHash(target[pos : pos+bs])
				for _, c := range cands {
					if sig.Blocks[c].Strong == strong {
						match = c
						break
					}
				}
			}
			if match >= 0 {
				flush()
				emitCopy(match)
				pos += bs
				if pos+bs <= len(target) {
					a, b = rolling(target[pos : pos+bs])
				}
				continue
			}
			// Slide the window one byte: O(1) rolling update.
			if pos+bs >= len(target) {
				break // window cannot slide past the end
			}
			out := uint32(target[pos])
			in := uint32(target[pos+bs])
			a = (a - out + in) & 0xffff
			b = (b - uint32(bs)*out + a) & 0xffff
			literal = append(literal, target[pos])
			pos++
		}
	}
	literal = append(literal, target[pos:]...)
	flush()
	d.Ops = ops
	return d
}

// Apply reconstructs the target from base and d, verifying both the base
// identity and the result.
func Apply(base []byte, d Delta) ([]byte, error) {
	if strongHash(base) != d.BaseHash {
		return nil, ErrBaseMismatch
	}
	bs := d.BlockSize
	out := make([]byte, 0, d.TargetSize)
	for _, op := range d.Ops {
		if op.Literal != nil {
			out = append(out, op.Literal...)
			continue
		}
		lo := op.From * bs
		hi := lo + op.Blocks*bs
		if lo < 0 || hi > len(base) {
			return nil, fmt.Errorf("delta: copy [%d,%d) outside base of %d bytes", lo, hi, len(base))
		}
		out = append(out, base[lo:hi]...)
	}
	if int64(len(out)) != d.TargetSize || strongHash(out) != d.TargetHash {
		return nil, ErrCorrupt
	}
	return out, nil
}
