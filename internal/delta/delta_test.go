package delta

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, base, target []byte, blockSize int) Delta {
	t.Helper()
	sig := Sign(base, blockSize)
	d := Compute(sig, target)
	got, err := Apply(base, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("reconstruction differs: %d bytes vs %d", len(got), len(target))
	}
	return d
}

func TestIdenticalFilesTinyDelta(t *testing.T) {
	base := bytes.Repeat([]byte("quickfox"), 2560) // 20 KB, block-aligned
	d := roundTrip(t, base, base, 0)
	if d.WireSize() > 200 {
		t.Errorf("identical file delta = %d bytes, want ~header only", d.WireSize())
	}
}

func TestSmallEditSmallDelta(t *testing.T) {
	base := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(base)
	target := append([]byte(nil), base...)
	copy(target[30_000:], []byte("EDITED HERE"))
	d := roundTrip(t, base, target, 0)
	// One edited block plus headers; far below the 64 KB full transfer.
	if d.WireSize() > 3*DefaultBlockSize {
		t.Errorf("single-edit delta = %d bytes, want < %d", d.WireSize(), 3*DefaultBlockSize)
	}
}

func TestInsertionShiftsHandled(t *testing.T) {
	// An insertion near the front misaligns every later block; the
	// rolling window must still find them at shifted offsets.
	base := make([]byte, 40<<10)
	rand.New(rand.NewSource(2)).Read(base)
	target := append([]byte("inserted prefix text"), base...)
	d := roundTrip(t, base, target, 0)
	if d.WireSize() > 4<<10 {
		t.Errorf("shifted-content delta = %d bytes; rolling match failed", d.WireSize())
	}
}

func TestCompletelyDifferentFallsBackToLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]byte, 10<<10)
	target := make([]byte, 12<<10)
	rng.Read(base)
	rng.Read(target)
	d := roundTrip(t, base, target, 0)
	if d.WireSize() < int64(len(target)) {
		t.Errorf("unrelated-content delta %d bytes < target %d; suspicious", d.WireSize(), len(target))
	}
}

func TestEmptyCases(t *testing.T) {
	roundTrip(t, nil, nil, 0)
	roundTrip(t, nil, []byte("growing from nothing"), 0)
	roundTrip(t, []byte("shrinking to nothing"), nil, 0)
}

func TestTargetSmallerThanBlock(t *testing.T) {
	base := bytes.Repeat([]byte("b"), 10<<10)
	roundTrip(t, base, []byte("tiny"), 0)
}

func TestApplyRejectsWrongBase(t *testing.T) {
	base := bytes.Repeat([]byte("a"), 8<<10)
	sig := Sign(base, 0)
	d := Compute(sig, append(base, []byte("tail")...))
	wrong := bytes.Repeat([]byte("x"), 8<<10)
	if _, err := Apply(wrong, d); !errors.Is(err, ErrBaseMismatch) {
		t.Errorf("Apply with wrong base: %v, want ErrBaseMismatch", err)
	}
}

func TestApplyRejectsTamperedDelta(t *testing.T) {
	base := bytes.Repeat([]byte("a"), 8<<10)
	sig := Sign(base, 0)
	target := append([]byte(nil), base...)
	target[100] = 'z'
	d := Compute(sig, target)
	for i, op := range d.Ops {
		if op.Literal != nil {
			d.Ops[i].Literal[0] ^= 0xff
			break
		}
	}
	if _, err := Apply(base, d); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tampered delta: %v, want ErrCorrupt", err)
	}
}

func TestCopyRunsCoalesced(t *testing.T) {
	base := make([]byte, 32<<10)
	rand.New(rand.NewSource(4)).Read(base)
	sig := Sign(base, 0)
	d := Compute(sig, base)
	if len(d.Ops) != 1 || d.Ops[0].Literal != nil || d.Ops[0].Blocks != len(base)/DefaultBlockSize {
		t.Errorf("identical file should be one copy run, got %d ops", len(d.Ops))
	}
}

// Property: Apply(base, Compute(Sign(base), target)) == target for random
// inputs built by mutating the base (the realistic case) and for unrelated
// inputs.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeKB uint8, edits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, (int(sizeKB)+1)<<9) // 0.5–128 KB
		rng.Read(base)
		target := append([]byte(nil), base...)
		for e := 0; e < int(edits%12); e++ {
			switch rng.Intn(3) {
			case 0: // overwrite
				if len(target) > 10 {
					off := rng.Intn(len(target) - 1)
					target[off] ^= byte(rng.Intn(255) + 1)
				}
			case 1: // insert
				off := rng.Intn(len(target) + 1)
				ins := make([]byte, rng.Intn(500))
				rng.Read(ins)
				target = append(target[:off:off], append(ins, target[off:]...)...)
			case 2: // delete
				if len(target) > 600 {
					off := rng.Intn(len(target) - 512)
					n := rng.Intn(512)
					target = append(target[:off:off], target[off+n:]...)
				}
			}
		}
		sig := Sign(base, 1024)
		d := Compute(sig, target)
		got, err := Apply(base, d)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: deltas of lightly-edited files are much smaller than the file.
func TestDeltaCompressionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, 64<<10)
		rng.Read(base)
		target := append([]byte(nil), base...)
		// Three point edits.
		for i := 0; i < 3; i++ {
			target[rng.Intn(len(target))] ^= 0x55
		}
		d := Compute(Sign(base, 0), target)
		return d.WireSize() < int64(len(target))/4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
