package netsim

import (
	"net"
	"time"
)

// UDP adapts a real UDP socket to the PacketConn interface, so the full
// client/server stack (rpc2, sftp, venus, server) runs unchanged over a
// live network. Addresses are "host:port" strings.
//
// This file is the real-transport adapter on codalint's simclock
// allowlist: it is the one place outside internal/simtime and cmd/
// where wall-clock time may be read, because kernel socket deadlines
// (SetReadDeadline) are necessarily real time. Everything above this
// adapter blocks only through simtime.Clock.
type UDP struct {
	conn *net.UDPConn
}

// ListenUDP opens a real UDP endpoint on addr ("host:port"; ":0" picks a
// free port).
func ListenUDP(addr string) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	c, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	return &UDP{conn: c}, nil
}

// LocalAddr implements PacketConn.
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// Send implements PacketConn.
func (u *UDP) Send(dst string, payload []byte) error {
	ua, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		return err
	}
	_, err = u.conn.WriteToUDP(payload, ua)
	return err
}

// Recv implements PacketConn.
func (u *UDP) Recv() ([]byte, string, bool) {
	return u.recv(time.Time{})
}

// RecvTimeout implements PacketConn.
func (u *UDP) RecvTimeout(d time.Duration) ([]byte, string, bool) {
	return u.recv(time.Now().Add(d))
}

func (u *UDP) recv(deadline time.Time) ([]byte, string, bool) {
	if err := u.conn.SetReadDeadline(deadline); err != nil {
		return nil, "", false
	}
	buf := make([]byte, 64<<10)
	n, src, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, "", false
	}
	return buf[:n], src.String(), true
}

// Close implements PacketConn.
func (u *UDP) Close() error { return u.conn.Close() }
