package netsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

func newNet(t *testing.T) (*simtime.Sim, *Network) {
	t.Helper()
	s := simtime.NewSim(simtime.Epoch1995)
	return s, New(s, 1)
}

func TestDeliveryBasic(t *testing.T) {
	s, n := newNet(t)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		if err := a.Send("b", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		payload, src, ok := b.Recv()
		if !ok || string(payload) != "hello" || src != "a" {
			t.Fatalf("Recv = %q from %q, ok=%v", payload, src, ok)
		}
	})
}

func TestSerializationDelayMatchesBandwidth(t *testing.T) {
	s, n := newNet(t)
	p := DefaultLinkParams()
	p.Bandwidth = 9600
	p.Latency = 0
	p.Overhead = 0
	n.SetLink("a", "b", p)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		start := s.Now()
		if err := a.Send("b", make([]byte, 1200)); err != nil {
			t.Fatal(err)
		}
		_, _, ok := b.Recv()
		if !ok {
			t.Fatal("no delivery")
		}
		// 1200 bytes at 9600 b/s = exactly one second.
		if got := s.Now().Sub(start); got != time.Second {
			t.Errorf("delivery took %v, want 1s", got)
		}
	})
}

func TestLatencyAdds(t *testing.T) {
	s, n := newNet(t)
	p := DefaultLinkParams()
	p.Bandwidth = 0 // infinite
	p.Latency = 100 * time.Millisecond
	n.SetLink("a", "b", p)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		start := s.Now()
		a.Send("b", []byte("x"))
		b.Recv()
		if got := s.Now().Sub(start); got != 100*time.Millisecond {
			t.Errorf("latency = %v, want 100ms", got)
		}
	})
}

func TestBackToBackPacketsQueue(t *testing.T) {
	s, n := newNet(t)
	p := DefaultLinkParams()
	p.Bandwidth = 8000 // 1000 bytes/sec
	p.Latency = 0
	p.Overhead = 0
	n.SetLink("a", "b", p)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		start := s.Now()
		a.Send("b", make([]byte, 1000)) // 1s
		a.Send("b", make([]byte, 1000)) // queued behind: arrives at 2s
		b.Recv()
		if got := s.Now().Sub(start); got != time.Second {
			t.Errorf("first arrival at %v, want 1s", got)
		}
		b.Recv()
		if got := s.Now().Sub(start); got != 2*time.Second {
			t.Errorf("second arrival at %v, want 2s", got)
		}
	})
}

func TestLinkDownDropsSilently(t *testing.T) {
	s, n := newNet(t)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		n.SetUp("a", "b", false)
		if err := a.Send("b", []byte("lost")); err != nil {
			t.Fatalf("Send on down link errored: %v", err)
		}
		if _, _, ok := b.RecvTimeout(10 * time.Second); ok {
			t.Error("packet delivered across a down link")
		}
		st := n.StatsBetween("a", "b")
		if st.PacketsDropped != 1 {
			t.Errorf("dropped = %d, want 1", st.PacketsDropped)
		}

		// Reconnection restores delivery.
		n.SetUp("a", "b", true)
		a.Send("b", []byte("found"))
		if _, _, ok := b.RecvTimeout(10 * time.Second); !ok {
			t.Error("no delivery after link restored")
		}
	})
}

func TestLossRate(t *testing.T) {
	s, n := newNet(t)
	p := DefaultLinkParams()
	p.LossRate = 0.5
	n.SetLink("a", "b", p)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		const total = 2000
		for i := 0; i < total; i++ {
			a.Send("b", []byte("x"))
		}
		got := 0
		for {
			if _, _, ok := b.RecvTimeout(time.Second); !ok {
				break
			}
			got++
		}
		if got < total/2-150 || got > total/2+150 {
			t.Errorf("delivered %d of %d at 50%% loss", got, total)
		}
		st := n.StatsBetween("a", "b")
		if st.PacketsLost+st.PacketsDelivered != total {
			t.Errorf("lost(%d)+delivered(%d) != %d", st.PacketsLost, st.PacketsDelivered, total)
		}
	})
}

func TestMTUEnforced(t *testing.T) {
	s, n := newNet(t)
	p := DefaultLinkParams()
	p.MTU = 100
	n.SetLink("a", "b", p)
	s.Run(func() {
		a := n.Host("a")
		n.Host("b")
		err := a.Send("b", make([]byte, 101))
		if !errors.Is(err, ErrTooBig) {
			t.Errorf("err = %v, want ErrTooBig", err)
		}
		if err := a.Send("b", make([]byte, 100)); err != nil {
			t.Errorf("at-MTU packet rejected: %v", err)
		}
	})
}

func TestQueueOverflowTailDrop(t *testing.T) {
	s, n := newNet(t)
	p := DefaultLinkParams()
	p.Bandwidth = 8000 // 1000 B/s
	p.Overhead = 0
	p.QueueBytes = 2000
	n.SetLink("a", "b", p)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		for i := 0; i < 10; i++ {
			a.Send("b", make([]byte, 1000))
		}
		delivered := 0
		for {
			if _, _, ok := b.RecvTimeout(time.Minute); !ok {
				break
			}
			delivered++
		}
		// First packet starts transmitting immediately; roughly two more
		// fit the 2000-byte queue. The rest tail-drop.
		if delivered < 2 || delivered > 4 {
			t.Errorf("delivered %d with 2KB queue, want ~3", delivered)
		}
		if st := n.StatsBetween("a", "b"); st.PacketsDropped == 0 {
			t.Error("no tail drops recorded")
		}
	})
}

func TestIdleLinkDoesNotAccumulatePhantomBacklog(t *testing.T) {
	// Regression: the backlog computation once overflowed int64 when a
	// link had been idle longer than ~92 seconds, making the queue look
	// full and silently eating packets.
	s, n := newNet(t)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		a.Send("b", []byte("warm"))
		b.Recv()
		s.Sleep(3 * time.Hour) // long idle
		if err := a.Send("b", []byte("after idle")); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := b.RecvTimeout(time.Minute); !ok {
			t.Error("packet dropped after long idle period")
		}
		if st := n.StatsBetween("a", "b"); st.PacketsDropped != 0 {
			t.Errorf("dropped = %d on an idle healthy link", st.PacketsDropped)
		}
	})
}

func TestDynamicBandwidthChange(t *testing.T) {
	s, n := newNet(t)
	n.SetLink("a", "b", Ethernet.Params())
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		a.Send("b", make([]byte, 1000))
		b.Recv()
		fast := s.Now()

		n.Configure("a", "b", func(p *LinkParams) {
			p.Bandwidth = Modem.Bandwidth
			p.Latency = Modem.Latency
		})
		a.Send("b", make([]byte, 1000))
		b.Recv()
		slow := s.Now().Sub(fast)
		// ~1028 bytes at 9600 b/s ≈ 857ms plus 100ms latency.
		if slow < 800*time.Millisecond {
			t.Errorf("post-change delivery took %v, want modem-scale delay", slow)
		}
	})
}

func TestSendToUnknownHostVanishes(t *testing.T) {
	s, n := newNet(t)
	s.Run(func() {
		a := n.Host("a")
		if err := a.Send("ghost", []byte("x")); err != nil {
			t.Errorf("Send to unknown host errored: %v", err)
		}
	})
}

func TestClosedEndpoint(t *testing.T) {
	s, n := newNet(t)
	s.Run(func() {
		a := n.Host("a")
		b := n.Host("b")
		b.Close()
		if err := b.Send("a", []byte("x")); !errors.Is(err, ErrClosed) {
			t.Errorf("Send on closed endpoint: %v", err)
		}
		if _, _, ok := b.Recv(); ok {
			t.Error("Recv on closed endpoint returned ok")
		}
		_ = a
	})
}

func TestProfileSpeedLabels(t *testing.T) {
	cases := map[string]string{
		Ethernet.Name: "10 Mb/s",
		WaveLan.Name:  "2 Mb/s",
		ISDN.Name:     "64 Kb/s",
		Modem.Name:    "9.6 Kb/s",
	}
	for _, p := range StandardNetworks {
		if got := p.SpeedLabel(); got != cases[p.Name] {
			t.Errorf("%s label = %q, want %q", p.Name, got, cases[p.Name])
		}
	}
}

// Property: payloads arrive intact and in FIFO order per sender on a
// loss-free link.
func TestPayloadIntegrityProperty(t *testing.T) {
	f := func(msgs [][]byte) bool {
		s := simtime.NewSim(simtime.Epoch1995)
		n := New(s, 7)
		ok := true
		s.Run(func() {
			a := n.Host("a")
			b := n.Host("b")
			sent := 0
			for _, m := range msgs {
				if len(m) > 1400 {
					m = m[:1400]
				}
				if err := a.Send("b", m); err != nil {
					ok = false
					return
				}
				sent++
			}
			for i := 0; i < sent; i++ {
				got, _, alive := b.RecvTimeout(time.Minute)
				if !alive {
					ok = false
					return
				}
				want := msgs[i]
				if len(want) > 1400 {
					want = want[:1400]
				}
				if string(got) != string(want) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUDPAdapterRoundTrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.LocalAddr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	payload, src, ok := b.RecvTimeout(2 * time.Second)
	if !ok || string(payload) != "ping" {
		t.Fatalf("Recv = %q ok=%v", payload, ok)
	}
	if err := b.Send(src, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	payload, _, ok = a.RecvTimeout(2 * time.Second)
	if !ok || string(payload) != "pong" {
		t.Fatalf("reply = %q ok=%v", payload, ok)
	}
}

func TestAsymmetricLink(t *testing.T) {
	// A cable-TV-style link: fast downstream, slow upstream.
	s, n := newNet(t)
	down := DefaultLinkParams()
	down.Bandwidth = 8_000_000
	down.Latency = 0
	down.Overhead = 0
	up := down
	up.Bandwidth = 8000 // 1000 B/s upstream
	n.SetLink("headend", "home", down)
	n.ConfigureOneWay("home", "headend", func(p *LinkParams) { *p = up })

	s.Run(func() {
		he := n.Host("headend")
		hm := n.Host("home")
		start := s.Now()
		he.Send("home", make([]byte, 1000))
		hm.Recv()
		downTime := s.Now().Sub(start)

		start = s.Now()
		hm.Send("headend", make([]byte, 1000))
		he.Recv()
		upTime := s.Now().Sub(start)

		if upTime < 500*downTime {
			t.Errorf("asymmetry not modeled: down %v, up %v", downTime, upTime)
		}
	})
}

func TestHostReturnsFreshEndpointAfterClose(t *testing.T) {
	// A closed endpoint models a machine going down; Host for the same
	// address afterwards models its reboot. Traffic sent post-reboot must
	// reach the replacement endpoint, and the dead endpoint must stay dead.
	s := simtime.NewSim(simtime.Epoch1995)
	n := New(s, 1)
	old := n.Host("srv")
	if n.Host("srv") != old {
		t.Fatal("Host returned a new endpoint while the old one was open")
	}
	old.Close()
	fresh := n.Host("srv")
	if fresh == old {
		t.Fatal("Host returned the closed endpoint")
	}
	s.Run(func() {
		peer := n.Host("peer")
		if err := peer.Send("srv", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		payload, src, ok := fresh.RecvTimeout(time.Minute)
		if !ok || src != "peer" || string(payload) != "hello" {
			t.Fatalf("rebooted endpoint: %q from %q, ok=%v", payload, src, ok)
		}
		if _, _, ok := old.RecvTimeout(time.Second); ok {
			t.Error("closed endpoint still receives")
		}
		if err := old.Send("peer", nil); err == nil {
			t.Error("closed endpoint still sends")
		}
	})
}
