// Package netsim is a packet-level network emulator driven by a
// simtime.Clock.
//
// It models the properties the paper's adaptive mechanisms react to:
// bandwidth (serialization delay), propagation latency, packet loss, bounded
// link queues (tail drop), and intermittence (links going down and coming
// back). Links are reconfigurable while traffic flows, which is how the
// experiments move a client from Ethernet to WaveLan to a modem to total
// disconnection mid-run.
//
// The emulator delivers opaque payloads between named endpoints; RPC2 and
// SFTP sit on top via the PacketConn interface. An adapter over real UDP
// (see udp.go) implements the same interface for live deployments.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/simtime"
)

// PacketConn is a connectionless, unreliable datagram endpoint. Both the
// emulator's Endpoint and the real-UDP adapter implement it.
type PacketConn interface {
	// Send transmits payload toward dst. Delivery is not guaranteed.
	// Send never blocks for transmission; it returns an error only for
	// local problems (closed endpoint, oversized packet). Send must not
	// retain payload after it returns — callers recycle the buffer
	// (internal/bufpool), so an implementation that needs the bytes
	// later must copy them, as the emulator does.
	Send(dst string, payload []byte) error
	// Recv blocks until a packet arrives. ok is false once closed.
	Recv() (payload []byte, src string, ok bool)
	// RecvTimeout is Recv with a deadline on the owning clock.
	RecvTimeout(d time.Duration) (payload []byte, src string, ok bool)
	// LocalAddr returns the endpoint's own address.
	LocalAddr() string
	// Close shuts the endpoint; pending and future Recvs return !ok.
	Close() error
}

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("netsim: endpoint closed")

// ErrTooBig is returned by Send when the payload exceeds the path MTU.
var ErrTooBig = errors.New("netsim: packet exceeds MTU")

// Packet is one datagram in flight.
type Packet struct {
	Src     string
	Dst     string
	Payload []byte
}

// LinkParams describes one direction of a link.
type LinkParams struct {
	// Bandwidth in bits per second; 0 means infinitely fast.
	Bandwidth int64
	// Latency is one-way propagation delay, applied after serialization.
	Latency time.Duration
	// LossRate is the independent per-packet drop probability [0,1).
	LossRate float64
	// MTU is the largest payload accepted, in bytes. 0 means unlimited.
	MTU int
	// QueueBytes bounds the transmit backlog; packets arriving to a
	// fuller queue are tail-dropped. 0 means unlimited.
	QueueBytes int
	// Overhead is added to each packet's size for serialization-time
	// accounting (IP/UDP/SLIP framing).
	Overhead int
	// Up is false while the link is severed (disconnection).
	Up bool
}

// DefaultLinkParams returns an effectively ideal LAN link.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		Bandwidth:  100e6,
		Latency:    100 * time.Microsecond,
		MTU:        1500,
		QueueBytes: 256 << 10,
		Overhead:   28, // IP + UDP headers
		Up:         true,
	}
}

// Stats counts traffic for one direction of a link.
type Stats struct {
	PacketsSent      int64
	BytesSent        int64 // payload bytes offered, before loss/drops
	PacketsDelivered int64
	BytesDelivered   int64
	PacketsLost      int64 // random loss
	PacketsDropped   int64 // queue overflow, link down, MTU (send errors excluded)
}

type linkKey struct{ src, dst string }

type link struct {
	params    LinkParams
	busyUntil time.Time
	stats     Stats
}

// Network is a collection of endpoints joined by configurable links.
type Network struct {
	clock simtime.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	nodes    map[string]*Endpoint
	links    map[linkKey]*link
	defaults LinkParams
}

// New creates an empty network on clock. seed drives packet loss so runs
// are reproducible.
func New(clock simtime.Clock, seed int64) *Network {
	return &Network{
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		nodes:    make(map[string]*Endpoint),
		links:    make(map[linkKey]*link),
		defaults: DefaultLinkParams(),
	}
}

// SetDefaults replaces the parameters used for links that have not been
// explicitly configured. It affects only links created afterwards.
func (n *Network) SetDefaults(p LinkParams) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaults = p
}

// Host creates (or returns) the endpoint named addr. If the existing
// endpoint has been closed, a fresh one replaces it — a rebooted machine
// attaching a new interface at its old address. Packets are routed by
// address at send time, so traffic reaches the replacement; anything
// already queued on the dead endpoint stays dead with it.
func (n *Network) Host(addr string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.nodes[addr]; ok {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if !closed {
			return e
		}
	}
	e := &Endpoint{
		net:   n,
		addr:  addr,
		inbox: simtime.NewQueue[Packet](n.clock),
	}
	n.nodes[addr] = e
	return e
}

// SetLink configures both directions between a and b.
func (n *Network) SetLink(a, b string, p LinkParams) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(a, b).params = p
	n.linkLocked(b, a).params = p
}

// Configure applies fn to both directions between a and b, creating the
// link with current defaults if needed. Use it for mid-run changes:
//
//	net.Configure(client, server, func(p *LinkParams) { p.Bandwidth = 9600 })
func (n *Network) Configure(a, b string, fn func(*LinkParams)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(&n.linkLocked(a, b).params)
	fn(&n.linkLocked(b, a).params)
}

// ConfigureOneWay applies fn to the a→b direction only. Asymmetric links
// (the cable-TV case the paper's conclusion flags as future work) are
// modeled by configuring each direction separately.
func (n *Network) ConfigureOneWay(a, b string, fn func(*LinkParams)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(&n.linkLocked(a, b).params)
}

// SetUp raises or severs both directions between a and b.
func (n *Network) SetUp(a, b string, up bool) {
	n.Configure(a, b, func(p *LinkParams) { p.Up = up })
}

// StatsBetween returns counters for the a→b direction.
func (n *Network) StatsBetween(a, b string) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkLocked(a, b).stats
}

// Params returns the current a→b link parameters.
func (n *Network) Params(a, b string) LinkParams {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkLocked(a, b).params
}

func (n *Network) linkLocked(src, dst string) *link {
	k := linkKey{src, dst}
	l, ok := n.links[k]
	if !ok {
		l = &link{params: n.defaults}
		n.links[k] = l
	}
	return l
}

// send models the transmission of one packet; called by Endpoint.Send.
func (n *Network) send(src, dst string, payload []byte) error {
	n.mu.Lock()
	l := n.linkLocked(src, dst)
	p := l.params
	l.stats.PacketsSent++
	l.stats.BytesSent += int64(len(payload))

	if p.MTU > 0 && len(payload) > p.MTU {
		n.mu.Unlock()
		return fmt.Errorf("%w: %d > %d", ErrTooBig, len(payload), p.MTU)
	}
	if !p.Up {
		l.stats.PacketsDropped++
		n.mu.Unlock()
		return nil // indistinguishable from loss, as on a real network
	}
	if p.LossRate > 0 && n.rng.Float64() < p.LossRate {
		l.stats.PacketsLost++
		n.mu.Unlock()
		return nil
	}

	now := n.clock.Now()
	size := int64(len(payload) + p.Overhead)

	var txTime time.Duration
	if p.Bandwidth > 0 {
		txTime = time.Duration(size * 8 * int64(time.Second) / p.Bandwidth)
	}
	start := now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	if p.QueueBytes > 0 && p.Bandwidth > 0 && l.busyUntil.After(now) {
		// Floating point avoids int64 overflow for long backlogs (and a
		// negative duration on an idle link is simply no backlog).
		backlogBytes := int64(l.busyUntil.Sub(now).Seconds() * float64(p.Bandwidth) / 8)
		if backlogBytes+size > int64(p.QueueBytes) {
			l.stats.PacketsDropped++
			n.mu.Unlock()
			return nil
		}
	}
	l.busyUntil = start.Add(txTime)
	arrival := l.busyUntil.Add(p.Latency)

	dstEP := n.nodes[dst]
	n.mu.Unlock()

	if dstEP == nil {
		return nil // destination does not exist; packet vanishes
	}
	pkt := Packet{Src: src, Dst: dst, Payload: append([]byte(nil), payload...)}
	n.clock.AfterFunc(arrival.Sub(now), func() {
		n.mu.Lock()
		l.stats.PacketsDelivered++
		l.stats.BytesDelivered += int64(len(pkt.Payload))
		n.mu.Unlock()
		dstEP.inbox.Put(pkt)
	})
	return nil
}

// Endpoint is a network attachment point implementing PacketConn.
type Endpoint struct {
	net   *Network
	addr  string
	inbox *simtime.Queue[Packet]

	mu     sync.Mutex
	closed bool
}

// LocalAddr implements PacketConn.
func (e *Endpoint) LocalAddr() string { return e.addr }

// Send implements PacketConn.
func (e *Endpoint) Send(dst string, payload []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.net.send(e.addr, dst, payload)
}

// Recv implements PacketConn.
func (e *Endpoint) Recv() ([]byte, string, bool) {
	p, ok := e.inbox.Get()
	if !ok {
		return nil, "", false
	}
	return p.Payload, p.Src, true
}

// RecvTimeout implements PacketConn.
func (e *Endpoint) RecvTimeout(d time.Duration) ([]byte, string, bool) {
	p, ok := e.inbox.GetTimeout(d)
	if !ok {
		return nil, "", false
	}
	return p.Payload, p.Src, true
}

// Close implements PacketConn.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.inbox.Close()
	return nil
}
