package netsim

import "time"

// Profile is a named network technology, matching the networks used
// throughout the paper's evaluation (Figures 1, 8, 12, 13, 14).
type Profile struct {
	Name   string
	Letter string // single-letter tag used in the paper's graphs
	// Bandwidth is the nominal link speed in bits per second.
	Bandwidth int64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

// The four network technologies of the paper's evaluation.
var (
	Ethernet = Profile{Name: "Ethernet", Letter: "E", Bandwidth: 10e6, Latency: 500 * time.Microsecond}
	WaveLan  = Profile{Name: "WaveLan", Letter: "W", Bandwidth: 2e6, Latency: 2 * time.Millisecond}
	ISDN     = Profile{Name: "ISDN", Letter: "I", Bandwidth: 64e3, Latency: 10 * time.Millisecond}
	Modem    = Profile{Name: "Modem", Letter: "M", Bandwidth: 9600, Latency: 100 * time.Millisecond}
)

// StandardNetworks lists the paper's networks fastest-first, the order used
// in its tables.
var StandardNetworks = []Profile{Ethernet, WaveLan, ISDN, Modem}

// Params converts the profile into link parameters, keeping the default
// MTU, queueing, and framing overhead.
func (p Profile) Params() LinkParams {
	lp := DefaultLinkParams()
	lp.Bandwidth = p.Bandwidth
	lp.Latency = p.Latency
	return lp
}

// SpeedLabel renders the nominal speed the way the paper prints it,
// e.g. "10 Mb/s" or "9.6 Kb/s".
func (p Profile) SpeedLabel() string {
	switch {
	case p.Bandwidth >= 1e6:
		return trimZero(float64(p.Bandwidth)/1e6) + " Mb/s"
	default:
		return trimZero(float64(p.Bandwidth)/1e3) + " Kb/s"
	}
}

func trimZero(f float64) string {
	s := make([]byte, 0, 8)
	whole := int64(f)
	s = appendInt(s, whole)
	frac := int64(f*10+0.5) - whole*10
	if frac != 0 {
		s = append(s, '.')
		s = appendInt(s, frac)
	}
	return string(s)
}

func appendInt(b []byte, v int64) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}
