package lint

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// forbiddenTime is the set of package time functions that read or block
// on the real clock. Code outside the allowlist must route these
// through a simtime.Clock so simulated runs stay deterministic.
var forbiddenTime = map[string]string{
	"Now":       "use the component's simtime.Clock.Now",
	"Sleep":     "use the component's simtime.Clock.Sleep",
	"After":     "use simtime.Clock.AfterFunc or a simtime.Queue",
	"Tick":      "use simtime.Clock.AfterFunc",
	"NewTimer":  "use simtime.Clock.AfterFunc",
	"NewTicker": "use simtime.Clock.AfterFunc",
	"AfterFunc": "use simtime.Clock.AfterFunc",
	"Since":     "compute against simtime.Clock.Now",
	"Until":     "compute against simtime.Clock.Now",
}

// forbiddenRand lists math/rand package-level functions that draw from
// the global, non-deterministically seeded source. Explicit
// rand.New(rand.NewSource(seed)) generators are fine.
var forbiddenRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// Simclock forbids real-clock and global-randomness calls outside the
// allowlist, enforcing that all simulated code takes a simtime.Clock.
type Simclock struct {
	// allow holds module-relative directory prefixes ("internal/simtime",
	// "cmd") and file paths ("internal/netsim/udp.go") that may touch
	// the real clock.
	allow []string
}

// DefaultAllowlist is the repository policy: the clock veneer itself,
// the real-UDP transport adapter, and live entry points under cmd/
// (which construct the Real clock and may time their own wall-clock
// runtime).
func DefaultAllowlist() []string {
	return []string{
		"internal/simtime",
		"internal/netsim/udp.go",
		"cmd",
	}
}

// NewSimclock returns the analyzer with the given allowlist.
func NewSimclock(allow []string) *Simclock { return &Simclock{allow: allow} }

// Name implements Analyzer.
func (*Simclock) Name() string { return "simclock" }

// Doc implements Analyzer.
func (*Simclock) Doc() string {
	return "forbids raw time.* clock calls and math/rand default-source calls outside the simtime allowlist"
}

// allowed reports whether relFile (module-relative path of the file) is
// covered by the allowlist.
func (s *Simclock) allowed(relFile string) bool {
	for _, a := range s.allow {
		if relFile == a || strings.HasPrefix(relFile, a+"/") {
			return true
		}
	}
	return false
}

// Analyze implements Analyzer. Only type-checked (non-test) files are
// inspected; real-time use in tests is testhygiene's concern.
func (s *Simclock) Analyze(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		pos := pkg.Fset.Position(file.Pos())
		relFile := path.Join(pkg.RelDir, path.Base(pos.Filename))
		if s.allowed(relFile) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (time.Time.After, rand.Rand.Intn, ...) are fine:
			// only package-level functions touch the real clock or the
			// global random source.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if hint, bad := forbiddenTime[fn.Name()]; bad {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(sel.Pos()),
						Analyzer: s.Name(),
						Message:  "time." + fn.Name() + " bypasses the virtual clock; " + hint,
					})
				}
			case "math/rand", "math/rand/v2":
				if forbiddenRand[fn.Name()] {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(sel.Pos()),
						Analyzer: s.Name(),
						Message:  "rand." + fn.Name() + " uses the global random source; use rand.New(rand.NewSource(seed)) so runs are reproducible",
					})
				}
			}
			return true
		})
	}
	return out
}
