// Package lockorderfix seeds every deadlock shape the lockorder
// analyzer exists to catch, plus the clean twins that pin its
// precision: the sorted multi-lock loop, the ordered-provider
// iteration, the branch-release (may-hold) idiom, and a receive whose
// signaller never touches the held lock.
package lockorderfix

import (
	"sort"
	"sync"
)

// --- lock-order cycle, one side through a helper hop ---------------

type alpha struct {
	mu sync.Mutex
	n  int
}

type beta struct {
	mu sync.Mutex
	n  int
}

// lockBeta is a lockVolume-style helper: its Lock balance is positive,
// so calling it opens a critical section at the call site.
func lockBeta(b *beta) *beta {
	b.mu.Lock()
	return b
}

// Bad half: alpha before beta (the beta acquire is one call away).
func alphaThenBeta(a *alpha, b *beta) {
	a.mu.Lock()
	lockBeta(b) // want "lock-order cycle"
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

// Bad half: beta before alpha — together with alphaThenBeta this
// closes the cycle; the finding anchors at the earlier witness above.
func betaThenAlpha(a *alpha, b *beta) {
	b.mu.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

// --- same-domain nested acquire ------------------------------------

type pair struct {
	mu sync.Mutex
	id int
}

// Bad: two locks of one domain with no order between them —
// self-deadlock on the same instance, unordered on two.
func lockBoth(x, y *pair) {
	x.mu.Lock()
	y.mu.Lock() // want "already holding"
	y.mu.Unlock()
	x.mu.Unlock()
}

// --- the ascending-ID rule ------------------------------------------

// Bad: accumulating same-domain locks across iterations of an
// unordered slice; two of these loops can interleave in opposite
// orders.
func lockAllUnsorted(ps []*pair) {
	for _, p := range ps {
		p.mu.Lock() // want "unproven order"
	}
	for _, p := range ps {
		p.mu.Unlock()
	}
}

// Clean: the slice is sorted immediately before the loop.
func lockAllSorted(ps []*pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	for _, p := range ps {
		p.mu.Lock()
	}
	for _, p := range ps {
		p.mu.Unlock()
	}
}

type registry struct {
	mu    sync.Mutex
	pairs map[int]*pair
}

// pairsByID snapshots the registry and sorts the snapshot: an ordered
// provider — ranging over its result satisfies the ascending-ID rule.
func (r *registry) pairsByID() []*pair {
	r.mu.Lock()
	ps := make([]*pair, 0, len(r.pairs))
	for _, p := range r.pairs {
		ps = append(ps, p)
	}
	r.mu.Unlock()
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	return ps
}

// Clean: the ordering proof flows through the provider call.
func lockAllRegistry(r *registry) {
	ps := r.pairsByID()
	for _, p := range ps {
		p.mu.Lock()
	}
	for _, p := range ps {
		p.mu.Unlock()
	}
}

// --- cross-primitive: lock held across a wait the signaller needs ---

type mailbox struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Bad: parked on a receive while holding the lock post() must take
// before it can ever send.
func (m *mailbox) recvUnderLock() {
	m.mu.Lock()
	m.n = <-m.ch // want "held across channel receive"
	m.mu.Unlock()
}

func (m *mailbox) post(v int) {
	m.mu.Lock()
	m.n = v
	m.mu.Unlock()
	m.ch <- v
}

type letterbox struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Clean: the only signaller never touches letterbox.mu, so the parked
// holder cannot starve it.
func (l *letterbox) recvUnderLock() {
	l.mu.Lock()
	l.n = <-l.ch
	l.mu.Unlock()
}

func (l *letterbox) feed(v int) {
	l.ch <- v
}

// --- RWMutex: readers order and deadlock like writers ---------------

type rwcache struct {
	rwMu sync.RWMutex
	ch   chan int
	n    int
}

// Bad: an RLock section parks on a receive while the sender needs the
// write lock first — readers still deadlock against writers.
func (c *rwcache) readUnderRLock() {
	c.rwMu.RLock()
	c.n = <-c.ch // want "held across channel receive"
	c.rwMu.RUnlock()
}

func (c *rwcache) store(v int) {
	c.rwMu.Lock()
	c.n = v
	c.rwMu.Unlock()
	c.ch <- v
}

// --- may-hold precision: branch-conditional lock (simtime.Queue) ----

type either struct {
	aMu sync.Mutex
	bMu sync.Mutex
	sim bool
	ch  chan int
}

// lock acquires one of two domains depending on mode — after it, both
// are only may-held.
func (e *either) lock() {
	if e.sim {
		e.aMu.Lock()
	} else {
		e.bMu.Lock()
	}
}

// Clean: every path unlocks before parking; the branch releases leave
// only weak holds at the receive, so no cross-primitive finding even
// though wake() signals under the same locks.
func (e *either) park() int {
	e.lock()
	if e.sim {
		e.aMu.Unlock()
	} else {
		e.bMu.Unlock()
	}
	return <-e.ch
}

func (e *either) wake() {
	e.lock()
	close(e.ch)
	if e.sim {
		e.aMu.Unlock()
	} else {
		e.bMu.Unlock()
	}
}
