package lockholdfix

import (
	"sync"
	"time"
)

type store struct {
	mu      sync.Mutex
	drainMu sync.Mutex
	items   map[string]int
	ch      chan int
	wake    chan struct{}
}

// Bad: sleeping while the lock is held (deferred unlock holds it to the
// end of the function).
func (s *store) slowPut(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "held across blocking call time.Sleep"
	s.items[k] = v
}

// Bad: a direct channel send inside the critical section.
func (s *store) publish(v int) {
	s.mu.Lock()
	s.ch <- v // want "held across channel send"
	s.mu.Unlock()
}

// wait parks on a channel; it is the blocking leaf for transit below.
func (s *store) wait() {
	<-s.wake
}

// Bad: the blocking operation is one static call away — the engine's
// summary makes the helper's park visible at this call site.
func (s *store) putAndWait(k string, v int) {
	s.mu.Lock()
	s.items[k] = v
	s.wait() // want "held across blocking call s.wait"
	s.mu.Unlock()
}

// Clean: release before parking — the simtime Sim.Sleep shape. The
// region closes at Unlock, so the receive below is unheld.
func (s *store) unlockThenWait(k string) int {
	s.mu.Lock()
	v := s.items[k]
	s.mu.Unlock()
	<-s.wake
	return v
}

// Bad: an early unlock inside a branch does not release the lock for
// the fall-through — the else-less path really does still hold it.
func (s *store) branchUnlock(k string) {
	s.mu.Lock()
	if _, ok := s.items[k]; ok {
		s.mu.Unlock()
		return
	}
	time.Sleep(time.Millisecond) // want "held across blocking call time.Sleep"
	s.mu.Unlock()
}

// Suppressed pin of the WAL shape: a mutex that IS the serialization
// point for the blocking operation it covers is intentional, and the
// reasoned ignore is how that intent is recorded.
func (s *store) fsyncUnderOwnMu() {
	s.mu.Lock()
	//codalint:ignore lockhold fixture pin: this mutex is the serialization point for the flush it covers
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}

// Suppressed pin of the work-lock shape: drainMu serializes whole drain
// attempts by design, and blocking under it is the point.
func (s *store) drainUnderWorkLock() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	//codalint:ignore lockhold fixture pin: drainMu is a work lock serializing whole drains by design
	<-s.wake
}

// Clean: the launch itself does not block; the goroutine parks on its
// own stack.
func (s *store) spawnUnderLock() {
	s.mu.Lock()
	go s.wait()
	s.mu.Unlock()
}

// RWMutex coverage: reader sections follow the same rules as writer
// sections — an RLock region is a critical section, and RUnlock closes
// it. Nothing pinned this before; these cases are the fence.
type rwstore struct {
	stateMu sync.RWMutex
	items   map[string]int
	wake    chan struct{}
}

// Bad: an RLock section held across a park serializes every writer
// behind the wait exactly like a write lock would.
func (r *rwstore) snapshotSlow(k string) int {
	r.stateMu.RLock()
	defer r.stateMu.RUnlock()
	<-r.wake // want "held across channel receive"
	return r.items[k]
}

// Clean: RUnlock closes the reader region before the park.
func (r *rwstore) readThenWait(k string) int {
	r.stateMu.RLock()
	v := r.items[k]
	r.stateMu.RUnlock()
	<-r.wake
	return v
}
