// Package allowedfix is loaded under an allowlisted RelDir; none of
// these calls may be flagged.
package allowedfix

import "time"

func realClock() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
