package fix

// A local stand-in for obs.Registry: the analyzer matches any method set
// on a named type called Registry, so the fixture needs no module
// imports (LoadDir resolves the standard library only).

type Registry struct{}

type Counter struct{}

type Label struct{ K, V string }

func (r *Registry) Counter(name string, labels ...Label) *Counter { return nil }

func (r *Registry) Gauge(name string, labels ...Label) *Counter { return nil }

func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {}

func (r *Registry) Histogram(name string, buckets []int64, labels ...Label) *Counter { return nil }

func (r *Registry) Event(kind string, fields ...Label) {}

type SpanContext struct{ Trace, Span uint64 }

type SpanHandle struct{}

func (r *Registry) StartSpan(node, name string, parent SpanContext, fields ...Label) *SpanHandle {
	return nil
}

func (r *Registry) SpanAt(node, name string, parent SpanContext, start int64, fields ...Label) *SpanHandle {
	return nil
}

// notARegistry has the same method names on a different type; it must
// not be flagged.
type notARegistry struct{}

func (n *notARegistry) Counter(name string) {}

const goodName = "fix_requests_total"

func use(r *Registry, other *notARegistry, dyn string) {
	r.Counter("fix_requests_total")
	r.Counter(goodName)                 // constants are static too
	r.Counter("fix_" + goodName[4:])    // want "static string literal"
	r.Counter(dyn)                      // want "static string literal"
	r.Counter("Fix_Requests_Total")     // want "snake_case"
	r.Counter("fix__double_underscore") // want "snake_case"
	r.Counter("venus_requests_total")   // want "package prefix"
	r.Gauge("fix_queue_depth")
	r.GaugeFunc("queue_depth", func() int64 { return 0 }) // want "package prefix"
	r.Histogram("fix_latency_us", []int64{1, 10})
	r.Histogram("fix-latency-us", []int64{1, 10}) // want "snake_case"
	r.Event("fix_reconnect")
	r.Event("fixreconnect") // want "package prefix"
	other.Counter(dyn)      // different receiver type: clean

	// Span names are policed like metric names; the node label (first
	// argument) stays dynamic.
	r.StartSpan(dyn, "fix_open", SpanContext{})
	r.StartSpan(dyn, dyn, SpanContext{})          // want "static string literal"
	r.StartSpan(dyn, "Fix_Open", SpanContext{})   // want "snake_case"
	r.StartSpan(dyn, "venus_open", SpanContext{}) // want "package prefix"
	r.SpanAt(dyn, "fix_wait", SpanContext{}, 0)
	r.SpanAt(dyn, "fix-wait", SpanContext{}, 0) // want "snake_case"
}
