package leakcheckfix

type daemon struct {
	done chan struct{}
}

// spin can never be stopped: a condition-less loop with no exit.
func spin() {
	for {
	}
}

// Bad: spawning the unstoppable loop directly.
func startSpin() {
	go spin() // want "spawns a goroutine that can never stop"
}

// loopSelectBreak is the classic almost-correct shutdown: the break
// exits the select, not the loop.
func (d *daemon) loopSelectBreak() {
	for {
		select {
		case <-d.done:
			break
		}
	}
}

// Bad, with the dedicated diagnostic for the select-break shape.
func (d *daemon) start() {
	go d.loopSelectBreak() // want "its break exits only the inner select/switch"
}

// loopReturn observes shutdown correctly.
func (d *daemon) loopReturn() {
	for {
		select {
		case <-d.done:
			return
		}
	}
}

// Clean: the daemon has a reachable stop path.
func (d *daemon) startGood() {
	go d.loopReturn()
}

// wrapper hides the endless loop one static call away; the engine's
// summary still surfaces it at the spawn site.
func wrapper() { spin() }

func startWrapper() {
	go wrapper() // want "spawns a goroutine that can never stop"
}

// clk mimics the simtime spawner shape: a method named Go taking one
// func() argument.
type clk struct{}

func (clk) Go(fn func()) { go fn() }

// Bad: the clock-spawn path is checked exactly like a go statement.
func startViaGo(c clk) {
	c.Go(spin) // want "spawns a goroutine that can never stop"
}

// Suppressed: a process-lifetime daemon by explicit decision.
func startForever() {
	//codalint:ignore leakcheck fixture pin: process-lifetime daemon by design
	go spin()
}
