// Package errwrapfix exercises the errwrap analyzer.
package errwrapfix

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

var errBase = errors.New("base")

func wrapBad() error {
	return fmt.Errorf("context: %v", errBase) // want "fmt.Errorf formats an error without %w"
}

func wrapBadString(err error) error {
	return fmt.Errorf("op failed: %s", err) // want "fmt.Errorf formats an error without %w"
}

func wrapGood() error {
	return fmt.Errorf("context: %w", errBase)
}

func newError(path string) error {
	return fmt.Errorf("no error argument here: %s", path)
}

func discardBare() {
	os.Remove("x") // want "error return discarded"
}

func discardTuple() {
	os.Create("x") // want "error return discarded"
}

func discardExplicit() {
	_ = os.Remove("x")
}

func handled() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	return nil
}

func exemptCallees() {
	fmt.Println("terminal output is exempt")
	fmt.Printf("%d\n", 1)
	var b strings.Builder
	b.WriteString("never fails")
}

func deferredCleanup(f *os.File) {
	defer f.Close() // deferred best-effort cleanup is not a bare discard
}
