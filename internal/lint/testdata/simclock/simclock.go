// Package simclockfix exercises the simclock analyzer: every
// real-clock and global-randomness call is flagged, while clock-method
// calls, seeded generators, and time.Time methods stay clean.
package simclockfix

import (
	"math/rand"
	"time"
)

type clock struct{}

func (clock) Now() time.Time { return time.Time{} }

func bad() {
	_ = time.Now()                  // want "time.Now bypasses the virtual clock"
	time.Sleep(time.Second)         // want "time.Sleep bypasses the virtual clock"
	<-time.After(time.Second)       // want "time.After bypasses the virtual clock"
	_ = time.NewTimer(time.Second)  // want "time.NewTimer bypasses the virtual clock"
	_ = time.NewTicker(time.Second) // want "time.NewTicker bypasses the virtual clock"
	_ = time.Since(time.Time{})     // want "time.Since bypasses the virtual clock"
	_ = time.Until(time.Time{})     // want "time.Until bypasses the virtual clock"
	_ = rand.Intn(10)               // want "rand.Intn uses the global random source"
	_ = rand.Float64()              // want "rand.Float64 uses the global random source"
}

func good(c clock) {
	_ = c.Now() // a method named Now on our own clock is fine
	rng := rand.New(rand.NewSource(7))
	_ = rng.Intn(10) // seeded generator methods are fine
	var t time.Time
	_ = t.After(time.Time{}) // time.Time.After is a method, not the package func
	_ = time.Second
	_ = time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC) // constructing times is fine
}

func suppressedUse() time.Time {
	//codalint:ignore simclock fixture demonstrating a justified, reasoned suppression
	return time.Now()
}
