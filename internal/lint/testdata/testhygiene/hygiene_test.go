// Package hygienefix exercises the testhygiene analyzer. These files
// are fixtures: they are parsed by the analyzer tests, never run.
package hygienefix

import (
	"testing"
	"time"
)

func TestEntry(t *testing.T) { // entry points never need t.Helper
	if testing.Short() {
		t.Fatal("x")
	}
}

func BenchmarkEntry(b *testing.B) {
	b.Fatal("x")
}

func helperBad(t *testing.T) { // want "test helper helperBad reports through t but never calls t.Helper()"
	t.Fatal("boom")
}

func helperGood(t *testing.T) {
	t.Helper()
	t.Fatal("boom")
}

func helperTB(tb testing.TB) { // want "test helper helperTB reports through tb but never calls tb.Helper()"
	tb.Errorf("boom %d", 1)
}

func helperNoReport(t *testing.T) bool { // never reports: no Helper needed
	return t.Failed()
}

func sleeper(t *testing.T) {
	t.Helper()
	time.Sleep(10 * time.Millisecond) // want "time.Sleep in a test"
	t.Error("woke up")
}

func simSleeper(d time.Duration) {
	_ = d // a function without a testing param is out of scope
}
