package maporderfix

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Shape 1: the sink sits directly inside the map-range body, so every
// run of the program emits the entries in a different order.
func dumpDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "iteration order of map m flows into order-sensitive output"
	}
}

// emit is one call away from the writer; the engine's summary carries
// the sink back to the range below.
func emit(w io.Writer, s string) {
	fmt.Fprintln(w, s)
}

func dumpViaHelper(w io.Writer, m map[string]bool) {
	for k := range m {
		emit(w, k) // want "iteration order of map m flows into order-sensitive output"
	}
}

// Shape 2: the accumulator is built in map order and encoded without an
// intervening sort — the gob snapshot nondeterminism bug.
func encodeUnsorted(w io.Writer, m map[string]int) error {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return gob.NewEncoder(w).Encode(keys) // want "keys accumulates entries of map m in iteration order"
}

// Clean: sorting between the loop and the sink clears the taint. This is
// the prescribed fix, so it must stay silent.
func encodeSorted(w io.Writer, m map[string]int) error {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return gob.NewEncoder(w).Encode(keys)
}

// Clean: ranging over a slice is deterministic; sinks inside are fine.
func encodeSlice(w io.Writer, xs []string) error {
	var buf bytes.Buffer
	for _, x := range xs {
		buf.WriteString(x)
	}
	return gob.NewEncoder(w).Encode(buf.String())
}

// Suppressed: a reasoned ignore on the sink line is honored.
func dumpSuppressed(w io.Writer, m map[string]int) {
	for k := range m {
		//codalint:ignore maporder fixture pin: output order is explicitly not compared here
		fmt.Fprintln(w, k)
	}
}
