// Package lockguardfix exercises the lockguard analyzer.
package lockguardfix

import "sync"

// counter: n is mutated by a method, so it is guarded; name is only
// read, so it is immutable configuration.
type counter struct {
	mu   sync.Mutex
	n    int
	name string
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) N() int { // want "counter.N accesses guarded field(s) n without holding mu"
	return c.n
}

func (c *counter) Name() string { return c.name }

func (c *counter) DrainLocked() int { // Locked suffix: caller holds mu
	return c.n
}

// gate: RWMutex, a lock() helper, and an RLock reader.
type gate struct {
	mu   sync.RWMutex
	open bool
}

func (g *gate) lock() { g.mu.Lock() }

func (g *gate) Open() bool { // acquires via the lock() helper
	g.lock()
	defer g.mu.Unlock()
	return g.open
}

func (g *gate) Peek() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.open
}

func (g *gate) Set(v bool) { // want "gate.Set accesses guarded field(s) open without holding mu"
	g.open = v
}

// plain has no mu: nothing is guarded.
type plain struct {
	n int
}

func (p *plain) Bump() { p.n++ }
