package lockguardfix

import "sync"

// shard exercises positional multi-mutex partitioning: name is unguarded
// configuration (declared before any mutex), index belongs to mu's
// domain, hits to statsMu's.
type shard struct {
	name string

	mu    sync.Mutex
	index map[string]int

	statsMu sync.Mutex
	hits    int
}

func (s *shard) insert(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index[k] = v
}

// Put is clean: it mutates index via a sibling helper that locks mu.
func (s *shard) Put(k string, v int) {
	s.insert(k, v)
}

// Mark is clean: hits is guarded by statsMu, which it holds.
func (s *shard) Mark() {
	s.statsMu.Lock()
	s.hits++
	s.statsMu.Unlock()
}

// Hit holds mu, but hits lives in statsMu's domain — holding the wrong
// domain's lock is exactly the bug this analyzer exists to catch.
func (s *shard) Hit() int { // want "shard.Hit accesses guarded field(s) hits without holding statsMu"
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.hits
}

// Name is clean: name precedes the first mutex, so it is unguarded
// configuration.
func (s *shard) Name() string {
	return s.name
}

// domain is a sub-locked object located through a registry, mirroring
// server.volume.
type domain struct {
	mu sync.Mutex
	n  int
}

func (d *domain) Bump() {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

func (d *domain) Peek() int { // want "domain.Peek accesses guarded field(s) n without holding mu"
	return d.n
}

// registry holds sub-locked domains behind its own lock, mirroring
// server.Server's volume table. Writing through the map index is a
// mutation of the guarded map.
type registry struct {
	mu      sync.Mutex
	domains map[string]*domain
}

func (r *registry) Get(name string) *domain {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.domains[name]
}

func (r *registry) Grow(name string) { // want "registry.Grow accesses guarded field(s) domains without holding mu"
	r.domains[name] = &domain{}
}
