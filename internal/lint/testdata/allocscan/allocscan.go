package fix

import (
	"errors"
	"sync"
)

type header struct{ seq int }

// Direct allocations inside a marked root are reported at their own
// positions.
//
//codalint:hotpath
func frameDirect(body []byte) []byte {
	buf := make([]byte, 18+len(body)) // want "make"
	copy(buf, body)
	return buf
}

//codalint:hotpath
func frameLit(n int) *header {
	return &header{seq: n} // want "composite literal"
}

//codalint:hotpath
func label(a, b string) string {
	return a + b // want "string concatenation"
}

//codalint:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want "conversion copies"
}

//codalint:hotpath
func capture(n int) func() int {
	return func() int { return n } // want "closure capturing 1 variable"
}

//codalint:hotpath
func hotGrow(vals []int) []int {
	var out []int
	out = append(out, vals...) // want "append growth"
	return out
}

// A call to a non-marked callee whose summary allocates is reported at
// the call site, with the callee's via-chain.
func buildFrame(n int) []byte {
	return make([]byte, n)
}

//codalint:hotpath
func hotCaller(n int) []byte {
	return buildFrame(n) // want "calls buildFrame, which allocates"
}

// Boxing a non-pointer-shaped value into an interface parameter
// allocates at the call boundary.
type sink interface{ consume(v any) }

//codalint:hotpath
func hotBox(s sink, n int) {
	s.consume(n) // want "boxing int"
}

// Negative cases: pooled buffers, caller-owned append targets, and
// error construction are all clean.
var pool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64)
	return &b
}}

//codalint:hotpath
func framePooled(body []byte) {
	bp := pool.Get().(*[]byte)
	*bp = append(*bp, body...)
	ship(*bp)
	*bp = (*bp)[:0]
	pool.Put(bp)
}

func ship([]byte) {}

//codalint:hotpath
func appendInto(dst []byte, b byte) []byte {
	return append(dst, b)
}

//codalint:hotpath
func hotErr(ok bool) error {
	if !ok {
		return errors.New("bad frame")
	}
	return nil
}

// A suppression with a reason silences a finding and counts as used.
//
//codalint:hotpath
func hotSuppressed(n int) []byte {
	//codalint:ignore allocscan startup-only growth, amortized over the run
	return make([]byte, n)
}

// Cold code allocates freely: no directive, no findings.
func coldAlloc() []string {
	out := []string{"a"}
	out = append(out, "b")
	return out
}

// A directive that attaches to nothing is itself a finding.
//
//codalint:hotpath // want "attaches to no function declaration"
var frameMagic = 0x5f

var _ = frameDirect
var _ = frameLit
var _ = label
var _ = toBytes
var _ = capture
var _ = hotGrow
var _ = hotCaller
var _ = hotBox
var _ = framePooled
var _ = appendInto
var _ = hotErr
var _ = hotSuppressed
var _ = coldAlloc
var _ = frameMagic
