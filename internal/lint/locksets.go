package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the engine's fourth-generation effect: per-function
// lockset summaries. Every node learns which lock domains it may
// acquire — directly or through any chain of static calls — together
// with the via-chain that reaches the Lock call, its direct
// Lock-minus-Unlock balance per domain (so `lockVolume`-style helpers
// that hand a locked object back to the caller are recognized as
// opening a critical section at the call site), whether it returns a
// slice it provably sorted (the ascending-ID registry idiom), and
// whether it can signal a waiter (channel send or close, WaitGroup
// Done, Cond Signal/Broadcast). The lockorder analyzer is a query over
// these summaries; lockguard's naming convention (`mu` / `*Mu` suffix,
// sync.Mutex or sync.RWMutex — RLock and RUnlock count like Lock and
// Unlock, since readers still deadlock against writers) defines what a
// lock is.

// lockSummary is the per-node lockset state beyond FuncNode.Acquires.
type lockSummary struct {
	// acquirePos: first direct acquire site per domain, for witnesses.
	acquirePos map[string]token.Pos
	// net: direct Lock-minus-Unlock balance per domain. net > 0 means
	// calling this function opens a critical section the caller must
	// close (a lockVolume-style helper); net < 0 closes one.
	net map[string]int
	// calls: static callees for lockset propagation. Unlike
	// FuncNode.Calls this list excludes the immediate targets of `go`
	// statements: a spawned goroutine acquires on its own stack, and
	// smearing its locks onto the spawner would invent held-while
	// edges that never happen.
	calls []*FuncNode
	// sortedVars: local variables passed to a sort call (sort.Slice,
	// sort.Sort, slices.Sort, ...) or assigned from an ordered
	// provider, with the position where the ordering was established.
	sortedVars map[types.Object]token.Pos
	// retObjs: identifiers this function returns, for the
	// ordered-provider fixpoint.
	retObjs []types.Object
	// providerAssigns: `x := f()` assignments whose callee resolved,
	// so x becomes sorted once f proves to be an ordered provider.
	providerAssigns []providerAssign
	// ordered: the function returns a slice it provably sorted — an
	// ordered provider; ranging over its result satisfies the
	// ascending-ID rule.
	ordered bool
	// signals: the function (transitively) performs a channel send or
	// close, a WaitGroup.Done, or a Cond.Signal/Broadcast — it can
	// unblock a parked waiter.
	signals    bool
	signalsVia string
}

type providerAssign struct {
	obj    types.Object
	callee *FuncNode
	pos    token.Pos
}

// lockDomain renders the lock domain of a mutex expression: the owning
// named type and field ("server.volume.mu"), or "pkg.name" for a
// package-level or local mutex variable. Returns "" when the
// expression does not resolve.
func lockDomain(pkg *Package, expr ast.Expr) string {
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[x]; ok {
			t := sel.Recv()
			for {
				p, ok := t.(*types.Pointer)
				if !ok {
					break
				}
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		// Qualified package-level variable: wire.encMu.
		if v, ok := pkg.TypesInfo.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		if v, ok := pkg.TypesInfo.Uses[x].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + x.Name
		}
	case *ast.ParenExpr:
		return lockDomain(pkg, x.X)
	}
	return ""
}

// lockOpDomain classifies a call as Lock/RLock (+1) or Unlock/RUnlock
// (-1) on a conventionally named sync mutex and returns its domain.
// delta is 0 when the call is not a lock operation.
func lockOpDomain(pkg *Package, call *ast.CallExpr) (domain string, delta int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0
	}
	if !mutexNamed(sel.X) {
		return "", 0
	}
	if t := pkg.TypesInfo.Types[sel.X].Type; t == nil || !isMutexType(t) {
		return "", 0
	}
	if d := lockDomain(pkg, sel.X); d != "" {
		return d, delta
	}
	return "", 0
}

// sortCallVar recognizes a sort call and returns the identifier being
// sorted: sort.Slice/SliceStable/Sort/Stable/Strings/Ints(x, ...) and
// slices.Sort/SortFunc/SortStableFunc(x, ...).
func sortCallVar(pkg *Package, call *ast.CallExpr) *ast.Ident {
	fn := calleeObj(pkg, call.Fun)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	path, name := fn.Pkg().Path(), fn.Name()
	ok := false
	switch path {
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints":
			ok = true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			ok = true
		}
	}
	if !ok {
		return nil
	}
	id, _ := call.Args[0].(*ast.Ident)
	return id
}

// signalRoot classifies fn as a waiter-unblocking primitive.
func signalRoot(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Done":
		return "sync.WaitGroup.Done"
	case "Signal", "Broadcast":
		return "sync.Cond." + fn.Name()
	}
	return ""
}

// scanLocksets records a node's direct lockset facts: acquires,
// lock balance, propagation callees, sorted variables, ordered-provider
// returns, and signal sites.
func (e *Engine) scanLocksets(n *FuncNode) {
	pkg := n.Pkg
	n.Acquires = make(map[string]string)
	n.locks.acquirePos = make(map[string]token.Pos)
	n.locks.net = make(map[string]int)
	n.locks.sortedVars = make(map[types.Object]token.Pos)

	// Immediate `go f()` call expressions: excluded from lockset
	// propagation (the goroutine locks on its own stack).
	spawned := make(map[*ast.CallExpr]bool)
	n.inspectOwn(func(node ast.Node) bool {
		if g, ok := node.(*ast.GoStmt); ok {
			spawned[g.Call] = true
		}
		return true
	})

	n.inspectOwn(func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if d, delta := lockOpDomain(pkg, x); delta != 0 {
				n.locks.net[d] += delta
				if delta > 0 {
					if _, ok := n.Acquires[d]; !ok {
						n.Acquires[d] = ""
						n.locks.acquirePos[d] = x.Pos()
					}
				}
				return true
			}
			if id := sortCallVar(pkg, x); id != nil {
				if obj := pkg.TypesInfo.Uses[id]; obj != nil {
					if _, ok := n.locks.sortedVars[obj]; !ok {
						n.locks.sortedVars[obj] = x.Pos()
					}
				}
			}
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, blt := pkg.TypesInfo.Uses[id].(*types.Builtin); blt && !n.locks.signals {
					n.locks.signals, n.locks.signalsVia = true, "close(chan)"
				}
			}
			if r := signalRoot(calleeObj(pkg, x.Fun)); r != "" && !n.locks.signals {
				n.locks.signals, n.locks.signalsVia = true, r
			}
			if !spawned[x] {
				if callee := e.resolveCallee(pkg, x.Fun); callee != nil {
					n.locks.calls = append(n.locks.calls, callee)
				}
			}
		case *ast.SendStmt:
			if !n.locks.signals {
				n.locks.signals, n.locks.signalsVia = true, "channel send"
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				call, ok := x.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := x.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.TypesInfo.Defs[id]
				if obj == nil {
					obj = pkg.TypesInfo.Uses[id]
				}
				callee := e.resolveCallee(pkg, call.Fun)
				if obj != nil && callee != nil {
					n.locks.providerAssigns = append(n.locks.providerAssigns,
						providerAssign{obj: obj, callee: callee, pos: x.Pos()})
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if id, ok := r.(*ast.Ident); ok {
					if obj := pkg.TypesInfo.Uses[id]; obj != nil {
						n.locks.retObjs = append(n.locks.retObjs, obj)
					}
				}
			}
		}
		return true
	})
	n.locks.calls = dedupeNodes(n.locks.calls)
}

// propagateLocksets merges one step of callee lockset facts into n and
// reports whether anything changed. Called from the engine fixpoint, so
// Acquires chains, ordered-provider bits, and signal bits all reach a
// deterministic fixed point together with the other effects.
func (n *FuncNode) propagateLocksets() bool {
	changed := false
	for _, c := range n.locks.calls {
		for _, d := range sortedKeys(c.Acquires) {
			if _, ok := n.Acquires[d]; ok {
				continue
			}
			chain := c.Name
			if via := c.Acquires[d]; via != "" {
				chain += ": " + via
			}
			n.Acquires[d] = chain
			changed = true
		}
		if c.locks.signals && !n.locks.signals {
			n.locks.signals = true
			n.locks.signalsVia = c.Name + ": " + c.locks.signalsVia
			changed = true
		}
	}
	for _, pa := range n.locks.providerAssigns {
		if pa.callee.locks.ordered {
			if _, ok := n.locks.sortedVars[pa.obj]; !ok {
				n.locks.sortedVars[pa.obj] = pa.pos
				changed = true
			}
		}
	}
	if !n.locks.ordered {
		for _, obj := range n.locks.retObjs {
			if _, ok := n.locks.sortedVars[obj]; ok {
				n.locks.ordered = true
				changed = true
				break
			}
		}
	}
	return changed
}

// sortedKeys returns a map's keys in lexicographic order, for
// deterministic propagation and reporting.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
