package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Exit codes for the codalint CLI.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitUsage    = 2 // bad invocation or load failure
	ExitDeadline = 3 // analysis exceeded the -deadline wall-clock budget
	ExitStale    = 4 // -ignores audit found stale or malformed suppressions
)

// cliOptions holds the parsed command-line flags.
type cliOptions struct {
	jsonOut   bool          // -json: machine-readable findings
	ignores   bool          // -ignores: audit suppressions instead of linting
	lockgraph bool          // -lockgraph: dump the lock-order graph as DOT
	deadline  time.Duration // -deadline: wall-clock budget; 0 = none
}

// parseArgs splits flags from package arguments. ok is false when the
// invocation is malformed (a usage message has been printed).
func parseArgs(args []string, stderr io.Writer) (opts cliOptions, rest []string, ok bool) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-h" || a == "--help" || a == "-help":
			usage(stderr)
			return opts, nil, false
		case a == "-json":
			opts.jsonOut = true
		case a == "-ignores":
			opts.ignores = true
		case a == "-lockgraph":
			opts.lockgraph = true
		case a == "-deadline" || strings.HasPrefix(a, "-deadline="):
			var val string
			if eq := strings.IndexByte(a, '='); eq >= 0 {
				val = a[eq+1:]
			} else {
				if i+1 >= len(args) {
					fmt.Fprintln(stderr, "codalint: -deadline needs a duration (e.g. -deadline 60s)")
					return opts, nil, false
				}
				i++
				val = args[i]
			}
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				fmt.Fprintf(stderr, "codalint: bad -deadline %q: want a positive duration\n", val)
				return opts, nil, false
			}
			opts.deadline = d
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(stderr, "codalint: unknown flag %s\n", a)
			usage(stderr)
			return opts, nil, false
		default:
			rest = append(rest, a)
		}
	}
	return opts, rest, true
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Main is the codalint entry point, factored out of cmd/codalint so
// tests can drive it in-process. Accepted arguments: a single `./...`
// (lint the whole module around the working directory) or one or more
// package directories inside a module, optionally preceded by flags.
func Main(args []string, stdout, stderr io.Writer) int {
	opts, rest, ok := parseArgs(args, stderr)
	if !ok {
		return ExitUsage
	}
	if len(rest) == 0 {
		usage(stderr)
		return ExitUsage
	}

	// The deadline is a wall-clock budget on the tool itself (a CI
	// regression fence), so the real clock is the right one here.
	//codalint:ignore simclock the lint tool's own -deadline budget is real wall-clock, not simulated time
	start := time.Now()

	var pkgs []*Package
	if len(rest) == 1 && (rest[0] == "./..." || rest[0] == "...") {
		mod, err := LoadModule(".")
		if err != nil {
			fmt.Fprintf(stderr, "codalint: %v\n", err)
			return ExitUsage
		}
		pkgs = mod.Packages
	} else {
		// Explicit directories: load each one's surrounding module once
		// and select the packages whose directory matches.
		mods := make(map[string]*Module)
		for _, arg := range rest {
			abs, err := filepath.Abs(arg)
			if err != nil {
				fmt.Fprintf(stderr, "codalint: %v\n", err)
				return ExitUsage
			}
			root, err := FindModuleRoot(abs)
			if err != nil {
				fmt.Fprintf(stderr, "codalint: %s: %v\n", arg, err)
				return ExitUsage
			}
			mod, ok := mods[root]
			if !ok {
				mod, err = LoadModule(root)
				if err != nil {
					fmt.Fprintf(stderr, "codalint: %v\n", err)
					return ExitUsage
				}
				mods[root] = mod
			}
			found := false
			for _, p := range mod.Packages {
				if p.Dir == abs {
					pkgs = append(pkgs, p)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "codalint: %s: no Go package\n", arg)
				return ExitUsage
			}
		}
	}

	if opts.ignores {
		return listIgnores(pkgs, Analyzers(), stdout, stderr)
	}
	if opts.lockgraph {
		fmt.Fprint(stdout, LockGraphDOT(pkgs))
		return ExitClean
	}

	findings := Run(pkgs, Analyzers())
	if opts.jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "codalint: %v\n", err)
			return ExitUsage
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}

	code := ExitClean
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "codalint: %d finding(s)\n", len(findings))
		code = ExitFindings
	}
	if opts.deadline > 0 {
		//codalint:ignore simclock the lint tool's own -deadline budget is real wall-clock, not simulated time
		elapsed := time.Since(start)
		fmt.Fprintf(stderr, "codalint: wall-clock %dms (deadline %s)\n",
			elapsed.Milliseconds(), opts.deadline)
		if elapsed > opts.deadline {
			fmt.Fprintf(stderr, "codalint: analysis exceeded the %s deadline\n", opts.deadline)
			return ExitDeadline
		}
	}
	return code
}

// listIgnores prints every //codalint:ignore directive in pkgs — the
// suppression audit. Each line is `file:line: [analyzer] reason`, so the
// complete debt of intentional exceptions is reviewable in one listing.
// The audit runs the full analyzer suite first so it knows which
// directives still suppress something: a directive that matches no
// finding is STALE (dead weight that would silently swallow the next
// real finding on that line) and fails the audit with ExitStale, as
// does a malformed directive.
func listIgnores(pkgs []*Package, analyzers []Analyzer, stdout, stderr io.Writer) int {
	_, sups, malformed := run(pkgs, analyzers)

	type entry struct {
		file     string
		line     int
		analyzer string
		reason   string
		stale    bool
	}
	var all []entry
	stale := 0
	for _, s := range sups {
		e := entry{s.file, s.line, s.analyzer, s.reason, !s.used}
		if e.stale {
			stale++
		}
		all = append(all, e)
	}
	// A malformed directive is still a suppression attempt; surface it
	// in the audit rather than hiding it.
	for _, f := range malformed {
		all = append(all, entry{f.Pos.Filename, f.Pos.Line, "directive", "MALFORMED: missing analyzer or reason", false})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].file != all[j].file {
			return all[i].file < all[j].file
		}
		return all[i].line < all[j].line
	})
	for _, e := range all {
		mark := ""
		if e.stale {
			mark = "  STALE: suppresses nothing — remove the directive or restore the reason it existed"
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s%s\n", e.file, e.line, e.analyzer, e.reason, mark)
	}
	fmt.Fprintf(stdout, "%d suppression(s), %d stale, %d malformed\n", len(all), stale, len(malformed))
	if stale > 0 || len(malformed) > 0 {
		fmt.Fprintf(stderr, "codalint: suppression audit failed: %d stale, %d malformed\n", stale, len(malformed))
		return ExitStale
	}
	return ExitClean
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: codalint [flags] ./...        lint every package in the module")
	fmt.Fprintln(w, "       codalint [flags] DIR [DIR...] lint specific package directories")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "flags:")
	fmt.Fprintln(w, "  -json          emit findings as a JSON array ({file,line,col,analyzer,message})")
	fmt.Fprintln(w, "  -ignores       audit //codalint:ignore suppressions: list all, fail (exit 4) on stale or malformed ones")
	fmt.Fprintln(w, "  -lockgraph     dump the whole-program lock-order graph as Graphviz DOT and exit")
	fmt.Fprintln(w, "  -deadline DUR  fail with exit 3 if analysis wall-clock exceeds DUR (e.g. 60s)")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "analyzers:")
	for _, a := range Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name(), a.Doc())
	}
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "suppress with: %s <analyzer> <reason>\n", IgnoreDirective)
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "exit status: 0 clean, 1 findings, 2 usage or load error, 3 deadline exceeded, 4 stale suppressions")
}
