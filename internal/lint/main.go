package lint

import (
	"fmt"
	"io"
	"path/filepath"
)

// Exit codes for the codalint CLI.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitUsage    = 2 // bad invocation or load failure
)

// Main is the codalint entry point, factored out of cmd/codalint so
// tests can drive it in-process. Accepted arguments: a single `./...`
// (lint the whole module around the working directory) or one or more
// package directories inside a module.
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return ExitUsage
	}
	for _, a := range args {
		if a == "-h" || a == "--help" || a == "-help" {
			usage(stderr)
			return ExitUsage
		}
	}

	var pkgs []*Package
	if len(args) == 1 && (args[0] == "./..." || args[0] == "...") {
		mod, err := LoadModule(".")
		if err != nil {
			fmt.Fprintf(stderr, "codalint: %v\n", err)
			return ExitUsage
		}
		pkgs = mod.Packages
	} else {
		// Explicit directories: load each one's surrounding module once
		// and select the packages whose directory matches.
		mods := make(map[string]*Module)
		for _, arg := range args {
			abs, err := filepath.Abs(arg)
			if err != nil {
				fmt.Fprintf(stderr, "codalint: %v\n", err)
				return ExitUsage
			}
			root, err := FindModuleRoot(abs)
			if err != nil {
				fmt.Fprintf(stderr, "codalint: %s: %v\n", arg, err)
				return ExitUsage
			}
			mod, ok := mods[root]
			if !ok {
				mod, err = LoadModule(root)
				if err != nil {
					fmt.Fprintf(stderr, "codalint: %v\n", err)
					return ExitUsage
				}
				mods[root] = mod
			}
			found := false
			for _, p := range mod.Packages {
				if p.Dir == abs {
					pkgs = append(pkgs, p)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "codalint: %s: no Go package\n", arg)
				return ExitUsage
			}
		}
	}

	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "codalint: %d finding(s)\n", len(findings))
		return ExitFindings
	}
	return ExitClean
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: codalint ./...        lint every package in the module")
	fmt.Fprintln(w, "       codalint DIR [DIR...] lint specific package directories")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "analyzers:")
	for _, a := range Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name(), a.Doc())
	}
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "suppress with: %s <analyzer> <reason>\n", IgnoreDirective)
}
