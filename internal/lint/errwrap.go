package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Errwrap enforces the repository's error discipline:
//
//  1. fmt.Errorf that formats an error value must wrap it with %w (or
//     the caller should return a sentinel), so callers can errors.Is/As
//     across package boundaries instead of string-matching.
//  2. An expression statement that silently discards an error-returning
//     call is flagged; discard explicitly with `_ =` when the error is
//     genuinely meaningless.
//
// Calls whose errors are discarded by universal convention (the
// fmt.Print family, strings.Builder, bytes.Buffer) are exempt.
type Errwrap struct{}

// NewErrwrap returns the analyzer.
func NewErrwrap() *Errwrap { return &Errwrap{} }

// Name implements Analyzer.
func (*Errwrap) Name() string { return "errwrap" }

// Doc implements Analyzer.
func (*Errwrap) Doc() string {
	return "fmt.Errorf over an error must use %w; bare statements must not discard error returns"
}

// discardExempt lists callees whose error results are conventionally
// ignored: terminal/report output (a failed diagnostic write is
// untreatable) and hash writes (documented to never fail).
var discardExempt = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

// discardExemptRecv lists receiver types whose methods' error results
// are documented to always be nil. (Interface methods resolve to their
// embedded declaration — hash.Hash.Write is (io.Writer).Write to
// go/types — so only concrete never-fail types belong here.)
var discardExemptRecv = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
}

// Analyze implements Analyzer.
func (e *Errwrap) Analyze(pkg *Package) []Finding {
	var out []Finding
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	isError := func(t types.Type) bool {
		return t != nil && types.Implements(t, errorType)
	}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				out = append(out, e.checkErrorf(pkg, x, isError)...)
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					out = append(out, e.checkDiscard(pkg, call)...)
				}
			}
			return true
		})
	}
	return out
}

// checkErrorf flags fmt.Errorf calls that format an error argument
// without %w.
func (e *Errwrap) checkErrorf(pkg *Package, call *ast.CallExpr, isError func(types.Type) bool) []Finding {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return nil
	}
	tv, ok := pkg.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return nil
	}
	for _, arg := range call.Args[1:] {
		if tv, ok := pkg.TypesInfo.Types[arg]; ok && isError(tv.Type) {
			return []Finding{{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: e.Name(),
				Message:  "fmt.Errorf formats an error without %w; wrap it so callers can errors.Is/As across package boundaries",
			}}
		}
	}
	return nil
}

// checkDiscard flags a bare statement that drops an error result.
func (e *Errwrap) checkDiscard(pkg *Package, call *ast.CallExpr) []Finding {
	tv, ok := pkg.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	errorType := types.Universe.Lookup("error").Type()
	returnsError := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				returnsError = true
			}
		}
	default:
		returnsError = types.Identical(t, errorType)
	}
	if !returnsError {
		return nil
	}
	if fn := calleeFunc(pkg, call); fn != nil {
		full := fn.FullName()
		if discardExempt[full] {
			return nil
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if discardExemptRecv[sig.Recv().Type().String()] {
				return nil
			}
		}
	}
	return []Finding{{
		Pos:      pkg.Fset.Position(call.Pos()),
		Analyzer: e.Name(),
		Message:  "error return discarded; handle it or discard explicitly with _ =",
	}}
}

// calleeFunc resolves the called function or method, or nil for
// indirect calls and conversions.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.TypesInfo.Uses[id].(*types.Func)
	return fn
}
