package lint

import (
	"fmt"
)

// Leakcheck is the goroutine-lifecycle analyzer: every goroutine launch
// site — a `go` statement or a clock.Go(fn) spawn — whose target
// transitively enters a condition-less for loop with no reachable exit
// is reported. A daemon that can never observe its owner's shutdown
// outlives the simulation that spawned it: under a Sim clock it parks
// forever and poisons quiescence detection; under the real clock it is
// a leak. The per-volume trickle loops, hoard walks, and netmon probes
// all follow the required discipline — an exit tied to the owner's
// Close (a closed flag, a done channel, a queue that drains ok=false) —
// and this analyzer pins that discipline statically.
//
// The endless-loop fact is computed by the interprocedural engine, so a
// spawn of a harmless-looking wrapper is still reported when the loop
// hides two static calls away in another package. Break statements that
// target an inner select or switch do not count as loop exits; that
// shape gets its own diagnostic, since `for { select { case <-done:
// break } }` is the classic almost-correct shutdown.
type Leakcheck struct {
	eng *Engine
}

// NewLeakcheck returns the analyzer; the engine is bound by Run.
func NewLeakcheck() *Leakcheck { return &Leakcheck{} }

// Name implements Analyzer.
func (*Leakcheck) Name() string { return "leakcheck" }

// Doc implements Analyzer.
func (*Leakcheck) Doc() string {
	return "every goroutine launch must have a reachable stop path tied to its owner's shutdown"
}

// Bind implements interprocAnalyzer.
func (l *Leakcheck) Bind(e *Engine) { l.eng = e }

// Analyze implements Analyzer.
func (l *Leakcheck) Analyze(pkg *Package) []Finding {
	if l.eng == nil {
		l.Bind(NewEngine([]*Package{pkg}))
	}
	var out []Finding
	for _, n := range l.eng.PkgNodes(pkg) {
		for _, sp := range n.Spawns {
			t := sp.Target
			if t == nil || !t.Endless {
				continue
			}
			hint := "add a stop path tied to the owner's shutdown (done channel, closed flag, or context)"
			if t.selectBreakOnly {
				hint = "its break exits only the inner select/switch, never the loop — return instead"
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(sp.Pos),
				Analyzer: l.Name(),
				Message: fmt.Sprintf("%s spawns a goroutine that can never stop (%s); %s",
					sp.Label, t.EndlessVia, hint),
			})
		}
	}
	return out
}
