package lint

import (
	"go/ast"
	"strings"
)

// Testhygiene checks *_test.go files. Because external test packages
// cannot be type-checked without building the package under test, the
// checks are syntactic:
//
//  1. A test helper — a non-Test function with a *testing.T /
//     *testing.B / testing.TB parameter that calls a reporting method
//     (Error, Fatal, Skip, ...) — must call t.Helper() so failures
//     point at the caller.
//  2. time.Sleep in tests is forbidden: tests run on a simtime.Sim
//     clock, and real sleeps make them slow and flaky. (Tests of the
//     Real clock itself carry an explicit suppression.)
type Testhygiene struct{}

// NewTesthygiene returns the analyzer.
func NewTesthygiene() *Testhygiene { return &Testhygiene{} }

// Name implements Analyzer.
func (*Testhygiene) Name() string { return "testhygiene" }

// Doc implements Analyzer.
func (*Testhygiene) Doc() string {
	return "test helpers must call t.Helper(); tests must not call real time.Sleep"
}

// reporting methods on testing.TB that justify t.Helper().
var tbReporting = map[string]bool{
	"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true,
	"Skip": true, "Skipf": true, "SkipNow": true, "FailNow": true,
	"Fail": true,
}

// Analyze implements Analyzer.
func (t *Testhygiene) Analyze(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.TestFiles {
		timeName, timeImported := importName(file, "time")
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if timeImported {
				out = append(out, t.checkSleep(pkg, fn, timeName)...)
			}
			out = append(out, t.checkHelper(pkg, fn)...)
			return true
		})
	}
	return out
}

// importName reports the local name under which path is imported.
func importName(file *ast.File, path string) (string, bool) {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false // dot/blank imports: selector match impossible
			}
			return imp.Name.Name, true
		}
		return path[strings.LastIndex(path, "/")+1:], true
	}
	return "", false
}

// checkSleep flags time.Sleep calls inside fn.
func (t *Testhygiene) checkSleep(pkg *Package, fn *ast.FuncDecl, timeName string) []Finding {
	if fn.Body == nil {
		return nil
	}
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && id.Obj == nil {
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: t.Name(),
				Message:  "time.Sleep in a test; drive a simtime.Sim clock instead of sleeping on the wall clock",
			})
		}
		return true
	})
	return out
}

// testingParam returns the name of fn's *testing.T/*testing.B/testing.TB
// parameter, or "".
func testingParam(fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || pkgID.Name != "testing" {
			continue
		}
		if sel.Sel.Name != "T" && sel.Sel.Name != "B" && sel.Sel.Name != "TB" {
			continue
		}
		if len(field.Names) == 0 || field.Names[0].Name == "_" {
			return ""
		}
		return field.Names[0].Name
	}
	return ""
}

// isTestEntry reports whether the function is a top-level Test,
// Benchmark, Fuzz, or Example entry point (which must not call Helper).
func isTestEntry(name string) bool {
	return strings.HasPrefix(name, "Test") || strings.HasPrefix(name, "Benchmark") ||
		strings.HasPrefix(name, "Fuzz") || strings.HasPrefix(name, "Example")
}

// checkHelper flags helpers that report through t but never call
// t.Helper().
func (t *Testhygiene) checkHelper(pkg *Package, fn *ast.FuncDecl) []Finding {
	if fn.Body == nil || isTestEntry(fn.Name.Name) {
		return nil
	}
	param := testingParam(fn)
	if param == "" {
		return nil
	}
	reports := false
	callsHelper := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != param {
			return true
		}
		switch {
		case sel.Sel.Name == "Helper":
			callsHelper = true
		case tbReporting[sel.Sel.Name]:
			reports = true
		}
		return true
	})
	if reports && !callsHelper {
		return []Finding{{
			Pos:      pkg.Fset.Position(fn.Name.Pos()),
			Analyzer: t.Name(),
			Message:  "test helper " + fn.Name.Name + " reports through " + param + " but never calls " + param + ".Helper()",
		}}
	}
	return nil
}
