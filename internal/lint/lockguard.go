package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Lockguard enforces the repository's lock-discipline convention: a
// struct that owns a `mu sync.Mutex` (or RWMutex) field guards its
// mutable sibling fields with it. Exported methods that read or write a
// guarded field must acquire the lock — directly (mu.Lock/RLock) or by
// calling an unexported sibling method that does (e.g. a lock() helper).
//
// A field counts as guarded when at least one method of the struct
// writes it: fields assigned only in constructors are immutable
// configuration (clocks, addresses, channels) and may be read freely.
// Methods whose name ends in "Locked" follow the caller-holds-the-lock
// convention and are exempt.
type Lockguard struct{}

// NewLockguard returns the analyzer.
func NewLockguard() *Lockguard { return &Lockguard{} }

// Name implements Analyzer.
func (*Lockguard) Name() string { return "lockguard" }

// Doc implements Analyzer.
func (*Lockguard) Doc() string {
	return "exported methods of mu-owning structs must hold mu when touching mutated sibling fields"
}

// guardedStruct is one struct type owning a mu field.
type guardedStruct struct {
	name    string
	fields  map[string]bool // sibling field names (everything but mu)
	mutated map[string]bool // fields written by at least one method
	lockers map[string]bool // methods that directly acquire a mu
	methods []*ast.FuncDecl
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// Analyze implements Analyzer.
func (l *Lockguard) Analyze(pkg *Package) []Finding {
	structs := l.collect(pkg)
	if len(structs) == 0 {
		return nil
	}

	var out []Finding
	for _, gs := range structs {
		for _, fn := range gs.methods {
			if !ast.IsExported(fn.Name.Name) || strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			recv := receiverName(fn)
			if recv == "" || fn.Body == nil {
				continue
			}
			touched := touchedFields(fn, recv, gs.mutated)
			if len(touched) == 0 {
				continue
			}
			if acquiresLock(fn, recv, gs.lockers) {
				continue
			}
			names := make([]string, 0, len(touched))
			for f := range touched {
				names = append(names, f)
			}
			sort.Strings(names)
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(fn.Name.Pos()),
				Analyzer: l.Name(),
				Message: fmt.Sprintf("%s.%s accesses guarded field(s) %s without holding mu",
					gs.name, fn.Name.Name, strings.Join(names, ", ")),
			})
		}
	}
	return out
}

// collect finds every mu-owning struct in the package, its methods, the
// fields those methods mutate, and which methods directly lock a mu.
func (l *Lockguard) collect(pkg *Package) map[string]*guardedStruct {
	structs := make(map[string]*guardedStruct)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var hasMu bool
		fields := make(map[string]bool)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "mu" && isMutexType(f.Type()) {
				hasMu = true
				continue
			}
			fields[f.Name()] = true
		}
		if !hasMu {
			continue
		}
		structs[name] = &guardedStruct{
			name:    name,
			fields:  fields,
			mutated: make(map[string]bool),
			lockers: make(map[string]bool),
		}
	}
	if len(structs) == 0 {
		return structs
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			gs, ok := structs[receiverTypeName(fn)]
			if !ok {
				continue
			}
			gs.methods = append(gs.methods, fn)
			recv := receiverName(fn)
			if recv == "" || fn.Body == nil {
				continue
			}
			for f := range mutatedFields(fn, recv, gs.fields) {
				gs.mutated[f] = true
			}
			if locksDirectly(fn) {
				gs.lockers[fn.Name.Name] = true
			}
		}
	}
	return structs
}

// receiverTypeName unwraps the receiver type expression (pointer and
// generic instantiations) to its base type name.
func receiverTypeName(fn *ast.FuncDecl) string {
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// receiverName returns the receiver variable name, or "" when unnamed.
func receiverName(fn *ast.FuncDecl) string {
	names := fn.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

// baseField returns the first field selected off the receiver variable
// in expr ("v.stats.Reintegrations" → "stats"), or "".
func baseField(expr ast.Expr, recv string) string {
	for {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			return sel.Sel.Name
		}
		expr = sel.X
	}
}

// mutatedFields reports sibling fields the method writes (assignment,
// ++/--), including inside closures.
func mutatedFields(fn *ast.FuncDecl, recv string, siblings map[string]bool) map[string]bool {
	out := make(map[string]bool)
	note := func(expr ast.Expr) {
		if f := baseField(expr, recv); f != "" && siblings[f] {
			out[f] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(x.X)
		}
		return true
	})
	return out
}

// touchedFields reports guarded sibling fields the method reads or
// writes anywhere in its body.
func touchedFields(fn *ast.FuncDecl, recv string, guarded map[string]bool) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv && guarded[sel.Sel.Name] {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

// locksDirectly reports whether the method body contains a
// <...>.mu.Lock() or <...>.mu.RLock() call.
func locksDirectly(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "mu" {
			found = true
			return false
		}
		return true
	})
	return found
}

// acquiresLock reports whether the method locks mu directly or calls a
// sibling method (on its own receiver) that does.
func acquiresLock(fn *ast.FuncDecl, recv string, lockers map[string]bool) bool {
	if locksDirectly(fn) {
		return true
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockers[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			found = true
			return false
		}
		return true
	})
	return found
}
