package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Lockguard enforces the repository's lock-discipline convention: a
// struct that owns mutex fields guards its mutable sibling fields with
// them. Exported methods that read or write a guarded field must acquire
// the field's guarding lock — directly (<lock>.Lock/RLock) or by calling
// an unexported sibling method that does (e.g. a lock() helper).
//
// Mutex fields are recognized by name: `mu`, or any name ending in "Mu"
// (clientsMu, fragMu). A struct with a single mutex guards every mutable
// sibling with it. A struct with several mutexes is partitioned into
// concurrency domains positionally — each non-mutex field is guarded by
// the nearest mutex field declared above it, and fields declared before
// the first mutex are unguarded configuration (clocks, connections,
// atomics). This is the registry-of-domains pattern: a registry lock
// over the lookup maps, with the located domain objects carrying their
// own locks (server.Server and server.volume).
//
// A field counts as guarded when at least one method of the struct
// writes it (assignment, ++/--, or writing through a map index): fields
// assigned only in constructors are immutable configuration and may be
// read freely. Methods whose name ends in "Locked" follow the
// caller-holds-the-lock convention and are exempt.
type Lockguard struct{}

// NewLockguard returns the analyzer.
func NewLockguard() *Lockguard { return &Lockguard{} }

// Name implements Analyzer.
func (*Lockguard) Name() string { return "lockguard" }

// Doc implements Analyzer.
func (*Lockguard) Doc() string {
	return "exported methods of mutex-owning structs must hold the guarding mutex when touching mutated sibling fields"
}

// guardedStruct is one struct type owning mutex fields.
type guardedStruct struct {
	name    string
	locks   []string                   // mutex field names, declaration order
	guardOf map[string]string          // sibling field → guarding lock ("" = unguarded)
	mutated map[string]bool            // fields written by at least one method
	lockers map[string]map[string]bool // method → locks it acquires directly
	methods []*ast.FuncDecl
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isMutexField reports whether the field follows the mutex naming
// convention the analyzer enforces.
func isMutexField(name string, t types.Type) bool {
	return isMutexType(t) && (name == "mu" || strings.HasSuffix(name, "Mu"))
}

// Analyze implements Analyzer.
func (l *Lockguard) Analyze(pkg *Package) []Finding {
	structs := l.collect(pkg)
	if len(structs) == 0 {
		return nil
	}

	var out []Finding
	for _, gs := range structs {
		for _, fn := range gs.methods {
			if !ast.IsExported(fn.Name.Name) || strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			recv := receiverName(fn)
			if recv == "" || fn.Body == nil {
				continue
			}
			guarded := make(map[string]bool, len(gs.mutated))
			for f := range gs.mutated {
				if gs.guardOf[f] != "" {
					guarded[f] = true
				}
			}
			touched := touchedFields(fn, recv, guarded)
			if len(touched) == 0 {
				continue
			}
			// Group the touched fields by their guarding lock; each lock
			// the method fails to acquire is one finding.
			byLock := make(map[string][]string)
			for f := range touched {
				byLock[gs.guardOf[f]] = append(byLock[gs.guardOf[f]], f)
			}
			locks := make([]string, 0, len(byLock))
			for lock := range byLock {
				locks = append(locks, lock)
			}
			sort.Strings(locks)
			for _, lock := range locks {
				if acquiresLock(fn, recv, lock, gs.lockers) {
					continue
				}
				names := byLock[lock]
				sort.Strings(names)
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(fn.Name.Pos()),
					Analyzer: l.Name(),
					Message: fmt.Sprintf("%s.%s accesses guarded field(s) %s without holding %s",
						gs.name, fn.Name.Name, strings.Join(names, ", "), lock),
				})
			}
		}
	}
	return out
}

// collect finds every mutex-owning struct in the package, partitions its
// fields into lock domains, and records its methods, the fields those
// methods mutate, and which locks each method acquires directly.
func (l *Lockguard) collect(pkg *Package) map[string]*guardedStruct {
	structs := make(map[string]*guardedStruct)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		gs := &guardedStruct{
			name:    name,
			guardOf: make(map[string]string),
			mutated: make(map[string]bool),
			lockers: make(map[string]map[string]bool),
		}
		current := "" // nearest preceding mutex field
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexField(f.Name(), f.Type()) {
				gs.locks = append(gs.locks, f.Name())
				current = f.Name()
				continue
			}
			gs.guardOf[f.Name()] = current
		}
		if len(gs.locks) == 0 {
			continue
		}
		if len(gs.locks) == 1 {
			// A single mutex guards every sibling wherever it is declared
			// (the long-standing convention; position is style, not
			// semantics, until a second domain appears).
			for f := range gs.guardOf {
				gs.guardOf[f] = gs.locks[0]
			}
		}
		structs[name] = gs
	}
	if len(structs) == 0 {
		return structs
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			gs, ok := structs[receiverTypeName(fn)]
			if !ok {
				continue
			}
			gs.methods = append(gs.methods, fn)
			recv := receiverName(fn)
			if recv == "" || fn.Body == nil {
				continue
			}
			for f := range mutatedFields(fn, recv, gs.guardOf) {
				gs.mutated[f] = true
			}
			if locked := directLocks(fn, gs.locks); len(locked) > 0 {
				gs.lockers[fn.Name.Name] = locked
			}
		}
	}
	return structs
}

// receiverTypeName unwraps the receiver type expression (pointer and
// generic instantiations) to its base type name.
func receiverTypeName(fn *ast.FuncDecl) string {
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// receiverName returns the receiver variable name, or "" when unnamed.
func receiverName(fn *ast.FuncDecl) string {
	names := fn.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

// baseField returns the first field selected off the receiver variable
// in expr ("v.stats.Reintegrations" → "stats", "s.frags[k]" → "frags"),
// or "".
func baseField(expr ast.Expr, recv string) string {
	for {
		switch x := expr.(type) {
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recv {
				return x.Sel.Name
			}
			expr = x.X
		default:
			return ""
		}
	}
}

// mutatedFields reports sibling fields the method writes (assignment,
// ++/--, including through a map or slice index), including inside
// closures.
func mutatedFields(fn *ast.FuncDecl, recv string, siblings map[string]string) map[string]bool {
	out := make(map[string]bool)
	note := func(expr ast.Expr) {
		if f := baseField(expr, recv); f != "" {
			if _, sibling := siblings[f]; sibling {
				out[f] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(x.X)
		}
		return true
	})
	return out
}

// touchedFields reports guarded sibling fields the method reads or
// writes anywhere in its body.
func touchedFields(fn *ast.FuncDecl, recv string, guarded map[string]bool) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv && guarded[sel.Sel.Name] {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

// directLocks reports which of the struct's locks the method body
// acquires via <...>.<lock>.Lock() or <...>.<lock>.RLock().
func directLocks(fn *ast.FuncDecl, locks []string) map[string]bool {
	names := make(map[string]bool, len(locks))
	for _, l := range locks {
		names[l] = true
	}
	out := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && names[inner.Sel.Name] {
			out[inner.Sel.Name] = true
		}
		return true
	})
	return out
}

// acquiresLock reports whether the method acquires the named lock
// directly or calls a sibling method (on its own receiver) that does.
func acquiresLock(fn *ast.FuncDecl, recv, lock string, lockers map[string]map[string]bool) bool {
	if directLocks(fn, []string{lock})[lock] {
		return true
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockers[sel.Sel.Name][lock] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			found = true
			return false
		}
		return true
	})
	return found
}
