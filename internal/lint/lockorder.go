package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Lockorder is the whole-program lock-order and deadlock-cycle
// analyzer. It walks every function with a lockhold-style critical
// section tracker — extended to open regions at lockVolume-style
// helper calls (callees whose direct Lock/Unlock balance is positive)
// — and consults the engine's lockset summaries to build the static
// lock-order graph: an edge A → B means some function holds a lock of
// domain A while acquiring one of domain B, possibly through a chain
// of static calls crossing any number of package boundaries.
//
// Four queries run over that graph and the walk itself:
//
//  1. every cycle in the graph is a potential deadlock, reported once
//     with a witness acquire site for each edge in the cycle;
//  2. a (transitive) acquire of a domain already held is reported at
//     the acquire site: on the same instance it self-deadlocks, on two
//     instances it is an unordered multi-lock;
//  3. a loop that accumulates same-domain locks across iterations
//     (lock without unlock in the body) must be provably ordered —
//     the collection sorted by a sort call before the loop, or ranged
//     off an ordered provider (a function that returns a slice it
//     sorted, like the server's volumesByID) — otherwise two such
//     loops can interleave in opposite orders: the ascending-ID rule;
//  4. a lock held across a direct channel receive, select, WaitGroup
//     Wait, or clock sleep is a cross-primitive deadlock shape when
//     some other function needs the same domain on its way to
//     signalling (send, close, Done, Cond.Signal): the holder parks
//     waiting for a signal the signaller can never deliver.
//
// Branch analysis distinguishes must-hold from may-hold: a lock
// released (or acquired) on only some paths is weakly held after the
// branch — weak holds still produce ordering edges, but never the
// same-domain or cross-primitive findings, so conditional unlock
// idioms (simtime.Queue unlocking either the Sim or its own mutex
// before parking) do not produce false positives.
type Lockorder struct {
	eng  *Engine
	done bool

	edges    map[string]*lockEdge // "from\x00to" → first witness
	findings []Finding            // global, filtered per package in Analyze
	sites    []blockSite
}

// lockEdge is one lock-order graph edge with its first witness.
type lockEdge struct {
	from, to string
	pos      token.Position // acquire site of `to` while `from` is held
	via      string         // call chain reaching the acquire ("" = direct)
	weak     bool           // the held side was a may-hold
}

// blockSite is one blocking primitive reached with locks held.
type blockSite struct {
	pos     token.Position
	kind    string
	domains []string // strongly held domains, sorted
	node    *FuncNode
}

// NewLockorder returns the analyzer; the engine is bound by Run.
func NewLockorder() *Lockorder { return &Lockorder{} }

// Name implements Analyzer.
func (*Lockorder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (*Lockorder) Doc() string {
	return "whole-program lock-order graph: deadlock cycles, unordered same-domain multi-locks (ascending-ID rule), locks held across receive/Wait/sleep a signaller needs"
}

// Bind implements interprocAnalyzer.
func (l *Lockorder) Bind(e *Engine) { l.eng = e }

// Analyze implements Analyzer. The graph and findings are global,
// computed once over every package the engine was built from; each
// package reports the findings anchored in its own files.
func (l *Lockorder) Analyze(pkg *Package) []Finding {
	if l.eng == nil {
		l.Bind(NewEngine([]*Package{pkg}))
	}
	l.compute()
	mine := make(map[string]bool, len(pkg.Files))
	for _, f := range pkg.Files {
		mine[pkg.Fset.Position(f.Pos()).Filename] = true
	}
	var out []Finding
	for _, f := range l.findings {
		if mine[f.Pos.Filename] {
			out = append(out, f)
		}
	}
	return out
}

// compute walks every node once and derives the global findings.
func (l *Lockorder) compute() {
	if l.done {
		return
	}
	l.done = true
	l.edges = make(map[string]*lockEdge)
	nodes := make([]*FuncNode, len(l.eng.nodes))
	copy(nodes, l.eng.nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].sortKey() < nodes[j].sortKey() })
	for _, n := range nodes {
		sc := &orderScan{a: l, pkg: n.Pkg, node: n}
		sc.block(n.body().List, map[string]heldLock{})
	}
	l.cycleFindings()
	l.crossPrimFindings(nodes)
}

// addEdge records a lock-order edge, keeping the first witness.
func (l *Lockorder) addEdge(from, to string, pos token.Position, via string, weak bool) {
	key := from + "\x00" + to
	if _, ok := l.edges[key]; ok {
		return
	}
	l.edges[key] = &lockEdge{from: from, to: to, pos: pos, via: via, weak: weak}
}

func (l *Lockorder) report(pos token.Position, format string, args ...any) {
	l.findings = append(l.findings, Finding{
		Pos:      pos,
		Analyzer: "lockorder",
		Message:  fmt.Sprintf(format, args...),
	})
}

// cycleFindings reports every strongly connected component of the
// lock-order graph (self-loops excluded; those surface as same-domain
// findings at their sites) as one potential deadlock.
func (l *Lockorder) cycleFindings() {
	adj := make(map[string][]string)
	domains := map[string]bool{}
	for _, key := range sortedEdgeKeys(l.edges) {
		e := l.edges[key]
		if e.from == e.to {
			continue
		}
		adj[e.from] = append(adj[e.from], e.to)
		domains[e.from], domains[e.to] = true, true
	}
	order := make([]string, 0, len(domains))
	for d := range domains {
		order = append(order, d)
	}
	sort.Strings(order)

	for _, scc := range stronglyConnected(order, adj) {
		if len(scc) < 2 {
			continue
		}
		in := make(map[string]bool, len(scc))
		for _, d := range scc {
			in[d] = true
		}
		var internal []*lockEdge
		for _, key := range sortedEdgeKeys(l.edges) {
			e := l.edges[key]
			if e.from != e.to && in[e.from] && in[e.to] {
				internal = append(internal, e)
			}
		}
		anchor := internal[0].pos
		for _, e := range internal[1:] {
			if posLess(e.pos, anchor) {
				anchor = e.pos
			}
		}
		parts := make([]string, len(internal))
		for i, e := range internal {
			via := ""
			if e.via != "" {
				via = " via " + e.via
			}
			parts[i] = fmt.Sprintf("%s -> %s at %s:%d%s",
				e.from, e.to, filepath.Base(e.pos.Filename), e.pos.Line, via)
		}
		l.report(anchor, "potential deadlock: lock-order cycle between %s: %s; pick one global order and release before acquiring against it",
			strings.Join(scc, ", "), strings.Join(parts, "; "))
	}
}

// crossPrimFindings reports every blocking site whose held domain some
// other function needs on its way to signalling a waiter.
func (l *Lockorder) crossPrimFindings(nodes []*FuncNode) {
	for _, s := range l.sites {
		for _, d := range s.domains {
			for _, g := range nodes {
				if g == s.node || !g.locks.signals {
					continue
				}
				if _, ok := g.Acquires[d]; !ok {
					continue
				}
				l.report(s.pos, "%s held across %s in %s, but %s acquires %s on its way to signalling (%s): the holder can park waiting for a signal that needs its own lock",
					d, s.kind, s.node.Name, g.Name, d, g.locks.signalsVia)
				break
			}
		}
	}
}

// posLess orders token.Positions by (file, line, column).
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func sortedEdgeKeys(m map[string]*lockEdge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stronglyConnected returns the SCCs of the graph (Kosaraju), each
// sorted internally, in deterministic order.
func stronglyConnected(order []string, adj map[string][]string) [][]string {
	seen := make(map[string]bool)
	var finish []string
	var dfs1 func(v string)
	dfs1 = func(v string) {
		seen[v] = true
		for _, w := range adj[v] {
			if !seen[w] {
				dfs1(w)
			}
		}
		finish = append(finish, v)
	}
	for _, v := range order {
		if !seen[v] {
			dfs1(v)
		}
	}
	rev := make(map[string][]string)
	for v, ws := range adj {
		for _, w := range ws {
			rev[w] = append(rev[w], v)
		}
	}
	assigned := make(map[string]bool)
	var sccs [][]string
	var comp []string
	var dfs2 func(v string)
	dfs2 = func(v string) {
		assigned[v] = true
		comp = append(comp, v)
		for _, w := range rev[v] {
			if !assigned[w] {
				dfs2(w)
			}
		}
	}
	for i := len(finish) - 1; i >= 0; i-- {
		if v := finish[i]; !assigned[v] {
			comp = nil
			dfs2(v)
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	return sccs
}

// GraphDOT renders the lock-order graph in Graphviz DOT form; weak
// (may-hold) edges are dashed.
func (l *Lockorder) GraphDOT() string {
	l.compute()
	var b strings.Builder
	b.WriteString("digraph lockorder {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, key := range sortedEdgeKeys(l.edges) {
		e := l.edges[key]
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%s:%d", filepath.Base(e.pos.Filename), e.pos.Line))
		if e.weak {
			attrs += ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.from, e.to, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

// LockGraphDOT builds the whole-program lock-order graph over pkgs and
// renders it as DOT — the `codalint -lockgraph` entry point.
func LockGraphDOT(pkgs []*Package) string {
	lo := NewLockorder()
	lo.Bind(NewEngine(pkgs))
	return lo.GraphDOT()
}

// heldLock is one held domain during a walk.
type heldLock struct {
	pos   token.Pos
	weak  bool     // held on only some paths: orders, but is not a must-hold
	owner ast.Expr // mutex owner expression at a direct acquire; nil via helper
}

// orderScan walks one function's body tracking held lock domains.
type orderScan struct {
	a    *Lockorder
	pkg  *Package
	node *FuncNode
}

func (sc *orderScan) pos(p token.Pos) token.Position { return sc.pkg.Fset.Position(p) }

func (sc *orderScan) block(stmts []ast.Stmt, held map[string]heldLock) {
	for _, stmt := range stmts {
		sc.stmt(stmt, held)
	}
}

func copyHeldL(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func sortedHeldKeys(held map[string]heldLock) []string {
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// branch walks a conditionally executed body and merges its lock
// effects back as may-holds: domains it acquired become weakly held,
// domains it released weaken the parent's hold.
func (sc *orderScan) branch(stmts []ast.Stmt, held map[string]heldLock) {
	child := copyHeldL(held)
	sc.block(stmts, child)
	sc.mergeMay(held, child)
}

func (sc *orderScan) mergeMay(held, child map[string]heldLock) {
	for d, h := range child {
		if _, ok := held[d]; !ok {
			h.weak = true
			held[d] = h
		}
	}
	for d, h := range held {
		if c, ok := child[d]; (!ok || c.weak) && !h.weak {
			h.weak = true
			held[d] = h
		}
	}
}

func (sc *orderScan) stmt(stmt ast.Stmt, held map[string]heldLock) {
	switch x := stmt.(type) {
	case *ast.ExprStmt:
		sc.expr(x.X, held)
	case *ast.DeferStmt:
		if _, delta := lockOpDomain(sc.pkg, x.Call); delta < 0 {
			return // deferred unlock: held to the end of the function
		}
		if callee := sc.a.eng.resolveCallee(sc.pkg, x.Call.Fun); callee != nil {
			for _, bal := range callee.locks.net {
				if bal < 0 {
					return // deferred unlock helper (incl. unlock-all literals)
				}
			}
		}
		sc.expr(x.Call, held)
	case *ast.GoStmt:
		for _, arg := range x.Call.Args {
			sc.expr(arg, held)
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			sc.expr(e, held)
		}
		for _, e := range x.Lhs {
			sc.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			sc.expr(e, held)
		}
	case *ast.SendStmt:
		// Sends block too, but lockhold owns held-across-blocking; the
		// cross-primitive shape here is about *waiting* for a signal.
		sc.expr(x.Chan, held)
		sc.expr(x.Value, held)
	case *ast.IncDecStmt:
		sc.expr(x.X, held)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.expr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		sc.stmt(x.Stmt, held)
	case *ast.BlockStmt:
		sc.block(x.List, held)
	case *ast.IfStmt:
		if x.Init != nil {
			sc.stmt(x.Init, held)
		}
		sc.expr(x.Cond, held)
		sc.branch(x.Body.List, held)
		if x.Else != nil {
			child := copyHeldL(held)
			sc.stmt(x.Else, child)
			sc.mergeMay(held, child)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			sc.stmt(x.Init, held)
		}
		if x.Cond != nil {
			sc.expr(x.Cond, held)
		}
		sc.loop(x.Body, nil, x.For, held)
		if x.Post != nil {
			sc.stmt(x.Post, copyHeldL(held))
		}
	case *ast.RangeStmt:
		if t := sc.pkg.TypesInfo.Types[x.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				sc.site(x.For, "range over channel", held)
			}
		}
		sc.expr(x.X, held)
		sc.loop(x.Body, x.X, x.For, held)
	case *ast.SwitchStmt:
		if x.Init != nil {
			sc.stmt(x.Init, held)
		}
		if x.Tag != nil {
			sc.expr(x.Tag, held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.branch(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.branch(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			sc.site(x.Select, "select with no default", held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sc.branch(cc.Body, held)
			}
		}
	}
}

// loop walks a for/range body and enforces the ascending-ID rule on
// any domain the body accumulates (acquires without releasing): the
// iteration must be provably ordered, or two loops can interleave in
// opposite orders. Accumulated domains stay held (weakly: the loop may
// run zero times) for the code after the loop.
func (sc *orderScan) loop(body *ast.BlockStmt, rangeX ast.Expr, loopPos token.Pos, held map[string]heldLock) {
	child := copyHeldL(held)
	sc.block(body.List, child)
	for _, d := range sortedHeldKeys(child) {
		h := child[d]
		if _, ok := held[d]; ok {
			continue
		}
		if !h.weak && !sc.orderedIteration(rangeX, h, loopPos) {
			sc.a.report(sc.pos(h.pos),
				"loop in %s accumulates %s locks across iterations in unproven order; sort the slice before the loop or range an ordered provider (ascending-ID rule)",
				sc.node.Name, d)
		}
	}
	sc.mergeMay(held, child)
}

// orderedIteration reports whether the loop's lock order is provably
// ascending: it ranges over a variable sorted earlier in this
// function, over the result of an ordered provider, or the acquire
// indexes into such a sorted variable.
func (sc *orderScan) orderedIteration(rangeX ast.Expr, h heldLock, loopPos token.Pos) bool {
	sortedBefore := func(id *ast.Ident) bool {
		obj := sc.pkg.TypesInfo.Uses[id]
		if obj == nil {
			return false
		}
		p, ok := sc.node.locks.sortedVars[obj]
		return ok && p < loopPos
	}
	for rangeX != nil {
		if pe, ok := rangeX.(*ast.ParenExpr); ok {
			rangeX = pe.X
			continue
		}
		break
	}
	switch rx := rangeX.(type) {
	case *ast.CallExpr:
		if callee := sc.a.eng.resolveCallee(sc.pkg, rx.Fun); callee != nil && callee.locks.ordered {
			return true
		}
	case *ast.Ident:
		if sortedBefore(rx) {
			return true
		}
	}
	// Index-loop shape: vols[i].mu.Lock() with vols sorted before.
	for e := h.owner; e != nil; {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if id, ok := x.X.(*ast.Ident); ok && sortedBefore(id) {
				return true
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			e = nil
		}
	}
	return false
}

// expr scans an expression, routing calls through call() and reporting
// direct receives as blocking sites. Nested function literals run on
// their own schedule and are skipped.
func (sc *orderScan) expr(expr ast.Expr, held map[string]heldLock) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				sc.site(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			sc.call(x, held)
		}
		return true
	})
}

// call applies one call's lock effects: direct Lock/Unlock, edges and
// same-domain findings from the callee's acquire set, held-region
// open/close from the callee's lock balance, and cross-primitive
// blocking roots.
func (sc *orderScan) call(call *ast.CallExpr, held map[string]heldLock) {
	if d, delta := lockOpDomain(sc.pkg, call); delta != 0 {
		if delta < 0 {
			delete(held, d)
			return
		}
		owner := call.Fun.(*ast.SelectorExpr).X
		sc.acquire(d, call.Pos(), owner, "", held)
		return
	}
	if k := crossPrimRoot(calleeObj(sc.pkg, call.Fun)); k != "" {
		sc.site(call.Pos(), k, held)
	}
	callee := sc.a.eng.resolveCallee(sc.pkg, call.Fun)
	if callee == nil {
		return
	}
	for _, d := range sortedKeys(callee.Acquires) {
		via := callee.Name
		if chain := callee.Acquires[d]; chain != "" {
			via += ": " + chain
		}
		if h, ok := held[d]; ok {
			if !h.weak {
				sc.a.report(sc.pos(call.Pos()),
					"%s calls %s which acquires %s (line %d) while %s is already held: self-deadlock on the same instance, unordered multi-lock on two",
					sc.node.Name, callee.Name, d, sc.pos(h.pos).Line, d)
			}
			continue
		}
		for _, from := range sortedHeldKeys(held) {
			if from == d {
				continue
			}
			sc.a.addEdge(from, d, sc.pos(call.Pos()), via, held[from].weak)
		}
	}
	// A positive balance means the callee handed us an open critical
	// section (lockVolume); a negative one closed ours (unlock helper).
	for _, d := range sortedKeys(callee.Acquires) {
		switch bal := callee.locks.net[d]; {
		case bal > 0:
			if _, ok := held[d]; !ok {
				held[d] = heldLock{pos: call.Pos()}
			}
		}
	}
	for d, bal := range callee.locks.net {
		if bal < 0 {
			delete(held, d)
		}
	}
}

// acquire handles a direct Lock/RLock of domain d at pos.
func (sc *orderScan) acquire(d string, pos token.Pos, owner ast.Expr, via string, held map[string]heldLock) {
	if h, ok := held[d]; ok {
		if !h.weak {
			sc.a.report(sc.pos(pos),
				"%s acquires %s while already holding it (acquired line %d): self-deadlock on the same instance, unordered multi-lock on two",
				sc.node.Name, d, sc.pos(h.pos).Line)
		}
	} else {
		for _, from := range sortedHeldKeys(held) {
			if from == d {
				continue
			}
			sc.a.addEdge(from, d, sc.pos(pos), via, held[from].weak)
		}
	}
	if h, ok := held[d]; !ok || h.weak {
		held[d] = heldLock{pos: pos, owner: owner}
	}
}

// site records a blocking primitive reached with strong holds.
func (sc *orderScan) site(pos token.Pos, kind string, held map[string]heldLock) {
	var strong []string
	for _, d := range sortedHeldKeys(held) {
		if !held[d].weak {
			strong = append(strong, d)
		}
	}
	if len(strong) == 0 {
		return
	}
	sc.a.sites = append(sc.a.sites, blockSite{
		pos: sc.pos(pos), kind: kind, domains: strong, node: sc.node,
	})
}

// crossPrimRoot classifies fn as a wait-for-a-signal primitive for the
// cross-primitive deadlock shape. Blocking I/O (rpc2, WAL, sftp) is
// lockhold's business, not a signal wait.
func crossPrimRoot(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "sync" && name == "Wait":
		return "sync." + recvTypeName(fn) + ".Wait"
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case pathIs(path, "internal/simtime") && name == "Sleep":
		return "clock.Sleep"
	}
	return ""
}
