package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// Obsname enforces the observability naming contract: the name argument
// of every Registry.Counter / Gauge / GaugeFunc / Histogram / Event /
// StartSpan / SpanAt call must be a static snake_case string whose
// first segment is the registering package's name. Static names keep
// dumps grep-able and the Prometheus text export well-formed; the
// package prefix keeps a shared registry collision-free when several
// components register into it. Label VALUES and span node labels may be
// dynamic — only names, event kinds, and span names are pinned.
type Obsname struct{}

// NewObsname returns the analyzer.
func NewObsname() *Obsname { return &Obsname{} }

// Name implements Analyzer.
func (*Obsname) Name() string { return "obsname" }

// Doc implements Analyzer.
func (*Obsname) Doc() string {
	return "obs metric names and event kinds must be static snake_case literals with the package prefix"
}

// obsnameMethods maps each Registry method carrying a metric name,
// event kind, or span name to that argument's index (span methods take
// the dynamic node label first).
var obsnameMethods = map[string]int{
	"Counter":   0,
	"Gauge":     0,
	"GaugeFunc": 0,
	"Histogram": 0,
	"Event":     0,
	"StartSpan": 1,
	"SpanAt":    1,
}

// obsnameRe is the shape of a legal name: lower-case alphanumeric
// segments joined by single underscores.
var obsnameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// Analyze implements Analyzer.
func (o *Obsname) Analyze(pkg *Package) []Finding {
	var out []Finding
	pkgName := pkg.Types.Name()
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil {
				return true
			}
			argIdx, watched := obsnameMethods[fn.Name()]
			if !watched || len(call.Args) <= argIdx {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Name() != "Registry" {
				return true
			}

			arg := call.Args[argIdx]
			pos := pkg.Fset.Position(arg.Pos())
			tv, ok := pkg.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				out = append(out, Finding{
					Pos:      pos,
					Analyzer: o.Name(),
					Message:  fmt.Sprintf("obs %s name must be a static string literal, not a computed value", fn.Name()),
				})
				return true
			}
			name := constant.StringVal(tv.Value)
			if !obsnameRe.MatchString(name) {
				out = append(out, Finding{
					Pos:      pos,
					Analyzer: o.Name(),
					Message:  fmt.Sprintf("obs name %q is not snake_case (lower-case alphanumeric segments joined by _)", name),
				})
				return true
			}
			if seg, _, _ := strings.Cut(name, "_"); seg != pkgName {
				out = append(out, Finding{
					Pos:      pos,
					Analyzer: o.Name(),
					Message:  fmt.Sprintf("obs name %q must carry its package prefix (want %q)", name, pkgName+"_..."),
				})
			}
			return true
		})
	}
	return out
}
