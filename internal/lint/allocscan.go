package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// HotpathDirective marks a function as an allocation-free root:
//
//	//codalint:hotpath <optional note>
//
// placed in the function's doc comment or on the line directly above
// the declaration. From each marked root, allocscan reports every
// allocation the function performs directly and every call whose callee
// transitively allocates (per the engine's Allocates summary) — unless
// the memory is pooled, the path is error construction, or the finding
// carries a //codalint:ignore allocscan directive with a reason.
const HotpathDirective = "//codalint:hotpath"

// Allocscan is the hot-path allocation analyzer. The engine computes a
// per-function Allocates summary (alloc.go); this analyzer is the query
// layer: it resolves //codalint:hotpath directives to call-graph roots
// and reports, inside each root only,
//
//   - every direct allocation site, at its own position;
//   - every call to a resolved callee whose Allocates bit is set, at
//     the call site, with the callee's via-chain — unless the callee is
//     itself hotpath-marked (it is audited on its own, and double
//     reporting would force duplicate suppressions);
//   - every dangling directive that attaches to no function
//     declaration.
//
// Findings never appear outside marked functions: cold code may
// allocate freely, and blaming a shared helper at its definition would
// punish every caller for the hot one's discipline. Calls through
// interfaces are not devirtualized; an unresolved dynamic call is
// flagged only when the interface method itself is a known allocating
// root (fmt/gob/json), otherwise it passes — the same documented
// limitation the blocking summaries have.
type Allocscan struct {
	eng    *Engine
	inited bool
	roots  map[*FuncNode]bool
	// dangling directives, keyed by package so Analyze stays per-package.
	dangling map[*Package][]Finding
}

// NewAllocscan returns the analyzer; the engine is bound by Run.
func NewAllocscan() *Allocscan { return &Allocscan{} }

// Name implements Analyzer.
func (*Allocscan) Name() string { return "allocscan" }

// Doc implements Analyzer.
func (*Allocscan) Doc() string {
	return "//codalint:hotpath functions must not allocate, directly or through any callee (pooled buffers exempt)"
}

// Bind implements interprocAnalyzer.
func (a *Allocscan) Bind(e *Engine) { a.eng = e }

// Analyze implements Analyzer.
func (a *Allocscan) Analyze(pkg *Package) []Finding {
	if a.eng == nil {
		a.Bind(NewEngine([]*Package{pkg}))
	}
	a.init()
	var out []Finding
	out = append(out, a.dangling[pkg]...)
	for _, n := range a.eng.PkgNodes(pkg) {
		if a.roots[n] {
			out = append(out, a.checkRoot(pkg, n)...)
		}
	}
	return out
}

// init resolves hotpath directives to graph nodes, once per engine.
func (a *Allocscan) init() {
	if a.inited {
		return
	}
	a.inited = true
	a.roots = make(map[*FuncNode]bool)
	a.dangling = make(map[*Package][]Finding)

	seen := make(map[*Package]bool)
	for _, n := range a.eng.nodes {
		if seen[n.Pkg] {
			continue
		}
		seen[n.Pkg] = true
		a.collectRoots(n.Pkg)
	}
}

// collectRoots scans pkg's comments for hotpath directives and attaches
// each to its function declaration. A directive belongs to a FuncDecl
// when it sits inside the declaration's doc comment or on the line
// directly above the `func` keyword; anything else is dangling.
func (a *Allocscan) collectRoots(pkg *Package) {
	byDecl := make(map[*ast.FuncDecl]*FuncNode)
	for _, n := range a.eng.PkgNodes(pkg) {
		if n.Decl != nil {
			byDecl[n.Decl] = n
		}
	}
	for _, file := range pkg.Files {
		decls := make([]*ast.FuncDecl, 0, len(file.Decls))
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				decls = append(decls, fd)
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !isHotpathComment(c.Text) {
					continue
				}
				fd := attachDirective(pkg, c, decls)
				if fd == nil {
					a.dangling[pkg] = append(a.dangling[pkg], Finding{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: a.Name(),
						Message:  "codalint:hotpath directive attaches to no function declaration (put it in the doc comment or on the line above `func`)",
					})
					continue
				}
				if n := byDecl[fd]; n != nil {
					a.roots[n] = true
				}
			}
		}
	}
}

// isHotpathComment reports whether a comment is the hotpath directive
// (exact, or followed by a space and a note — not a prefix of some
// longer word).
func isHotpathComment(text string) bool {
	rest, ok := strings.CutPrefix(text, HotpathDirective)
	return ok && (rest == "" || strings.HasPrefix(rest, " "))
}

// attachDirective finds the FuncDecl a directive comment belongs to.
func attachDirective(pkg *Package, c *ast.Comment, decls []*ast.FuncDecl) *ast.FuncDecl {
	cLine := pkg.Fset.Position(c.Pos()).Line
	for _, fd := range decls {
		if fd.Doc != nil && c.Pos() >= fd.Doc.Pos() && c.End() <= fd.Doc.End() {
			return fd
		}
		if pkg.Fset.Position(fd.Pos()).Line == cLine+1 {
			return fd
		}
	}
	return nil
}

// checkRoot reports the allocation findings inside one marked function.
func (a *Allocscan) checkRoot(pkg *Package, n *FuncNode) []Finding {
	var out []Finding
	for _, site := range n.allocSites {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(site.pos),
			Analyzer: a.Name(),
			Message: fmt.Sprintf("hotpath %s allocates: %s; reuse a buffer, take one from internal/bufpool, or suppress with a reason",
				n.Name, site.what),
		})
	}
	n.inspectOwn(func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if poolCall(pkg, call) {
			// Pool Get/Put are sinks: their backing-store growth is
			// amortized across the pool's lifetime, not charged per call.
			return true
		}
		c := a.eng.resolveCallee(pkg, call.Fun)
		if c == nil || !c.Allocates || a.roots[c] {
			return true
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(call.Pos()),
			Analyzer: a.Name(),
			Message: fmt.Sprintf("hotpath %s calls %s, which allocates (%s); pool the buffer, mark the callee //codalint:hotpath, or suppress with a reason",
				n.Name, c.Name, c.AllocVia),
		})
		return true
	})
	return out
}
