// Package lint is the repository's custom static-analysis suite
// (codalint). It enforces the invariants that keep the reproduction
// deterministic and race-free:
//
//   - simclock: all simulated code blocks and reads time only through
//     simtime.Clock; raw package time / math/rand default-source calls
//     are confined to a small allowlist (the clock veneer itself, the
//     real-UDP adapter, and cmd/ entry points).
//   - lockguard: structs owning a `mu sync.Mutex`/`sync.RWMutex` must
//     not export methods that touch mutated sibling fields without
//     acquiring the lock.
//   - errwrap: errors propagated via fmt.Errorf must use %w so callers
//     can errors.Is/As against the sentinels in internal/venus/errors.go;
//     bare discarded error returns are flagged.
//   - testhygiene: test helpers call t.Helper(); tests never block on
//     real time.Sleep (they should run under a simtime.Sim clock).
//
// The suite is built from the standard library only (go/parser,
// go/types, go/importer) so `go build ./...` stays hermetic: module
// packages are parsed, topologically sorted by their intra-module
// imports, and type-checked against a chained importer that resolves
// standard-library dependencies from source.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package plus its (syntax-only)
// test files.
type Package struct {
	// Path is the full import path ("repro/internal/venus").
	Path string
	// RelDir is the directory relative to the module root
	// ("internal/venus"); analyzers use it for allowlist decisions.
	RelDir string
	// Dir is the absolute directory.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File // non-test files, type-checked
	// TestFiles are the package's *_test.go files. They are parsed but
	// NOT type-checked (external _test packages would need the package
	// under test compiled); analyzers over tests are syntactic.
	TestFiles []*ast.File

	Types     *types.Package
	TypesInfo *types.Info
}

// Module is a loaded, type-checked module tree.
type Module struct {
	Root     string // absolute module root directory
	ModPath  string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // topological order (dependencies first)
}

// skipDir reports directories the loader never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// FindModuleRoot walks upward from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// parsedPkg is a package after parsing, before type checking.
type parsedPkg struct {
	path      string
	relDir    string
	dir       string
	files     []*ast.File
	testFiles []*ast.File
	imports   []string // intra-module imports only
}

// LoadModule parses and type-checks every package under the module
// rooted at (or above) dir. Returned packages are in dependency order.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var parsed []*parsedPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		pp, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if pp == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pp.relDir = filepath.ToSlash(rel)
		if pp.relDir == "." {
			pp.path = modPath
			pp.relDir = ""
		} else {
			pp.path = modPath + "/" + pp.relDir
		}
		for _, f := range pp.files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					pp.imports = append(pp.imports, p)
				}
			}
		}
		parsed = append(parsed, pp)
		return nil
	})
	if err != nil {
		return nil, err
	}

	ordered, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}

	mod := &Module{Root: root, ModPath: modPath, Fset: fset}
	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		fset:    fset,
		modPath: modPath,
		checked: checked,
		std:     importer.ForCompiler(fset, "source", nil),
	}
	for _, pp := range ordered {
		pkg, err := typeCheck(fset, pp, imp)
		if err != nil {
			return nil, err
		}
		checked[pp.path] = pkg.Types
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// LoadDir parses and type-checks the single package in dir, resolving
// only standard-library imports. It is the fixture loader used by the
// analyzer tests; relDir names the package for allowlist decisions.
func LoadDir(dir, relDir string) (*Package, error) {
	fset := token.NewFileSet()
	pp, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if pp == nil {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	pp.path = relDir
	pp.relDir = relDir
	imp := &chainImporter{
		fset:    fset,
		modPath: "\x00none",
		checked: map[string]*types.Package{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
	return typeCheck(fset, pp, imp)
}

// parseDir parses the Go files of dir into a parsedPkg, or nil if the
// directory holds no Go files.
func parseDir(fset *token.FileSet, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			pp.testFiles = append(pp.testFiles, f)
		} else {
			pp.files = append(pp.files, f)
		}
	}
	if len(pp.files) == 0 && len(pp.testFiles) == 0 {
		return nil, nil
	}
	return pp, nil
}

// topoSort orders packages so every package follows its intra-module
// dependencies.
func topoSort(pkgs []*parsedPkg) ([]*parsedPkg, error) {
	byPath := make(map[string]*parsedPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.path] = p
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*parsedPkg
	var visit func(p *parsedPkg) error
	visit = func(p *parsedPkg) error {
		switch state[p.path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", p.path)
		}
		state[p.path] = visiting
		for _, dep := range p.imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.path] = done
		order = append(order, p)
		return nil
	}
	// Deterministic order regardless of filesystem iteration.
	sorted := make([]*parsedPkg, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].path < sorted[j].path })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs go/types over pp's non-test files.
func typeCheck(fset *token.FileSet, pp *parsedPkg, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var tpkg *types.Package
	if len(pp.files) == 0 {
		// Test-only package: nothing to type-check; testhygiene runs
		// syntactically over the test files.
		tpkg = types.NewPackage(pp.path, "main")
	} else {
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		var err error
		tpkg, err = conf.Check(pp.path, fset, pp.files, info)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			return nil, fmt.Errorf("type-checking %s: %w", pp.path, firstErr)
		}
	}
	return &Package{
		Path:      pp.path,
		RelDir:    pp.relDir,
		Dir:       pp.dir,
		Fset:      fset,
		Files:     pp.files,
		TestFiles: pp.testFiles,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// chainImporter serves module-internal packages from the already
// type-checked set and everything else (the standard library) from the
// source importer.
type chainImporter struct {
	fset    *token.FileSet
	modPath string
	checked map[string]*types.Package
	std     types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == c.modPath || strings.HasPrefix(path, c.modPath+"/") {
		if pkg, ok := c.checked[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("module package %s not yet type-checked (import cycle?)", path)
	}
	return c.std.Import(path)
}
