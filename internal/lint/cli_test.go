package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the test into dir and restores the old wd on cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

const cleanMain = `package main

func main() {}
`

// dirtyOps mimics a stray wall-clock read slipping into Venus's
// operation layer — the exact regression the suite exists to catch.
const dirtyOps = `package venus

import "time"

func Stamp() time.Time { return time.Now() }
`

// dirtyLock mimics an unguarded write slipping into a mu-owning struct.
const dirtyLock = `package venus

import "sync"

type Registry struct {
	mu sync.Mutex
	n  int
}

func (r *Registry) Bump() { r.n++ }

func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n = 0
}
`

func TestMainExitClean(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":     "module faux\n\ngo 1.22\n",
		"cmd/x/x.go": cleanMain,
		"internal/ok/ok.go": `package ok

func Add(a, b int) int { return a + b }
`,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"./..."}, &out, &errb); code != ExitClean {
		t.Fatalf("clean module: exit %d, stderr: %s stdout: %s", code, errb.String(), out.String())
	}
}

func TestMainExitFindingsOnVenusTimeNow(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":                "module faux\n\ngo 1.22\n",
		"internal/venus/ops.go": dirtyOps,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"./..."}, &out, &errb); code != ExitFindings {
		t.Fatalf("time.Now in internal/venus/ops.go: exit %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(out.String(), "simclock") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("finding output missing simclock diagnostic: %s", out.String())
	}
}

func TestMainExitFindingsOnUnguardedWrite(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":                "module faux\n\ngo 1.22\n",
		"internal/venus/reg.go": dirtyLock,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"./..."}, &out, &errb); code != ExitFindings {
		t.Fatalf("unguarded write: exit %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(out.String(), "lockguard") || !strings.Contains(out.String(), "Bump") {
		t.Fatalf("finding output missing lockguard diagnostic: %s", out.String())
	}
}

func TestMainExitUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main(nil, &out, &errb); code != ExitUsage {
		t.Fatalf("no args: exit %d, want %d", code, ExitUsage)
	}
	if code := Main([]string{"-h"}, &out, &errb); code != ExitUsage {
		t.Fatalf("-h: exit %d, want %d", code, ExitUsage)
	}
	if code := Main([]string{filepath.Join(t.TempDir(), "nope")}, &out, &errb); code != ExitUsage {
		t.Fatalf("nonexistent dir: exit %d, want %d", code, ExitUsage)
	}
}

func TestMainSpecificDirectory(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":                "module faux\n\ngo 1.22\n",
		"internal/venus/ops.go": dirtyOps,
		"internal/ok/ok.go":     "package ok\n\nfunc F() {}\n",
	})
	var out, errb bytes.Buffer
	if code := Main([]string{filepath.Join(root, "internal", "ok")}, &out, &errb); code != ExitClean {
		t.Fatalf("lint of clean subpackage: exit %d, stderr %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{filepath.Join(root, "internal", "venus")}, &out, &errb); code != ExitFindings {
		t.Fatalf("lint of dirty subpackage: exit %d, want %d", code, ExitFindings)
	}
}
