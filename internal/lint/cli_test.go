package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the test into dir and restores the old wd on cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

const cleanMain = `package main

func main() {}
`

// dirtyOps mimics a stray wall-clock read slipping into Venus's
// operation layer — the exact regression the suite exists to catch.
const dirtyOps = `package venus

import "time"

func Stamp() time.Time { return time.Now() }
`

// dirtyLock mimics an unguarded write slipping into a mu-owning struct.
const dirtyLock = `package venus

import "sync"

type Registry struct {
	mu sync.Mutex
	n  int
}

func (r *Registry) Bump() { r.n++ }

func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n = 0
}
`

func TestMainExitClean(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":     "module faux\n\ngo 1.22\n",
		"cmd/x/x.go": cleanMain,
		"internal/ok/ok.go": `package ok

func Add(a, b int) int { return a + b }
`,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"./..."}, &out, &errb); code != ExitClean {
		t.Fatalf("clean module: exit %d, stderr: %s stdout: %s", code, errb.String(), out.String())
	}
}

func TestMainExitFindingsOnVenusTimeNow(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":                "module faux\n\ngo 1.22\n",
		"internal/venus/ops.go": dirtyOps,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"./..."}, &out, &errb); code != ExitFindings {
		t.Fatalf("time.Now in internal/venus/ops.go: exit %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(out.String(), "simclock") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("finding output missing simclock diagnostic: %s", out.String())
	}
}

func TestMainExitFindingsOnUnguardedWrite(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":                "module faux\n\ngo 1.22\n",
		"internal/venus/reg.go": dirtyLock,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"./..."}, &out, &errb); code != ExitFindings {
		t.Fatalf("unguarded write: exit %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(out.String(), "lockguard") || !strings.Contains(out.String(), "Bump") {
		t.Fatalf("finding output missing lockguard diagnostic: %s", out.String())
	}
}

func TestMainExitUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main(nil, &out, &errb); code != ExitUsage {
		t.Fatalf("no args: exit %d, want %d", code, ExitUsage)
	}
	if code := Main([]string{"-h"}, &out, &errb); code != ExitUsage {
		t.Fatalf("-h: exit %d, want %d", code, ExitUsage)
	}
	if code := Main([]string{filepath.Join(t.TempDir(), "nope")}, &out, &errb); code != ExitUsage {
		t.Fatalf("nonexistent dir: exit %d, want %d", code, ExitUsage)
	}
}

func TestMainSpecificDirectory(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":                "module faux\n\ngo 1.22\n",
		"internal/venus/ops.go": dirtyOps,
		"internal/ok/ok.go":     "package ok\n\nfunc F() {}\n",
	})
	var out, errb bytes.Buffer
	if code := Main([]string{filepath.Join(root, "internal", "ok")}, &out, &errb); code != ExitClean {
		t.Fatalf("lint of clean subpackage: exit %d, stderr %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{filepath.Join(root, "internal", "venus")}, &out, &errb); code != ExitFindings {
		t.Fatalf("lint of dirty subpackage: exit %d, want %d", code, ExitFindings)
	}
}

func TestMainJSONOutput(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":                "module faux\n\ngo 1.22\n",
		"internal/venus/ops.go": dirtyOps,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"-json", "./..."}, &out, &errb); code != ExitFindings {
		t.Fatalf("-json with findings: exit %d, want %d (stderr %s)", code, ExitFindings, errb.String())
	}
	var decoded []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(decoded) == 0 {
		t.Fatal("-json output is empty despite findings")
	}
	f := decoded[0]
	if !strings.Contains(f.File, "ops.go") || f.Line == 0 || f.Col == 0 ||
		f.Analyzer != "simclock" || !strings.Contains(f.Message, "time.Now") {
		t.Fatalf("-json finding fields wrong: %+v", f)
	}
}

func TestMainLockGraph(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod": "module faux\n\ngo 1.22\n",
		"internal/venus/nest.go": `package venus

import "sync"

type Outer struct {
	mu sync.Mutex
	in Inner
}

type Inner struct {
	mu sync.Mutex
	n  int
}

// Nest establishes one lock-order edge: Outer.mu held while
// acquiring Inner.mu.
func (o *Outer) Nest() {
	o.mu.Lock()
	o.in.mu.Lock()
	o.in.n++
	o.in.mu.Unlock()
	o.mu.Unlock()
}
`,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"-lockgraph", "./..."}, &out, &errb); code != ExitClean {
		t.Fatalf("-lockgraph: exit %d, stderr %s", code, errb.String())
	}
	s := out.String()
	if !strings.HasPrefix(s, "digraph lockorder {") {
		t.Fatalf("-lockgraph output is not DOT:\n%s", s)
	}
	if !strings.Contains(s, `"venus.Outer.mu" -> "venus.Inner.mu"`) {
		t.Fatalf("-lockgraph output missing the Outer->Inner edge:\n%s", s)
	}
}

func TestMainIgnoresAudit(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod": "module faux\n\ngo 1.22\n",
		"internal/ok/ok.go": `package ok

import "time"

func Stamp() time.Time {
	//codalint:ignore simclock boot banner timestamp is cosmetic
	return time.Now()
}
`,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"-ignores", "./..."}, &out, &errb); code != ExitClean {
		t.Fatalf("-ignores: exit %d, want %d (stderr %s)", code, ExitClean, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "ok.go:6:") || !strings.Contains(s, "[simclock]") ||
		!strings.Contains(s, "boot banner timestamp is cosmetic") ||
		!strings.Contains(s, "1 suppression(s)") {
		t.Fatalf("-ignores audit output wrong:\n%s", s)
	}
}

func TestMainIgnoresAuditStale(t *testing.T) {
	// One directive still suppresses a real finding; the other sits on a
	// line that stopped triggering anything. The audit must keep the
	// first, flag the second as STALE, and fail with the dedicated exit
	// code.
	root := writeFixture(t, map[string]string{
		"go.mod": "module faux\n\ngo 1.22\n",
		"internal/ok/ok.go": `package ok

import "time"

func Stamp() time.Time {
	//codalint:ignore simclock boot banner timestamp is cosmetic
	return time.Now()
}

func Add(a, b int) int {
	//codalint:ignore simclock leftover from a removed wall-clock read
	return a + b
}
`,
	})
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := Main([]string{"-ignores", "./..."}, &out, &errb); code != ExitStale {
		t.Fatalf("stale suppression: exit %d, want %d\nstdout: %s", code, ExitStale, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "boot banner timestamp is cosmetic") ||
		!strings.Contains(s, "STALE") ||
		!strings.Contains(s, "2 suppression(s), 1 stale, 0 malformed") {
		t.Fatalf("-ignores stale audit output wrong:\n%s", s)
	}
	if strings.Contains(s, "boot banner timestamp is cosmetic  STALE") {
		t.Fatalf("used suppression wrongly marked stale:\n%s", s)
	}
	if !strings.Contains(errb.String(), "suppression audit failed") {
		t.Fatalf("stale audit must report failure on stderr, got: %s", errb.String())
	}
}

func TestMainDeadline(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":     "module faux\n\ngo 1.22\n",
		"cmd/x/x.go": cleanMain,
	})
	chdir(t, root)

	// A generous budget passes and reports the measured wall-clock.
	var out, errb bytes.Buffer
	if code := Main([]string{"-deadline", "10m", "./..."}, &out, &errb); code != ExitClean {
		t.Fatalf("generous deadline: exit %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "wall-clock") {
		t.Fatalf("deadline run must report wall-clock, got: %s", errb.String())
	}

	// An impossible budget fails with the dedicated exit code.
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-deadline=1ns", "./..."}, &out, &errb); code != ExitDeadline {
		t.Fatalf("1ns deadline: exit %d, want %d", code, ExitDeadline)
	}
	if !strings.Contains(errb.String(), "exceeded") {
		t.Fatalf("deadline failure must say exceeded, got: %s", errb.String())
	}
}

func TestMainBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-nope", "./..."}, &out, &errb); code != ExitUsage {
		t.Fatalf("unknown flag: exit %d, want %d", code, ExitUsage)
	}
	if code := Main([]string{"./...", "-deadline"}, &out, &errb); code != ExitUsage {
		t.Fatalf("-deadline without duration: exit %d, want %d", code, ExitUsage)
	}
	if code := Main([]string{"-deadline=banana", "./..."}, &out, &errb); code != ExitUsage {
		t.Fatalf("-deadline with junk duration: exit %d, want %d", code, ExitUsage)
	}
}
