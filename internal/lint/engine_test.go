package lint

import (
	"strings"
	"testing"
)

// engineModule materializes a three-package module whose effects must
// propagate leaf → mid → top across two package boundaries: a channel
// park, an fmt sink, and an endless loop, each wrapped once per hop.
func engineModule(t *testing.T) *Module {
	t.Helper()
	root := writeFixture(t, map[string]string{
		"go.mod": "module faux\n\ngo 1.22\n",
		"internal/leaf/leaf.go": `package leaf

import (
	"fmt"
	"io"
)

func Park() {
	ch := make(chan int)
	<-ch
}

func Emit(w io.Writer, s string) {
	fmt.Fprintln(w, s)
}

func Forever() {
	for {
	}
}
`,
		"internal/mid/mid.go": `package mid

import (
	"io"

	"faux/internal/leaf"
)

func Relay()          { leaf.Park() }
func Out(w io.Writer) { leaf.Emit(w, "x") }
func SpinWrap()       { leaf.Forever() }
`,
		"internal/top/top.go": `package top

import (
	"io"

	"faux/internal/mid"
)

func Caller()            { mid.Relay() }
func Writer(w io.Writer) { mid.Out(w) }
func Launch()            { go mid.SpinWrap() }
`,
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// modPkg finds a loaded package by its module-relative directory.
func modPkg(t *testing.T, mod *Module, relDir string) *Package {
	t.Helper()
	for _, p := range mod.Packages {
		if p.RelDir == relDir {
			return p
		}
	}
	t.Fatalf("package %s not loaded", relDir)
	return nil
}

// engineNode finds a graph node by display name within a package.
func engineNode(t *testing.T, e *Engine, pkg *Package, name string) *FuncNode {
	t.Helper()
	for _, n := range e.PkgNodes(pkg) {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %s not found in %s", name, pkg.RelDir)
	return nil
}

func TestEngineCrossPackageFixpoint(t *testing.T) {
	mod := engineModule(t)
	eng := NewEngine(mod.Packages)
	top := modPkg(t, mod, "internal/top")

	caller := engineNode(t, eng, top, "Caller")
	if !caller.Blocks || !strings.Contains(caller.BlockVia, "Relay") ||
		!strings.Contains(caller.BlockVia, "channel receive") {
		t.Errorf("Caller: Blocks=%v via %q; want blocking through Relay down to a channel receive",
			caller.Blocks, caller.BlockVia)
	}
	if caller.Serializes {
		t.Errorf("Caller inherits serialization it never calls: via %q", caller.SerialVia)
	}

	writer := engineNode(t, eng, top, "Writer")
	if !writer.Serializes || !strings.Contains(writer.SerialVia, "Out") {
		t.Errorf("Writer: Serializes=%v via %q; want the fmt sink through Out",
			writer.Serializes, writer.SerialVia)
	}
	if writer.Blocks {
		t.Errorf("Writer inherits blocking it never calls: via %q", writer.BlockVia)
	}

	launch := engineNode(t, eng, top, "Launch")
	if len(launch.Spawns) != 1 {
		t.Fatalf("Launch: %d spawn sites, want 1", len(launch.Spawns))
	}
	sp := launch.Spawns[0]
	if sp.Target == nil || !sp.Target.Endless || !strings.Contains(sp.Target.EndlessVia, "Forever") {
		t.Errorf("Launch spawn target must be endless through Forever; got %+v", sp.Target)
	}

	// Leaf facts stay local truths: the sink does not block.
	leaf := modPkg(t, mod, "internal/leaf")
	if n := engineNode(t, eng, leaf, "Emit"); n.Blocks {
		t.Errorf("Emit must not block (via %q)", n.BlockVia)
	}
}

// TestEngineRootsMatchBySuffix pins that the effect-root tables match
// repository packages by path suffix, so a fixture module's
// faux/internal/simtime is recognized exactly like repro/internal/simtime.
func TestEngineRootsMatchBySuffix(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod": "module faux\n\ngo 1.22\n",
		"internal/simtime/q.go": `package simtime

type Queue struct{}

func (Queue) Get() int { return 0 }
`,
		"internal/use/use.go": `package use

import "faux/internal/simtime"

func Drain(q simtime.Queue) int { return q.Get() }
`,
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(mod.Packages)
	drain := engineNode(t, eng, modPkg(t, mod, "internal/use"), "Drain")
	if !drain.Blocks || !strings.Contains(drain.BlockVia, "simtime.Queue.Get") {
		t.Errorf("Drain: Blocks=%v via %q; want the simtime.Queue.Get root matched by suffix",
			drain.Blocks, drain.BlockVia)
	}
}
