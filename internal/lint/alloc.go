package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the allocation half of the interprocedural engine: a
// per-function summary of direct heap-allocation sites, plus an
// Allocates bit propagated callee→caller to fixpoint exactly like
// Blocks and Serializes. The allocscan analyzer queries these summaries
// from //codalint:hotpath roots.
//
// What counts as a direct allocation site (conservatively — escape
// analysis is the compiler's job, keeping memory off the wire path is
// this fence's):
//
//   - composite literals (slice, map, struct, &T{...})
//   - the make and new builtins
//   - append growth — except the append-into idiom: appending to a
//     function parameter (the caller owns the buffer, strconv.AppendInt
//     style) or to a buffer obtained from a pool in the same function
//   - string concatenation and string<->[]byte/[]rune conversions
//   - a function literal that captures variables (the closure is
//     heap-allocated with its environment)
//   - boxing a concrete value into an interface-typed parameter
//   - calls into known allocating stdlib roots (fmt, gob, json,
//     strconv/strings/bytes constructors)
//
// Two escape hatches keep the summary honest instead of useless:
//
//   - pooled memory is a sink, not a source: sync.Pool.Get/Put and the
//     repository's internal/bufpool.Get/Put are recognized, a pool's
//     New constructor literal is exempt (its allocation is amortized
//     across the pool's lifetime), and appends into a pooled buffer do
//     not count;
//   - error construction is exempt (errors.New, fmt.Errorf, and
//     composite literals of error-implementing types, including the
//     whole argument subtree): failures are off the steady-state path
//     by definition, and fencing them would bury the real findings.

// allocSite is one direct allocation in a function's own body.
type allocSite struct {
	pos  token.Pos
	what string
}

// markPoolConstructors flags every function literal that is the New
// field of a sync.Pool composite literal; its allocations are the
// pool's amortized backing store, not per-call garbage.
func (e *Engine) markPoolConstructors(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(node ast.Node) bool {
			cl, ok := node.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pkg.TypesInfo.Types[cl].Type
			if t == nil || !isNamedType(t, "sync", "Pool") {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "New" {
					continue
				}
				if lit, ok := kv.Value.(*ast.FuncLit); ok {
					if n := e.byLit[lit]; n != nil {
						n.poolNew = true
					}
				}
			}
			return true
		})
	}
}

// isNamedType reports whether t (or its pointee) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// poolCall classifies a call as a pooled-memory operation: Get/Put on
// sync.Pool or on the repository's internal/bufpool.
func poolCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeObj(pkg, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if name != "Get" && name != "Put" {
		return false
	}
	if path == "sync" && recvTypeName(fn) == "Pool" {
		return true
	}
	return pathIs(path, "internal/bufpool")
}

// errConstruction reports whether the call builds an error value —
// errors.New or fmt.Errorf — whose whole subtree is exempt.
func errConstruction(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeObj(pkg, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	return (path == "errors" && name == "New") || (path == "fmt" && name == "Errorf")
}

// allocRootCall classifies fn as a known allocating stdlib primitive
// and returns the reason, or "". These are roots because their bodies
// are outside the module and never appear in the call graph.
func allocRootCall(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "fmt":
		// Errorf is handled by the error-construction exemption first.
		if strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Print") || name == "Appendf" {
			return "fmt." + name
		}
	case "encoding/gob":
		switch name {
		case "NewEncoder", "NewDecoder", "Encode", "EncodeValue", "Decode", "DecodeValue", "Register":
			return "gob." + name
		}
	case "encoding/json":
		switch name {
		case "Marshal", "MarshalIndent", "Unmarshal", "NewEncoder", "NewDecoder", "Encode", "Decode":
			return "json." + name
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "Quote":
			return "strconv." + name
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Split", "Fields", "Replace", "ReplaceAll", "ToLower", "ToUpper":
			return "strings." + name
		}
	case "bytes":
		switch name {
		case "NewBuffer", "NewBufferString", "NewReader", "Join", "Repeat", "Clone":
			return "bytes." + name
		}
	case "io":
		if name == "ReadAll" {
			return "io.ReadAll"
		}
	}
	return ""
}

// typeImplementsError reports whether t (or *t) satisfies the error
// interface.
func typeImplementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// scanAllocs records n's direct allocation sites. Run after scanDirect
// (it reuses nothing from it, but keeping the passes separate keeps
// both readable).
func (e *Engine) scanAllocs(n *FuncNode) {
	pkg := n.Pkg

	// Parameters and receiver: appending into one is the caller-owns-
	// the-buffer idiom, not growth this function is charged for.
	owned := make(map[types.Object]bool)
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := pkg.TypesInfo.Defs[name]; obj != nil {
				owned[obj] = true
			}
		}
	}
	var ftype *ast.FuncType
	if n.Decl != nil {
		ftype = n.Decl.Type
		if n.Decl.Recv != nil {
			for _, f := range n.Decl.Recv.List {
				addField(f)
			}
		}
	} else {
		ftype = n.Lit.Type
	}
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			addField(f)
		}
	}

	// Locals bound to pooled buffers (x := bufpool.Get(n), x :=
	// pool.Get().(*T)): appends through them are recycled memory.
	n.inspectOwn(func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
				rhs = ta.X
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !poolCall(pkg, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pkg.TypesInfo.Defs[id]; obj != nil {
				owned[obj] = true
			} else if obj := pkg.TypesInfo.Uses[id]; obj != nil {
				owned[obj] = true
			}
		}
		return true
	})

	add := func(pos token.Pos, what string) {
		n.allocSites = append(n.allocSites, allocSite{pos: pos, what: what})
	}

	var visit func(node ast.Node) bool
	visit = func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if x == n.Lit {
				return true
			}
			if caps := captureCount(pkg, x); caps > 0 {
				add(x.Pos(), fmt.Sprintf("closure capturing %d variable(s)", caps))
			}
			return false // the literal's body is its own node
		case *ast.CompositeLit:
			t := pkg.TypesInfo.Types[x].Type
			if typeImplementsError(t) {
				return false // error construction is off the steady-state path
			}
			add(x.Pos(), "composite literal "+typeText(t, pkg.Fset, x))
			return true
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(pkg, x) && pkg.TypesInfo.Types[x].Value == nil {
				add(x.Pos(), "string concatenation")
			}
			return true
		case *ast.CallExpr:
			return visitAllocCall(pkg, x, owned, add)
		}
		return true
	}
	ast.Inspect(n.body(), visit)

	if n.poolNew {
		// A pool's New constructor is the amortized backing store.
		n.allocSites = nil
	}
	if len(n.allocSites) > 0 {
		n.Allocates = true
		n.AllocVia = n.allocSites[0].what
	}
}

// visitAllocCall classifies one call expression's allocation behaviour
// and reports whether the walk should descend into it.
func visitAllocCall(pkg *Package, x *ast.CallExpr, owned map[types.Object]bool, add func(token.Pos, string)) bool {
	// Conversions: string <-> []byte/[]rune copies.
	if tv, ok := pkg.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
		if reason := conversionAlloc(pkg, tv.Type, x.Args[0]); reason != "" {
			add(x.Pos(), reason)
		}
		return true
	}
	if errConstruction(pkg, x) {
		return false // error path, arguments included
	}
	if poolCall(pkg, x) {
		return true // recycled memory is a sink, not a source
	}
	if id, ok := x.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pkg.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				add(x.Pos(), "make("+exprText(pkg.Fset, x.Args[0])+")")
			case "new":
				add(x.Pos(), "new("+exprText(pkg.Fset, x.Args[0])+")")
			case "append":
				if !appendBaseExempt(pkg, x.Args[0], owned) {
					add(x.Pos(), "append growth of "+exprText(pkg.Fset, x.Args[0]))
				}
			}
			return true
		}
	}
	if r := allocRootCall(calleeObj(pkg, x.Fun)); r != "" {
		add(x.Pos(), r)
		return true
	}
	boxingSites(pkg, x, add)
	return true
}

// appendBaseExempt reports whether the first argument of an append is a
// caller-owned or pooled buffer: a parameter, a pool-bound local, a
// dereference of either, or a nested exempt append.
func appendBaseExempt(pkg *Package, expr ast.Expr, owned map[types.Object]bool) bool {
	switch x := expr.(type) {
	case *ast.Ident:
		return owned[pkg.TypesInfo.Uses[x]] || owned[pkg.TypesInfo.Defs[x]]
	case *ast.StarExpr:
		return appendBaseExempt(pkg, x.X, owned)
	case *ast.ParenExpr:
		return appendBaseExempt(pkg, x.X, owned)
	case *ast.IndexExpr:
		return appendBaseExempt(pkg, x.X, owned)
	case *ast.SliceExpr:
		return appendBaseExempt(pkg, x.X, owned)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			if _, isBuiltin := pkg.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return appendBaseExempt(pkg, x.Args[0], owned)
			}
		}
	}
	return false
}

// conversionAlloc classifies a type conversion as allocating and
// returns the reason, or "".
func conversionAlloc(pkg *Package, to types.Type, arg ast.Expr) string {
	from := pkg.TypesInfo.Types[arg].Type
	if from == nil || pkg.TypesInfo.Types[arg].Value != nil {
		return "" // constant conversions are folded
	}
	if isString(to) && isByteOrRuneSlice(from) {
		return "string(" + kindText(from) + ") conversion copies"
	}
	if isByteOrRuneSlice(to) && isString(from) {
		return kindText(to) + "(string) conversion copies"
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func kindText(t types.Type) string {
	if s, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := s.Elem().Underlying().(*types.Basic); ok && (b.Kind() == types.Rune || b.Kind() == types.Int32) {
			return "[]rune"
		}
		return "[]byte"
	}
	return t.String()
}

// isStringExpr reports whether the expression's static type is a string.
func isStringExpr(pkg *Package, expr ast.Expr) bool {
	t := pkg.TypesInfo.Types[expr].Type
	return t != nil && isString(t)
}

// typeText renders a composite literal's type for diagnostics.
func typeText(t types.Type, fset *token.FileSet, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return exprText(fset, lit.Type)
	}
	if t != nil {
		return t.String()
	}
	return "?"
}

// boxingSites reports every concrete argument passed into an
// interface-typed parameter: the value is boxed (allocated) at the call
// boundary.
func boxingSites(pkg *Package, call *ast.CallExpr, add func(token.Pos, string)) {
	tv, ok := pkg.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, not boxed here
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pkg.TypesInfo.Types[arg].Type
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface-to-interface assignment does not box
		}
		if pointerShaped(at) {
			continue // pointer-shaped values live in the iface word directly
		}
		add(arg.Pos(), fmt.Sprintf("boxing %s into interface parameter", at.String()))
	}
}

// pointerShaped reports whether a value of type t is stored directly in
// an interface's data word, so boxing it does not allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// captureCount counts the variables a function literal captures from
// its enclosing function. A literal that captures nothing compiles to a
// static function value and never hits the heap.
func captureCount(pkg *Package, lit *ast.FuncLit) int {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || seen[obj] {
			return true
		}
		// Declared outside the literal but not at package scope.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
				seen[obj] = true
			}
		}
		return true
	})
	return len(seen)
}
