package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockhold reports mutexes held across transitively-blocking calls: a
// critical section that spans a simtime wait, an rpc2/sftp round-trip, a
// WAL fsync, or a bare channel operation serializes every other user of
// that lock behind the slowest I/O in the system — the exact shape the
// server's lock-wait histogram can only observe after the fact, caught
// here at lint time.
//
// The analyzer tracks critical sections syntactically: a region opens at
// `x.Lock()` / `x.RLock()` on a field following the repository's mutex
// naming convention (`mu`, or a `Mu` suffix) and closes at the matching
// Unlock on the same rendered expression. `defer x.Unlock()` holds the
// lock to the end of the function. Within a held region, a finding is
// reported for every channel operation and for every call that the
// interprocedural engine marks as blocking — whether the callee blocks
// directly or five static calls (and any number of package boundaries)
// away.
//
// Branch analysis is deliberately simple: control-flow bodies are
// scanned with a copy of the held set, and an early `Unlock(); return`
// inside a branch does not release the lock for the code that follows
// the branch (the fall-through really does still hold it). Locks
// acquired through helper methods (q.lock()) are not tracked.
type Lockhold struct {
	eng *Engine
}

// NewLockhold returns the analyzer; the engine is bound by Run.
func NewLockhold() *Lockhold { return &Lockhold{} }

// Name implements Analyzer.
func (*Lockhold) Name() string { return "lockhold" }

// Doc implements Analyzer.
func (*Lockhold) Doc() string {
	return "mutexes must not be held across blocking calls (simtime waits, rpc2/sftp, WAL fsync, channel ops)"
}

// Bind implements interprocAnalyzer.
func (l *Lockhold) Bind(e *Engine) { l.eng = e }

// Analyze implements Analyzer.
func (l *Lockhold) Analyze(pkg *Package) []Finding {
	if l.eng == nil {
		l.Bind(NewEngine([]*Package{pkg}))
	}
	var out []Finding
	for _, n := range l.eng.PkgNodes(pkg) {
		sc := &lockScan{a: l, pkg: pkg, node: n}
		sc.block(n.body().List, map[string]token.Pos{})
		out = append(out, sc.out...)
	}
	return out
}

// lockScan is one function's critical-section walk.
type lockScan struct {
	a    *Lockhold
	pkg  *Package
	node *FuncNode
	out  []Finding
}

// lockOp classifies a call as Lock/RLock/Unlock/RUnlock on a mutex-named
// expression and returns the rendered lock expression.
func (sc *lockScan) lockOp(call *ast.CallExpr) (lock string, acquire, release bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	if !mutexNamed(sel.X) {
		return "", false, false
	}
	// When types resolve, insist the receiver really is a sync mutex so
	// a field that merely looks the part cannot open a phantom region.
	if t := sc.pkg.TypesInfo.Types[sel.X].Type; t != nil && !isMutexType(t) {
		return "", false, false
	}
	return exprText(sc.pkg.Fset, sel.X), acquire, release
}

// mutexNamed reports whether the expression's final component follows
// the mutex naming convention.
func mutexNamed(expr ast.Expr) bool {
	var name string
	switch x := expr.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	return name == "mu" || strings.HasSuffix(name, "Mu")
}

// block walks a statement list with the current held set; held maps the
// rendered lock expression to its acquisition position.
func (sc *lockScan) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		sc.stmt(stmt, held)
	}
}

// copyHeld clones the held set for a branch body.
func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (sc *lockScan) stmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch x := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if lock, acq, rel := sc.lockOp(call); lock != "" {
				if acq {
					held[lock] = call.Pos()
				} else if rel {
					delete(held, lock)
				}
				return
			}
		}
		sc.expr(x.X, held)
	case *ast.DeferStmt:
		if lock, _, rel := sc.lockOp(x.Call); lock != "" && rel {
			// Deferred unlock: held until return; the region simply
			// never closes in this walk.
			return
		}
		sc.expr(x.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine blocks on its own stack; the launch
		// itself does not. Arguments are evaluated here, though.
		for _, arg := range x.Call.Args {
			sc.expr(arg, held)
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			sc.expr(e, held)
		}
		for _, e := range x.Lhs {
			sc.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			sc.expr(e, held)
		}
	case *ast.SendStmt:
		sc.chanOp(x.Pos(), "channel send", held)
		sc.expr(x.Chan, held)
		sc.expr(x.Value, held)
	case *ast.IncDecStmt:
		sc.expr(x.X, held)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.expr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		sc.stmt(x.Stmt, held)
	case *ast.BlockStmt:
		sc.block(x.List, held)
	case *ast.IfStmt:
		if x.Init != nil {
			sc.stmt(x.Init, held)
		}
		sc.expr(x.Cond, held)
		sc.block(x.Body.List, copyHeld(held))
		if x.Else != nil {
			sc.stmt(x.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if x.Init != nil {
			sc.stmt(x.Init, held)
		}
		if x.Cond != nil {
			sc.expr(x.Cond, held)
		}
		body := copyHeld(held)
		sc.block(x.Body.List, body)
		if x.Post != nil {
			sc.stmt(x.Post, body)
		}
	case *ast.RangeStmt:
		if t := sc.pkg.TypesInfo.Types[x.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				sc.chanOp(x.For, "range over channel", held)
			}
		}
		sc.expr(x.X, held)
		sc.block(x.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if x.Init != nil {
			sc.stmt(x.Init, held)
		}
		if x.Tag != nil {
			sc.expr(x.Tag, held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			sc.chanOp(x.Select, "select with no default", held)
		}
		// Comm clauses themselves are covered by the select-level report
		// (and never block when a default exists); only the bodies need
		// scanning.
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sc.block(cc.Body, copyHeld(held))
			}
		}
	}
}

// expr scans an expression for blocking operations while locks are held.
// Nested function literals are skipped: their bodies run on their own
// schedule, and if one is invoked right here the engine's call edge
// already carries its effects.
func (sc *lockScan) expr(expr ast.Expr, held map[string]token.Pos) {
	if expr == nil || len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				sc.chanOp(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if lock, _, _ := sc.lockOp(x); lock != "" {
				// Lock/Unlock calls in expression position (rare) are
				// region ops, not blocking calls.
				return true
			}
			if reason, blocks := sc.a.eng.BlockReason(sc.pkg, x); blocks {
				sc.report(x.Pos(), fmt.Sprintf("blocking call %s (%s)",
					exprText(sc.pkg.Fset, x.Fun), reason), held)
			}
		}
		return true
	})
}

// chanOp reports a direct channel operation under held locks.
func (sc *lockScan) chanOp(pos token.Pos, what string, held map[string]token.Pos) {
	sc.report(pos, what, held)
}

// report emits one finding per held lock for the blocking site.
func (sc *lockScan) report(pos token.Pos, what string, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	locks := make([]string, 0, len(held))
	for lock := range held {
		locks = append(locks, lock)
	}
	// Deterministic order for multi-lock sections.
	for i := 0; i < len(locks); i++ {
		for j := i + 1; j < len(locks); j++ {
			if locks[j] < locks[i] {
				locks[i], locks[j] = locks[j], locks[i]
			}
		}
	}
	for _, lock := range locks {
		acq := sc.pkg.Fset.Position(held[lock])
		sc.out = append(sc.out, Finding{
			Pos:      sc.pkg.Fset.Position(pos),
			Analyzer: sc.a.Name(),
			Message: fmt.Sprintf("%s (acquired line %d) held across %s in %s; release before blocking or move the I/O out of the critical section",
				lock, acq.Line, what, sc.node.Name),
		})
	}
}
