package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Maporder is the map-iteration-order taint analyzer. Go randomizes map
// iteration, so any map-range whose order reaches serialized, persisted,
// or compared output (gob/json encoders, fmt to writers, WAL appends,
// obs events and dumps) makes byte-identical reproduction impossible —
// the exact class behind the gob snapshot nondeterminism fixed by hand
// in the durability PR. Two shapes are reported:
//
//  1. a range over a map whose body (directly, or through any chain of
//     static calls resolved by the engine, across packages) reaches an
//     order-sensitive sink;
//  2. a slice or string built up inside a map-range body and later
//     passed to a sink in the same function without an intervening
//     sort.* / slices.Sort* call over it.
//
// The fix is always the same: materialize the keys, sort them, and
// iterate the sorted slice — then the range is over a slice and the
// analyzer has nothing to say.
type Maporder struct {
	eng *Engine
}

// NewMaporder returns the analyzer; the engine is bound by Run.
func NewMaporder() *Maporder { return &Maporder{} }

// Name implements Analyzer.
func (*Maporder) Name() string { return "maporder" }

// Doc implements Analyzer.
func (*Maporder) Doc() string {
	return "map iteration order must not flow into serialized/persisted/compared output; sort keys first"
}

// Bind implements interprocAnalyzer.
func (m *Maporder) Bind(e *Engine) { m.eng = e }

// Analyze implements Analyzer.
func (m *Maporder) Analyze(pkg *Package) []Finding {
	if m.eng == nil {
		m.Bind(NewEngine([]*Package{pkg}))
	}
	var out []Finding
	for _, n := range m.eng.PkgNodes(pkg) {
		out = append(out, m.checkNode(pkg, n)...)
	}
	return out
}

// taintedName renders the expression a map-range result is accumulated
// into ("keys", "img.HDB"), or "" when it is not a trackable name.
func taintedName(expr ast.Expr) string {
	switch x := expr.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := taintedName(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	}
	return ""
}

// exprText renders an expression for diagnostics.
func exprText(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return "?"
	}
	return buf.String()
}

// taint records one map-ordered accumulator: the variable it lives in
// and where the tainting loop is.
type taint struct {
	name    string
	loopPos token.Pos
	mapExpr string
}

func (m *Maporder) checkNode(pkg *Package, n *FuncNode) []Finding {
	var out []Finding
	var taints []taint

	n.inspectOwn(func(node ast.Node) bool {
		rng, ok := node.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.TypesInfo.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		mapText := exprText(pkg.Fset, rng.X)

		// Shape 1: a sink reached from inside the loop body.
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if reason, ok := m.eng.SerialReason(pkg, call); ok {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: m.Name(),
					Message: fmt.Sprintf(
						"iteration order of map %s flows into order-sensitive output (%s); collect and sort the keys, then range over the sorted slice",
						mapText, reason),
				})
			}
			return true
		})

		// Shape 2: remember accumulators appended to inside the loop.
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				name := taintedName(lhs)
				if name == "" {
					continue
				}
				if isAppendOrConcat(as.Rhs[i], name) {
					taints = append(taints, taint{name: name, loopPos: rng.For, mapExpr: mapText})
				}
			}
			return true
		})
		return true
	})

	if len(taints) == 0 {
		return out
	}

	// Shape 2, second half: walk the function again looking at calls
	// after each tainting loop. A sort over the accumulator clears the
	// taint; a sink over a still-tainted accumulator is a finding.
	n.inspectOwn(func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		args := make([]string, 0, len(call.Args))
		for _, a := range call.Args {
			if s := taintedName(a); s != "" {
				args = append(args, s)
			}
		}
		if isSortCall(pkg, call) {
			for i := range taints {
				for _, a := range args {
					if taints[i].name != "" && nameOverlap(taints[i].name, a) && call.Pos() > taints[i].loopPos {
						taints[i].name = "" // sorted: taint cleared
					}
				}
			}
			return true
		}
		reason, sink := m.eng.SerialReason(pkg, call)
		if !sink {
			return true
		}
		for i := range taints {
			if taints[i].name == "" || call.Pos() <= taints[i].loopPos {
				continue
			}
			for _, a := range args {
				if nameOverlap(taints[i].name, a) {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: m.Name(),
						Message: fmt.Sprintf(
							"%s accumulates entries of map %s in iteration order and reaches order-sensitive output (%s) without a sort",
							taints[i].name, taints[i].mapExpr, reason),
					})
					taints[i].name = "" // one report per accumulator
				}
			}
		}
		return true
	})
	return out
}

// isAppendOrConcat reports whether rhs grows the named accumulator:
// name = append(name, ...) or name = name + x.
func isAppendOrConcat(rhs ast.Expr, name string) bool {
	switch x := rhs.(type) {
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(x.Args) == 0 {
			return false
		}
		return taintedName(x.Args[0]) == name
	case *ast.BinaryExpr:
		return x.Op == token.ADD &&
			(taintedName(x.X) == name || taintedName(x.Y) == name)
	}
	return false
}

// isSortCall reports whether the call establishes an order: anything in
// package sort or slices, or a function whose name mentions sorting.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	if fn := calleeObj(pkg, call.Fun); fn != nil && fn.Pkg() != nil {
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
			return true
		}
		return strings.Contains(strings.ToLower(fn.Name()), "sort")
	}
	return false
}

// nameOverlap matches an accumulator against a call argument: exact, or
// one a field path under the other (img vs img.HDB).
func nameOverlap(a, b string) bool {
	return a == b || strings.HasPrefix(a, b+".") || strings.HasPrefix(b, a+".")
}
