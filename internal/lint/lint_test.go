package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches `// want "..."` expectation comments in fixtures.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectations maps file:line to the expected message substring.
func expectations(t *testing.T, dir string) map[string]string {
	t.Helper()
	want := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				want[fmt.Sprintf("%s:%d", path, i+1)] = m[1]
			}
		}
	}
	return want
}

// runFixture loads the fixture package in testdata/<name>, runs the
// analyzers through Run (so suppressions apply), and checks the
// findings against the fixture's // want comments.
func runFixture(t *testing.T, name, relDir string, analyzers []Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := LoadDir(dir, relDir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	want := expectations(t, dir)
	got := Run([]*Package{pkg}, analyzers)

	matched := make(map[string]bool)
	for _, f := range got {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		exp, ok := want[key]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, exp) {
			t.Errorf("%s: got message %q, want substring %q", key, f.Message, exp)
		}
		matched[key] = true
	}
	for key, exp := range want {
		if !matched[key] {
			t.Errorf("%s: expected finding matching %q, got none", key, exp)
		}
	}
}

func TestSimclockFixture(t *testing.T) {
	runFixture(t, "simclock", "internal/fixture", []Analyzer{NewSimclock(DefaultAllowlist())})
}

func TestSimclockAllowlist(t *testing.T) {
	// The same real-clock calls are clean when the package sits inside
	// an allowlisted directory...
	runFixture(t, "simclock_allowed", "cmd/fixture", []Analyzer{NewSimclock(DefaultAllowlist())})

	// ...and flagged when it does not.
	pkg, err := LoadDir(filepath.Join("testdata", "simclock_allowed"), "internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	got := Run([]*Package{pkg}, []Analyzer{NewSimclock(DefaultAllowlist())})
	if len(got) != 2 {
		t.Fatalf("outside the allowlist: got %d findings, want 2:\n%v", len(got), got)
	}
}

func TestSimclockFileAllowlist(t *testing.T) {
	// A file-granular allowlist entry ("internal/netsim/udp.go") covers
	// exactly that file.
	a := NewSimclock([]string{"internal/fixture/allowed.go"})
	pkg, err := LoadDir(filepath.Join("testdata", "simclock_allowed"), "internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if got := Run([]*Package{pkg}, []Analyzer{a}); len(got) != 0 {
		t.Fatalf("file allowlist entry did not cover the file: %v", got)
	}
}

func TestLockguardFixture(t *testing.T) {
	runFixture(t, "lockguard", "internal/fixture", []Analyzer{NewLockguard()})
}

func TestErrwrapFixture(t *testing.T) {
	runFixture(t, "errwrap", "internal/fixture", []Analyzer{NewErrwrap()})
}

func TestTesthygieneFixture(t *testing.T) {
	runFixture(t, "testhygiene", "internal/fixture", []Analyzer{NewTesthygiene()})
}

func TestObsnameFixture(t *testing.T) {
	runFixture(t, "obsname", "internal/fixture", []Analyzer{NewObsname()})
}

func TestMaporderFixture(t *testing.T) {
	runFixture(t, "maporder", "internal/fixture", []Analyzer{NewMaporder()})
}

func TestLockholdFixture(t *testing.T) {
	runFixture(t, "lockhold", "internal/fixture", []Analyzer{NewLockhold()})
}

func TestLockorderFixture(t *testing.T) {
	runFixture(t, "lockorder", "internal/fixture", []Analyzer{NewLockorder()})
}

func TestLeakcheckFixture(t *testing.T) {
	runFixture(t, "leakcheck", "internal/fixture", []Analyzer{NewLeakcheck()})
}

func TestAllocscanFixture(t *testing.T) {
	runFixture(t, "allocscan", "internal/fixture", []Analyzer{NewAllocscan()})
}

// writeFixture materializes a file tree under a fresh temp dir.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func loadSingle(t *testing.T, src string) *Package {
	t.Helper()
	dir := writeFixture(t, map[string]string{"fix.go": src})
	pkg, err := LoadDir(dir, "internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestDirectiveRequiresReason(t *testing.T) {
	pkg := loadSingle(t, `package fix

import "time"

func f() time.Time {
	//codalint:ignore simclock
	return time.Now()
}
`)
	got := Run([]*Package{pkg}, []Analyzer{NewSimclock(nil)})
	var directive, simclock int
	for _, f := range got {
		switch f.Analyzer {
		case "directive":
			directive++
			if !strings.Contains(f.Message, "reason") {
				t.Errorf("directive finding should demand a reason, got %q", f.Message)
			}
		case "simclock":
			simclock++
		}
	}
	if directive != 1 || simclock != 1 {
		t.Fatalf("reasonless ignore must be rejected AND not suppress: got %v", got)
	}
}

func TestDirectiveUnused(t *testing.T) {
	pkg := loadSingle(t, `package fix

//codalint:ignore lockguard this suppresses nothing at all
func f() int { return 1 }
`)
	got := Run([]*Package{pkg}, Analyzers())
	if len(got) != 1 || got[0].Analyzer != "directive" || !strings.Contains(got[0].Message, "unused") {
		t.Fatalf("stale directive must be reported: got %v", got)
	}
}

func TestDirectiveSuppressesSameAndNextLine(t *testing.T) {
	pkg := loadSingle(t, `package fix

import "time"

func sameLine() time.Time {
	return time.Now() //codalint:ignore simclock same-line suppression for this test
}

func nextLine() time.Time {
	//codalint:ignore simclock previous-line suppression for this test
	return time.Now()
}
`)
	if got := Run([]*Package{pkg}, []Analyzer{NewSimclock(nil)}); len(got) != 0 {
		t.Fatalf("both suppression placements must work: got %v", got)
	}
}

func TestDirectiveWrongAnalyzerDoesNotSuppress(t *testing.T) {
	pkg := loadSingle(t, `package fix

import "time"

func f() time.Time {
	//codalint:ignore lockguard wrong analyzer name on purpose
	return time.Now()
}
`)
	got := Run([]*Package{pkg}, []Analyzer{NewSimclock(nil)})
	// The simclock finding survives, and the lockguard directive is
	// reported as unused.
	var simclock, unused bool
	for _, f := range got {
		if f.Analyzer == "simclock" {
			simclock = true
		}
		if f.Analyzer == "directive" && strings.Contains(f.Message, "unused") {
			unused = true
		}
	}
	if !simclock || !unused {
		t.Fatalf("wrong-analyzer ignore must not suppress: got %v", got)
	}
}

// TestRepoIsLintClean is the regression fence: the whole repository
// must stay codalint-clean. If this fails, either fix the finding or
// suppress it with a reasoned //codalint:ignore.
func TestRepoIsLintClean(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(mod.Packages, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestSimclockWALNotAllowlisted(t *testing.T) {
	// internal/wal must take its flush clock by injection (wal.Options
	// carries a simtime.Clock for the interval-sync policy), so the
	// allowlist deliberately does not cover it. Pin that: the same
	// real-clock fixture loaded as if it lived at internal/wal is
	// flagged, and the live allowlist has no wal entry.
	pkg, err := LoadDir(filepath.Join("testdata", "simclock_allowed"), "internal/wal")
	if err != nil {
		t.Fatal(err)
	}
	if got := Run([]*Package{pkg}, []Analyzer{NewSimclock(DefaultAllowlist())}); len(got) != 2 {
		t.Fatalf("real-clock use under internal/wal: got %d findings, want 2:\n%v", len(got), got)
	}
	for _, entry := range DefaultAllowlist() {
		if strings.Contains(entry, "wal") {
			t.Errorf("allowlist entry %q covers internal/wal", entry)
		}
	}
}
