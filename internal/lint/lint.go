package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer inspects one package and reports findings.
type Analyzer interface {
	// Name is the analyzer's identifier, used in output and in
	// //codalint:ignore directives.
	Name() string
	// Doc is a one-line description.
	Doc() string
	// Analyze reports the analyzer's findings for pkg.
	Analyze(pkg *Package) []Finding
}

// Analyzers returns the full production suite.
func Analyzers() []Analyzer {
	return []Analyzer{
		NewSimclock(DefaultAllowlist()),
		NewLockguard(),
		NewErrwrap(),
		NewTesthygiene(),
		NewObsname(),
		NewMaporder(),
		NewLockhold(),
		NewLockorder(),
		NewLeakcheck(),
		NewAllocscan(),
	}
}

// interprocAnalyzer is implemented by analyzers that consume the
// whole-program engine; Run binds one shared engine before analysis.
type interprocAnalyzer interface {
	Analyzer
	Bind(*Engine)
}

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//codalint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory; a directive without one is itself a finding
// (analyzer "directive").
const IgnoreDirective = "//codalint:ignore"

// suppression records one well-formed ignore directive.
type suppression struct {
	file     string
	line     int // the directive's own line
	analyzer string
	reason   string
	used     bool
}

// collectSuppressions scans every comment in the package (test files
// included) for ignore directives. Malformed directives are returned as
// findings.
func collectSuppressions(pkg *Package) ([]*suppression, []Finding) {
	var sups []*suppression
	var bad []Finding
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "codalint:ignore needs an analyzer name and a reason: //codalint:ignore <analyzer> <reason>",
					})
					continue
				}
				sups = append(sups, &suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return sups, bad
}

// Run applies every analyzer to every package, honoring suppressions.
// Unused suppressions are reported so stale directives can't linger.
// Interprocedural analyzers share one engine built over all of pkgs, so
// summaries resolve across package boundaries whenever the packages are
// loaded together (LoadModule loads the whole module).
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	findings, _, _ := run(pkgs, analyzers)
	return findings
}

// run is Run plus the audit trail: every suppression with its used flag
// resolved after analysis, and the malformed directives, so the
// -ignores audit can flag stale entries without re-deriving anything.
func run(pkgs []*Package, analyzers []Analyzer) (findings []Finding, allSups []*suppression, malformed []Finding) {
	var eng *Engine
	for _, a := range analyzers {
		if ia, ok := a.(interprocAnalyzer); ok {
			if eng == nil {
				eng = NewEngine(pkgs)
			}
			ia.Bind(eng)
		}
	}
	var out []Finding
	for _, pkg := range pkgs {
		sups, bad := collectSuppressions(pkg)
		out = append(out, bad...)
		malformed = append(malformed, bad...)
		allSups = append(allSups, sups...)
		for _, a := range analyzers {
			for _, f := range a.Analyze(pkg) {
				if suppressed(sups, a.Name(), f) {
					continue
				}
				out = append(out, f)
			}
		}
		for _, s := range sups {
			if !s.used {
				out = append(out, Finding{
					Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
					Analyzer: "directive",
					Message:  fmt.Sprintf("unused codalint:ignore %s directive (nothing suppressed)", s.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out, allSups, malformed
}

// suppressed reports whether f is covered by a directive on its own
// line or on the line directly above.
func suppressed(sups []*suppression, analyzer string, f Finding) bool {
	for _, s := range sups {
		if s.analyzer != analyzer || s.file != f.Pos.Filename {
			continue
		}
		if s.line == f.Pos.Line || s.line == f.Pos.Line-1 {
			s.used = true
			return true
		}
	}
	return false
}
