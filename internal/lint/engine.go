package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is codalint's interprocedural core: a call graph over every
// loaded package plus per-function effect summaries, propagated to a
// fixpoint across package boundaries. The maporder, lockhold, and
// leakcheck analyzers are thin queries over these summaries.
//
// The graph is built from static calls only: package-level functions,
// methods on concrete named types, method values, and immediately
// invoked function literals. Calls through interface methods are not
// devirtualized; instead, a small set of well-known interface methods
// (simtime.Clock.Sleep, crashfs.File.Sync, io.Writer.Write, ...) are
// effect roots matched by package-path suffix, so the repository's own
// blocking and serialization primitives are recognized whether they are
// reached through the interface or the concrete type. A function
// literal is a node of its own: its effects reach the enclosing
// function only through a real call edge (immediate invocation), so
// registering a callback does not smear the callback's effects onto the
// registrar.

// FuncNode is one function (declared or literal) in the call graph.
type FuncNode struct {
	Obj  *types.Func   // declared functions and methods; nil for literals
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Pkg  *Package
	Name string // human-readable: "(*Server).Checkpoint", "New$1"

	Calls  []*FuncNode // static callees, deduplicated, in call-site order
	Spawns []SpawnSite // goroutine launch sites in this function's body

	// Blocks: the function can park its goroutine — transitively
	// reaches a channel operation or a blocking primitive (simtime
	// waits, rpc2/sftp calls, WAL fsync, time.Sleep, ...).
	Blocks   bool
	BlockVia string // first-cause chain, e.g. "(*Node).Call: channel receive"

	// Serializes: the function transitively writes to order-sensitive
	// output — an encoder, a writer, a WAL append, an obs event.
	Serializes bool
	SerialVia  string

	// Allocates: the function transitively allocates heap memory on its
	// steady-state path (see alloc.go for what counts and what is
	// exempt). Queried by allocscan from //codalint:hotpath roots.
	Allocates bool
	AllocVia  string

	// allocSites: this function's own direct allocation sites, in
	// source order; the seed for the Allocates bit.
	allocSites []allocSite
	// poolNew: the function is a sync.Pool New constructor — its
	// allocations are the pool's amortized backing store.
	poolNew bool

	// Endless: the function transitively enters a condition-less for
	// loop with no reachable exit (no return, no break that targets the
	// loop), so it can never be stopped once started.
	Endless    bool
	EndlessVia string
	EndlessPos token.Pos
	// selectBreakOnly: the endless loop's only would-be exits are break
	// statements that target an enclosing select or switch, not the
	// loop — the classic shutdown bug leakcheck exists to catch.
	selectBreakOnly bool

	// Acquires: lock domains this function may acquire, directly or
	// through any chain of static calls, mapped to the via-chain that
	// reaches the Lock ("" = locked in this very body). Domains follow
	// lockguard's naming convention and are rendered as
	// "pkg.Type.field" ("server.volume.mu") or "pkg.var" for
	// package-level mutexes. The goroutine bodies launched by `go`
	// statements are excluded: their acquires happen on another stack.
	Acquires map[string]string
	// locks holds the rest of the lockset summary (see locksets.go).
	locks lockSummary
}

// SpawnSite is one goroutine launch: a go statement or an x.Go(fn) call
// on a clock-like spawner.
type SpawnSite struct {
	Pos    token.Pos
	Target *FuncNode // nil when the spawned function cannot be resolved
	Label  string    // how the site reads: "go func literal", "clock.Go((*Venus).trickleDaemon)"
}

// Engine is the whole-program analysis state shared by the
// interprocedural analyzers.
type Engine struct {
	nodes []*FuncNode
	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	byPkg map[*Package][]*FuncNode
}

// NewEngine builds the call graph and runs the summary fixpoint over
// pkgs. Cross-package edges resolve because the loader shares types.Func
// objects between a package and its importers.
func NewEngine(pkgs []*Package) *Engine {
	e := &Engine{
		byObj: make(map[*types.Func]*FuncNode),
		byLit: make(map[*ast.FuncLit]*FuncNode),
		byPkg: make(map[*Package][]*FuncNode),
	}
	for _, pkg := range pkgs {
		e.collect(pkg)
	}
	for _, pkg := range pkgs {
		e.markPoolConstructors(pkg)
	}
	for _, n := range e.nodes {
		e.scanDirect(n)
		e.scanAllocs(n)
		e.scanLocksets(n)
	}
	e.fixpoint()
	return e
}

// PkgNodes returns the nodes whose bodies live in pkg, in source order.
func (e *Engine) PkgNodes(pkg *Package) []*FuncNode { return e.byPkg[pkg] }

// collect registers a node for every function declaration and every
// function literal in pkg.
func (e *Engine) collect(pkg *Package) {
	add := func(n *FuncNode) {
		e.nodes = append(e.nodes, n)
		e.byPkg[pkg] = append(e.byPkg[pkg], n)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &FuncNode{Decl: fd, Pkg: pkg, Name: declName(fd)}
			if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				n.Obj = obj
				e.byObj[obj] = n
			}
			add(n)
		}
		// Literals anywhere in the file (inside declarations, composite
		// literals, variable initializers). Each becomes its own node,
		// named after the enclosing declaration.
		ast.Inspect(file, func(node ast.Node) bool {
			lit, ok := node.(*ast.FuncLit)
			if !ok {
				return true
			}
			n := &FuncNode{Lit: lit, Pkg: pkg, Name: e.litName(pkg, file, lit)}
			e.byLit[lit] = n
			add(n)
			return true
		})
	}
}

// declName renders a FuncDecl's display name.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		recv = se.X
		star = "*"
	}
	base := recv
	for {
		switch x := base.(type) {
		case *ast.IndexExpr:
			base = x.X
		case *ast.IndexListExpr:
			base = x.X
		case *ast.Ident:
			return "(" + star + x.Name + ")." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// litName names a literal after the innermost enclosing function
// declaration: "(*Venus).New$1".
func (e *Engine) litName(pkg *Package, file *ast.File, lit *ast.FuncLit) string {
	enclosing := "func"
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Pos() <= lit.Pos() && lit.End() <= fd.End() {
			enclosing = declName(fd)
			break
		}
	}
	pos := pkg.Fset.Position(lit.Pos())
	return enclosing + "$" + "L" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// body returns the node's statement block.
func (n *FuncNode) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// inspectOwn walks the node's body, skipping nested function literals
// (they are nodes of their own).
func (n *FuncNode) inspectOwn(fn func(ast.Node) bool) {
	root := ast.Node(n.body())
	ast.Inspect(root, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		return fn(node)
	})
}

// resolveCallee maps a call expression's function operand to a graph
// node, when the call is static.
func (e *Engine) resolveCallee(pkg *Package, fun ast.Expr) *FuncNode {
	switch x := fun.(type) {
	case *ast.FuncLit:
		return e.byLit[x]
	case *ast.ParenExpr:
		return e.resolveCallee(pkg, x.X)
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[x].(*types.Func); ok {
			return e.byObj[fn]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[x]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return e.byObj[fn]
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := pkg.TypesInfo.Uses[x.Sel].(*types.Func); ok {
			return e.byObj[fn]
		}
	}
	return nil
}

// calleeObj reports the types.Func a call expression invokes (interface
// methods included), for effect-root matching.
func calleeObj(pkg *Package, fun ast.Expr) *types.Func {
	switch x := fun.(type) {
	case *ast.ParenExpr:
		return calleeObj(pkg, x.X)
	case *ast.Ident:
		fn, _ := pkg.TypesInfo.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[x]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pkg.TypesInfo.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pathIs reports whether pkgPath denotes the named repository package,
// whatever module path it sits under ("repro/internal/wal",
// "internal/wal" for fixtures, "faux/internal/wal" in test modules).
func pathIs(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// recvTypeName returns the bare name of a method's receiver type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "" // interface receivers are matched by package+name only
	}
	return ""
}

// blockRoot classifies fn as a known blocking primitive and returns the
// reason, or "".
func blockRoot(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "sync" && name == "Wait":
		return "sync." + recvTypeName(fn) + ".Wait"
	case path == "os" && name == "Sync":
		return "os.File.Sync (fsync)"
	case pathIs(path, "internal/simtime"):
		switch name {
		case "Sleep":
			return "simtime Sleep (parks until the clock advances)"
		case "Get", "GetTimeout":
			return "simtime.Queue." + name + " (parks until an item or the deadline)"
		case "Run":
			return "simtime.Sim.Run (drives a whole simulation)"
		}
	case pathIs(path, "internal/rpc2"):
		switch name {
		case "Call", "Transfer", "AwaitTransfer", "MultiRPC":
			return "rpc2 " + name + " (network round-trip)"
		}
	case pathIs(path, "internal/sftp"):
		switch name {
		case "Send", "Await":
			return "sftp " + name + " (bulk transfer)"
		}
	case pathIs(path, "internal/wal"):
		switch name {
		case "Append", "Sync", "Reset", "Close", "Open":
			return "wal " + name + " (fsync)"
		}
	case pathIs(path, "internal/crashfs"):
		switch name {
		case "Sync", "SyncDir":
			return "crashfs " + name + " (fsync)"
		}
	}
	return ""
}

// serialRoot classifies fn as a known order-sensitive output sink and
// returns the reason, or "".
func serialRoot(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "encoding/gob" && (name == "Encode" || name == "EncodeValue"):
		return "gob." + name
	case path == "encoding/json" && name == "Encode":
		return "json.Encoder.Encode"
	case path == "encoding/binary" && name == "Write":
		return "binary.Write"
	case path == "fmt" && (name == "Fprintf" || name == "Fprint" || name == "Fprintln"):
		return "fmt." + name
	case path == "io" && name == "Write":
		return "io.Writer.Write"
	case (path == "bytes" || path == "strings" || path == "bufio") &&
		strings.HasPrefix(name, "Write") && recvTypeName(fn) != "":
		return path + "." + recvTypeName(fn) + "." + name
	case pathIs(path, "internal/wal") && name == "Append":
		return "wal Append (journal record order is durable)"
	case pathIs(path, "internal/obs") && (name == "Event" || name == "Dump"):
		return "obs " + name + " (trace/dump order is compared byte-for-byte)"
	}
	return ""
}

// spawnCall reports whether a call expression is a goroutine spawner of
// the clock.Go shape — a method named Go whose single argument is a
// func() — and returns that argument.
func spawnCall(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Go" || len(call.Args) != 1 {
		return nil, false
	}
	fn := calleeObj(pkg, call.Fun)
	if fn == nil {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return nil, false
	}
	arg, ok := sig.Params().At(0).Type().Underlying().(*types.Signature)
	if !ok || arg.Params().Len() != 0 || arg.Results().Len() != 0 {
		return nil, false
	}
	return call.Args[0], true
}

// scanDirect records a node's local effects: call edges, spawn sites,
// direct blocking operations, direct sinks, and endless loops.
func (e *Engine) scanDirect(n *FuncNode) {
	pkg := n.Pkg
	n.inspectOwn(func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if callee := e.resolveCallee(pkg, x.Fun); callee != nil {
				n.Calls = append(n.Calls, callee)
			}
			obj := calleeObj(pkg, x.Fun)
			if r := blockRoot(obj); r != "" && !n.Blocks {
				n.Blocks, n.BlockVia = true, r
			}
			if r := serialRoot(obj); r != "" && !n.Serializes {
				n.Serializes, n.SerialVia = true, r
			}
			if arg, ok := spawnCall(pkg, x); ok {
				n.Spawns = append(n.Spawns, SpawnSite{
					Pos:    x.Pos(),
					Target: e.resolveCallee(pkg, arg),
					Label:  "Go(" + targetLabel(e, pkg, arg) + ")",
				})
			}
		case *ast.GoStmt:
			n.Spawns = append(n.Spawns, SpawnSite{
				Pos:    x.Pos(),
				Target: e.resolveCallee(pkg, x.Call.Fun),
				Label:  "go " + targetLabel(e, pkg, x.Call.Fun),
			})
		case *ast.SendStmt:
			if !n.Blocks {
				n.Blocks, n.BlockVia = true, "channel send"
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !n.Blocks {
				n.Blocks, n.BlockVia = true, "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) && !n.Blocks {
				n.Blocks, n.BlockVia = true, "select with no default"
			}
		case *ast.RangeStmt:
			if t := pkg.TypesInfo.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && !n.Blocks {
					n.Blocks, n.BlockVia = true, "range over channel"
				}
			}
		case *ast.ForStmt:
			if x.Cond == nil && !n.Endless {
				exits, selectBreaks := loopExits(x)
				if !exits {
					n.Endless = true
					n.EndlessVia = "for loop with no exit"
					n.EndlessPos = x.For
					n.selectBreakOnly = selectBreaks
					if selectBreaks {
						n.EndlessVia = "for loop whose only break targets an inner select/switch, not the loop"
					}
				}
			}
		}
		return true
	})
	n.Calls = dedupeNodes(n.Calls)
}

// targetLabel renders a spawned expression for diagnostics.
func targetLabel(e *Engine, pkg *Package, fun ast.Expr) string {
	if n := e.resolveCallee(pkg, fun); n != nil {
		return n.Name
	}
	if _, ok := fun.(*ast.FuncLit); ok {
		return "func literal"
	}
	return "dynamic function"
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// loopExits reports whether a condition-less for loop has a reachable
// exit: a return, a goto, a labeled break (labels are not resolved, so
// any labeled break conservatively counts), or a bare break that
// actually targets this loop rather than an inner select/switch/for.
// selectBreaks is true when the only break statements found target an
// inner construct — the classic `for { select { case <-done: break } }`
// shutdown bug.
func loopExits(loop *ast.ForStmt) (exits, selectBreaks bool) {
	var walk func(node ast.Node, breakTargetsLoop bool)
	walk = func(node ast.Node, breakTargetsLoop bool) {
		ast.Inspect(node, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				switch x.Tok {
				case token.GOTO:
					exits = true
				case token.BREAK:
					switch {
					case x.Label != nil, breakTargetsLoop:
						exits = true
					default:
						selectBreaks = true
					}
				}
			case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt:
				if nd != node {
					walk(nd, false)
					return false
				}
			}
			return true
		})
	}
	walk(loop.Body, true)
	if exits {
		selectBreaks = false
	}
	return exits, selectBreaks
}

func dedupeNodes(in []*FuncNode) []*FuncNode {
	seen := make(map[*FuncNode]bool, len(in))
	out := in[:0]
	for _, n := range in {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// fixpoint propagates Blocks, Serializes, Allocates, and Endless
// through the call graph until nothing changes. The facts are monotone bits, so
// iteration converges; passes are over a deterministically sorted node
// list so via-chains are reproducible run to run.
func (e *Engine) fixpoint() {
	nodes := make([]*FuncNode, len(e.nodes))
	copy(nodes, e.nodes)
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].sortKey() < nodes[j].sortKey()
	})
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, c := range n.Calls {
				if c.Blocks && !n.Blocks {
					n.Blocks, n.BlockVia = true, c.Name+": "+c.BlockVia
					changed = true
				}
				if c.Serializes && !n.Serializes {
					n.Serializes, n.SerialVia = true, c.Name+": "+c.SerialVia
					changed = true
				}
				if c.Allocates && !n.Allocates && !n.poolNew {
					n.Allocates, n.AllocVia = true, c.Name+": "+c.AllocVia
					changed = true
				}
				if c.Endless && !n.Endless {
					n.Endless = true
					n.EndlessVia = c.Name + ": " + c.EndlessVia
					n.EndlessPos = c.EndlessPos
					n.selectBreakOnly = c.selectBreakOnly
					changed = true
				}
			}
			if n.propagateLocksets() {
				changed = true
			}
		}
	}
}

func (n *FuncNode) sortKey() string {
	pos := n.Pkg.Fset.Position(n.body().Pos())
	return pos.Filename + "\x00" + pad(pos.Offset)
}

func pad(n int) string {
	s := itoa(n)
	return strings.Repeat("0", 10-len(s)) + s
}

// BlockReason reports whether calling fun blocks, resolving first
// through the call graph and then through the primitive roots.
func (e *Engine) BlockReason(pkg *Package, call *ast.CallExpr) (string, bool) {
	if n := e.resolveCallee(pkg, call.Fun); n != nil {
		if n.Blocks {
			return n.Name + ": " + n.BlockVia, true
		}
		return "", false
	}
	if r := blockRoot(calleeObj(pkg, call.Fun)); r != "" {
		return r, true
	}
	return "", false
}

// SerialReason reports whether calling fun writes order-sensitive
// output.
func (e *Engine) SerialReason(pkg *Package, call *ast.CallExpr) (string, bool) {
	if n := e.resolveCallee(pkg, call.Fun); n != nil {
		if n.Serializes {
			return n.Name + ": " + n.SerialVia, true
		}
		return "", false
	}
	if r := serialRoot(calleeObj(pkg, call.Fun)); r != "" {
		return r, true
	}
	return "", false
}
