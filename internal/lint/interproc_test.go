package lint

import (
	"strings"
	"testing"
)

// These tests are the acceptance fence for the interprocedural engine:
// each analyzer must see its effect through at least one call hop that
// crosses a package boundary.

// loadFauxModule materializes and loads a module named faux.
func loadFauxModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	all := map[string]string{"go.mod": "module faux\n\ngo 1.22\n"}
	for k, v := range files {
		all[k] = v
	}
	mod, err := LoadModule(writeFixture(t, all))
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestMaporderCrossPackage(t *testing.T) {
	mod := loadFauxModule(t, map[string]string{
		"internal/enc/enc.go": `package enc

import (
	"fmt"
	"io"
)

// Write is the serializing leaf; the map range lives a package away.
func Write(w io.Writer, s string) {
	fmt.Fprintln(w, s)
}
`,
		"internal/dump/dump.go": `package dump

import (
	"io"

	"faux/internal/enc"
)

func Dump(w io.Writer, m map[string]int) {
	for k := range m {
		enc.Write(w, k)
	}
}
`,
	})
	got := Run(mod.Packages, []Analyzer{NewMaporder()})
	if len(got) != 1 {
		t.Fatalf("cross-package maporder: %d findings, want 1:\n%v", len(got), got)
	}
	f := got[0]
	if !strings.Contains(f.Pos.Filename, "dump.go") ||
		!strings.Contains(f.Message, "iteration order of map m") ||
		!strings.Contains(f.Message, "Write") {
		t.Fatalf("cross-package maporder finding: %v", f)
	}
}

func TestLockholdCrossPackage(t *testing.T) {
	mod := loadFauxModule(t, map[string]string{
		"internal/rpcish/rpcish.go": `package rpcish

// Call parks on a reply channel, like an rpc2 round-trip.
func Call() int {
	ch := make(chan int)
	return <-ch
}
`,
		"internal/srv/srv.go": `package srv

import (
	"sync"

	"faux/internal/rpcish"
)

type Server struct {
	mu sync.Mutex
	n  int
}

func (s *Server) Probe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = rpcish.Call()
}
`,
	})
	got := Run(mod.Packages, []Analyzer{NewLockhold()})
	if len(got) != 1 {
		t.Fatalf("cross-package lockhold: %d findings, want 1:\n%v", len(got), got)
	}
	f := got[0]
	if !strings.Contains(f.Pos.Filename, "srv.go") ||
		!strings.Contains(f.Message, "s.mu") ||
		!strings.Contains(f.Message, "rpcish.Call") {
		t.Fatalf("cross-package lockhold finding: %v", f)
	}
}

func TestLockorderCrossPackage(t *testing.T) {
	// The cycle's two acquires each happen one package away from where
	// the order is violated: svc holds a's lock while calling b's
	// lockVolume-style helper and vice versa. The lockset summaries
	// must carry both the Acquires set and the open-section balance
	// across the package boundary for the cycle to close.
	mod := loadFauxModule(t, map[string]string{
		"internal/east/east.go": `package east

import "sync"

type Gate struct {
	mu sync.Mutex
	N  int
}

// With hands the caller an open critical section.
func With(g *Gate) *Gate {
	g.mu.Lock()
	return g
}

func Release(g *Gate) { g.mu.Unlock() }
`,
		"internal/west/west.go": `package west

import "sync"

type Gate struct {
	mu sync.Mutex
	N  int
}

func With(g *Gate) *Gate {
	g.mu.Lock()
	return g
}

func Release(g *Gate) { g.mu.Unlock() }
`,
		"internal/svc/svc.go": `package svc

import (
	"faux/internal/east"
	"faux/internal/west"
)

func Forward(e *east.Gate, w *west.Gate) {
	east.With(e)
	west.With(w)
	w.N++
	west.Release(w)
	east.Release(e)
}

func Backward(e *east.Gate, w *west.Gate) {
	west.With(w)
	east.With(e)
	e.N++
	east.Release(e)
	west.Release(w)
}
`,
	})
	got := Run(mod.Packages, []Analyzer{NewLockorder()})
	if len(got) != 1 {
		t.Fatalf("cross-package lockorder: %d findings, want 1 cycle:\n%v", len(got), got)
	}
	f := got[0]
	if !strings.Contains(f.Pos.Filename, "svc.go") ||
		!strings.Contains(f.Message, "lock-order cycle") ||
		!strings.Contains(f.Message, "east.Gate.mu") ||
		!strings.Contains(f.Message, "west.Gate.mu") ||
		!strings.Contains(f.Message, "With") {
		t.Fatalf("cross-package lockorder finding: %v", f)
	}
}

func TestAllocscanCrossPackage(t *testing.T) {
	// The allocation is two hops and one package boundary away from the
	// hotpath root: hot Ship -> frame.Build -> frame.grow. The finding
	// must land at the root's call site with the via-chain, and the
	// pooled path through the same package must stay clean.
	mod := loadFauxModule(t, map[string]string{
		"internal/frame/frame.go": `package frame

func grow(n int) []byte {
	return make([]byte, n)
}

// Build allocates transitively through grow.
func Build(n int) []byte {
	return grow(n)
}

// Emit consumes a framed buffer without retaining it.
func Emit(b []byte) {}
`,
		"internal/bufpool/bufpool.go": `package bufpool

import "sync"

var pool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64)
	return &b
}}

// Get hands out pooled memory: a recognized sink, not a source.
func Get(n int) *[]byte {
	return pool.Get().(*[]byte)
}

func Put(bp *[]byte) {
	*bp = (*bp)[:0]
	pool.Put(bp)
}
`,
		"internal/hot/hot.go": `package hot

import (
	"faux/internal/bufpool"
	"faux/internal/frame"
)

//codalint:hotpath wire framing
func Ship(n int) []byte {
	return frame.Build(n)
}

//codalint:hotpath wire framing, pooled
func ShipPooled(body []byte) {
	bp := bufpool.Get(len(body))
	*bp = append(*bp, body...)
	frame.Emit(*bp)
	bufpool.Put(bp)
}
`,
	})
	got := Run(mod.Packages, []Analyzer{NewAllocscan()})
	if len(got) != 1 {
		t.Fatalf("cross-package allocscan: %d findings, want 1:\n%v", len(got), got)
	}
	f := got[0]
	if !strings.Contains(f.Pos.Filename, "hot.go") ||
		!strings.Contains(f.Message, "hotpath Ship") ||
		!strings.Contains(f.Message, "Build") ||
		!strings.Contains(f.Message, "grow") {
		t.Fatalf("cross-package allocscan finding: %v", f)
	}
}

func TestLeakcheckCrossPackage(t *testing.T) {
	mod := loadFauxModule(t, map[string]string{
		"internal/daemon/daemon.go": `package daemon

// Spin is the unstoppable loop; both spawns live a package away.
func Spin() {
	for {
	}
}
`,
		"internal/simtime/clock.go": `package simtime

type Clock struct{}

func (Clock) Go(fn func()) { go fn() }
`,
		"internal/owner/owner.go": `package owner

import (
	"faux/internal/daemon"
	"faux/internal/simtime"
)

func Start() {
	go daemon.Spin()
}

func StartVia(c simtime.Clock) {
	c.Go(daemon.Spin)
}
`,
	})
	got := Run(mod.Packages, []Analyzer{NewLeakcheck()})
	if len(got) != 2 {
		t.Fatalf("cross-package leakcheck: %d findings, want 2 (go stmt + clock spawn):\n%v", len(got), got)
	}
	for _, f := range got {
		if !strings.Contains(f.Pos.Filename, "owner.go") ||
			!strings.Contains(f.Message, "can never stop") ||
			!strings.Contains(f.Message, "Spin") {
			t.Fatalf("cross-package leakcheck finding: %v", f)
		}
	}
}
