// Package tcpsim implements a TCP Reno-style congestion-controlled stream
// protocol over the packet network, used solely as the comparison baseline
// for Figure 1 (SFTP vs TCP bulk-transfer throughput).
//
// It models the algorithms that determine bulk throughput: slow start,
// additive-increase congestion avoidance, fast retransmit on triple
// duplicate ACKs with multiplicative decrease, retransmission timeouts with
// Jacobson RTT estimation and Karn's rule, and cumulative acknowledgement
// with out-of-order buffering at the receiver. Connection management
// (SYN/FIN) is omitted: each transfer is a self-describing stream, which
// is all the benchmark exercises.
package tcpsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Segment size mirrors sftp.DataPacketSize so the comparison is apples to
// apples.
const (
	SegmentSize = 1200
	initialSS   = 64 // initial ssthresh, in segments
	maxTimeouts = 12
)

const (
	tagSeg = 0x11
	tagAck = 0x12
)

// ErrTransferFailed reports a stream abandoned after repeated timeouts.
var ErrTransferFailed = errors.New("tcpsim: transfer failed")

// Send streams data to dst over conn, blocking until fully acknowledged.
func Send(clock simtime.Clock, conn netsim.PacketConn, dst string, streamID uint64, data []byte) error {
	total := uint32((len(data) + SegmentSize - 1) / SegmentSize)
	if total == 0 {
		total = 1
	}

	mon := netmon.NewMonitor(clock)
	peer := mon.Peer(dst)

	acks := simtime.NewQueue[uint32](clock)
	clock.Go(func() {
		for {
			payload, _, ok := conn.Recv()
			if !ok {
				return
			}
			if len(payload) < 13 || payload[0] != tagAck {
				continue
			}
			if binary.BigEndian.Uint64(payload[1:]) != streamID {
				continue
			}
			acks.Put(binary.BigEndian.Uint32(payload[9:]))
		}
	})

	seg := func(i uint32) []byte {
		lo := int(i) * SegmentSize
		hi := lo + SegmentSize
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		buf := make([]byte, 19+hi-lo)
		buf[0] = tagSeg
		binary.BigEndian.PutUint64(buf[1:], streamID)
		binary.BigEndian.PutUint32(buf[9:], i)
		binary.BigEndian.PutUint32(buf[13:], total)
		binary.BigEndian.PutUint16(buf[17:], uint16(hi-lo))
		copy(buf[19:], data[lo:hi])
		return buf
	}

	var (
		base     uint32 // lowest unacked segment
		nextSeq  uint32 // next segment to send
		cwnd     = 1.0  // congestion window, segments
		ssthresh = float64(initialSS)
		dupAcks  int
		timeouts int
		inFR     bool // in fast recovery
		// Classic single-timer RTT sampling: time one segment at a time,
		// abandoning the measurement if anything at or before it is
		// retransmitted (Karn) — this also keeps cumulative ACKs that
		// were blocked behind a hole from producing inflated samples.
		timedSeq int64 = -1
		timedAt  time.Time
	)

	transmit := func(i uint32, isRetx bool) {
		_ = conn.Send(dst, seg(i))
		if isRetx {
			if timedSeq >= 0 && int64(i) <= timedSeq {
				timedSeq = -1
			}
		} else if timedSeq < 0 {
			timedSeq = int64(i)
			timedAt = clock.Now()
		}
	}

	fill := func() {
		for nextSeq < total && float64(nextSeq-base) < cwnd {
			transmit(nextSeq, false)
			nextSeq++
		}
	}
	fill()

	backoff := 0
	for base < total {
		// Exponential timer backoff (RFC 6298 §5.5), reset by new acks;
		// the RTT estimator itself is never fed timeout values.
		rto := peer.RTO() << uint(backoff)
		if rto > netmon.MaxRTO {
			rto = netmon.MaxRTO
		}
		ack, ok := acks.GetTimeout(rto)
		if !ok {
			// Retransmission timeout: multiplicative decrease, slow
			// start from one segment.
			timeouts++
			if timeouts >= maxTimeouts {
				return fmt.Errorf("%w: stalled at segment %d/%d", ErrTransferFailed, base, total)
			}
			backoff++
			ssthresh = cwnd / 2
			if ssthresh < 2 {
				ssthresh = 2
			}
			cwnd = 1
			dupAcks = 0
			inFR = false
			transmit(base, true)
			continue
		}

		if ack > base {
			timeouts = 0
			backoff = 0
			newly := float64(ack - base)
			if timedSeq >= 0 && int64(ack) > timedSeq {
				peer.ObserveRTT(clock.Now().Sub(timedAt))
				timedSeq = -1
			}
			base = ack
			dupAcks = 0
			switch {
			case inFR:
				// Fast recovery ends: deflate the inflated window.
				cwnd = ssthresh
				inFR = false
			case cwnd < ssthresh:
				// RFC 5681 §3.1: increase by at most SMSS per ACK, so a
				// long cumulative ACK cannot balloon the window past
				// what slow start would have reached ack by ack.
				cwnd++
				if cwnd > ssthresh {
					cwnd = ssthresh
				}
			default:
				cwnd += newly / cwnd // congestion avoidance
			}
			fill()
		} else if ack == base {
			dupAcks++
			if dupAcks == 3 {
				// Fast retransmit / fast recovery.
				ssthresh = cwnd / 2
				if ssthresh < 2 {
					ssthresh = 2
				}
				cwnd = ssthresh + 3
				inFR = true
				transmit(base, true)
			} else if dupAcks > 3 {
				cwnd++ // inflate during recovery
				fill()
			}
		}
	}
	return nil
}

// Receive assembles one stream identified by streamID from conn, acking
// cumulatively, and returns the payload.
func Receive(clock simtime.Clock, conn netsim.PacketConn, streamID uint64, timeout time.Duration) ([]byte, error) {
	var (
		got      = make(map[uint32][]byte)
		total    uint32
		haveMeta bool
		cum      uint32
	)
	deadline := clock.Now().Add(timeout)
	for {
		remain := deadline.Sub(clock.Now())
		if remain <= 0 {
			return nil, fmt.Errorf("tcpsim: receive timed out (%d/%d segments)", cum, total)
		}
		payload, src, ok := conn.RecvTimeout(remain)
		if !ok {
			return nil, fmt.Errorf("tcpsim: receive timed out (%d/%d segments)", cum, total)
		}
		if len(payload) < 19 || payload[0] != tagSeg {
			continue
		}
		if binary.BigEndian.Uint64(payload[1:]) != streamID {
			continue
		}
		seq := binary.BigEndian.Uint32(payload[9:])
		total = binary.BigEndian.Uint32(payload[13:])
		haveMeta = true
		n := int(binary.BigEndian.Uint16(payload[17:]))
		if len(payload) >= 19+n {
			if _, dup := got[seq]; !dup {
				got[seq] = append([]byte(nil), payload[19:19+n]...)
			}
		}
		for {
			if _, have := got[cum]; !have {
				break
			}
			cum++
		}
		ackBuf := make([]byte, 13)
		ackBuf[0] = tagAck
		binary.BigEndian.PutUint64(ackBuf[1:], streamID)
		binary.BigEndian.PutUint32(ackBuf[9:], cum)
		_ = conn.Send(src, ackBuf)

		if haveMeta && cum >= total {
			out := make([]byte, 0, int(total)*SegmentSize)
			for i := uint32(0); i < total; i++ {
				out = append(out, got[i]...)
			}
			// Linger (the role TIME_WAIT plays): keep re-acking
			// retransmitted segments for a while in case our final ack
			// was lost, so the sender can terminate. The connection is
			// dedicated to this stream, as in the benchmark's usage.
			finalTotal := total
			clock.Go(func() {
				deadline := clock.Now().Add(2 * time.Minute)
				for {
					remain := deadline.Sub(clock.Now())
					if remain <= 0 {
						return
					}
					payload, src, ok := conn.RecvTimeout(remain)
					if !ok {
						return
					}
					if len(payload) < 19 || payload[0] != tagSeg ||
						binary.BigEndian.Uint64(payload[1:]) != streamID {
						continue
					}
					ackBuf := make([]byte, 13)
					ackBuf[0] = tagAck
					binary.BigEndian.PutUint64(ackBuf[1:], streamID)
					binary.BigEndian.PutUint32(ackBuf[9:], finalTotal)
					_ = conn.Send(src, ackBuf)
				}
			})
			return out, nil
		}
	}
}
