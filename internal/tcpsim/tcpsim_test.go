package tcpsim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func runStream(t *testing.T, params netsim.LinkParams, size int, seed int64) time.Duration {
	t.Helper()
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, seed)
	net.SetDefaults(params)
	var elapsed time.Duration
	s.Run(func() {
		a := net.Host("a")
		b := net.Host("b")
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i*13 + 7)
		}
		done := simtime.NewQueue[error](s)
		start := s.Now()
		s.Go(func() { done.Put(Send(s, a, "b", 1, data)) })
		got, err := Receive(s, b, 1, 2*time.Hour)
		if err != nil {
			t.Fatalf("Receive: %v", err)
		}
		if sendErr, _ := done.Get(); sendErr != nil {
			t.Fatalf("Send: %v", sendErr)
		}
		elapsed = s.Now().Sub(start)
		if !bytes.Equal(got, data) {
			t.Errorf("stream corrupted: %d bytes", len(got))
		}
	})
	return elapsed
}

func TestStreamSmall(t *testing.T) {
	runStream(t, netsim.Ethernet.Params(), 100, 1)
}

func TestStreamZero(t *testing.T) {
	runStream(t, netsim.Ethernet.Params(), 0, 2)
}

func TestStreamMegabyteEthernet(t *testing.T) {
	elapsed := runStream(t, netsim.Ethernet.Params(), 1<<20, 3)
	// 1 MB at 10 Mb/s is ~0.84 s on the wire; slow start adds round trips.
	if elapsed > 5*time.Second {
		t.Errorf("1MB over Ethernet took %v", elapsed)
	}
}

func TestStreamModemNearLineRate(t *testing.T) {
	size := 64 << 10
	elapsed := runStream(t, netsim.Modem.Params(), size, 4)
	ideal := time.Duration(float64(size*8) / 9600 * float64(time.Second))
	if elapsed < ideal {
		t.Errorf("faster than line rate: %v < %v", elapsed, ideal)
	}
	if elapsed > ideal*3/2 {
		t.Errorf("modem stream %v exceeds 1.5× ideal %v", elapsed, ideal)
	}
}

func TestStreamSurvivesLoss(t *testing.T) {
	p := netsim.WaveLan.Params()
	p.LossRate = 0.05
	runStream(t, p, 256<<10, 5)
}

func TestStreamCongestionOnTightQueue(t *testing.T) {
	// A queue shorter than the bandwidth-delay product forces drops; Reno
	// must still complete via fast retransmit / timeouts.
	p := netsim.WaveLan.Params()
	p.QueueBytes = 8 << 10
	runStream(t, p, 128<<10, 6)
}

func TestSendFailsOnDeadLink(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 7)
	s.Run(func() {
		a := net.Host("a")
		net.Host("b")
		net.SetUp("a", "b", false)
		err := Send(s, a, "b", 1, make([]byte, 10_000))
		if !errors.Is(err, ErrTransferFailed) {
			t.Errorf("Send over dead link: %v", err)
		}
	})
}

func TestReceiveTimeout(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 8)
	s.Run(func() {
		b := net.Host("b")
		if _, err := Receive(s, b, 9, 5*time.Second); err == nil {
			t.Error("Receive with no sender succeeded")
		}
	})
}
