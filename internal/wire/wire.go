// Package wire defines the typed messages of the Coda client↔server
// protocol and their encoding. Every operation Venus performs against a
// server — attribute fetches, data fetches, connected-mode mutations, batch
// volume validation, reintegration, fragment shipping — and every call a
// server makes back to a client (callback breaks) is a struct here, carried
// as a gob-encoded body inside an rpc2 call.
//
// Message sizes are accounted by the network emulator from the actual
// encoded bytes, so protocol overheads (e.g. the ~100-byte status blocks of
// §4.4.1, the single-RPC batched volume validation of §4.2.1) are costed
// realistically in the experiments.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/delta"
	"repro/internal/rpc2"
)

// ---- Client → server requests ----

// GetVolume resolves a volume by name.
type GetVolume struct{ Name string }

// GetVolumeRep returns the volume description and its root directory
// status.
type GetVolumeRep struct {
	Info codafs.VolumeInfo
	Root codafs.Status
}

// ListVolumes enumerates all volumes on the server.
type ListVolumes struct{}

// ListVolumesRep lists volume descriptions.
type ListVolumesRep struct{ Infos []codafs.VolumeInfo }

// GetAttr fetches an object's status. If WantCallback is set the server
// establishes an object callback for the calling client.
type GetAttr struct {
	FID          codafs.FID
	WantCallback bool
}

// GetAttrRep returns the status.
type GetAttrRep struct{ Status codafs.Status }

// Fetch retrieves a whole object (status plus contents/entries/target).
type Fetch struct {
	FID          codafs.FID
	WantCallback bool
}

// FetchRep returns the object.
type FetchRep struct{ Object codafs.Object }

// StoreOp writes file contents in connected mode (write-through).
type StoreOp struct {
	FID         codafs.FID
	Data        []byte
	PrevVersion uint64
}

// SetAttrOp updates mode/modtime in connected mode.
type SetAttrOp struct {
	FID         codafs.FID
	Mode        uint32
	ModTime     time.Time
	PrevVersion uint64
}

// MakeObject creates a file, directory, or symlink in connected mode. The
// client chooses the FID from its preallocated space.
type MakeObject struct {
	Parent codafs.FID
	Name   string
	FID    codafs.FID
	Type   codafs.ObjType
	Target string
	Mode   uint32
	Owner  string
}

// MakeObjectRep returns the new object's and parent's statuses.
type MakeObjectRep struct {
	Status       codafs.Status
	ParentStatus codafs.Status
	VolStamp     uint64
}

// RemoveOp unlinks a file/symlink (or, with Rmdir set, an empty directory).
type RemoveOp struct {
	Parent codafs.FID
	Name   string
	FID    codafs.FID
	Rmdir  bool
}

// RenameOp moves an object between names/directories.
type RenameOp struct {
	Parent    codafs.FID
	Name      string
	NewParent codafs.FID
	NewName   string
	FID       codafs.FID
}

// LinkOp adds a hard link to an existing file.
type LinkOp struct {
	Parent codafs.FID
	Name   string
	FID    codafs.FID
}

// MutateRep is the common reply to connected-mode mutations.
type MutateRep struct {
	Status       codafs.Status // the object's (or for removes, parent's) new status
	ParentStatus codafs.Status
	VolStamp     uint64
}

// VolStampPair names one volume and the stamp the client holds for it.
type VolStampPair struct {
	ID    codafs.VolumeID
	Stamp uint64
}

// ValidateVolumes presents cached volume stamps for batch validation
// (§4.2.1: multiple volumes validated in a single RPC). The server grants a
// volume callback for each volume it reports valid.
type ValidateVolumes struct{ Volumes []VolStampPair }

// ValidateVolumesRep reports per-volume validity and current stamps.
type ValidateVolumesRep struct {
	Valid  []bool
	Stamps []uint64
}

// FIDVersion names one object and the version the client holds for it.
type FIDVersion struct {
	FID     codafs.FID
	Version uint64
}

// ValidateObjects validates a batch of individual cached objects — the
// original, object-granularity coherence scheme that Figure 8 compares
// volume callbacks against. The server grants object callbacks for the
// objects it reports valid.
type ValidateObjects struct{ Objects []FIDVersion }

// ValidateObjectsRep reports per-object validity; Statuses carries the
// current status for invalid (changed) objects so the client can refresh.
type ValidateObjectsRep struct {
	Valid    []bool
	Statuses []codafs.Status // indexed like Objects; zero FID if removed
}

// GetVolumeStamp obtains a volume's current stamp and establishes a volume
// callback (done at the end of a hoard walk, §4.2.2).
type GetVolumeStamp struct{ Volume codafs.VolumeID }

// GetVolumeStampRep returns the stamp.
type GetVolumeStampRep struct{ Stamp uint64 }

// Reintegrate replays a chunk of CML records atomically (§4.3.3). Records
// whose Data was shipped separately as fragments reference their transfer
// in Fragments (record index → fragment transfer ID).
type Reintegrate struct {
	Volume    codafs.VolumeID
	Records   []cml.Record
	Fragments map[int]uint64
	// Deltas carries rsync-style differences for store records whose
	// previous version the server holds (record index → delta); the
	// record's Data is then omitted. See internal/delta.
	Deltas map[int]delta.Delta
}

// RecordResult describes the fate of one reintegrated record.
type RecordResult struct {
	OK       bool
	Conflict bool
	// DeltaFailed: the store's delta did not apply against the server's
	// copy (base mismatch); the client should retry with full contents.
	DeltaFailed bool
	Msg         string
}

// ReintegrateRep reports the outcome. Applied is false if any record
// conflicted or failed, in which case no server state changed (atomicity).
type ReintegrateRep struct {
	Applied  bool
	Results  []RecordResult
	Statuses []codafs.Status // new statuses of every object touched (on success)
	VolStamp uint64
}

// PutFragment ships one piece of a large file ahead of reintegration
// (§4.3.5). The server holds fragments until the Reintegrate that
// references them; transfers are resumable after the last received byte.
type PutFragment struct {
	Transfer uint64
	Offset   int64
	Total    int64
	Data     []byte
}

// PutFragmentRep acknowledges contiguous receipt through Received bytes.
type PutFragmentRep struct{ Received int64 }

// ConnectClient registers the caller for callback-break delivery.
type ConnectClient struct{}

// ConnectClientRep acknowledges registration.
type ConnectClientRep struct{ ServerTime time.Time }

// ---- Server ↔ server replication ----

// LogEntry is one replicated WAL batch: the records one client commit
// appended to a volume's log, identified by its log sequence number and
// chained by a cumulative fingerprint over the exact journal payload
// bytes. Identical entry streams produce identical chains on every
// replica, so a chain match at LSN n proves byte-identical logs through n.
type LogEntry struct {
	LSN    uint64
	Chain  uint32 // cumulative CRC32C through this entry
	Client string // originating client address (dedup identity)
	Recs   []cml.Record
}

// ShipLog pushes one freshly committed log entry to a replica peer
// (primary-push half of log anti-entropy). PrevChain is the shipper's
// chain before the entry; the receiver applies only if it matches its
// own, which guarantees replicas never interleave divergent histories.
type ShipLog struct {
	Volume    codafs.VolumeID
	PrevChain uint32
	Entry     LogEntry
}

// ShipLogRep acknowledges a shipped entry. LSN is the receiver's log
// position after the call; NeedCatchUp reports a gap or chain mismatch —
// the receiver will repair itself by pulling the suffix via FetchLog.
type ShipLogRep struct {
	LSN         uint64
	NeedCatchUp bool
}

// FetchLog pulls the log suffix after AfterLSN from a peer (pull half of
// log anti-entropy, used by a restarted replica to catch up). Chain is
// the caller's cumulative fingerprint at AfterLSN; the peer refuses the
// fetch if it disagrees, which turns silent divergence into a loud error.
type FetchLog struct {
	Volume   codafs.VolumeID
	AfterLSN uint64
	Chain    uint32
}

// FetchLogRep returns up to a batch of entries following AfterLSN. LSN is
// the peer's current log position: the caller keeps fetching until it
// reaches it.
type FetchLogRep struct {
	Entries []LogEntry
	LSN     uint64
}

// ---- Server → client ----

// CallbackBreak invalidates object and/or volume callbacks at a client.
type CallbackBreak struct {
	FIDs    []codafs.FID
	Volumes []codafs.VolumeID
}

// CallbackBreakRep acknowledges the break.
type CallbackBreakRep struct{}

func init() {
	for _, v := range []any{
		GetVolume{}, GetVolumeRep{},
		ListVolumes{}, ListVolumesRep{},
		GetAttr{}, GetAttrRep{},
		Fetch{}, FetchRep{},
		StoreOp{}, SetAttrOp{}, MakeObject{}, MakeObjectRep{},
		RemoveOp{}, RenameOp{}, LinkOp{}, MutateRep{},
		ValidateVolumes{}, ValidateVolumesRep{},
		ValidateObjects{}, ValidateObjectsRep{},
		GetVolumeStamp{}, GetVolumeStampRep{},
		Reintegrate{}, ReintegrateRep{},
		PutFragment{}, PutFragmentRep{},
		ConnectClient{}, ConnectClientRep{},
		ShipLog{}, ShipLogRep{},
		FetchLog{}, FetchLogRep{},
		CallbackBreak{}, CallbackBreakRep{},
	} {
		gob.Register(v)
	}
}

// Encode serializes any registered message.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	iv := v
	if err := gob.NewEncoder(&buf).Encode(&iv); err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a message produced by Encode.
func Decode(b []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return v, nil
}

// Call performs a typed RPC: it encodes req, calls dst through n, and
// decodes the reply as Rep.
func Call[Rep any](n *rpc2.Node, dst string, req any, opts rpc2.CallOpts) (Rep, error) {
	var zero Rep
	body, err := Encode(req)
	if err != nil {
		return zero, err
	}
	repBytes, err := n.Call(dst, body, opts)
	if err != nil {
		return zero, err
	}
	v, err := Decode(repBytes)
	if err != nil {
		return zero, err
	}
	rep, ok := v.(Rep)
	if !ok {
		return zero, fmt.Errorf("wire: reply to %T is %T, want %T", req, v, zero)
	}
	return rep, nil
}
