package wire

import (
	"reflect"
	"testing"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/delta"
)

var sampleFID = codafs.FID{Volume: 3, Vnode: 14, Unique: 15}

// every message type, with representative payloads.
func sampleMessages() []any {
	return []any{
		GetVolume{Name: "usr"},
		GetVolumeRep{Info: codafs.VolumeInfo{ID: 3, Name: "usr", Stamp: 42}, Root: codafs.Status{FID: sampleFID}},
		ListVolumes{},
		ListVolumesRep{Infos: []codafs.VolumeInfo{{ID: 1, Name: "a"}}},
		GetAttr{FID: sampleFID, WantCallback: true},
		GetAttrRep{Status: codafs.Status{FID: sampleFID, Length: 1234}},
		Fetch{FID: sampleFID},
		FetchRep{Object: codafs.Object{
			Status:   codafs.Status{FID: sampleFID, Type: codafs.Directory},
			Children: map[string]codafs.FID{"x": sampleFID},
		}},
		StoreOp{FID: sampleFID, Data: []byte("contents"), PrevVersion: 7},
		SetAttrOp{FID: sampleFID, Mode: 0644},
		MakeObject{Parent: sampleFID, Name: "f", FID: sampleFID, Type: codafs.File},
		MakeObjectRep{Status: codafs.Status{FID: sampleFID}},
		RemoveOp{Parent: sampleFID, Name: "f", FID: sampleFID, Rmdir: true},
		RenameOp{Parent: sampleFID, Name: "a", NewParent: sampleFID, NewName: "b", FID: sampleFID},
		LinkOp{Parent: sampleFID, Name: "l", FID: sampleFID},
		MutateRep{Status: codafs.Status{FID: sampleFID}, VolStamp: 9},
		ValidateVolumes{Volumes: []VolStampPair{{ID: 3, Stamp: 42}}},
		ValidateVolumesRep{Valid: []bool{true}, Stamps: []uint64{42}},
		ValidateObjects{Objects: []FIDVersion{{FID: sampleFID, Version: 5}}},
		ValidateObjectsRep{Valid: []bool{false}, Statuses: []codafs.Status{{FID: sampleFID}}},
		GetVolumeStamp{Volume: 3},
		GetVolumeStampRep{Stamp: 43},
		Reintegrate{
			Volume:    3,
			Records:   []cml.Record{{Kind: cml.Store, FID: sampleFID, Data: []byte("d"), Length: 1}},
			Fragments: map[int]uint64{0: 9},
			Deltas:    map[int]delta.Delta{0: delta.Compute(delta.Sign([]byte("base"), 0), []byte("base2"))},
		},
		ReintegrateRep{Applied: true, Results: []RecordResult{{OK: true}}, VolStamp: 44},
		PutFragment{Transfer: 9, Offset: 0, Total: 10, Data: []byte("0123456789")},
		PutFragmentRep{Received: 10},
		ConnectClient{},
		ConnectClientRep{},
		CallbackBreak{FIDs: []codafs.FID{sampleFID}, Volumes: []codafs.VolumeID{3}},
		CallbackBreakRep{},
	}
}

func TestEncodeDecodeRoundTripAllTypes(t *testing.T) {
	for _, msg := range sampleMessages() {
		buf, err := Encode(msg)
		if err != nil {
			t.Fatalf("Encode(%T): %v", msg, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%T): %v", msg, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(msg) {
			t.Fatalf("round trip changed type: %T -> %T", msg, got)
		}
		if !reflect.DeepEqual(got, msg) {
			// gob normalizes empty maps/slices to nil; tolerate only
			// that by re-encoding and comparing bytes.
			buf2, err := Encode(got)
			if err != nil || len(buf2) != len(buf) {
				t.Errorf("%T: round trip not faithful:\n got %+v\nwant %+v", msg, got, msg)
			}
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob at all")); err == nil {
		t.Error("Decode accepted garbage")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("Decode accepted empty input")
	}
}

func TestStatusWireCostNearPaperFigure(t *testing.T) {
	// §4.4.1: "status information is only about 100 bytes long". Our
	// encoded GetAttr reply should be the same order of magnitude, so
	// miss-handling cost estimates in the simulator stay faithful.
	buf, err := Encode(GetAttrRep{Status: codafs.Status{
		FID: sampleFID, Type: codafs.File, Length: 123456, Version: 789,
		Mode: 0644, Owner: "hqb", Links: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 400 {
		t.Errorf("encoded status reply = %d bytes; paper's is ~100", len(buf))
	}
}

func TestValidationBatchScalesSubLinearly(t *testing.T) {
	// The point of batched validation (§4.2.1): per-volume wire cost must
	// be tens of bytes, far below one RPC each.
	small, _ := Encode(ValidateVolumes{Volumes: make([]VolStampPair, 1)})
	big, _ := Encode(ValidateVolumes{Volumes: make([]VolStampPair, 100)})
	perVolume := (len(big) - len(small)) / 99
	if perVolume > 40 {
		t.Errorf("per-volume validation cost = %d bytes, want ≤ 40", perVolume)
	}
}
