package codafs

import (
	"testing"
	"testing/quick"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in      string
		vol     string
		comps   []string
		wantErr bool
	}{
		{"/coda/usr/hqb/papers/s15.bib", "usr", []string{"hqb", "papers", "s15.bib"}, false},
		{"/coda/project", "project", nil, false},
		{"/coda/project/", "project", nil, false},
		{"/coda/a//b/../c", "a", []string{"c"}, false},
		{"/coda", "", nil, true},
		{"/tmp/x", "", nil, true},
		{"relative", "", nil, true},
	}
	for _, c := range cases {
		vol, comps, err := SplitPath(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("SplitPath(%q) err = %v, wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if vol != c.vol {
			t.Errorf("SplitPath(%q) vol = %q, want %q", c.in, vol, c.vol)
		}
		if len(comps) != len(c.comps) {
			t.Errorf("SplitPath(%q) comps = %v, want %v", c.in, comps, c.comps)
			continue
		}
		for i := range comps {
			if comps[i] != c.comps[i] {
				t.Errorf("SplitPath(%q) comps = %v, want %v", c.in, comps, c.comps)
				break
			}
		}
	}
}

func TestJoinSplitRoundTrip(t *testing.T) {
	f := func(volRaw string, compsRaw []string) bool {
		vol := sanitize(volRaw)
		if vol == "" {
			return true
		}
		var comps []string
		for _, c := range compsRaw {
			if s := sanitize(c); s != "" {
				comps = append(comps, s)
			}
		}
		p := JoinPath(vol, comps...)
		gotVol, gotComps, err := SplitPath(p)
		if err != nil || gotVol != vol || len(gotComps) != len(comps) {
			return false
		}
		for i := range comps {
			if gotComps[i] != comps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize maps arbitrary strings onto valid path components.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			out = append(out, r)
		}
	}
	if len(out) > 20 {
		out = out[:20]
	}
	return string(out)
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"file.c": true, "a": true, "": false, ".": false, "..": false, "a/b": false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestObjectClone(t *testing.T) {
	o := &Object{
		Status:   Status{FID: FID{1, 2, 3}, Type: Directory},
		Children: map[string]FID{"x": {1, 4, 5}},
	}
	c := o.Clone()
	c.Children["y"] = FID{1, 6, 7}
	if _, ok := o.Children["y"]; ok {
		t.Error("Clone shares Children map")
	}

	f := &Object{Status: Status{Type: File}, Data: []byte{1, 2, 3}}
	cf := f.Clone()
	cf.Data[0] = 99
	if f.Data[0] == 99 {
		t.Error("Clone shares Data slice")
	}
}

func TestChildNamesSorted(t *testing.T) {
	o := &Object{Children: map[string]FID{"c": {}, "a": {}, "b": {}}}
	names := o.ChildNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("ChildNames = %v", names)
	}
}

func TestFIDString(t *testing.T) {
	f := FID{Volume: 7, Vnode: 12, Unique: 99}
	if f.String() != "7.12.99" {
		t.Errorf("String = %q", f.String())
	}
	if f.IsZero() {
		t.Error("non-zero FID reported zero")
	}
	if !(FID{}).IsZero() {
		t.Error("zero FID not reported zero")
	}
}

func TestObjTypeString(t *testing.T) {
	if File.String() != "file" || Directory.String() != "directory" || Symlink.String() != "symlink" {
		t.Error("ObjType strings wrong")
	}
}
