// Package codafs defines the file-system object model shared by the Coda
// server and the Venus client cache: file identifiers, object status blocks,
// volumes, and path utilities.
//
// Terminology follows the paper: an "object" is a file, directory, or
// symbolic link; objects are grouped into volumes, each forming a partial
// subtree of the /coda name space; servers maintain version stamps on both
// individual objects and whole volumes (the two granularities of cache
// coherence from §4.2.1).
package codafs

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"time"
)

// VolumeID names a volume.
type VolumeID uint32

// FID uniquely identifies an object within the file system.
type FID struct {
	Volume VolumeID
	Vnode  uint64
	Unique uint64
}

// IsZero reports whether the FID is the null identifier.
func (f FID) IsZero() bool { return f == FID{} }

// String renders the FID in the traditional dotted triple form.
func (f FID) String() string {
	return fmt.Sprintf("%d.%d.%d", f.Volume, f.Vnode, f.Unique)
}

// ObjType distinguishes the three kinds of objects.
type ObjType uint8

// Object kinds.
const (
	File ObjType = iota + 1
	Directory
	Symlink
)

func (t ObjType) String() string {
	switch t {
	case File:
		return "file"
	case Directory:
		return "directory"
	case Symlink:
		return "symlink"
	default:
		return fmt.Sprintf("objtype(%d)", uint8(t))
	}
}

// Status is an object's metadata block. The paper notes status information
// is about 100 bytes, cheap to fetch even at modem speed (§4.4.1);
// StatusWireSize preserves that costing in the simulator.
type Status struct {
	FID     FID
	Type    ObjType
	Length  int64
	Version uint64 // object version stamp; bumped on every server update
	ModTime time.Time
	Mode    uint32
	Owner   string
	Links   uint32 // hard-link count (files and symlinks)
}

// StatusWireSize is the nominal on-the-wire size of a Status, in bytes.
const StatusWireSize = 100

// VolumeInfo is the client-visible description of a volume.
type VolumeInfo struct {
	ID    VolumeID
	Name  string
	Stamp uint64 // volume version stamp; bumped on every update to any object in the volume
}

// Object is the full representation of a file-system object: status plus
// the type-specific payload. The server store and the Venus cache both use
// it.
type Object struct {
	Status   Status
	Data     []byte         // file contents (Type == File)
	Children map[string]FID // directory entries (Type == Directory)
	Target   string         // symlink target (Type == Symlink)
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	c := &Object{Status: o.Status, Target: o.Target}
	if o.Data != nil {
		c.Data = append([]byte(nil), o.Data...)
	}
	if o.Children != nil {
		c.Children = make(map[string]FID, len(o.Children))
		for k, v := range o.Children {
			c.Children[k] = v
		}
	}
	return c
}

// ChildNames returns the directory's entry names in sorted order.
func (o *Object) ChildNames() []string {
	names := make([]string, 0, len(o.Children))
	for n := range o.Children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MountPrefix is the root under which all volumes appear.
const MountPrefix = "/coda"

// SplitPath cleans an absolute /coda path and returns the volume name and
// the per-volume component list. The volume root itself yields an empty
// component list.
func SplitPath(p string) (volume string, components []string, err error) {
	p = path.Clean(p)
	if !strings.HasPrefix(p, MountPrefix) {
		return "", nil, fmt.Errorf("codafs: path %q is outside %s", p, MountPrefix)
	}
	rest := strings.TrimPrefix(p, MountPrefix)
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		return "", nil, fmt.Errorf("codafs: path %q names no volume", p)
	}
	parts := strings.Split(rest, "/")
	return parts[0], parts[1:], nil
}

// JoinPath assembles an absolute /coda path from a volume name and
// components.
func JoinPath(volume string, components ...string) string {
	return path.Join(append([]string{MountPrefix, volume}, components...)...)
}

// ValidName reports whether name is usable as a directory entry.
func ValidName(name string) bool {
	return name != "" && name != "." && name != ".." && !strings.Contains(name, "/")
}
