// Package cml implements the Client Modify Log (CML): the persistent,
// per-volume log of updates a Venus performs while emulating or
// write-disconnected, together with the machinery of §4.3 — log
// optimizations, the aging window, the reintegration barrier, and adaptive
// chunk selection.
//
// Records are kept in temporal order, which implies precedence order, so
// any prefix is safe to replay at the server (§4.3.5). Before a record is
// appended, it is checked against the unfrozen suffix of the log for
// cancellations ("log optimizations"): a store overwrites an earlier store
// of the same file, a remove of an object created within the log annihilates
// the entire chain, and so on. The bytes these cancellations save are what
// Figure 4 and Figure 14 measure.
package cml

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/codafs"
)

// Kind enumerates CML record types.
type Kind uint8

// Record kinds, covering every mutating operation Venus logs.
const (
	Store Kind = iota + 1
	Create
	Mkdir
	MakeSymlink
	Link
	Remove
	Rmdir
	Rename
	SetAttr
)

func (k Kind) String() string {
	switch k {
	case Store:
		return "store"
	case Create:
		return "create"
	case Mkdir:
		return "mkdir"
	case MakeSymlink:
		return "symlink"
	case Link:
		return "link"
	case Remove:
		return "remove"
	case Rmdir:
		return "rmdir"
	case Rename:
		return "rename"
	case SetAttr:
		return "setattr"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// RecordOverhead approximates the fixed per-record cost, in bytes, both in
// the log and on the wire (the paper notes shipped records are somewhat
// larger; the difference is absorbed into RPC framing).
const RecordOverhead = 64

// Record is one logged update. Except for Store records, a record contains
// everything needed to replay the update at the server; for a Store, Data
// holds the file contents (the paper keeps them in the local file system;
// here they live with the record).
type Record struct {
	Seq  uint64
	Time time.Time // when logged; drives the aging window
	Kind Kind

	FID    codafs.FID // object created / stored / attributed / removed
	Parent codafs.FID // containing directory
	Name   string

	NewParent codafs.FID // rename: destination directory
	NewName   string     // rename: new name

	Target  string // symlink target
	Mode    uint32
	ModTime time.Time
	Owner   string

	Data   []byte // store: file contents (nil if shipped as fragments)
	Length int64  // store: file length

	// PrevVersion is the object version this update was applied against
	// on the client; the server compares it for conflict detection.
	PrevVersion uint64
	// PrevParentVersion is the containing directory's version, for
	// directory-op conflict checks.
	PrevParentVersion uint64
}

// Size returns the record's size in bytes as accounted in the CML and for
// chunk selection; Store records include their file data (§4.3.5).
func (r *Record) Size() int64 {
	return int64(RecordOverhead + len(r.Name) + len(r.NewName) + len(r.Target) + len(r.Data))
}

// CancelClass classifies which optimization rule eliminated a record,
// matching the cancellation taxonomy of §4.3.2.
type CancelClass string

// The cancellation classes applied by optimizeLocked.
const (
	// CancelStoreOverwrite: a store overrides an earlier store of the
	// same file.
	CancelStoreOverwrite CancelClass = "store_overwrite"
	// CancelSetAttrOverwrite: a setattr overrides an earlier setattr of
	// the same object.
	CancelSetAttrOverwrite CancelClass = "setattr_overwrite"
	// CancelIdentity: a remove annihilates an object whose whole
	// lifetime is inside the log (create+store+unlink).
	CancelIdentity CancelClass = "identity"
	// CancelRemoveMoot: a remove of a pre-existing object makes pending
	// stores and setattrs on it moot.
	CancelRemoveMoot CancelClass = "remove_moot"
)

// Log is the client modify log for one volume.
type Log struct {
	mu         sync.Mutex
	records    []*Record
	barrier    int // records[:barrier] are frozen for reintegration
	nextSeq    uint64
	savedBytes int64
	savedRecs  int64
	optimize   bool
	onCancel   func(class CancelClass, records int, bytes int64)
}

// NewLog returns an empty log with optimizations enabled.
func NewLog() *Log {
	return &Log{optimize: true}
}

// SetOptimize enables or disables log optimizations (the ablation knob).
func (l *Log) SetOptimize(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.optimize = on
}

// SetCancelObserver installs a callback invoked whenever optimization
// cancels records, with the rule that fired and the records/bytes it
// eliminated. The callback runs with the log's lock held: it must be
// cheap and must not call back into the Log (Venus uses it to bump
// per-class obs counters).
func (l *Log) SetCancelObserver(fn func(class CancelClass, records int, bytes int64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onCancel = fn
}

// Append adds r to the log at time now, first applying cancellation rules
// against the unfrozen suffix. It reports whether the record itself
// survived (a remove that annihilates an in-log creation is not appended).
func (l *Log) Append(r Record, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	r.Seq = l.nextSeq
	r.Time = now

	if l.optimize {
		if dropped := l.optimizeLocked(&r); dropped {
			return false
		}
	}
	l.records = append(l.records, &r)
	return true
}

// optimizeLocked applies the paper's cancellation rules. It may cancel
// earlier unfrozen records and reports whether the incoming record is
// itself annihilated.
func (l *Log) optimizeLocked(r *Record) bool {
	switch r.Kind {
	case Store:
		// A store overrides any earlier store of the same file.
		l.cancelLocked(CancelStoreOverwrite, func(o *Record) bool {
			return o.Kind == Store && o.FID == r.FID
		})
	case SetAttr:
		l.cancelLocked(CancelSetAttrOverwrite, func(o *Record) bool {
			return o.Kind == SetAttr && o.FID == r.FID
		})
	case Remove, Rmdir:
		createdHere := false
		renamed := false
		for _, o := range l.unfrozenLocked() {
			switch o.Kind {
			case Create, Mkdir, MakeSymlink:
				if o.FID == r.FID {
					createdHere = true
				}
			case Rename:
				if o.FID == r.FID {
					renamed = true
				}
			}
		}
		if createdHere && !renamed && !l.hasLiveChildrenLocked(r.FID) {
			// Identity cancellation: the object's whole lifetime is
			// inside the log; everything about it — including this
			// remove — vanishes (the paper's create+store+unlink
			// example).
			l.cancelLocked(CancelIdentity, func(o *Record) bool { return o.FID == r.FID })
			l.savedBytes += r.Size()
			l.savedRecs++
			if l.onCancel != nil {
				l.onCancel(CancelIdentity, 1, r.Size())
			}
			return true
		}
		// The object predates the log: pending stores and setattrs on
		// it are moot once it is removed.
		if r.Kind == Remove {
			l.cancelLocked(CancelRemoveMoot, func(o *Record) bool {
				return (o.Kind == Store || o.Kind == SetAttr) && o.FID == r.FID
			})
		}
	}
	return false
}

// hasLiveChildrenLocked reports whether any unfrozen record creates or
// moves an object into directory dir that has not since been cancelled.
func (l *Log) hasLiveChildrenLocked(dir codafs.FID) bool {
	for _, o := range l.unfrozenLocked() {
		switch o.Kind {
		case Create, Mkdir, MakeSymlink, Link:
			if o.Parent == dir {
				return true
			}
		case Rename:
			if o.NewParent == dir {
				return true
			}
		}
	}
	return false
}

func (l *Log) unfrozenLocked() []*Record {
	return l.records[l.barrier:]
}

// cancelLocked removes unfrozen records matching pred, crediting savings
// to the given cancellation class.
func (l *Log) cancelLocked(class CancelClass, pred func(*Record) bool) {
	kept := l.records[:l.barrier]
	var recs int
	var bytes int64
	for _, o := range l.records[l.barrier:] {
		if pred(o) {
			recs++
			bytes += o.Size()
			continue
		}
		kept = append(kept, o)
	}
	l.records = kept
	if recs > 0 {
		l.savedBytes += bytes
		l.savedRecs += int64(recs)
		if l.onCancel != nil {
			l.onCancel(class, recs, bytes)
		}
	}
}

// Len returns the number of records in the log.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Bytes returns the log's total size, including store data.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, r := range l.records {
		n += r.Size()
	}
	return n
}

// SavedBytes returns the cumulative bytes eliminated by optimizations.
func (l *Log) SavedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.savedBytes
}

// SavedRecords returns the cumulative count of records eliminated.
func (l *Log) SavedRecords() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.savedRecs
}

// Records returns a snapshot of the log in temporal order.
func (l *Log) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Record(nil), l.records...)
}

// EligibleBytes reports how much of the log is older than the aging window
// age at time now, i.e. ready for trickle reintegration.
func (l *Log) EligibleBytes(age time.Duration, now time.Time) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, r := range l.records {
		if now.Sub(r.Time) < age {
			break
		}
		n += r.Size()
	}
	return n
}

// OldestAge returns the age of the log head at now, or 0 if empty.
func (l *Log) OldestAge(now time.Time) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return 0
	}
	return now.Sub(l.records[0].Time)
}

// BeginReintegration selects the chunk for one reintegration attempt: the
// maximal prefix of records older than age whose sizes sum to at most
// chunkBytes — always at least one record, even if it alone exceeds the
// chunk size (that record is then fragmented by the caller, §4.3.5). The
// reintegration barrier is placed after the chunk, freezing it against
// optimization. It returns nil if no record is old enough or a
// reintegration is already in progress.
func (l *Log) BeginReintegration(age time.Duration, chunkBytes int64, now time.Time) []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.barrier > 0 || len(l.records) == 0 {
		return nil
	}
	var chunk []*Record
	var sum int64
	for _, r := range l.records {
		if now.Sub(r.Time) < age {
			break
		}
		if len(chunk) > 0 && sum+r.Size() > chunkBytes {
			break
		}
		chunk = append(chunk, r)
		sum += r.Size()
	}
	if len(chunk) == 0 {
		return nil
	}
	l.barrier = len(chunk)
	return append([]*Record(nil), chunk...)
}

// BeginSubtreeReintegration implements the refinement §4.3.5 leaves as
// future work: reintegrating only the records that affect a given set of
// objects (a directory subtree), without waiting for unrelated updates.
// member selects the directly-affected records; the returned chunk is their
// precedence closure — every earlier record a selected record depends on
// (creation of its object, of its containing directories, or any earlier
// operation on the same object or the same directory entry) is included, so
// the server never sees a record before its antecedents. The records are
// returned in temporal order (a subsequence of the log), the barrier is
// placed after the last of them, and the caller finishes with
// CommitSubtree (on success) or AbortReintegration.
func (l *Log) BeginSubtreeReintegration(member func(*Record) bool) []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.barrier > 0 || len(l.records) == 0 {
		return nil
	}
	needed := make([]bool, len(l.records))
	any := false
	for i, r := range l.records {
		if member(r) {
			needed[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	// Precedence closure to a fix point: an earlier record that created
	// or mutated any object a needed record names is an antecedent, and
	// its own antecedents are needed transitively.
	for changed := true; changed; {
		changed = false
		for i := len(l.records) - 1; i >= 0; i-- {
			if !needed[i] {
				continue
			}
			for j := 0; j < i; j++ {
				if !needed[j] && recordsRelated(l.records[j], l.records[i]) {
					needed[j] = true
					changed = true
				}
			}
		}
	}

	var chunk []*Record
	last := 0
	for i, r := range l.records {
		if needed[i] {
			chunk = append(chunk, r)
			last = i
		}
	}
	l.barrier = last + 1
	return append([]*Record(nil), chunk...)
}

// recordsRelated reports whether earlier record s is a precedence
// antecedent of later record r.
func recordsRelated(s, r *Record) bool {
	// Objects r names.
	names := func(rec *Record) []codafs.FID {
		out := []codafs.FID{rec.FID}
		if !rec.Parent.IsZero() {
			out = append(out, rec.Parent)
		}
		if !rec.NewParent.IsZero() {
			out = append(out, rec.NewParent)
		}
		return out
	}
	for _, a := range names(r) {
		for _, b := range names(s) {
			if a == b {
				return true
			}
		}
	}
	return false
}

// CommitSubtree removes the given records (by sequence number) after a
// successful subtree reintegration and lifts the barrier; the unrelated
// records that were interleaved with them remain.
func (l *Log) CommitSubtree(seqs map[uint64]bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.barrier = 0
	kept := l.records[:0]
	for _, r := range l.records {
		if !seqs[r.Seq] {
			kept = append(kept, r)
		}
	}
	l.records = kept
}

// Reintegrating reports whether a barrier is in place.
func (l *Log) Reintegrating() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.barrier > 0
}

// CommitReintegration removes the barrier and every record to its left
// (successful reintegration, §4.3.3).
func (l *Log) CommitReintegration() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append([]*Record(nil), l.records[l.barrier:]...)
	l.barrier = 0
}

// Remove deletes the records with the given sequence numbers (Venus drops
// records the server reported as conflicts, surfacing them to the user
// instead of retrying them forever). It may remove frozen records, so it
// must only be called while no reintegration is in flight. It returns how
// many records were removed.
func (l *Log) Remove(seqs map[uint64]bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.barrier > 0 {
		return 0
	}
	kept := l.records[:0]
	removed := 0
	for _, r := range l.records {
		if seqs[r.Seq] {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	l.records = kept
	return removed
}

// AbortReintegration removes the barrier after a failed attempt. The whole
// log becomes eligible for optimization again: records rendered superfluous
// by updates logged during the attempt are cancelled now (§4.3.3).
func (l *Log) AbortReintegration() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.barrier == 0 {
		return
	}
	l.barrier = 0
	if !l.optimize {
		return
	}
	// Re-run optimization by replaying the log into itself: append each
	// record in order, letting the standard rules fire across the now
	// unfrozen prefix. Seq and Time are preserved.
	old := l.records
	l.records = nil
	for _, r := range old {
		if !l.optimizeLocked(r) {
			l.records = append(l.records, r)
		}
	}
}

// logImage is the persisted form of a Log.
type logImage struct {
	Records    []*Record
	NextSeq    uint64
	SavedBytes int64
	SavedRecs  int64
	Optimize   bool
}

// Save persists the log (local persistence is what lets trickle
// reintegration defer propagation for hours, §4.3.1). A log is saved
// without its barrier: an interrupted reintegration is simply retried.
func (l *Log) Save(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return gob.NewEncoder(w).Encode(logImage{
		Records:    l.records,
		NextSeq:    l.nextSeq,
		SavedBytes: l.savedBytes,
		SavedRecs:  l.savedRecs,
		Optimize:   l.optimize,
	})
}

// Load restores a log persisted by Save. Truncated or corrupted input
// yields an error, never a panic: a decoder panic on a mangled stream is
// converted, so a half-written state file degrades to a load failure the
// caller can handle.
func Load(r io.Reader) (log *Log, err error) {
	defer func() {
		if p := recover(); p != nil {
			log = nil
			err = fmt.Errorf("cml: load: corrupted log image: %v", p)
		}
	}()
	var img logImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("cml: load: %w", err)
	}
	return &Log{
		records:    img.Records,
		nextSeq:    img.NextSeq,
		savedBytes: img.SavedBytes,
		savedRecs:  img.SavedRecs,
		optimize:   img.Optimize,
	}, nil
}
