package cml

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSubtreeSelectionBasic(t *testing.T) {
	l := NewLog()
	sub := fid(10)   // the subtree directory (pre-existing)
	other := fid(20) // unrelated directory
	l.Append(Record{Kind: Create, FID: fid(11), Parent: sub, Name: "in-sub"}, t0)
	l.Append(Record{Kind: Create, FID: fid(21), Parent: other, Name: "elsewhere"}, t0)
	l.Append(storeRec(fid(11), 100), t0)

	chunk := l.BeginSubtreeReintegration(func(r *Record) bool {
		return r.FID == fid(11) || r.Parent == sub
	})
	if len(chunk) != 2 {
		t.Fatalf("chunk = %d records, want 2 (create + store)", len(chunk))
	}
	seqs := map[uint64]bool{chunk[0].Seq: true, chunk[1].Seq: true}
	l.CommitSubtree(seqs)
	if l.Len() != 1 {
		t.Fatalf("log after commit = %d, want 1 (the unrelated create)", l.Len())
	}
	if l.Records()[0].Name != "elsewhere" {
		t.Error("wrong record survived")
	}
}

func TestSubtreePrecedenceClosure(t *testing.T) {
	// mkdir d; create d/f; store d/f — selecting only the store must pull
	// in the create and the mkdir (its antecedents).
	l := NewLog()
	d, f := fid(5), fid(6)
	l.Append(Record{Kind: Mkdir, FID: d, Parent: dirFID, Name: "d"}, t0)
	l.Append(Record{Kind: Create, FID: f, Parent: d, Name: "f"}, t0)
	l.Append(storeRec(f, 500), t0)

	chunk := l.BeginSubtreeReintegration(func(r *Record) bool {
		return r.Kind == Store && r.FID == f
	})
	if len(chunk) != 3 {
		t.Fatalf("closure = %d records, want 3 (mkdir, create, store)", len(chunk))
	}
	if chunk[0].Kind != Mkdir || chunk[1].Kind != Create || chunk[2].Kind != Store {
		t.Errorf("closure order wrong: %v %v %v", chunk[0].Kind, chunk[1].Kind, chunk[2].Kind)
	}
}

func TestSubtreeRenameChainsAntecedents(t *testing.T) {
	// create a/x; rename a/x -> b/y; store (fid). Selecting the store must
	// include the rename and the create.
	l := NewLog()
	a, b, x := fid(7), fid(8), fid(9)
	l.Append(Record{Kind: Create, FID: x, Parent: a, Name: "x"}, t0)
	l.Append(Record{Kind: Rename, FID: x, Parent: a, Name: "x", NewParent: b, NewName: "y"}, t0)
	l.Append(Record{Kind: Store, FID: x, Parent: b, Name: "y", Data: make([]byte, 10), Length: 10}, t0)
	chunk := l.BeginSubtreeReintegration(func(r *Record) bool {
		return r.Kind == Store && r.FID == x
	})
	if len(chunk) != 3 {
		t.Fatalf("closure = %d records, want 3", len(chunk))
	}
}

func TestSubtreeBarrierFreezesAndAborts(t *testing.T) {
	l := NewLog()
	f := fid(3)
	l.Append(storeRec(f, 100), t0)
	chunk := l.BeginSubtreeReintegration(func(r *Record) bool { return r.FID == f })
	if chunk == nil {
		t.Fatal("no chunk")
	}
	if !l.Reintegrating() {
		t.Error("no barrier during subtree reintegration")
	}
	if c2 := l.BeginSubtreeReintegration(func(r *Record) bool { return true }); c2 != nil {
		t.Error("concurrent subtree reintegration allowed")
	}
	l.AbortReintegration()
	if l.Reintegrating() || l.Len() != 1 {
		t.Error("abort did not restore the log")
	}
}

func TestSubtreeNoMatches(t *testing.T) {
	l := NewLog()
	l.Append(storeRec(fid(3), 100), t0)
	if chunk := l.BeginSubtreeReintegration(func(r *Record) bool { return false }); chunk != nil {
		t.Error("chunk for empty selection")
	}
	if l.Reintegrating() {
		t.Error("barrier placed for empty selection")
	}
}

// Property: the subtree chunk is always a temporally-ordered subsequence
// closed under the antecedent relation — no selected record has an
// unselected earlier record naming a common object.
func TestSubtreeClosureProperty(t *testing.T) {
	type op struct {
		Kind   uint8
		File   uint8
		Parent uint8
	}
	f := func(ops []op, pick uint8) bool {
		l := NewLog()
		l.SetOptimize(false) // keep every record so the property is pure
		now := t0
		for _, o := range ops {
			now = now.Add(time.Second)
			kind := []Kind{Create, Store, SetAttr, Remove}[o.Kind%4]
			l.Append(Record{
				Kind: kind, FID: fid(uint64(o.File%8) + 2),
				Parent: fid(uint64(o.Parent%4) + 50), Name: "n",
			}, now)
		}
		target := fid(uint64(pick%8) + 2)
		chunk := l.BeginSubtreeReintegration(func(r *Record) bool { return r.FID == target })
		if chunk == nil {
			return true
		}
		selected := make(map[uint64]bool)
		for _, r := range chunk {
			selected[r.Seq] = true
		}
		// Temporal order within the chunk.
		for i := 1; i < len(chunk); i++ {
			if chunk[i].Seq <= chunk[i-1].Seq {
				return false
			}
		}
		// Closure: for every selected record, every earlier related
		// record is selected too.
		all := l.Records()
		for i, r := range all {
			if !selected[r.Seq] {
				continue
			}
			for j := 0; j < i; j++ {
				if !selected[all[j].Seq] && recordsRelated(all[j], r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
