package cml

import (
	"testing"
	"time"
)

func BenchmarkAppendNoCancel(b *testing.B) {
	l := NewLog()
	now := time.Date(1995, 7, 1, 9, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(Record{Kind: Create, FID: fid(uint64(i) + 2), Parent: dirFID, Name: "f"}, now)
		if l.Len() > 4096 {
			b.StopTimer()
			l.BeginReintegration(0, 1<<62, now.Add(time.Hour))
			l.CommitReintegration()
			b.StartTimer()
		}
	}
}

func BenchmarkAppendWithCancellation(b *testing.B) {
	l := NewLog()
	now := time.Date(1995, 7, 1, 9, 0, 0, 0, time.UTC)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Every append cancels the previous store of the same file.
		l.Append(Record{Kind: Store, FID: fid(2), Parent: dirFID, Name: "f", Data: data, Length: 4096}, now)
	}
}

func BenchmarkChunkSelection(b *testing.B) {
	l := NewLog()
	now := time.Date(1995, 7, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 2048; i++ {
		l.Append(Record{Kind: Store, FID: fid(uint64(i) + 2), Parent: dirFID, Name: "f",
			Data: make([]byte, 1024), Length: 1024}, now)
	}
	later := now.Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if chunk := l.BeginReintegration(time.Minute, 36<<10, later); chunk != nil {
			l.AbortReintegration()
		}
	}
}

func BenchmarkSubtreeClosure(b *testing.B) {
	l := NewLog()
	l.SetOptimize(false)
	now := time.Date(1995, 7, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 512; i++ {
		l.Append(Record{Kind: Store, FID: fid(uint64(i%16) + 2), Parent: fid(uint64(i%4) + 50), Name: "f",
			Data: make([]byte, 256), Length: 256}, now)
	}
	target := fid(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if chunk := l.BeginSubtreeReintegration(func(r *Record) bool { return r.FID == target }); chunk != nil {
			l.AbortReintegration()
		}
	}
}
