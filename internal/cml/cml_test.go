package cml

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/codafs"
)

var t0 = time.Date(1995, 7, 1, 9, 0, 0, 0, time.UTC)

func fid(vnode uint64) codafs.FID {
	return codafs.FID{Volume: 1, Vnode: vnode, Unique: vnode}
}

var dirFID = fid(1)

func storeRec(f codafs.FID, n int) Record {
	return Record{Kind: Store, FID: f, Parent: dirFID, Name: "f", Data: bytes.Repeat([]byte("d"), n), Length: int64(n)}
}

func TestAppendBasic(t *testing.T) {
	l := NewLog()
	if !l.Append(Record{Kind: Create, FID: fid(2), Parent: dirFID, Name: "a"}, t0) {
		t.Fatal("append dropped")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	recs := l.Records()
	if recs[0].Seq != 1 || !recs[0].Time.Equal(t0) {
		t.Errorf("record stamps: seq=%d time=%v", recs[0].Seq, recs[0].Time)
	}
}

func TestStoreOverwritesStore(t *testing.T) {
	l := NewLog()
	l.Append(storeRec(fid(2), 1000), t0)
	l.Append(storeRec(fid(2), 500), t0.Add(time.Minute))
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (older store cancelled)", l.Len())
	}
	if got := l.Records()[0].Length; got != 500 {
		t.Errorf("surviving store length = %d, want 500", got)
	}
	if l.SavedBytes() < 1000 {
		t.Errorf("SavedBytes = %d, want ≥ 1000", l.SavedBytes())
	}
	// A store of a different file must not cancel.
	l.Append(storeRec(fid(3), 100), t0.Add(2*time.Minute))
	if l.Len() != 2 {
		t.Errorf("unrelated store cancelled something: Len=%d", l.Len())
	}
}

func TestCreateStoreUnlinkAllEliminated(t *testing.T) {
	// The paper's canonical example (§4.3.3): create + store + unlink
	// leaves nothing.
	l := NewLog()
	f := fid(2)
	l.Append(Record{Kind: Create, FID: f, Parent: dirFID, Name: "tmp"}, t0)
	l.Append(storeRec(f, 4096), t0.Add(time.Second))
	survived := l.Append(Record{Kind: Remove, FID: f, Parent: dirFID, Name: "tmp"}, t0.Add(2*time.Second))
	if survived {
		t.Error("remove of in-log creation survived")
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0", l.Len())
	}
	if l.SavedBytes() < 4096 {
		t.Errorf("SavedBytes = %d, want ≥ 4096 (the store data)", l.SavedBytes())
	}
	if l.SavedRecords() != 3 {
		t.Errorf("SavedRecords = %d, want 3", l.SavedRecords())
	}
}

func TestRemoveOfPreexistingFileCancelsStores(t *testing.T) {
	l := NewLog()
	f := fid(2)
	l.Append(storeRec(f, 2048), t0)
	l.Append(Record{Kind: SetAttr, FID: f, Mode: 0644}, t0)
	survived := l.Append(Record{Kind: Remove, FID: f, Parent: dirFID, Name: "f"}, t0.Add(time.Second))
	if !survived {
		t.Error("remove of pre-existing file was dropped")
	}
	recs := l.Records()
	if len(recs) != 1 || recs[0].Kind != Remove {
		t.Fatalf("log = %d records, want just the remove", len(recs))
	}
}

func TestSetAttrOverridesSetAttr(t *testing.T) {
	l := NewLog()
	f := fid(2)
	l.Append(Record{Kind: SetAttr, FID: f, Mode: 0600}, t0)
	l.Append(Record{Kind: SetAttr, FID: f, Mode: 0644}, t0)
	if l.Len() != 1 || l.Records()[0].Mode != 0644 {
		t.Error("setattr did not override earlier setattr")
	}
}

func TestRmdirCancelsMkdir(t *testing.T) {
	l := NewLog()
	d := fid(5)
	l.Append(Record{Kind: Mkdir, FID: d, Parent: dirFID, Name: "sub"}, t0)
	survived := l.Append(Record{Kind: Rmdir, FID: d, Parent: dirFID, Name: "sub"}, t0)
	if survived || l.Len() != 0 {
		t.Errorf("mkdir+rmdir left %d records", l.Len())
	}
}

func TestRmdirWithLiveChildrenNotCancelled(t *testing.T) {
	l := NewLog()
	d := fid(5)
	l.Append(Record{Kind: Mkdir, FID: d, Parent: dirFID, Name: "sub"}, t0)
	l.Append(Record{Kind: Create, FID: fid(6), Parent: d, Name: "inner"}, t0)
	// Venus would never issue rmdir on a non-empty directory; but if the
	// inner create is still live, identity cancellation must not fire.
	l.Append(Record{Kind: Rmdir, FID: d, Parent: dirFID, Name: "sub"}, t0)
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3 (no unsafe cancellation)", l.Len())
	}
}

func TestMkdirCreateRemoveRmdirChainEliminated(t *testing.T) {
	l := NewLog()
	d, f := fid(5), fid(6)
	l.Append(Record{Kind: Mkdir, FID: d, Parent: dirFID, Name: "sub"}, t0)
	l.Append(Record{Kind: Create, FID: f, Parent: d, Name: "x"}, t0)
	l.Append(storeRec(f, 100), t0)
	l.Append(Record{Kind: Remove, FID: f, Parent: d, Name: "x"}, t0)
	l.Append(Record{Kind: Rmdir, FID: d, Parent: dirFID, Name: "sub"}, t0)
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0 after whole subtree lifetime in log", l.Len())
	}
}

func TestRenamedObjectNotIdentityCancelled(t *testing.T) {
	l := NewLog()
	f := fid(2)
	l.Append(Record{Kind: Create, FID: f, Parent: dirFID, Name: "a"}, t0)
	l.Append(Record{Kind: Rename, FID: f, Parent: dirFID, Name: "a", NewParent: dirFID, NewName: "b"}, t0)
	l.Append(Record{Kind: Remove, FID: f, Parent: dirFID, Name: "b"}, t0)
	// Conservative rule: renames block identity cancellation.
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
}

func TestOptimizeDisabled(t *testing.T) {
	l := NewLog()
	l.SetOptimize(false)
	f := fid(2)
	l.Append(Record{Kind: Create, FID: f, Parent: dirFID, Name: "tmp"}, t0)
	l.Append(storeRec(f, 100), t0)
	l.Append(Record{Kind: Remove, FID: f, Parent: dirFID, Name: "tmp"}, t0)
	if l.Len() != 3 {
		t.Errorf("Len = %d with optimizations off, want 3", l.Len())
	}
	if l.SavedBytes() != 0 {
		t.Error("savings recorded with optimizations off")
	}
}

func TestBeginReintegrationAging(t *testing.T) {
	l := NewLog()
	l.Append(storeRec(fid(2), 100), t0)
	l.Append(storeRec(fid(3), 100), t0.Add(5*time.Minute))
	now := t0.Add(10 * time.Minute)
	// A = 10 min: only the first record is old enough.
	chunk := l.BeginReintegration(10*time.Minute, 1<<30, now)
	if len(chunk) != 1 || chunk[0].FID != fid(2) {
		t.Fatalf("chunk = %d records", len(chunk))
	}
	l.CommitReintegration()
	if l.Len() != 1 {
		t.Errorf("Len after commit = %d, want 1", l.Len())
	}
}

func TestBeginReintegrationNothingEligible(t *testing.T) {
	l := NewLog()
	l.Append(storeRec(fid(2), 100), t0)
	if chunk := l.BeginReintegration(10*time.Minute, 1<<30, t0.Add(time.Minute)); chunk != nil {
		t.Errorf("chunk = %v, want nil (too young)", chunk)
	}
	if l.Reintegrating() {
		t.Error("barrier placed with empty chunk")
	}
}

func TestChunkSizeBound(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(storeRec(fid(uint64(2+i)), 1000), t0)
	}
	now := t0.Add(time.Hour)
	chunk := l.BeginReintegration(time.Minute, 3000, now)
	// Each record is ~1070 bytes; two fit under 3000.
	if len(chunk) != 2 {
		t.Fatalf("chunk = %d records, want 2", len(chunk))
	}
}

func TestChunkAlwaysAtLeastOneRecord(t *testing.T) {
	l := NewLog()
	l.Append(storeRec(fid(2), 1<<20), t0) // 1 MB store
	chunk := l.BeginReintegration(time.Minute, 1000, t0.Add(time.Hour))
	if len(chunk) != 1 {
		t.Fatalf("oversized single record not selected: chunk=%d", len(chunk))
	}
}

func TestBarrierFreezesPrefix(t *testing.T) {
	l := NewLog()
	f := fid(2)
	l.Append(storeRec(f, 1000), t0)
	chunk := l.BeginReintegration(time.Minute, 1<<30, t0.Add(time.Hour))
	if len(chunk) != 1 {
		t.Fatal("no chunk")
	}
	// A new store of the same file during reintegration must NOT cancel
	// the frozen record (Figure 3).
	l.Append(storeRec(f, 500), t0.Add(time.Hour))
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (frozen record protected)", l.Len())
	}
	// Concurrent reintegration attempt is refused.
	if c2 := l.BeginReintegration(time.Minute, 1<<30, t0.Add(2*time.Hour)); c2 != nil {
		t.Error("second BeginReintegration succeeded during first")
	}
	l.CommitReintegration()
	if l.Len() != 1 || l.Records()[0].Length != 500 {
		t.Error("commit removed the wrong records")
	}
}

func TestAbortReoptimizes(t *testing.T) {
	l := NewLog()
	f := fid(2)
	l.Append(storeRec(f, 1000), t0)
	l.BeginReintegration(time.Minute, 1<<30, t0.Add(time.Hour))
	l.Append(storeRec(f, 500), t0.Add(time.Hour)) // would cancel but frozen
	l.AbortReintegration()
	// After abort the whole log is optimizable again: the old store must
	// now be cancelled by the newer one (§4.3.3).
	if l.Len() != 1 {
		t.Fatalf("Len after abort = %d, want 1", l.Len())
	}
	if got := l.Records()[0].Length; got != 500 {
		t.Errorf("surviving store length = %d, want 500", got)
	}
}

func TestEligibleBytesAndOldestAge(t *testing.T) {
	l := NewLog()
	l.Append(storeRec(fid(2), 936), t0) // Size = 64 + 1 + 935... compute below
	sz := l.Records()[0].Size()
	l.Append(storeRec(fid(3), 100), t0.Add(time.Hour))
	now := t0.Add(90 * time.Minute)
	if got := l.EligibleBytes(time.Hour, now); got != sz {
		t.Errorf("EligibleBytes = %d, want %d", got, sz)
	}
	if got := l.OldestAge(now); got != 90*time.Minute {
		t.Errorf("OldestAge = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := NewLog()
	l.Append(Record{Kind: Create, FID: fid(2), Parent: dirFID, Name: "a"}, t0)
	l.Append(storeRec(fid(2), 300), t0.Add(time.Second))
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() || got.Bytes() != l.Bytes() || got.SavedBytes() != l.SavedBytes() {
		t.Error("loaded log differs")
	}
	// Sequence numbers continue from where they left off.
	got.Append(storeRec(fid(3), 10), t0.Add(time.Minute))
	recs := got.Records()
	if recs[len(recs)-1].Seq <= recs[len(recs)-2].Seq {
		t.Error("sequence numbers not preserved across save/load")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a log"))); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Store: "store", Create: "create", Mkdir: "mkdir", MakeSymlink: "symlink",
		Link: "link", Remove: "remove", Rmdir: "rmdir", Rename: "rename", SetAttr: "setattr",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// Property: log size conservation — total appended bytes equals surviving
// bytes plus saved bytes, for any interleaving of stores and removes.
func TestSavingsConservationProperty(t *testing.T) {
	type op struct {
		File   uint8
		Size   uint16
		Remove bool
	}
	f := func(ops []op) bool {
		l := NewLog()
		now := t0
		var appended int64
		live := map[uint64]bool{}
		for _, o := range ops {
			now = now.Add(time.Second)
			vn := uint64(o.File%8) + 2
			if o.Remove {
				if !live[vn] {
					continue
				}
				r := Record{Kind: Remove, FID: fid(vn), Parent: dirFID, Name: "f"}
				appended += r.Size()
				l.Append(r, now)
				live[vn] = false
			} else {
				var r Record
				if !live[vn] {
					r = Record{Kind: Create, FID: fid(vn), Parent: dirFID, Name: "f"}
					appended += r.Size()
					l.Append(r, now)
					live[vn] = true
					now = now.Add(time.Second)
				}
				r = storeRec(fid(vn), int(o.Size))
				appended += r.Size()
				l.Append(r, now)
			}
		}
		return l.Bytes()+l.SavedBytes() == appended
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: chunks never split temporal order — the selected chunk is
// always exactly a prefix of the log.
func TestChunkPrefixProperty(t *testing.T) {
	f := func(sizes []uint16, chunkKB uint8) bool {
		l := NewLog()
		now := t0
		for i, sz := range sizes {
			l.Append(storeRec(fid(uint64(i)+2), int(sz)), now)
			now = now.Add(time.Second)
		}
		before := l.Records()
		chunk := l.BeginReintegration(0, int64(chunkKB)*1024+1, now)
		if len(before) == 0 {
			return chunk == nil
		}
		if len(chunk) == 0 {
			return false
		}
		for i := range chunk {
			if chunk[i].Seq != before[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLoadCorruptedNeverPanics(t *testing.T) {
	l := NewLog()
	l.Append(Record{Kind: Create, FID: fid(2), Parent: dirFID, Name: "a"}, t0)
	l.Append(storeRec(fid(2), 300), t0.Add(time.Second))
	l.Append(Record{Kind: Rename, FID: fid(2), Parent: dirFID, Name: "a", NewName: "b"}, t0.Add(time.Minute))
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Every strict prefix must fail cleanly: the image is one gob message,
	// so a truncated stream can never decode to a valid log.
	for _, n := range []int{0, 1, 4, len(img) / 4, len(img) / 2, len(img) - 1} {
		if _, err := Load(bytes.NewReader(img[:n])); err == nil {
			t.Errorf("Load accepted a %d/%d-byte prefix", n, len(img))
		}
	}
	// Flipped bytes must never panic (gob panics internally on some
	// corruptions; Load converts that to an error). A benign data-byte
	// flip that still decodes is acceptable.
	for off := 0; off < len(img); off++ {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0xff
		_, _ = Load(bytes.NewReader(bad))
	}
}

func FuzzLoad(f *testing.F) {
	l := NewLog()
	l.Append(Record{Kind: Create, FID: fid(2), Parent: dirFID, Name: "a"}, t0)
	l.Append(storeRec(fid(2), 64), t0.Add(time.Second))
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("not a log"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are the contract for bad input.
		_, _ = Load(bytes.NewReader(data))
	})
}
