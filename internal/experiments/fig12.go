package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/codafs"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/venus"
)

// Fig12Combo names one (λ, A) parameter table of Figure 12.
type Fig12Combo struct {
	Lambda time.Duration
	Aging  time.Duration
}

// Fig12Combos lists the paper's four parameter combinations in its order:
// (a) λ=1s A=300s, (b) λ=1s A=600s, (c) λ=10s A=300s, (d) λ=10s A=600s.
var Fig12Combos = []Fig12Combo{
	{time.Second, 300 * time.Second},
	{time.Second, 600 * time.Second},
	{10 * time.Second, 300 * time.Second},
	{10 * time.Second, 600 * time.Second},
}

// Fig12Cell is one table entry: elapsed replay time in seconds, mean (sd).
type Fig12Cell struct {
	Mean float64
	SD   float64
}

// Fig14Cell carries the data-generation measurements of Figure 14 for one
// (segment, network) pair: KB in the CML at the start and end of the
// measurement period, KB shipped, KB saved by optimizations.
type Fig14Cell struct {
	BeginKB, EndKB, ShippedKB, ShippedSD, OptimizedKB float64
}

// Fig12Result reproduces Figures 12/13 (trace replay elapsed times) and 14
// (data generated during replay, for λ=1s A=600s).
type Fig12Result struct {
	ObsSnapshots
	Segments []string
	Networks []netsim.Profile
	Trials   int
	// Cells[combo][segment][network.Name]
	Cells map[Fig12Combo]map[string]map[string]Fig12Cell
	// Fig14[segment][network.Name], from the λ=1s A=600s runs.
	Fig14 map[string]map[string]Fig14Cell
	// Trace is the Perfetto span export of the first run (first combo,
	// segment, network; trial 0): the codabench -trace payload. Excluded
	// from -json, whose metrics dumps already carry the aggregates.
	Trace []byte `json:"-"`
}

// TraceExport surfaces the captured Perfetto trace to codabench -trace.
func (r Fig12Result) TraceExport() []byte { return r.Trace }

// fig12Run is one replay: a segment on a network under (λ, A).
type fig12Run struct {
	segment string
	network netsim.Profile
	combo   Fig12Combo
	trial   int
}

type fig12Out struct {
	fig12Run
	elapsed  float64
	beginKB  float64
	endKB    float64
	shipped  float64
	optimzed float64
	dump     []byte // registry dump, captured for trial 0 only
	trace    []byte // Perfetto span export, captured alongside dump
}

// replayOpCost models local per-operation client work.
const replayOpCost = 3 * time.Millisecond

// Figure12 runs the full trace-replay matrix. Venus is forced to remain
// write-disconnected at all bandwidths, and measurement starts after a
// 10-minute warming period, exactly as in §6.2.2.
func Figure12(opts Options) Fig12Result {
	opts.fill()
	segments := trace.SegmentNames
	trials := opts.Trials
	combos := Fig12Combos
	scale := 1.0
	if opts.Quick {
		segments = []string{"Purcell", "Concord"}
		trials = 1
		combos = []Fig12Combo{{time.Second, 600 * time.Second}}
		scale = 0.25
	}
	res := Fig12Result{
		Segments: segments,
		Networks: netsim.StandardNetworks,
		Trials:   trials,
		Cells:    make(map[Fig12Combo]map[string]map[string]Fig12Cell),
		Fig14:    make(map[string]map[string]Fig14Cell),
	}

	var runs []fig12Run
	for _, combo := range combos {
		for _, seg := range segments {
			for _, net := range res.Networks {
				for tr := 0; tr < trials; tr++ {
					runs = append(runs, fig12Run{segment: seg, network: net, combo: combo, trial: tr})
				}
			}
		}
	}

	// Each run owns an independent simulation; spread them over real CPUs.
	outs := make([]fig12Out, len(runs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, r := range runs {
		i, r := i, r
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			outs[i] = fig12One(opts.Seed, r, scale)
		}()
	}
	wg.Wait()

	// Runs execute concurrently but outs is indexed by the deterministic
	// run order, so the snapshot list is stable across invocations.
	for _, o := range outs {
		if o.dump == nil {
			continue
		}
		label := fmt.Sprintf("%s/%s/lambda=%v/A=%v", o.segment, o.network.Name, o.combo.Lambda, o.combo.Aging)
		res.Snapshots = append(res.Snapshots, RegistrySnapshot{Label: label, Dump: o.dump})
		if res.Trace == nil {
			res.Trace = o.trace
		}
	}

	// Aggregate trials.
	type key struct {
		combo   Fig12Combo
		seg, nw string
	}
	elapsed := make(map[key][]float64)
	shipped := make(map[key][]float64)
	type f14acc struct {
		begin, end, opt []float64
	}
	f14 := make(map[key]*f14acc)
	for _, o := range outs {
		k := key{o.combo, o.segment, o.network.Name}
		elapsed[k] = append(elapsed[k], o.elapsed)
		shipped[k] = append(shipped[k], o.shipped)
		a := f14[k]
		if a == nil {
			a = &f14acc{}
			f14[k] = a
		}
		a.begin = append(a.begin, o.beginKB)
		a.end = append(a.end, o.endKB)
		a.opt = append(a.opt, o.optimzed)
	}
	for k, xs := range elapsed {
		byCombo := res.Cells[k.combo]
		if byCombo == nil {
			byCombo = make(map[string]map[string]Fig12Cell)
			res.Cells[k.combo] = byCombo
		}
		bySeg := byCombo[k.seg]
		if bySeg == nil {
			bySeg = make(map[string]Fig12Cell)
			byCombo[k.seg] = bySeg
		}
		m, sd := meanStd(xs)
		bySeg[k.nw] = Fig12Cell{Mean: m, SD: sd}

		if (k.combo == Fig12Combo{time.Second, 600 * time.Second}) {
			byNet := res.Fig14[k.seg]
			if byNet == nil {
				byNet = make(map[string]Fig14Cell)
				res.Fig14[k.seg] = byNet
			}
			a := f14[k]
			bm, _ := meanStd(a.begin)
			em, _ := meanStd(a.end)
			sm, ssd := meanStd(shipped[k])
			om, _ := meanStd(a.opt)
			byNet[k.nw] = Fig14Cell{BeginKB: bm, EndKB: em, ShippedKB: sm, ShippedSD: ssd, OptimizedKB: om}
		}
	}
	return res
}

// fig12One executes a single replay run.
func fig12One(seed int64, r fig12Run, scale float64) fig12Out {
	const warm = 10 * time.Minute
	p := trace.SegmentPreset(r.segment, seed+int64(r.trial)*17)
	// Extend the segment so a 10-minute warming prefix precedes the
	// 45-minute measured portion, preserving the activity rate.
	full := p.Duration + warm
	p.Updates = int(float64(p.Updates) * float64(full) / float64(p.Duration) * scale)
	p.RefsPerUpdate = int(float64(p.RefsPerUpdate) * scale)
	if p.RefsPerUpdate < 1 {
		p.RefsPerUpdate = 1
	}
	p.Duration = full
	tr := trace.Generate(p)
	warmTrace := tr.Slice(0, warm)
	measured := tr.Slice(warm, full+time.Minute)

	w := newWorld(seed + int64(r.trial))
	if err := trace.SeedServer(w.srv, tr); err != nil {
		panic(err)
	}

	out := fig12Out{fig12Run: r}
	w.sim.Run(func() {
		v := w.venus("client", venus.Config{
			ClientID:             1,
			CacheBytes:           1 << 30,
			AgingWindow:          r.combo.Aging,
			PinWriteDisconnected: true,
		})
		if err := v.Mount(tr.Volume); err != nil {
			panic(err)
		}
		// Warm the cache at full speed so replay misses do not confound
		// the measurement, then drop to the experiment's network.
		v.HoardAdd(codafs.JoinPath(tr.Volume), 600, true)
		if err := v.HoardWalk(); err != nil {
			panic(err)
		}
		v.WriteDisconnect()
		w.setLink("client", r.network)
		v.Connect(r.network.Bandwidth)

		ropts := trace.ReplayOpts{Lambda: r.combo.Lambda, OpCost: replayOpCost}
		trace.Replay(w.sim, v, warmTrace, ropts)

		begin := v.CMLBytes()
		ship0 := v.Stats().ShippedBytes
		opt0 := v.OptimizedBytes()
		start := w.sim.Now()
		trace.Replay(w.sim, v, measured, ropts)
		out.elapsed = seconds(w.sim.Now().Sub(start))
		out.beginKB = float64(begin) / 1024
		out.endKB = float64(v.CMLBytes()) / 1024
		out.shipped = float64(v.Stats().ShippedBytes-ship0) / 1024
		out.optimzed = float64(v.OptimizedBytes()-opt0) / 1024
	})
	if r.trial == 0 {
		// Critical-path attribution over the run's traced reintegrations:
		// exclusive self-time per bucket, exported as gauges so benchgate
		// pins the breakdown alongside the wire counters.
		cp := w.reg.CriticalPath("venus_reintegrate")
		w.reg.Gauge("experiments_fig12_critpath_patience_wait_us").Set(cp["patience_wait"].Microseconds())
		w.reg.Gauge("experiments_fig12_critpath_retransmit_us").Set(cp["retransmit"].Microseconds())
		w.reg.Gauge("experiments_fig12_critpath_fragment_serialization_us").Set(cp["fragment_serialization"].Microseconds())
		w.reg.Gauge("experiments_fig12_critpath_fsync_us").Set(cp["fsync"].Microseconds())
		w.reg.Gauge("experiments_fig12_critpath_failover_us").Set(cp["failover"].Microseconds())
		w.reg.Gauge("experiments_fig12_critpath_server_apply_us").Set(cp["server_apply"].Microseconds())
		w.reg.Gauge("experiments_fig12_critpath_other_us").Set(cp["other"].Microseconds())
		out.dump = w.reg.Dump()
		out.trace = w.reg.ExportTrace()
	}
	return out
}

// fig12JSONCell is one flattened (combo, segment, network) entry of the
// JSON export; the in-memory Cells map is keyed by a struct, which
// encoding/json cannot marshal.
type fig12JSONCell struct {
	LambdaS float64 `json:"lambda_s"`
	AgingS  float64 `json:"aging_s"`
	Segment string  `json:"segment"`
	Network string  `json:"network"`
	MeanS   float64 `json:"mean_s"`
	SDS     float64 `json:"sd_s"`
}

// MarshalJSON flattens the struct-keyed Cells map into a sorted slice so
// the result serializes (and does so deterministically).
func (r Fig12Result) MarshalJSON() ([]byte, error) {
	combos := make([]Fig12Combo, 0, len(r.Cells))
	for combo := range r.Cells {
		combos = append(combos, combo)
	}
	sort.Slice(combos, func(i, j int) bool {
		if combos[i].Lambda != combos[j].Lambda {
			return combos[i].Lambda < combos[j].Lambda
		}
		return combos[i].Aging < combos[j].Aging
	})
	var cells []fig12JSONCell
	for _, combo := range combos {
		for _, seg := range r.Segments {
			for _, nw := range r.Networks {
				c := r.Cells[combo][seg][nw.Name]
				cells = append(cells, fig12JSONCell{
					LambdaS: combo.Lambda.Seconds(),
					AgingS:  combo.Aging.Seconds(),
					Segment: seg,
					Network: nw.Name,
					MeanS:   c.Mean,
					SDS:     c.SD,
				})
			}
		}
	}
	networks := make([]string, len(r.Networks))
	for i, nw := range r.Networks {
		networks[i] = nw.Name
	}
	return json.Marshal(struct {
		Segments []string                        `json:"segments"`
		Networks []string                        `json:"networks"`
		Trials   int                             `json:"trials"`
		Cells    []fig12JSONCell                 `json:"cells"`
		Fig14    map[string]map[string]Fig14Cell `json:"fig14"`
	}{r.Segments, networks, r.Trials, cells, r.Fig14})
}

// Render prints the four elapsed-time tables (Figure 12) and the data
// tables (Figure 14).
func (r Fig12Result) Render() string {
	out := ""
	for _, combo := range Fig12Combos {
		byCombo := r.Cells[combo]
		if byCombo == nil {
			continue
		}
		out += fmt.Sprintf("Figure 12: Trace replay elapsed time (s), λ=%v, A=%v (%d trials)\n",
			combo.Lambda, combo.Aging, r.Trials)
		t := newTable(12, 16, 16, 16, 16)
		t.row("Segment", "Ethernet", "WaveLan", "ISDN", "Modem")
		t.line()
		for _, seg := range r.Segments {
			row := []string{seg}
			for _, nw := range r.Networks {
				c := byCombo[seg][nw.Name]
				row = append(row, fmt.Sprintf("%.0f (%.0f)", c.Mean, c.SD))
			}
			t.row(row...)
		}
		out += t.String() + "\n"
	}

	if len(r.Fig14) > 0 {
		out += "Figure 14: Data generated during trace replay (λ=1s, A=600s)\n"
		for _, seg := range r.Segments {
			byNet := r.Fig14[seg]
			if byNet == nil {
				continue
			}
			out += fmt.Sprintf("  Segment = %s\n", seg)
			t := newTable(12, 14, 14, 18, 14)
			t.row("  Network", "Begin CML(KB)", "End CML(KB)", "Shipped(KB)", "Optimized(KB)")
			t.line()
			for _, nw := range r.Networks {
				c := byNet[nw.Name]
				t.row("  "+nw.Name,
					fmt.Sprintf("%.0f", c.BeginKB),
					fmt.Sprintf("%.0f", c.EndKB),
					fmt.Sprintf("%.0f (%.0f)", c.ShippedKB, c.ShippedSD),
					fmt.Sprintf("%.0f", c.OptimizedKB))
			}
			out += t.String()
		}
	}
	return out
}
