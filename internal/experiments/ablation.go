package experiments

import (
	"fmt"
	"time"

	"repro/internal/codafs"
	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/venus"
)

// AblationResult compares a design choice against its alternative on one
// scalar metric.
type AblationResult struct {
	ObsSnapshots
	Name             string
	Metric           string
	Baseline         float64 // the paper's design
	Alternative      float64 // the ablated design
	BaselineLabel    string
	AlternativeLabel string
}

// Render prints the comparison.
func (r AblationResult) Render() string {
	return fmt.Sprintf("Ablation %-18s %-28s %s=%.1f  %s=%.1f\n",
		r.Name, "("+r.Metric+")", r.BaselineLabel, r.Baseline, r.AlternativeLabel, r.Alternative)
}

// AblationAging measures how the aging window affects traffic: shipped
// bytes over a modem replay with A=600s (the default) versus A=0 (ship as
// soon as possible). Without aging, records leave the CML before
// optimizations can cancel them, so more data crosses the slow link.
func AblationAging(opts Options) AblationResult {
	res := AblationResult{
		Name: "aging-window", Metric: "KB shipped over modem",
		BaselineLabel: "A=600s", AlternativeLabel: "A≈0",
	}
	shipped := func(aging time.Duration, label string) float64 {
		w, st := ablationReplay(opts, venus.Config{
			AgingWindow:          aging,
			PinWriteDisconnected: true,
		}, netsim.Modem)
		res.addSnapshot(label, w.reg)
		return float64(st.ShippedBytes) / 1024
	}
	// AgingWindow 0 means "default" in Config; use 1ns for "no aging".
	res.Baseline = shipped(600*time.Second, "A=600s")
	res.Alternative = shipped(time.Nanosecond, "A~0")
	return res
}

// AblationLogOptimizations disables CML cancellations entirely.
func AblationLogOptimizations(opts Options) AblationResult {
	res := AblationResult{
		Name: "log-optimizations", Metric: "KB shipped over modem",
		BaselineLabel: "optimized", AlternativeLabel: "disabled",
	}
	shipped := func(disable bool, label string) float64 {
		w, st := ablationReplay(opts, venus.Config{
			AgingWindow:          600 * time.Second,
			PinWriteDisconnected: true,
			DisableLogOptimize:   disable,
		}, netsim.Modem)
		res.addSnapshot(label, w.reg)
		return float64(st.ShippedBytes+0) / 1024
	}
	res.Baseline = shipped(false, "optimized")
	res.Alternative = shipped(true, "disabled")
	return res
}

// AblationChunkSize compares the adaptive chunk (C sized to ~30 s of
// bandwidth) against fixed tiny and huge chunks, measuring the worst-case
// foreground fetch delay while trickle reintegration saturates a modem.
func AblationChunkSize(opts Options) AblationResult {
	res := AblationResult{
		Name: "chunk-size", Metric: "worst foreground fetch delay (s) at modem",
		BaselineLabel: "C=30s·bw", AlternativeLabel: "C=600s·bw",
	}
	delay := func(chunkSeconds int, label string) float64 {
		w := newWorld(opts.Seed + 31)
		w.mustVol("usr")
		w.mustWrite("usr", "wanted.txt", make([]byte, 4<<10))
		var worst time.Duration
		w.sim.Run(func() {
			v := w.venus("client", venus.Config{
				ClientID:             1,
				AgingWindow:          time.Second,
				ChunkSeconds:         chunkSeconds,
				TrickleInterval:      time.Second,
				PinWriteDisconnected: true,
			})
			if err := v.Mount("usr"); err != nil {
				panic(err)
			}
			// The wanted file is hoarded at high priority so the patience
			// model always permits its fetch; what varies is how long the
			// fetch waits behind reintegration traffic.
			v.HoardAdd("/coda/usr/wanted.txt", 900, false)
			w.setLink("client", netsim.Modem)
			v.Connect(netsim.Modem.Bandwidth)
			// A large pending update saturates the uplink...
			_ = v.WriteFile("/coda/usr/big.out", make([]byte, 400<<10))
			w.sim.Sleep(30 * time.Second)
			// ...while the user misses on small files now and then. A
			// starved foreground RPC can even time out and demote the
			// client; the recovery time is part of what the user waits.
			for i := 0; i < 10; i++ {
				start := w.sim.Now()
				for {
					if _, err := v.ReadFile("/coda/usr/wanted.txt"); err == nil {
						break
					}
					if v.State() == venus.Emulating {
						v.Connect(netsim.Modem.Bandwidth)
						v.WriteDisconnect()
					}
					w.sim.Sleep(5 * time.Second)
				}
				if d := w.sim.Now().Sub(start); d > worst {
					worst = d
				}
				w.sim.Sleep(2 * time.Minute)
				// Invalidate so the next read must refetch.
				w.mustWrite("usr", "wanted.txt", make([]byte, 4<<10))
				w.sim.Sleep(5 * time.Second)
			}
		})
		res.addSnapshot(label, w.reg)
		return seconds(worst)
	}
	// ChunkSeconds 30 (default, C=36KB at modem) vs 600 (C=720KB: the
	// whole backlog in one chunk, starving foreground traffic).
	res.Baseline = delay(30, "C=30s")
	res.Alternative = delay(600, "C=600s")
	return res
}

// AblationVolumeCallbacks is Figure 8's comparison reduced to one number:
// reconnection validation time at modem speed with and without volume
// stamps, for a mid-sized cache.
func AblationVolumeCallbacks(opts Options) AblationResult {
	prof := Fig8Profile{User: "abl", Volumes: 6, Objects: 600, MeanKB: 8}
	if opts.Quick {
		prof.Objects = 200
	}
	res := AblationResult{
		Name: "volume-callbacks", Metric: "modem validation time (s)",
		BaselineLabel: "volume stamps", AlternativeLabel: "per-object",
	}
	timeFor := func(scheme string) float64 {
		cells, snap := fig8Run(opts, prof, scheme)
		res.Snapshots = append(res.Snapshots, snap)
		for _, c := range cells {
			if c.Network.Name == "Modem" {
				return c.Seconds
			}
		}
		return 0
	}
	res.Baseline = timeFor("volume")
	res.Alternative = timeFor("object")
	return res
}

// AblationAdaptiveRTO compares the Jacobson-adaptive retransmission timer
// against a fixed 3-second timer on a lossy modem link, measuring total
// time for a batch of small RPCs.
func AblationAdaptiveRTO(opts Options) AblationResult {
	res := AblationResult{
		Name: "adaptive-rto", Metric: "60 small RPCs over lossy modem (s)",
		BaselineLabel: "adaptive", AlternativeLabel: "fixed-3s",
	}
	run := func(fixed bool, label string) float64 {
		s := simtime.NewSim(simtime.Epoch1995)
		net := netsim.New(s, opts.Seed+5)
		p := netsim.Modem.Params()
		p.LossRate = 0.05
		net.SetDefaults(p)
		reg := obs.NewRegistry(s)
		var elapsed time.Duration
		s.Run(func() {
			rpc2.NewNode(s, net.Host("server"), netmon.NewMonitor(s), func(src string, _ obs.SpanContext, b []byte) ([]byte, error) {
				return b, nil
			}, reg)
			c := rpc2.NewNode(s, net.Host("client"), netmon.NewMonitor(s), nil, reg)
			peer := c.Monitor().Peer("server")
			start := s.Now()
			n := 60
			if opts.Quick {
				n = 20
			}
			for i := 0; i < n; i++ {
				if fixed {
					// Erase learned RTT so every call uses InitialRTO.
					peer.Forget()
				}
				// Failures are expected while the link churns; the figure
				// measures elapsed time, not success count.
				_, _ = c.Call("server", []byte{byte(i)}, rpc2.CallOpts{Timeout: 5 * time.Minute, MaxRetries: 20})
			}
			elapsed = s.Now().Sub(start)
		})
		res.addSnapshot(label, reg)
		return seconds(elapsed)
	}
	res.Baseline = run(false, "adaptive")
	res.Alternative = run(true, "fixed")
	return res
}

// ablationReplay runs a short write-heavy replay over the given network and
// returns the world (for its registry) and the venus stats afterwards.
func ablationReplay(opts Options, cfg venus.Config, prof netsim.Profile) (*world, venus.Stats) {
	p := trace.SegmentPreset("Messiaen", opts.Seed)
	p.Duration = 20 * time.Minute
	p.Updates = 60
	p.RefsPerUpdate = 2
	tr := trace.Generate(p)

	w := newWorld(opts.Seed + 41)
	if err := trace.SeedServer(w.srv, tr); err != nil {
		panic(err)
	}
	cfg.ClientID = 1
	cfg.CacheBytes = 1 << 30
	cfg.TrickleInterval = 2 * time.Second
	var stats venus.Stats
	var v *venus.Venus
	w.sim.Run(func() {
		v = w.venus("client", cfg)
		if err := v.Mount(tr.Volume); err != nil {
			panic(err)
		}
		v.HoardAdd(codafs.JoinPath(tr.Volume), 600, true)
		if err := v.HoardWalk(); err != nil {
			panic(err)
		}
		v.WriteDisconnect()
		w.setLink("client", prof)
		v.Connect(prof.Bandwidth)
		trace.Replay(w.sim, v, tr, trace.ReplayOpts{Lambda: time.Second})
		// Let the trickle daemon finish what it can.
		w.sim.Sleep(10 * time.Minute)
		stats = v.Stats()
	})
	return w, stats
}
