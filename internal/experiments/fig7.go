package experiments

import (
	"fmt"

	"repro/internal/venus"
)

// Fig7Sample is one of the hoarded files superimposed on Figure 7's curves.
type Fig7Sample struct {
	Priority int
	Size     int64
	// BelowTau maps bandwidth (b/s) → whether the file is under the
	// patience threshold there (i.e. fetched transparently).
	BelowTau map[int64]bool
}

// Fig7Result reproduces Figure 7 (Patience Threshold versus Hoard
// Priority).
type Fig7Result struct {
	ObsSnapshots
	Params     venus.PatienceParams
	Bandwidths []int64
	// Curves: for each bandwidth, τ expressed as the largest fetchable
	// file size at priorities 0,100,...,1000.
	Priorities []int
	MaxSizes   map[int64][]int64
	Samples    []Fig7Sample
}

// fig7SampleSet mirrors the paper's annotated points: files of various
// sizes hoarded at priorities 100, 500, and 900.
var fig7SampleSet = []struct {
	pri  int
	size int64
}{
	{100, 4 << 20}, {100, 8 << 20},
	{500, 1 << 10}, {500, 1 << 20},
	{900, 64 << 10}, {900, 2 << 20},
}

// Figure7 evaluates the patience model τ = α + β·e^(γP) with the paper's
// parameters and classifies the sample files at each bandwidth. The paper's
// claims hold exactly: at 9.6 Kb/s only the priority-900 files and the 1 KB
// file at 500 are below τ; at 64 Kb/s the 1 MB file at 500 joins them; at
// 2 Mb/s everything but the 4 MB and 8 MB files at priority 100 is below.
func Figure7(Options) Fig7Result {
	p := venus.DefaultPatience()
	res := Fig7Result{
		Params:     p,
		Bandwidths: []int64{9600, 64_000, 2_000_000},
		MaxSizes:   make(map[int64][]int64),
	}
	for pri := 0; pri <= 1000; pri += 100 {
		res.Priorities = append(res.Priorities, pri)
	}
	for _, bw := range res.Bandwidths {
		sizes := make([]int64, 0, len(res.Priorities))
		for _, pri := range res.Priorities {
			sizes = append(sizes, p.MaxFileSize(pri, bw))
		}
		res.MaxSizes[bw] = sizes
	}
	for _, s := range fig7SampleSet {
		sample := Fig7Sample{Priority: s.pri, Size: s.size, BelowTau: make(map[int64]bool)}
		for _, bw := range res.Bandwidths {
			sample.BelowTau[bw] = s.size <= p.MaxFileSize(s.pri, bw)
		}
		res.Samples = append(res.Samples, sample)
	}
	// The patience model is evaluated analytically; the snapshot is the
	// deterministic empty dump.
	res.addSnapshot("model", modelRegistry())
	return res
}

// Render prints the curves and the sample classification.
func (r Fig7Result) Render() string {
	t := newTable(10, 16, 16, 16)
	t.row("Priority", "9.6 Kb/s", "64 Kb/s", "2 Mb/s")
	t.line()
	for i, pri := range r.Priorities {
		t.row(fmt.Sprintf("%d", pri),
			sizeLabel(r.MaxSizes[9600][i]),
			sizeLabel(r.MaxSizes[64_000][i]),
			sizeLabel(r.MaxSizes[2_000_000][i]))
	}
	out := fmt.Sprintf("Figure 7: Patience Threshold vs Hoard Priority (α=%.0fs β=%.0f γ=%.2f)\n",
		r.Params.Alpha, r.Params.Beta, r.Params.Gamma)
	out += "Largest file fetchable within τ:\n" + t.String()

	t2 := newTable(10, 10, 12, 12, 12)
	t2.row("Priority", "Size", "9.6 Kb/s", "64 Kb/s", "2 Mb/s")
	t2.line()
	yn := map[bool]string{true: "below", false: "above"}
	for _, s := range r.Samples {
		t2.row(fmt.Sprintf("%d", s.Priority), sizeLabel(s.Size),
			yn[s.BelowTau[9600]], yn[s.BelowTau[64_000]], yn[s.BelowTau[2_000_000]])
	}
	return out + "Sample files vs τ:\n" + t2.String()
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
