package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/codafs"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/venus"
)

// TestRegistryDumpDeterministic pins the observability contract: two runs
// of the same seeded scenario produce byte-identical registry dumps —
// counters, histograms, gauge evaluations, and the event trace included.
func TestRegistryDumpDeterministic(t *testing.T) {
	opts := Options{Seed: 7, Quick: true}
	prof := Fig8Profile{User: "det", Volumes: 3, Objects: 60, MeanKB: 4}
	_, first := fig8Run(opts, prof, "volume")
	_, second := fig8Run(opts, prof, "volume")
	if !bytes.Equal(first.Dump, second.Dump) {
		t.Fatalf("identical runs produced different dumps:\n--- first ---\n%s\n--- second ---\n%s",
			first.Dump, second.Dump)
	}
	// The scenario exercises every instrumented layer; its dump must
	// carry series from each of them, plus the state-transition trace.
	for _, name := range []string{
		"venus_cache_hits_total",
		"venus_state_transitions_total",
		"venus_hoard_phase_us",
		"server_ops_total",
		"rpc2_calls_total",
		"netmon_peer_bandwidth_bps",
		"venus_state_transition",
	} {
		if !bytes.Contains(first.Dump, []byte(name)) {
			t.Errorf("dump is missing %s", name)
		}
	}
}

// TestFig8ValidationRPCCounts re-asserts Figure 8's volume-callback win
// with exact metric counts: reconnection validation drops from one
// per-object check for every cached object (batched 50 to an RPC) to a
// single ValidateVolumes RPC carrying one stamp per volume.
func TestFig8ValidationRPCCounts(t *testing.T) {
	const volumes = 3
	run := func(scheme string) (*obs.Registry, int) {
		w := newWorld(11)
		for vi := 0; vi < volumes; vi++ {
			vol := fmt.Sprintf("val%d", vi)
			w.mustVol(vol)
			for fi := 0; fi < 40; fi++ {
				w.mustWrite(vol, fmt.Sprintf("d%d/f%02d", fi%2, fi), make([]byte, 512))
			}
		}
		var cached int
		w.sim.Run(func() {
			v := w.venus("client", venus.Config{
				ClientID:               1,
				CacheBytes:             1 << 30,
				DisableVolumeCallbacks: scheme == "object",
			})
			for vi := 0; vi < volumes; vi++ {
				vol := fmt.Sprintf("val%d", vi)
				if err := v.Mount(vol); err != nil {
					panic(err)
				}
				v.HoardAdd(codafs.JoinPath(vol), 600, true)
			}
			if err := v.HoardWalk(); err != nil {
				panic(err)
			}
			cached = v.CacheStats().Objects
			w.net.SetUp("client", "server", false)
			v.Disconnect()
			w.setLink("client", netsim.Modem)
			v.Connect(netsim.Modem.Bandwidth)
			if scheme == "object" {
				if err := v.HoardWalk(); err != nil {
					panic(err)
				}
			}
		})
		return w.reg, cached
	}

	serverOp := func(reg *obs.Registry, op string) int64 {
		return reg.Counter("server_ops_total", obs.L("node", "server"), obs.L("op", op)).Value()
	}
	clientVal := func(reg *obs.Registry, kind string) int64 {
		return reg.Counter("venus_validations_total", obs.L("client", "client"), obs.L("kind", kind)).Value()
	}

	// Volume-stamp scheme: 1 RPC, k stamp validations, zero per-object
	// traffic.
	volReg, _ := run("volume")
	if got := serverOp(volReg, "ValidateVolumes"); got != 1 {
		t.Errorf("volume scheme: ValidateVolumes RPCs = %d, want 1", got)
	}
	if got := serverOp(volReg, "ValidateObjects"); got != 0 {
		t.Errorf("volume scheme: ValidateObjects RPCs = %d, want 0", got)
	}
	if got := clientVal(volReg, "volume"); got != volumes {
		t.Errorf("volume scheme: volume validations = %d, want %d", got, volumes)
	}
	if got := clientVal(volReg, "object"); got != 0 {
		t.Errorf("volume scheme: object validations = %d, want 0", got)
	}
	ok := volReg.Counter("venus_volume_validations_ok_total", obs.L("client", "client")).Value()
	if ok != volumes {
		t.Errorf("volume scheme: successful stamp validations = %d, want %d", ok, volumes)
	}

	// Per-object scheme (the paper's baseline): every cached object is
	// validated individually, batched 50 to an RPC.
	objReg, cached := run("object")
	if cached == 0 {
		t.Fatal("no cached objects after the hoard walk")
	}
	wantRPCs := int64((cached + 49) / 50)
	if got := serverOp(objReg, "ValidateObjects"); got != wantRPCs {
		t.Errorf("object scheme: ValidateObjects RPCs = %d, want ceil(%d/50) = %d", got, cached, wantRPCs)
	}
	if got := serverOp(objReg, "ValidateVolumes"); got != 0 {
		t.Errorf("object scheme: ValidateVolumes RPCs = %d, want 0", got)
	}
	if got := clientVal(objReg, "object"); got != int64(cached) {
		t.Errorf("object scheme: object validations = %d, want %d (every cached object)", got, cached)
	}
}
