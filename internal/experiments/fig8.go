package experiments

import (
	"fmt"
	"time"

	"repro/internal/codafs"
	"repro/internal/netsim"
	"repro/internal/venus"
)

// Fig8Profile describes one user's cache composition (the paper used the
// hoard profiles of five typical Coda users).
type Fig8Profile struct {
	User    string
	Volumes int
	Objects int
	MeanKB  float64
}

// fig8Profiles approximates five users with caches from ~700 to ~4000
// objects spread over 5–30 volumes.
var fig8Profiles = []Fig8Profile{
	{"user1", 10, 2000, 8},
	{"user2", 5, 700, 6},
	{"user3", 20, 3000, 10},
	{"user4", 30, 4000, 7},
	{"user5", 8, 1400, 12},
}

// localWalkPerObject models Venus's local cost of walking one cache entry
// during validation (the CPU component that dominated the paper's absolute
// numbers; the emulator itself charges only network time).
const localWalkPerObject = time.Millisecond

// Fig8Cell is one bar of Figure 8.
type Fig8Cell struct {
	User    string
	Network netsim.Profile
	Scheme  string // "object" or "volume"
	Seconds float64
}

// Fig8Result reproduces Figure 8 (Validation Time Under Ideal Conditions).
type Fig8Result struct {
	ObsSnapshots
	Profiles []Fig8Profile
	Cells    []Fig8Cell
}

// Figure8 measures cache validation time after reconnection under ideal
// conditions (volume stamps held, no server updates while disconnected),
// comparing per-object validation against volume-stamp validation at each
// network speed.
func Figure8(opts Options) Fig8Result {
	opts.fill()
	profiles := fig8Profiles
	if opts.Quick {
		profiles = []Fig8Profile{
			{"user1", 4, 200, 8},
			{"user2", 2, 80, 6},
		}
	}
	res := Fig8Result{Profiles: profiles}
	for _, prof := range profiles {
		for _, scheme := range []string{"object", "volume"} {
			cells, snap := fig8Run(opts, prof, scheme)
			res.Cells = append(res.Cells, cells...)
			res.Snapshots = append(res.Snapshots, snap)
		}
	}
	return res
}

func fig8Run(opts Options, prof Fig8Profile, scheme string) ([]Fig8Cell, RegistrySnapshot) {
	w := newWorld(opts.Seed + int64(len(prof.User)))
	perVol := prof.Objects / prof.Volumes

	for vi := 0; vi < prof.Volumes; vi++ {
		vol := fmt.Sprintf("%s-v%02d", prof.User, vi)
		w.mustVol(vol)
		for fi := 0; fi < perVol; fi++ {
			size := int(prof.MeanKB * 1024 / 2)
			if fi%2 == 0 {
				size *= 3
			}
			w.mustWrite(vol, fmt.Sprintf("d%d/f%03d", fi%4, fi), make([]byte, size))
		}
	}

	var cells []Fig8Cell
	w.sim.Run(func() {
		v := w.venus("client", venus.Config{
			ClientID:               1,
			CacheBytes:             1 << 30,
			DisableVolumeCallbacks: scheme == "object",
		})
		for vi := 0; vi < prof.Volumes; vi++ {
			vol := fmt.Sprintf("%s-v%02d", prof.User, vi)
			if err := v.Mount(vol); err != nil {
				panic(err)
			}
			v.HoardAdd(codafs.JoinPath(vol), 600, true)
		}
		if err := v.HoardWalk(); err != nil {
			panic(err)
		}

		for _, net := range netsim.StandardNetworks {
			// Ideal conditions: nothing changes while disconnected.
			w.net.SetUp("client", "server", false)
			v.Disconnect()
			w.setLink("client", net)

			start := w.sim.Now()
			v.Connect(net.Bandwidth)
			if scheme == "object" {
				// The original scheme: every cached object validated
				// individually (batched RPCs) at the walk.
				if err := v.HoardWalk(); err != nil {
					panic(err)
				}
			}
			elapsed := w.sim.Now().Sub(start)
			elapsed += time.Duration(prof.Objects) * localWalkPerObject
			cells = append(cells, Fig8Cell{
				User: prof.User, Network: net, Scheme: scheme,
				Seconds: seconds(elapsed),
			})
		}
	})
	snap := RegistrySnapshot{Label: prof.User + "/" + scheme, Dump: w.reg.Dump()}
	return cells, snap
}

// Render prints validation times, grouped as in the paper's bar chart.
func (r Fig8Result) Render() string {
	t := newTable(8, 10, 12, 12, 12, 12)
	t.row("User", "Scheme", "E (10Mb/s)", "W (2Mb/s)", "I (64Kb/s)", "M (9.6Kb/s)")
	t.line()
	for _, prof := range r.Profiles {
		for _, scheme := range []string{"object", "volume"} {
			row := []string{prof.User, scheme}
			for _, net := range []string{"Ethernet", "WaveLan", "ISDN", "Modem"} {
				for _, c := range r.Cells {
					if c.User == prof.User && c.Scheme == scheme && c.Network.Name == net {
						row = append(row, fmt.Sprintf("%.1fs", c.Seconds))
					}
				}
			}
			t.row(row...)
		}
	}
	return "Figure 8: Validation Time Under Ideal Conditions\n" + t.String()
}
