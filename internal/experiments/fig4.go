package experiments

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Fig4Point is one point of an aging curve: savings at window A as a
// fraction of savings at the 4-hour reference window.
type Fig4Point struct {
	A     time.Duration
	Ratio float64
}

// Fig4Curve is one trace's curve plus its denominator (the paper's caption
// reports these: 84 MB for ives, 817 MB for concord, ...).
type Fig4Curve struct {
	Trace      string
	BaselineMB float64
	Points     []Fig4Point
}

// Fig4Result reproduces Figure 4 (Effect of Aging on Optimizations).
type Fig4Result struct {
	ObsSnapshots
	Curves []Fig4Curve
}

// Fig4Windows is the x-axis of the aging study.
var Fig4Windows = []time.Duration{
	1 * time.Second, 3 * time.Second, 10 * time.Second, 30 * time.Second,
	100 * time.Second, 300 * time.Second, 600 * time.Second,
	1800 * time.Second, 3600 * time.Second, 4 * time.Hour,
}

// Figure4 runs the five week-long traces through the CML simulator at each
// aging window and normalizes to the 4-hour window (§4.3.4).
func Figure4(opts Options) Fig4Result {
	opts.fill()
	var res Fig4Result
	names := trace.WeekNames
	if opts.Quick {
		names = names[:2]
	}
	for _, name := range names {
		tr := trace.Generate(trace.WeekPreset(name, opts.Seed))
		base := trace.AnalyzeCML(tr, 4*time.Hour).SavedBytes
		curve := Fig4Curve{Trace: name, BaselineMB: float64(base) / (1 << 20)}
		for _, a := range Fig4Windows {
			an := trace.AnalyzeCML(tr, a)
			ratio := 0.0
			if base > 0 {
				ratio = float64(an.SavedBytes) / float64(base)
			}
			curve.Points = append(curve.Points, Fig4Point{A: a, Ratio: ratio})
		}
		res.Curves = append(res.Curves, curve)
	}
	// Trace analysis runs no simulated world; the snapshot is the
	// deterministic empty dump.
	res.addSnapshot("model", modelRegistry())
	return res
}

// Render prints the curves as a table (rows: A; columns: traces).
func (r Fig4Result) Render() string {
	widths := []int{10}
	header := []string{"A (s)"}
	for _, c := range r.Curves {
		widths = append(widths, 10)
		header = append(header, c.Trace)
	}
	t := newTable(widths...)
	t.row(header...)
	t.line()
	for i, a := range Fig4Windows {
		if i >= len(r.Curves[0].Points) {
			break
		}
		row := []string{fmt.Sprintf("%.0f", a.Seconds())}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.2f", c.Points[i].Ratio))
		}
		t.row(row...)
	}
	out := "Figure 4: Effect of Aging on Optimizations (ratio of savings vs A=4h)\n" + t.String()
	out += "Baselines (savings at A=4h): "
	for i, c := range r.Curves {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %.0f MB", c.Trace, c.BaselineMB)
	}
	return out + "\n"
}
