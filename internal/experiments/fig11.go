package experiments

import (
	"fmt"

	"repro/internal/trace"
)

// Fig11Row describes one replay segment (Figure 11's columns).
type Fig11Row struct {
	Segment         string
	References      int
	Updates         int
	UnoptKB         int64
	OptKB           int64
	Compressibility float64
}

// Fig11Result reproduces Figure 11 (Segments Used in Trace Replay
// Experiments).
type Fig11Result struct {
	ObsSnapshots
	Rows []Fig11Row
}

// Figure11 characterizes the four calibrated segments.
func Figure11(opts Options) Fig11Result {
	opts.fill()
	var res Fig11Result
	for _, name := range trace.SegmentNames {
		tr := trace.Generate(trace.SegmentPreset(name, opts.Seed))
		refs, updates := tr.Counts()
		an := trace.AnalyzeCML(tr, trace.NoAging)
		res.Rows = append(res.Rows, Fig11Row{
			Segment:         name,
			References:      refs,
			Updates:         updates,
			UnoptKB:         an.AppendedBytes / 1024,
			OptKB:           (an.AppendedBytes - an.SavedBytes) / 1024,
			Compressibility: an.Compressibility(),
		})
	}
	// Trace analysis runs no simulated world; the snapshot is the
	// deterministic empty dump.
	res.addSnapshot("model", modelRegistry())
	return res
}

// Render prints the table in the paper's layout.
func (r Fig11Result) Render() string {
	t := newTable(12, 12, 10, 12, 10, 14)
	t.row("Segment", "References", "Updates", "Unopt.(KB)", "Opt.(KB)", "Compressibility")
	t.line()
	for _, row := range r.Rows {
		t.row(row.Segment,
			fmt.Sprintf("%d", row.References),
			fmt.Sprintf("%d", row.Updates),
			fmt.Sprintf("%d", row.UnoptKB),
			fmt.Sprintf("%d", row.OptKB),
			fmt.Sprintf("%.0f%%", row.Compressibility*100))
	}
	return "Figure 11: Segments Used in Trace Replay Experiments\n" + t.String()
}
