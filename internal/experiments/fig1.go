package experiments

import (
	"fmt"
	"time"

	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

// wavelanLoss is the modeled radio loss rate of the 1995 WaveLan; it is
// what separates the paper's WaveLan rows (TCP at ~28% of nominal, SFTP at
// ~58%).
const wavelanLoss = 0.03

// Fig1Row is one line of Figure 1: observed throughput for a protocol over
// a network, in each direction. Values in Kb/s, with standard deviations.
type Fig1Row struct {
	Protocol         string
	Network          netsim.Profile
	RecvKbps, RecvSD float64
	SendKbps, SendSD float64
}

// Fig1Result reproduces Figure 1 (Transport Protocol Performance).
type Fig1Result struct {
	ObsSnapshots
	TransferBytes int
	Trials        int
	Rows          []Fig1Row
}

// Figure1 measures disk-to-disk transfer throughput of a 1 MB file between
// a client and server for TCP and SFTP over Ethernet, WaveLan, and a modem
// (Figure 1's setup). "Send" is client→server, "Receive" is server→client.
func Figure1(opts Options) Fig1Result {
	opts.fill()
	size := 1 << 20
	if opts.Quick {
		size = 128 << 10
	}
	res := Fig1Result{TransferBytes: size, Trials: opts.Trials}

	for _, proto := range []string{"TCP", "SFTP"} {
		for _, prof := range []netsim.Profile{netsim.Ethernet, netsim.WaveLan, netsim.Modem} {
			var recv, send []float64
			for trial := 0; trial < opts.Trials; trial++ {
				seed := opts.Seed + int64(trial)
				// Snapshot the transport metrics of one trial per cell;
				// later trials differ only in seed.
				var snaps *ObsSnapshots
				if trial == 0 {
					snaps = &res.ObsSnapshots
				}
				label := proto + "/" + prof.Name
				recv = append(recv, fig1Throughput(proto, prof, size, seed, false, snaps, label+"/recv"))
				send = append(send, fig1Throughput(proto, prof, size, seed+1000, true, snaps, label+"/send"))
			}
			row := Fig1Row{Protocol: proto, Network: prof}
			row.RecvKbps, row.RecvSD = meanStd(recv)
			row.SendKbps, row.SendSD = meanStd(send)
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// fig1Throughput runs one transfer and returns Kb/s. clientSends selects
// the direction; the measurement endpoint mirrors the paper's disk-to-disk
// timing.
func fig1Throughput(proto string, prof netsim.Profile, size int, seed int64, clientSends bool, snaps *ObsSnapshots, label string) float64 {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, seed)
	var reg *obs.Registry
	if snaps != nil {
		reg = obs.NewRegistry(s)
	}
	params := prof.Params()
	if prof.Name == "WaveLan" {
		// 1995 WaveLan radios lost packets; this is what separates the
		// paper's WaveLan rows (TCP 568/760 vs SFTP 1152/1168 Kb/s):
		// Reno halves its window on every loss, while SFTP's
		// selective-repeat window rides through.
		params.LossRate = wavelanLoss
	}
	net.SetDefaults(params)

	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	src, dst := "server", "client"
	if clientSends {
		src, dst = "client", "server"
	}

	var elapsed time.Duration
	s.Run(func() {
		start := s.Now()
		switch proto {
		case "SFTP":
			a := rpc2.NewNode(s, net.Host(src), netmon.NewMonitor(s), nil, reg)
			b := rpc2.NewNode(s, net.Host(dst), netmon.NewMonitor(s), nil, reg)
			done := simtime.NewQueue[error](s)
			s.Go(func() { done.Put(a.Transfer(dst, 1, data)) })
			if _, err := b.AwaitTransfer(src, 1, 4*time.Hour); err != nil {
				panic(err)
			}
			if err, _ := done.Get(); err != nil {
				panic(err)
			}
		case "TCP":
			a := net.Host(src)
			b := net.Host(dst)
			done := simtime.NewQueue[error](s)
			s.Go(func() { done.Put(tcpsim.Send(s, a, dst, 1, data)) })
			if _, err := tcpsim.Receive(s, b, 1, 4*time.Hour); err != nil {
				panic(err)
			}
			if err, _ := done.Get(); err != nil {
				panic(err)
			}
		}
		elapsed = s.Now().Sub(start)
	})
	if snaps != nil {
		snaps.addSnapshot(label, reg)
	}
	return float64(size*8) / elapsed.Seconds() / 1000
}

// Render prints the table in the paper's layout.
func (r Fig1Result) Render() string {
	t := newTable(10, 10, 14, 16, 16)
	t.row("Protocol", "Network", "Nominal", "Receive (Kb/s)", "Send (Kb/s)")
	t.line()
	for _, row := range r.Rows {
		t.row(row.Protocol, row.Network.Name, row.Network.SpeedLabel(),
			fmt.Sprintf("%.1f (%.2f)", row.RecvKbps, row.RecvSD),
			fmt.Sprintf("%.1f (%.2f)", row.SendKbps, row.SendSD))
	}
	return fmt.Sprintf("Figure 1: Transport Protocol Performance (%d KB transfer, %d trials)\n%s",
		r.TransferBytes/1024, r.Trials, t.String())
}
