package experiments

import (
	"bytes"
	"time"

	"repro/internal/netsim"
	"repro/internal/venus"
)

// AblationDeltas measures the §4.1 future-work enhancement implemented in
// internal/delta: repeated small edits to a large cached document over a
// modem, shipped as full contents (the paper's system) versus rsync-style
// differences.
func AblationDeltas(opts Options) AblationResult {
	edits := 8
	size := 120 << 10
	if opts.Quick {
		edits, size = 4, 60<<10
	}
	base := bytes.Repeat([]byte("quarterly report "), size/17)

	res := AblationResult{
		Name: "delta-shipping", Metric: "KB shipped for edits to a 120KB doc at modem",
		BaselineLabel: "deltas", AlternativeLabel: "full-contents",
	}
	run := func(enable bool, label string) float64 {
		w := newWorld(opts.Seed + 71)
		w.mustVol("usr")
		w.mustWrite("usr", "report.doc", base)
		var shippedKB float64
		w.sim.Run(func() {
			v := w.venus("client", venus.Config{
				ClientID:             1,
				AgingWindow:          2 * time.Second,
				TrickleInterval:      2 * time.Second,
				PinWriteDisconnected: true,
				EnableDeltas:         enable,
			})
			if err := v.Mount("usr"); err != nil {
				panic(err)
			}
			if _, err := v.ReadFile("/coda/usr/report.doc"); err != nil {
				panic(err)
			}
			w.setLink("client", netsim.Modem)
			v.Connect(netsim.Modem.Bandwidth)

			doc := append([]byte(nil), base...)
			for e := 0; e < edits; e++ {
				copy(doc[(e*13577)%(len(doc)-16):], []byte("[edited pass]"))
				if err := v.WriteFile("/coda/usr/report.doc", doc); err != nil {
					panic(err)
				}
				// Let each edit age out and ship before the next, so
				// every edit crosses the wire (no store-store cancel).
				w.sim.Sleep(4 * time.Minute)
			}
			shippedKB = float64(v.Stats().ShippedBytes) / 1024
		})
		res.addSnapshot(label, w.reg)
		return shippedKB
	}
	res.Baseline = run(true, "deltas")
	res.Alternative = run(false, "full")
	return res
}
