package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/codafs"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// Paper's client populations (Figure 9's row labels).
var (
	fig9Desktops = []string{
		"bach", "berlioz", "brahms", "chopin", "copland", "dvorak",
		"gershwin", "gs125", "holst", "ives", "mahler", "messiaen",
		"mozart", "varicose", "verdi", "vivaldi",
	}
	fig9Laptops = []string{
		"caractacus", "deidamia", "finlandia", "gloriana", "guntram",
		"nabucco", "prometheus", "serse", "tosca", "valkyrie",
	}
)

// Fig9Row is one client's observed validation statistics.
type Fig9Row struct {
	Client         string
	MissingPct     float64
	Attempts       int64
	SuccessPct     float64
	ObjsPerSuccess float64
}

// Fig9Result reproduces Figure 9 (Observed Volume Validation Statistics).
type Fig9Result struct {
	ObsSnapshots
	Weeks    int
	Desktops []Fig9Row
	Laptops  []Fig9Row
}

// Figure9 simulates the deployment of §6.1.2: a population of desktop and
// laptop clients sharing volumes over several weeks, with stochastic
// disconnection sessions and cross-client update traffic, recording how
// often volume validation was possible and how often it succeeded.
func Figure9(opts Options) Fig9Result {
	opts.fill()
	weeks := 4
	desktops, laptops := fig9Desktops, fig9Laptops
	volumes := 40
	filesPerVol := 60
	if opts.Quick {
		weeks = 1
		desktops, laptops = desktops[:3], laptops[:2]
		volumes, filesPerVol = 10, 20
	}

	w := newWorld(opts.Seed + 9)
	rng := rand.New(rand.NewSource(opts.Seed + 99))

	// Shared volumes: most quiet, some busy (the mix that yields the
	// paper's ~97% success rates against ~1-hour walk intervals).
	type volInfo struct {
		name  string
		busy  bool
		files int
	}
	vols := make([]volInfo, volumes)
	for i := range vols {
		name := fmt.Sprintf("vol%02d", i)
		w.mustVol(name)
		// Volume sizes vary widely, as the paper's per-client
		// objects-per-success column (5–171) reflects.
		count := 5 + rng.Intn(filesPerVol*3)
		for f := 0; f < count; f++ {
			w.mustWrite(name, fmt.Sprintf("d%d/f%03d", f%3, f), make([]byte, 2048+rng.Intn(8192)))
		}
		vols[i] = volInfo{name: name, busy: rng.Float64() < 0.2, files: count}
	}

	end := weeks * 7 * 24
	duration := time.Duration(end) * time.Hour

	type clientDone struct {
		name  string
		stats venus.Stats
	}
	results := simtime.NewQueue[clientDone](w.sim)

	runClient := func(name string, id uint32, laptop bool, crng *rand.Rand) {
		// Each client mounts a handful of volumes and hoards their trees.
		mountCount := 3 + crng.Intn(5)
		mounts := crng.Perm(len(vols))[:mountCount]

		v := w.venus(name, venus.Config{
			ClientID:        id,
			CacheBytes:      256 << 20,
			HoardInterval:   time.Hour,
			TrickleInterval: 10 * time.Minute,
		})
		for _, vi := range mounts {
			if err := v.Mount(vols[vi].name); err != nil {
				panic(err)
			}
			v.HoardAdd(codafs.JoinPath(vols[vi].name), 500, true)
		}
		if err := v.HoardWalk(); err != nil {
			panic(fmt.Sprintf("fig9 prefetch walk: %v", err))
		}

		expHours := func(mean float64) time.Duration {
			return time.Duration(crng.ExpFloat64() * mean * float64(time.Hour))
		}
		deadline := w.sim.Now().Add(duration)
		for w.sim.Now().Before(deadline) {
			// Connected period.
			w.sim.Sleep(expHours(2.5))
			if !w.sim.Now().Before(deadline) {
				break
			}
			// Disconnect: desktops have short outages, laptops travel.
			w.net.SetUp(name, "server", false)
			v.Disconnect()
			if laptop {
				w.sim.Sleep(expHours(2.0))
			} else {
				w.sim.Sleep(expHours(0.7))
			}
			w.net.SetUp(name, "server", true)
			bw := int64(10_000_000)
			if laptop {
				// Laptops reconnect over whatever is at hand.
				switch crng.Intn(3) {
				case 0:
					bw = 2_000_000
				case 1:
					bw = 64_000
				case 2:
					bw = 10_000_000
				}
			}
			v.Connect(bw)
		}
		results.Put(clientDone{name: name, stats: v.Stats()})
	}

	var res Fig9Result
	res.Weeks = weeks
	w.sim.Run(func() {
		// Cross-client update traffic, server-side.
		for _, vi := range vols {
			vi := vi
			urng := rand.New(rand.NewSource(opts.Seed + int64(len(vi.name))*31 + int64(vi.name[3])))
			w.sim.Go(func() {
				deadline := w.sim.Now().Add(duration)
				for {
					meanH := 240.0 // quiet: ~10 days between updates
					if vi.busy {
						meanH = 12.0
					}
					w.sim.Sleep(time.Duration(urng.ExpFloat64() * meanH * float64(time.Hour)))
					if !w.sim.Now().Before(deadline) {
						return
					}
					f := urng.Intn(vi.files)
					w.mustWrite(vi.name, fmt.Sprintf("d%d/f%03d", f%3, f), make([]byte, 2048+urng.Intn(8192)))
				}
			})
		}

		id := uint32(1)
		for _, name := range desktops {
			name := name
			cid := id
			crng := rand.New(rand.NewSource(opts.Seed + int64(cid)*101))
			id++
			w.sim.Go(func() { runClient(name, cid, false, crng) })
		}
		for _, name := range laptops {
			name := name
			cid := id
			crng := rand.New(rand.NewSource(opts.Seed + int64(cid)*101))
			id++
			w.sim.Go(func() { runClient(name, cid, true, crng) })
		}

		byName := make(map[string]venus.Stats)
		for i := 0; i < len(desktops)+len(laptops); i++ {
			done, _ := results.Get()
			byName[done.name] = done.stats
		}
		for _, name := range desktops {
			res.Desktops = append(res.Desktops, fig9Row(name, byName[name]))
		}
		for _, name := range laptops {
			res.Laptops = append(res.Laptops, fig9Row(name, byName[name]))
		}
	})
	res.addSnapshot("deployment", w.reg)
	return res
}

func fig9Row(name string, st venus.Stats) Fig9Row {
	row := Fig9Row{Client: name, Attempts: st.VolValidations}
	total := st.VolValidations + st.MissingStamp
	if total > 0 {
		row.MissingPct = 100 * float64(st.MissingStamp) / float64(total)
	}
	if st.VolValidations > 0 {
		row.SuccessPct = 100 * float64(st.VolValidationsOK) / float64(st.VolValidations)
	}
	if st.VolValidationsOK > 0 {
		row.ObjsPerSuccess = float64(st.ObjsSavedByVolume) / float64(st.VolValidationsOK)
	}
	return row
}

// Render prints the two tables with group means, as in the paper.
func (r Fig9Result) Render() string {
	render := func(title string, rows []Fig9Row) string {
		t := newTable(12, 14, 12, 12, 14)
		t.row("Client", "MissingStamp", "Attempts", "Success", "Objs/Success")
		t.line()
		var mMiss, mAtt, mSucc, mObjs float64
		for _, row := range rows {
			t.row(row.Client,
				fmt.Sprintf("%.0f%%", row.MissingPct),
				fmt.Sprintf("%d", row.Attempts),
				fmt.Sprintf("%.0f%%", row.SuccessPct),
				fmt.Sprintf("%.0f", row.ObjsPerSuccess))
			mMiss += row.MissingPct
			mAtt += float64(row.Attempts)
			mSucc += row.SuccessPct
			mObjs += row.ObjsPerSuccess
		}
		n := float64(len(rows))
		t.line()
		t.row("Mean",
			fmt.Sprintf("%.0f%%", mMiss/n),
			fmt.Sprintf("%.0f", mAtt/n),
			fmt.Sprintf("%.0f%%", mSucc/n),
			fmt.Sprintf("%.0f", mObjs/n))
		return title + "\n" + t.String()
	}
	out := fmt.Sprintf("Figure 9: Observed Volume Validation Statistics (%d weeks)\n", r.Weeks)
	out += render("(a) Desktops", r.Desktops)
	out += render("(b) Laptops", r.Laptops)
	return out
}
