package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFigure1Shape(t *testing.T) {
	res := Figure1(Options{Seed: 1, Quick: true})
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	get := func(proto, network string) Fig1Row {
		for _, r := range res.Rows {
			if r.Protocol == proto && r.Network.Name == network {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", proto, network)
		return Fig1Row{}
	}
	// Paper's shape: both protocols near line speed on the modem, SFTP at
	// or above TCP nearly everywhere, Ethernet ≫ WaveLan ≫ Modem.
	for _, proto := range []string{"TCP", "SFTP"} {
		e, w, m := get(proto, "Ethernet"), get(proto, "WaveLan"), get(proto, "Modem")
		if !(e.RecvKbps > w.RecvKbps && w.RecvKbps > m.RecvKbps) {
			t.Errorf("%s recv ordering broken: E=%.0f W=%.0f M=%.0f", proto, e.RecvKbps, w.RecvKbps, m.RecvKbps)
		}
		if m.RecvKbps < 5.5 || m.RecvKbps > 9.6 {
			t.Errorf("%s modem recv = %.1f Kb/s, want 5.5–9.6 (paper: 6.6-6.8)", proto, m.RecvKbps)
		}
		if e.RecvKbps < 1000 {
			t.Errorf("%s Ethernet recv = %.0f Kb/s, want ≥ 1 Mb/s", proto, e.RecvKbps)
		}
	}
	sftpE, tcpE := get("SFTP", "Ethernet"), get("TCP", "Ethernet")
	if sftpE.RecvKbps < tcpE.RecvKbps*0.85 {
		t.Errorf("SFTP Ethernet (%.0f) far below TCP (%.0f); paper has SFTP ≥ TCP",
			sftpE.RecvKbps, tcpE.RecvKbps)
	}
	// The paper's WaveLan rows: SFTP roughly doubles TCP on the lossy
	// wireless link (1152 vs 568 Kb/s). The gap only develops over full
	// 1 MB transfers; quick mode's short streams just require parity.
	sftpW, tcpW := get("SFTP", "WaveLan"), get("TCP", "WaveLan")
	need := 0.9
	if res.TransferBytes >= 1<<20 {
		need = 1.3
	}
	if sftpW.RecvKbps < tcpW.RecvKbps*need {
		t.Errorf("SFTP WaveLan (%.0f) vs TCP (%.0f): below %.1fx; paper shows ~2x at full scale",
			sftpW.RecvKbps, tcpW.RecvKbps, need)
	}
	if !strings.Contains(res.Render(), "SFTP") {
		t.Error("Render missing protocol name")
	}
}

func TestFigure4Shape(t *testing.T) {
	res := Figure4(Options{Seed: 1, Quick: true})
	if len(res.Curves) == 0 {
		t.Fatal("no curves")
	}
	for _, c := range res.Curves {
		last := c.Points[len(c.Points)-1]
		if last.A != 4*time.Hour || last.Ratio < 0.999 {
			t.Errorf("%s: final point %v=%.2f, want 1.0 at 4h", c.Trace, last.A, last.Ratio)
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Ratio+1e-9 < c.Points[i-1].Ratio {
				t.Errorf("%s: ratio not monotone at %v", c.Trace, c.Points[i].A)
			}
		}
		if c.BaselineMB <= 0 {
			t.Errorf("%s: zero baseline", c.Trace)
		}
	}
	_ = res.Render()
}

func TestFigure7MatchesPaperClaims(t *testing.T) {
	res := Figure7(Options{})
	find := func(pri int, size int64) Fig7Sample {
		for _, s := range res.Samples {
			if s.Priority == pri && s.Size == size {
				return s
			}
		}
		t.Fatalf("sample %d/%d missing", pri, size)
		return Fig7Sample{}
	}
	// "At 9.6 Kb/s, only the files at priority 900 and the 1KB file at
	// priority 500 are below τ."
	for _, s := range res.Samples {
		below := s.BelowTau[9600]
		wantBelow := s.Priority == 900 || (s.Priority == 500 && s.Size == 1<<10)
		if below != wantBelow {
			t.Errorf("9.6Kb/s: P=%d size=%d below=%v, want %v", s.Priority, s.Size, below, wantBelow)
		}
	}
	// "At 64 Kb/s, the 1MB file at priority 500 is also below τ."
	if !find(500, 1<<20).BelowTau[64_000] {
		t.Error("64Kb/s: 1MB at priority 500 not below τ")
	}
	// "At 2Mb/s, all files except the 4MB and 8MB files at priority 100
	// are below τ."
	for _, s := range res.Samples {
		below := s.BelowTau[2_000_000]
		wantBelow := !(s.Priority == 100)
		if below != wantBelow {
			t.Errorf("2Mb/s: P=%d size=%d below=%v, want %v", s.Priority, s.Size, below, wantBelow)
		}
	}
	// The worked example from §4.4.4: 60 s at 64 Kb/s ≈ 480 KB.
	if got := res.Params.MaxFileSize(0, 64_000); got > 100_000 {
		t.Errorf("unhoarded max at 64Kb/s = %d, want small (τ=3s → 24KB)", got)
	}
	_ = res.Render()
}

func TestFigure8Shape(t *testing.T) {
	res := Figure8(Options{Seed: 1, Quick: true})
	cell := func(user, scheme, network string) float64 {
		for _, c := range res.Cells {
			if c.User == user && c.Scheme == scheme && c.Network.Name == network {
				return c.Seconds
			}
		}
		t.Fatalf("missing cell %s/%s/%s", user, scheme, network)
		return 0
	}
	for _, p := range res.Profiles {
		// Volume callbacks always at least as fast, dramatically so on
		// the modem.
		for _, nw := range []string{"Ethernet", "WaveLan", "ISDN", "Modem"} {
			if cell(p.User, "volume", nw) > cell(p.User, "object", nw)+0.001 {
				t.Errorf("%s/%s: volume (%.2fs) slower than object (%.2fs)",
					p.User, nw, cell(p.User, "volume", nw), cell(p.User, "object", nw))
			}
		}
		objRatio := cell(p.User, "object", "Modem") / cell(p.User, "object", "Ethernet")
		volRatio := cell(p.User, "volume", "Modem") / cell(p.User, "volume", "Ethernet")
		// At full scale the local cache walk dominates and this ratio is
		// ~1.25 (the paper's claim); quick mode's small caches leave the
		// single RTT more visible.
		limit := 2.0
		if res.Profiles[0].Objects < 1000 {
			limit = 10.0
		}
		if volRatio > limit {
			t.Errorf("%s: volume validation at modem %.1f× Ethernet; paper ≈ 1.25×", p.User, volRatio)
		}
		if objRatio < 3 {
			t.Errorf("%s: object validation at modem only %.1f× Ethernet; should blow up", p.User, objRatio)
		}
		if cell(p.User, "object", "Modem") < 5*cell(p.User, "volume", "Modem") {
			t.Errorf("%s: modem speedup from volume callbacks only %.1f×",
				p.User, cell(p.User, "object", "Modem")/cell(p.User, "volume", "Modem"))
		}
	}
	_ = res.Render()
}

func TestFigure9Shape(t *testing.T) {
	res := Figure9(Options{Seed: 1, Quick: true})
	all := append(append([]Fig9Row{}, res.Desktops...), res.Laptops...)
	if len(all) != 5 {
		t.Fatalf("clients = %d, want 5 in quick mode", len(all))
	}
	for _, r := range all {
		if r.Attempts < 10 {
			t.Errorf("%s: only %d validation attempts", r.Client, r.Attempts)
		}
		if r.SuccessPct < 80 {
			t.Errorf("%s: success %.0f%%, paper is ~89-99%%", r.Client, r.SuccessPct)
		}
		if r.MissingPct > 30 {
			t.Errorf("%s: missing stamp %.0f%%, paper ≤ 13%%", r.Client, r.MissingPct)
		}
		if r.ObjsPerSuccess < 3 {
			t.Errorf("%s: objs/success = %.0f, paper 5-171", r.Client, r.ObjsPerSuccess)
		}
	}
	_ = res.Render()
}

func TestFigure10Shape(t *testing.T) {
	res := Figure10(Options{Seed: 1, Quick: true})
	if res.Segments < 8 {
		t.Fatalf("only %d segments qualified", res.Segments)
	}
	if res.Below20 < 0.10 || res.Below20 > 0.60 {
		t.Errorf("below-20%% fraction = %.2f, paper ≈ 1/3", res.Below20)
	}
	if res.Mid40to100 < 0.35 {
		t.Errorf("40-100%% fraction = %.2f, paper ≈ 2/3", res.Mid40to100)
	}
	_ = res.Render()
}

func TestFigure11Table(t *testing.T) {
	res := Figure11(Options{Seed: 0})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	wantOrder := []float64{0.08, 0.32, 0.69, 0.94}
	for i, row := range res.Rows {
		if diff := row.Compressibility - wantOrder[i]; diff > 0.10 || diff < -0.10 {
			t.Errorf("%s compressibility %.2f, paper %.2f", row.Segment, row.Compressibility, wantOrder[i])
		}
		if row.OptKB <= 0 || row.UnoptKB < row.OptKB {
			t.Errorf("%s: KB columns inconsistent: unopt=%d opt=%d", row.Segment, row.UnoptKB, row.OptKB)
		}
	}
	_ = res.Render()
}

func TestFigureReplShape(t *testing.T) {
	res := FigureRepl(Options{Seed: 1, Quick: true})
	if res.SingleClientBytes == 0 || res.GroupClientBytes == 0 {
		t.Fatalf("no wire traffic measured: single=%d group=%d",
			res.SingleClientBytes, res.GroupClientBytes)
	}
	// The acceptance bound: three replicas must not cost the client's
	// link more than 2× a single server (it should be barely above 1× —
	// the client ships once and fails over, it does not multicast).
	if res.ClientRatioX100 > 200 {
		t.Errorf("client-link overhead = %d/100, want ≤ 200", res.ClientRatioX100)
	}
	// Ship traffic between members is real, so the total must exceed the
	// client link's share.
	if res.GroupTotalBytes <= res.GroupClientBytes {
		t.Errorf("group total %d ≤ client share %d; no ship traffic measured?",
			res.GroupTotalBytes, res.GroupClientBytes)
	}
	// The failure phase: the kill was survived via failover, the rebooted
	// member pulled its missed suffix, and the group converged.
	if res.Failovers == 0 {
		t.Error("no failovers despite a member kill")
	}
	if res.FailoverWaitUS == 0 {
		t.Error("failover wait not measured")
	}
	if res.CatchupRecords == 0 {
		t.Error("restarted member caught up zero records")
	}
	if !res.Identical {
		t.Error("replicas not byte-identical after recovery")
	}
	if len(res.RegistrySnapshots()) != 2 {
		t.Errorf("snapshots = %d, want single + replicated", len(res.RegistrySnapshots()))
	}
	_ = res.Render()
}

func TestFigure12Insulation(t *testing.T) {
	res := Figure12(Options{Seed: 1, Quick: true})
	combo := Fig12Combo{time.Second, 600 * time.Second}
	cells := res.Cells[combo]
	if cells == nil {
		t.Fatal("missing quick combo")
	}
	for _, seg := range res.Segments {
		e := cells[seg]["Ethernet"].Mean
		m := cells[seg]["Modem"].Mean
		if e <= 0 || m <= 0 {
			t.Fatalf("%s: zero elapsed (E=%.0f M=%.0f)", seg, e, m)
		}
		// The insulation result: elapsed time almost unchanged across
		// three orders of magnitude of bandwidth (paper: ~2% mean, 11%
		// worst case).
		slowdown := m/e - 1
		if slowdown > 0.15 || slowdown < -0.15 {
			t.Errorf("%s: modem %.0fs vs Ethernet %.0fs (%.0f%%); trickle should insulate",
				seg, m, e, slowdown*100)
		}
	}

	// Figure 14 shape: on the modem, less data is shipped and more stays
	// in the CML than on Ethernet.
	for _, seg := range res.Segments {
		f := res.Fig14[seg]
		if f == nil {
			t.Fatalf("no Fig14 data for %s", seg)
		}
		eth, modem := f["Ethernet"], f["Modem"]
		if modem.ShippedKB > eth.ShippedKB+1 {
			t.Errorf("%s: modem shipped %.0fKB > Ethernet %.0fKB", seg, modem.ShippedKB, eth.ShippedKB)
		}
		if modem.EndKB+1 < eth.EndKB {
			t.Errorf("%s: modem end CML %.0fKB < Ethernet %.0fKB; should accumulate", seg, modem.EndKB, eth.EndKB)
		}
		if modem.OptimizedKB+1 < eth.OptimizedKB {
			t.Errorf("%s: modem optimized %.0fKB < Ethernet %.0fKB; longer CML residence should optimize more",
				seg, modem.OptimizedKB, eth.OptimizedKB)
		}
	}
	_ = res.Render()
}
