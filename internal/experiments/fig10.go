package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/trace"
)

// Fig10Result reproduces Figure 10 (Compressibility of Trace Segments): a
// histogram of segment compressibility over 45-minute high-activity
// segments whose optimized CML is at least 1 MB.
type Fig10Result struct {
	ObsSnapshots
	Segments   int
	Buckets    [10]int // [0-10%), [10-20%), ...
	Below20    float64 // fraction of segments under 20% (paper: ~1/3)
	Mid40to100 float64
}

// Figure10 generates a population of segments with the diversity observed
// in the paper's traces (a low-compressibility cluster and a broad 40-100%
// cluster) and histograms their measured compressibility.
func Figure10(opts Options) Fig10Result {
	opts.fill()
	n := 60
	if opts.Quick {
		n = 16
	}
	rng := rand.New(rand.NewSource(opts.Seed + 77))
	var res Fig10Result
	for i := 0; i < n; i++ {
		p := randomSegment(rng, opts.Seed+int64(i))
		tr := trace.Generate(p)
		an := trace.AnalyzeCML(tr, trace.NoAging)
		if an.AppendedBytes-an.SavedBytes < 1<<20 {
			// The paper only histograms segments whose final CML is
			// 1 MB or more.
			continue
		}
		c := an.Compressibility()
		b := int(c * 10)
		if b > 9 {
			b = 9
		}
		res.Buckets[b]++
		res.Segments++
	}
	for b, cnt := range res.Buckets {
		frac := float64(cnt) / float64(res.Segments)
		if b < 2 {
			res.Below20 += frac
		}
		if b >= 4 {
			res.Mid40to100 += frac
		}
	}
	// Trace analysis runs no simulated world; the snapshot is the
	// deterministic empty dump.
	res.addSnapshot("model", modelRegistry())
	return res
}

// randomSegment draws generation parameters matching the population of
// Figure 10: roughly a third of segments below 20% compressibility, the
// rest spread over 40–100%.
func randomSegment(rng *rand.Rand, seed int64) trace.GenParams {
	var target float64
	if rng.Float64() < 0.34 {
		target = 0.02 + 0.16*rng.Float64()
	} else {
		target = 0.40 + 0.58*rng.Float64()
	}
	rewrite := 1 / (1 - target)
	if rewrite > 40 {
		rewrite = 40
	}
	return trace.GenParams{
		Name:          fmt.Sprintf("seg%d", seed),
		Seed:          seed,
		Duration:      45 * time.Minute,
		Updates:       400 + rng.Intn(900),
		RefsPerUpdate: 40 + rng.Intn(120),
		MeanWriteKB:   6 + 30*rng.Float64(),
		RewriteMean:   rewrite,
		RewriteGap:    time.Duration(8+rng.Intn(25)) * time.Second,
		TempFileFrac:  0.03 * rng.Float64(),
		DirCount:      30,
		FilesPerDir:   25,
	}
}

// Render prints the histogram.
func (r Fig10Result) Render() string {
	t := newTable(14, 8, 40)
	t.row("Compress.", "Count", "")
	t.line()
	for b, cnt := range r.Buckets {
		bar := ""
		for i := 0; i < cnt; i++ {
			bar += "#"
		}
		t.row(fmt.Sprintf("%d-%d%%", b*10, (b+1)*10), fmt.Sprintf("%d", cnt), bar)
	}
	return fmt.Sprintf("Figure 10: Compressibility of Trace Segments (%d segments ≥1MB; %.0f%% below 20%%, %.0f%% in 40-100%%)\n%s",
		r.Segments, r.Below20*100, r.Mid40to100*100, t.String())
}
