// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrate. Each FigureN function builds
// the worlds it needs (server, network emulator, Venus clients), runs the
// experiment on virtual time, and returns a typed result whose Render
// method prints rows in the paper's format. cmd/codabench and the
// repository-level benchmarks call these; EXPERIMENTS.md records the
// outputs next to the paper's numbers.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// Options control experiment scale.
type Options struct {
	// Seed drives all randomness; trials use Seed, Seed+1, ...
	Seed int64
	// Trials per cell (default 5, as in the paper).
	Trials int
	// Quick shrinks workloads for unit tests and benchmarks: fewer
	// trials, smaller transfers, shorter simulated spans. Tables keep
	// their shape but not their precision.
	Quick bool
}

func (o *Options) fill() {
	if o.Trials == 0 {
		if o.Quick {
			o.Trials = 2
		} else {
			o.Trials = 5
		}
	}
}

// world bundles one simulated deployment. Every component registers its
// metrics in the shared reg (handles carry node labels, so the server and
// any number of clients coexist without name collisions); figures dump it
// at the end of a run so codabench can emit the metrics next to the
// series.
type world struct {
	sim *simtime.Sim
	net *netsim.Network
	srv *server.Server
	reg *obs.Registry
}

func newWorld(seed int64) *world {
	s := simtime.NewSim(simtime.Epoch1995)
	n := netsim.New(s, seed)
	n.SetDefaults(netsim.Ethernet.Params())
	reg := obs.NewRegistry(s)
	return &world{sim: s, net: n, srv: server.New(s, n.Host("server"), server.WithObs(reg)), reg: reg}
}

func (w *world) venus(name string, cfg venus.Config) *venus.Venus {
	cfg.Server = "server"
	cfg.Obs = w.reg
	return venus.New(w.sim, w.net.Host(name), cfg)
}

// RegistrySnapshot is one deterministic obs.Registry dump captured at the
// end of an experiment run.
type RegistrySnapshot struct {
	Label string          `json:"label"`
	Dump  json.RawMessage `json:"dump"`
}

// ObsSnapshots is embedded in every figure result. It is excluded from the
// series JSON (codabench emits it as a sibling "metrics" field) and from
// Render output; it exists so the same run that produced a figure also
// yields its registry dumps.
type ObsSnapshots struct {
	Snapshots []RegistrySnapshot `json:"-"`
}

// addSnapshot appends reg's dump under label. Nil registries are skipped so
// callers never need to guard.
func (o *ObsSnapshots) addSnapshot(label string, reg *obs.Registry) {
	if reg == nil {
		return
	}
	o.Snapshots = append(o.Snapshots, RegistrySnapshot{Label: label, Dump: reg.Dump()})
}

// RegistrySnapshots is the interface codabench type-asserts on results.
func (o ObsSnapshots) RegistrySnapshots() []RegistrySnapshot { return o.Snapshots }

// modelRegistry returns an empty registry pinned to the sim epoch, used by
// figures that are pure model evaluations (no simulated world): their
// snapshot is the deterministic empty dump.
func modelRegistry() *obs.Registry {
	return obs.NewRegistry(simtime.NewSim(simtime.Epoch1995))
}

func (w *world) setLink(client string, p netsim.Profile) {
	w.net.SetLink(client, "server", p.Params())
}

// mustVol creates a volume during experiment setup. The sim is
// deterministic, so a failure means the experiment itself is broken;
// panicking beats silently regenerating a figure from a half-built
// world.
func (w *world) mustVol(name string) {
	if _, err := w.srv.CreateVolume(name); err != nil {
		panic(fmt.Sprintf("experiment setup: create volume %s: %v", name, err))
	}
}

// mustWrite writes a server-side file during experiment setup.
func (w *world) mustWrite(vol, relPath string, data []byte) {
	if _, err := w.srv.WriteFile(vol, relPath, data); err != nil {
		panic(fmt.Sprintf("experiment setup: write %s/%s: %v", vol, relPath, err))
	}
}

// meanStd returns the mean and (population) standard deviation of xs.
func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}

// table is a small fixed-width text table builder for Render methods.
type table struct {
	b      strings.Builder
	widths []int
}

func newTable(widths ...int) *table { return &table{widths: widths} }

func (t *table) row(cells ...string) {
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		fmt.Fprintf(&t.b, "%-*s", w, c)
	}
	t.b.WriteByte('\n')
}

func (t *table) line() {
	n := 0
	for _, w := range t.widths {
		n += w
	}
	t.b.WriteString(strings.Repeat("-", n))
	t.b.WriteByte('\n')
}

func (t *table) String() string { return t.b.String() }

func kb(n int64) string { return fmt.Sprintf("%d", (n+512)/1024) }

func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }
