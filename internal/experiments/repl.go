package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/crashfs"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
	"repro/internal/wal"
)

// ReplResult quantifies server replication (the paper's replicated volume
// storage groups, §2; ROADMAP item 1): what a three-member group costs on
// the client's link relative to a single server, and how the group behaves
// through a member failure — client failover latency, catch-up volume, and
// end-state byte identity across replicas.
//
// The gated number is the client-link overhead. Replication fans writes
// out between servers, but the client still ships each update once and
// fails over rather than multicasting — so the weak link the paper is
// about must not pay for the extra replicas. The ratio is exported ×100
// as experiments_repl_client_wire_ratio_x100 with a ≤2× acceptance bound.
type ReplResult struct {
	ObsSnapshots
	Members   int
	Files     int
	FileBytes int

	// Client-link wire bytes (both directions, same workload).
	SingleClientBytes int64
	GroupClientBytes  int64
	// Totals including server↔server ship traffic.
	SingleTotalBytes int64
	GroupTotalBytes  int64
	// GroupClientBytes / SingleClientBytes × 100.
	ClientRatioX100 int64

	// Failure phase (group run only): one member killed mid-workload.
	Failovers      int64
	FailoverWaitUS int64
	CatchupRecords int64
	Identical      bool
}

// replRunOut is one deployment's measurements.
type replRunOut struct {
	clientBytes int64
	totalBytes  int64
	reg         *obs.Registry
	failovers   int64
	failWaitUS  int64
	catchup     int64
	identical   bool
}

func replJournalOpts(mem *crashfs.Mem) server.JournalOptions {
	return server.JournalOptions{FS: mem, Dir: "sj", Policy: wal.SyncEachRecord}
}

// replWireBytes sums wire bytes over the client link (laptop↔members)
// and over every link in the deployment (adding member↔member ship
// traffic).
func replWireBytes(net *netsim.Network, members int) (client, total int64) {
	addr := func(i int) string { return fmt.Sprintf("srv%d", i) }
	for i := 0; i < members; i++ {
		client += net.StatsBetween("laptop", addr(i)).BytesSent
		client += net.StatsBetween(addr(i), "laptop").BytesSent
		for j := 0; j < members; j++ {
			if j != i {
				total += net.StatsBetween(addr(i), addr(j)).BytesSent
			}
		}
	}
	total += client
	return client, total
}

// replRun drives the workload against a members-sized group: connected
// writes, then (when fail is set) a member kill mid-workload, more writes
// riding on failover, and a journal-replay restart followed by CatchUp.
func replRun(opts Options, members, files, fileBytes, extraFiles int, fail bool) replRunOut {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, opts.Seed+41+int64(members))
	net.SetDefaults(netsim.Ethernet.Params())
	reg := obs.NewRegistry(sim)
	conns := make([]netsim.PacketConn, members)
	for i := range conns {
		conns[i] = net.Host(fmt.Sprintf("srv%d", i))
	}
	grp, err := group.New(sim, conns, group.WithObs(reg))
	if err != nil {
		panic(fmt.Sprintf("repl setup: %v", err))
	}
	var mems []*crashfs.Mem
	if fail {
		mems = make([]*crashfs.Mem, members)
		for i := range mems {
			mems[i] = crashfs.NewMem()
			if _, err := grp.Member(i).AttachJournal(replJournalOpts(mems[i])); err != nil {
				panic(fmt.Sprintf("repl setup: journal: %v", err))
			}
		}
	}
	info, err := grp.CreateVolume("work")
	if err != nil {
		panic(fmt.Sprintf("repl setup: %v", err))
	}

	out := replRunOut{reg: reg}
	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Servers:         grp.Addrs(),
			ClientID:        1,
			Obs:             reg,
			TrickleInterval: time.Second,
		})
		if err := v.Mount("work"); err != nil {
			panic(err)
		}
		payload := make([]byte, fileBytes)
		for i := range payload {
			payload[i] = byte(i)
		}
		for f := 0; f < files; f++ {
			if err := v.WriteFile(fmt.Sprintf("/coda/work/f%03d.txt", f), payload); err != nil {
				panic(err)
			}
		}
		sim.Sleep(30 * time.Second) // let ships drain
		out.clientBytes, out.totalBytes = replWireBytes(net, members)

		if !fail {
			return
		}
		// Kill the client's preferred member mid-workload. The writes that
		// follow must succeed through failover; the client pays one RPC
		// timeout, recorded as failover wait.
		victim := int(uint64(info.ID) % uint64(members))
		grp.Member(victim).Close()
		for f := 0; f < extraFiles; f++ {
			if err := v.WriteFile(fmt.Sprintf("/coda/work/g%03d.txt", f), payload); err != nil {
				panic(fmt.Sprintf("repl: write during member outage: %v", err))
			}
		}
		st := v.Stats()
		out.failovers = st.Failovers
		//codalint:ignore obsname reading Venus's existing failover-wait series, not registering an experiments one
		out.failWaitUS = reg.Counter("venus_failover_wait_us_total", obs.L("client", "laptop")).Value()

		// Reboot the victim: fresh process on the old address, WAL replay,
		// then a pull of everything it missed from the member the client
		// failed over to.
		fresh := server.New(sim, net.Host(grp.Addrs()[victim]),
			server.WithPeers(grp.PeerAddrs(victim)...), server.WithObs(reg))
		if _, err := fresh.AttachJournal(replJournalOpts(mems[victim])); err != nil {
			panic(fmt.Sprintf("repl: recovery: %v", err))
		}
		if err := grp.ReplaceMember(victim, fresh); err != nil {
			panic(err)
		}
		if err := fresh.CatchUp(grp.Addrs()[(victim+1)%members]); err != nil {
			panic(fmt.Sprintf("repl: catch-up: %v", err))
		}
		sim.Sleep(10 * time.Second)
		out.catchup = fresh.Stats().CatchupRecords

		out.identical = true
		var img0 bytes.Buffer
		if err := grp.Member(0).SaveState(&img0); err != nil {
			panic(err)
		}
		for i := 1; i < members; i++ {
			var img bytes.Buffer
			if err := grp.Member(i).SaveState(&img); err != nil {
				panic(err)
			}
			if !bytes.Equal(img0.Bytes(), img.Bytes()) {
				out.identical = false
			}
		}
	})
	return out
}

// FigureRepl runs the replication overhead and failure experiment: the
// same connected workload against one server and against a three-member
// group, then a kill/restart/catch-up pass on the group.
func FigureRepl(opts Options) ReplResult {
	opts.fill()
	files, size, extra := 24, 8<<10, 6
	if opts.Quick {
		files, size, extra = 8, 2<<10, 3
	}
	res := ReplResult{Members: 3, Files: files, FileBytes: size}

	single := replRun(opts, 1, files, size, 0, false)
	grp := replRun(opts, res.Members, files, size, extra, true)

	res.SingleClientBytes, res.SingleTotalBytes = single.clientBytes, single.totalBytes
	res.GroupClientBytes, res.GroupTotalBytes = grp.clientBytes, grp.totalBytes
	if single.clientBytes > 0 {
		res.ClientRatioX100 = grp.clientBytes * 100 / single.clientBytes
	}
	res.Failovers = grp.failovers
	res.FailoverWaitUS = grp.failWaitUS
	res.CatchupRecords = grp.catchup
	res.Identical = grp.identical

	// The gated overhead series, exported from the group run's registry so
	// benchgate reads it out of the same snapshot as the failover series.
	grp.reg.Gauge("experiments_repl_client_wire_ratio_x100").Set(res.ClientRatioX100)
	res.addSnapshot("single", single.reg)
	res.addSnapshot("replicated", grp.reg)
	return res
}

// Render prints the comparison in the repo's table format.
func (r ReplResult) Render() string {
	t := newTable(26, 16, 16, 10)
	t.row("", "single", fmt.Sprintf("%d replicas", r.Members), "ratio")
	t.line()
	ratio := func(a, b int64) string {
		if a == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(b)/float64(a))
	}
	t.row("client-link KB", kb(r.SingleClientBytes), kb(r.GroupClientBytes),
		ratio(r.SingleClientBytes, r.GroupClientBytes))
	t.row("total wire KB", kb(r.SingleTotalBytes), kb(r.GroupTotalBytes),
		ratio(r.SingleTotalBytes, r.GroupTotalBytes))
	out := fmt.Sprintf("Replication: %d files × %d KB connected writes\n%s",
		r.Files, r.FileBytes>>10, t.String())
	out += fmt.Sprintf("member kill: %d failover(s), %d µs failover wait, "+
		"%d records caught up, byte-identical=%v\n",
		r.Failovers, r.FailoverWaitUS, r.CatchupRecords, r.Identical)
	return out
}
