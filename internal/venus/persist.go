package venus

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/crashfs"
)

// Persistence for the state that must survive a client crash or restart.
// The paper's Venus keeps the CML in recoverable virtual memory, which is
// what lets trickle reintegration defer propagation for hours: "local
// persistence of updates on a Coda client is assured by the CML" (§4.3.1).
// Here the CML of every volume and the hoard database are serialized
// together; cached file contents are an optimization and are refetched
// rather than persisted. See journal.go for the WAL that keeps the image
// current between snapshots.

// stateImage is the serialized form of Venus's durable state. Each CML is
// pre-serialized to bytes so the whole image travels through one gob
// encoder (gob decoders read ahead, so streams cannot be safely chained).
type stateImage struct {
	HDB     []HDBEntry
	Volumes []string // names, aligned with Logs
	Logs    [][]byte // cml.Log.Save output per volume
	// JournalLSN is the watermark of the attached journal at snapshot
	// time: WAL entries at or below it are already reflected in this
	// image and must not be replayed over it. Zero when no journal was
	// attached.
	JournalLSN uint64
}

// SaveState writes the hoard database and every volume's CML to w.
// Call while no reintegration is in flight (e.g. at shutdown); a log is
// saved without its barrier, so an interrupted reintegration is simply
// retried after restart (the server's atomicity makes the retry safe).
func (v *Venus) SaveState(w io.Writer) error { return v.saveState(w, 0) }

func (v *Venus) saveState(w io.Writer, lsn uint64) error {
	// The image is gob-encoded and compared byte-for-byte by the crash
	// matrices, so every map is drained in sorted key order: identical
	// states must serialize identically.
	v.mu.Lock()
	img := stateImage{JournalLSN: lsn}
	paths := make([]string, 0, len(v.hdb))
	for p := range v.hdb {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		img.HDB = append(img.HDB, *v.hdb[p])
	}
	names := make([]string, 0, len(v.volumes))
	for name := range v.volumes {
		names = append(names, name)
	}
	sort.Strings(names)
	var logs []*cml.Log
	for _, name := range names {
		img.Volumes = append(img.Volumes, name)
		logs = append(logs, v.volumes[name].log)
	}
	v.mu.Unlock()

	for i, log := range logs {
		var buf bytes.Buffer
		if err := log.Save(&buf); err != nil {
			return fmt.Errorf("venus: save CML for %s: %w", img.Volumes[i], err)
		}
		img.Logs = append(img.Logs, buf.Bytes())
	}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("venus: save state: %w", err)
	}
	return nil
}

// decodeStateImage decodes a stateImage, converting any decoder panic on
// a truncated or corrupted stream into an error (a half-written state
// file must degrade to "start fresh or recover from the journal", never
// crash the client).
func decodeStateImage(r io.Reader) (img stateImage, err error) {
	defer func() {
		if p := recover(); p != nil {
			img = stateImage{}
			err = fmt.Errorf("venus: load state: corrupted image: %v", p)
		}
	}()
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return stateImage{}, fmt.Errorf("venus: load state: %w", err)
	}
	return img, nil
}

// LoadState restores state saved by SaveState. Volumes must already be
// mounted (Mount re-establishes server identity); CMLs for volumes that are
// not mounted are rejected with an error. Loaded records reintegrate through
// the ordinary trickle path once their age qualifies (their logged times
// are preserved, so a restart does not reset the aging window).
func (v *Venus) LoadState(r io.Reader) error {
	img, err := decodeStateImage(r)
	if err != nil {
		return err
	}
	if err := v.installImage(img); err != nil {
		return err
	}
	v.finishRestore()
	return nil
}

// installImage installs the image's HDB and per-volume CMLs. Cache
// reconstruction is deferred to finishRestore so a journal replay can
// still mutate the logs in between (AttachJournal's recovery sequence).
func (v *Venus) installImage(img stateImage) error {
	v.mu.Lock()
	for i := range img.HDB {
		e := img.HDB[i]
		v.hdb[e.Path] = &e
	}
	v.mu.Unlock()

	for i, name := range img.Volumes {
		log, err := cml.Load(bytes.NewReader(img.Logs[i]))
		if err != nil {
			return fmt.Errorf("venus: load CML for %s: %w", name, err)
		}
		v.mu.Lock()
		vc := v.volumes[name]
		if vc == nil {
			v.mu.Unlock()
			return fmt.Errorf("venus: CML for unmounted volume %q", name)
		}
		vc.log = log
		v.mu.Unlock()
	}
	return nil
}

// finishRestore replays the restored CML records into the cache so the
// local name space shows the offline work again (the paper's Venus
// persists its whole cache in RVM; here contents travel with the CML),
// re-seats the FID allocator above every restored allocation, and moves
// to write-disconnected if updates are pending.
func (v *Venus) finishRestore() {
	v.mu.Lock()
	for _, vc := range v.volumes {
		for _, rec := range vc.log.Records() {
			v.applyRestoredRecordLocked(rec)
			// FIDs this client minted encode ClientID in the top half of
			// the vnode; continue allocating above the restored ones so a
			// post-recovery create cannot collide with a logged one.
			if rec.FID.Vnode>>32 == uint64(v.cfg.ClientID) {
				if low := rec.FID.Vnode & 0xffffffff; low > v.nextVnode {
					v.nextVnode = low
				}
			}
		}
	}
	v.mu.Unlock()
	// A client restarting with pending updates is not fully synchronized:
	// run write-disconnected until the restored CML drains (the trickle
	// daemon promotes back to hoarding afterwards).
	if v.CMLRecords() > 0 && v.State() == Hoarding {
		v.transition(WriteDisconnected, "restored CML")
	}
}

// applyRestoredRecordLocked re-applies one restored CML record to the local
// cache: objects it created are reinstated, contents it stored become local
// truth, and parent directories regain the entries. Parents not currently
// cached are reconciled when fetched (see overlayPendingLocked).
func (v *Venus) applyRestoredRecordLocked(rec *cml.Record) {
	ensure := func(fid codafs.FID, typ codafs.ObjType) *fso {
		f := v.cache.get(fid)
		if f != nil {
			f.dirty = true
			return f
		}
		obj := &codafs.Object{Status: codafs.Status{
			FID: fid, Type: typ, Version: rec.PrevVersion,
			ModTime: rec.ModTime, Mode: rec.Mode, Owner: rec.Owner, Links: 1,
		}}
		if typ == codafs.Directory {
			obj.Children = make(map[string]codafs.FID)
		}
		return v.cache.install(obj, true)
	}
	addEntry := func(parent codafs.FID, name string, child codafs.FID) {
		if p := v.cache.get(parent); p != nil && p.obj.Children != nil {
			before := p.dataBytes()
			p.obj.Children[name] = child
			p.dirty = true
			v.cache.recharge(p, before)
		}
	}
	dropEntry := func(parent codafs.FID, name string) {
		if p := v.cache.get(parent); p != nil && p.obj.Children != nil {
			before := p.dataBytes()
			delete(p.obj.Children, name)
			p.dirty = true
			v.cache.recharge(p, before)
		}
	}

	switch rec.Kind {
	case cml.Create:
		ensure(rec.FID, codafs.File)
		addEntry(rec.Parent, rec.Name, rec.FID)
	case cml.Mkdir:
		ensure(rec.FID, codafs.Directory)
		addEntry(rec.Parent, rec.Name, rec.FID)
	case cml.MakeSymlink:
		f := ensure(rec.FID, codafs.Symlink)
		f.obj.Target = rec.Target
		addEntry(rec.Parent, rec.Name, rec.FID)
	case cml.Store:
		f := ensure(rec.FID, codafs.File)
		before := f.dataBytes()
		f.obj.Data = append([]byte(nil), rec.Data...)
		f.obj.Status.Length = rec.Length
		f.placeholder = false
		v.cache.recharge(f, before)
	case cml.SetAttr:
		f := ensure(rec.FID, codafs.File)
		if rec.Mode != 0 {
			f.obj.Status.Mode = rec.Mode
		}
	case cml.Remove, cml.Rmdir:
		dropEntry(rec.Parent, rec.Name)
		v.cache.remove(rec.FID)
	case cml.Link:
		addEntry(rec.Parent, rec.Name, rec.FID)
		if f := v.cache.get(rec.FID); f != nil {
			f.dirty = true
		}
	case cml.Rename:
		dropEntry(rec.Parent, rec.Name)
		addEntry(rec.NewParent, rec.NewName, rec.FID)
		if f := v.cache.get(rec.FID); f != nil {
			f.dirty = true
		}
	}
}

// SaveStateFS persists to path atomically on fs, with the full fsync
// discipline: file contents are synced before the rename, and the parent
// directory is synced after it — without the directory sync the rename
// itself is volatile and a crash can resurrect the previous image (or
// leave nothing at all).
func (v *Venus) SaveStateFS(fs crashfs.FS, path string) error {
	return v.saveStateFS(fs, path, 0)
}

func (v *Venus) saveStateFS(fs crashfs.FS, path string, lsn uint64) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := v.saveState(f, lsn); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// SaveStateFile persists to path atomically on the real filesystem.
func (v *Venus) SaveStateFile(path string) error {
	return v.SaveStateFS(crashfs.OS{}, path)
}

// LoadStateFS restores from a file written by SaveStateFS. A missing
// file is not an error (first run).
func (v *Venus) LoadStateFS(fs crashfs.FS, path string) error {
	f, err := fs.Open(path)
	if crashfs.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return v.LoadState(f)
}

// LoadStateFile restores from a file written by SaveStateFile. A missing
// file is not an error (first run).
func (v *Venus) LoadStateFile(path string) error {
	return v.LoadStateFS(crashfs.OS{}, path)
}
