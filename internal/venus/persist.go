package venus

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cml"
	"repro/internal/codafs"
)

// Persistence for the state that must survive a client crash or restart.
// The paper's Venus keeps the CML in recoverable virtual memory, which is
// what lets trickle reintegration defer propagation for hours: "local
// persistence of updates on a Coda client is assured by the CML" (§4.3.1).
// Here the CML of every volume and the hoard database are serialized
// together; cached file contents are an optimization and are refetched
// rather than persisted.

// stateImage is the serialized form of Venus's durable state. Each CML is
// pre-serialized to bytes so the whole image travels through one gob
// encoder (gob decoders read ahead, so streams cannot be safely chained).
type stateImage struct {
	HDB     []HDBEntry
	Volumes []string // names, aligned with Logs
	Logs    [][]byte // cml.Log.Save output per volume
}

// SaveState writes the hoard database and every volume's CML to w.
// Call while no reintegration is in flight (e.g. at shutdown); a log is
// saved without its barrier, so an interrupted reintegration is simply
// retried after restart (the server's atomicity makes the retry safe).
func (v *Venus) SaveState(w io.Writer) error {
	v.mu.Lock()
	img := stateImage{}
	for _, e := range v.hdb {
		img.HDB = append(img.HDB, *e)
	}
	var logs []*cml.Log
	for name, vc := range v.volumes {
		img.Volumes = append(img.Volumes, name)
		logs = append(logs, vc.log)
	}
	v.mu.Unlock()

	for i, log := range logs {
		var buf bytes.Buffer
		if err := log.Save(&buf); err != nil {
			return fmt.Errorf("venus: save CML for %s: %w", img.Volumes[i], err)
		}
		img.Logs = append(img.Logs, buf.Bytes())
	}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("venus: save state: %w", err)
	}
	return nil
}

// LoadState restores state saved by SaveState. Volumes must already be
// mounted (Mount re-establishes server identity); CMLs for volumes that are
// not mounted are skipped with an error. Loaded records reintegrate through
// the ordinary trickle path once their age qualifies (their logged times
// are preserved, so a restart does not reset the aging window).
func (v *Venus) LoadState(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var img stateImage
	if err := dec.Decode(&img); err != nil {
		return fmt.Errorf("venus: load state: %w", err)
	}

	v.mu.Lock()
	for i := range img.HDB {
		e := img.HDB[i]
		v.hdb[e.Path] = &e
	}
	v.mu.Unlock()

	for i, name := range img.Volumes {
		log, err := cml.Load(bytes.NewReader(img.Logs[i]))
		if err != nil {
			return fmt.Errorf("venus: load CML for %s: %w", name, err)
		}
		v.mu.Lock()
		vc := v.volumes[name]
		if vc == nil {
			v.mu.Unlock()
			return fmt.Errorf("venus: CML for unmounted volume %q", name)
		}
		vc.log = log
		// Replay the restored records into the cache so the local name
		// space shows the offline work again (the paper's Venus persists
		// its whole cache in RVM; here contents travel with the CML).
		for _, rec := range log.Records() {
			v.applyRestoredRecordLocked(rec)
		}
		v.mu.Unlock()
	}
	// A client restarting with pending updates is not fully synchronized:
	// run write-disconnected until the restored CML drains (the trickle
	// daemon promotes back to hoarding afterwards).
	if v.CMLRecords() > 0 && v.State() == Hoarding {
		v.transition(WriteDisconnected, "restored CML")
	}
	return nil
}

// applyRestoredRecordLocked re-applies one restored CML record to the local
// cache: objects it created are reinstated, contents it stored become local
// truth, and parent directories regain the entries. Parents not currently
// cached are reconciled when fetched (see overlayPendingLocked).
func (v *Venus) applyRestoredRecordLocked(rec *cml.Record) {
	ensure := func(fid codafs.FID, typ codafs.ObjType) *fso {
		f := v.cache.get(fid)
		if f != nil {
			f.dirty = true
			return f
		}
		obj := &codafs.Object{Status: codafs.Status{
			FID: fid, Type: typ, Version: rec.PrevVersion,
			ModTime: rec.ModTime, Mode: rec.Mode, Owner: rec.Owner, Links: 1,
		}}
		if typ == codafs.Directory {
			obj.Children = make(map[string]codafs.FID)
		}
		return v.cache.install(obj, true)
	}
	addEntry := func(parent codafs.FID, name string, child codafs.FID) {
		if p := v.cache.get(parent); p != nil && p.obj.Children != nil {
			before := p.dataBytes()
			p.obj.Children[name] = child
			p.dirty = true
			v.cache.recharge(p, before)
		}
	}
	dropEntry := func(parent codafs.FID, name string) {
		if p := v.cache.get(parent); p != nil && p.obj.Children != nil {
			before := p.dataBytes()
			delete(p.obj.Children, name)
			p.dirty = true
			v.cache.recharge(p, before)
		}
	}

	switch rec.Kind {
	case cml.Create:
		ensure(rec.FID, codafs.File)
		addEntry(rec.Parent, rec.Name, rec.FID)
	case cml.Mkdir:
		ensure(rec.FID, codafs.Directory)
		addEntry(rec.Parent, rec.Name, rec.FID)
	case cml.MakeSymlink:
		f := ensure(rec.FID, codafs.Symlink)
		f.obj.Target = rec.Target
		addEntry(rec.Parent, rec.Name, rec.FID)
	case cml.Store:
		f := ensure(rec.FID, codafs.File)
		before := f.dataBytes()
		f.obj.Data = append([]byte(nil), rec.Data...)
		f.obj.Status.Length = rec.Length
		f.placeholder = false
		v.cache.recharge(f, before)
	case cml.SetAttr:
		f := ensure(rec.FID, codafs.File)
		if rec.Mode != 0 {
			f.obj.Status.Mode = rec.Mode
		}
	case cml.Remove, cml.Rmdir:
		dropEntry(rec.Parent, rec.Name)
		v.cache.remove(rec.FID)
	case cml.Link:
		addEntry(rec.Parent, rec.Name, rec.FID)
		if f := v.cache.get(rec.FID); f != nil {
			f.dirty = true
		}
	case cml.Rename:
		dropEntry(rec.Parent, rec.Name)
		addEntry(rec.NewParent, rec.NewName, rec.FID)
		if f := v.cache.get(rec.FID); f != nil {
			f.dirty = true
		}
	}
}

// SaveStateFile persists to path atomically (write + rename).
func (v *Venus) SaveStateFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := v.SaveState(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadStateFile restores from a file written by SaveStateFile. A missing
// file is not an error (first run).
func (v *Venus) LoadStateFile(path string) error {
	f, err := os.Open(filepath.Clean(path))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return v.LoadState(f)
}
