package venus_test

import (
	"testing"
	"time"

	"repro/internal/codafs"
	"repro/internal/venus"
)

// TestEveryOperationSurvivesDisconnection drives each mutating operation
// while disconnected and verifies the server converges to the identical
// namespace after reintegration.
func TestEveryOperationSurvivesDisconnection(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"keep.txt":   "original",
		"doomed.txt": "to be removed",
		"move-me":    "migrant",
		"dir/inner":  "nested",
	})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: 2 * time.Second})
		mustMount(t, v, "usr")
		v.HoardAdd("/coda/usr", 500, true)
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}

		w.net.SetUp("c1", "server", false)
		v.Disconnect()

		must(t, v.WriteFile("/coda/usr/created.txt", []byte("fresh")))
		must(t, v.SetAttr("/coda/usr/keep.txt", 0600))
		must(t, v.Remove("/coda/usr/doomed.txt"))
		must(t, v.Mkdir("/coda/usr/newdir"))
		must(t, v.Rename("/coda/usr/move-me", "/coda/usr/newdir/moved"))
		must(t, v.Symlink("newdir/moved", "/coda/usr/sym"))
		must(t, v.Link("/coda/usr/keep.txt", "/coda/usr/keep-hard"))
		must(t, v.Remove("/coda/usr/dir/inner"))
		must(t, v.Rmdir("/coda/usr/dir"))

		w.net.SetUp("c1", "server", true)
		v.Connect(10_000_000)
		w.sim.Sleep(time.Minute)
		if v.CMLRecords() != 0 {
			t.Fatalf("CML not drained: %d", v.CMLRecords())
		}
		if c := v.Conflicts(); len(c) != 0 {
			t.Fatalf("conflicts: %+v", c)
		}

		// Server-side verification of every effect.
		if got, _ := w.srv.ReadFile("usr", "created.txt"); string(got) != "fresh" {
			t.Errorf("created.txt = %q", got)
		}
		if st, _ := w.srv.Resolve("usr", "keep.txt"); st.Mode != 0600 {
			t.Errorf("keep.txt mode = %o", st.Mode)
		}
		if _, err := w.srv.Resolve("usr", "doomed.txt"); err == nil {
			t.Error("doomed.txt survived")
		}
		if got, _ := w.srv.ReadFile("usr", "newdir/moved"); string(got) != "migrant" {
			t.Errorf("newdir/moved = %q", got)
		}
		if st, _ := w.srv.Resolve("usr", "sym"); st.Type != codafs.Symlink {
			t.Errorf("sym type = %v", st.Type)
		}
		if got, _ := w.srv.ReadFile("usr", "keep-hard"); string(got) != "original" {
			t.Errorf("keep-hard = %q", got)
		}
		if _, err := w.srv.Resolve("usr", "dir"); err == nil {
			t.Error("dir survived rmdir")
		}
	})
}
