package venus_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/venus"
)

// editedCopy returns base with a few point edits — the workload deltas are
// built for.
func editedCopy(base []byte, marks ...int) []byte {
	out := append([]byte(nil), base...)
	for _, m := range marks {
		copy(out[m:], []byte("<edit>"))
	}
	return out
}

func TestDeltaShippingReducesModemTraffic(t *testing.T) {
	base := bytes.Repeat([]byte("report text "), 10_000) // 120 KB

	run := func(enable bool) (shipped int64, deltaStores int64) {
		w := newWorld(t)
		w.seed("usr", map[string]string{"report.doc": string(base)})
		w.sim.Run(func() {
			v := w.venus("c1", venus.Config{
				AgingWindow:          2 * time.Second,
				PinWriteDisconnected: true,
				EnableDeltas:         enable,
			})
			mustMount(t, v, "usr")
			if _, err := v.ReadFile("/coda/usr/report.doc"); err != nil {
				t.Fatal(err)
			}
			w.setLink("c1", netsim.Modem)
			v.Connect(9600)
			// A small edit to a large cached file.
			if err := v.WriteFile("/coda/usr/report.doc", editedCopy(base, 5000, 60_000)); err != nil {
				t.Fatal(err)
			}
			w.sim.Sleep(4 * time.Minute)
			if got, err := w.srv.ReadFile("usr", "report.doc"); err != nil ||
				!bytes.Equal(got, editedCopy(base, 5000, 60_000)) {
				t.Fatalf("server copy wrong after reintegration (enable=%v): %v", enable, err)
			}
			st := v.Stats()
			shipped, deltaStores = st.ShippedBytes, st.DeltaStores
		})
		return shipped, deltaStores
	}

	full, fullDeltas := run(false)
	small, deltas := run(true)
	if fullDeltas != 0 {
		t.Error("deltas used while disabled")
	}
	if deltas != 1 {
		t.Errorf("DeltaStores = %d, want 1", deltas)
	}
	if small >= full/4 {
		t.Errorf("delta shipping: %d bytes vs full %d; want ≥ 4× reduction", small, full)
	}
}

func TestDeltaBaseMismatchFallsBackToFullContents(t *testing.T) {
	base := bytes.Repeat([]byte("shared doc "), 5000) // 55 KB
	w := newWorld(t)
	w.seed("usr", map[string]string{"doc": string(base)})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{
			AgingWindow:          5 * time.Second,
			PinWriteDisconnected: true,
			EnableDeltas:         true,
		})
		mustMount(t, v, "usr")
		if _, err := v.ReadFile("/coda/usr/doc"); err != nil {
			t.Fatal(err)
		}
		v.WriteDisconnect()
		edited := editedCopy(base, 100)
		if err := v.WriteFile("/coda/usr/doc", edited); err != nil {
			t.Fatal(err)
		}
		// The server's copy changes under us — but by a co-author whose
		// write happens to land first. The client's own write is then a
		// conflict; but first the delta must fail cleanly (base mismatch)
		// rather than corrupting data.
		w.srv.WriteFile("usr", "doc", bytes.Repeat([]byte("other "), 4000))
		w.sim.Sleep(time.Minute)
		// Either outcome is acceptable — a conflict (version check fires
		// first) — but never a corrupted file assembled from a delta
		// against the wrong base.
		got, err := w.srv.ReadFile("usr", "doc")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte("other "), 4000)) && !bytes.Equal(got, edited) {
			t.Fatalf("server holds neither version: %d bytes — delta corruption", len(got))
		}
	})
}

func TestDeltaSelfMismatchRetriesFull(t *testing.T) {
	// Force the pure delta-failure path: same client, but its shadow base
	// predates another of its own connected writes... simplest trigger:
	// poison the base via two disconnected sessions. Here we verify the
	// DeltaFailed plumbing directly: a base that diverged (server-side
	// rewrite by the same "author" via admin, which keeps versions moving
	// but leaves lastAuthor empty) must still converge to correct content.
	base := bytes.Repeat([]byte("v1 content "), 3000)
	w := newWorld(t)
	w.seed("usr", map[string]string{"f": string(base)})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{
			AgingWindow:          2 * time.Second,
			PinWriteDisconnected: true,
			EnableDeltas:         true,
		})
		mustMount(t, v, "usr")
		v.ReadFile("/coda/usr/f")
		w.setLink("c1", netsim.Modem)
		v.Connect(9600)
		edited := editedCopy(base, 42)
		if err := v.WriteFile("/coda/usr/f", edited); err != nil {
			t.Fatal(err)
		}
		w.sim.Sleep(3 * time.Minute)
		got, _ := w.srv.ReadFile("usr", "f")
		if !bytes.Equal(got, edited) {
			t.Fatalf("content diverged: got %d bytes", len(got))
		}
		if st := v.Stats(); st.DeltaStores != 1 || st.DeltaSavedBytes <= 0 {
			t.Errorf("delta stats = %+v", st)
		}
	})
}
