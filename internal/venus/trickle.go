package venus

import (
	"fmt"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/delta"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// trickleDaemon supervises the state machine on the trickle cadence:
// demotions when bandwidth sinks, promotions when the CMLs drain. The
// drains themselves are per-volume — every mounted volume runs its own
// volumeTrickleLoop, so independent volumes reintegrate concurrently and
// a large shipment on one cannot delay another's aged records (§4.3.3's
// per-volume reintegration, carried into the client).
func (v *Venus) trickleDaemon() {
	for {
		v.clock.Sleep(v.cfg.TrickleInterval)
		if v.isClosed() {
			return
		}
		v.maybeDemote()
		v.maybePromote()
	}
}

// volumeTrickleLoop is one volume's trickle daemon (§4.3.3): every
// interval it looks for CML records older than the aging window and ships
// one chunk, deferring to foreground traffic.
func (v *Venus) volumeTrickleLoop(vc *vclient) {
	for {
		v.clock.Sleep(v.cfg.TrickleInterval)
		if v.isClosed() {
			return
		}
		if v.State() != WriteDisconnected {
			continue
		}
		// Defer to high-priority network use (§4.3.5): if a foreground
		// fetch is in flight, skip this cycle.
		if v.foregroundBusy() {
			continue
		}
		if v.reintegrateChunk(vc, v.effectiveAging()) {
			v.maybePromote()
		}
	}
}

// chunkSize computes C from the current bandwidth estimate: the amount of
// data that occupies the network for about ChunkSeconds (§4.3.5 — 36 KB at
// 9.6 Kb/s, 240 KB at 64 Kb/s, 7.7 MB at 2 Mb/s).
func (v *Venus) chunkSize() int64 {
	bw := v.linkBandwidth()
	if bw <= 0 {
		return 64 << 10
	}
	c := bw * int64(v.cfg.ChunkSeconds) / 8
	if c < 4<<10 {
		c = 4 << 10
	}
	return c
}

// reintegrateChunk ships one chunk from vc's CML. It returns true if a
// chunk was committed. Only vc.drainMu is held across the RPCs; Venus.mu
// is taken briefly to read and to reconcile results.
func (v *Venus) reintegrateChunk(vc *vclient, age time.Duration) bool {
	vc.drainMu.Lock()
	defer vc.drainMu.Unlock()
	c := v.chunkSize()
	records := vc.log.BeginReintegration(age, c, v.clock.Now())
	if records == nil {
		return false
	}

	// One shipped chunk is one venus_reintegrate trace root; everything
	// below it — fragment pre-ship, the Reintegrate RPC, server apply,
	// WAL, anti-entropy, failover waits — joins this tree via the span
	// context threaded through the calls and the wire.
	sp := v.met.reg.StartSpan(v.met.self, "venus_reintegrate", obs.SpanContext{},
		obs.F("volume", vc.info.Name))
	defer sp.End()

	recs := make([]cml.Record, len(records))
	for i, r := range records {
		recs[i] = *r
	}

	// Ship differences instead of full contents where a server-known base
	// exists and the delta is worthwhile (EnableDeltas, §4.1 future work).
	var deltas map[int]delta.Delta
	var deltaSaved int64
	var deltaWire int64
	if v.cfg.EnableDeltas {
		v.mu.Lock()
		for i := range recs {
			if recs[i].Kind != cml.Store || recs[i].Data == nil {
				continue
			}
			f := v.cache.get(recs[i].FID)
			if f == nil || f.base == nil {
				continue
			}
			d := delta.Compute(delta.Sign(f.base, 0), recs[i].Data)
			if d.WireSize() >= int64(len(recs[i].Data))*3/4 {
				continue // not worth it
			}
			if deltas == nil {
				deltas = make(map[int]delta.Delta)
			}
			deltas[i] = d
			deltaSaved += int64(len(recs[i].Data)) - d.WireSize()
			deltaWire += d.WireSize()
			recs[i].Data = nil
		}
		v.mu.Unlock()
	}

	// A chunk larger than C can only be a single store of a large file;
	// its data is pre-shipped as a series of resumable fragments of size
	// ≤ C before the reintegration proper (§4.3.5). Fragment buffers are
	// per-member state, so the ship happens inside reintegrateCall —
	// re-done against each member a failover lands on.
	var fragData []byte
	if deltas == nil && len(recs) == 1 && recs[0].Kind == cml.Store && recs[0].Size() > c {
		fragData = recs[0].Data
		recs[0].Data = nil
	}

	//codalint:ignore lockhold drainMu is a work lock serializing whole-drain attempts per volume by design; RPCs are issued holding only drainMu, never Venus.mu
	rep, err := v.reintegrateCall(vc, recs, deltas, fragData, c, sp.Context())
	if err != nil {
		// Network or server failure: remove the barrier; every record
		// is again eligible for optimization until the retry (§4.3.3).
		vc.log.AbortReintegration()
		v.bumpFailure()
		return false
	}

	if rep.Applied {
		var shippedBytes int64
		for i, r := range records {
			if _, viaDelta := deltas[i]; viaDelta {
				continue // counted as wire size below
			}
			shippedBytes += r.Size()
		}
		shippedBytes += deltaWire
		committed := make(map[uint64]bool, len(records))
		now := v.clock.Now()
		for _, r := range records {
			committed[r.Seq] = true
			v.met.residency.Observe(int64(now.Sub(r.Time).Seconds()))
		}
		vc.log.CommitReintegration()
		// The server holds these records now: journal their removal so a
		// crash does not resurrect (and re-ship) them.
		//codalint:ignore lockhold drainMu is a work lock serializing whole-drain attempts per volume by design; the journal write is part of the drain it guards
		v.logDrop(vc, committed)
		v.mu.Lock()
		v.stats.Reintegrations++
		v.stats.ShippedRecords += int64(len(records))
		v.stats.ShippedBytes += shippedBytes
		v.stats.DeltaStores += int64(len(deltas))
		v.stats.DeltaSavedBytes += deltaSaved
		v.met.reintegrations.Inc()
		v.met.shippedRecords.Add(int64(len(records)))
		v.met.shippedBytes.Add(shippedBytes)
		v.met.deltaStores.Add(int64(len(deltas)))
		v.met.deltaSaved.Add(deltaSaved)
		vc.stamp = rep.VolStamp
		for _, st := range rep.Statuses {
			if f := v.cache.get(st.FID); f != nil {
				f.obj.Status.Version = st.Version
				// The server now holds our contents: the shadow base is
				// obsolete (a future write re-shadows from current data).
				f.base = nil
			}
		}
		v.clearDrainedDirtyLocked(records)
		v.mu.Unlock()
		return true
	}

	// A failed delta (base mismatch) is not a conflict: drop the shadow
	// base so the retry ships full contents.
	deltaFailure := false
	for i, res := range rep.Results {
		if res.DeltaFailed {
			deltaFailure = true
			v.mu.Lock()
			if f := v.cache.get(records[i].FID); f != nil {
				f.base = nil
			}
			v.mu.Unlock()
		}
	}
	if deltaFailure {
		vc.log.AbortReintegration()
		v.bumpFailure()
		return false
	}

	// Conflicts: atomic failure. Drop the conflicting records (they are
	// surfaced to the user, as after a disconnected session) and let the
	// rest retry on the next cycle.
	vc.log.AbortReintegration()
	v.bumpFailure()
	seqs := make(map[uint64]bool)
	v.mu.Lock()
	for i, res := range rep.Results {
		if res.Conflict {
			seqs[records[i].Seq] = true
			v.conflicts = append(v.conflicts, Conflict{
				Time: v.clock.Now(), Volume: vc.info.Name,
				Kind: records[i].Kind, Path: records[i].Name, Msg: res.Msg,
			})
		}
	}
	v.mu.Unlock()
	if len(seqs) > 0 {
		vc.log.Remove(seqs)
		//codalint:ignore lockhold drainMu is a work lock serializing whole-drain attempts per volume by design; the journal write is part of the drain it guards
		v.logDrop(vc, seqs)
	}
	return false
}

func (v *Venus) bumpFailure() {
	v.mu.Lock()
	v.stats.ReintegrationFailures++
	v.met.reintegFails.Inc()
	v.mu.Unlock()
}

// clearDrainedDirtyLocked clears dirty flags for objects no CML record
// references any more.
func (v *Venus) clearDrainedDirtyLocked(shipped []*cml.Record) {
	fids := make(map[codafs.FID]bool)
	for _, r := range shipped {
		fids[r.FID] = true
		if !r.Parent.IsZero() {
			fids[r.Parent] = true
		}
		if !r.NewParent.IsZero() {
			fids[r.NewParent] = true
		}
	}
	remaining := make(map[codafs.FID]bool)
	for _, vc := range v.volumes {
		for _, r := range vc.log.Records() {
			remaining[r.FID] = true
			if !r.Parent.IsZero() {
				remaining[r.Parent] = true
			}
			if !r.NewParent.IsZero() {
				remaining[r.NewParent] = true
			}
		}
	}
	for fid := range fids {
		if remaining[fid] {
			continue
		}
		if f := v.cache.get(fid); f != nil {
			f.dirty = false
		}
	}
}

// ForceReintegrateSubtree immediately reintegrates the updates affecting
// one directory subtree (or single object), without waiting for unrelated
// records — the refinement §4.3.5 describes: "force immediate
// reintegration of updates to a specific directory or subtree, without
// waiting for propagation of other updates". The CML computes the
// precedence closure so no record ships before its antecedents.
func (v *Venus) ForceReintegrateSubtree(path string) error {
	if v.State() == Emulating {
		return ErrDisconnected
	}
	vc, f, err := v.resolve(path, false)
	if err != nil {
		return err
	}

	// Collect the FIDs in the subtree from the cache (local truth while
	// disconnected or weakly connected).
	v.mu.Lock()
	members := map[codafs.FID]bool{f.obj.Status.FID: true}
	if f.obj.Status.Type == codafs.Directory {
		var walk func(fid codafs.FID, depth int)
		walk = func(fid codafs.FID, depth int) {
			if depth > 32 {
				return
			}
			fo := v.cache.get(fid)
			if fo == nil {
				return
			}
			for _, child := range fo.obj.Children {
				members[child] = true
				walk(child, depth+1)
			}
		}
		walk(f.obj.Status.FID, 0)
	}
	v.mu.Unlock()

	// Serialize with this volume's other drains: without the drain lock a
	// trickle chunk in flight would hold the CML barrier and this call
	// would see "nothing pending" despite pending subtree records.
	vc.drainMu.Lock()
	defer vc.drainMu.Unlock()

	records := vc.log.BeginSubtreeReintegration(func(r *cml.Record) bool {
		return members[r.FID] || members[r.Parent] || members[r.NewParent]
	})
	if records == nil {
		return nil // nothing pending for this subtree
	}

	sp := v.met.reg.StartSpan(v.met.self, "venus_reintegrate", obs.SpanContext{},
		obs.F("volume", vc.info.Name), obs.F("subtree", path))
	defer sp.End()

	recs := make([]cml.Record, len(records))
	seqs := make(map[uint64]bool, len(records))
	for i, r := range records {
		recs[i] = *r
		seqs[r.Seq] = true
	}
	//codalint:ignore lockhold drainMu is a work lock serializing whole-drain attempts per volume by design; RPCs are issued holding only drainMu, never Venus.mu
	rep, err := v.reintegrateCall(vc, recs, nil, nil, 0, sp.Context())
	if err != nil {
		vc.log.AbortReintegration()
		v.bumpFailure()
		return err
	}
	if !rep.Applied {
		vc.log.AbortReintegration()
		v.bumpFailure()
		v.mu.Lock()
		for i, res := range rep.Results {
			if res.Conflict {
				v.conflicts = append(v.conflicts, Conflict{
					Time: v.clock.Now(), Volume: vc.info.Name,
					Kind: records[i].Kind, Path: records[i].Name, Msg: res.Msg,
				})
			}
		}
		v.mu.Unlock()
		return fmt.Errorf("venus: subtree reintegration of %s rejected by server", path)
	}

	var shippedBytes int64
	now := v.clock.Now()
	for _, r := range records {
		shippedBytes += r.Size()
		v.met.residency.Observe(int64(now.Sub(r.Time).Seconds()))
	}
	vc.log.CommitSubtree(seqs)
	//codalint:ignore lockhold drainMu is a work lock serializing whole-drain attempts per volume by design; the journal write is part of the drain it guards
	v.logDrop(vc, seqs)
	v.mu.Lock()
	v.stats.Reintegrations++
	v.stats.ShippedRecords += int64(len(records))
	v.stats.ShippedBytes += shippedBytes
	v.met.reintegrations.Inc()
	v.met.shippedRecords.Add(int64(len(records)))
	v.met.shippedBytes.Add(shippedBytes)
	vc.stamp = rep.VolStamp
	for _, st := range rep.Statuses {
		if fo := v.cache.get(st.FID); fo != nil {
			fo.obj.Status.Version = st.Version
		}
	}
	v.clearDrainedDirtyLocked(records)
	v.mu.Unlock()
	return nil
}

// ForceReintegrate drains every CML immediately, ignoring the aging window
// — the user is about to hang up the phone or walk out of wireless range
// (§4.3.2). Volumes drain concurrently, one goroutine per volume, so the
// total wait is the slowest volume rather than the sum. It returns an
// error if records remain (network failure or persistent conflicts).
func (v *Venus) ForceReintegrate() error {
	if v.State() == Emulating {
		return ErrDisconnected
	}
	for pass := 0; pass < 1000; pass++ {
		v.mu.Lock()
		vols := v.volumeList()
		v.mu.Unlock()
		type drained struct {
			remaining int
			progress  bool
		}
		done := simtime.NewQueue[drained](v.clock)
		for _, vc := range vols {
			vc := vc
			v.clock.Go(func() {
				var d drained
				for vc.log.Len() > 0 {
					if !v.reintegrateChunk(vc, 0) {
						break
					}
					d.progress = true
				}
				d.remaining = vc.log.Len()
				done.Put(d)
			})
		}
		remaining := 0
		progress := false
		for range vols {
			d, _ := done.Get()
			remaining += d.remaining
			progress = progress || d.progress
		}
		if remaining == 0 {
			v.maybePromote()
			return nil
		}
		if !progress {
			return fmt.Errorf("venus: %d CML records could not be reintegrated", remaining)
		}
	}
	return fmt.Errorf("venus: reintegration did not converge")
}
