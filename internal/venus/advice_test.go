package venus_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/venus"
)

func TestMissRecordsCarryFigure5Context(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"papers/s15.bib": string(bytes.Repeat([]byte("b"), 800_000)),
	})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{PinWriteDisconnected: true})
		w.setLink("c1", wlModem())
		mustMount(t, v, "usr")
		v.Connect(9600)

		// The Figure 5 screen shows "the name of each missing object and
		// the program that referenced it".
		v.SetProgram("emacs")
		if _, err := v.ReadFile("/coda/usr/papers/s15.bib"); !errors.Is(err, venus.ErrCacheMiss) {
			t.Fatalf("expected deferred miss, got %v", err)
		}
		misses := v.Misses()
		if len(misses) != 1 {
			t.Fatalf("misses = %d, want 1", len(misses))
		}
		m := misses[0]
		if m.Path != "/coda/usr/papers/s15.bib" {
			t.Errorf("Path = %q", m.Path)
		}
		if m.Program != "emacs" {
			t.Errorf("Program = %q, want emacs", m.Program)
		}
		if m.Size != 800_000 {
			t.Errorf("Size = %d", m.Size)
		}
		if m.Cost <= m.Threshold {
			t.Errorf("Cost %v ≤ Threshold %v on a deferred miss", m.Cost, m.Threshold)
		}
		// Misses() drains.
		if len(v.Misses()) != 0 {
			t.Error("miss list not drained")
		}
	})
}

func TestPreApprovedOnlyAdvisor(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"small.txt": "tiny",
		"huge.bin":  string(bytes.Repeat([]byte("h"), 2<<20)),
	})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{Advisor: venus.PreApprovedOnlyAdvisor{}})
		w.setLink("c1", wlModem())
		mustMount(t, v, "usr")
		v.Connect(9600)
		v.HoardAdd("/coda/usr/small.txt", 900, false) // tiny: pre-approved
		v.HoardAdd("/coda/usr/huge.bin", 100, false)  // 2MB at P=100: not
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		// The silent user fetched only what the model pre-approved.
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		if _, err := v.ReadFile("/coda/usr/small.txt"); err != nil {
			t.Errorf("pre-approved file not hoarded: %v", err)
		}
		if _, err := v.ReadFile("/coda/usr/huge.bin"); err == nil {
			t.Error("non-approved file was fetched by a silent user")
		}
	})
}

func TestAutoAdvisorFetchesEverything(t *testing.T) {
	// "If no input is provided by the user within a certain time, the
	// screen disappears and all the listed objects are fetched" — the
	// unattended default.
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"huge.bin": string(bytes.Repeat([]byte("h"), 2<<20)),
	})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{}) // AutoAdvisor by default
		w.setLink("c1", wlModem())
		mustMount(t, v, "usr")
		v.Connect(9600)
		v.HoardAdd("/coda/usr/huge.bin", 100, false)
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		if _, err := v.ReadFile("/coda/usr/huge.bin"); err != nil {
			t.Errorf("unattended walk did not fetch: %v", err)
		}
	})
}

func TestWalkItemsCarryFigure6Fields(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"big1.bin": string(bytes.Repeat([]byte("1"), 1<<20)),
		"big2.bin": string(bytes.Repeat([]byte("2"), 2<<20)),
	})
	w.sim.Run(func() {
		var items []venus.WalkItem
		v := w.venus("c1", venus.Config{
			Advisor: venus.FuncAdvisor(func(in []venus.WalkItem) []bool {
				items = in
				return make([]bool, len(in))
			}),
		})
		w.setLink("c1", wlModem())
		mustMount(t, v, "usr")
		v.Connect(9600)
		v.HoardAdd("/coda/usr/big1.bin", 200, false)
		v.HoardAdd("/coda/usr/big2.bin", 700, false)
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		if len(items) != 2 {
			t.Fatalf("advisor saw %d items", len(items))
		}
		// The Figure 6 screen shows priority and cost per object; higher
		// priority entries come first (HoardList order).
		if items[0].Priority != 700 || items[1].Priority != 200 {
			t.Errorf("priorities = %d,%d; want 700,200", items[0].Priority, items[1].Priority)
		}
		if items[0].Cost <= 0 || items[0].Cost <= items[1].Cost {
			t.Errorf("costs = %v,%v; the 2MB file should cost more", items[0].Cost, items[1].Cost)
		}
		if items[0].Size != 2<<20 || items[1].Size != 1<<20 {
			t.Errorf("sizes = %d,%d", items[0].Size, items[1].Size)
		}
	})
}

func TestHoardWalkWhileStronglyConnectedSkipsAdvisor(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"big.bin": string(bytes.Repeat([]byte("b"), 4<<20))})
	w.sim.Run(func() {
		called := false
		v := w.venus("c1", venus.Config{
			Advisor: venus.FuncAdvisor(func(in []venus.WalkItem) []bool {
				called = true
				return make([]bool, len(in))
			}),
		})
		mustMount(t, v, "usr")
		v.HoardAdd("/coda/usr/big.bin", 100, false)
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		if called {
			t.Error("advisor consulted while strongly connected; misses are fully transparent there")
		}
		if _, err := v.Stat("/coda/usr/big.bin"); err != nil {
			t.Error(err)
		}
	})
}

func TestMissListBounded(t *testing.T) {
	w := newWorld(t)
	files := map[string]string{}
	for i := 0; i < 40; i++ {
		files[time.Now().Format("f")+string(rune('a'+i%26))+string(rune('0'+i/26))] =
			string(bytes.Repeat([]byte("x"), 600_000))
	}
	w.seed("usr", files)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{PinWriteDisconnected: true})
		w.setLink("c1", wlModem())
		mustMount(t, v, "usr")
		v.Connect(9600)
		for path := range files {
			v.ReadFile("/coda/usr/" + path) // all deferred
		}
		if got := len(v.Misses()); got != len(files) {
			t.Errorf("recorded %d misses, want %d", got, len(files))
		}
	})
}
