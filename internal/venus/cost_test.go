package venus_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/venus"
)

func TestCostAwarePatience(t *testing.T) {
	// On a fast but METERED link, a fetch that would take only a second
	// of time is still deferred because of what it costs.
	w := newWorld(t)
	w.seed("usr", map[string]string{"video.bin": string(bytes.Repeat([]byte("v"), 2<<20))})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{PinWriteDisconnected: true})
		w.setLink("c1", netsim.WaveLan) // 2 Mb/s: ~9s for 2MB, under τ... for free networks
		mustMount(t, v, "usr")
		v.Connect(2_000_000)

		// Free network: fetched transparently (9s < τ is false for pri 0...
		// α=2s; so hoard it moderately to pass on the free network).
		v.HoardAdd("/coda/usr/video.bin", 600, false) // τ ≈ 405s
		if _, err := v.ReadFile("/coda/usr/video.bin"); err != nil {
			t.Fatalf("free network fetch deferred: %v", err)
		}
	})

	// Same scenario on a metered link.
	w2 := newWorld(t)
	w2.seed("usr", map[string]string{"video.bin": string(bytes.Repeat([]byte("v"), 2<<20))})
	w2.sim.Run(func() {
		v := w2.venus("c2", venus.Config{PinWriteDisconnected: true})
		w2.setLink("c2", netsim.WaveLan)
		mustMount(t, v, "usr")
		v.Connect(2_000_000)
		v.HoardAdd("/coda/usr/video.bin", 600, false)
		// Cellular pricing: 2 MB feels like 500s of waiting — over τ(600).
		v.SetNetworkCost(venus.NetworkCost{PatienceSecondsPerMB: 250})
		_, err := v.ReadFile("/coda/usr/video.bin")
		if !errors.Is(err, venus.ErrCacheMiss) {
			t.Fatalf("metered fetch = %v, want deferred miss", err)
		}
		// The user can still override by hoarding at top priority.
		v.SetNetworkCost(venus.NetworkCost{})
		if _, err := v.ReadFile("/coda/usr/video.bin"); err != nil {
			t.Errorf("after clearing cost: %v", err)
		}
	})
}

func TestCostStretchesAgingWindow(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: 10 * time.Second, PinWriteDisconnected: true})
		w.setLink("c1", netsim.Modem)
		mustMount(t, v, "usr")
		v.Connect(9600)
		// Expensive network: stretch the window 6×, so rewrites within a
		// minute are still cancelled rather than paid for.
		v.SetNetworkCost(venus.NetworkCost{AgingMultiplier: 6})
		if err := v.WriteFile("/coda/usr/f", []byte("draft 1")); err != nil {
			t.Fatal(err)
		}
		w.sim.Sleep(30 * time.Second)
		// Base window (10s) has passed, stretched window (60s) has not.
		if _, err := w.srv.ReadFile("usr", "f"); err == nil {
			t.Error("record shipped inside the cost-stretched aging window")
		}
		if err := v.WriteFile("/coda/usr/f", []byte("draft 2")); err != nil {
			t.Fatal(err)
		}
		w.sim.Sleep(2 * time.Minute)
		got, err := w.srv.ReadFile("usr", "f")
		if err != nil || string(got) != "draft 2" {
			t.Fatalf("f = %q, %v", got, err)
		}
		// The first draft was cancelled, not shipped: one store only.
		if st := v.Stats(); st.ShippedRecords > 2 {
			t.Errorf("ShippedRecords = %d; rewrite should have been optimized out", st.ShippedRecords)
		}
	})
}
