package venus

import (
	"time"
)

// probeDaemon maintains Venus's picture of server reachability, as the
// real Venus does with periodic RPC2 probes:
//
//   - While disconnected (emulating), it probes the group at each
//     interval; a response from any member means the network is back, and
//     Venus moves to write-disconnected on its own — the user does not
//     have to run anything for reintegration to resume.
//   - While connected, it probes only if nothing has been heard from any
//     member for a full interval (the unified keepalive of §4.1: any RPC2
//     or SFTP traffic suppresses probes); a probe no member answers
//     demotes to emulating so misses fail fast instead of hanging on
//     timeouts.
//
// The daemon only runs when Config.ProbeInterval is set; experiments
// control connectivity explicitly and leave it off.
func (v *Venus) probeDaemon() {
	interval := v.cfg.ProbeInterval
	for {
		v.clock.Sleep(interval)
		if v.isClosed() {
			return
		}
		switch v.State() {
		case Emulating:
			if v.probeAny() == nil {
				v.Connect(0) // bandwidth learned from subsequent traffic
			}
		default:
			if v.anyAlive(interval) {
				continue // recent traffic is proof enough
			}
			if err := v.probeAny(); err != nil {
				if v.isClosed() {
					return
				}
				v.transition(Emulating, "probe failed")
			}
		}
	}
}

// anyAlive reports whether any member's link has seen traffic within the
// last interval.
func (v *Venus) anyAlive(interval time.Duration) bool {
	for _, addr := range v.cfg.Servers {
		if v.peerOf(addr).Alive(interval) {
			return true
		}
	}
	return false
}

// probeAny probes members in order until one answers; it returns nil on
// the first response, or the last error if none did.
func (v *Venus) probeAny() error {
	var lastErr error
	for _, addr := range v.cfg.Servers {
		err := v.node.Probe(addr, probeTimeout)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

// probeTimeout bounds one probe exchange (with retries inside rpc2).
const probeTimeout = 20 * time.Second

// Probe checks group reachability once, on demand: success if any member
// responds.
func (v *Venus) Probe() error {
	err := v.probeAny()
	if err != nil && v.isClosed() {
		return ErrClosed
	}
	return err
}
