package venus

import (
	"time"
)

// probeDaemon maintains Venus's picture of server reachability, as the
// real Venus does with periodic RPC2 probes:
//
//   - While disconnected (emulating), it probes the server at each
//     interval; a response means the network is back, and Venus moves to
//     write-disconnected on its own — the user does not have to run
//     anything for reintegration to resume.
//   - While connected, it probes only if nothing has been heard from the
//     server for a full interval (the unified keepalive of §4.1: any RPC2
//     or SFTP traffic suppresses probes); a failed probe demotes to
//     emulating so misses fail fast instead of hanging on timeouts.
//
// The daemon only runs when Config.ProbeInterval is set; experiments
// control connectivity explicitly and leave it off.
func (v *Venus) probeDaemon() {
	interval := v.cfg.ProbeInterval
	for {
		v.clock.Sleep(interval)
		if v.isClosed() {
			return
		}
		switch v.State() {
		case Emulating:
			if err := v.node.Probe(v.cfg.Server, probeTimeout); err == nil {
				v.Connect(0) // bandwidth learned from subsequent traffic
			}
		default:
			if v.peer.Alive(interval) {
				continue // recent traffic is proof enough
			}
			if err := v.node.Probe(v.cfg.Server, probeTimeout); err != nil {
				if v.isClosed() {
					return
				}
				v.transition(Emulating, "probe failed")
			}
		}
	}
}

// probeTimeout bounds one probe exchange (with retries inside rpc2).
const probeTimeout = 20 * time.Second

// Probe checks server reachability once, on demand.
func (v *Venus) Probe() error {
	err := v.node.Probe(v.cfg.Server, probeTimeout)
	if err != nil && v.isClosed() {
		return ErrClosed
	}
	return err
}
