package venus

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors for file operations.
var (
	// ErrCacheMiss reports an object that is not cached and was not
	// fetched — either the patience threshold was exceeded (§4.4.1) or
	// the client is disconnected. Use errors.Is; the concrete value is a
	// *MissError carrying the estimate.
	ErrCacheMiss = errors.New("venus: cache miss")
	// ErrDisconnected qualifies misses that occurred while emulating.
	ErrDisconnected = errors.New("venus: disconnected")
	// ErrNotFound reports a name that does not exist.
	ErrNotFound = errors.New("venus: no such file or directory")
	// ErrExist reports a creation colliding with an existing name.
	ErrExist = errors.New("venus: file exists")
	// ErrNotDir reports a non-directory used as a path component.
	ErrNotDir = errors.New("venus: not a directory")
	// ErrIsDir reports a directory where a file was expected.
	ErrIsDir = errors.New("venus: is a directory")
	// ErrNotEmpty reports rmdir of a non-empty directory.
	ErrNotEmpty = errors.New("venus: directory not empty")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("venus: closed")
)

// MissError is the concrete error for unserviced cache misses. It carries
// the information Venus showed the user in Figure 5/6: what was missed, how
// big it is, and what fetching it would have cost.
type MissError struct {
	Path         string
	Size         int64
	Cost         time.Duration // estimated service time at current bandwidth
	Threshold    time.Duration // the patience threshold that was exceeded
	Disconnected bool          // true when emulating (no network at all)
}

func (e *MissError) Error() string {
	if e.Disconnected {
		return fmt.Sprintf("venus: cache miss on %s while disconnected", e.Path)
	}
	return fmt.Sprintf("venus: cache miss on %s deferred (%d bytes, est %v > patience %v)",
		e.Path, e.Size, e.Cost.Round(time.Millisecond), e.Threshold.Round(time.Millisecond))
}

// Is lets errors.Is match both ErrCacheMiss and, for disconnected misses,
// ErrDisconnected.
func (e *MissError) Is(target error) bool {
	return target == ErrCacheMiss || (e.Disconnected && target == ErrDisconnected)
}

// MissRecord is one entry in the deferred-miss list a user reviews
// (Figure 5).
type MissRecord struct {
	Time      time.Time
	Path      string
	Size      int64
	Program   string // the program that referenced the object
	Cost      time.Duration
	Threshold time.Duration
}
