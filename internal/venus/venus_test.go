package venus_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/codafs"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

type world struct {
	t   *testing.T
	sim *simtime.Sim
	net *netsim.Network
	srv *server.Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	s := simtime.NewSim(simtime.Epoch1995)
	n := netsim.New(s, 11)
	n.SetDefaults(netsim.Ethernet.Params())
	return &world{t: t, sim: s, net: n, srv: server.New(s, n.Host("server"))}
}

var clientSeq uint32

func (w *world) venus(name string, cfg venus.Config) *venus.Venus {
	clientSeq++
	cfg.Server = "server"
	if cfg.ClientID == 0 {
		cfg.ClientID = clientSeq
	}
	if cfg.TrickleInterval == 0 {
		cfg.TrickleInterval = time.Second
	}
	return venus.New(w.sim, w.net.Host(name), cfg)
}

// setLink reconfigures the client↔server link to a profile.
func (w *world) setLink(client string, p netsim.Profile) {
	w.net.SetLink(client, "server", p.Params())
}

// Profile shorthands for tests in this package.
func wlModem() netsim.Profile    { return netsim.Modem }
func wlEthernet() netsim.Profile { return netsim.Ethernet }

func (w *world) seed(vol string, files map[string]string) {
	w.t.Helper()
	if _, err := w.srv.CreateVolume(vol); err != nil {
		w.t.Fatal(err)
	}
	// Sorted order: FIDs and version stamps are assigned in creation
	// order, so deterministic seeding gives byte-identical server state
	// across runs (the crash-matrix tests compare snapshots by bytes).
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, err := w.srv.WriteFile(vol, path, []byte(files[path])); err != nil {
			w.t.Fatal(err)
		}
	}
}

func mustMount(t *testing.T, v *venus.Venus, vol string) {
	t.Helper()
	if err := v.Mount(vol); err != nil {
		t.Fatal(err)
	}
}

func TestReadThroughCache(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"papers/s15.bib": "bibliography"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		data, err := v.ReadFile("/coda/usr/papers/s15.bib")
		if err != nil || string(data) != "bibliography" {
			t.Fatalf("ReadFile = %q, %v", data, err)
		}
		// Second read must come from cache: sever the network.
		w.net.SetUp("c1", "server", false)
		data, err = v.ReadFile("/coda/usr/papers/s15.bib")
		if err != nil || string(data) != "bibliography" {
			t.Errorf("cached ReadFile = %q, %v", data, err)
		}
	})
}

func TestWriteThroughWhileHoarding(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		if err := v.WriteFile("/coda/usr/draft.txt", []byte("v1")); err != nil {
			t.Fatal(err)
		}
		// Write-through: visible on the server immediately, no CML.
		if data, err := w.srv.ReadFile("usr", "draft.txt"); err != nil || string(data) != "v1" {
			t.Fatalf("server copy = %q, %v", data, err)
		}
		if v.CMLRecords() != 0 {
			t.Errorf("CML has %d records in hoarding state", v.CMLRecords())
		}
		if v.State() != venus.Hoarding {
			t.Errorf("state = %v", v.State())
		}
	})
}

func TestConnectedNamespaceOps(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"a/file": "x"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		if err := v.Mkdir("/coda/usr/b"); err != nil {
			t.Fatal(err)
		}
		if err := v.Rename("/coda/usr/a/file", "/coda/usr/b/file"); err != nil {
			t.Fatal(err)
		}
		if _, err := w.srv.ReadFile("usr", "b/file"); err != nil {
			t.Errorf("rename not on server: %v", err)
		}
		if err := v.Symlink("b/file", "/coda/usr/lnk"); err != nil {
			t.Fatal(err)
		}
		if target, err := v.ReadLink("/coda/usr/lnk"); err != nil || target != "b/file" {
			t.Errorf("ReadLink = %q, %v", target, err)
		}
		if err := v.Link("/coda/usr/b/file", "/coda/usr/hard"); err != nil {
			t.Fatal(err)
		}
		if err := v.Remove("/coda/usr/b/file"); err != nil {
			t.Fatal(err)
		}
		if _, err := w.srv.ReadFile("usr", "hard"); err != nil {
			t.Errorf("hard link lost: %v", err)
		}
		if err := v.SetAttr("/coda/usr/hard", 0600); err != nil {
			t.Fatal(err)
		}
		if st, _ := w.srv.Resolve("usr", "hard"); st.Mode != 0600 {
			t.Errorf("mode = %o", st.Mode)
		}
		names, err := v.ReadDir("/coda/usr")
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 4 { // a, b, lnk, hard
			t.Errorf("ReadDir = %v", names)
		}
	})
}

func TestDisconnectedOperationAndReintegration(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"doc": "old", "deep/file": "unseen"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: 2 * time.Second})
		mustMount(t, v, "usr")
		// Warm the cache, then disconnect.
		if _, err := v.ReadFile("/coda/usr/doc"); err != nil {
			t.Fatal(err)
		}
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		if v.State() != venus.Emulating {
			t.Fatalf("state = %v", v.State())
		}

		// Cached data remains usable; new names are creatable.
		if data, _ := v.ReadFile("/coda/usr/doc"); string(data) != "old" {
			t.Error("cached read failed while disconnected")
		}
		if err := v.WriteFile("/coda/usr/doc", []byte("new")); err != nil {
			t.Fatal(err)
		}
		if err := v.WriteFile("/coda/usr/trip/notes", []byte("packing list")); err == nil {
			t.Error("create under uncached directory should miss")
		}
		if err := v.Mkdir("/coda/usr/trip"); err != nil {
			t.Fatal(err)
		}
		if err := v.WriteFile("/coda/usr/trip/notes", []byte("packing list")); err != nil {
			t.Fatal(err)
		}
		if v.CMLRecords() == 0 {
			t.Fatal("no CML records while disconnected")
		}
		// An object whose directory entry is cached but whose contents
		// are not: a disconnected miss. A name absent from a cached
		// directory, by contrast, is an authoritative ErrNotFound.
		if _, err := v.ReadFile("/coda/usr/deep/file"); !errors.Is(err, venus.ErrCacheMiss) {
			t.Errorf("uncached read = %v, want cache miss", err)
		}
		if _, err := v.ReadFile("/coda/usr/nonexistent"); !errors.Is(err, venus.ErrNotFound) {
			t.Errorf("absent name = %v, want ErrNotFound", err)
		}

		// Reconnect at LAN speed: trickle drains, state returns to
		// hoarding once the CML is empty.
		w.net.SetUp("c1", "server", true)
		v.Connect(10_000_000)
		w.sim.Sleep(time.Minute)
		if got, _ := w.srv.ReadFile("usr", "doc"); string(got) != "new" {
			t.Errorf("server doc = %q after reintegration", got)
		}
		if got, _ := w.srv.ReadFile("usr", "trip/notes"); string(got) != "packing list" {
			t.Errorf("server notes = %q", got)
		}
		if v.CMLRecords() != 0 {
			t.Errorf("CML not drained: %d records", v.CMLRecords())
		}
		if v.State() != venus.Hoarding {
			t.Errorf("state = %v after drain on strong net", v.State())
		}
	})
}

func TestEmulatingToHoardingPassesThroughWriteDisconnected(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		v.Disconnect()
		v.Connect(10_000_000)
		st := v.Stats()
		if st.Transitions["emulating->write-disconnected"] != 1 {
			t.Errorf("transitions = %v", st.Transitions)
		}
	})
}

func TestLogOptimizationsWhileDisconnected(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		v.Disconnect()
		for i := 0; i < 5; i++ {
			if err := v.WriteFile("/coda/usr/buf", bytes.Repeat([]byte("x"), 1000)); err != nil {
				t.Fatal(err)
			}
		}
		// One create + one store survive; four stores cancelled.
		if n := v.CMLRecords(); n != 2 {
			t.Errorf("CML records = %d, want 2", n)
		}
		if v.OptimizedBytes() < 4000 {
			t.Errorf("OptimizedBytes = %d", v.OptimizedBytes())
		}
		// The paper's canonical chain: create+store+unlink vanishes.
		v.WriteFile("/coda/usr/tmpfile", []byte("scratch"))
		before := v.CMLRecords()
		v.Remove("/coda/usr/tmpfile")
		if after := v.CMLRecords(); after != before-2 {
			t.Errorf("records %d -> %d after unlink of in-log creation", before, after)
		}
	})
}

func TestTrickleRespectsAgingWindow(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{
			AgingWindow:          30 * time.Second,
			PinWriteDisconnected: true,
		})
		mustMount(t, v, "usr")
		v.WriteDisconnect()
		if err := v.WriteFile("/coda/usr/f", []byte("young")); err != nil {
			t.Fatal(err)
		}
		// Before the window: nothing shipped.
		w.sim.Sleep(15 * time.Second)
		if _, err := w.srv.ReadFile("usr", "f"); err == nil {
			t.Error("record reintegrated before aging window expired")
		}
		// After the window: shipped.
		w.sim.Sleep(30 * time.Second)
		if got, err := w.srv.ReadFile("usr", "f"); err != nil || string(got) != "young" {
			t.Errorf("after window: %q, %v", got, err)
		}
		if v.State() != venus.WriteDisconnected {
			t.Errorf("pinned state moved to %v", v.State())
		}
	})
}

func TestWeakConnectivityStaysWriteDisconnected(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: time.Second})
		w.setLink("c1", netsim.Modem)
		mustMount(t, v, "usr")
		v.Connect(9600)
		if err := v.WriteFile("/coda/usr/memo", []byte("weakly written")); err != nil {
			t.Fatal(err)
		}
		w.sim.Sleep(90 * time.Second)
		// Update propagated, but the state stays write-disconnected at
		// modem bandwidth.
		if got, err := w.srv.ReadFile("usr", "memo"); err != nil || string(got) != "weakly written" {
			t.Errorf("memo = %q, %v", got, err)
		}
		if v.State() != venus.WriteDisconnected {
			t.Errorf("state = %v at 9.6 Kb/s", v.State())
		}
	})
}

func TestFragmentedLargeStoreOverModem(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: time.Second, PinWriteDisconnected: true})
		w.setLink("c1", netsim.Modem)
		mustMount(t, v, "usr")
		v.Connect(9600)
		big := bytes.Repeat([]byte("chunky"), 20_000) // 120 KB >> C=36 KB
		if err := v.WriteFile("/coda/usr/big", big); err != nil {
			t.Fatal(err)
		}
		// 120 KB at 9.6 Kb/s is ~100 s of line time.
		w.sim.Sleep(5 * time.Minute)
		got, err := w.srv.ReadFile("usr", "big")
		if err != nil || !bytes.Equal(got, big) {
			t.Fatalf("big file after fragmented reintegration: %d bytes, %v", len(got), err)
		}
	})
}

func TestCallbackBreakRefetch(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"shared": "v1"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		if _, err := v.ReadFile("/coda/usr/shared"); err != nil {
			t.Fatal(err)
		}
		// Another client updates; break arrives; next read refetches.
		w.srv.WriteFile("usr", "shared", []byte("v2"))
		w.sim.Sleep(time.Second)
		data, err := v.ReadFile("/coda/usr/shared")
		if err != nil || string(data) != "v2" {
			t.Errorf("after break: %q, %v", data, err)
		}
	})
}

func TestBreakIgnoredOnDirtyObjectThenConflict(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"shared": "base"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: 20 * time.Second, PinWriteDisconnected: true})
		mustMount(t, v, "usr")
		if _, err := v.ReadFile("/coda/usr/shared"); err != nil {
			t.Fatal(err)
		}
		v.WriteDisconnect()
		if err := v.WriteFile("/coda/usr/shared", []byte("mine")); err != nil {
			t.Fatal(err)
		}
		// A strongly-connected client wins the race at the server.
		w.srv.WriteFile("usr", "shared", []byte("theirs"))
		w.sim.Sleep(time.Second)
		// §4.3.2: the break is ignored; the local copy still reads back.
		if data, _ := v.ReadFile("/coda/usr/shared"); string(data) != "mine" {
			t.Errorf("dirty object clobbered by callback break: %q", data)
		}
		// Reintegration then detects the update/update conflict.
		w.sim.Sleep(time.Minute)
		conflicts := v.Conflicts()
		if len(conflicts) == 0 {
			t.Fatal("no conflict surfaced")
		}
		if got, _ := w.srv.ReadFile("usr", "shared"); string(got) != "theirs" {
			t.Errorf("server copy = %q, want the connected client's update", got)
		}
		if v.CMLRecords() != 0 {
			t.Errorf("conflicting record still in CML: %d", v.CMLRecords())
		}
	})
}

func TestRapidValidationOnReconnect(t *testing.T) {
	w := newWorld(t)
	files := map[string]string{}
	for i := 0; i < 20; i++ {
		files[fmt.Sprintf("src/f%02d.c", i)] = fmt.Sprintf("content %d", i)
	}
	w.seed("proj", files)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "proj")
		for path := range files {
			if _, err := v.ReadFile("/coda/proj/" + path); err != nil {
				t.Fatal(err)
			}
		}
		// A hoard walk caches the volume stamp (§4.2.1).
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		v.Disconnect()
		v.Connect(10_000_000)
		st := v.Stats()
		if st.VolValidations != 1 || st.VolValidationsOK != 1 {
			t.Errorf("validations = %d ok = %d, want 1/1", st.VolValidations, st.VolValidationsOK)
		}
		if st.ObjsSavedByVolume < 20 {
			t.Errorf("ObjsSavedByVolume = %d, want ≥ 20", st.ObjsSavedByVolume)
		}
		if st.MissingStamp != 0 {
			t.Errorf("MissingStamp = %d", st.MissingStamp)
		}
		// Everything is valid without touching the network again.
		w.net.SetUp("c1", "server", false)
		for path, want := range files {
			if data, err := v.ReadFile("/coda/proj/" + path); err != nil || string(data) != want {
				t.Fatalf("%s after rapid validation: %q, %v", path, data, err)
			}
		}
	})
}

func TestStaleVolumeStampFallsBackToObjectValidation(t *testing.T) {
	w := newWorld(t)
	w.seed("proj", map[string]string{"stable": "same", "moving": "v1"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "proj")
		v.ReadFile("/coda/proj/stable")
		v.ReadFile("/coda/proj/moving")
		v.HoardWalk()
		v.Disconnect()
		// Someone updates the volume while we are away.
		w.srv.WriteFile("proj", "moving", []byte("v2"))
		v.Connect(10_000_000)
		st := v.Stats()
		if st.VolValidationsOK != 0 {
			t.Errorf("stale stamp validated: %+v", st)
		}
		// Unchanged object revalidates by version; changed one refetches.
		if data, err := v.ReadFile("/coda/proj/stable"); err != nil || string(data) != "same" {
			t.Errorf("stable = %q, %v", data, err)
		}
		if data, err := v.ReadFile("/coda/proj/moving"); err != nil || string(data) != "v2" {
			t.Errorf("moving = %q, %v", data, err)
		}
		if v.Stats().ObjValidations == 0 {
			t.Error("no individual object validations recorded")
		}
	})
}

func TestMissingStampCounted(t *testing.T) {
	w := newWorld(t)
	w.seed("proj", map[string]string{"f": "x"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "proj")
		v.ReadFile("/coda/proj/f")
		// No hoard walk: no volume stamp cached.
		v.Disconnect()
		v.Connect(10_000_000)
		if st := v.Stats(); st.MissingStamp != 1 {
			t.Errorf("MissingStamp = %d, want 1", st.MissingStamp)
		}
	})
}

func TestPatienceDefersBigMissOverModem(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"big.tar":   string(bytes.Repeat([]byte("B"), 1<<20)),
		"small.txt": "tiny",
	})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		w.setLink("c1", netsim.Modem)
		mustMount(t, v, "usr")
		v.Connect(9600)

		// Small files fetch transparently (cost under α=2s... actually
		// under τ for default priority).
		if _, err := v.ReadFile("/coda/usr/small.txt"); err != nil {
			t.Fatalf("small file deferred: %v", err)
		}
		// A 1 MB file at 9.6 Kb/s is ~15 minutes: deferred.
		_, err := v.ReadFile("/coda/usr/big.tar")
		var miss *venus.MissError
		if !errors.As(err, &miss) {
			t.Fatalf("big fetch = %v, want MissError", err)
		}
		if miss.Cost <= miss.Threshold {
			t.Errorf("deferred although cost %v ≤ threshold %v", miss.Cost, miss.Threshold)
		}
		misses := v.Misses()
		if len(misses) != 1 || misses[0].Path != "/coda/usr/big.tar" {
			t.Errorf("miss list = %+v", misses)
		}

		// The user hoards it at high priority; the walk fetches it.
		v.HoardAdd("/coda/usr/big.tar", 900, false)
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		if data, err := v.ReadFile("/coda/usr/big.tar"); err != nil || len(data) != 1<<20 {
			t.Errorf("after hoarding: %d bytes, %v", len(data), err)
		}
		st := v.Stats()
		if st.DeferredMisses != 1 {
			t.Errorf("DeferredMisses = %d", st.DeferredMisses)
		}
	})
}

func TestAdvisorControlsDataWalk(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"huge.bin": string(bytes.Repeat([]byte("H"), 2<<20)),
	})
	w.sim.Run(func() {
		var sawItems []venus.WalkItem
		adv := venus.FuncAdvisor(func(items []venus.WalkItem) []bool {
			sawItems = items
			out := make([]bool, len(items))
			return out // refuse everything
		})
		v := w.venus("c1", venus.Config{Advisor: adv})
		w.setLink("c1", netsim.Modem)
		mustMount(t, v, "usr")
		v.Connect(9600)
		v.HoardAdd("/coda/usr/huge.bin", 100, false)
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		if len(sawItems) != 1 || sawItems[0].Path != "/coda/usr/huge.bin" {
			t.Fatalf("advisor saw %+v", sawItems)
		}
		if sawItems[0].PreApproved {
			t.Error("2 MB at 9.6 Kb/s pre-approved at priority 100")
		}
		// Refused: still a placeholder, so a read defers.
		if _, err := v.ReadFile("/coda/usr/huge.bin"); !errors.Is(err, venus.ErrCacheMiss) {
			t.Errorf("read after refusal = %v", err)
		}
	})
}

func TestHoardWalkMetaExpansion(t *testing.T) {
	w := newWorld(t)
	w.seed("proj", map[string]string{
		"src/a.c":       "aaa",
		"src/sub/b.c":   "bbb",
		"src/sub/c.h":   "ccc",
		"unrelated/d.c": "ddd",
	})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "proj")
		v.HoardAdd("/coda/proj/src", 500, true)
		if err := v.HoardWalk(); err != nil {
			t.Fatal(err)
		}
		// The whole subtree is now cached: sever and read.
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		for _, p := range []string{"src/a.c", "src/sub/b.c", "src/sub/c.h"} {
			if _, err := v.ReadFile("/coda/proj/" + p); err != nil {
				t.Errorf("%s not hoarded: %v", p, err)
			}
		}
		if _, err := v.ReadFile("/coda/proj/unrelated/d.c"); err == nil {
			t.Error("unhoarded file available while disconnected?")
		}
	})
}

func TestCacheEvictionRespectsHoardPriority(t *testing.T) {
	w := newWorld(t)
	files := map[string]string{}
	for i := 0; i < 10; i++ {
		files[fmt.Sprintf("f%d", i)] = string(bytes.Repeat([]byte("x"), 100_000))
	}
	w.seed("usr", files)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{CacheBytes: 450_000})
		mustMount(t, v, "usr")
		v.HoardAdd("/coda/usr/f0", 900, false)
		v.HoardWalk()
		for i := 1; i < 10; i++ {
			if _, err := v.ReadFile(fmt.Sprintf("/coda/usr/f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		// f0 was hoarded at high priority; reading 9 more 100 KB files
		// through a 450 KB cache must not evict it.
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		if _, err := v.ReadFile("/coda/usr/f0"); err != nil {
			t.Errorf("hoarded f0 evicted: %v", err)
		}
	})
}

func TestForceReintegrate(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: time.Hour, PinWriteDisconnected: true})
		mustMount(t, v, "usr")
		v.WriteDisconnect()
		v.WriteFile("/coda/usr/urgent", []byte("send now"))
		// Aging window is an hour, but the user is about to hang up.
		if err := v.ForceReintegrate(); err != nil {
			t.Fatal(err)
		}
		if got, err := w.srv.ReadFile("usr", "urgent"); err != nil || string(got) != "send now" {
			t.Errorf("urgent = %q, %v", got, err)
		}
	})
}

func TestDemotionOnWeakBandwidth(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"f": "x"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		if v.State() != venus.Hoarding {
			t.Fatal("not hoarding initially")
		}
		// The link degrades to a modem; traffic reveals it.
		w.setLink("c1", netsim.Modem)
		for i := 0; i < 5; i++ {
			v.ReadFile("/coda/usr/f")
			v.WriteFile("/coda/usr/g", bytes.Repeat([]byte("y"), 4096))
			w.sim.Sleep(5 * time.Second)
		}
		w.sim.Sleep(30 * time.Second)
		if v.State() != venus.WriteDisconnected {
			t.Errorf("state = %v on modem link (bw estimate %d)", v.State(), v.LinkBandwidth())
		}
	})
}

func TestServerUnreachableDemotesToEmulating(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"f": "x"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		v.ReadFile("/coda/usr/f")
		w.net.SetUp("c1", "server", false)
		// A write-through attempt times out and Venus falls back to
		// logging — the update is not lost.
		if err := v.WriteFile("/coda/usr/f", []byte("offline edit")); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
		if v.State() != venus.Emulating {
			t.Errorf("state = %v after server timeout", v.State())
		}
		if v.CMLRecords() == 0 {
			t.Error("offline edit not logged")
		}
		// Outage ends; reconnect and drain.
		w.net.SetUp("c1", "server", true)
		v.Connect(10_000_000)
		w.sim.Sleep(11 * time.Minute) // past the default aging window
		if got, _ := w.srv.ReadFile("usr", "f"); string(got) != "offline edit" {
			t.Errorf("server f = %q", got)
		}
	})
}

func TestMountUnknownVolume(t *testing.T) {
	w := newWorld(t)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		if err := v.Mount("ghost"); err == nil {
			t.Error("mounted a nonexistent volume")
		}
	})
}

func TestErrorTaxonomy(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"dir/f": "x"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		if _, err := v.ReadFile("/coda/usr/absent"); !errors.Is(err, venus.ErrNotFound) {
			t.Errorf("absent: %v", err)
		}
		if _, err := v.ReadFile("/coda/usr/dir"); !errors.Is(err, venus.ErrIsDir) {
			t.Errorf("read dir: %v", err)
		}
		if _, err := v.ReadDir("/coda/usr/dir/f"); !errors.Is(err, venus.ErrNotDir) {
			t.Errorf("readdir file: %v", err)
		}
		if err := v.Mkdir("/coda/usr/dir"); !errors.Is(err, venus.ErrExist) {
			t.Errorf("mkdir existing: %v", err)
		}
		if err := v.Rmdir("/coda/usr/dir"); !errors.Is(err, venus.ErrNotEmpty) {
			t.Errorf("rmdir non-empty: %v", err)
		}
		if err := v.Remove("/coda/usr/dir"); !errors.Is(err, venus.ErrIsDir) {
			t.Errorf("remove dir: %v", err)
		}
	})
}

func TestStatAndBandwidthExport(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"f": "hello"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		st, err := v.Stat("/coda/usr/f")
		if err != nil || st.Length != 5 || st.Type != codafs.File {
			t.Errorf("Stat = %+v, %v", st, err)
		}
		// Transport estimates are exported to Venus (§4.1).
		v.ReadFile("/coda/usr/f")
		if v.LinkBandwidth() <= 0 {
			t.Error("no bandwidth estimate after traffic")
		}
	})
}
