package venus_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/venus"
)

// TestTrickleYieldsToForegroundFetch verifies §4.3.5's design goal: a cache
// miss serviced while trickle reintegration is draining a large backlog
// waits at most on the order of one chunk (~30 s of line time), not on the
// whole backlog.
func TestTrickleYieldsToForegroundFetch(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{
		"wanted.txt": "small and urgent",
	})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{
			AgingWindow:          time.Second,
			TrickleInterval:      time.Second,
			PinWriteDisconnected: true,
		})
		mustMount(t, v, "usr")
		w.setLink("c1", wlModem())
		v.Connect(9600)
		v.HoardAdd("/coda/usr/wanted.txt", 900, false)

		// A 300 KB backlog: ~4.3 minutes of modem line time, drained as
		// ~36 KB chunks.
		for i := 0; i < 10; i++ {
			must(t, v.WriteFile("/coda/usr"+"/big"+string(rune('0'+i)), bytes.Repeat([]byte("b"), 30_000)))
		}
		w.sim.Sleep(20 * time.Second) // trickle is now mid-backlog

		// The user needs a small file that is not cached.
		start := w.sim.Now()
		if _, err := v.ReadFile("/coda/usr/wanted.txt"); err != nil {
			t.Fatalf("foreground fetch failed: %v", err)
		}
		wait := w.sim.Now().Sub(start)

		// One chunk occupies the line for ~30 s; the whole backlog would
		// be ~4 minutes. The fetch must see chunk-scale delay.
		if wait > 90*time.Second {
			t.Errorf("foreground fetch waited %v; trickle is not yielding between chunks", wait)
		}
		// And reintegration still completes afterwards.
		w.sim.Sleep(10 * time.Minute)
		if v.CMLRecords() != 0 {
			t.Errorf("backlog never drained: %d records", v.CMLRecords())
		}
	})
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
