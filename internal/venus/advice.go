package venus

import "time"

// WalkItem is one object proposed for fetching during the data walk
// (Figure 6: name, priority, estimated cost, and whether the patience model
// pre-approved it).
type WalkItem struct {
	Path        string
	Priority    int
	Size        int64
	Cost        time.Duration
	PreApproved bool
}

// Advisor is the seam through which Venus seeks user advice (§4.4). The
// paper's Tcl/Tk screens correspond to cmd/codaclient's terminal
// implementation; tests and unattended operation use programmatic ones.
type Advisor interface {
	// ApproveDataWalk is consulted between the status and data walks
	// while weakly connected. It returns, for each item, whether to
	// fetch it. Implementations should honor PreApproved items (the
	// screen in Figure 6 lists them as already approved) but may
	// suppress any fetch.
	ApproveDataWalk(items []WalkItem) []bool
}

// AutoAdvisor approves every fetch — the behaviour when the Figure 6
// screen times out with no user input ("this handles the case where the
// client is running unattended").
type AutoAdvisor struct{}

// ApproveDataWalk implements Advisor.
func (AutoAdvisor) ApproveDataWalk(items []WalkItem) []bool {
	out := make([]bool, len(items))
	for i := range out {
		out[i] = true
	}
	return out
}

// PreApprovedOnlyAdvisor fetches only items under the patience threshold —
// a silent user who clicks nothing but "Done".
type PreApprovedOnlyAdvisor struct{}

// ApproveDataWalk implements Advisor.
func (PreApprovedOnlyAdvisor) ApproveDataWalk(items []WalkItem) []bool {
	out := make([]bool, len(items))
	for i, it := range items {
		out[i] = it.PreApproved
	}
	return out
}

// FuncAdvisor adapts a function to the Advisor interface.
type FuncAdvisor func(items []WalkItem) []bool

// ApproveDataWalk implements Advisor.
func (f FuncAdvisor) ApproveDataWalk(items []WalkItem) []bool { return f(items) }
