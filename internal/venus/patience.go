package venus

import (
	"math"
	"time"
)

// PatienceParams are the constants of the user patience model of §4.4.4:
//
//	τ = α + β·e^(γ·P)
//
// where P is the object's hoard priority and τ is in seconds. The paper
// conjectures patience follows a logarithmic sensitivity law like vision,
// chooses α = 2 s (even an unimportant object is worth a 2-second wait over
// a miss), β = 1, γ = 0.01, and notes the implementation is structured so a
// better-founded model can be substituted — hence this separate type.
type PatienceParams struct {
	Alpha float64 // lower bound on patience, seconds
	Beta  float64 // scale
	Gamma float64 // exponent per priority unit
}

// DefaultPatience returns the paper's parameter choices.
func DefaultPatience() PatienceParams {
	return PatienceParams{Alpha: 2, Beta: 1, Gamma: 0.01}
}

func (p *PatienceParams) fillDefaults() {
	if p.Alpha == 0 && p.Beta == 0 && p.Gamma == 0 {
		*p = DefaultPatience()
	}
}

// Threshold returns τ for an object of the given hoard priority.
func (p PatienceParams) Threshold(priority int) time.Duration {
	secs := p.Alpha + p.Beta*math.Exp(p.Gamma*float64(priority))
	if secs < 0 {
		secs = 0
	}
	// Cap at ~30 days to keep the duration finite for huge priorities.
	if secs > 30*24*3600 {
		secs = 30 * 24 * 3600
	}
	return time.Duration(secs * float64(time.Second))
}

// MaxFileSize converts τ into the largest file fetchable within the
// threshold at the given bandwidth (how Figure 7 plots the model).
func (p PatienceParams) MaxFileSize(priority int, bandwidthBits int64) int64 {
	tau := p.Threshold(priority).Seconds()
	return int64(tau * float64(bandwidthBits) / 8)
}
