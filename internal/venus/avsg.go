package venus

import (
	"errors"
	"time"

	"repro/internal/cml"
	"repro/internal/delta"
	"repro/internal/netmon"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/wire"
)

// AVSG handling: Venus's view of the replicated server group. The paper's
// Coda ran every volume on an accessible volume storage group; this file
// generalizes Venus from one server to the member list in Config.Servers.
//
//   - Each volume has a preferred member, derived from the volume ID so
//     every client of a volume converges on the same member (callback
//     registrations concentrate where the volume's writes land).
//   - RPCs go to the preferred member and fail over to the next on
//     timeout; the preference sticks to whichever member answered, so one
//     dead server costs one timeout, not one per call.
//   - Reintegration fails over on ANY error, not just timeouts:
//     application-level verdicts (conflicts, failed deltas) ride inside
//     ReintegrateRep, so a transport error from the member — including a
//     remote "journal: ..." failure from a dying disk — means server
//     infrastructure failure, which is exactly what the group exists to
//     mask. Retransmitted chunks are deduplicated server-side by
//     (client, CML sequence), so duplicated delivery is idempotent.
//   - Callback breaks are accepted from any member (handleServerCall has
//     never cared who src is), because every member that applies a log
//     entry — live or shipped — dispatches its own breaks.

// Servers returns the group member addresses in canonical order.
func (v *Venus) Servers() []string {
	return append([]string(nil), v.cfg.Servers...)
}

// Monitor exposes the transport's peer monitor — per-member bandwidth,
// SRTT, and RTO estimates (§4.1). Callers read the transport's numbers
// directly; the same figures are exported as netmon gauges when a
// registry is injected.
func (v *Venus) Monitor() *netmon.Monitor { return v.node.Monitor() }

// peerOf returns the transport's view of the link to one member.
func (v *Venus) peerOf(addr string) *netmon.Peer {
	return v.node.Monitor().Peer(addr)
}

// LinkBandwidth is the bandwidth estimate (bits/s) governing Venus's
// adaptation, exported for tools and experiments.
func (v *Venus) LinkBandwidth() int64 { return v.linkBandwidth() }

// linkBandwidth is the bandwidth estimate governing state transitions
// and chunk sizing: the best current estimate across members (the client
// is as connected as its best link; a dead member must not pin the
// estimate at its last value).
func (v *Venus) linkBandwidth() int64 {
	var best int64
	for _, addr := range v.cfg.Servers {
		if bw := v.peerOf(addr).Bandwidth(); bw > best {
			best = bw
		}
	}
	return best
}

// prefIndex returns vc's preferred member index (the member this
// volume's traffic currently targets).
func (v *Venus) prefIndex(vc *vclient) int {
	if vc == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return vc.pref
}

// prefAddr returns vc's preferred member address.
func (v *Venus) prefAddr(vc *vclient) string {
	return v.cfg.Servers[v.prefIndex(vc)]
}

// defaultPref derives a volume's initial preferred member from its ID, so
// all clients of a volume start on the same member.
func (v *Venus) defaultPref(id uint64) int {
	return int(id % uint64(len(v.cfg.Servers)))
}

// noteFailover records one abandoned member attempt: the volume's
// preference advances past the failed member and the failover counters
// absorb the time the attempt burned (began until now) before Venus
// gave up on it. When the operation is traced, the burned wait becomes
// a venus_failover_wait span so the critical path can attribute it.
func (v *Venus) noteFailover(vc *vclient, from int, began time.Time, sc obs.SpanContext) {
	n := len(v.cfg.Servers)
	if n < 2 {
		return
	}
	wait := v.clock.Now().Sub(began)
	v.mu.Lock()
	if vc != nil && vc.pref == from {
		vc.pref = (from + 1) % n
	}
	v.stats.Failovers++
	v.mu.Unlock()
	v.met.failovers.Inc()
	v.met.failoverWait.Add(wait.Microseconds())
	v.met.reg.Event("venus_failover", obs.F("member", v.cfg.Servers[from]))
	if sc.Valid() {
		v.met.reg.SpanAt(v.met.self, "venus_failover_wait", sc, began,
			obs.F("member", v.cfg.Servers[from])).End()
	}
}

// callVol performs one volume-scoped RPC against the group: the volume's
// preferred member first, failing over to the others on timeout. Errors
// other than timeouts are the member answering — they pass through
// without failover (the reply, not the route, is wrong). If every member
// times out, the last timeout is returned and the caller's existing
// disconnection handling takes over.
func callVol[Rep any](v *Venus, vc *vclient, req any, opts rpc2.CallOpts) (Rep, error) {
	var zero Rep
	members := v.cfg.Servers
	start := v.prefIndex(vc)
	var lastErr error
	for k := 0; k < len(members); k++ {
		i := (start + k) % len(members)
		began := v.clock.Now()
		rep, err := wire.Call[Rep](v.node, members[i], req, opts)
		if err == nil {
			return rep, nil
		}
		if !errors.Is(err, rpc2.ErrTimeout) {
			return zero, err
		}
		lastErr = err
		v.noteFailover(vc, i, began, opts.Span)
	}
	return zero, lastErr
}

// callAny performs one group-scoped RPC (no volume affinity): member 0
// first, failing over on timeout.
func callAny[Rep any](v *Venus, req any, opts rpc2.CallOpts) (Rep, error) {
	return callVol[Rep](v, nil, req, opts)
}

// reintegrateTimeout bounds one reintegration attempt against one
// member. Alone, a member gets the full patience of a slow modem link
// (§4.3.5); with a group, a stuck member is abandoned quickly because
// another can take the chunk.
func (v *Venus) reintegrateTimeout() time.Duration {
	if len(v.cfg.Servers) > 1 {
		return 2 * time.Minute
	}
	return 30 * time.Minute
}

// reintegrateCall ships one CML chunk to the group. fragData, when
// non-nil, is the contents of recs[0] (a store larger than the chunk
// size) to pre-ship as resumable fragments of fragSize bytes; fragment
// state lives per member, so a failover re-ships them to the new member
// under a fresh transfer ID rather than referencing buffers the dead
// member holds.
//
// Unlike callVol this fails over on every error (see the file comment):
// the server-side dedup set makes the retransmit safe even if the failed
// member actually applied the chunk before dying.
func (v *Venus) reintegrateCall(vc *vclient, recs []cml.Record, deltas map[int]delta.Delta, fragData []byte, fragSize int64, sc obs.SpanContext) (wire.ReintegrateRep, error) {
	members := v.cfg.Servers
	timeout := v.reintegrateTimeout()
	start := v.prefIndex(vc)
	var lastErr error
	for k := 0; k < len(members); k++ {
		i := (start + k) % len(members)
		began := v.clock.Now()
		var fragments map[int]uint64
		if fragData != nil {
			id := v.allocXfer()
			if err := v.shipFragmentsTo(members[i], id, fragData, fragSize, sc); err != nil {
				lastErr = err
				v.noteFailover(vc, i, began, sc)
				continue
			}
			fragments = map[int]uint64{0: id}
		}
		rep, err := wire.Call[wire.ReintegrateRep](v.node, members[i], wire.Reintegrate{
			Volume: vc.info.ID, Records: recs, Fragments: fragments, Deltas: deltas,
		}, rpc2.CallOpts{Timeout: timeout, Span: sc})
		if err == nil {
			return rep, nil
		}
		lastErr = err
		v.noteFailover(vc, i, began, sc)
	}
	return wire.ReintegrateRep{}, lastErr
}

// shipFragmentsTo sends data to one member as fragments of at most
// fragSize bytes, resuming from wherever that member says it already has
// contiguous data. On a traced reintegration the whole resumable ship is
// one venus_fragment_ship span with the per-fragment PutFragment calls
// as children.
func (v *Venus) shipFragmentsTo(addr string, id uint64, data []byte, fragSize int64, sc obs.SpanContext) error {
	var sp *obs.SpanHandle
	if sc.Valid() {
		sp = v.met.reg.StartSpan(v.met.self, "venus_fragment_ship", sc, obs.F("member", addr))
		if ctx := sp.Context(); ctx.Valid() {
			sc = ctx
		}
	}
	defer sp.End()
	total := int64(len(data))
	var offset int64
	for offset < total {
		end := offset + fragSize
		if end > total {
			end = total
		}
		rep, err := wire.Call[wire.PutFragmentRep](v.node, addr, wire.PutFragment{
			Transfer: id, Offset: offset, Total: total, Data: data[offset:end],
		}, rpc2.CallOpts{Timeout: v.reintegrateTimeout(), Span: sc})
		if err != nil {
			return err
		}
		offset = rep.Received
		// Yield between fragments so a foreground fetch is not starved
		// for more than one fragment's worth of time.
		if v.foregroundBusy() {
			v.clock.Sleep(time.Second)
		}
	}
	return nil
}
