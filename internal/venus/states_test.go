package venus_test

import (
	"testing"
	"time"

	"repro/internal/venus"
)

// TestFigure2Transitions drives every edge of the paper's state diagram
// and checks both the resulting states and the recorded transition counts.
func TestFigure2Transitions(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"f": "x"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: time.Second})
		mustMount(t, v, "usr")

		// Initial state: hoarding (strongly connected).
		if v.State() != venus.Hoarding {
			t.Fatalf("initial state = %v", v.State())
		}

		// hoarding → emulating (disconnection).
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		if v.State() != venus.Emulating {
			t.Fatalf("after disconnect = %v", v.State())
		}

		// emulating → write-disconnected (any connection, regardless of
		// strength — here a weak one).
		w.net.SetUp("c1", "server", true)
		w.setLink("c1", wlModem())
		v.Connect(9600)
		if v.State() != venus.WriteDisconnected {
			t.Fatalf("after weak reconnect = %v", v.State())
		}

		// write-disconnected → emulating (disconnection again).
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		if v.State() != venus.Emulating {
			t.Fatalf("after second disconnect = %v", v.State())
		}

		// emulating → write-disconnected → hoarding: strong reconnection
		// with an empty CML; promotion happens via the trickle daemon
		// only after all outstanding updates are reintegrated.
		w.net.SetUp("c1", "server", true)
		w.setLink("c1", wlEthernet())
		v.WriteFile("/coda/usr/g", []byte("pending")) // logged while emulating
		v.Connect(10_000_000)
		if v.State() != venus.WriteDisconnected {
			t.Fatalf("reconnect must land in write-disconnected, got %v", v.State())
		}
		w.sim.Sleep(30 * time.Second)
		if v.State() != venus.Hoarding {
			t.Fatalf("after drain on strong net = %v (CML %d)", v.State(), v.CMLRecords())
		}

		// hoarding → write-disconnected (bandwidth degrades; the demotion
		// is driven by measured traffic).
		w.setLink("c1", wlModem())
		for i := 0; i < 12 && v.State() == venus.Hoarding; i++ {
			v.WriteFile("/coda/usr/f", make([]byte, 16<<10))
			w.sim.Sleep(20 * time.Second)
		}
		if v.State() != venus.WriteDisconnected {
			t.Fatalf("no demotion on modem link: %v (bw %d)", v.State(), v.LinkBandwidth())
		}

		st := v.Stats()
		for _, edge := range []string{
			"hoarding->emulating",
			"emulating->write-disconnected",
			"write-disconnected->emulating",
			"write-disconnected->hoarding",
			"hoarding->write-disconnected",
		} {
			if st.Transitions[edge] == 0 {
				t.Errorf("edge %q never taken: %v", edge, st.Transitions)
			}
		}
	})
}

// TestNoDirectEmulatingToHoarding asserts the diagram's constraint: all
// reconnections pass through write-disconnected, even on a LAN with an
// empty CML.
func TestNoDirectEmulatingToHoarding(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		v.Disconnect()
		v.Connect(10_000_000)
		st := v.Stats()
		if st.Transitions["emulating->hoarding"] != 0 {
			t.Error("illegal direct emulating→hoarding transition")
		}
		if st.Transitions["emulating->write-disconnected"] != 1 {
			t.Errorf("transitions = %v", st.Transitions)
		}
	})
}

// Pinning (the Figure 12 methodology) must survive drains and strong links.
func TestPinnedWriteDisconnectedNeverPromotes(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: time.Second, PinWriteDisconnected: true})
		mustMount(t, v, "usr")
		v.WriteDisconnect()
		v.WriteFile("/coda/usr/a", []byte("x"))
		w.sim.Sleep(5 * time.Minute)
		if v.CMLRecords() != 0 {
			t.Error("CML not drained")
		}
		if v.State() != venus.WriteDisconnected {
			t.Errorf("pinned client promoted to %v", v.State())
		}
	})
}
