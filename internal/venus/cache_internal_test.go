package venus

import (
	"testing"
	"testing/quick"

	"repro/internal/codafs"
)

func mkObj(vnode uint64, size int) *codafs.Object {
	return &codafs.Object{
		Status: codafs.Status{
			FID:    codafs.FID{Volume: 1, Vnode: vnode, Unique: vnode},
			Type:   codafs.File,
			Length: int64(size),
		},
		Data: make([]byte, size),
	}
}

func TestCacheAccounting(t *testing.T) {
	c := newCache(1 << 20)
	f := c.install(mkObj(2, 1000), false)
	if c.bytesUsed() != 1000 {
		t.Fatalf("used = %d, want 1000", c.bytesUsed())
	}
	// In-place growth with recharge.
	before := f.dataBytes()
	f.obj.Data = make([]byte, 3000)
	c.recharge(f, before)
	if c.bytesUsed() != 3000 {
		t.Fatalf("used after recharge = %d, want 3000", c.bytesUsed())
	}
	// Replacement install resets the charge.
	c.install(mkObj(2, 500), false)
	if c.bytesUsed() != 500 {
		t.Fatalf("used after reinstall = %d, want 500", c.bytesUsed())
	}
	c.remove(codafs.FID{Volume: 1, Vnode: 2, Unique: 2})
	if c.bytesUsed() != 0 || c.count() != 0 {
		t.Fatalf("used=%d count=%d after remove", c.bytesUsed(), c.count())
	}
}

func TestCacheEvictionOrder(t *testing.T) {
	c := newCache(10_000)
	low := c.install(mkObj(2, 4000), false)
	low.hoardPri = 0
	high := c.install(mkObj(3, 4000), false)
	high.hoardPri = 900
	//

	// Touch low afterwards: recency must NOT protect it against the
	// hoard priority ordering.
	c.touch(low)
	if !c.evictFor(4000) {
		t.Fatal("evictFor failed")
	}
	if c.get(low.obj.Status.FID) != nil {
		t.Error("low-priority object survived over high-priority")
	}
	if c.get(high.obj.Status.FID) == nil {
		t.Error("high-priority object evicted")
	}
}

func TestCacheEvictionLRUWithinPriority(t *testing.T) {
	c := newCache(10_000)
	a := c.install(mkObj(2, 4000), false)
	b := c.install(mkObj(3, 4000), false)
	c.touch(a) // a now more recent than b
	if !c.evictFor(4000) {
		t.Fatal("evictFor failed")
	}
	if c.get(b.obj.Status.FID) != nil {
		t.Error("LRU victim b survived")
	}
	if c.get(a.obj.Status.FID) == nil {
		t.Error("recently used a evicted")
	}
}

func TestCacheNeverEvictsDirty(t *testing.T) {
	c := newCache(5_000)
	d := c.install(mkObj(2, 4000), true) // dirty
	if c.evictFor(4000) {
		t.Error("evictFor claimed success with only a dirty object to evict")
	}
	if c.get(d.obj.Status.FID) == nil {
		t.Fatal("dirty object evicted — pending updates would be lost")
	}
}

func TestCacheNeverEvictsRoots(t *testing.T) {
	c := newCache(5_000)
	root := &codafs.Object{
		Status:   codafs.Status{FID: codafs.FID{Volume: 1, Vnode: 1, Unique: 1}, Type: codafs.Directory},
		Children: map[string]codafs.FID{},
	}
	for i := 0; i < 200; i++ {
		root.Children[string(rune('a'+i%26))+string(rune('0'+i%10))] = codafs.FID{Volume: 1, Vnode: uint64(i + 10)}
	}
	c.install(root, false)
	c.evictFor(100_000) // impossible request
	if c.get(root.Status.FID) == nil {
		t.Error("volume root evicted")
	}
}

// Property: used bytes always equals the sum of residents' charges, across
// arbitrary install/remove/recharge sequences.
func TestCacheAccountingProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Vnode uint8
		Size  uint16
	}
	f := func(ops []op) bool {
		c := newCache(1 << 30)
		for _, o := range ops {
			vn := uint64(o.Vnode%16) + 2
			fid := codafs.FID{Volume: 1, Vnode: vn, Unique: vn}
			switch o.Kind % 3 {
			case 0:
				c.install(mkObj(vn, int(o.Size)), o.Kind%2 == 0)
			case 1:
				c.remove(fid)
			case 2:
				if f := c.get(fid); f != nil {
					before := f.dataBytes()
					f.obj.Data = make([]byte, o.Size)
					c.recharge(f, before)
				}
			}
		}
		var want int64
		for _, f := range c.all() {
			want += f.dataBytes()
		}
		return c.bytesUsed() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPatienceThresholdShape(t *testing.T) {
	p := DefaultPatience()
	// Monotone in priority; floor at α+β for priority 0.
	prev := p.Threshold(0)
	if prev.Seconds() < p.Alpha {
		t.Errorf("τ(0) = %v below α", prev)
	}
	for pri := 100; pri <= 1000; pri += 100 {
		cur := p.Threshold(pri)
		if cur <= prev {
			t.Errorf("τ not increasing at %d: %v <= %v", pri, cur, prev)
		}
		prev = cur
	}
	// The paper's worked example: 60 s at 64 Kb/s ≈ 480 KB.
	if got := (PatienceParams{Alpha: 0, Beta: 60, Gamma: 0}).MaxFileSize(0, 64_000); got != 480_000 {
		t.Errorf("60s at 64Kb/s = %d bytes, want 480000", got)
	}
}

func TestCacheStatsFigure6Fields(t *testing.T) {
	c := newCache(50 << 20)
	c.install(mkObj(2, 8244<<10/8), false) // arbitrary occupancy
	v := &Venus{cfg: Config{CacheBytes: 50 << 20}, cache: c}
	cs := v.CacheStats()
	if cs.AllocatedBytes != 50<<20 {
		t.Errorf("Allocated = %d", cs.AllocatedBytes)
	}
	if cs.OccupiedBytes != c.bytesUsed() || cs.Objects != 1 {
		t.Errorf("Occupied = %d Objects = %d", cs.OccupiedBytes, cs.Objects)
	}
	if cs.Available() != cs.AllocatedBytes-cs.OccupiedBytes {
		t.Error("Available inconsistent")
	}
}
