// Package venus implements the Coda client cache manager — the paper's
// Venus — with the weak-connectivity adaptations of §3–§4:
//
//   - the three-state machine of Figure 2 (hoarding / emulating / write
//     disconnected), where the old transient reintegrating state has been
//     replaced by the stable write-disconnected state;
//   - a client modify log per volume with log optimizations, drained by
//     trickle reintegration (aging window, adaptive chunk size, fragmented
//     shipment of large stores — §4.3);
//   - rapid cache validation with volume version stamps and volume
//     callbacks (§4.2), falling back to per-object validation when a stamp
//     proves stale;
//   - hoard database management and the two-phase hoard walk with an
//     interactive approval step (§4.4.2–§4.4.3);
//   - the user patience model τ = α + β·e^(γP) that decides which cache
//     misses are serviced transparently and which are deferred to the user
//     (§4.4.4).
//
// All waiting goes through simtime, so a Venus runs identically under the
// real clock (cmd/codaclient) and the simulated clock (tests, experiments).
package venus

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// State is Venus's operating state (Figure 2).
type State int

// The three stable states of the modified Venus.
const (
	// Hoarding: strongly connected; write-through updates, callbacks
	// maintained, periodic hoard walks.
	Hoarding State = iota
	// Emulating: disconnected; updates logged in the CML, misses fail.
	Emulating
	// WriteDisconnected: weakly connected (or draining after
	// reconnection); updates logged and trickled, misses filtered by the
	// patience model.
	WriteDisconnected
)

func (s State) String() string {
	switch s {
	case Hoarding:
		return "hoarding"
	case Emulating:
		return "emulating"
	case WriteDisconnected:
		return "write-disconnected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config parameterizes a Venus. Zero values select the paper's defaults.
type Config struct {
	// Servers lists the replicated server group (AVSG) members holding
	// this client's volumes, in the group's canonical order — the same
	// order on every client, so per-volume member preferences agree.
	// Venus fails over between members on RPC timeout and accepts
	// callback breaks from any of them.
	Servers []string
	// Server is shorthand for a single-member Servers list; ignored when
	// Servers is set.
	Server string
	// ClientID distinguishes this client's FID allocations; must be
	// unique among clients of the same server.
	ClientID uint32
	// CacheBytes bounds cached file data (default 50 MB, the size shown
	// in Figure 6).
	CacheBytes int64
	// AgingWindow is A of §4.3.4 (default 600 s).
	AgingWindow time.Duration
	// ChunkSeconds converts bandwidth into the reintegration chunk size
	// C (§4.3.5; default 30 s).
	ChunkSeconds int
	// HoardInterval is the period between hoard walks (default 10 min).
	HoardInterval time.Duration
	// ProbeInterval, when nonzero, runs a connectivity prober: while
	// disconnected Venus probes the server and reconnects by itself; while
	// connected, silence beyond the interval triggers a probe whose
	// failure demotes to emulating. Tests and experiments usually leave
	// it zero and steer connectivity explicitly.
	ProbeInterval time.Duration
	// TrickleInterval is how often the trickle daemon looks for aged
	// records (default 10 s).
	TrickleInterval time.Duration
	// StrongThreshold is the bandwidth (b/s) above which connectivity
	// counts as strong (default 1 Mb/s: LANs are strong, ISDN and modems
	// are weak).
	StrongThreshold int64
	// Patience holds the patience-model parameters (default α=2 s, β=1,
	// γ=0.01).
	Patience PatienceParams
	// DefaultPriority is the hoard priority assumed for objects not in
	// the HDB when evaluating patience.
	DefaultPriority int
	// Advisor handles interactions that need the user (nil: the
	// AutoAdvisor, which approves everything, matching the unattended
	// behaviour of Figure 6).
	Advisor Advisor
	// EnableDeltas ships rsync-style file differences instead of full
	// contents during reintegration when the server holds the previous
	// version (the §4.1 future-work transport enhancement; off by
	// default to match the paper's evaluated system).
	EnableDeltas bool
	// DisableLogOptimize turns off CML optimizations (ablation).
	DisableLogOptimize bool
	// DisableVolumeCallbacks forces per-object validation (ablation for
	// Figure 8).
	DisableVolumeCallbacks bool
	// PinWriteDisconnected, when set, prevents the transition to
	// Hoarding even under strong connectivity — the paper's Figure 12
	// methodology ("we forced Venus to remain write disconnected at all
	// bandwidths").
	PinWriteDisconnected bool
	// Obs receives this Venus's metrics and trace events (nil: no
	// observability; instrumentation is inert).
	Obs *obs.Registry
}

func (c *Config) fillDefaults() {
	if len(c.Servers) == 0 && c.Server != "" {
		c.Servers = []string{c.Server}
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 50 << 20
	}
	if c.AgingWindow == 0 {
		c.AgingWindow = 600 * time.Second
	}
	if c.ChunkSeconds == 0 {
		c.ChunkSeconds = 30
	}
	if c.HoardInterval == 0 {
		c.HoardInterval = 10 * time.Minute
	}
	if c.TrickleInterval == 0 {
		c.TrickleInterval = 10 * time.Second
	}
	if c.StrongThreshold == 0 {
		c.StrongThreshold = 1_000_000
	}
	c.Patience.fillDefaults()
	if c.Advisor == nil {
		c.Advisor = AutoAdvisor{}
	}
}

// Venus is one client cache manager.
type Venus struct {
	clock simtime.Clock
	cfg   Config
	node  *rpc2.Node
	met   *vmetrics

	mu         sync.Mutex
	state      State
	cache      *cache
	volumes    map[string]*vclient          // by name
	volByID    map[codafs.VolumeID]*vclient //
	hdb        map[string]*HDBEntry         // by path
	misses     []MissRecord                 // deferred misses awaiting user review
	conflicts  []Conflict
	nextVnode  uint64
	nextXfer   uint64
	foreground int  // foreground network operations in flight
	walking    bool // a hoard walk is in progress
	fetching   map[codafs.FID]bool
	program    string // advisory tag for miss records (Figure 5)
	netCost    NetworkCost
	stats      Stats
	closed     bool
	journal    *journal // durability WAL; nil until AttachJournal

	stopped chan struct{}
}

// vclient is Venus's view of one mounted volume. Each mounted volume is
// its own reintegration domain: a per-volume trickle loop drains its CML
// on its own schedule, so a large shipment on one volume never delays
// another volume's records (mirroring the server's per-volume locking).
type vclient struct {
	info     codafs.VolumeInfo
	root     codafs.FID
	stamp    uint64 // cached volume version stamp
	hasStamp bool   // whether stamp is usable (volume callback held)
	log      *cml.Log
	// pref indexes Config.Servers: the group member this volume's RPCs
	// currently target (guarded by Venus.mu). Seeded from the volume ID
	// so all clients of a volume converge on the same member; advanced
	// past a member when a call to it times out (see avsg.go).
	pref int

	// drainMu serializes reintegration attempts against this volume's CML
	// (its trickle loop vs. the Force* paths), so concurrent drains of
	// DIFFERENT volumes proceed while one volume's drain stays single-file.
	// Lock order: drainMu before Venus.mu; RPCs are issued holding only
	// drainMu, never Venus.mu.
	drainMu sync.Mutex
}

// Conflict records a CML record the server rejected at reintegration.
type Conflict struct {
	Time   time.Time
	Volume string
	Kind   cml.Kind
	Path   string
	Msg    string
}

// Stats counts Venus activity; the experiment harness reads these.
type Stats struct {
	// Cache validation (Figure 9).
	VolValidations    int64 // volume-stamp validation attempts
	VolValidationsOK  int64 // ... that succeeded
	ObjsSavedByVolume int64 // object validations avoided by successful volume validations
	MissingStamp      int64 // reconnections where a volume had no stamp
	ObjValidations    int64 // individual object validations performed

	// Misses (§4.4).
	TransparentFetches int64 // misses serviced transparently
	DeferredMisses     int64 // misses returned to the user
	DisconnectedMisses int64 // misses while emulating

	// Trickle reintegration (Figure 14).
	ShippedBytes          int64 // CML record + fragment bytes successfully reintegrated
	ShippedRecords        int64
	Reintegrations        int64
	ReintegrationFailures int64
	// Delta shipping (EnableDeltas).
	DeltaStores     int64 // stores shipped as differences
	DeltaSavedBytes int64 // full-content bytes avoided by deltas

	// Group failover: abandoned member attempts (timeouts on generic
	// calls, any error on reintegration).
	Failovers int64

	// State transitions.
	Transitions map[string]int64
}

// New creates a Venus on conn talking to the cfg.Servers group and starts
// its daemons.
func New(clock simtime.Clock, conn netsim.PacketConn, cfg Config) *Venus {
	cfg.fillDefaults()
	v := &Venus{
		clock:    clock,
		cfg:      cfg,
		state:    Hoarding,
		volumes:  make(map[string]*vclient),
		volByID:  make(map[codafs.VolumeID]*vclient),
		hdb:      make(map[string]*HDBEntry),
		fetching: make(map[codafs.FID]bool),
		stopped:  make(chan struct{}),
	}
	v.stats.Transitions = make(map[string]int64)
	v.cache = newCache(cfg.CacheBytes)
	// Metric handles must exist before the rpc2 node: NewNode starts the
	// receive loop, and on a real connection a server call may be
	// dispatched the instant the loop is up.
	v.met = newVMetrics(cfg.Obs, v, conn.LocalAddr())
	v.node = rpc2.NewNode(clock, conn, netmon.NewMonitor(clock), v.handleServerCall, cfg.Obs)
	// Register every group member with the monitor up front, so gauges
	// and liveness cover members this client has not yet called.
	for _, addr := range v.cfg.Servers {
		v.node.Monitor().Peer(addr)
	}
	clock.Go(v.trickleDaemon)
	clock.Go(v.hoardDaemon)
	if cfg.ProbeInterval > 0 {
		clock.Go(v.probeDaemon)
	}
	return v
}

// Addr returns this client's network address.
func (v *Venus) Addr() string { return v.node.Addr() }

// State returns the current operating state.
func (v *Venus) State() State {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.state
}

// Stats returns a snapshot of the counters.
func (v *Venus) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := v.stats
	st.Transitions = make(map[string]int64, len(v.stats.Transitions))
	for k, n := range v.stats.Transitions {
		st.Transitions[k] = n
	}
	return st
}

// CacheStats describes cache occupancy, as shown at the bottom of the
// paper's Figure 6 screen ("Cache Space (KB): Allocated / Occupied /
// Available").
type CacheStats struct {
	AllocatedBytes int64
	OccupiedBytes  int64
	Objects        int
}

// Available returns the free cache space.
func (c CacheStats) Available() int64 { return c.AllocatedBytes - c.OccupiedBytes }

// CacheStats returns current cache occupancy.
func (v *Venus) CacheStats() CacheStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return CacheStats{
		AllocatedBytes: v.cfg.CacheBytes,
		OccupiedBytes:  v.cache.bytesUsed(),
		Objects:        v.cache.count(),
	}
}

// CMLBytes returns the total bytes awaiting reintegration across volumes.
func (v *Venus) CMLBytes() int64 {
	v.mu.Lock()
	vols := v.volumeList()
	v.mu.Unlock()
	var n int64
	for _, vc := range vols {
		n += vc.log.Bytes()
	}
	return n
}

// CMLRecords returns the total record count awaiting reintegration.
func (v *Venus) CMLRecords() int {
	v.mu.Lock()
	vols := v.volumeList()
	v.mu.Unlock()
	n := 0
	for _, vc := range vols {
		n += vc.log.Len()
	}
	return n
}

// OptimizedBytes returns cumulative bytes saved by CML optimizations.
func (v *Venus) OptimizedBytes() int64 {
	v.mu.Lock()
	vols := v.volumeList()
	v.mu.Unlock()
	var n int64
	for _, vc := range vols {
		n += vc.log.SavedBytes()
	}
	return n
}

// Conflicts drains the list of reintegration conflicts for user review.
func (v *Venus) Conflicts() []Conflict {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := v.conflicts
	v.conflicts = nil
	return out
}

// Close stops Venus.
func (v *Venus) Close() {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return
	}
	v.closed = true
	close(v.stopped)
	v.mu.Unlock()
	v.node.Close()
}

func (v *Venus) isClosed() bool {
	select {
	case <-v.stopped:
		return true
	default:
		return false
	}
}

func (v *Venus) volumeList() []*vclient {
	out := make([]*vclient, 0, len(v.volumes))
	for _, vc := range v.volumes {
		out = append(out, vc)
	}
	return out
}

// Mount attaches the named volume, fetching its description and root.
func (v *Venus) Mount(volume string) error {
	if len(v.cfg.Servers) == 0 {
		return fmt.Errorf("venus: mount %s: no servers configured", volume)
	}
	rep, err := callAny[wire.GetVolumeRep](v, wire.GetVolume{Name: volume}, rpc2.CallOpts{})
	if err != nil {
		return fmt.Errorf("venus: mount %s: %w", volume, err)
	}
	// Register for callback breaks with every member: any of them may be
	// the one that applies an update (live, or shipped from a peer) and
	// dispatches the break. A member that is down right now registers
	// this client when it is next called.
	connected := 0
	var connectErr error
	for _, addr := range v.cfg.Servers {
		if _, err := wire.Call[wire.ConnectClientRep](v.node, addr, wire.ConnectClient{}, rpc2.CallOpts{}); err != nil {
			connectErr = err
			continue
		}
		connected++
	}
	if connected == 0 {
		return fmt.Errorf("venus: mount %s: connect: %w", volume, connectErr)
	}
	vc := &vclient{info: rep.Info, root: rep.Root.FID, log: cml.NewLog(),
		pref: v.defaultPref(uint64(rep.Info.ID))}
	// Fetch the root directory's entries eagerly: every resolution
	// starts there, and it is small.
	rootRep, err := callVol[wire.FetchRep](v, vc, wire.Fetch{FID: rep.Root.FID, WantCallback: true}, rpc2.CallOpts{})
	if err != nil {
		return fmt.Errorf("venus: mount %s: root fetch: %w", volume, err)
	}
	v.mu.Lock()
	if _, dup := v.volumes[volume]; dup {
		v.mu.Unlock()
		return nil
	}
	if v.cfg.DisableLogOptimize {
		vc.log.SetOptimize(false)
	}
	// Per-class cancellation accounting: the observer runs under the
	// log's mutex and only bumps pre-registered atomic counters.
	vc.log.SetCancelObserver(func(class cml.CancelClass, records int, bytes int64) {
		v.met.cancelRecs[class].Add(int64(records))
		v.met.cancelBytes[class].Add(bytes)
	})
	v.volumes[volume] = vc
	v.volByID[rep.Info.ID] = vc
	f := v.cache.install(rootRep.Object.Clone(), false)
	f.hasCallback = true
	v.mu.Unlock()
	// Each volume ages and reintegrates on its own schedule.
	v.clock.Go(func() { v.volumeTrickleLoop(vc) })
	return nil
}

// allocFID picks a fresh FID for a client-side creation in volume vol.
func (v *Venus) allocFID(vol codafs.VolumeID) codafs.FID {
	v.nextVnode++
	n := uint64(v.cfg.ClientID)<<32 | v.nextVnode
	return codafs.FID{Volume: vol, Vnode: n, Unique: n}
}

func (v *Venus) allocXfer() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nextXfer++
	return v.nextXfer
}

// beginForeground marks a foreground network operation; trickle
// reintegration defers to it (§4.3.5).
func (v *Venus) beginForeground() {
	v.mu.Lock()
	v.foreground++
	v.mu.Unlock()
}

func (v *Venus) endForeground() {
	v.mu.Lock()
	v.foreground--
	v.mu.Unlock()
}

func (v *Venus) foregroundBusy() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.foreground > 0
}
