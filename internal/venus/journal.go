package venus

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cml"
	"repro/internal/crashfs"
	"repro/internal/wal"
)

// The client journal makes every CML mutation durable the moment it
// happens, which is what §4.3.1 requires of trickle reintegration:
// "local persistence of updates on a Coda client is assured by the CML",
// kept in RVM by the real Venus. Here the role of RVM is played by a
// write-ahead log (internal/wal): each CML append, each post-
// reintegration drop, and each hoard-database change is framed into the
// WAL before it is applied in memory. Recovery is snapshot + replay —
// the last Checkpoint's gob image restores the bulk, and the WAL's
// surviving suffix re-runs everything after it. Replay is deterministic
// because cml.Log.Append assigns sequence numbers and runs the
// optimization rules as pure functions of the log state and the record.

// journalOp tags one WAL entry.
type journalOp uint8

const (
	jAppend journalOp = iota + 1 // a CML append (the input record, pre-Seq)
	jDrop                        // records removed after the server applied them
	jHoardAdd
	jHoardRemove
)

// journalEntry is the gob-framed payload of one WAL record.
type journalEntry struct {
	LSN    uint64
	Op     journalOp
	Volume string     // jAppend, jDrop
	Rec    cml.Record // jAppend: as passed to Append (Seq assigned on replay)
	Now    time.Time  // jAppend: the Append timestamp
	Seqs   []uint64   // jDrop
	HDB    HDBEntry   // jHoardAdd
	Path   string     // jHoardRemove
}

// JournalOptions configures AttachJournal. Policy mirrors the RVM flush
// discipline: wal.SyncEachRecord for no-loss durability,
// wal.SyncInterval with ~30s for the paper's flush window (bounded loss,
// §4.3.1), wal.SyncNone for benchmarks.
type JournalOptions struct {
	FS           crashfs.FS
	Dir          string
	Policy       wal.SyncPolicy
	Interval     time.Duration
	SegmentBytes int64
}

// RecoveryInfo reports what AttachJournal reconstructed.
type RecoveryInfo struct {
	SnapshotLoaded  bool
	EntriesReplayed int
	WAL             wal.RecoveryStats
}

// journal is the attached durability state. Its mutex is held across the
// WAL write AND the in-memory application of each mutation, so the LSN
// order in the journal always matches the order the log saw; it is never
// held while Venus.mu is held by the same goroutine (all journaled call
// sites sit outside Venus.mu).
type journal struct {
	mu  sync.Mutex
	fs  crashfs.FS
	dir string
	w   *wal.WAL
	lsn uint64
	err error // first failure on a best-effort path, healed by Checkpoint
}

func (j *journal) snapshotPath() string { return filepath.Join(j.dir, "snapshot") }

// writeLocked frames e into the WAL with the next LSN. Caller holds j.mu.
func (j *journal) writeLocked(e journalEntry) error {
	e.LSN = j.lsn + 1
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return err
	}
	if err := j.w.Append(buf.Bytes()); err != nil {
		return err
	}
	j.lsn = e.LSN
	return nil
}

// AttachJournal recovers durable state from opts.Dir (snapshot + WAL
// replay) and begins journaling every subsequent CML and HDB mutation.
// Volumes must already be mounted — the journal names volumes, it does
// not describe them — so the recovery sequence is New, Mount each
// volume, AttachJournal. A torn WAL tail (crash mid-append) is truncated
// by wal.Open and never replayed.
func (v *Venus) AttachJournal(opts JournalOptions) (RecoveryInfo, error) {
	var info RecoveryInfo
	if opts.FS == nil || opts.Dir == "" {
		return info, errors.New("venus: journal needs FS and Dir")
	}
	if v.journalRef() != nil {
		return info, errors.New("venus: journal already attached")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return info, err
	}

	j := &journal{fs: opts.FS, dir: opts.Dir}

	// Snapshot first: it carries the LSN watermark that tells us which
	// WAL entries are already reflected in it (a crash between making
	// the snapshot durable and resetting the WAL must not double-apply).
	var watermark uint64
	if f, err := opts.FS.Open(j.snapshotPath()); err == nil {
		img, derr := decodeStateImage(f)
		_ = f.Close()
		if derr != nil {
			return info, fmt.Errorf("venus: journal snapshot: %w", derr)
		}
		if err := v.installImage(img); err != nil {
			return info, err
		}
		watermark = img.JournalLSN
		info.SnapshotLoaded = true
	} else if !crashfs.IsNotExist(err) {
		return info, err
	}

	w, stats, err := wal.Open(wal.Options{
		FS:           opts.FS,
		Dir:          filepath.Join(opts.Dir, "wal"),
		SegmentBytes: opts.SegmentBytes,
		Policy:       opts.Policy,
		Interval:     opts.Interval,
		Clock:        v.clock,
		Obs:          v.cfg.Obs,
	}, func(payload []byte) error {
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return fmt.Errorf("venus: journal entry: %w", err)
		}
		if e.LSN > j.lsn {
			j.lsn = e.LSN
		}
		if e.LSN <= watermark {
			return nil // already in the snapshot
		}
		info.EntriesReplayed++
		return v.replayEntry(e)
	})
	if err != nil {
		return info, fmt.Errorf("venus: journal open: %w", err)
	}
	if j.lsn < watermark {
		j.lsn = watermark
	}
	j.w = w
	info.WAL = stats

	v.finishRestore()
	v.mu.Lock()
	v.journal = j
	v.mu.Unlock()
	return info, nil
}

// replayEntry re-applies one journal entry to the in-memory logs and
// HDB. Cache reconstruction is deferred to finishRestore so drops
// replayed after appends never leave stale cache state behind.
func (v *Venus) replayEntry(e journalEntry) error {
	switch e.Op {
	case jAppend, jDrop:
		v.mu.Lock()
		vc := v.volumes[e.Volume]
		v.mu.Unlock()
		if vc == nil {
			return fmt.Errorf("venus: journal names unmounted volume %q", e.Volume)
		}
		if e.Op == jAppend {
			vc.log.Append(e.Rec, e.Now)
			return nil
		}
		seqs := make(map[uint64]bool, len(e.Seqs))
		for _, s := range e.Seqs {
			seqs[s] = true
		}
		vc.log.Remove(seqs)
	case jHoardAdd:
		hdb := e.HDB
		v.mu.Lock()
		v.hdb[hdb.Path] = &hdb
		v.mu.Unlock()
	case jHoardRemove:
		v.mu.Lock()
		delete(v.hdb, e.Path)
		v.mu.Unlock()
	default:
		return fmt.Errorf("venus: unknown journal op %d", e.Op)
	}
	return nil
}

// journalRef returns the attached journal, if any.
func (v *Venus) journalRef() *journal {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.journal
}

// logAppend makes rec durable (when a journal is attached) and appends
// it to vc's CML. On journal failure the log is left untouched and the
// error is returned; the caller must not apply the mutation locally —
// an update that cannot be made persistent must not exist only in
// volatile memory, or a crash would silently lose it (§4.3.1).
func (v *Venus) logAppend(vc *vclient, rec cml.Record, now time.Time) error {
	j := v.journalRef()
	if j == nil {
		vc.log.Append(rec, now)
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	//codalint:ignore lockhold journal-first commit: j.mu orders WAL records with the CML mutations they describe
	if err := j.writeLocked(journalEntry{Op: jAppend, Volume: vc.info.Name, Rec: rec, Now: now}); err != nil {
		return fmt.Errorf("venus: journal append: %w", err)
	}
	vc.log.Append(rec, now)
	return nil
}

// logDrop journals the removal of seqs from vc's CML after the server
// has durably applied (or rejected as conflicts) those records. The
// server's state is already authoritative here, so a journal failure
// cannot be rolled back; it is remembered and healed by the next
// Checkpoint, whose snapshot captures the post-drop log.
func (v *Venus) logDrop(vc *vclient, seqs map[uint64]bool) {
	j := v.journalRef()
	if j == nil || len(seqs) == 0 {
		return
	}
	list := make([]uint64, 0, len(seqs))
	for s := range seqs {
		list = append(list, s)
	}
	sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
	j.mu.Lock()
	defer j.mu.Unlock()
	//codalint:ignore lockhold journal-first commit: j.mu orders WAL records with the CML mutations they describe
	if err := j.writeLocked(journalEntry{Op: jDrop, Volume: vc.info.Name, Seqs: list}); err != nil && j.err == nil {
		j.err = err
	}
}

// journalHDB journals one hoard-database change, best-effort like
// logDrop (the HDB is a preference, not an update; losing one is an
// inconvenience, not data loss).
func (v *Venus) journalHDB(e journalEntry) {
	j := v.journalRef()
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	//codalint:ignore lockhold journal-first commit: j.mu orders WAL records with the HDB mutations they describe
	if err := j.writeLocked(e); err != nil && j.err == nil {
		j.err = err
	}
}

// Checkpoint writes a durable snapshot carrying the current LSN and
// truncates the WAL — the analogue of an RVM truncation. Appends are
// blocked for the duration (j.mu), so the snapshot and its watermark
// are exactly consistent. A checkpoint also heals a journal degraded by
// a best-effort write failure: the snapshot captures the current state,
// so the missed entry no longer matters.
func (v *Venus) Checkpoint() error {
	j := v.journalRef()
	if j == nil {
		return errors.New("venus: no journal attached")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	//codalint:ignore lockhold checkpoint writes the snapshot under j.mu so no journal record can land between image and truncation
	if err := v.saveStateFS(j.fs, j.snapshotPath(), j.lsn); err != nil {
		return fmt.Errorf("venus: checkpoint: %w", err)
	}
	//codalint:ignore lockhold WAL truncation must stay under the lock that fenced the snapshot, or a racing append could be dropped
	if err := j.w.Reset(); err != nil {
		return fmt.Errorf("venus: checkpoint: reset WAL: %w", err)
	}
	j.err = nil
	return nil
}

// JournalErr reports (without clearing) the first failure on a
// best-effort journaling path since the last successful Checkpoint.
func (v *Venus) JournalErr() error {
	j := v.journalRef()
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// CloseJournal detaches and closes the journal. Subsequent mutations are
// volatile again (tests use this to model an unclean shutdown AFTER a
// point of interest).
func (v *Venus) CloseJournal() error {
	v.mu.Lock()
	j := v.journal
	v.journal = nil
	v.mu.Unlock()
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	//codalint:ignore lockhold final flush on shutdown; the journal is being detached and no traffic remains
	return j.w.Close()
}
