package venus

import (
	"time"
)

// NetworkCost models the monetary character of the attached network — the
// future-work direction in the paper's conclusion: "we plan to explore
// techniques by which Venus can electronically inquire about network cost,
// and base its adaptation on both cost and quality." A network provider (or
// the user, via codaclient) supplies the figures; Venus folds them into the
// two adaptation decisions where traffic volume is discretionary.
type NetworkCost struct {
	// PatienceSecondsPerMB converts transfer cost into the currency of
	// the patience model: fetching a megabyte feels like this many extra
	// seconds of waiting when compared against τ. On a metered cellular
	// link a large cache miss is deferred to the user even when the
	// user would tolerate the time.
	PatienceSecondsPerMB float64
	// AgingMultiplier stretches the aging window, giving log
	// optimizations more opportunity to cancel records before they are
	// paid for. 0 or 1 leaves the window unchanged.
	AgingMultiplier float64
}

// SetNetworkCost installs cost information for the current network; zero
// values restore free-network behaviour. Typically called together with
// Connect when the client learns what it is attached to.
func (v *Venus) SetNetworkCost(c NetworkCost) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.netCost = c
}

// NetworkCost returns the currently installed cost model.
func (v *Venus) NetworkCost() NetworkCost {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.netCost
}

// costPenalty converts the monetary cost of fetching size bytes into
// patience-equivalent seconds.
func (v *Venus) costPenalty(size int64) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.costPenaltyLocked(size)
}

// costPenaltyLocked is costPenalty for callers already holding v.mu.
func (v *Venus) costPenaltyLocked(size int64) time.Duration {
	perMB := v.netCost.PatienceSecondsPerMB
	if perMB <= 0 {
		return 0
	}
	return time.Duration(perMB * float64(size) / (1 << 20) * float64(time.Second))
}

// effectiveAging returns the aging window adjusted for network cost.
func (v *Venus) effectiveAging() time.Duration {
	v.mu.Lock()
	mult := v.netCost.AgingMultiplier
	v.mu.Unlock()
	if mult <= 1 {
		return v.cfg.AgingWindow
	}
	return time.Duration(float64(v.cfg.AgingWindow) * mult)
}
