package venus_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/venus"
	"repro/internal/wal"
)

// The client crash matrix replays the paper's §4.3.1 durability story end
// to end: a disconnected Venus journals every CML mutation, the machine
// loses power at every possible journal write, and a fresh Venus on the
// same client identity recovers, reconnects, and reintegrates. The server
// must end up byte-identical to a run in which the client never crashed
// and performed exactly the acknowledged (durably journaled) prefix of
// the workload.
//
// Every op below logs exactly one CML record (one WAL frame), so the
// acknowledged-op prefix and the durable-frame prefix coincide and the
// matrix can account in ops. Multi-record operations (WriteFile on a new
// file = create + store) are pinned separately in
// TestVenusCreateStoreCrashSplit.

var venusOps = []func(v *venus.Venus) error{
	func(v *venus.Venus) error { return v.WriteFile("/coda/usr/doc", []byte("edited offline")) },
	func(v *venus.Venus) error { return v.Mkdir("/coda/usr/dir") },
	func(v *venus.Venus) error { return v.Symlink("doc", "/coda/usr/lnk") },
	func(v *venus.Venus) error { return v.WriteFile("/coda/usr/doc", []byte("edited offline twice")) },
	func(v *venus.Venus) error { return v.Checkpoint() },
	func(v *venus.Venus) error { return v.WriteFile("/coda/proj/notes", []byte("project notes v2")) },
	func(v *venus.Venus) error { return v.Rename("/coda/usr/doc", "/coda/usr/dir/doc2") },
	func(v *venus.Venus) error { return v.Remove("/coda/usr/lnk") },
	func(v *venus.Venus) error { return v.Mkdir("/coda/proj/build") },
	func(v *venus.Venus) error { return v.WriteFile("/coda/usr/todo", []byte("ship the PR")) },
	func(v *venus.Venus) error { return v.Link("/coda/usr/dir/doc2", "/coda/usr/hard") },
	func(v *venus.Venus) error { return v.WriteFile("/coda/proj/notes", []byte("project notes v3")) },
}

func venusJournalOpts(mem *crashfs.Mem) venus.JournalOptions {
	return venus.JournalOptions{FS: mem, Dir: "cj", Policy: wal.SyncEachRecord}
}

// venusMatrixRun runs venusOps[:limit] on a journaled, disconnected
// client with an optional power cut armed at the crashAt-th journal
// write, then reboots the "disk", recovers into a fresh Venus with the
// same ClientID, reintegrates everything, and returns the op count that
// succeeded, the write count at the end of the op phase, the server's
// final state bytes, and the recovery stats.
func venusMatrixRun(t *testing.T, crashAt, keepUnsynced, limit int) (int, int, []byte, venus.RecoveryInfo) {
	t.Helper()
	w := newWorld(t)
	w.seed("usr", map[string]string{"doc": "server copy", "todo": "old list"})
	w.seed("proj", map[string]string{"notes": "project notes v1"})
	mem := crashfs.NewMem()
	var (
		completed int
		writesEnd int
		state     []byte
		info      venus.RecoveryInfo
	)
	w.sim.Run(func() {
		v1 := w.venus("c1", venus.Config{ClientID: 42, AgingWindow: time.Hour})
		mustMount(t, v1, "usr")
		mustMount(t, v1, "proj")
		for _, p := range []string{"/coda/usr/doc", "/coda/usr/todo", "/coda/proj/notes"} {
			if _, err := v1.ReadFile(p); err != nil {
				t.Fatal(err)
			}
		}
		w.net.SetUp("c1", "server", false)
		v1.Disconnect()
		if _, err := v1.AttachJournal(venusJournalOpts(mem)); err != nil {
			t.Fatal(err)
		}
		if crashAt > 0 {
			mem.ArmCrash(crashAt, keepUnsynced)
		}
		for i := 0; i < limit; i++ {
			if err := venusOps[i](v1); err != nil {
				break
			}
			completed++
		}
		writesEnd = mem.Writes()
		v1.Close()
		w.net.SetUp("c1", "server", true)
		mem.Reboot()

		// "Reboot": a fresh Venus on the same client identity mounts,
		// recovers the CML from snapshot + WAL, and drains it.
		v2 := w.venus("c1b", venus.Config{ClientID: 42, AgingWindow: time.Hour})
		mustMount(t, v2, "usr")
		mustMount(t, v2, "proj")
		var err error
		info, err = v2.AttachJournal(venusJournalOpts(mem))
		if err != nil {
			t.Fatalf("recovery after crash at write %d: %v", crashAt, err)
		}
		if err := v2.ForceReintegrate(); err != nil {
			t.Fatalf("reintegration after crash at write %d: %v", crashAt, err)
		}
		if got := v2.CMLRecords(); got != 0 {
			t.Fatalf("CML not drained after recovery: %d records", got)
		}
		var buf bytes.Buffer
		if err := w.srv.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		state = buf.Bytes()
	})
	return completed, writesEnd, state, info
}

// TestVenusCrashMatrix sweeps a power cut across every journal write of
// the offline workload, both with a clean cut (unsynced bytes lost) and
// with a torn tail (a few unsynced bytes of the interrupted frame survive,
// as partial sectors do on real devices). Acknowledged mutations survive;
// the one the cut interrupted vanishes without trace.
func TestVenusCrashMatrix(t *testing.T) {
	_, total, full, _ := venusMatrixRun(t, 0, 0, len(venusOps))
	if total == 0 {
		t.Fatal("offline workload produced no journal writes")
	}
	baselines := map[int][]byte{len(venusOps): full}
	baseline := func(p int) []byte {
		if b, ok := baselines[p]; ok {
			return b
		}
		pc, _, b, _ := venusMatrixRun(t, 0, 0, p)
		if pc != p {
			t.Fatalf("baseline run completed %d/%d ops", pc, p)
		}
		baselines[p] = b
		return b
	}
	for _, keep := range []int{0, 3} {
		for k := 1; k <= total; k++ {
			p, _, got, _ := venusMatrixRun(t, k, keep, len(venusOps))
			if !bytes.Equal(got, baseline(p)) {
				t.Errorf("crash at write %d (keep %d): server state after recovery diverges from clean run of the %d acknowledged ops",
					k, keep, p)
			}
		}
	}
}

// TestVenusCrashTornFrameTruncated cuts power on the very first journal
// frame while letting 3 unsynced bytes survive: too few for a frame
// header, so recovery must report a torn tail, truncate it, and replay
// nothing.
func TestVenusCrashTornFrameTruncated(t *testing.T) {
	p, _, got, info := venusMatrixRun(t, 1, 3, len(venusOps))
	if p != 0 {
		t.Fatalf("first op survived its own crash: %d completed", p)
	}
	if info.WAL.TornBytes == 0 {
		t.Error("no torn bytes reported; the partial frame was not truncated")
	}
	if info.EntriesReplayed != 0 {
		t.Errorf("%d entries replayed from a torn-only WAL", info.EntriesReplayed)
	}
	_, _, want, _ := venusMatrixRun(t, 0, 0, 0)
	if !bytes.Equal(got, want) {
		t.Error("torn first frame leaked into recovered state")
	}
}

// TestVenusCreateStoreCrashSplit pins the durability granularity of a
// multi-record operation. WriteFile on a new file logs two records —
// create, then store — each its own journal transaction, exactly like
// creat(2) followed by write(2): a crash between them durably leaves the
// created, empty file even though WriteFile as a whole reported failure.
func TestVenusCreateStoreCrashSplit(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	mem := crashfs.NewMem()
	w.sim.Run(func() {
		v1 := w.venus("c1", venus.Config{ClientID: 42, AgingWindow: time.Hour})
		mustMount(t, v1, "usr")
		w.net.SetUp("c1", "server", false)
		v1.Disconnect()
		if _, err := v1.AttachJournal(venusJournalOpts(mem)); err != nil {
			t.Fatal(err)
		}
		mem.ArmCrash(2, 0) // write 1 = create frame, write 2 = store frame
		if err := v1.WriteFile("/coda/usr/new.txt", []byte("contents lost to the crash")); err == nil {
			t.Fatal("WriteFile succeeded across an armed crash")
		}
		v1.Close()
		w.net.SetUp("c1", "server", true)
		mem.Reboot()

		v2 := w.venus("c1b", venus.Config{ClientID: 42, AgingWindow: time.Hour})
		mustMount(t, v2, "usr")
		info, err := v2.AttachJournal(venusJournalOpts(mem))
		if err != nil {
			t.Fatal(err)
		}
		if info.EntriesReplayed != 1 {
			t.Fatalf("replayed %d entries, want just the create", info.EntriesReplayed)
		}
		if err := v2.ForceReintegrate(); err != nil {
			t.Fatal(err)
		}
		data, err := w.srv.ReadFile("usr", "new.txt")
		if err != nil {
			t.Fatalf("created file missing after recovery: %v", err)
		}
		if len(data) != 0 {
			t.Errorf("unacknowledged store survived the crash: %q", data)
		}
	})
}

// TestVenusJournalRecoversHDB checks the hoard database rides the same
// journal: entries added and removed before an unclean shutdown are back
// after recovery.
func TestVenusJournalRecoversHDB(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"a": "x", "b": "y"})
	mem := crashfs.NewMem()
	w.sim.Run(func() {
		v1 := w.venus("c1", venus.Config{ClientID: 7})
		mustMount(t, v1, "usr")
		if _, err := v1.AttachJournal(venusJournalOpts(mem)); err != nil {
			t.Fatal(err)
		}
		v1.HoardAdd("/coda/usr/a", 600, false)
		v1.HoardAdd("/coda/usr/b", 900, true)
		v1.HoardRemove("/coda/usr/a")
		if err := v1.JournalErr(); err != nil {
			t.Fatal(err)
		}
		v1.Close() // unclean: no CloseJournal, no Checkpoint
		mem.Reboot()

		v2 := w.venus("c1b", venus.Config{ClientID: 7})
		mustMount(t, v2, "usr")
		if _, err := v2.AttachJournal(venusJournalOpts(mem)); err != nil {
			t.Fatal(err)
		}
		hdb := v2.HoardList()
		if len(hdb) != 1 || hdb[0].Path != "/coda/usr/b" || hdb[0].Priority != 900 || !hdb[0].Children {
			t.Errorf("recovered HDB = %+v", hdb)
		}
	})
}

// TestVenusJournalFailureBlocksMutation pins the §4.3.1 invariant that an
// update which cannot be made persistent is rejected rather than applied
// only in volatile memory.
func TestVenusJournalFailureBlocksMutation(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"doc": "server copy"})
	mem := crashfs.NewMem()
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{ClientID: 5})
		mustMount(t, v, "usr")
		if _, err := v.ReadFile("/coda/usr/doc"); err != nil {
			t.Fatal(err)
		}
		w.net.SetUp("c1", "server", false)
		v.Disconnect()
		if _, err := v.AttachJournal(venusJournalOpts(mem)); err != nil {
			t.Fatal(err)
		}
		mem.FailWrite(1, errInjectedWrite)
		if err := v.WriteFile("/coda/usr/doc", []byte("must not stick")); err == nil {
			t.Fatal("write with failing journal accepted")
		}
		if v.CMLRecords() != 0 {
			t.Errorf("rejected mutation reached the CML: %d records", v.CMLRecords())
		}
		if data, err := v.ReadFile("/coda/usr/doc"); err != nil || string(data) != "server copy" {
			t.Errorf("rejected mutation visible locally: %q, %v", data, err)
		}
	})
}

var errInjectedWrite = bytes.ErrTooLarge // any distinctive sentinel
