package venus_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/venus"
)

// Pins the durability discipline of SaveStateFS: the image is written to
// a temp file, fsynced, renamed into place, and the parent directory is
// fsynced. A power cut immediately after SaveStateFS returns must keep
// the new image; a cut in the middle of a save must keep the old one
// intact — never a torn mixture. The pre-fix SaveStateFile renamed
// without any fsync, so a crash could lose both.
func TestVenusSaveStateFSCrashSafety(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"doc": "server copy"})
	mem := crashfs.NewMem()
	const path = "venus.state"
	w.sim.Run(func() {
		v1 := w.venus("c1", venus.Config{ClientID: 3, AgingWindow: time.Hour})
		mustMount(t, v1, "usr")
		if _, err := v1.ReadFile("/coda/usr/doc"); err != nil {
			t.Fatal(err)
		}
		w.net.SetUp("c1", "server", false)
		v1.Disconnect()
		if err := v1.WriteFile("/coda/usr/doc", []byte("first edit")); err != nil {
			t.Fatal(err)
		}
		if err := v1.SaveStateFS(mem, path); err != nil {
			t.Fatal(err)
		}

		// Power cut right after the save: the image survives.
		mem.Crash()
		mem.Reboot()

		// A second save is interrupted mid-write: the first image must
		// still load.
		if err := v1.WriteFile("/coda/usr/second.txt", []byte("second edit")); err != nil {
			t.Fatal(err)
		}
		records := v1.CMLRecords()
		mem.ArmCrash(1, 0)
		if err := v1.SaveStateFS(mem, path); err == nil {
			t.Fatal("SaveStateFS succeeded across an armed crash")
		}
		mem.Reboot()
		v1.Close()
		w.net.SetUp("c1", "server", true)

		v2 := w.venus("c1b", venus.Config{ClientID: 3, AgingWindow: time.Hour})
		mustMount(t, v2, "usr")
		if err := v2.LoadStateFS(mem, path); err != nil {
			t.Fatalf("image lost after interrupted re-save: %v", err)
		}
		got := v2.CMLRecords()
		if got == 0 || got >= records {
			t.Errorf("restored CML has %d records; want the first save's prefix (0 < n < %d)", got, records)
		}
		if data, err := v2.ReadFile("/coda/usr/doc"); err != nil || string(data) != "first edit" {
			t.Errorf("restored doc = %q, %v", data, err)
		}
	})
}

// TestVenusLoadStateCorrupted: a truncated or bit-flipped state image
// must come back as an error, never a panic (gob panics internally on
// some corruptions).
func TestVenusLoadStateCorrupted(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"doc": "x"})
	w.sim.Run(func() {
		v1 := w.venus("c1", venus.Config{ClientID: 8, AgingWindow: time.Hour})
		mustMount(t, v1, "usr")
		if _, err := v1.ReadFile("/coda/usr/doc"); err != nil {
			t.Fatal(err)
		}
		w.net.SetUp("c1", "server", false)
		v1.Disconnect()
		if err := v1.WriteFile("/coda/usr/doc", []byte("edited")); err != nil {
			t.Fatal(err)
		}
		v1.HoardAdd("/coda/usr/doc", 500, false)
		var buf bytes.Buffer
		if err := v1.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		img := buf.Bytes()
		v1.Close()
		w.net.SetUp("c1", "server", true)

		fresh := func(name string) *venus.Venus {
			v := w.venus(name, venus.Config{ClientID: 8, AgingWindow: time.Hour})
			mustMount(t, v, "usr")
			return v
		}
		for i, n := range []int{0, 1, 5, len(img) / 3, len(img) / 2, len(img) - 1} {
			v := fresh("t" + string(rune('a'+i)))
			if err := v.LoadState(bytes.NewReader(img[:n])); err == nil {
				t.Errorf("LoadState accepted a %d/%d-byte prefix", n, len(img))
			}
			v.Close()
		}
		v := fresh("flip")
		for off := 0; off < len(img); off += 11 {
			bad := append([]byte(nil), img...)
			bad[off] ^= 0x5a
			_ = v.LoadState(bytes.NewReader(bad)) // must not panic
		}
		v.Close()
	})
}
