package venus

import (
	"sort"

	"repro/internal/codafs"
)

// fso is one cached file-system object ("file system object", as in Coda).
type fso struct {
	obj *codafs.Object

	// hasCallback: an object callback is believed held at the server.
	hasCallback bool
	// valid: the cached status is believed current, either via an object
	// callback or via the containing volume's callback. Suspect objects
	// (valid == false) are revalidated before use.
	valid bool
	// dirty: CML records referencing this object are pending; dirty
	// objects are never evicted or overwritten by fetches, and callback
	// breaks on them are deliberately ignored (§4.3.2).
	dirty bool
	// placeholder: status known, contents not fetched.
	placeholder bool
	// base shadows the last server-known contents of a dirty file, so
	// trickle reintegration can ship an rsync-style delta instead of the
	// whole file (EnableDeltas). nil when no usable base exists.
	base []byte
	// hoardPri is the HDB priority, 0 if unhoarded.
	hoardPri int
	// refSeq orders recency (larger = more recent).
	refSeq int64
}

// dataBytes is the object's charge against cache space.
func (f *fso) dataBytes() int64 {
	if f.placeholder {
		return 0
	}
	return int64(len(f.obj.Data)) + int64(len(f.obj.Children))*32 + int64(len(f.obj.Target))
}

// cache is Venus's file cache. It implements the paper's policy of
// combining hoard priority with LRU recency: eviction removes the object
// with the lowest (hoard priority, recency) pair, never touching dirty
// objects or volume roots. It is guarded by Venus.mu.
type cache struct {
	capacity int64
	used     int64
	objs     map[codafs.FID]*fso
	seq      int64
}

func newCache(capacity int64) *cache {
	return &cache{capacity: capacity, objs: make(map[codafs.FID]*fso)}
}

func (c *cache) get(fid codafs.FID) *fso {
	return c.objs[fid]
}

// touch records a reference for recency.
func (c *cache) touch(f *fso) {
	c.seq++
	f.refSeq = c.seq
}

// install inserts or replaces an object, adjusting space accounting. The
// returned fso is valid (freshly obtained from the server) unless replacing
// a dirty local object, whose dirtiness it preserves.
func (c *cache) install(obj *codafs.Object, dirty bool) *fso {
	fid := obj.Status.FID
	if old := c.objs[fid]; old != nil {
		c.used -= old.dataBytes()
		old.obj = obj
		old.placeholder = false
		old.valid = true
		old.dirty = old.dirty || dirty
		c.used += old.dataBytes()
		c.touch(old)
		return old
	}
	f := &fso{obj: obj, valid: true, dirty: dirty}
	c.objs[fid] = f
	c.used += f.dataBytes()
	c.touch(f)
	return f
}

// recharge recomputes an object's space charge after in-place mutation.
func (c *cache) recharge(f *fso, before int64) {
	c.used += f.dataBytes() - before
}

// remove evicts fid.
func (c *cache) remove(fid codafs.FID) {
	if f := c.objs[fid]; f != nil {
		c.used -= f.dataBytes()
		delete(c.objs, fid)
	}
}

// bytesUsed returns occupied cache space.
func (c *cache) bytesUsed() int64 { return c.used }

// count returns the number of cached objects.
func (c *cache) count() int { return len(c.objs) }

// inVolume returns the cached objects belonging to vol.
func (c *cache) inVolume(vol codafs.VolumeID) []*fso {
	var out []*fso
	for fid, f := range c.objs {
		if fid.Volume == vol {
			out = append(out, f)
		}
	}
	return out
}

// all returns every cached object, in no particular order.
func (c *cache) all() []*fso {
	out := make([]*fso, 0, len(c.objs))
	for _, f := range c.objs {
		out = append(out, f)
	}
	return out
}

// evictFor frees space for an incoming object of size need. It evicts
// clean, non-root objects in ascending (hoardPri, refSeq) order. It reports
// whether the space is now available.
func (c *cache) evictFor(need int64) bool {
	if c.used+need <= c.capacity {
		return true
	}
	victims := make([]*fso, 0, len(c.objs))
	for _, f := range c.objs {
		if f.dirty || f.obj.Status.FID.Vnode == 1 { // never roots or dirty
			continue
		}
		if f.dataBytes() == 0 {
			continue
		}
		victims = append(victims, f)
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].hoardPri != victims[j].hoardPri {
			return victims[i].hoardPri < victims[j].hoardPri
		}
		return victims[i].refSeq < victims[j].refSeq
	})
	for _, f := range victims {
		if c.used+need <= c.capacity {
			break
		}
		c.remove(f.obj.Status.FID)
	}
	return c.used+need <= c.capacity
}
