package venus_test

import (
	"testing"
	"time"

	"repro/internal/venus"
)

func TestForceReintegrateSubtree(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: time.Hour, PinWriteDisconnected: true})
		mustMount(t, v, "usr")
		v.WriteDisconnect()

		// Pending updates in two independent subtrees.
		if err := v.Mkdir("/coda/usr/thesis"); err != nil {
			t.Fatal(err)
		}
		if err := v.WriteFile("/coda/usr/thesis/ch1.tex", []byte("chapter one")); err != nil {
			t.Fatal(err)
		}
		if err := v.Mkdir("/coda/usr/scratch"); err != nil {
			t.Fatal(err)
		}
		if err := v.WriteFile("/coda/usr/scratch/junk.tmp", []byte("junk")); err != nil {
			t.Fatal(err)
		}
		before := v.CMLRecords()

		// The collaborator is waiting for the thesis, not the scratch.
		if err := v.ForceReintegrateSubtree("/coda/usr/thesis"); err != nil {
			t.Fatal(err)
		}
		if got, err := w.srv.ReadFile("usr", "thesis/ch1.tex"); err != nil || string(got) != "chapter one" {
			t.Errorf("thesis not on server: %q, %v", got, err)
		}
		if _, err := w.srv.ReadFile("usr", "scratch/junk.tmp"); err == nil {
			t.Error("unrelated subtree reintegrated too")
		}
		if after := v.CMLRecords(); after >= before {
			t.Errorf("CML %d -> %d; subtree records should be gone", before, after)
		}
		if v.CMLRecords() == 0 {
			t.Error("scratch records vanished from the CML")
		}

		// The rest still drains normally.
		if err := v.ForceReintegrate(); err != nil {
			t.Fatal(err)
		}
		if _, err := w.srv.ReadFile("usr", "scratch/junk.tmp"); err != nil {
			t.Errorf("scratch never made it: %v", err)
		}
	})
}

func TestForceReintegrateSubtreePullsAntecedents(t *testing.T) {
	// The stored file's directory was itself created in the log; forcing
	// just the file must ship the mkdir first (precedence closure).
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{AgingWindow: time.Hour, PinWriteDisconnected: true})
		mustMount(t, v, "usr")
		v.WriteDisconnect()
		if err := v.Mkdir("/coda/usr/deep"); err != nil {
			t.Fatal(err)
		}
		if err := v.Mkdir("/coda/usr/deep/er"); err != nil {
			t.Fatal(err)
		}
		if err := v.WriteFile("/coda/usr/deep/er/file", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := v.ForceReintegrateSubtree("/coda/usr/deep/er/file"); err != nil {
			t.Fatal(err)
		}
		if got, err := w.srv.ReadFile("usr", "deep/er/file"); err != nil || string(got) != "x" {
			t.Errorf("file = %q, %v (antecedent mkdirs must have shipped)", got, err)
		}
	})
}

func TestForceReintegrateSubtreeWhileDisconnected(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		v.Disconnect()
		if err := v.ForceReintegrateSubtree("/coda/usr"); err != venus.ErrDisconnected {
			t.Errorf("err = %v, want ErrDisconnected", err)
		}
	})
}
