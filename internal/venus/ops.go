package venus

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/wire"
)

// program tags misses with the referencing program for the Figure 5 screen;
// it is advisory and settable by embedding applications.
func (v *Venus) SetProgram(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.program = name
}

// ---- Path resolution ----

func (v *Venus) volumeFor(path string) (*vclient, []string, error) {
	volName, comps, err := codafs.SplitPath(path)
	if err != nil {
		return nil, nil, err
	}
	v.mu.Lock()
	vc := v.volumes[volName]
	v.mu.Unlock()
	if vc == nil {
		return nil, nil, fmt.Errorf("venus: volume %q not mounted: %w", volName, ErrNotFound)
	}
	return vc, comps, nil
}

// resolve walks path to its object, fetching intermediate directories (and,
// when wantData is set, the object's own contents) as needed.
func (v *Venus) resolve(path string, wantData bool) (*vclient, *fso, error) {
	vc, comps, err := v.volumeFor(path)
	if err != nil {
		return nil, nil, err
	}
	fid := vc.root
	walked := codafs.JoinPath(vc.info.Name)
	for _, c := range comps {
		dir, err := v.getObject(vc, fid, walked, true)
		if err != nil {
			return nil, nil, err
		}
		if dir.obj.Status.Type != codafs.Directory {
			return nil, nil, fmt.Errorf("venus: %s: %w", walked, ErrNotDir)
		}
		child, ok := dir.obj.Children[c]
		if !ok {
			return nil, nil, fmt.Errorf("venus: %s/%s: %w", walked, c, ErrNotFound)
		}
		fid = child
		walked += "/" + c
	}
	f, err := v.getObject(vc, fid, walked, wantData)
	if err != nil {
		return nil, nil, err
	}
	return vc, f, nil
}

// resolveParent resolves everything but the final component, returning the
// parent directory object and the final name.
func (v *Venus) resolveParent(path string) (*vclient, *fso, string, error) {
	vc, comps, err := v.volumeFor(path)
	if err != nil {
		return nil, nil, "", err
	}
	if len(comps) == 0 {
		return nil, nil, "", fmt.Errorf("venus: %s names a volume root", path)
	}
	name := comps[len(comps)-1]
	parentPath := codafs.JoinPath(vc.info.Name, comps[:len(comps)-1]...)
	_, parent, err := v.resolve(parentPath, true)
	if err != nil {
		return nil, nil, "", err
	}
	if parent.obj.Status.Type != codafs.Directory {
		return nil, nil, "", fmt.Errorf("venus: %s: %w", parentPath, ErrNotDir)
	}
	return vc, parent, name, nil
}

// ---- Miss handling (§4.4.1) ----

// estimateCost predicts the service time for fetching size bytes from
// the volume's preferred member at the current bandwidth estimate.
func (v *Venus) estimateCost(vc *vclient, size int64) time.Duration {
	return v.costVia(v.prefAddr(vc), size)
}

// costVia predicts the service time for fetching size bytes over the
// link to one member. Safe to call with v.mu held (addCandidate does).
func (v *Venus) costVia(addr string, size int64) time.Duration {
	peer := v.peerOf(addr)
	bw := peer.Bandwidth()
	if bw <= 0 {
		return 0 // no estimate yet: be optimistic
	}
	xfer := time.Duration(float64(size*8) / float64(bw) * float64(time.Second))
	return xfer + peer.SRTT() // one request/response round trip
}

// priorityOf returns the hoard priority governing path's patience
// threshold: an exact HDB entry, else the nearest ancestor entry covering
// descendants, else the configured default.
func (v *Venus) priorityOf(path string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if e, ok := v.hdb[path]; ok {
		return e.Priority
	}
	best := v.cfg.DefaultPriority
	for p, e := range v.hdb {
		if e.Children && len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/' {
			if e.Priority > best {
				best = e.Priority
			}
		}
	}
	return best
}

// getObject returns the cached object for fid, obtaining status and (if
// wantData) contents from the server subject to the state machine and the
// patience model.
func (v *Venus) getObject(vc *vclient, fid codafs.FID, path string, wantData bool) (*fso, error) {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil, ErrClosed
	}
	f := v.cache.get(fid)
	state := v.state

	// Dirty objects are local truth: serve them regardless of callbacks.
	if f != nil && f.dirty {
		v.cache.touch(f)
		v.met.hit(f.hoardPri)
		v.mu.Unlock()
		return f, nil
	}
	if f != nil && f.valid && (!wantData || !f.placeholder) {
		v.cache.touch(f)
		v.met.hit(f.hoardPri)
		v.mu.Unlock()
		return f, nil
	}
	if state == Emulating {
		// Disconnected: cached data is used as-is; anything else is an
		// unserviceable miss.
		if f != nil && (!wantData || !f.placeholder) {
			v.cache.touch(f)
			v.met.hit(f.hoardPri)
			v.mu.Unlock()
			return f, nil
		}
		v.stats.DisconnectedMisses++
		if f != nil {
			v.met.miss(f.hoardPri)
		} else {
			v.met.miss(0)
		}
		v.met.verdictDisconnected.Inc()
		prog := v.program
		v.mu.Unlock()
		v.recordMiss(MissRecord{Time: v.clock.Now(), Path: path, Program: prog})
		return nil, &MissError{Path: path, Disconnected: true}
	}
	v.mu.Unlock()

	v.beginForeground()
	defer v.endForeground()

	// Server interaction is unavoidable from here on: this is the root of
	// one traced open — status checks, the patience wait, the transport's
	// retransmits, and the server's apply all hang off this span.
	sp := v.met.reg.StartSpan(v.met.self, "venus_open", obs.SpanContext{}, obs.F("path", path))
	defer sp.End()
	sc := sp.Context()

	// Revalidate a suspect cached object: one cheap status check; if the
	// version still matches, the copy is good and a fresh callback came
	// with the GetAttr.
	var size int64 = -1
	if f != nil && !f.valid {
		ga, err := callVol[wire.GetAttrRep](v, vc, wire.GetAttr{FID: fid, WantCallback: true}, rpc2.CallOpts{Span: sc})
		if err != nil {
			return nil, v.rpcFailed(path, err)
		}
		v.mu.Lock()
		v.stats.ObjValidations++
		v.met.objValidations.Inc()
		if ga.Status.Version == f.obj.Status.Version {
			f.valid = true
			f.hasCallback = true
			if !wantData || !f.placeholder {
				v.cache.touch(f)
				v.met.hit(f.hoardPri)
				v.mu.Unlock()
				return f, nil
			}
		} else {
			// Changed on the server: treat as a miss of the new size.
			f.placeholder = true
			f.obj.Status = ga.Status
		}
		size = ga.Status.Length
		v.mu.Unlock()
	}

	// Unknown object: obtain status first — it is only ~100 bytes, so
	// the delay is acceptable even on slow networks (§4.4.1).
	if f == nil {
		ga, err := callVol[wire.GetAttrRep](v, vc, wire.GetAttr{FID: fid, WantCallback: true}, rpc2.CallOpts{Span: sc})
		if err != nil {
			return nil, v.rpcFailed(path, err)
		}
		size = ga.Status.Length
		v.mu.Lock()
		obj := &codafs.Object{Status: ga.Status}
		f = v.cache.install(obj, false)
		f.placeholder = true
		f.hasCallback = true
		v.mu.Unlock()
		if !wantData {
			return f, nil
		}
	}

	if !wantData {
		return f, nil
	}
	if size < 0 {
		size = f.obj.Status.Length
	}

	// A data fetch is now unavoidable: this is a cache miss in the
	// object's hoard band, whatever the patience verdict below.
	v.mu.Lock()
	missPri := f.hoardPri
	v.mu.Unlock()
	v.met.miss(missPri)

	// The patience check applies to data fetches while weakly connected.
	// Monetary network cost is folded in as patience-equivalent seconds
	// (cost-aware adaptation, paper §8 future work).
	if state == WriteDisconnected {
		cost := v.estimateCost(vc, size) + v.costPenalty(size)
		pri := v.priorityOf(path)
		tau := v.cfg.Patience.Threshold(pri)
		if cost > tau {
			v.mu.Lock()
			v.stats.DeferredMisses++
			v.met.verdictDeferred.Inc()
			prog := v.program
			v.mu.Unlock()
			v.recordMiss(MissRecord{
				Time: v.clock.Now(), Path: path, Size: size,
				Program: prog, Cost: cost, Threshold: tau,
			})
			return nil, &MissError{Path: path, Size: size, Cost: cost, Threshold: tau}
		}
	}

	f, err := v.fetchSingleFlight(vc, fid, size, sc)
	if err != nil {
		return nil, v.rpcFailed(path, err)
	}
	if state == WriteDisconnected {
		v.mu.Lock()
		v.stats.TransparentFetches++
		v.met.verdictTransparent.Inc()
		v.mu.Unlock()
	}
	return f, nil
}

// fetchSingleFlight fetches fid's full contents, coalescing concurrent
// fetches of the same object (a hoard walk and a foreground miss must not
// compete for a slow link over the same bytes). The timeout adapts to the
// object's size at the current bandwidth. Time spent parked behind
// another goroutine's in-flight fetch is recorded as a
// venus_patience_wait span on a traced operation.
func (v *Venus) fetchSingleFlight(vc *vclient, fid codafs.FID, size int64, sc obs.SpanContext) (*fso, error) {
	var waitStart time.Time
	endWait := func() {
		if !waitStart.IsZero() && sc.Valid() {
			v.met.reg.SpanAt(v.met.self, "venus_patience_wait", sc, waitStart).End()
		}
	}
	for {
		v.mu.Lock()
		if f := v.cache.get(fid); f != nil && !f.placeholder && f.valid {
			v.cache.touch(f)
			v.mu.Unlock()
			endWait()
			return f, nil
		}
		if !v.fetching[fid] {
			v.fetching[fid] = true
			v.mu.Unlock()
			break
		}
		v.mu.Unlock()
		if waitStart.IsZero() {
			waitStart = v.clock.Now()
		}
		// Another goroutine is fetching this object; wait for it.
		v.clock.Sleep(200 * time.Millisecond)
		if v.isClosed() {
			endWait()
			return nil, ErrClosed
		}
	}
	endWait()
	defer func() {
		v.mu.Lock()
		delete(v.fetching, fid)
		v.mu.Unlock()
	}()

	timeout := 2*v.estimateCost(vc, size) + 2*time.Minute
	rep, err := callVol[wire.FetchRep](v, vc,
		wire.Fetch{FID: fid, WantCallback: true}, rpc2.CallOpts{Timeout: timeout, Span: sc})
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	obj := rep.Object
	need := int64(len(obj.Data)) + int64(len(obj.Children))*32
	v.cache.evictFor(need)
	pri := 0
	if old := v.cache.get(fid); old != nil {
		pri = old.hoardPri
	}
	f := v.cache.install(obj.Clone(), false)
	f.hasCallback = true
	f.hoardPri = pri
	v.overlayPendingLocked(f)
	return f, nil
}

// overlayPendingLocked re-applies pending CML records that affect a freshly
// fetched directory's entries: the server's copy cannot yet show the
// client's own unreintegrated creates, removes, and renames (relevant after
// LoadState restores a CML whose directories were not cached).
func (v *Venus) overlayPendingLocked(f *fso) {
	if f.obj.Status.Type != codafs.Directory {
		return
	}
	fid := f.obj.Status.FID
	vc := v.volByID[fid.Volume]
	if vc == nil {
		return
	}
	before := f.dataBytes()
	changed := false
	for _, rec := range vc.log.Records() {
		switch rec.Kind {
		case cml.Create, cml.Mkdir, cml.MakeSymlink, cml.Link:
			if rec.Parent == fid {
				f.obj.Children[rec.Name] = rec.FID
				changed = true
			}
		case cml.Remove, cml.Rmdir:
			if rec.Parent == fid {
				delete(f.obj.Children, rec.Name)
				changed = true
			}
		case cml.Rename:
			if rec.Parent == fid {
				delete(f.obj.Children, rec.Name)
				changed = true
			}
			if rec.NewParent == fid {
				f.obj.Children[rec.NewName] = rec.FID
				changed = true
			}
		}
	}
	if changed {
		f.dirty = true
		v.cache.recharge(f, before)
	}
}

func (v *Venus) recordMiss(m MissRecord) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.misses = append(v.misses, m)
	if len(v.misses) > 1000 {
		v.misses = v.misses[len(v.misses)-1000:]
	}
}

// Misses drains the deferred-miss list (the data behind Figure 5).
func (v *Venus) Misses() []MissRecord {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := v.misses
	v.misses = nil
	return out
}

// rpcFailed classifies a server RPC failure: timeouts demote Venus to
// emulating (the server is unreachable) and surface as disconnected misses;
// other errors pass through.
func (v *Venus) rpcFailed(path string, err error) error {
	if errors.Is(err, rpc2.ErrTimeout) {
		v.transition(Emulating, "server unreachable")
		return &MissError{Path: path, Disconnected: true}
	}
	return err
}

// ---- Read operations ----

// ReadFile returns the contents of the file at path.
func (v *Venus) ReadFile(path string) ([]byte, error) {
	_, f, err := v.resolve(path, true)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if f.obj.Status.Type != codafs.File {
		return nil, fmt.Errorf("venus: %s: %w", path, ErrIsDir)
	}
	return append([]byte(nil), f.obj.Data...), nil
}

// Stat returns the status of the object at path without fetching contents.
func (v *Venus) Stat(path string) (codafs.Status, error) {
	_, f, err := v.resolve(path, false)
	if err != nil {
		return codafs.Status{}, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return f.obj.Status, nil
}

// ReadDir lists the directory at path.
func (v *Venus) ReadDir(path string) ([]string, error) {
	_, f, err := v.resolve(path, true)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if f.obj.Status.Type != codafs.Directory {
		return nil, fmt.Errorf("venus: %s: %w", path, ErrNotDir)
	}
	return f.obj.ChildNames(), nil
}

// ReadLink returns the symlink target at path.
func (v *Venus) ReadLink(path string) (string, error) {
	_, f, err := v.resolve(path, true)
	if err != nil {
		return "", err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if f.obj.Status.Type != codafs.Symlink {
		return "", fmt.Errorf("venus: %s: not a symlink", path)
	}
	return f.obj.Target, nil
}

// ---- Write operations ----

// WriteFile stores data at path, creating the file if needed (open-close
// session semantics: one call is one close-after-write).
func (v *Venus) WriteFile(path string, data []byte) error {
	vc, parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	if !codafs.ValidName(name) {
		return fmt.Errorf("venus: invalid name %q", name)
	}

	v.mu.Lock()
	fid, exists := parent.obj.Children[name]
	v.mu.Unlock()

	if !exists {
		if err := v.makeObject(vc, parent, name, codafs.File, ""); err != nil {
			return err
		}
		v.mu.Lock()
		fid = parent.obj.Children[name]
		v.mu.Unlock()
	}

	f, err := v.getObject(vc, fid, path, false)
	if err != nil {
		return err
	}
	v.mu.Lock()
	if f.obj.Status.Type != codafs.File {
		v.mu.Unlock()
		return fmt.Errorf("venus: %s: %w", path, ErrIsDir)
	}
	prevVersion := f.obj.Status.Version
	state := v.state
	v.mu.Unlock()

	if state == Hoarding {
		rep, err := callVol[wire.MutateRep](v, vc, wire.StoreOp{
			FID: fid, Data: data, PrevVersion: prevVersion,
		}, rpc2.CallOpts{Timeout: 10 * time.Minute})
		if err == nil {
			v.mu.Lock()
			before := f.dataBytes()
			f.obj.Data = append([]byte(nil), data...)
			f.obj.Status = rep.Status
			f.placeholder = false
			f.hasCallback = true
			v.cache.recharge(f, before)
			vc.noteStamp(rep.VolStamp)
			v.mu.Unlock()
			return nil
		}
		if !errors.Is(err, rpc2.ErrTimeout) {
			return err
		}
		v.transition(Emulating, "server unreachable")
	}

	// Weakly connected or disconnected: log (durably, journal first) and
	// apply locally.
	now := v.clock.Now()
	if err := v.logAppend(vc, cml.Record{
		Kind: cml.Store, FID: fid, Parent: parent.obj.Status.FID, Name: name,
		Data: append([]byte(nil), data...), Length: int64(len(data)),
		ModTime: now, PrevVersion: prevVersion, Owner: v.owner(),
	}, now); err != nil {
		return err
	}
	v.mu.Lock()
	before := f.dataBytes()
	if v.cfg.EnableDeltas && !f.dirty && !f.placeholder &&
		f.obj.Status.Version > 0 && len(f.obj.Data) >= 2048 {
		// Shadow the last server-known contents so reintegration can
		// ship a difference instead of the whole file.
		f.base = f.obj.Data
	}
	f.obj.Data = append([]byte(nil), data...)
	f.obj.Status.Length = int64(len(data))
	f.obj.Status.ModTime = now
	f.placeholder = false
	f.dirty = true
	v.cache.recharge(f, before)
	v.cache.evictFor(0)
	v.mu.Unlock()
	return nil
}

// Mkdir creates a directory at path.
func (v *Venus) Mkdir(path string) error {
	vc, parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	return v.makeObject(vc, parent, name, codafs.Directory, "")
}

// Symlink creates a symbolic link at path pointing at target.
func (v *Venus) Symlink(target, path string) error {
	vc, parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	return v.makeObject(vc, parent, name, codafs.Symlink, target)
}

// makeObject creates a file/dir/symlink under parent.
func (v *Venus) makeObject(vc *vclient, parent *fso, name string, typ codafs.ObjType, target string) error {
	if !codafs.ValidName(name) {
		return fmt.Errorf("venus: invalid name %q", name)
	}
	v.mu.Lock()
	if _, dup := parent.obj.Children[name]; dup {
		v.mu.Unlock()
		return fmt.Errorf("venus: %s: %w", name, ErrExist)
	}
	fid := v.allocFID(vc.info.ID)
	state := v.state
	parentFID := parent.obj.Status.FID
	v.mu.Unlock()

	if state == Hoarding {
		rep, err := callVol[wire.MakeObjectRep](v, vc, wire.MakeObject{
			Parent: parentFID, Name: name, FID: fid, Type: typ, Target: target, Owner: v.owner(),
		}, rpc2.CallOpts{})
		if err == nil {
			v.mu.Lock()
			v.installChildLocked(parent, name, rep.Status, target, false)
			parent.obj.Status = rep.ParentStatus
			vc.noteStamp(rep.VolStamp)
			v.mu.Unlock()
			return nil
		}
		if !errors.Is(err, rpc2.ErrTimeout) {
			return err
		}
		v.transition(Emulating, "server unreachable")
	}

	now := v.clock.Now()
	kind := cml.Create
	switch typ {
	case codafs.Directory:
		kind = cml.Mkdir
	case codafs.Symlink:
		kind = cml.MakeSymlink
	}
	if err := v.logAppend(vc, cml.Record{
		Kind: kind, FID: fid, Parent: parentFID, Name: name, Target: target,
		ModTime: now, Owner: v.owner(), PrevParentVersion: parent.obj.Status.Version,
	}, now); err != nil {
		return err
	}
	v.mu.Lock()
	st := codafs.Status{
		FID: fid, Type: typ, ModTime: now, Owner: v.owner(), Links: 1,
		Mode: 0644, Length: int64(len(target)),
	}
	if typ == codafs.Directory {
		st.Mode = 0755
	}
	v.installChildLocked(parent, name, st, target, true)
	parent.dirty = true
	v.mu.Unlock()
	return nil
}

// installChildLocked adds a freshly created object to the cache and its
// parent's entry map.
func (v *Venus) installChildLocked(parent *fso, name string, st codafs.Status, target string, dirty bool) {
	obj := &codafs.Object{Status: st, Target: target}
	if st.Type == codafs.Directory {
		obj.Children = make(map[string]codafs.FID)
	}
	f := v.cache.install(obj, dirty)
	f.hasCallback = !dirty
	before := parent.dataBytes()
	parent.obj.Children[name] = st.FID
	v.cache.recharge(parent, before)
	v.cache.touch(parent)
}

// Remove unlinks the file or symlink at path.
func (v *Venus) Remove(path string) error { return v.removeCommon(path, false) }

// Rmdir removes the empty directory at path.
func (v *Venus) Rmdir(path string) error { return v.removeCommon(path, true) }

func (v *Venus) removeCommon(path string, rmdir bool) error {
	vc, parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	_, target, err := v.resolve(path, rmdir) // dirs need contents to check emptiness
	if err != nil {
		return err
	}
	v.mu.Lock()
	fid := target.obj.Status.FID
	prevVersion := target.obj.Status.Version
	isDir := target.obj.Status.Type == codafs.Directory
	if rmdir {
		if !isDir {
			v.mu.Unlock()
			return fmt.Errorf("venus: %s: %w", path, ErrNotDir)
		}
		if len(target.obj.Children) > 0 {
			v.mu.Unlock()
			return fmt.Errorf("venus: %s: %w", path, ErrNotEmpty)
		}
	} else if isDir {
		v.mu.Unlock()
		return fmt.Errorf("venus: %s: %w", path, ErrIsDir)
	}
	state := v.state
	parentFID := parent.obj.Status.FID
	v.mu.Unlock()

	if state == Hoarding {
		rep, err := callVol[wire.MutateRep](v, vc, wire.RemoveOp{
			Parent: parentFID, Name: name, FID: fid, Rmdir: rmdir,
		}, rpc2.CallOpts{})
		if err == nil {
			v.mu.Lock()
			v.dropChildLocked(parent, name, fid)
			vc.noteStamp(rep.VolStamp)
			v.mu.Unlock()
			return nil
		}
		if !errors.Is(err, rpc2.ErrTimeout) {
			return err
		}
		v.transition(Emulating, "server unreachable")
	}

	now := v.clock.Now()
	kind := cml.Remove
	if rmdir {
		kind = cml.Rmdir
	}
	if err := v.logAppend(vc, cml.Record{
		Kind: kind, FID: fid, Parent: parentFID, Name: name,
		PrevVersion: prevVersion, Owner: v.owner(),
	}, now); err != nil {
		return err
	}
	v.mu.Lock()
	v.dropChildLocked(parent, name, fid)
	parent.dirty = true
	v.mu.Unlock()
	return nil
}

func (v *Venus) dropChildLocked(parent *fso, name string, fid codafs.FID) {
	before := parent.dataBytes()
	delete(parent.obj.Children, name)
	v.cache.recharge(parent, before)
	v.cache.remove(fid)
}

// Rename moves oldPath to newPath within one volume.
func (v *Venus) Rename(oldPath, newPath string) error {
	vcOld, oldParent, oldName, err := v.resolveParent(oldPath)
	if err != nil {
		return err
	}
	vcNew, newParent, newName, err := v.resolveParent(newPath)
	if err != nil {
		return err
	}
	if vcOld != vcNew {
		return fmt.Errorf("venus: rename across volumes")
	}
	v.mu.Lock()
	fid, ok := oldParent.obj.Children[oldName]
	if !ok {
		v.mu.Unlock()
		return fmt.Errorf("venus: %s: %w", oldPath, ErrNotFound)
	}
	if _, taken := newParent.obj.Children[newName]; taken {
		v.mu.Unlock()
		return fmt.Errorf("venus: %s: %w", newPath, ErrExist)
	}
	state := v.state
	oldPFID := oldParent.obj.Status.FID
	newPFID := newParent.obj.Status.FID
	v.mu.Unlock()

	apply := func() {
		v.mu.Lock()
		beforeOld, beforeNew := oldParent.dataBytes(), newParent.dataBytes()
		delete(oldParent.obj.Children, oldName)
		newParent.obj.Children[newName] = fid
		v.cache.recharge(oldParent, beforeOld)
		if newParent != oldParent {
			v.cache.recharge(newParent, beforeNew)
		}
		v.mu.Unlock()
	}

	if state == Hoarding {
		rep, err := callVol[wire.MutateRep](v, vcOld, wire.RenameOp{
			Parent: oldPFID, Name: oldName, NewParent: newPFID, NewName: newName, FID: fid,
		}, rpc2.CallOpts{})
		if err == nil {
			apply()
			v.mu.Lock()
			vcOld.noteStamp(rep.VolStamp)
			v.mu.Unlock()
			return nil
		}
		if !errors.Is(err, rpc2.ErrTimeout) {
			return err
		}
		v.transition(Emulating, "server unreachable")
	}

	now := v.clock.Now()
	if err := v.logAppend(vcOld, cml.Record{
		Kind: cml.Rename, FID: fid, Parent: oldPFID, Name: oldName,
		NewParent: newPFID, NewName: newName, Owner: v.owner(),
	}, now); err != nil {
		return err
	}
	apply()
	v.mu.Lock()
	oldParent.dirty = true
	newParent.dirty = true
	v.mu.Unlock()
	return nil
}

// Link creates a hard link at newPath to the file at existingPath.
func (v *Venus) Link(existingPath, newPath string) error {
	vcT, target, err := v.resolve(existingPath, false)
	if err != nil {
		return err
	}
	vcP, parent, name, err := v.resolveParent(newPath)
	if err != nil {
		return err
	}
	if vcT != vcP {
		return fmt.Errorf("venus: link across volumes")
	}
	v.mu.Lock()
	if target.obj.Status.Type == codafs.Directory {
		v.mu.Unlock()
		return fmt.Errorf("venus: %s: %w", existingPath, ErrIsDir)
	}
	if _, taken := parent.obj.Children[name]; taken {
		v.mu.Unlock()
		return fmt.Errorf("venus: %s: %w", newPath, ErrExist)
	}
	fid := target.obj.Status.FID
	state := v.state
	parentFID := parent.obj.Status.FID
	v.mu.Unlock()

	apply := func() {
		v.mu.Lock()
		before := parent.dataBytes()
		parent.obj.Children[name] = fid
		target.obj.Status.Links++
		v.cache.recharge(parent, before)
		v.mu.Unlock()
	}

	if state == Hoarding {
		rep, err := callVol[wire.MutateRep](v, vcT, wire.LinkOp{
			Parent: parentFID, Name: name, FID: fid,
		}, rpc2.CallOpts{})
		if err == nil {
			apply()
			v.mu.Lock()
			vcT.noteStamp(rep.VolStamp)
			v.mu.Unlock()
			return nil
		}
		if !errors.Is(err, rpc2.ErrTimeout) {
			return err
		}
		v.transition(Emulating, "server unreachable")
	}

	now := v.clock.Now()
	if err := v.logAppend(vcT, cml.Record{
		Kind: cml.Link, FID: fid, Parent: parentFID, Name: name, Owner: v.owner(),
	}, now); err != nil {
		return err
	}
	apply()
	v.mu.Lock()
	parent.dirty = true
	target.dirty = true
	v.mu.Unlock()
	return nil
}

// SetAttr updates an object's mode bits.
func (v *Venus) SetAttr(path string, mode uint32) error {
	vc, f, err := v.resolve(path, false)
	if err != nil {
		return err
	}
	v.mu.Lock()
	fid := f.obj.Status.FID
	prev := f.obj.Status.Version
	state := v.state
	v.mu.Unlock()

	if state == Hoarding {
		rep, err := callVol[wire.MutateRep](v, vc, wire.SetAttrOp{
			FID: fid, Mode: mode, ModTime: v.clock.Now(), PrevVersion: prev,
		}, rpc2.CallOpts{})
		if err == nil {
			v.mu.Lock()
			f.obj.Status = rep.Status
			vc.noteStamp(rep.VolStamp)
			v.mu.Unlock()
			return nil
		}
		if !errors.Is(err, rpc2.ErrTimeout) {
			return err
		}
		v.transition(Emulating, "server unreachable")
	}

	now := v.clock.Now()
	if err := v.logAppend(vc, cml.Record{
		Kind: cml.SetAttr, FID: fid, Mode: mode, ModTime: now,
		PrevVersion: prev, Owner: v.owner(),
	}, now); err != nil {
		return err
	}
	v.mu.Lock()
	f.obj.Status.Mode = mode
	f.obj.Status.ModTime = now
	f.dirty = true
	v.mu.Unlock()
	return nil
}

func (v *Venus) owner() string {
	return fmt.Sprintf("client-%d", v.cfg.ClientID)
}

// noteStamp updates the cached volume stamp after this client's own
// connected-mode update; the client's volume callback remains intact, so
// the stamp stays usable (mirrors the server not breaking the updater's
// callback).
func (vc *vclient) noteStamp(stamp uint64) {
	if vc.hasStamp {
		vc.stamp = stamp
	}
}
