package venus_test

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/venus"
)

func TestSaveLoadStateAcrossRestart(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"doc": "server copy"})
	dir := t.TempDir()
	stateFile := filepath.Join(dir, "venus.state")

	w.sim.Run(func() {
		// Session 1: hoard, disconnect, edit, crash (save + close).
		v1 := w.venus("c1", venus.Config{ClientID: 42, AgingWindow: time.Hour})
		mustMount(t, v1, "usr")
		v1.HoardAdd("/coda/usr/doc", 700, false)
		if _, err := v1.ReadFile("/coda/usr/doc"); err != nil {
			t.Fatal(err)
		}
		w.net.SetUp("c1", "server", false)
		v1.Disconnect()
		if err := v1.WriteFile("/coda/usr/doc", []byte("edited offline")); err != nil {
			t.Fatal(err)
		}
		if err := v1.WriteFile("/coda/usr/new.txt", []byte("created offline")); err != nil {
			t.Fatal(err)
		}
		records := v1.CMLRecords()
		if err := v1.SaveStateFile(stateFile); err != nil {
			t.Fatal(err)
		}
		v1.Close()
		w.net.SetUp("c1", "server", true)

		// Session 2: a fresh Venus on the same client identity restores
		// the CML and HDB, then reintegrates the offline work.
		v2 := w.venus("c1b", venus.Config{ClientID: 42, AgingWindow: 2 * time.Second})
		mustMount(t, v2, "usr")
		if err := v2.LoadStateFile(stateFile); err != nil {
			t.Fatal(err)
		}
		if got := v2.CMLRecords(); got != records {
			t.Fatalf("restored CML has %d records, want %d", got, records)
		}
		if len(v2.HoardList()) != 1 {
			t.Errorf("HDB not restored: %v", v2.HoardList())
		}
		// Local reads see the restored (dirty) contents immediately.
		if data, err := v2.ReadFile("/coda/usr/doc"); err != nil || string(data) != "edited offline" {
			t.Errorf("restored read = %q, %v", data, err)
		}

		w.sim.Sleep(time.Minute)
		if got, err := w.srv.ReadFile("usr", "doc"); err != nil || string(got) != "edited offline" {
			t.Errorf("doc after restart-reintegration = %q, %v", got, err)
		}
		if got, err := w.srv.ReadFile("usr", "new.txt"); err != nil || string(got) != "created offline" {
			t.Errorf("new.txt after restart-reintegration = %q, %v", got, err)
		}
		if v2.CMLRecords() != 0 {
			t.Errorf("CML not drained after restore: %d", v2.CMLRecords())
		}
	})
}

func TestLoadStateMissingFileIsFirstRun(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		if err := v.LoadStateFile(filepath.Join(t.TempDir(), "absent.state")); err != nil {
			t.Errorf("missing state file: %v", err)
		}
	})
}

func TestLoadStateUnmountedVolumeRejected(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.seed("other", nil)
	w.sim.Run(func() {
		v1 := w.venus("c1", venus.Config{ClientID: 1})
		mustMount(t, v1, "usr")
		mustMount(t, v1, "other")
		v1.Disconnect()
		v1.WriteFile("/coda/other/f", []byte("x"))
		var buf bytes.Buffer
		if err := v1.SaveState(&buf); err != nil {
			t.Fatal(err)
		}

		v2 := w.venus("c2", venus.Config{ClientID: 1})
		mustMount(t, v2, "usr") // "other" not mounted
		if err := v2.LoadState(&buf); err == nil {
			t.Error("LoadState accepted CML for an unmounted volume")
		}
	})
}

func TestRestoredRecordsOverlayFetchedDirectories(t *testing.T) {
	// The offline work happened in a subdirectory that is NOT cached when
	// the state is restored; fetching it later from the server must show
	// the pending (unreintegrated) entries overlaid on the server's copy.
	w := newWorld(t)
	w.seed("usr", map[string]string{"proj/existing.txt": "old"})
	w.sim.Run(func() {
		v1 := w.venus("c1", venus.Config{ClientID: 9, AgingWindow: time.Hour})
		mustMount(t, v1, "usr")
		if _, err := v1.ReadDir("/coda/usr/proj"); err != nil {
			t.Fatal(err)
		}
		w.net.SetUp("c1", "server", false)
		v1.Disconnect()
		if err := v1.WriteFile("/coda/usr/proj/offline.txt", []byte("pending")); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := v1.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		v1.Close()
		w.net.SetUp("c1", "server", true)

		v2 := w.venus("c1c", venus.Config{ClientID: 9, AgingWindow: time.Hour, PinWriteDisconnected: true})
		mustMount(t, v2, "usr")
		if err := v2.LoadState(&buf); err != nil {
			t.Fatal(err)
		}
		// proj is not cached in v2; resolving it fetches the server copy,
		// which lacks offline.txt — the overlay must add it back.
		names, err := v2.ReadDir("/coda/usr/proj")
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range names {
			if n == "offline.txt" {
				found = true
			}
		}
		if !found {
			t.Errorf("ReadDir = %v; pending create not overlaid", names)
		}
		if data, err := v2.ReadFile("/coda/usr/proj/offline.txt"); err != nil || string(data) != "pending" {
			t.Errorf("offline.txt = %q, %v", data, err)
		}
	})
}
