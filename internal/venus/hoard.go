package venus

import (
	"sort"

	"repro/internal/codafs"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/wire"
)

// HDBEntry is one hoard database entry: keep Path cached at Priority;
// Children extends the entry to all descendants (meta-expansion).
type HDBEntry struct {
	Path     string
	Priority int
	Children bool
}

// HoardAdd inserts or updates an HDB entry. Nothing is fetched immediately;
// that is deferred to a future hoard walk (§4.4.2). The HDB is part of the
// durable state (it encodes the user's priorities across restarts), so the
// change is journaled before it is applied.
func (v *Venus) HoardAdd(path string, priority int, children bool) {
	e := HDBEntry{Path: path, Priority: priority, Children: children}
	v.journalHDB(journalEntry{Op: jHoardAdd, HDB: e})
	v.mu.Lock()
	defer v.mu.Unlock()
	v.hdb[path] = &e
}

// HoardRemove deletes an HDB entry.
func (v *Venus) HoardRemove(path string) {
	v.journalHDB(journalEntry{Op: jHoardRemove, Path: path})
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.hdb, path)
}

// HoardList returns the HDB sorted by descending priority, then path.
func (v *Venus) HoardList() []HDBEntry {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]HDBEntry, 0, len(v.hdb))
	for _, e := range v.hdb {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// hoardDaemon runs a hoard walk every HoardInterval (10 minutes by
// default).
func (v *Venus) hoardDaemon() {
	for {
		v.clock.Sleep(v.cfg.HoardInterval)
		if v.isClosed() {
			return
		}
		_ = v.HoardWalk()
	}
}

// walkCand is an object the status walk decided could be fetched.
type walkCand struct {
	vc   *vclient
	fid  codafs.FID
	item WalkItem
}

// HoardWalk executes one hoard walk (§4.4.3): a status walk that validates
// suspect objects and determines what is missing, an interactive phase that
// lets the user limit the data walk while weakly connected, a data walk
// that fetches the approved objects, and finally the acquisition of fresh
// volume stamps, which is what makes the rapid validation of §4.2 possible
// at the next reconnection.
func (v *Venus) HoardWalk() error {
	state := v.State()
	if state == Emulating {
		return ErrDisconnected
	}
	// Walks never overlap: a daemon-triggered walk that collides with an
	// explicit one is simply skipped (the explicit walk does its work).
	v.mu.Lock()
	if v.walking {
		v.mu.Unlock()
		return nil
	}
	v.walking = true
	v.mu.Unlock()
	defer func() {
		v.mu.Lock()
		v.walking = false
		v.mu.Unlock()
	}()

	v.met.hoardWalks.Inc()
	sp := v.met.reg.StartSpan(v.met.self, "venus_hoard_walk", obs.SpanContext{})
	defer sp.End()
	sc := sp.Context()
	phaseStart := v.clock.Now()
	endPhase := func(name string) {
		now := v.clock.Now()
		v.met.hoardPhase[name].Observe(now.Sub(phaseStart).Microseconds())
		phaseStart = now
	}

	// ---- Phase 1: status walk ----
	v.revalidateSuspects()
	cands := v.statusWalk(state)
	endPhase("status_walk")

	// ---- Phase 2: interactive approval (Figure 6) ----
	approved := cands
	if state == WriteDisconnected && len(cands) > 0 {
		needAsk := false
		for _, c := range cands {
			if !c.item.PreApproved {
				needAsk = true
				break
			}
		}
		if needAsk {
			items := make([]WalkItem, len(cands))
			for i, c := range cands {
				items[i] = c.item
			}
			verdicts := v.cfg.Advisor.ApproveDataWalk(items)
			approved = approved[:0]
			for i, c := range cands {
				if i < len(verdicts) && verdicts[i] {
					approved = append(approved, c)
				}
			}
		}
	}

	endPhase("approval")

	// ---- Phase 3: data walk ----
	for _, c := range approved {
		if v.isClosed() || v.State() == Emulating {
			return ErrDisconnected
		}
		v.fetchForHoard(c.vc, c.fid, c.item.Priority, sc)
	}
	endPhase("data_walk")

	// ---- Phase 4: volume stamps (§4.2.2) ----
	v.acquireVolumeStamps(sc)
	endPhase("stamps")
	return nil
}

// revalidateSuspects batch-validates every cached object whose validity is
// unknown. With volume callbacks disabled (the Figure 8 baseline) this is
// the entire validation mechanism.
func (v *Venus) revalidateSuspects() {
	v.mu.Lock()
	var suspects []*fso
	for _, f := range v.cache.all() {
		if !f.valid && !f.dirty {
			suspects = append(suspects, f)
		}
	}
	v.mu.Unlock()
	if len(suspects) == 0 {
		return
	}
	sort.Slice(suspects, func(i, j int) bool {
		return suspects[i].obj.Status.FID.Vnode < suspects[j].obj.Status.FID.Vnode
	})

	const batch = 50
	for lo := 0; lo < len(suspects); lo += batch {
		hi := lo + batch
		if hi > len(suspects) {
			hi = len(suspects)
		}
		group := suspects[lo:hi]
		req := wire.ValidateObjects{Objects: make([]wire.FIDVersion, len(group))}
		v.mu.Lock()
		for i, f := range group {
			req.Objects[i] = wire.FIDVersion{FID: f.obj.Status.FID, Version: f.obj.Status.Version}
		}
		v.mu.Unlock()

		rep, err := callAny[wire.ValidateObjectsRep](v, req, rpc2.CallOpts{})
		if err != nil {
			return // validated lazily on demand instead
		}
		v.mu.Lock()
		v.stats.ObjValidations += int64(len(group))
		v.met.objValidations.Add(int64(len(group)))
		for i, f := range group {
			if rep.Valid[i] {
				f.valid = true
				f.hasCallback = true
				continue
			}
			if rep.Statuses[i].FID.IsZero() {
				// Removed on the server.
				v.cache.remove(f.obj.Status.FID)
				continue
			}
			// Changed: keep fresh status, drop stale contents.
			before := f.dataBytes()
			f.obj.Status = rep.Statuses[i]
			f.obj.Data = nil
			f.obj.Children = nil
			f.placeholder = true
			f.valid = true
			f.hasCallback = true
			v.cache.recharge(f, before)
		}
		v.mu.Unlock()
	}
}

// statusWalk resolves HDB entries (including meta-expansion of Children
// entries) and returns fetch candidates with cost estimates.
func (v *Venus) statusWalk(state State) []walkCand {
	var cands []walkCand
	seen := make(map[codafs.FID]bool)
	for _, e := range v.HoardList() {
		vc, f, err := v.resolve(e.Path, false)
		if err != nil {
			continue // unreachable entry; retried next walk
		}
		v.addCandidate(&cands, seen, vc, f, e.Path, e.Priority, state)
		if e.Children && f.obj.Status.Type == codafs.Directory {
			v.expandChildren(&cands, seen, vc, e.Path, e.Priority, state, 0)
		}
	}
	return cands
}

// expandChildren walks a hoarded subtree, adding every descendant as a
// candidate (Coda's meta-expansion).
func (v *Venus) expandChildren(cands *[]walkCand, seen map[codafs.FID]bool, vc *vclient, dirPath string, pri int, state State, depth int) {
	if depth > 16 {
		return
	}
	_, dir, err := v.resolve(dirPath, true) // directory contents needed to enumerate
	if err != nil {
		return
	}
	v.mu.Lock()
	names := dir.obj.ChildNames()
	children := make(map[string]codafs.FID, len(names))
	for _, n := range names {
		children[n] = dir.obj.Children[n]
	}
	v.mu.Unlock()
	for _, name := range names {
		childPath := dirPath + "/" + name
		_, f, err := v.resolve(childPath, false)
		if err != nil {
			continue
		}
		v.addCandidate(cands, seen, vc, f, childPath, pri, state)
		if f.obj.Status.Type == codafs.Directory {
			v.expandChildren(cands, seen, vc, childPath, pri, state, depth+1)
		}
	}
	_ = children
}

func (v *Venus) addCandidate(cands *[]walkCand, seen map[codafs.FID]bool, vc *vclient, f *fso, path string, pri int, state State) {
	v.mu.Lock()
	defer v.mu.Unlock()
	fid := f.obj.Status.FID
	if seen[fid] {
		return
	}
	seen[fid] = true
	if f.hoardPri < pri {
		f.hoardPri = pri
	}
	if !f.placeholder || f.dirty {
		return // contents already cached (or locally newer)
	}
	size := f.obj.Status.Length
	cost := v.costVia(v.cfg.Servers[vc.pref], size) + v.costPenaltyLocked(size)
	tau := v.cfg.Patience.Threshold(pri)
	*cands = append(*cands, walkCand{
		vc:  vc,
		fid: fid,
		item: WalkItem{
			Path: path, Priority: pri, Size: size, Cost: cost,
			PreApproved: state == Hoarding || cost <= tau,
		},
	})
}

// fetchForHoard fetches one approved object, bypassing the patience check
// (approval came from the model or the user).
func (v *Venus) fetchForHoard(vc *vclient, fid codafs.FID, pri int, sc obs.SpanContext) {
	var size int64
	v.mu.Lock()
	if f := v.cache.get(fid); f != nil {
		if !f.placeholder {
			if f.hoardPri < pri {
				f.hoardPri = pri
			}
			v.mu.Unlock()
			return
		}
		size = f.obj.Status.Length
	}
	v.mu.Unlock()
	if _, err := v.fetchSingleFlight(vc, fid, size, sc); err != nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if f := v.cache.get(fid); f != nil && f.hoardPri < pri {
		f.hoardPri = pri
	}
}

// acquireVolumeStamps caches a fresh stamp (and volume callback) for every
// mounted volume. All cached objects are known valid at this point, so the
// mutual consistency of volume and object state costs nothing (§4.2.1).
func (v *Venus) acquireVolumeStamps(sc obs.SpanContext) {
	if v.cfg.DisableVolumeCallbacks {
		return
	}
	v.mu.Lock()
	vols := v.volumeList()
	v.mu.Unlock()
	for _, vc := range vols {
		rep, err := callVol[wire.GetVolumeStampRep](v, vc,
			wire.GetVolumeStamp{Volume: vc.info.ID}, rpc2.CallOpts{Span: sc})
		if err != nil {
			continue
		}
		v.mu.Lock()
		vc.stamp = rep.Stamp
		vc.hasStamp = true
		v.mu.Unlock()
	}
}
