package venus

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/wire"
)

// transition moves Venus between states (Figure 2), performing the actions
// each edge requires.
func (v *Venus) transition(to State, reason string) {
	v.mu.Lock()
	from := v.state
	if from == to {
		v.mu.Unlock()
		return
	}
	// The only legal edges are those of Figure 2; emulating must pass
	// through write-disconnected on any reconnection.
	if from == Emulating && to == Hoarding {
		to = WriteDisconnected
	}
	v.state = to
	v.stats.Transitions[fmt.Sprintf("%s->%s", from, to)]++
	v.met.transitions[[2]State{from, to}].Inc()
	// Event only takes the trace-ring lock, which never calls out — safe
	// while holding v.mu.
	v.met.reg.Event("venus_state_transition",
		obs.F("from", from.String()), obs.F("to", to.String()), obs.F("reason", reason))

	switch {
	case to == Emulating:
		// Object callbacks are meaningless while disconnected; cached
		// state is used as-is and revalidated at reconnection.
		for _, f := range v.cache.all() {
			f.hasCallback = false
		}
	case from == Emulating && to == WriteDisconnected:
		// Reconnection: rapid cache validation with volume stamps
		// happens outside the lock, below.
	}
	v.mu.Unlock()

	if from == Emulating && to == WriteDisconnected {
		v.validateOnReconnect()
	}
}

// Disconnect severs Venus from the server (the user pulled the cable, or
// the connectivity prober gave up). Cached data remains usable; updates are
// logged.
func (v *Venus) Disconnect() {
	v.transition(Emulating, "explicit disconnect")
}

// Connect tells Venus the network is back. bandwidthHint, if positive,
// seeds the bandwidth estimate (e.g. the user named the attached network);
// transport measurements refine it continuously. Venus enters the
// write-disconnected state; the trickle daemon promotes it to hoarding once
// connectivity is strong and the CML has drained (Figure 2).
func (v *Venus) Connect(bandwidthHint int64) {
	if bandwidthHint > 0 {
		for _, addr := range v.cfg.Servers {
			v.peerOf(addr).SetBandwidth(bandwidthHint)
		}
	}
	v.transition(WriteDisconnected, "reconnected")
}

// WriteDisconnect forces the write-disconnected state regardless of
// connection strength — the paper's "logically disconnected while
// physically connected" mode of use (§3.2).
func (v *Venus) WriteDisconnect() {
	v.transition(WriteDisconnected, "forced write-disconnect")
}

// maybePromote moves WriteDisconnected → Hoarding when connectivity is
// strong and every CML has drained; called by the trickle daemon after
// successful reintegrations.
func (v *Venus) maybePromote() {
	if v.cfg.PinWriteDisconnected {
		return
	}
	v.mu.Lock()
	if v.state != WriteDisconnected {
		v.mu.Unlock()
		return
	}
	strong := v.linkBandwidth() >= v.cfg.StrongThreshold
	empty := true
	for _, vc := range v.volumes {
		if vc.log.Len() > 0 {
			empty = false
			break
		}
	}
	v.mu.Unlock()
	if strong && empty {
		v.transition(Hoarding, "strong connectivity, CML drained")
	}
}

// maybeDemote moves Hoarding → WriteDisconnected when the measured
// bandwidth has sunk below the strong threshold.
func (v *Venus) maybeDemote() {
	v.mu.Lock()
	demote := v.state == Hoarding
	v.mu.Unlock()
	if !demote {
		return
	}
	bw := v.linkBandwidth()
	if bw > 0 && bw < v.cfg.StrongThreshold {
		v.transition(WriteDisconnected, "bandwidth below strong threshold")
	}
}

// validateOnReconnect performs rapid cache validation (§4.2): all cached
// volume stamps are presented in batched RPCs; every object in a volume
// whose stamp is still valid is thereby validated at once, and a fresh
// volume callback comes as a side effect. Objects in volumes with missing
// or stale stamps become suspect and are validated individually on demand
// or at the next hoard walk.
//
// With a group, each volume's stamp is validated against the member the
// stamp came from (its preferred member): volumes are batched by
// preference, one RPC per distinct member. A member that lags its peers
// would reject a stamp another member issued even though the client's
// cache is good; asking the issuer avoids that false suspicion.
func (v *Venus) validateOnReconnect() {
	root := v.met.reg.StartSpan(v.met.self, "venus_validate", obs.SpanContext{})
	defer root.End()
	v.mu.Lock()
	type batchEntry struct {
		vc   *vclient
		objs int
	}
	type memberBatch struct {
		pairs   []wire.VolStampPair
		entries []batchEntry
	}
	batches := make(map[int]*memberBatch)
	for _, vc := range v.volumes {
		cached := v.cache.inVolume(vc.info.ID)
		if v.cfg.DisableVolumeCallbacks || !vc.hasStamp {
			if !v.cfg.DisableVolumeCallbacks {
				v.stats.MissingStamp++
				v.met.missingStamp.Inc()
			}
			for _, f := range cached {
				if !f.dirty {
					f.valid = false
				}
			}
			continue
		}
		b := batches[vc.pref]
		if b == nil {
			b = &memberBatch{}
			batches[vc.pref] = b
		}
		b.pairs = append(b.pairs, wire.VolStampPair{ID: vc.info.ID, Stamp: vc.stamp})
		b.entries = append(b.entries, batchEntry{vc: vc, objs: len(cached)})
	}
	v.mu.Unlock()

	for _, b := range batches {
		rep, err := callVol[wire.ValidateVolumesRep](v, b.entries[0].vc,
			wire.ValidateVolumes{Volumes: b.pairs}, rpc2.CallOpts{Span: root.Context()})
		if err != nil {
			// Validation will be retried on the next reconnection; treat
			// this batch as suspect meanwhile.
			v.mu.Lock()
			for _, e := range b.entries {
				e.vc.hasStamp = false
				for _, f := range v.cache.inVolume(e.vc.info.ID) {
					if !f.dirty {
						f.valid = false
					}
				}
			}
			v.mu.Unlock()
			continue
		}

		v.mu.Lock()
		for i, e := range b.entries {
			v.stats.VolValidations++
			v.met.volValidations.Inc()
			if rep.Valid[i] {
				v.stats.VolValidationsOK++
				v.stats.ObjsSavedByVolume += int64(e.objs)
				v.met.volValidationsOK.Inc()
				v.met.objsSaved.Add(int64(e.objs))
				// Volume callback reacquired as a side effect; every
				// cached object from the volume is revalidated at once.
				for _, f := range v.cache.inVolume(e.vc.info.ID) {
					if !f.dirty {
						f.valid = true
					}
				}
			} else {
				e.vc.hasStamp = false
				for _, f := range v.cache.inVolume(e.vc.info.ID) {
					if !f.dirty {
						f.valid = false
					}
				}
			}
		}
		v.mu.Unlock()
	}
}

// handleServerCall services calls from the server — callback breaks.
func (v *Venus) handleServerCall(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
	msg, err := wire.Decode(body)
	if err != nil {
		return nil, err
	}
	brk, ok := msg.(wire.CallbackBreak)
	if !ok {
		return nil, fmt.Errorf("venus: unexpected server call %T", msg)
	}
	v.mu.Lock()
	for _, fid := range brk.FIDs {
		f := v.cache.get(fid)
		if f == nil {
			continue
		}
		if f.dirty {
			// §4.3.2: an object awaiting reintegration was updated by
			// a strongly-connected client. Consistent with optimism, the
			// break is ignored; the conflict, if real, surfaces at
			// reintegration.
			continue
		}
		f.hasCallback = false
		f.valid = false
	}
	for _, volID := range brk.Volumes {
		vc := v.volByID[volID]
		if vc == nil {
			continue
		}
		vc.hasStamp = false
		// Objects without individual callbacks were covered only by the
		// volume callback; they become suspect. Those with object
		// callbacks stay valid until their own break arrives (§4.2.2).
		for _, f := range v.cache.inVolume(volID) {
			if !f.hasCallback && !f.dirty {
				f.valid = false
			}
		}
	}
	v.mu.Unlock()
	return wire.Encode(wire.CallbackBreakRep{})
}
