package venus

import (
	"repro/internal/cml"
	"repro/internal/obs"
)

// bandOf buckets a hoard priority into the coarse bands used for cache
// hit/miss accounting: unhoarded objects, then low/medium/high hoard
// priority (Figure 6's working-set tiers).
func bandOf(pri int) string {
	switch {
	case pri <= 0:
		return "none"
	case pri < 100:
		return "low"
	case pri < 600:
		return "medium"
	default:
		return "high"
	}
}

var hoardBands = []string{"none", "low", "medium", "high"}

// hoardPhases names the four phases of HoardWalk, in order.
var hoardPhases = []string{"status_walk", "approval", "data_walk", "stamps"}

var cancelClasses = []cml.CancelClass{
	cml.CancelStoreOverwrite, cml.CancelSetAttrOverwrite,
	cml.CancelIdentity, cml.CancelRemoveMoot,
}

// residencyBucketsS buckets how long a CML record lived before shipping,
// in seconds. The aging window default is 600 s, so the buckets straddle
// it: records shipped well before A mean a forced drain, well after mean
// a backlogged link.
var residencyBucketsS = []int64{1, 10, 60, 300, 600, 1200, 3600, 7200}

// hoardPhaseBucketsUS buckets hoard-walk phase durations (microseconds):
// status walks are sub-second on a LAN but data walks can run minutes on
// a modem.
var hoardPhaseBucketsUS = []int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000, 600_000_000,
}

// vmetrics holds Venus's pre-registered obs handles. Handles are created
// once at construction — state transitions and CML cancellations fire
// under Venus's or the log's mutex, and a pre-resolved atomic handle
// keeps those paths allocation- and lock-free. Every handle is nil (and
// inert) when no registry was injected.
type vmetrics struct {
	reg  *obs.Registry
	self string // the client's node address, span node label

	cacheHits   map[string]*obs.Counter // by hoard band
	cacheMisses map[string]*obs.Counter

	verdictTransparent  *obs.Counter
	verdictDeferred     *obs.Counter
	verdictDisconnected *obs.Counter

	volValidations   *obs.Counter
	volValidationsOK *obs.Counter
	objsSaved        *obs.Counter
	missingStamp     *obs.Counter
	objValidations   *obs.Counter

	transitions map[[2]State]*obs.Counter

	reintegrations *obs.Counter
	reintegFails   *obs.Counter
	failovers      *obs.Counter
	failoverWait   *obs.Counter
	shippedBytes   *obs.Counter
	shippedRecords *obs.Counter
	deltaStores    *obs.Counter
	deltaSaved     *obs.Counter
	residency      *obs.Histogram

	cancelRecs  map[cml.CancelClass]*obs.Counter
	cancelBytes map[cml.CancelClass]*obs.Counter

	hoardWalks *obs.Counter
	hoardPhase map[string]*obs.Histogram
}

var venusStates = []State{Hoarding, Emulating, WriteDisconnected}

// newVMetrics registers Venus's metric catalog under the client's node
// address. The gauge funcs close over v and take v.mu when evaluated —
// legal because obs never evaluates them under its own lock.
func newVMetrics(reg *obs.Registry, v *Venus, addr string) *vmetrics {
	client := obs.L("client", addr)
	m := &vmetrics{
		reg:         reg,
		self:        addr,
		cacheHits:   make(map[string]*obs.Counter, len(hoardBands)),
		cacheMisses: make(map[string]*obs.Counter, len(hoardBands)),
		transitions: make(map[[2]State]*obs.Counter),
		cancelRecs:  make(map[cml.CancelClass]*obs.Counter, len(cancelClasses)),
		cancelBytes: make(map[cml.CancelClass]*obs.Counter, len(cancelClasses)),
		hoardPhase:  make(map[string]*obs.Histogram, len(hoardPhases)),
	}
	for _, b := range hoardBands {
		m.cacheHits[b] = reg.Counter("venus_cache_hits_total", client, obs.L("band", b))
		m.cacheMisses[b] = reg.Counter("venus_cache_misses_total", client, obs.L("band", b))
	}
	m.verdictTransparent = reg.Counter("venus_miss_verdicts_total", client, obs.L("verdict", "transparent"))
	m.verdictDeferred = reg.Counter("venus_miss_verdicts_total", client, obs.L("verdict", "deferred"))
	m.verdictDisconnected = reg.Counter("venus_miss_verdicts_total", client, obs.L("verdict", "disconnected"))

	m.volValidations = reg.Counter("venus_validations_total", client, obs.L("kind", "volume"))
	m.volValidationsOK = reg.Counter("venus_volume_validations_ok_total", client)
	m.objsSaved = reg.Counter("venus_objs_saved_by_volume_total", client)
	m.missingStamp = reg.Counter("venus_missing_stamp_total", client)
	m.objValidations = reg.Counter("venus_validations_total", client, obs.L("kind", "object"))

	for _, from := range venusStates {
		for _, to := range venusStates {
			if from == to {
				continue
			}
			m.transitions[[2]State{from, to}] = reg.Counter("venus_state_transitions_total",
				client, obs.L("from", from.String()), obs.L("to", to.String()))
		}
	}

	m.reintegrations = reg.Counter("venus_reintegrations_total", client)
	m.reintegFails = reg.Counter("venus_reintegration_failures_total", client)
	m.failovers = reg.Counter("venus_failovers_total", client)
	m.failoverWait = reg.Counter("venus_failover_wait_us_total", client)
	m.shippedBytes = reg.Counter("venus_shipped_bytes_total", client)
	m.shippedRecords = reg.Counter("venus_shipped_records_total", client)
	m.deltaStores = reg.Counter("venus_delta_stores_total", client)
	m.deltaSaved = reg.Counter("venus_delta_saved_bytes_total", client)
	m.residency = reg.Histogram("venus_cml_residency_s", residencyBucketsS, client)

	for _, c := range cancelClasses {
		cl := obs.L("class", string(c))
		m.cancelRecs[c] = reg.Counter("venus_cml_cancelled_records_total", client, cl)
		m.cancelBytes[c] = reg.Counter("venus_cml_cancelled_bytes_total", client, cl)
	}

	m.hoardWalks = reg.Counter("venus_hoard_walks_total", client)
	for _, p := range hoardPhases {
		m.hoardPhase[p] = reg.Histogram("venus_hoard_phase_us", hoardPhaseBucketsUS,
			client, obs.L("phase", p))
	}

	reg.GaugeFunc("venus_cml_records", func() int64 { return int64(v.CMLRecords()) }, client)
	reg.GaugeFunc("venus_cml_bytes", v.CMLBytes, client)
	reg.GaugeFunc("venus_cml_saved_bytes", v.OptimizedBytes, client)
	return m
}

// hit/miss record one cache lookup outcome in the object's hoard band.
func (m *vmetrics) hit(pri int)  { m.cacheHits[bandOf(pri)].Inc() }
func (m *vmetrics) miss(pri int) { m.cacheMisses[bandOf(pri)].Inc() }
