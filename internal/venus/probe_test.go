package venus_test

import (
	"testing"
	"time"

	"repro/internal/venus"
)

func TestProbeDaemonAutoReconnects(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{
			ProbeInterval: 30 * time.Second,
			AgingWindow:   2 * time.Second,
		})
		mustMount(t, v, "usr")

		// Outage: Venus notices by itself (probe fails).
		w.net.SetUp("c1", "server", false)
		w.sim.Sleep(3 * time.Minute)
		if v.State() != venus.Emulating {
			t.Fatalf("prober did not detect the outage: %v", v.State())
		}

		// Offline work.
		if err := v.WriteFile("/coda/usr/note", []byte("while away")); err != nil {
			t.Fatal(err)
		}

		// The network returns; within a probe interval Venus reconnects
		// and the CML drains — no user action at all.
		w.net.SetUp("c1", "server", true)
		w.sim.Sleep(3 * time.Minute)
		if v.State() == venus.Emulating {
			t.Fatalf("prober did not detect reconnection")
		}
		if got, err := w.srv.ReadFile("usr", "note"); err != nil || string(got) != "while away" {
			t.Errorf("offline note not reintegrated: %q, %v", got, err)
		}
	})
}

func TestProbeDaemonQuietWhenTrafficFlows(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", map[string]string{"f": "x"})
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{ProbeInterval: time.Minute})
		mustMount(t, v, "usr")
		before := w.net.StatsBetween("c1", "server").PacketsSent
		// Steady foreground traffic more frequent than the interval:
		// probes must be suppressed (unified keepalive, §4.1).
		for i := 0; i < 10; i++ {
			w.sim.Sleep(30 * time.Second)
			if _, err := v.Stat("/coda/usr/f"); err != nil {
				t.Fatal(err)
			}
		}
		// Re-stat forces small RPCs? No: cached+valid stats are local.
		// The point: five minutes passed; if probes fired every minute
		// we would see ≥ 5 probe packets beyond the stat traffic.
		sent := w.net.StatsBetween("c1", "server").PacketsSent - before
		if sent > 6 {
			t.Errorf("%d packets sent during quiet cached operation; probes not suppressed?", sent)
		}
	})
}

func TestExplicitProbe(t *testing.T) {
	w := newWorld(t)
	w.seed("usr", nil)
	w.sim.Run(func() {
		v := w.venus("c1", venus.Config{})
		mustMount(t, v, "usr")
		if err := v.Probe(); err != nil {
			t.Errorf("probe on healthy link: %v", err)
		}
		w.net.SetUp("c1", "server", false)
		if err := v.Probe(); err == nil {
			t.Error("probe succeeded across a dead link")
		}
	})
}
