package server

import (
	"fmt"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/wire"
)

// applyCtx is an all-or-nothing overlay over one volume's object store.
// Records are validated and applied against the overlay; nothing reaches
// the volume until commitApply. Dropping the context aborts cleanly, which
// is what makes reintegration atomic (§4.3.3).
type applyCtx struct {
	v       *volume
	objs    map[codafs.FID]*codafs.Object
	deleted map[codafs.FID]bool
	touched []codafs.FID
}

func newApply(v *volume) *applyCtx {
	return &applyCtx{
		v:       v,
		objs:    make(map[codafs.FID]*codafs.Object),
		deleted: make(map[codafs.FID]bool),
	}
}

// get returns the overlay's view of fid, cloning from the base volume on
// first access.
func (a *applyCtx) get(fid codafs.FID) (*codafs.Object, bool) {
	if a.deleted[fid] {
		return nil, false
	}
	if o, ok := a.objs[fid]; ok {
		return o, true
	}
	base, ok := a.v.objects[fid]
	if !ok {
		return nil, false
	}
	c := base.Clone()
	a.objs[fid] = c
	return c, true
}

func (a *applyCtx) touch(fid codafs.FID) {
	a.touched = append(a.touched, fid)
}

func (a *applyCtx) create(o *codafs.Object) {
	a.objs[o.Status.FID] = o
	delete(a.deleted, o.Status.FID)
	a.touch(o.Status.FID)
}

func (a *applyCtx) remove(fid codafs.FID) {
	delete(a.objs, fid)
	a.deleted[fid] = true
	a.touch(fid)
}

func conflict(format string, args ...any) wire.RecordResult {
	return wire.RecordResult{Conflict: true, Msg: fmt.Sprintf(format, args...)}
}

func failure(format string, args ...any) wire.RecordResult {
	return wire.RecordResult{Msg: fmt.Sprintf(format, args...)}
}

var okResult = wire.RecordResult{OK: true}

// refreshDirLen keeps a directory's Length proportional to its entry count
// (~32 bytes per entry), so Venus can estimate fetch costs from status
// information alone (§4.4.1).
func refreshDirLen(o *codafs.Object) {
	if o.Status.Type == codafs.Directory {
		o.Status.Length = int64(len(o.Children)) * 32
	}
}

// versionOK implements the optimistic update/update check: the record's
// PrevVersion must match the server's current version, or the current
// version must itself be the reintegrating client's own earlier work
// (storeid rule), since its later records were logged against local state.
func versionOK(a *applyCtx, fid codafs.FID, prev uint64, client string) bool {
	base, ok := a.v.objects[fid]
	if !ok {
		// Object created inside this same overlay: trivially current.
		return true
	}
	if base.Status.Version == prev {
		return true
	}
	return a.v.lastAuthor[fid] == client
}

// applyRecord validates rec against the overlay and applies it. The whole
// apply pipeline runs inside one volume's domain: the caller holds a.v.mu
// and nothing else.
func applyRecord(a *applyCtx, rec *cml.Record, client string) wire.RecordResult {
	switch rec.Kind {
	case cml.Store:
		o, ok := a.get(rec.FID)
		if !ok {
			return conflict("store %s: object removed on server", rec.FID)
		}
		if o.Status.Type != codafs.File {
			return failure("store %s: not a file", rec.FID)
		}
		if !versionOK(a, rec.FID, rec.PrevVersion, client) {
			return conflict("store %s: update/update conflict", rec.FID)
		}
		o.Data = append([]byte(nil), rec.Data...)
		o.Status.Length = rec.Length
		o.Status.ModTime = rec.ModTime
		a.touch(rec.FID)
		return okResult

	case cml.SetAttr:
		o, ok := a.get(rec.FID)
		if !ok {
			return conflict("setattr %s: object removed on server", rec.FID)
		}
		if !versionOK(a, rec.FID, rec.PrevVersion, client) {
			return conflict("setattr %s: update/update conflict", rec.FID)
		}
		if rec.Mode != 0 {
			o.Status.Mode = rec.Mode
		}
		if !rec.ModTime.IsZero() {
			o.Status.ModTime = rec.ModTime
		}
		a.touch(rec.FID)
		return okResult

	case cml.Create, cml.Mkdir, cml.MakeSymlink:
		parent, ok := a.get(rec.Parent)
		if !ok {
			return conflict("%s %q: parent %s gone", rec.Kind, rec.Name, rec.Parent)
		}
		if parent.Status.Type != codafs.Directory {
			return failure("%s %q: parent not a directory", rec.Kind, rec.Name)
		}
		if !codafs.ValidName(rec.Name) {
			return failure("%s: invalid name %q", rec.Kind, rec.Name)
		}
		if _, taken := parent.Children[rec.Name]; taken {
			return conflict("%s %q: name already exists (create/create conflict)", rec.Kind, rec.Name)
		}
		if _, exists := a.get(rec.FID); exists {
			return failure("%s %q: fid %s in use", rec.Kind, rec.Name, rec.FID)
		}
		if rec.FID.Volume != a.v.info.ID {
			return failure("%s %q: fid %s outside volume %d", rec.Kind, rec.Name, rec.FID, a.v.info.ID)
		}
		o := &codafs.Object{
			Status: codafs.Status{
				FID: rec.FID, ModTime: rec.ModTime, Mode: rec.Mode,
				Owner: rec.Owner, Links: 1,
			},
			Target: rec.Target,
		}
		switch rec.Kind {
		case cml.Create:
			o.Status.Type = codafs.File
			if o.Status.Mode == 0 {
				o.Status.Mode = 0644
			}
		case cml.Mkdir:
			o.Status.Type = codafs.Directory
			o.Children = make(map[string]codafs.FID)
			if o.Status.Mode == 0 {
				o.Status.Mode = 0755
			}
		case cml.MakeSymlink:
			o.Status.Type = codafs.Symlink
			o.Status.Length = int64(len(rec.Target))
		}
		a.create(o)
		parent.Children[rec.Name] = rec.FID
		refreshDirLen(parent)
		a.touch(rec.Parent)
		return okResult

	case cml.Link:
		parent, ok := a.get(rec.Parent)
		if !ok {
			return conflict("link %q: parent gone", rec.Name)
		}
		if _, taken := parent.Children[rec.Name]; taken {
			return conflict("link %q: name already exists", rec.Name)
		}
		o, ok := a.get(rec.FID)
		if !ok {
			return conflict("link %q: target %s gone", rec.Name, rec.FID)
		}
		if o.Status.Type == codafs.Directory {
			return failure("link %q: cannot hard-link a directory", rec.Name)
		}
		o.Status.Links++
		parent.Children[rec.Name] = rec.FID
		refreshDirLen(parent)
		a.touch(rec.FID)
		a.touch(rec.Parent)
		return okResult

	case cml.Remove:
		parent, ok := a.get(rec.Parent)
		if !ok {
			return conflict("remove %q: parent gone", rec.Name)
		}
		fid, ok := parent.Children[rec.Name]
		if !ok {
			return conflict("remove %q: name missing (remove/remove conflict)", rec.Name)
		}
		if !rec.FID.IsZero() && fid != rec.FID {
			return conflict("remove %q: name now names %s (remove/update conflict)", rec.Name, fid)
		}
		o, ok := a.get(fid)
		if !ok {
			return conflict("remove %q: object gone", rec.Name)
		}
		if o.Status.Type == codafs.Directory {
			return failure("remove %q: is a directory", rec.Name)
		}
		// Removing an object another client has since updated is a
		// remove/update conflict (optimistic replica control). A zero
		// PrevVersion (server-side administrative removes) skips the check.
		if rec.PrevVersion != 0 && !versionOK(a, fid, rec.PrevVersion, client) {
			return conflict("remove %q: object updated on server (remove/update conflict)", rec.Name)
		}
		delete(parent.Children, rec.Name)
		refreshDirLen(parent)
		a.touch(rec.Parent)
		if o.Status.Links > 1 {
			o.Status.Links--
			a.touch(fid)
		} else {
			a.remove(fid)
		}
		return okResult

	case cml.Rmdir:
		parent, ok := a.get(rec.Parent)
		if !ok {
			return conflict("rmdir %q: parent gone", rec.Name)
		}
		fid, ok := parent.Children[rec.Name]
		if !ok {
			return conflict("rmdir %q: name missing", rec.Name)
		}
		o, ok := a.get(fid)
		if !ok || o.Status.Type != codafs.Directory {
			return failure("rmdir %q: not a directory", rec.Name)
		}
		if len(o.Children) > 0 {
			return conflict("rmdir %q: directory not empty on server", rec.Name)
		}
		delete(parent.Children, rec.Name)
		refreshDirLen(parent)
		a.touch(rec.Parent)
		a.remove(fid)
		return okResult

	case cml.Rename:
		src, ok := a.get(rec.Parent)
		if !ok {
			return conflict("rename %q: source parent gone", rec.Name)
		}
		fid, ok := src.Children[rec.Name]
		if !ok {
			return conflict("rename %q: source name missing", rec.Name)
		}
		if !rec.FID.IsZero() && fid != rec.FID {
			return conflict("rename %q: source renamed on server", rec.Name)
		}
		dst, ok := a.get(rec.NewParent)
		if !ok {
			return conflict("rename %q: destination parent gone", rec.NewName)
		}
		if dst.Status.Type != codafs.Directory {
			return failure("rename %q: destination not a directory", rec.NewName)
		}
		if _, taken := dst.Children[rec.NewName]; taken {
			return conflict("rename %q: destination name exists", rec.NewName)
		}
		if !codafs.ValidName(rec.NewName) {
			return failure("rename: invalid name %q", rec.NewName)
		}
		delete(src.Children, rec.Name)
		dst.Children[rec.NewName] = fid
		refreshDirLen(src)
		refreshDirLen(dst)
		a.touch(rec.Parent)
		if rec.NewParent != rec.Parent {
			a.touch(rec.NewParent)
		}
		a.touch(fid)
		return okResult

	default:
		return failure("unknown record kind %v", rec.Kind)
	}
}

// commitApply installs the overlay into the volume, bumping versions and
// the volume stamp, and returns the new statuses of every touched object
// plus the callback breaks to deliver (after a.v.mu is released). Must be
// called with a.v.mu held.
func commitApply(a *applyCtx, client string) (statuses []codafs.Status, stamp uint64, breaks []breakWork) {
	seen := make(map[codafs.FID]bool)
	for _, fid := range a.touched {
		if seen[fid] {
			continue
		}
		seen[fid] = true

		breaks = append(breaks, a.v.collectBreaksLocked(fid, client))
		if a.deleted[fid] {
			delete(a.v.objects, fid)
			delete(a.v.lastAuthor, fid)
			delete(a.v.objCallbacks, fid)
			a.v.info.Stamp++
			continue
		}
		obj := a.objs[fid]
		if obj == nil {
			// Touched without modification (e.g. the object moved by a
			// rename): bump the base object in place.
			obj = a.v.objects[fid]
			if obj == nil {
				continue
			}
		}
		a.v.objects[fid] = obj
		a.v.bumpLocked(fid, client)
		statuses = append(statuses, obj.Status)
	}
	return statuses, a.v.info.Stamp, breaks
}
