package server

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/wire"
)

type world struct {
	sim *simtime.Sim
	net *netsim.Network
	srv *Server
}

func newWorld() *world {
	s := simtime.NewSim(simtime.Epoch1995)
	n := netsim.New(s, 1)
	n.SetDefaults(netsim.Ethernet.Params())
	return &world{sim: s, net: n, srv: New(s, n.Host("server"))}
}

type tclient struct {
	node   *rpc2.Node
	addr   string
	breaks *simtime.Queue[wire.CallbackBreak]
}

func (w *world) client(name string) *tclient {
	c := &tclient{addr: name, breaks: simtime.NewQueue[wire.CallbackBreak](w.sim)}
	c.node = rpc2.NewNode(w.sim, w.net.Host(name), netmon.NewMonitor(w.sim), func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
		v, err := wire.Decode(body)
		if err != nil {
			return nil, err
		}
		if brk, ok := v.(wire.CallbackBreak); ok {
			c.breaks.Put(brk)
			return wire.Encode(wire.CallbackBreakRep{})
		}
		return nil, errors.New("unexpected call")
	}, nil)
	return c
}

func call[Rep any](t *testing.T, c *tclient, req any) Rep {
	t.Helper()
	rep, err := wire.Call[Rep](c.node, "server", req, rpc2.CallOpts{})
	if err != nil {
		t.Fatalf("%T: %v", req, err)
	}
	return rep
}

func TestAdminVolumeAndFiles(t *testing.T) {
	w := newWorld()
	if _, err := w.srv.CreateVolume("usr"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.srv.CreateVolume("usr"); err == nil {
		t.Error("duplicate volume accepted")
	}
	if _, err := w.srv.WriteFile("usr", "hqb/papers/s15.bib", []byte("bib")); err != nil {
		t.Fatal(err)
	}
	data, err := w.srv.ReadFile("usr", "hqb/papers/s15.bib")
	if err != nil || string(data) != "bib" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	st, err := w.srv.Resolve("usr", "hqb/papers")
	if err != nil || st.Type != codafs.Directory {
		t.Fatalf("Resolve dir = %+v, %v", st, err)
	}
	// Overwrite bumps both object version and volume stamp.
	before, _ := w.srv.VolumeStamp("usr")
	st1, _ := w.srv.Resolve("usr", "hqb/papers/s15.bib")
	if _, err := w.srv.WriteFile("usr", "hqb/papers/s15.bib", []byte("bib2")); err != nil {
		t.Fatal(err)
	}
	st2, _ := w.srv.Resolve("usr", "hqb/papers/s15.bib")
	after, _ := w.srv.VolumeStamp("usr")
	if st2.Version <= st1.Version || after <= before {
		t.Error("versions not bumped on overwrite")
	}
}

func TestGetVolumeAndFetchRPC(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("proj")
	w.srv.WriteFile("proj", "src/main.c", []byte("int main(){}"))
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "proj"})
		if gv.Info.Name != "proj" || gv.Root.Type != codafs.Directory {
			t.Fatalf("GetVolume = %+v", gv)
		}
		root := call[wire.FetchRep](t, c, wire.Fetch{FID: gv.Root.FID, WantCallback: true})
		srcFID, ok := root.Object.Children["src"]
		if !ok {
			t.Fatal("root has no src entry")
		}
		dir := call[wire.FetchRep](t, c, wire.Fetch{FID: srcFID, WantCallback: true})
		f := call[wire.FetchRep](t, c, wire.Fetch{FID: dir.Object.Children["main.c"], WantCallback: true})
		if string(f.Object.Data) != "int main(){}" {
			t.Errorf("file data = %q", f.Object.Data)
		}
		ga := call[wire.GetAttrRep](t, c, wire.GetAttr{FID: f.Object.Status.FID})
		if ga.Status.Length != int64(len("int main(){}")) {
			t.Errorf("GetAttr length = %d", ga.Status.Length)
		}
	})
}

func TestObjectAndVolumeCallbackBreaks(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("proj")
	w.srv.WriteFile("proj", "f.c", []byte("v1"))
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "proj"})
		root := call[wire.FetchRep](t, c, wire.Fetch{FID: gv.Root.FID, WantCallback: true})
		fid := root.Object.Children["f.c"]
		call[wire.FetchRep](t, c, wire.Fetch{FID: fid, WantCallback: true})
		call[wire.GetVolumeStampRep](t, c, wire.GetVolumeStamp{Volume: gv.Info.ID})

		// Another writer updates the file: the client must get an object
		// break for f.c and a volume break for proj.
		w.srv.WriteFile("proj", "f.c", []byte("v2"))
		gotObj, gotVol := false, false
		deadline := w.sim.Now().Add(time.Minute)
		for (!gotObj || !gotVol) && w.sim.Now().Before(deadline) {
			brk, ok := c.breaks.GetTimeout(10 * time.Second)
			if !ok {
				break
			}
			for _, f := range brk.FIDs {
				if f == fid {
					gotObj = true
				}
			}
			for _, vID := range brk.Volumes {
				if vID == gv.Info.ID {
					gotVol = true
				}
			}
		}
		if !gotObj || !gotVol {
			t.Errorf("breaks: obj=%v vol=%v", gotObj, gotVol)
		}
		if w.srv.Stats().BreaksSent == 0 {
			t.Error("BreaksSent stat not counted")
		}
	})
}

func TestValidateVolumes(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("a")
	w.srv.CreateVolume("b")
	w.srv.WriteFile("b", "x", []byte("1"))
	w.sim.Run(func() {
		c := w.client("c1")
		ga := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "a"})
		gb := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "b"})

		// Stale stamp for b, current for a, one unknown volume.
		rep := call[wire.ValidateVolumesRep](t, c, wire.ValidateVolumes{Volumes: []wire.VolStampPair{
			{ID: ga.Info.ID, Stamp: ga.Info.Stamp},
			{ID: gb.Info.ID, Stamp: gb.Info.Stamp - 1},
			{ID: 999, Stamp: 1},
		}})
		if !rep.Valid[0] || rep.Valid[1] || rep.Valid[2] {
			t.Errorf("Valid = %v, want [true false false]", rep.Valid)
		}
		if rep.Stamps[1] != gb.Info.Stamp {
			t.Errorf("stale volume: got stamp %d, want %d", rep.Stamps[1], gb.Info.Stamp)
		}

		// A valid validation granted a volume callback: update volume a
		// and expect a break.
		w.srv.WriteFile("a", "y", []byte("2"))
		brk, ok := c.breaks.GetTimeout(time.Minute)
		if !ok {
			t.Fatal("no break after validated volume updated")
		}
		found := false
		for _, id := range brk.Volumes {
			if id == ga.Info.ID {
				found = true
			}
		}
		if !found {
			t.Error("break did not name volume a")
		}
	})
}

func clientFID(vol codafs.VolumeID, n uint64) codafs.FID {
	return codafs.FID{Volume: vol, Vnode: 1<<40 + n, Unique: 1<<40 + n}
}

func TestConnectedMutations(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "v"})
		vol := gv.Info.ID
		root := gv.Root.FID

		mk := call[wire.MakeObjectRep](t, c, wire.MakeObject{
			Parent: root, Name: "f", FID: clientFID(vol, 1), Type: codafs.File, Owner: "hqb",
		})
		if mk.Status.Type != codafs.File || mk.ParentStatus.FID != root {
			t.Fatalf("MakeObject = %+v", mk)
		}
		st := call[wire.MutateRep](t, c, wire.StoreOp{
			FID: mk.Status.FID, Data: []byte("hello"), PrevVersion: mk.Status.Version,
		})
		if st.Status.Length != 5 {
			t.Errorf("store length = %d", st.Status.Length)
		}

		// Stale-version store from another client conflicts.
		c2 := w.client("c2")
		_, err := wire.Call[wire.MutateRep](c2.node, "server", wire.StoreOp{
			FID: mk.Status.FID, Data: []byte("clobber"), PrevVersion: mk.Status.Version,
		}, rpc2.CallOpts{})
		var re *rpc2.RemoteError
		if !errors.As(err, &re) || !strings.Contains(re.Msg, "conflict") {
			t.Errorf("stale store: %v, want conflict", err)
		}

		// SetAttr, Mkdir, Rename, Link, Remove.
		call[wire.MutateRep](t, c, wire.SetAttrOp{FID: mk.Status.FID, Mode: 0600, PrevVersion: st.Status.Version})
		md := call[wire.MakeObjectRep](t, c, wire.MakeObject{
			Parent: root, Name: "d", FID: clientFID(vol, 2), Type: codafs.Directory,
		})
		call[wire.MutateRep](t, c, wire.RenameOp{
			Parent: root, Name: "f", NewParent: md.Status.FID, NewName: "g", FID: mk.Status.FID,
		})
		if _, err := w.srv.ReadFile("v", "d/g"); err != nil {
			t.Errorf("rename lost file: %v", err)
		}
		call[wire.MutateRep](t, c, wire.LinkOp{Parent: root, Name: "hard", FID: mk.Status.FID})
		call[wire.MutateRep](t, c, wire.RemoveOp{Parent: md.Status.FID, Name: "g", FID: mk.Status.FID})
		// Still reachable through the hard link.
		if _, err := w.srv.ReadFile("v", "hard"); err != nil {
			t.Errorf("hard link broken after remove: %v", err)
		}
		call[wire.MutateRep](t, c, wire.RemoveOp{Parent: root, Name: "hard", FID: mk.Status.FID})
		call[wire.MutateRep](t, c, wire.RemoveOp{Parent: root, Name: "d", FID: md.Status.FID, Rmdir: true})
		if _, err := w.srv.Resolve("v", "d"); err == nil {
			t.Error("rmdir left directory behind")
		}
	})
}

func reintegrateRecords(vol codafs.VolumeID, root codafs.FID) []cml.Record {
	return []cml.Record{
		{Kind: cml.Create, FID: clientFID(vol, 10), Parent: root, Name: "notes.txt", Owner: "hqb"},
		{Kind: cml.Store, FID: clientFID(vol, 10), Data: []byte("trip notes"), Length: 10},
		{Kind: cml.Mkdir, FID: clientFID(vol, 11), Parent: root, Name: "photos"},
	}
}

func TestReintegrateSuccess(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "v"})
		rep := call[wire.ReintegrateRep](t, c, wire.Reintegrate{
			Volume: gv.Info.ID, Records: reintegrateRecords(gv.Info.ID, gv.Root.FID),
		})
		if !rep.Applied {
			t.Fatalf("not applied: %+v", rep.Results)
		}
		if data, err := w.srv.ReadFile("v", "notes.txt"); err != nil || string(data) != "trip notes" {
			t.Errorf("reintegrated file = %q, %v", data, err)
		}
		if len(rep.Statuses) == 0 || rep.VolStamp == 0 {
			t.Error("reply missing statuses/stamp")
		}
		if w.srv.Stats().RecordsApplied != 3 {
			t.Errorf("RecordsApplied = %d", w.srv.Stats().RecordsApplied)
		}
	})
}

func TestReintegrateAtomicOnConflict(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("v")
	w.srv.WriteFile("v", "taken", []byte("already here"))
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "v"})
		stampBefore, _ := w.srv.VolumeStamp("v")
		recs := []cml.Record{
			{Kind: cml.Create, FID: clientFID(gv.Info.ID, 20), Parent: gv.Root.FID, Name: "ok.txt"},
			// Conflicts: name exists on server.
			{Kind: cml.Create, FID: clientFID(gv.Info.ID, 21), Parent: gv.Root.FID, Name: "taken"},
		}
		rep := call[wire.ReintegrateRep](t, c, wire.Reintegrate{Volume: gv.Info.ID, Records: recs})
		if rep.Applied {
			t.Fatal("conflicting chunk applied")
		}
		if !rep.Results[0].OK || !rep.Results[1].Conflict {
			t.Errorf("results = %+v", rep.Results)
		}
		// Atomicity: even the non-conflicting record left no trace.
		if _, err := w.srv.Resolve("v", "ok.txt"); err == nil {
			t.Error("partial reintegration visible")
		}
		if stampAfter, _ := w.srv.VolumeStamp("v"); stampAfter != stampBefore {
			t.Error("volume stamp moved on failed reintegration")
		}
	})
}

func TestReintegrateStoreIDRuleAcrossChunks(t *testing.T) {
	// A client's second chunk updates an object its first chunk already
	// updated; PrevVersion is stale but the divergence is its own work.
	w := newWorld()
	w.srv.CreateVolume("v")
	w.srv.WriteFile("v", "doc", []byte("v0"))
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "v"})
		st, _ := w.srv.Resolve("v", "doc")

		chunk1 := []cml.Record{{Kind: cml.Store, FID: st.FID, Data: []byte("v1"), Length: 2, PrevVersion: st.Version}}
		rep1 := call[wire.ReintegrateRep](t, c, wire.Reintegrate{Volume: gv.Info.ID, Records: chunk1})
		if !rep1.Applied {
			t.Fatalf("chunk1: %+v", rep1.Results)
		}
		// Same stale PrevVersion as chunk1 (logged before chunk1 shipped).
		chunk2 := []cml.Record{{Kind: cml.Store, FID: st.FID, Data: []byte("v2"), Length: 2, PrevVersion: st.Version}}
		rep2 := call[wire.ReintegrateRep](t, c, wire.Reintegrate{Volume: gv.Info.ID, Records: chunk2})
		if !rep2.Applied {
			t.Fatalf("chunk2 rejected: %+v — storeid rule broken", rep2.Results)
		}

		// But after ANOTHER client writes, the same trick must conflict.
		w.srv.WriteFile("v", "doc", []byte("intruder"))
		chunk3 := []cml.Record{{Kind: cml.Store, FID: st.FID, Data: []byte("v3"), Length: 2, PrevVersion: st.Version}}
		rep3 := call[wire.ReintegrateRep](t, c, wire.Reintegrate{Volume: gv.Info.ID, Records: chunk3})
		if rep3.Applied {
			t.Error("update/update conflict not detected")
		}
	})
}

func TestFragmentedStoreReintegration(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("v")
	w.srv.WriteFile("v", "big", nil)
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "v"})
		st, _ := w.srv.Resolve("v", "big")

		content := bytes.Repeat([]byte("x"), 10_000)
		const xfer = 7
		// Ship in three fragments, with a duplicate resend in the middle.
		frags := [][2]int{{0, 4000}, {4000, 8000}, {4000, 8000}, {8000, 10_000}}
		var received int64
		for _, f := range frags {
			rep := call[wire.PutFragmentRep](t, c, wire.PutFragment{
				Transfer: xfer, Offset: int64(f[0]), Total: int64(len(content)),
				Data: content[f[0]:f[1]],
			})
			received = rep.Received
		}
		if received != int64(len(content)) {
			t.Fatalf("received = %d, want %d", received, len(content))
		}

		rep := call[wire.ReintegrateRep](t, c, wire.Reintegrate{
			Volume: gv.Info.ID,
			Records: []cml.Record{{
				Kind: cml.Store, FID: st.FID, PrevVersion: st.Version, Length: int64(len(content)),
			}},
			Fragments: map[int]uint64{0: xfer},
		})
		if !rep.Applied {
			t.Fatalf("fragmented store rejected: %+v", rep.Results)
		}
		got, _ := w.srv.ReadFile("v", "big")
		if !bytes.Equal(got, content) {
			t.Errorf("assembled file wrong: %d bytes", len(got))
		}
	})
}

func TestFragmentGapReportsResumePoint(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("v")
	w.sim.Run(func() {
		c := w.client("c1")
		rep := call[wire.PutFragmentRep](t, c, wire.PutFragment{Transfer: 9, Offset: 0, Total: 100, Data: make([]byte, 40)})
		if rep.Received != 40 {
			t.Fatalf("Received = %d", rep.Received)
		}
		// A gap: server reports where to resume.
		rep = call[wire.PutFragmentRep](t, c, wire.PutFragment{Transfer: 9, Offset: 80, Total: 100, Data: make([]byte, 20)})
		if rep.Received != 40 {
			t.Errorf("gap accepted? Received = %d, want 40", rep.Received)
		}
	})
}

func TestReintegrateIncompleteFragmentRejected(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("v")
	w.srv.WriteFile("v", "big", nil)
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "v"})
		st, _ := w.srv.Resolve("v", "big")
		call[wire.PutFragmentRep](t, c, wire.PutFragment{Transfer: 5, Offset: 0, Total: 100, Data: make([]byte, 50)})
		_, err := wire.Call[wire.ReintegrateRep](c.node, "server", wire.Reintegrate{
			Volume:    gv.Info.ID,
			Records:   []cml.Record{{Kind: cml.Store, FID: st.FID, PrevVersion: st.Version, Length: 100}},
			Fragments: map[int]uint64{0: 5},
		}, rpc2.CallOpts{})
		if err == nil {
			t.Error("reintegrate with incomplete fragment succeeded")
		}
	})
}

func TestListVolumes(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("a")
	w.srv.CreateVolume("b")
	w.sim.Run(func() {
		c := w.client("c1")
		rep := call[wire.ListVolumesRep](t, c, wire.ListVolumes{})
		if len(rep.Infos) != 2 {
			t.Errorf("ListVolumes = %d entries", len(rep.Infos))
		}
	})
}

func TestUpdaterKeepsOwnVolumeCallback(t *testing.T) {
	// A client updating through the server must not have its own volume
	// callback broken (it learns the new stamp from the reply).
	w := newWorld()
	w.srv.CreateVolume("v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "v"})
		call[wire.GetVolumeStampRep](t, c, wire.GetVolumeStamp{Volume: gv.Info.ID})
		call[wire.MakeObjectRep](t, c, wire.MakeObject{
			Parent: gv.Root.FID, Name: "mine", FID: clientFID(gv.Info.ID, 1), Type: codafs.File,
		})
		if _, ok := c.breaks.GetTimeout(30 * time.Second); ok {
			t.Error("client received a break for its own update")
		}
	})
}

// callOpts returns default options for ad-hoc calls in tests.
func callOpts() rpc2.CallOpts { return rpc2.CallOpts{} }
