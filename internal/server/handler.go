package server

import (
	"fmt"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/delta"
	"repro/internal/wire"
)

// handle dispatches one incoming RPC. Connected-mode mutations and
// reintegration share the applyCtx machinery, so conflict semantics are
// identical whichever path an update takes to the server.
func (s *Server) handle(src string, body []byte) ([]byte, error) {
	v, err := wire.Decode(body)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Calls++
	s.mu.Unlock()

	var rep any
	switch req := v.(type) {
	case wire.ConnectClient:
		s.mu.Lock()
		s.clients[src] = true
		s.mu.Unlock()
		rep = wire.ConnectClientRep{ServerTime: s.clock.Now()}

	case wire.GetVolume:
		rep, err = s.getVolume(req)
	case wire.ListVolumes:
		rep = s.listVolumes()
	case wire.GetAttr:
		rep, err = s.getAttr(src, req)
	case wire.Fetch:
		rep, err = s.fetch(src, req)
	case wire.ValidateVolumes:
		rep = s.validateVolumes(src, req)
	case wire.ValidateObjects:
		rep = s.validateObjects(src, req)
	case wire.GetVolumeStamp:
		rep, err = s.getVolumeStamp(src, req)

	case wire.StoreOp:
		rep, err = s.mutate(src, cml.Record{
			Kind: cml.Store, FID: req.FID, Data: req.Data,
			Length: int64(len(req.Data)), PrevVersion: req.PrevVersion,
		}, req.FID)
	case wire.SetAttrOp:
		rep, err = s.mutate(src, cml.Record{
			Kind: cml.SetAttr, FID: req.FID, Mode: req.Mode,
			ModTime: req.ModTime, PrevVersion: req.PrevVersion,
		}, req.FID)
	case wire.MakeObject:
		rep, err = s.makeObject(src, req)
	case wire.RemoveOp:
		kind := cml.Remove
		if req.Rmdir {
			kind = cml.Rmdir
		}
		rep, err = s.mutate(src, cml.Record{
			Kind: kind, FID: req.FID, Parent: req.Parent, Name: req.Name,
		}, req.Parent)
	case wire.RenameOp:
		rep, err = s.mutate(src, cml.Record{
			Kind: cml.Rename, FID: req.FID, Parent: req.Parent, Name: req.Name,
			NewParent: req.NewParent, NewName: req.NewName,
		}, req.FID)
	case wire.LinkOp:
		rep, err = s.mutate(src, cml.Record{
			Kind: cml.Link, FID: req.FID, Parent: req.Parent, Name: req.Name,
		}, req.FID)

	case wire.Reintegrate:
		rep, err = s.reintegrate(src, req)
	case wire.PutFragment:
		rep, err = s.putFragment(src, req)

	default:
		err = fmt.Errorf("server: unknown request %T", v)
	}
	if err != nil {
		return nil, err
	}
	return wire.Encode(rep)
}

func (s *Server) getVolume(req wire.GetVolume) (wire.GetVolumeRep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byName[req.Name]
	if !ok {
		return wire.GetVolumeRep{}, fmt.Errorf("no volume %q", req.Name)
	}
	v := s.volumes[id]
	return wire.GetVolumeRep{Info: v.info, Root: v.objects[v.root].Status}, nil
}

func (s *Server) listVolumes() wire.ListVolumesRep {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep wire.ListVolumesRep
	for _, v := range s.volumes {
		rep.Infos = append(rep.Infos, v.info)
	}
	return rep
}

func (s *Server) getAttr(src string, req wire.GetAttr) (wire.GetAttrRep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, o, err := s.lookupLocked(req.FID)
	if err != nil {
		return wire.GetAttrRep{}, err
	}
	if req.WantCallback {
		s.registerObjCallbackLocked(v, req.FID, src)
	}
	return wire.GetAttrRep{Status: o.Status}, nil
}

func (s *Server) fetch(src string, req wire.Fetch) (wire.FetchRep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, o, err := s.lookupLocked(req.FID)
	if err != nil {
		return wire.FetchRep{}, err
	}
	if req.WantCallback {
		s.registerObjCallbackLocked(v, req.FID, src)
	}
	return wire.FetchRep{Object: *o.Clone()}, nil
}

func (s *Server) validateVolumes(src string, req wire.ValidateVolumes) wire.ValidateVolumesRep {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := wire.ValidateVolumesRep{
		Valid:  make([]bool, len(req.Volumes)),
		Stamps: make([]uint64, len(req.Volumes)),
	}
	for i, pair := range req.Volumes {
		v, ok := s.volumes[pair.ID]
		if !ok {
			continue
		}
		rep.Stamps[i] = v.info.Stamp
		if v.info.Stamp == pair.Stamp {
			rep.Valid[i] = true
			v.volCallbacks[src] = true // granted as a side effect (§4.2.2)
		}
	}
	return rep
}

func (s *Server) validateObjects(src string, req wire.ValidateObjects) wire.ValidateObjectsRep {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := wire.ValidateObjectsRep{
		Valid:    make([]bool, len(req.Objects)),
		Statuses: make([]codafs.Status, len(req.Objects)),
	}
	for i, fv := range req.Objects {
		v, ok := s.volumes[fv.FID.Volume]
		if !ok {
			continue
		}
		o, ok := v.objects[fv.FID]
		if !ok {
			continue // removed: zero status signals the client to drop it
		}
		rep.Statuses[i] = o.Status
		if o.Status.Version == fv.Version {
			rep.Valid[i] = true
			s.registerObjCallbackLocked(v, fv.FID, src)
		}
	}
	return rep
}

func (s *Server) getVolumeStamp(src string, req wire.GetVolumeStamp) (wire.GetVolumeStampRep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[req.Volume]
	if !ok {
		return wire.GetVolumeStampRep{}, fmt.Errorf("no volume %d", req.Volume)
	}
	v.volCallbacks[src] = true
	return wire.GetVolumeStampRep{Stamp: v.info.Stamp}, nil
}

func (s *Server) lookupLocked(fid codafs.FID) (*volume, *codafs.Object, error) {
	v, ok := s.volumes[fid.Volume]
	if !ok {
		return nil, nil, fmt.Errorf("no volume %d", fid.Volume)
	}
	o, ok := v.objects[fid]
	if !ok {
		return nil, nil, fmt.Errorf("no object %s", fid)
	}
	return v, o, nil
}

func (s *Server) registerObjCallbackLocked(v *volume, fid codafs.FID, client string) {
	cbs := v.objCallbacks[fid]
	if cbs == nil {
		cbs = make(map[string]bool)
		v.objCallbacks[fid] = cbs
	}
	cbs[client] = true
}

// mutate runs one connected-mode update through the shared apply machinery.
// repFID selects which touched object's status is returned as Status.
func (s *Server) mutate(src string, rec cml.Record, repFID codafs.FID) (wire.MutateRep, error) {
	s.mu.Lock()
	v, ok := s.volumes[rec.FID.Volume]
	if !ok {
		s.mu.Unlock()
		return wire.MutateRep{}, fmt.Errorf("no volume %d", rec.FID.Volume)
	}
	a := newApply(v)
	res := s.applyRecord(a, &rec, src)
	if !res.OK {
		s.mu.Unlock()
		return wire.MutateRep{}, fmt.Errorf("%s", res.Msg)
	}
	statuses, stamp, breaks := s.commitApply(a, src)
	s.stats.RecordsApplied++
	rep := wire.MutateRep{VolStamp: stamp}
	for _, st := range statuses {
		if st.FID == repFID {
			rep.Status = st
		}
		if st.FID == rec.Parent {
			rep.ParentStatus = st
		}
	}
	s.mu.Unlock()
	s.dispatchBreaks(breaks)
	return rep, nil
}

func (s *Server) makeObject(src string, req wire.MakeObject) (wire.MakeObjectRep, error) {
	kind := cml.Create
	switch req.Type {
	case codafs.Directory:
		kind = cml.Mkdir
	case codafs.Symlink:
		kind = cml.MakeSymlink
	}
	rec := cml.Record{
		Kind: kind, FID: req.FID, Parent: req.Parent, Name: req.Name,
		Target: req.Target, Mode: req.Mode, Owner: req.Owner,
	}
	mrep, err := s.mutate(src, rec, req.FID)
	if err != nil {
		return wire.MakeObjectRep{}, err
	}
	return wire.MakeObjectRep{
		Status:       mrep.Status,
		ParentStatus: mrep.ParentStatus,
		VolStamp:     mrep.VolStamp,
	}, nil
}

func (s *Server) putFragment(src string, req wire.PutFragment) (wire.PutFragmentRep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := fragKey{client: src, transfer: req.Transfer}
	fb := s.frags[k]
	if fb == nil {
		fb = &fragBuf{total: req.Total}
		s.frags[k] = fb
	}
	have := int64(len(fb.data))
	switch {
	case req.Offset < have:
		// Duplicate or overlapping resend; keep what we have.
	case req.Offset == have:
		fb.data = append(fb.data, req.Data...)
	default:
		// Gap: tell the client where to resume (§4.3.5).
	}
	return wire.PutFragmentRep{Received: int64(len(fb.data))}, nil
}

func (s *Server) reintegrate(src string, req wire.Reintegrate) (wire.ReintegrateRep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[req.Volume]
	if !ok {
		return wire.ReintegrateRep{}, fmt.Errorf("no volume %d", req.Volume)
	}
	s.stats.Reintegrations++

	// Attach fragment data. The server does not logically attempt
	// reintegration until whole files have arrived (§4.3.5).
	recs := make([]cml.Record, len(req.Records))
	copy(recs, req.Records)
	var usedFrags []fragKey
	for idx, tid := range req.Fragments {
		if idx < 0 || idx >= len(recs) {
			return wire.ReintegrateRep{}, fmt.Errorf("fragment index %d out of range", idx)
		}
		k := fragKey{client: src, transfer: tid}
		fb := s.frags[k]
		if fb == nil || int64(len(fb.data)) != fb.total {
			return wire.ReintegrateRep{}, fmt.Errorf("fragment transfer %d incomplete", tid)
		}
		recs[idx].Data = fb.data
		recs[idx].Length = fb.total
		usedFrags = append(usedFrags, k)
	}

	rep := wire.ReintegrateRep{Results: make([]wire.RecordResult, len(recs))}

	// Reconstruct delta-shipped stores against the server's current
	// contents (§4.1's "ship file differences" enhancement). A base
	// mismatch fails the chunk atomically; the client retries with full
	// contents.
	for idx, dd := range req.Deltas {
		if idx < 0 || idx >= len(recs) || recs[idx].Kind != cml.Store {
			return wire.ReintegrateRep{}, fmt.Errorf("delta index %d invalid", idx)
		}
		obj, ok := v.objects[recs[idx].FID]
		if !ok {
			rep.Results[idx] = wire.RecordResult{Conflict: true, Msg: "delta store: object removed on server"}
			rep.VolStamp = v.info.Stamp
			s.stats.ReintegrationFails++
			return rep, nil
		}
		newData, err := delta.Apply(obj.Data, dd)
		if err != nil {
			rep.Results[idx] = wire.RecordResult{DeltaFailed: true, Msg: err.Error()}
			rep.VolStamp = v.info.Stamp
			s.stats.ReintegrationFails++
			return rep, nil
		}
		recs[idx].Data = newData
		recs[idx].Length = int64(len(newData))
	}

	a := newApply(v)
	ok = true
	for i := range recs {
		if !ok {
			rep.Results[i] = wire.RecordResult{Msg: "not attempted"}
			continue
		}
		res := s.applyRecord(a, &recs[i], src)
		rep.Results[i] = res
		if !res.OK {
			ok = false
			if res.Conflict {
				s.stats.Conflicts++
			}
		}
	}
	if !ok {
		// Atomicity: nothing applied, overlay dropped, fragments kept
		// so a retry need not reship them.
		s.stats.ReintegrationFails++
		rep.VolStamp = v.info.Stamp
		return rep, nil
	}
	statuses, stamp, breaks := s.commitApply(a, src)
	s.stats.RecordsApplied += int64(len(recs))
	for _, k := range usedFrags {
		delete(s.frags, k)
	}
	rep.Applied = true
	rep.Statuses = statuses
	rep.VolStamp = stamp

	// Deliver breaks without holding the lock for the network part.
	s.mu.Unlock()
	s.dispatchBreaks(breaks)
	s.mu.Lock() // re-acquire for the deferred unlock
	return rep, nil
}
