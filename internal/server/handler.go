package server

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/delta"
	"repro/internal/obs"
	"repro/internal/wire"
)

// handle dispatches one incoming RPC. Connected-mode mutations and
// reintegration share the applyCtx machinery, so conflict semantics are
// identical whichever path an update takes to the server.
//
// Each handler resolves its request to a volume under the registry lock,
// then executes entirely inside that volume's domain, so requests for
// distinct volumes proceed in parallel under rpc2's concurrent dispatch.
func (s *Server) handle(src string, sc obs.SpanContext, body []byte) ([]byte, error) {
	v, err := wire.Decode(body)
	if err != nil {
		return nil, err
	}
	s.stats.calls.Add(1)
	s.met.calls.Inc()
	s.observeOp(strings.TrimPrefix(fmt.Sprintf("%T", v), "wire."))

	var rep any
	switch req := v.(type) {
	case wire.ConnectClient:
		s.clientsMu.Lock()
		s.clients[src] = true
		s.clientsMu.Unlock()
		rep = wire.ConnectClientRep{ServerTime: s.clock.Now()}

	case wire.GetVolume:
		rep, err = s.getVolume(req)
	case wire.ListVolumes:
		rep = s.listVolumes()
	case wire.GetAttr:
		rep, err = s.getAttr(src, req)
	case wire.Fetch:
		rep, err = s.fetch(src, req)
	case wire.ValidateVolumes:
		rep = s.validateVolumes(src, req)
	case wire.ValidateObjects:
		rep = s.validateObjects(src, req)
	case wire.GetVolumeStamp:
		rep, err = s.getVolumeStamp(src, req)

	case wire.StoreOp:
		rep, err = s.mutate(src, sc, cml.Record{
			Kind: cml.Store, FID: req.FID, Data: req.Data,
			Length: int64(len(req.Data)), PrevVersion: req.PrevVersion,
		}, req.FID)
	case wire.SetAttrOp:
		rep, err = s.mutate(src, sc, cml.Record{
			Kind: cml.SetAttr, FID: req.FID, Mode: req.Mode,
			ModTime: req.ModTime, PrevVersion: req.PrevVersion,
		}, req.FID)
	case wire.MakeObject:
		rep, err = s.makeObject(src, sc, req)
	case wire.RemoveOp:
		kind := cml.Remove
		if req.Rmdir {
			kind = cml.Rmdir
		}
		rep, err = s.mutate(src, sc, cml.Record{
			Kind: kind, FID: req.FID, Parent: req.Parent, Name: req.Name,
		}, req.Parent)
	case wire.RenameOp:
		rep, err = s.mutate(src, sc, cml.Record{
			Kind: cml.Rename, FID: req.FID, Parent: req.Parent, Name: req.Name,
			NewParent: req.NewParent, NewName: req.NewName,
		}, req.FID)
	case wire.LinkOp:
		rep, err = s.mutate(src, sc, cml.Record{
			Kind: cml.Link, FID: req.FID, Parent: req.Parent, Name: req.Name,
		}, req.FID)

	case wire.Reintegrate:
		rep, err = s.reintegrate(src, sc, req)
	case wire.PutFragment:
		rep, err = s.putFragment(src, req)

	case wire.ShipLog:
		rep, err = s.shipLog(src, sc, req)
	case wire.FetchLog:
		rep, err = s.fetchLog(req)

	default:
		err = fmt.Errorf("server: unknown request %T", v)
	}
	if err != nil {
		return nil, err
	}
	return wire.Encode(rep)
}

func (s *Server) getVolume(req wire.GetVolume) (wire.GetVolumeRep, error) {
	v, ok := s.volByName(req.Name)
	if !ok {
		return wire.GetVolumeRep{}, fmt.Errorf("no volume %q", req.Name)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return wire.GetVolumeRep{Info: v.info, Root: v.objects[v.root].Status}, nil
}

func (s *Server) listVolumes() wire.ListVolumesRep {
	var rep wire.ListVolumesRep
	// Ascending ID order: one volume lock at a time, and the reply is
	// deterministic (the registry map's range order is not).
	for _, v := range s.volumesByID() {
		v.mu.Lock()
		rep.Infos = append(rep.Infos, v.info)
		v.mu.Unlock()
	}
	return rep
}

func (s *Server) getAttr(src string, req wire.GetAttr) (wire.GetAttrRep, error) {
	v, ok := s.volByID(req.FID.Volume)
	if !ok {
		return wire.GetAttrRep{}, fmt.Errorf("no volume %d", req.FID.Volume)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok := v.objects[req.FID]
	if !ok {
		return wire.GetAttrRep{}, fmt.Errorf("no object %s", req.FID)
	}
	if req.WantCallback {
		v.registerObjCallbackLocked(req.FID, src)
	}
	return wire.GetAttrRep{Status: o.Status}, nil
}

func (s *Server) fetch(src string, req wire.Fetch) (wire.FetchRep, error) {
	v, ok := s.volByID(req.FID.Volume)
	if !ok {
		return wire.FetchRep{}, fmt.Errorf("no volume %d", req.FID.Volume)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok := v.objects[req.FID]
	if !ok {
		return wire.FetchRep{}, fmt.Errorf("no object %s", req.FID)
	}
	if req.WantCallback {
		v.registerObjCallbackLocked(req.FID, src)
	}
	return wire.FetchRep{Object: *o.Clone()}, nil
}

func (s *Server) validateVolumes(src string, req wire.ValidateVolumes) wire.ValidateVolumesRep {
	rep := wire.ValidateVolumesRep{
		Valid:  make([]bool, len(req.Volumes)),
		Stamps: make([]uint64, len(req.Volumes)),
	}
	for i, pair := range req.Volumes {
		v, ok := s.volByID(pair.ID)
		if !ok {
			continue
		}
		v.mu.Lock()
		rep.Stamps[i] = v.info.Stamp
		if v.info.Stamp == pair.Stamp {
			rep.Valid[i] = true
			v.volCallbacks[src] = true // granted as a side effect (§4.2.2)
		}
		v.mu.Unlock()
	}
	return rep
}

func (s *Server) validateObjects(src string, req wire.ValidateObjects) wire.ValidateObjectsRep {
	rep := wire.ValidateObjectsRep{
		Valid:    make([]bool, len(req.Objects)),
		Statuses: make([]codafs.Status, len(req.Objects)),
	}
	for i, fv := range req.Objects {
		v, ok := s.volByID(fv.FID.Volume)
		if !ok {
			continue
		}
		v.mu.Lock()
		o, ok := v.objects[fv.FID]
		if !ok {
			v.mu.Unlock()
			continue // removed: zero status signals the client to drop it
		}
		rep.Statuses[i] = o.Status
		if o.Status.Version == fv.Version {
			rep.Valid[i] = true
			v.registerObjCallbackLocked(fv.FID, src)
		}
		v.mu.Unlock()
	}
	return rep
}

func (s *Server) getVolumeStamp(src string, req wire.GetVolumeStamp) (wire.GetVolumeStampRep, error) {
	v, ok := s.volByID(req.Volume)
	if !ok {
		return wire.GetVolumeStampRep{}, fmt.Errorf("no volume %d", req.Volume)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.volCallbacks[src] = true
	return wire.GetVolumeStampRep{Stamp: v.info.Stamp}, nil
}

// mutate runs one connected-mode update through the shared apply machinery.
// repFID selects which touched object's status is returned as Status.
// On a traced call the validate/journal/commit sequence is one
// server_apply span, with the journal append (and its fsync) as children.
func (s *Server) mutate(src string, sc obs.SpanContext, rec cml.Record, repFID codafs.FID) (wire.MutateRep, error) {
	v, ok := s.volByID(rec.FID.Volume)
	if !ok {
		return wire.MutateRep{}, fmt.Errorf("no volume %d", rec.FID.Volume)
	}
	s.observeVolOp(v)
	applyCtx := obs.SpanContext{}
	if sc.Valid() {
		sp := s.obs.StartSpan(s.addr, "server_apply", sc)
		applyCtx = sp.Context()
		defer sp.End()
	}
	s.lockVolume(v)
	a := newApply(v)
	res := applyRecord(a, &rec, src)
	if !res.OK {
		v.mu.Unlock()
		return wire.MutateRep{}, fmt.Errorf("%s", res.Msg)
	}
	// Journal before commit: the update must be durable before it becomes
	// visible (or acknowledged). On journal failure nothing commits.
	if err := journalBatchLocked(v, src, []cml.Record{rec}, applyCtx); err != nil {
		v.mu.Unlock()
		return wire.MutateRep{}, fmt.Errorf("journal: %w", err)
	}
	statuses, stamp, breaks := commitApply(a, src)
	v.mu.Unlock()
	s.stats.recordsApplied.Add(1)
	s.met.recordsApplied.Inc()
	rep := wire.MutateRep{VolStamp: stamp}
	for _, st := range statuses {
		if st.FID == repFID {
			rep.Status = st
		}
		if st.FID == rec.Parent {
			rep.ParentStatus = st
		}
	}
	s.dispatchBreaks(breaks)
	s.shipToPeers(v, sc)
	return rep, nil
}

func (s *Server) makeObject(src string, sc obs.SpanContext, req wire.MakeObject) (wire.MakeObjectRep, error) {
	kind := cml.Create
	switch req.Type {
	case codafs.Directory:
		kind = cml.Mkdir
	case codafs.Symlink:
		kind = cml.MakeSymlink
	}
	rec := cml.Record{
		Kind: kind, FID: req.FID, Parent: req.Parent, Name: req.Name,
		Target: req.Target, Mode: req.Mode, Owner: req.Owner,
	}
	mrep, err := s.mutate(src, sc, rec, req.FID)
	if err != nil {
		return wire.MakeObjectRep{}, err
	}
	return wire.MakeObjectRep{
		Status:       mrep.Status,
		ParentStatus: mrep.ParentStatus,
		VolStamp:     mrep.VolStamp,
	}, nil
}

func (s *Server) putFragment(src string, req wire.PutFragment) (wire.PutFragmentRep, error) {
	s.fragMu.Lock()
	defer s.fragMu.Unlock()
	k := fragKey{client: src, transfer: req.Transfer}
	fb := s.frags[k]
	if fb == nil {
		fb = &fragBuf{total: req.Total}
		s.frags[k] = fb
	}
	fb.lastActive = s.clock.Now()
	have := int64(len(fb.data))
	switch {
	case req.Offset < have:
		// Duplicate or overlapping resend; keep what we have.
	case req.Offset == have:
		fb.data = append(fb.data, req.Data...)
	default:
		// Gap: tell the client where to resume (§4.3.5).
	}
	return wire.PutFragmentRep{Received: int64(len(fb.data))}, nil
}

func (s *Server) reintegrate(src string, sc obs.SpanContext, req wire.Reintegrate) (wire.ReintegrateRep, error) {
	v, ok := s.volByID(req.Volume)
	if !ok {
		return wire.ReintegrateRep{}, fmt.Errorf("no volume %d", req.Volume)
	}
	s.stats.reintegrations.Add(1)
	s.met.reintegrations.Inc()
	s.observeVolOp(v)

	// One traced chunk is one server_apply span: fragment attach, dedup,
	// delta reconstruction, validation, journaling, and commit.
	applyCtx := obs.SpanContext{}
	if sc.Valid() {
		sp := s.obs.StartSpan(s.addr, "server_apply", sc)
		applyCtx = sp.Context()
		defer sp.End()
	}

	// Attach fragment data under the fragment lock, before entering the
	// volume domain (fragMu and volume locks never nest). The server does
	// not logically attempt reintegration until whole files have arrived
	// (§4.3.5). Attached slices are capped at their completed length, so
	// a concurrent resend appending to the same buffer reallocates rather
	// than aliasing the data being applied.
	recs := make([]cml.Record, len(req.Records))
	copy(recs, req.Records)
	var usedFrags []fragKey
	s.fragMu.Lock()
	for idx, tid := range req.Fragments {
		if idx < 0 || idx >= len(recs) {
			s.fragMu.Unlock()
			return wire.ReintegrateRep{}, fmt.Errorf("fragment index %d out of range", idx)
		}
		k := fragKey{client: src, transfer: tid}
		fb := s.frags[k]
		if fb == nil || int64(len(fb.data)) != fb.total {
			s.fragMu.Unlock()
			return wire.ReintegrateRep{}, fmt.Errorf("fragment transfer %d incomplete", tid)
		}
		recs[idx].Data = fb.data[:fb.total:fb.total]
		recs[idx].Length = fb.total
		usedFrags = append(usedFrags, k)
	}
	s.fragMu.Unlock()

	rep := wire.ReintegrateRep{Results: make([]wire.RecordResult, len(recs))}

	s.lockVolume(v)

	// Failover retransmit dedup: a client that timed out against one
	// member retries the same chunk against another, but the first
	// member may have applied it and shipped it here already. Records
	// the volume has applied — identified by (client, CML sequence) —
	// are acknowledged without re-applying, so duplicate delivery is
	// idempotent and bumps no stamps. keep maps compact (live) record
	// indices back to the client's original indices.
	keep := make([]int, 0, len(recs))
	var dupFIDs []codafs.FID
	for i := range recs {
		if v.isAppliedLocked(src, recs[i].Seq) {
			rep.Results[i] = wire.RecordResult{OK: true, Msg: "duplicate: already applied"}
			dupFIDs = append(dupFIDs, recs[i].FID)
			continue
		}
		keep = append(keep, i)
	}
	deltas := req.Deltas
	if len(dupFIDs) > 0 {
		s.stats.duplicatesDropped.Add(int64(len(dupFIDs)))
		s.met.replDups.Add(int64(len(dupFIDs)))
		if len(keep) == 0 {
			// The whole chunk is a retransmit of applied work: ack it as
			// such, with the current statuses of the touched objects so
			// the client's cache converges exactly as the lost ack would
			// have left it.
			rep.Applied = true
			rep.Statuses = appendFIDStatuses(rep.Statuses, v, dupFIDs)
			rep.VolStamp = v.info.Stamp
			v.mu.Unlock()
			s.dropFragments(usedFrags)
			return rep, nil
		}
		compact := make([]cml.Record, len(keep))
		deltas = make(map[int]delta.Delta, len(req.Deltas))
		for ni, oi := range keep {
			compact[ni] = recs[oi]
			if dd, ok := req.Deltas[oi]; ok {
				deltas[ni] = dd
			}
		}
		recs = compact
	}

	// Reconstruct delta-shipped stores against the server's current
	// contents (§4.1's "ship file differences" enhancement). A base
	// mismatch fails the chunk atomically; the client retries with full
	// contents. Indices are applied in ascending order so which failure
	// surfaces (and the hash-verified reconstruction order) never
	// depends on map iteration.
	deltaIdx := make([]int, 0, len(deltas))
	for idx := range deltas {
		deltaIdx = append(deltaIdx, idx)
	}
	sort.Ints(deltaIdx)
	for _, idx := range deltaIdx {
		dd := deltas[idx]
		if idx < 0 || idx >= len(recs) || recs[idx].Kind != cml.Store {
			v.mu.Unlock()
			return wire.ReintegrateRep{}, fmt.Errorf("delta index %d invalid", idx)
		}
		obj, ok := v.objects[recs[idx].FID]
		if !ok {
			rep.Results[keep[idx]] = wire.RecordResult{Conflict: true, Msg: "delta store: object removed on server"}
			rep.VolStamp = v.info.Stamp
			v.mu.Unlock()
			s.stats.reintegrationFails.Add(1)
			s.met.reintegFails.Inc()
			return rep, nil
		}
		newData, err := delta.Apply(obj.Data, dd)
		if err != nil {
			rep.Results[keep[idx]] = wire.RecordResult{DeltaFailed: true, Msg: err.Error()}
			rep.VolStamp = v.info.Stamp
			v.mu.Unlock()
			s.stats.reintegrationFails.Add(1)
			s.met.reintegFails.Inc()
			return rep, nil
		}
		recs[idx].Data = newData
		recs[idx].Length = int64(len(newData))
	}

	a := newApply(v)
	ok = true
	for i := range recs {
		if !ok {
			rep.Results[keep[i]] = wire.RecordResult{Msg: "not attempted"}
			continue
		}
		res := applyRecord(a, &recs[i], src)
		rep.Results[keep[i]] = res
		if !res.OK {
			ok = false
			if res.Conflict {
				s.stats.conflicts.Add(1)
				s.met.conflicts.Inc()
			}
		}
	}
	if !ok {
		// Atomicity: nothing applied, overlay dropped, fragments kept
		// so a retry need not reship them.
		rep.VolStamp = v.info.Stamp
		v.mu.Unlock()
		s.stats.reintegrationFails.Add(1)
		s.met.reintegFails.Inc()
		return rep, nil
	}
	// Journal the reconstructed batch (fragments attached, deltas already
	// applied, duplicates compacted out) before commit, so replay needs
	// neither fragment buffers nor delta bases. Failure aborts the chunk
	// exactly like a validation failure would: nothing applied, client
	// retries.
	if err := journalBatchLocked(v, src, recs, applyCtx); err != nil {
		v.mu.Unlock()
		s.stats.reintegrationFails.Add(1)
		s.met.reintegFails.Inc()
		return wire.ReintegrateRep{}, fmt.Errorf("journal: %w", err)
	}
	statuses, stamp, breaks := commitApply(a, src)
	statuses = appendFIDStatuses(statuses, v, dupFIDs)
	v.mu.Unlock()

	s.stats.recordsApplied.Add(int64(len(recs)))
	s.met.recordsApplied.Add(int64(len(recs)))
	s.dropFragments(usedFrags)

	rep.Applied = true
	rep.Statuses = statuses
	rep.VolStamp = stamp

	// Breaks go out with no lock held at all.
	s.dispatchBreaks(breaks)
	s.shipToPeers(v, sc)
	return rep, nil
}

// appendFIDStatuses appends the current status of each listed object not
// already present in statuses — the reply statuses for duplicate records,
// whose objects were touched by an earlier delivery. Caller holds v.mu.
func appendFIDStatuses(statuses []codafs.Status, v *volume, fids []codafs.FID) []codafs.Status {
	if len(fids) == 0 {
		return statuses
	}
	have := make(map[codafs.FID]bool, len(statuses))
	for _, st := range statuses {
		have[st.FID] = true
	}
	for _, fid := range fids {
		if have[fid] {
			continue
		}
		have[fid] = true
		if o, ok := v.objects[fid]; ok {
			statuses = append(statuses, o.Status)
		}
	}
	return statuses
}

// dropFragments discards consumed fragment buffers.
func (s *Server) dropFragments(keys []fragKey) {
	if len(keys) == 0 {
		return
	}
	s.fragMu.Lock()
	for _, k := range keys {
		delete(s.frags, k)
	}
	s.fragMu.Unlock()
}
