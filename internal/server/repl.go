package server

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Log replication (the "replicable state machine" half of the group
// layer; internal/group assembles servers into groups). The per-volume
// journal is the replication log: every committed batch is one entry at
// one LSN, framed by journalBatchLocked whether or not a WAL is
// attached, and fingerprinted by a cumulative CRC32C (chain) over the
// exact payload bytes. Because apply is a deterministic function of
// volume state and the records, replicas that agree on the log agree on
// everything — stamps, versions, authorship — which is what makes
// SaveState images byte-identical across a group.
//
// Entries move between replicas two ways:
//
//   - push: after a commit, the accepting server ships the new suffix
//     to every peer in LSN order (shipVolume). Best-effort — a dead
//     peer is skipped, not waited on.
//   - pull: a lagging replica fetches the missed suffix from a peer
//     (CatchUp → FetchLog), verifying the chain at its own tail first.
//     This is what a restarted replica does after WAL replay, and what
//     a ShipLog receiver triggers on itself when it sees a gap.
//
// Duplicates are handled at two layers. Reintegration ingress filters
// records the volume has already applied, keyed (client, CML sequence
// number) — that is what makes a failover retransmit idempotent: the
// batch the client re-ships to a second member after a timeout was
// usually already pushed there by the first. The LSN/chain gate then
// makes entry delivery itself idempotent and ordered. A chain mismatch
// is divergence — possible only for updates never acknowledged to any
// client — and is surfaced as a loud error, never repaired silently.

// ErrDiverged marks replica divergence: a peer's log entry or chain
// fingerprint contradicts local state. Detection sites wrap it so
// callers (and the divergence hook) can classify without string
// matching; note the remote side of an RPC sees only the string.
var ErrDiverged = errors.New("replica diverged")

// noteDivergence fires the divergence hook when err is (or wraps)
// ErrDiverged. Called at every local detection site — apply of a pushed
// entry, apply during catch-up, and serving a pull whose chain
// disagrees — so a group can count divergence events even though the
// error itself travels to a peer as an opaque string.
func (s *Server) noteDivergence(err error) {
	if s.divergenceHook != nil && errors.Is(err, ErrDiverged) {
		s.divergenceHook()
	}
}

// appliedKey identifies one reintegrated CML record for deduplication.
// Connected-mode records carry sequence 0 and are never tracked; rpc2's
// reply cache already makes those at-most-once per call.
type appliedKey struct {
	client string
	seq    uint64
}

// castagnoli is the CRC32C table used for log chain fingerprints (the
// same polynomial the WAL frames use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// shipCallOpts bounds one ShipLog push attempt; a peer that stays
// silent is left to catch up on its own.
var shipCallOpts = rpc2.CallOpts{MaxRetries: 4}

// fetchLogBatch caps entries per FetchLog reply; the puller loops.
const fetchLogBatch = 128

// Peers returns the configured replica peer addresses.
func (s *Server) Peers() []string { return append([]string(nil), s.peers...) }

// acquireShip takes the volume's ship token, serializing ship and
// catch-up rounds; release with releaseShip. Parking happens on a
// simtime.Queue so a waiter is quiescent under the sim while the holder
// blocks in peer RPCs.
func (s *Server) acquireShip(v *volume) {
	v.mu.Lock()
	if v.shipTok == nil {
		v.shipTok = simtime.NewQueue[struct{}](s.clock)
		v.shipTok.Put(struct{}{})
	}
	tok := v.shipTok
	v.mu.Unlock()
	_, _ = tok.Get()
}

// releaseShip returns the ship token taken by acquireShip.
func (v *volume) releaseShip() { v.shipTok.Put(struct{}{}) }

// advanceReplLocked folds one committed entry into the volume's
// replication state: the chain fingerprint, the retained log suffix,
// and the dedup set. Caller holds v.mu and has already advanced
// v.walLSN to lsn; payload is the entry's journal framing.
func (v *volume) advanceReplLocked(client string, lsn uint64, recs []cml.Record, payload []byte) {
	v.chain = crc32.Update(v.chain, castagnoli, payload)
	v.repl = append(v.repl, wire.LogEntry{LSN: lsn, Chain: v.chain, Client: client, Recs: recs})
	for i := range recs {
		if recs[i].Seq != 0 {
			v.applied[appliedKey{client: client, seq: recs[i].Seq}] = true
		}
	}
}

// isAppliedLocked reports whether the volume has already applied the
// client's record with the given CML sequence number. Caller holds v.mu.
func (v *volume) isAppliedLocked(client string, seq uint64) bool {
	return seq != 0 && v.applied[appliedKey{client: client, seq: seq}]
}

// chainAtLocked returns the chain fingerprint after lsn, if the volume
// still knows it (at or after the retained suffix's base). Caller holds
// v.mu.
func (v *volume) chainAtLocked(lsn uint64) (uint32, bool) {
	switch {
	case lsn == v.replBaseLSN:
		return v.replBaseChain, true
	case lsn > v.replBaseLSN && lsn <= v.walLSN:
		return v.repl[lsn-v.replBaseLSN-1].Chain, true
	}
	return 0, false
}

// shipToPeers pushes v's unshipped log suffix to every peer on a fresh
// goroutine; the committing client never waits on replication (the
// same principle as callback breaks). No lock may be held by callers.
// sc is the span context of the operation that committed the newest
// entry; the asynchronous ship round it triggers is attributed to it.
func (s *Server) shipToPeers(v *volume, sc obs.SpanContext) {
	if len(s.peers) == 0 {
		return
	}
	s.clock.Go(func() { s.shipVolume(v, sc) })
}

// shipVolume pushes the pending suffix (shippedLSN, walLSN] to every
// peer, in LSN order, and loops until no new entries remain. The ship
// token serializes shippers so concurrent commits cannot interleave
// entries out of order on the wire; the volume lock is held only to
// read the suffix. A peer that fails mid-stream is skipped for this
// round — the push is best-effort, the pull side repairs.
func (s *Server) shipVolume(v *volume, sc obs.SpanContext) {
	s.acquireShip(v)
	defer v.releaseShip()
	if sc.Valid() {
		sp := s.obs.StartSpan(s.addr, "server_ship_log", sc)
		if ctx := sp.Context(); ctx.Valid() {
			sc = ctx
		}
		defer sp.End()
	}
	for {
		v.mu.Lock()
		if v.shippedLSN < v.replBaseLSN {
			// A checkpoint truncated the retained log under us; peers
			// that missed the gap will pull.
			v.shippedLSN = v.replBaseLSN
		}
		prevChain, _ := v.chainAtLocked(v.shippedLSN)
		pending := v.repl[v.shippedLSN-v.replBaseLSN:]
		if len(pending) == 0 {
			v.mu.Unlock()
			return
		}
		entries := append([]wire.LogEntry(nil), pending...)
		volID := v.info.ID
		v.mu.Unlock()

		for _, peer := range s.peers {
			pc := prevChain
			for _, e := range entries {
				opts := shipCallOpts
				opts.Span = sc
				rep, err := wire.Call[wire.ShipLogRep](s.node, peer,
					wire.ShipLog{Volume: volID, PrevChain: pc, Entry: e}, opts)
				if err != nil {
					break // unreachable or refusing; it will pull later
				}
				s.met.replShipped.Inc()
				if rep.NeedCatchUp {
					break
				}
				pc = e.Chain
			}
		}
		last := entries[len(entries)-1].LSN
		v.mu.Lock()
		if v.shippedLSN < last {
			v.shippedLSN = last
		}
		v.mu.Unlock()
	}
}

// shipLog handles one pushed log entry from a peer. In-order entries
// whose chain matches are applied through the same pipeline as live
// traffic — including journaling and callback breaks, which is how a
// break reaches clients attached to this member when the write landed
// on another. Old entries are acknowledged (duplicate push); anything
// else is a gap, answered with NeedCatchUp while this server pulls the
// missing suffix from the shipper in the background.
func (s *Server) shipLog(src string, sc obs.SpanContext, req wire.ShipLog) (wire.ShipLogRep, error) {
	v, ok := s.volByID(req.Volume)
	if !ok {
		return wire.ShipLogRep{}, fmt.Errorf("no volume %d", req.Volume)
	}
	s.observeVolOp(v)
	e := req.Entry
	s.lockVolume(v)
	if e.LSN <= v.walLSN {
		rep := wire.ShipLogRep{LSN: v.walLSN}
		v.mu.Unlock()
		return rep, nil
	}
	if e.LSN != v.walLSN+1 || req.PrevChain != v.chain {
		rep := wire.ShipLogRep{LSN: v.walLSN, NeedCatchUp: true}
		v.mu.Unlock()
		s.met.replGaps.Inc()
		s.clock.Go(func() { _ = s.catchUpVolume(src, req.Volume, sc) })
		return rep, nil
	}
	// The receive-side apply joins the shipper's trace: validation,
	// journaling, and commit of the pushed entry under one span.
	applyCtx := obs.SpanContext{}
	if sc.Valid() {
		sp := s.obs.StartSpan(s.addr, "server_apply", sc)
		applyCtx = sp.Context()
		defer sp.End()
	}
	breaks, err := v.applyEntryLocked(e, applyCtx)
	rep := wire.ShipLogRep{LSN: v.walLSN}
	v.mu.Unlock()
	if err != nil {
		s.noteDivergence(err)
		return wire.ShipLogRep{}, err
	}
	s.stats.replApplied.Add(int64(len(e.Recs)))
	s.met.replApplied.Add(int64(len(e.Recs)))
	s.dispatchBreaks(breaks)
	// The entry may need forwarding if this server also has peers the
	// shipper does not; shipping is idempotent, so just nudge.
	s.shipToPeers(v, sc)
	return rep, nil
}

// applyEntryLocked applies one in-order peer entry: records run through
// the normal validation/apply pipeline, the entry is journaled with the
// same framing the shipper used, and the resulting chain must equal the
// shipper's — a mismatch means the logs are not byte-identical and is
// surfaced as divergence. Caller holds v.mu; the returned breaks are
// dispatched after unlock.
func (v *volume) applyEntryLocked(e wire.LogEntry, sc obs.SpanContext) ([]breakWork, error) {
	a := newApply(v)
	for i := range e.Recs {
		if res := applyRecord(a, &e.Recs[i], e.Client); !res.OK {
			return nil, fmt.Errorf("%w: volume %d entry %d record %d (%s) does not apply: %s", ErrDiverged,
				v.info.ID, e.LSN, i, e.Recs[i].Kind, res.Msg)
		}
	}
	if err := journalBatchLocked(v, e.Client, e.Recs, sc); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if v.chain != e.Chain {
		// The entry is journaled but the fingerprint disagrees: the logs
		// differ somewhere at or before this entry. Nothing silent to do.
		return nil, fmt.Errorf("%w: volume %d entry %d chain %08x != %08x", ErrDiverged,
			v.info.ID, e.LSN, v.chain, e.Chain)
	}
	_, _, breaks := commitApply(a, e.Client)
	return breaks, nil
}

// fetchLog serves a peer's pull: the retained suffix after AfterLSN, in
// batches. The caller's chain at AfterLSN must match ours — disagreement
// is divergence, and a suffix older than the retained base (truncated by
// a checkpoint) cannot be served by log shipping at all; both come back
// as errors the puller reports rather than papering over.
func (s *Server) fetchLog(req wire.FetchLog) (wire.FetchLogRep, error) {
	v, ok := s.volByID(req.Volume)
	if !ok {
		return wire.FetchLogRep{}, fmt.Errorf("no volume %d", req.Volume)
	}
	s.lockVolume(v)
	defer v.mu.Unlock()
	rep := wire.FetchLogRep{LSN: v.walLSN}
	if req.AfterLSN >= v.walLSN {
		return rep, nil // nothing newer here
	}
	if req.AfterLSN < v.replBaseLSN {
		return wire.FetchLogRep{}, fmt.Errorf(
			"volume %d log truncated at %d (checkpoint); cannot serve suffix after %d",
			req.Volume, v.replBaseLSN, req.AfterLSN)
	}
	chain, _ := v.chainAtLocked(req.AfterLSN)
	if chain != req.Chain {
		err := fmt.Errorf("%w: volume %d chain %08x != %08x at entry %d",
			ErrDiverged, req.Volume, chain, req.Chain, req.AfterLSN)
		s.noteDivergence(err)
		return wire.FetchLogRep{}, err
	}
	start := req.AfterLSN - v.replBaseLSN
	end := start + fetchLogBatch
	if n := uint64(len(v.repl)); end > n {
		end = n
	}
	rep.Entries = append([]wire.LogEntry(nil), v.repl[start:end]...)
	return rep, nil
}

// CatchUp pulls every volume's missed log suffix from peer and applies
// it, leaving this server's state byte-identical to the peer's for all
// entries the peer holds. It is what a restarted replica runs after WAL
// replay. Volumes are processed in ascending ID order; an error on any
// volume aborts (divergence and truncated-log conditions must be seen,
// not skipped).
func (s *Server) CatchUp(peer string) error {
	for _, v := range s.volumesByID() {
		if err := s.catchUpVolume(peer, v.id(), obs.SpanContext{}); err != nil {
			return err
		}
	}
	return nil
}

// catchUpVolume pulls one volume's suffix from peer until this server's
// log reaches the peer's. The ship token serializes it against pushes
// we might be making ourselves, so anti-entropy for a volume is
// single-file.
func (s *Server) catchUpVolume(peer string, id codafs.VolumeID, sc obs.SpanContext) error {
	v, ok := s.volByID(id)
	if !ok {
		return fmt.Errorf("server: catch-up: no volume %d", id)
	}
	s.acquireShip(v)
	defer v.releaseShip()
	if sc.Valid() {
		sp := s.obs.StartSpan(s.addr, "server_catch_up", sc)
		if ctx := sp.Context(); ctx.Valid() {
			sc = ctx
		}
		defer sp.End()
	}
	for {
		v.mu.Lock()
		after := v.walLSN
		chain := v.chain
		v.mu.Unlock()

		rep, err := wire.Call[wire.FetchLogRep](s.node, peer,
			wire.FetchLog{Volume: id, AfterLSN: after, Chain: chain}, rpc2.CallOpts{Span: sc})
		if err != nil {
			return fmt.Errorf("server: catch-up volume %d from %s: %w", id, peer, err)
		}
		s.met.catchupRounds.Inc()
		if len(rep.Entries) == 0 {
			return nil // caught up (or the peer is the one behind)
		}
		var allBreaks []breakWork
		var recs, bytes int64
		s.lockVolume(v)
		for _, e := range rep.Entries {
			if e.LSN <= v.walLSN {
				continue // raced with a concurrent push; already have it
			}
			if e.LSN != v.walLSN+1 {
				v.mu.Unlock()
				return fmt.Errorf("server: catch-up volume %d: entry gap at %d (have %d)", id, e.LSN, v.walLSN)
			}
			breaks, err := v.applyEntryLocked(e, sc)
			if err != nil {
				v.mu.Unlock()
				s.noteDivergence(err)
				return fmt.Errorf("server: catch-up volume %d: %w", id, err)
			}
			allBreaks = append(allBreaks, breaks...)
			recs += int64(len(e.Recs))
			bytes += int64(len(v.encBuf.Bytes()))
			// Entries arriving by catch-up are as shipped as pushed ones.
			if v.shippedLSN < e.LSN {
				v.shippedLSN = e.LSN
			}
		}
		caughtUp := v.walLSN >= rep.LSN
		v.mu.Unlock()
		s.stats.catchupRecords.Add(recs)
		s.met.catchupRecs.Add(recs)
		s.met.catchupBytes.Add(bytes)
		s.dispatchBreaks(allBreaks)
		if caughtUp {
			return nil
		}
	}
}

// VolumeLSN reports a volume's current log position and chain
// fingerprint — what the group layer's replica-lag gauges read.
func (s *Server) VolumeLSN(name string) (lsn uint64, chain uint32, err error) {
	v, ok := s.volByName(name)
	if !ok {
		return 0, 0, fmt.Errorf("server: no volume %q", name)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.walLSN, v.chain, nil
}

// VolumePosition is one volume's replication log position.
type VolumePosition struct {
	ID    codafs.VolumeID
	Name  string
	LSN   uint64
	Chain uint32
}

// VolumePositions reports every volume's log position in ascending ID
// order.
func (s *Server) VolumePositions() []VolumePosition {
	vols := s.volumesByID()
	out := make([]VolumePosition, 0, len(vols))
	for _, v := range vols {
		v.mu.Lock()
		out = append(out, VolumePosition{ID: v.info.ID, Name: v.info.Name, LSN: v.walLSN, Chain: v.chain})
		v.mu.Unlock()
	}
	return out
}
