package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/crashfs"
	"repro/internal/obs"
	"repro/internal/wal"
)

// The server crash matrix drives a scripted mutation sequence against a
// journaled server backed by crashfs.Mem, cuts power at every write, and
// checks the recovered server is byte-identical to a never-crashed server
// that executed exactly the acknowledged prefix. With SyncEachRecord, an
// operation that returned nil is durable; one that returned an error must
// leave no trace.

// sdriver holds the per-run script state: client-allocated FIDs and the
// versions the "client" saw, so Store/SetAttr records carry the right
// PrevVersion for the optimistic conflict check.
type sdriver struct {
	s   *Server
	vol map[string]codafs.VolumeID
	fid map[string]codafs.FID
	ver map[string]uint64
	n   uint64
}

func newSdriver(s *Server) *sdriver {
	return &sdriver{
		s:   s,
		vol: make(map[string]codafs.VolumeID),
		fid: make(map[string]codafs.FID),
		ver: make(map[string]uint64),
	}
}

const sclient = "c1"

func (d *sdriver) newFID(vol string) codafs.FID {
	d.n++
	return codafs.FID{Volume: d.vol[vol], Vnode: 7<<32 | d.n, Unique: d.n}
}

func (d *sdriver) root(vol string) codafs.FID {
	return codafs.FID{Volume: d.vol[vol], Vnode: 1, Unique: 1}
}

func (d *sdriver) createVolume(name string) error {
	info, err := d.s.CreateVolume(name)
	if err != nil {
		return err
	}
	d.vol[name] = info.ID
	return nil
}

func (d *sdriver) makeObject(vol, key string, parent codafs.FID, name string, kind cml.Kind) error {
	fid := d.newFID(vol)
	rep, err := d.s.mutate(sclient, obs.SpanContext{}, cml.Record{
		Kind: kind, FID: fid, Parent: parent, Name: name,
		Mode: 0644, Owner: sclient,
	}, fid)
	if err != nil {
		return err
	}
	d.fid[key] = fid
	d.ver[key] = rep.Status.Version
	return nil
}

func (d *sdriver) store(key string, data []byte) error {
	rep, err := d.s.mutate(sclient, obs.SpanContext{}, cml.Record{
		Kind: cml.Store, FID: d.fid[key], Data: data,
		Length: int64(len(data)), PrevVersion: d.ver[key],
	}, d.fid[key])
	if err != nil {
		return err
	}
	d.ver[key] = rep.Status.Version
	return nil
}

func (d *sdriver) setattr(key string, mode uint32) error {
	rep, err := d.s.mutate(sclient, obs.SpanContext{}, cml.Record{
		Kind: cml.SetAttr, FID: d.fid[key], Mode: mode,
		ModTime: time.Unix(800000000, 0), PrevVersion: d.ver[key],
	}, d.fid[key])
	if err != nil {
		return err
	}
	d.ver[key] = rep.Status.Version
	return nil
}

func (d *sdriver) rename(key string, parent codafs.FID, name string, newParent codafs.FID, newName string) error {
	_, err := d.s.mutate(sclient, obs.SpanContext{}, cml.Record{
		Kind: cml.Rename, FID: d.fid[key], Parent: parent, Name: name,
		NewParent: newParent, NewName: newName,
	}, d.fid[key])
	return err
}

func (d *sdriver) remove(key string, parent codafs.FID, name string) error {
	_, err := d.s.mutate(sclient, obs.SpanContext{}, cml.Record{
		Kind: cml.Remove, FID: d.fid[key], Parent: parent, Name: name,
		PrevVersion: d.ver[key],
	}, parent)
	return err
}

func (d *sdriver) link(key string, parent codafs.FID, name string) error {
	_, err := d.s.mutate(sclient, obs.SpanContext{}, cml.Record{
		Kind: cml.Link, FID: d.fid[key], Parent: parent, Name: name,
	}, d.fid[key])
	return err
}

// serverOps is the scripted mutation sequence. It spans two volumes (two
// journal domains), every connected-mode record kind, and a mid-sequence
// Checkpoint, so crash points land inside snapshot writes and WAL resets
// as well as inside frame appends.
var serverOps = []func(d *sdriver) error{
	func(d *sdriver) error { return d.createVolume("usr") },
	func(d *sdriver) error { return d.createVolume("proj") },
	func(d *sdriver) error { return d.makeObject("usr", "docs", d.root("usr"), "docs", cml.Mkdir) },
	func(d *sdriver) error {
		return d.makeObject("usr", "paper", d.fid["docs"], "paper.tex", cml.Create)
	},
	func(d *sdriver) error { return d.store("paper", []byte("\\documentclass{article}")) },
	func(d *sdriver) error {
		return d.makeObject("proj", "notes", d.root("proj"), "notes.txt", cml.Create)
	},
	func(d *sdriver) error { return d.store("notes", []byte("meeting notes")) },
	func(d *sdriver) error { return d.setattr("paper", 0600) },
	func(d *sdriver) error {
		// Checkpoint is a no-op on the never-journaled baseline server.
		d.s.mu.Lock()
		attached := d.s.journal != nil
		d.s.mu.Unlock()
		if !attached {
			return nil
		}
		return d.s.Checkpoint()
	},
	func(d *sdriver) error {
		return d.rename("paper", d.fid["docs"], "paper.tex", d.root("usr"), "final.tex")
	},
	func(d *sdriver) error { return d.store("paper", []byte("\\documentclass{book}")) },
	func(d *sdriver) error { return d.link("paper", d.fid["docs"], "alias.tex") },
	func(d *sdriver) error { return d.remove("notes", d.root("proj"), "notes.txt") },
	func(d *sdriver) error {
		return d.makeObject("usr", "post", d.root("usr"), "post.txt", cml.Create)
	},
	func(d *sdriver) error { return d.store("post", []byte("written after the checkpoint")) },
}

func serverJournalOpts(mem *crashfs.Mem) JournalOptions {
	return JournalOptions{FS: mem, Dir: "sj", Policy: wal.SyncEachRecord}
}

// serverMatrixRun executes serverOps[:limit] on a journaled server with an
// optional crash armed at the crashAt-th write, then reboots the FS and
// recovers into a fresh server. It returns the count of ops that
// succeeded, the write count at the end of the op phase, the recovered
// server's state bytes, and the recovery stats.
func serverMatrixRun(t *testing.T, crashAt, keepUnsynced, limit int) (int, int, []byte, RecoveryInfo) {
	t.Helper()
	mem := crashfs.NewMem()
	w := newWorld()
	if _, err := w.srv.AttachJournal(serverJournalOpts(mem)); err != nil {
		t.Fatal(err)
	}
	if crashAt > 0 {
		mem.ArmCrash(crashAt, keepUnsynced)
	}
	d := newSdriver(w.srv)
	completed := 0
	for i := 0; i < limit; i++ {
		if err := serverOps[i](d); err != nil {
			break
		}
		completed++
	}
	writesEnd := mem.Writes()
	mem.Reboot()

	w2 := newWorld()
	info, err := w2.srv.AttachJournal(serverJournalOpts(mem))
	if err != nil {
		t.Fatalf("recovery after crash at write %d: %v", crashAt, err)
	}
	var buf bytes.Buffer
	if err := w2.srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return completed, writesEnd, buf.Bytes(), info
}

// serverBaseline runs serverOps[:p] on a plain, never-journaled server and
// returns its state bytes — the ground truth a recovered server must hit.
func serverBaseline(t *testing.T, p int) []byte {
	t.Helper()
	w := newWorld()
	d := newSdriver(w.srv)
	for i := 0; i < p; i++ {
		if err := serverOps[i](d); err != nil {
			t.Fatalf("baseline op %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := w.srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServerJournalCleanRecovery(t *testing.T) {
	completed, _, state, info := serverMatrixRun(t, 0, 0, len(serverOps))
	if completed != len(serverOps) {
		t.Fatalf("clean run completed %d/%d ops", completed, len(serverOps))
	}
	if !bytes.Equal(state, serverBaseline(t, len(serverOps))) {
		t.Error("recovered state diverges from a never-journaled run of the same ops")
	}
	if !info.SnapshotLoaded {
		t.Error("mid-sequence checkpoint snapshot not loaded on recovery")
	}
	// The checkpoint truncated everything before it: only post-checkpoint
	// batches replay.
	if info.VolumesReplayed != 0 {
		t.Errorf("VolumesReplayed = %d; creations predate the checkpoint", info.VolumesReplayed)
	}
	if info.BatchesReplayed == 0 {
		t.Error("no batches replayed; post-checkpoint ops lost")
	}
}

// TestServerCrashMatrix is the acceptance sweep: a power cut at every
// journal write (and, in a second pass, a cut that leaves a torn tail of
// unsynced bytes) recovers to exactly the acknowledged prefix.
func TestServerCrashMatrix(t *testing.T) {
	_, total, _, _ := serverMatrixRun(t, 0, 0, len(serverOps))
	if total == 0 {
		t.Fatal("scripted ops produced no journal writes")
	}
	baselines := map[int][]byte{}
	for _, keep := range []int{0, 5} {
		for k := 1; k <= total; k++ {
			p, _, got, _ := serverMatrixRun(t, k, keep, len(serverOps))
			want, ok := baselines[p]
			if !ok {
				want = serverBaseline(t, p)
				baselines[p] = want
			}
			if !bytes.Equal(got, want) {
				t.Errorf("crash at write %d (keep %d): recovered state diverges from clean run of the %d acknowledged ops",
					k, keep, p)
			}
		}
	}
}

func TestServerJournalFailureBlocksCommit(t *testing.T) {
	mem := crashfs.NewMem()
	w := newWorld()
	if _, err := w.srv.AttachJournal(serverJournalOpts(mem)); err != nil {
		t.Fatal(err)
	}
	d := newSdriver(w.srv)
	for i := 0; i < 4; i++ {
		if err := serverOps[i](d); err != nil {
			t.Fatal(err)
		}
	}
	mem.FailWrite(1, errInjected)
	if err := d.store("paper", []byte("lost")); err == nil {
		t.Fatal("store with failing journal accepted")
	}
	// The rejected update must not be visible.
	if data, err := w.srv.ReadFile("usr", "docs/paper.tex"); err != nil || len(data) != 0 {
		t.Errorf("rejected store leaked into volume state: %q, %v", data, err)
	}
}

var errInjected = bytes.ErrTooLarge // any distinctive sentinel

func TestServerLoadStateCorrupted(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("usr")
	w.srv.WriteFile("usr", "a/b/file.txt", []byte("persist me"))
	var buf bytes.Buffer
	if err := w.srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Every strict prefix must fail cleanly: gob frames one message, so a
	// truncated stream can never decode to a valid image.
	for _, n := range []int{0, 1, 7, len(img) / 3, len(img) / 2, len(img) - 1} {
		w2 := newWorld()
		if err := w2.srv.LoadState(bytes.NewReader(img[:n])); err == nil {
			t.Errorf("LoadState accepted a %d/%d-byte prefix", n, len(img))
		}
	}
	// Flipped bytes must never panic; an error (or a benign data-byte flip
	// that still decodes) are both acceptable outcomes.
	for off := 0; off < len(img); off += 7 {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x5a
		w2 := newWorld()
		_ = w2.srv.LoadState(bytes.NewReader(bad))
	}
}

// TestServerSaveStateFSCrashSafety pins the snapshot write discipline:
// temp file, fsync, rename, parent-dir fsync. A cut mid-save must leave
// the previous image; a cut after a successful save must keep the new one.
func TestServerSaveStateFSCrashSafety(t *testing.T) {
	mem := crashfs.NewMem()
	const path = "server.state"
	w := newWorld()
	w.srv.CreateVolume("usr")
	w.srv.WriteFile("usr", "a.txt", []byte("first"))
	if err := w.srv.SaveStateFS(mem, path); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	mem.Reboot()

	w.srv.WriteFile("usr", "b.txt", []byte("second"))
	mem.ArmCrash(1, 0)
	if err := w.srv.SaveStateFS(mem, path); err == nil {
		t.Fatal("SaveStateFS succeeded across an armed crash")
	}
	mem.Reboot()

	w2 := newWorld()
	if err := w2.srv.LoadStateFS(mem, path); err != nil {
		t.Fatalf("image lost after interrupted re-save: %v", err)
	}
	if data, err := w2.srv.ReadFile("usr", "a.txt"); err != nil || string(data) != "first" {
		t.Errorf("restored a.txt = %q, %v", data, err)
	}
	if _, err := w2.srv.ReadFile("usr", "b.txt"); err == nil {
		t.Error("half-saved image leaked b.txt into the restored state")
	}
}
