package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cml"
	"repro/internal/wire"
)

// TestSweepReclaimsAbandonedState drives the maintenance sweep: a client
// that vanishes mid-transfer loses its fragment buffer and its
// connected-table entry after the TTLs, while a slow-but-alive client's
// resumable transfer survives arbitrarily long shipment and still
// reintegrates.
func TestSweepReclaimsAbandonedState(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("v")
	w.srv.WriteFile("v", "big", nil)
	w.sim.Run(func() {
		dead := w.client("dead")
		live := w.client("live")
		call[wire.ConnectClientRep](t, dead, wire.ConnectClient{})
		call[wire.ConnectClientRep](t, live, wire.ConnectClient{})

		content := bytes.Repeat([]byte("y"), 100)
		const deadXfer, liveXfer = 1, 2
		call[wire.PutFragmentRep](t, dead, wire.PutFragment{
			Transfer: deadXfer, Offset: 0, Total: 100, Data: content[:40],
		})
		call[wire.PutFragmentRep](t, live, wire.PutFragment{
			Transfer: liveXfer, Offset: 0, Total: 100, Data: content[:40],
		})
		if got := w.srv.FragmentCount(); got != 2 {
			t.Fatalf("FragmentCount = %d, want 2", got)
		}
		if got := w.srv.ClientCount(); got != 2 {
			t.Fatalf("ClientCount = %d, want 2", got)
		}

		// The live client trickles one byte an hour — a pathologically weak
		// link, but always inside fragTTL. The dead client never speaks
		// again.
		have := int64(40)
		for i := 0; i < 8; i++ {
			w.sim.Sleep(time.Hour)
			rep := call[wire.PutFragmentRep](t, live, wire.PutFragment{
				Transfer: liveXfer, Offset: have, Total: 100, Data: content[have : have+1],
			})
			have = rep.Received
		}

		// Eight hours in: both TTLs (6h) have passed for the dead client.
		if got := w.srv.FragmentCount(); got != 1 {
			t.Errorf("FragmentCount = %d, want 1 (dead transfer swept)", got)
		}
		if got := w.srv.ClientCount(); got != 1 {
			t.Errorf("ClientCount = %d, want 1 (dead client evicted)", got)
		}

		// The dead client resuming where it left off is told to restart.
		rep := call[wire.PutFragmentRep](t, dead, wire.PutFragment{
			Transfer: deadXfer, Offset: 40, Total: 100, Data: content[40:60],
		})
		if rep.Received != 0 {
			t.Errorf("swept transfer resumed with Received = %d, want 0", rep.Received)
		}
		// And speaking at all puts it back in the connected table.
		call[wire.ConnectClientRep](t, dead, wire.ConnectClient{})
		if got := w.srv.ClientCount(); got != 2 {
			t.Errorf("ClientCount after reconnect = %d, want 2", got)
		}

		// The live transfer completes and reintegrates: the sweep never
		// touched it.
		rep = call[wire.PutFragmentRep](t, live, wire.PutFragment{
			Transfer: liveXfer, Offset: have, Total: 100, Data: content[have:],
		})
		if rep.Received != 100 {
			t.Fatalf("live transfer Received = %d, want 100", rep.Received)
		}
		st, _ := w.srv.Resolve("v", "big")
		rrep := call[wire.ReintegrateRep](t, live, wire.Reintegrate{
			Volume: st.FID.Volume,
			Records: []cml.Record{{
				Kind: cml.Store, FID: st.FID, PrevVersion: st.Version, Length: 100,
			}},
			Fragments: map[int]uint64{0: liveXfer},
		})
		if !rrep.Applied {
			t.Fatalf("live reintegration rejected: %+v", rrep.Results)
		}
		if got, _ := w.srv.ReadFile("v", "big"); !bytes.Equal(got, content) {
			t.Errorf("assembled file = %d bytes, want %d", len(got), len(content))
		}
	})
}
