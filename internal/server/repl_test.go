package server

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/crashfs"
	"repro/internal/netsim"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// replWorld is a sim with n servers wired as one replica group.
type replWorld struct {
	sim  *simtime.Sim
	net  *netsim.Network
	srvs []*Server
}

func replAddr(i int) string { return fmt.Sprintf("s%d", i) }

func replPeers(n, self int) []string {
	var peers []string
	for j := 0; j < n; j++ {
		if j != self {
			peers = append(peers, replAddr(j))
		}
	}
	return peers
}

func newReplWorld(n int) *replWorld {
	s := simtime.NewSim(simtime.Epoch1995)
	nw := netsim.New(s, 1)
	nw.SetDefaults(netsim.Ethernet.Params())
	w := &replWorld{sim: s, net: nw}
	for i := 0; i < n; i++ {
		w.srvs = append(w.srvs, New(s, nw.Host(replAddr(i)), WithPeers(replPeers(n, i)...)))
	}
	return w
}

// createVolume mirrors the volume onto every member, as codasrv does at
// boot, and checks the members agreed on its identity.
func (w *replWorld) createVolume(t *testing.T, name string) codafs.VolumeInfo {
	t.Helper()
	var info codafs.VolumeInfo
	for i, srv := range w.srvs {
		vi, err := srv.CreateVolume(name)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			info = vi
		} else if vi.ID != info.ID {
			t.Fatalf("member %d assigned ID %d, member 0 assigned %d", i, vi.ID, info.ID)
		}
	}
	return info
}

func (w *replWorld) client(name string) *tclient {
	return (&world{sim: w.sim, net: w.net}).client(name)
}

// callTo is call with an explicit member address.
func callTo[Rep any](t *testing.T, c *tclient, addr string, req any) Rep {
	t.Helper()
	rep, err := wire.Call[Rep](c.node, addr, req, rpc2.CallOpts{})
	if err != nil {
		t.Fatalf("%T to %s: %v", req, addr, err)
	}
	return rep
}

func (w *replWorld) stateOf(t *testing.T, i int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := w.srvs[i].SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireConverged asserts every member holds the same log position and
// byte-identical serialized state.
func (w *replWorld) requireConverged(t *testing.T) {
	t.Helper()
	base := w.srvs[0].VolumePositions()
	for i := 1; i < len(w.srvs); i++ {
		got := w.srvs[i].VolumePositions()
		if len(got) != len(base) {
			t.Fatalf("member %d has %d volumes, member 0 has %d", i, len(got), len(base))
		}
		for k := range base {
			if got[k] != base[k] {
				t.Errorf("member %d volume %s at LSN %d chain %08x; member 0 at LSN %d chain %08x",
					i, got[k].Name, got[k].LSN, got[k].Chain, base[k].LSN, base[k].Chain)
			}
		}
	}
	img0 := w.stateOf(t, 0)
	for i := 1; i < len(w.srvs); i++ {
		if !bytes.Equal(img0, w.stateOf(t, i)) {
			t.Errorf("member %d SaveState differs from member 0", i)
		}
	}
}

// TestShipLogReplicatesConnectedWrites: connected-mode mutations applied
// at one member are pushed to the others, which end at the same LSN,
// chain, and serialized state.
func TestShipLogReplicatesConnectedWrites(t *testing.T) {
	w := newReplWorld(3)
	w.createVolume(t, "v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := callTo[wire.GetVolumeRep](t, c, replAddr(0), wire.GetVolume{Name: "v"})
		mk := callTo[wire.MakeObjectRep](t, c, replAddr(0), wire.MakeObject{
			Parent: gv.Root.FID, Name: "f.txt", FID: clientFID(gv.Info.ID, 10),
			Type: codafs.File, Owner: "hqb",
		})
		callTo[wire.MutateRep](t, c, replAddr(0), wire.StoreOp{
			FID: mk.Status.FID, Data: []byte("replicated"), PrevVersion: mk.Status.Version,
		})
		w.sim.Sleep(5 * time.Second) // let pushes drain

		for i, srv := range w.srvs {
			data, err := srv.ReadFile("v", "f.txt")
			if err != nil || string(data) != "replicated" {
				t.Errorf("member %d: ReadFile = %q, %v", i, data, err)
			}
		}
		w.requireConverged(t)
		if applied := w.srvs[1].Stats().ReplApplied; applied == 0 {
			t.Error("member 1 applied no shipped records")
		}
	})
}

// TestReintegrateDuplicateBatchIdempotent: the same CML batch delivered
// to a second member (the failover retransmit after a lost ack) is
// filtered by the (client, seq) dedup set — acked as applied, with the
// volume stamp on every member exactly where one delivery left it.
func TestReintegrateDuplicateBatchIdempotent(t *testing.T) {
	w := newReplWorld(2)
	w.createVolume(t, "v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := callTo[wire.GetVolumeRep](t, c, replAddr(0), wire.GetVolume{Name: "v"})
		recs := []cml.Record{
			{Kind: cml.Create, FID: clientFID(gv.Info.ID, 10), Parent: gv.Root.FID, Name: "notes.txt", Owner: "hqb", Seq: 1},
			{Kind: cml.Store, FID: clientFID(gv.Info.ID, 10), Data: []byte("trip notes"), Length: 10, Seq: 2},
			{Kind: cml.Mkdir, FID: clientFID(gv.Info.ID, 11), Parent: gv.Root.FID, Name: "photos", Seq: 3},
		}
		req := wire.Reintegrate{Volume: gv.Info.ID, Records: recs}
		rep1 := callTo[wire.ReintegrateRep](t, c, replAddr(0), req)
		if !rep1.Applied {
			t.Fatalf("first delivery: %+v", rep1.Results)
		}
		w.sim.Sleep(5 * time.Second) // the batch reaches member 1 by push

		stampAfterFirst, err := w.srvs[0].VolumeStamp("v")
		if err != nil {
			t.Fatal(err)
		}

		// The retransmit lands on the other member.
		rep2 := callTo[wire.ReintegrateRep](t, c, replAddr(1), req)
		if !rep2.Applied {
			t.Fatalf("duplicate batch rejected: %+v", rep2.Results)
		}
		for i, res := range rep2.Results {
			if !res.OK || !strings.Contains(res.Msg, "duplicate") {
				t.Errorf("result %d = %+v, want duplicate ack", i, res)
			}
		}
		if rep2.VolStamp != stampAfterFirst {
			t.Errorf("duplicate ack stamp = %d, want %d", rep2.VolStamp, stampAfterFirst)
		}
		if len(rep2.Statuses) == 0 {
			t.Error("duplicate ack carries no statuses; the client cannot converge versions")
		}
		for i, srv := range w.srvs {
			if stamp, _ := srv.VolumeStamp("v"); stamp != stampAfterFirst {
				t.Errorf("member %d stamp = %d after duplicate, want %d", i, stamp, stampAfterFirst)
			}
		}
		if dups := w.srvs[1].Stats().DuplicatesDropped; dups != int64(len(recs)) {
			t.Errorf("member 1 DuplicatesDropped = %d, want %d", dups, len(recs))
		}
		w.sim.Sleep(5 * time.Second)
		w.requireConverged(t)
	})
}

// TestReintegrateMixedDuplicateAndFresh: a retransmitted chunk that also
// carries records the member has not seen (the client appended to its
// CML between attempts) applies only the fresh suffix, once.
func TestReintegrateMixedDuplicateAndFresh(t *testing.T) {
	w := newReplWorld(2)
	w.createVolume(t, "v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := callTo[wire.GetVolumeRep](t, c, replAddr(0), wire.GetVolume{Name: "v"})
		first := []cml.Record{
			{Kind: cml.Create, FID: clientFID(gv.Info.ID, 10), Parent: gv.Root.FID, Name: "a.txt", Owner: "hqb", Seq: 1},
		}
		rep := callTo[wire.ReintegrateRep](t, c, replAddr(0), wire.Reintegrate{Volume: gv.Info.ID, Records: first})
		if !rep.Applied {
			t.Fatalf("first chunk: %+v", rep.Results)
		}
		w.sim.Sleep(5 * time.Second)

		mixed := []cml.Record{
			first[0],
			{Kind: cml.Create, FID: clientFID(gv.Info.ID, 11), Parent: gv.Root.FID, Name: "b.txt", Owner: "hqb", Seq: 2},
		}
		rep = callTo[wire.ReintegrateRep](t, c, replAddr(1), wire.Reintegrate{Volume: gv.Info.ID, Records: mixed})
		if !rep.Applied {
			t.Fatalf("mixed chunk: %+v", rep.Results)
		}
		if !strings.Contains(rep.Results[0].Msg, "duplicate") {
			t.Errorf("result 0 = %+v, want duplicate ack", rep.Results[0])
		}
		if !rep.Results[1].OK || strings.Contains(rep.Results[1].Msg, "duplicate") {
			t.Errorf("result 1 = %+v, want fresh apply", rep.Results[1])
		}
		w.sim.Sleep(5 * time.Second)
		for i, srv := range w.srvs {
			for _, name := range []string{"a.txt", "b.txt"} {
				if _, err := srv.Resolve("v", name); err != nil {
					t.Errorf("member %d missing %s: %v", i, name, err)
				}
			}
		}
		w.requireConverged(t)
	})
}

// TestCatchUpAfterPartition: a member cut off from its peer misses
// pushes; when the partition heals, CatchUp pulls the missed suffix and
// the members converge byte-identically.
func TestCatchUpAfterPartition(t *testing.T) {
	w := newReplWorld(2)
	w.createVolume(t, "v")
	w.sim.Run(func() {
		w.net.SetUp(replAddr(0), replAddr(1), false)
		c := w.client("c1")
		gv := callTo[wire.GetVolumeRep](t, c, replAddr(0), wire.GetVolume{Name: "v"})
		for k := 0; k < 3; k++ {
			mk := callTo[wire.MakeObjectRep](t, c, replAddr(0), wire.MakeObject{
				Parent: gv.Root.FID, Name: fmt.Sprintf("f%d", k),
				FID: clientFID(gv.Info.ID, uint64(20+k)), Type: codafs.File, Owner: "hqb",
			})
			callTo[wire.MutateRep](t, c, replAddr(0), wire.StoreOp{
				FID: mk.Status.FID, Data: []byte(fmt.Sprintf("contents %d", k)), PrevVersion: mk.Status.Version,
			})
		}
		w.sim.Sleep(10 * time.Minute) // push attempts exhaust retries against the partition

		p0 := w.srvs[0].VolumePositions()[0]
		p1 := w.srvs[1].VolumePositions()[0]
		if p1.LSN >= p0.LSN {
			t.Fatalf("member 1 at LSN %d not behind member 0 at %d despite partition", p1.LSN, p0.LSN)
		}

		w.net.SetUp(replAddr(0), replAddr(1), true)
		if err := w.srvs[1].CatchUp(replAddr(0)); err != nil {
			t.Fatal(err)
		}
		if got := w.srvs[1].Stats().CatchupRecords; got == 0 {
			t.Error("CatchUp pulled no records")
		}
		w.sim.Sleep(5 * time.Second)
		w.requireConverged(t)
	})
}

// TestFetchLogRejectsDivergedChain: a puller whose chain disagrees at
// the requested position gets a loud divergence error, not entries.
func TestFetchLogRejectsDivergedChain(t *testing.T) {
	w := newReplWorld(2)
	w.createVolume(t, "v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := callTo[wire.GetVolumeRep](t, c, replAddr(0), wire.GetVolume{Name: "v"})
		callTo[wire.MakeObjectRep](t, c, replAddr(0), wire.MakeObject{
			Parent: gv.Root.FID, Name: "f", FID: clientFID(gv.Info.ID, 10),
			Type: codafs.File, Owner: "hqb",
		})
		w.sim.Sleep(5 * time.Second)

		_, err := wire.Call[wire.FetchLogRep](c.node, replAddr(0), wire.FetchLog{
			Volume: gv.Info.ID, AfterLSN: 0, Chain: 0xdeadbeef,
		}, rpc2.CallOpts{})
		if err == nil || !strings.Contains(err.Error(), "diverged") {
			t.Errorf("FetchLog with wrong chain = %v, want divergence error", err)
		}
	})
}

// TestFetchLogRejectsTruncatedSuffix: after a checkpointed restart, the
// retained log begins at the checkpoint watermark; a peer asking for
// older entries is told the log cannot serve them (that is full state
// transfer territory) rather than being handed a silently incomplete
// suffix.
func TestFetchLogRejectsTruncatedSuffix(t *testing.T) {
	w := newReplWorld(2)
	mem := crashfs.NewMem()
	if _, err := w.srvs[0].AttachJournal(serverJournalOpts(mem)); err != nil {
		t.Fatal(err)
	}
	w.createVolume(t, "v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := callTo[wire.GetVolumeRep](t, c, replAddr(0), wire.GetVolume{Name: "v"})
		for k := 0; k < 2; k++ {
			callTo[wire.MakeObjectRep](t, c, replAddr(0), wire.MakeObject{
				Parent: gv.Root.FID, Name: fmt.Sprintf("f%d", k),
				FID: clientFID(gv.Info.ID, uint64(10+k)), Type: codafs.File, Owner: "hqb",
			})
		}
		if err := w.srvs[0].Checkpoint(); err != nil {
			t.Fatal(err)
		}

		// Restart member 0 from its journal: the retained log now starts
		// at the checkpoint watermark.
		w.srvs[0].Close()
		restarted := New(w.sim, w.net.Host(replAddr(0)), WithPeers(replAddr(1)))
		if _, err := restarted.AttachJournal(serverJournalOpts(mem)); err != nil {
			t.Fatal(err)
		}
		w.srvs[0] = restarted

		_, err := wire.Call[wire.FetchLogRep](c.node, replAddr(0), wire.FetchLog{
			Volume: gv.Info.ID, AfterLSN: 0, Chain: 0,
		}, rpc2.CallOpts{})
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("FetchLog below retained base = %v, want truncation error", err)
		}
	})
}

// TestRestartedMemberCatchesUpViaFetchLog: member 1 restarts from its
// journal having missed updates, pulls the suffix from member 0, and
// converges byte-identically — the pull half of anti-entropy end to end.
func TestRestartedMemberCatchesUpViaFetchLog(t *testing.T) {
	w := newReplWorld(2)
	mem := crashfs.NewMem()
	if _, err := w.srvs[1].AttachJournal(serverJournalOpts(mem)); err != nil {
		t.Fatal(err)
	}
	w.createVolume(t, "v")
	w.sim.Run(func() {
		c := w.client("c1")
		gv := callTo[wire.GetVolumeRep](t, c, replAddr(0), wire.GetVolume{Name: "v"})
		mk := callTo[wire.MakeObjectRep](t, c, replAddr(0), wire.MakeObject{
			Parent: gv.Root.FID, Name: "before", FID: clientFID(gv.Info.ID, 10),
			Type: codafs.File, Owner: "hqb",
		})
		w.sim.Sleep(5 * time.Second) // shipped to member 1, journaled there

		// Member 1 goes down; member 0 keeps taking writes.
		w.srvs[1].Close()
		callTo[wire.MutateRep](t, c, replAddr(0), wire.StoreOp{
			FID: mk.Status.FID, Data: []byte("while you were out"), PrevVersion: mk.Status.Version,
		})
		w.sim.Sleep(10 * time.Minute) // pushes to the dead member exhaust retries

		// Member 1 restarts from its journal and pulls what it missed.
		restarted := New(w.sim, w.net.Host(replAddr(1)), WithPeers(replAddr(0)))
		if _, err := restarted.AttachJournal(serverJournalOpts(mem)); err != nil {
			t.Fatal(err)
		}
		w.srvs[1] = restarted
		if err := restarted.CatchUp(replAddr(0)); err != nil {
			t.Fatal(err)
		}
		if restarted.Stats().CatchupRecords == 0 {
			t.Error("restarted member pulled no records")
		}
		if data, err := restarted.ReadFile("v", "before"); err != nil || string(data) != "while you were out" {
			t.Errorf("restarted member file = %q, %v", data, err)
		}
		w.sim.Sleep(5 * time.Second)
		w.requireConverged(t)
	})
}
