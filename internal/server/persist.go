package server

import (
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/codafs"
	"repro/internal/crashfs"
)

// Persistence for server state. Volumes, objects, version stamps, and the
// authorship map survive a restart; callback registrations deliberately do
// not — a restarted server has lost its promises, and clients discover
// that through validation, exactly the crash-recovery story of real Coda
// servers (and why reintegration is atomic: a retry after a crash is safe).

// The image types hold no maps: gob encodes maps in random iteration
// order, so a map anywhere in the stream would make two snapshots of the
// same state differ byte-for-byte. Directory entries and the authorship
// table are flattened to sorted slices instead, which is what lets the
// crash-matrix tests compare recovered state against a clean run by bytes
// alone.

// dirEntry is one directory entry, sorted by name in the image.
type dirEntry struct {
	Name string
	FID  codafs.FID
}

// objectImage is the serialized form of one object.
type objectImage struct {
	Status   codafs.Status
	Data     []byte
	Children []dirEntry
	Target   string
}

// authorEntry is one lastAuthor row, sorted by FID in the image.
type authorEntry struct {
	FID codafs.FID
	Who string
}

// appliedEntry is one row of the reintegration dedup set, sorted by
// client then sequence in the image. The set is logical volume state —
// replicas with identical logs hold identical sets — so it appears in
// every image, keeping SaveState byte-comparable across replicas and
// keeping retransmits idempotent across a restore.
type appliedEntry struct {
	Client string
	Seq    uint64
}

// volumeImage is the serialized form of one volume. JournalLSN is the
// volume WAL watermark: entries at or below it are already reflected in
// the image, so recovery skips them. ReplChain is the chain fingerprint
// at JournalLSN. Plain SaveState writes both as zero (the image stands
// alone); only Checkpoint embeds live watermarks.
type volumeImage struct {
	Info       codafs.VolumeInfo
	Root       codafs.FID
	NextVnode  uint64
	Objects    []objectImage
	LastAuthor []authorEntry
	Applied    []appliedEntry
	JournalLSN uint64
	ReplChain  uint32
}

// serverImage is the serialized form of a Server's durable state. MetaLSN
// is the meta-WAL watermark, zero outside Checkpoint images.
type serverImage struct {
	Volumes   []volumeImage
	NextVolID codafs.VolumeID
	MetaLSN   uint64
}

// fidLess orders FIDs for byte-stable snapshots.
func fidLess(a, b codafs.FID) bool {
	if a.Volume != b.Volume {
		return a.Volume < b.Volume
	}
	if a.Vnode != b.Vnode {
		return a.Vnode < b.Vnode
	}
	return a.Unique < b.Unique
}

// imageLocked copies one volume into its serialized form. Caller holds
// v.mu. Objects, directory entries, and authorship rows are emitted in
// sorted order so identical states produce identical bytes.
func (v *volume) imageLocked() volumeImage {
	vi := volumeImage{
		Info:      v.info,
		Root:      v.root,
		NextVnode: v.nextVnode,
	}
	for fid, who := range v.lastAuthor {
		vi.LastAuthor = append(vi.LastAuthor, authorEntry{FID: fid, Who: who})
	}
	sort.Slice(vi.LastAuthor, func(i, j int) bool {
		return fidLess(vi.LastAuthor[i].FID, vi.LastAuthor[j].FID)
	})
	for k := range v.applied {
		vi.Applied = append(vi.Applied, appliedEntry{Client: k.client, Seq: k.seq})
	}
	sort.Slice(vi.Applied, func(i, j int) bool {
		if vi.Applied[i].Client != vi.Applied[j].Client {
			return vi.Applied[i].Client < vi.Applied[j].Client
		}
		return vi.Applied[i].Seq < vi.Applied[j].Seq
	})
	for _, o := range v.objects {
		oi := objectImage{Status: o.Status, Target: o.Target}
		if o.Data != nil {
			oi.Data = append([]byte(nil), o.Data...)
		}
		for name, fid := range o.Children {
			oi.Children = append(oi.Children, dirEntry{Name: name, FID: fid})
		}
		sort.Slice(oi.Children, func(i, j int) bool {
			return oi.Children[i].Name < oi.Children[j].Name
		})
		vi.Objects = append(vi.Objects, oi)
	}
	sort.Slice(vi.Objects, func(i, j int) bool {
		return fidLess(vi.Objects[i].Status.FID, vi.Objects[j].Status.FID)
	})
	return vi
}

// SaveState writes all volumes to w. It acquires the registry lock, then
// every volume lock in ascending ID order — the canonical lock order, so a
// snapshot cannot deadlock against handlers or a concurrent SaveState —
// copies the images, and releases everything before encoding. The image is
// therefore a consistent point-in-time cut across all volumes, and volumes
// and objects are emitted in sorted order so identical states produce
// identical bytes. Watermarks are zero: two servers with the same logical
// state produce the same bytes whether or not a journal is attached.
func (s *Server) SaveState(w io.Writer) error {
	s.mu.Lock()
	vols := make([]*volume, 0, len(s.volumes))
	for _, v := range s.volumes {
		vols = append(vols, v)
	}
	sort.Slice(vols, func(i, j int) bool { return vols[i].id() < vols[j].id() })
	for _, v := range vols {
		v.mu.Lock()
	}
	img := serverImage{NextVolID: s.nextVolID}
	s.mu.Unlock()

	for _, v := range vols {
		vi := v.imageLocked()
		v.mu.Unlock()
		img.Volumes = append(img.Volumes, vi)
	}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("server: save state: %w", err)
	}
	return nil
}

// decodeServerImage decodes a serverImage, converting both decode errors
// and decode panics (gob panics on some forms of corruption) into a
// wrapped error. A truncated or bit-flipped image must never take the
// process down — recovery reports it and the operator decides.
func decodeServerImage(r io.Reader) (img serverImage, err error) {
	defer func() {
		if p := recover(); p != nil {
			img = serverImage{}
			err = fmt.Errorf("server: corrupted state image: %v", p)
		}
	}()
	if derr := gob.NewDecoder(r).Decode(&img); derr != nil {
		return serverImage{}, fmt.Errorf("server: load state: %w", derr)
	}
	return img, nil
}

// installImage populates an empty server from a decoded image.
func (s *Server) installImage(img serverImage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.volumes) > 0 {
		return fmt.Errorf("server: LoadState on a non-empty server")
	}
	s.nextVolID = img.NextVolID
	for _, vi := range img.Volumes {
		v := &volume{
			info:         vi.Info,
			root:         vi.Root,
			nextVnode:    vi.NextVnode,
			objects:      make(map[codafs.FID]*codafs.Object, len(vi.Objects)),
			lastAuthor:   make(map[codafs.FID]string, len(vi.LastAuthor)),
			objCallbacks: make(map[codafs.FID]map[string]bool),
			volCallbacks: make(map[string]bool),
			applied:      make(map[appliedKey]bool, len(vi.Applied)),
			// The image's watermarks anchor the replication state: the
			// retained log restarts empty at the watermark, and entries
			// at or below it count as shipped (peers that missed them
			// pull, they are never re-pushed).
			walLSN:        vi.JournalLSN,
			chain:         vi.ReplChain,
			replBaseLSN:   vi.JournalLSN,
			replBaseChain: vi.ReplChain,
			shippedLSN:    vi.JournalLSN,
		}
		for _, ae := range vi.LastAuthor {
			v.lastAuthor[ae.FID] = ae.Who
		}
		for _, ae := range vi.Applied {
			v.applied[appliedKey{client: ae.Client, seq: ae.Seq}] = true
		}
		for i := range vi.Objects {
			oi := vi.Objects[i]
			o := &codafs.Object{Status: oi.Status, Data: oi.Data, Target: oi.Target}
			if oi.Status.Type == codafs.Directory {
				o.Children = make(map[string]codafs.FID, len(oi.Children))
				for _, de := range oi.Children {
					o.Children[de.Name] = de.FID
				}
			}
			v.objects[o.Status.FID] = o
		}
		s.volumes[vi.Info.ID] = v
		s.byName[vi.Info.Name] = vi.Info.ID
	}
	return nil
}

// LoadState restores volumes saved by SaveState into a server that has no
// volumes yet. Corrupted images — truncated, bit-flipped, or otherwise —
// come back as errors, never panics.
func (s *Server) LoadState(r io.Reader) error {
	img, err := decodeServerImage(r)
	if err != nil {
		return err
	}
	return s.installImage(img)
}

// writeImageFS persists an image to path with full crash-atomicity: the
// bytes are written to a temporary file, fsynced, renamed into place, and
// the parent directory is fsynced so the rename itself is durable. A crash
// at any point leaves either the old image or the new one, never a torn
// mixture.
func writeImageFS(fsys crashfs.FS, path string, img serverImage) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(img); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("server: save state: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// SaveStateFS persists to path atomically and durably through fsys.
func (s *Server) SaveStateFS(fsys crashfs.FS, path string) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.SaveState(f); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// LoadStateFS restores from a SaveStateFS image; a missing file is not an
// error (first boot).
func (s *Server) LoadStateFS(fsys crashfs.FS, path string) error {
	f, err := fsys.Open(path)
	if crashfs.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadState(f)
}

// SaveStateFile persists to path atomically and durably.
func (s *Server) SaveStateFile(path string) error {
	return s.SaveStateFS(crashfs.OS{}, path)
}

// LoadStateFile restores from a SaveStateFile image; a missing file is not
// an error (first boot).
func (s *Server) LoadStateFile(path string) error {
	return s.LoadStateFS(crashfs.OS{}, path)
}
