package server

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/codafs"
)

// Persistence for server state. Volumes, objects, version stamps, and the
// authorship map survive a restart; callback registrations deliberately do
// not — a restarted server has lost its promises, and clients discover
// that through validation, exactly the crash-recovery story of real Coda
// servers (and why reintegration is atomic: a retry after a crash is safe).

// volumeImage is the serialized form of one volume.
type volumeImage struct {
	Info       codafs.VolumeInfo
	Root       codafs.FID
	NextVnode  uint64
	Objects    []codafs.Object
	LastAuthor map[codafs.FID]string
}

// serverImage is the serialized form of a Server's durable state.
type serverImage struct {
	Volumes   []volumeImage
	NextVolID codafs.VolumeID
}

// fidLess orders FIDs for byte-stable snapshots.
func fidLess(a, b codafs.FID) bool {
	if a.Volume != b.Volume {
		return a.Volume < b.Volume
	}
	if a.Vnode != b.Vnode {
		return a.Vnode < b.Vnode
	}
	return a.Unique < b.Unique
}

// SaveState writes all volumes to w. It acquires the registry lock, then
// every volume lock in ascending ID order — the canonical lock order, so a
// snapshot cannot deadlock against handlers or a concurrent SaveState —
// copies the images, and releases everything before encoding. The image is
// therefore a consistent point-in-time cut across all volumes, and volumes
// and objects are emitted in sorted order so identical states produce
// identical bytes.
func (s *Server) SaveState(w io.Writer) error {
	s.mu.Lock()
	vols := make([]*volume, 0, len(s.volumes))
	for _, v := range s.volumes {
		vols = append(vols, v)
	}
	sort.Slice(vols, func(i, j int) bool { return vols[i].id() < vols[j].id() })
	for _, v := range vols {
		v.mu.Lock()
	}
	img := serverImage{NextVolID: s.nextVolID}
	s.mu.Unlock()

	for _, v := range vols {
		vi := volumeImage{
			Info:       v.info,
			Root:       v.root,
			NextVnode:  v.nextVnode,
			LastAuthor: make(map[codafs.FID]string, len(v.lastAuthor)),
		}
		for fid, who := range v.lastAuthor {
			vi.LastAuthor[fid] = who
		}
		for _, o := range v.objects {
			vi.Objects = append(vi.Objects, *o.Clone())
		}
		v.mu.Unlock()
		sort.Slice(vi.Objects, func(i, j int) bool {
			return fidLess(vi.Objects[i].Status.FID, vi.Objects[j].Status.FID)
		})
		img.Volumes = append(img.Volumes, vi)
	}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("server: save state: %w", err)
	}
	return nil
}

// LoadState restores volumes saved by SaveState into a server that has no
// volumes yet.
func (s *Server) LoadState(r io.Reader) error {
	var img serverImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return fmt.Errorf("server: load state: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.volumes) > 0 {
		return fmt.Errorf("server: LoadState on a non-empty server")
	}
	s.nextVolID = img.NextVolID
	for _, vi := range img.Volumes {
		v := &volume{
			info:         vi.Info,
			root:         vi.Root,
			nextVnode:    vi.NextVnode,
			objects:      make(map[codafs.FID]*codafs.Object, len(vi.Objects)),
			lastAuthor:   vi.LastAuthor,
			objCallbacks: make(map[codafs.FID]map[string]bool),
			volCallbacks: make(map[string]bool),
		}
		if v.lastAuthor == nil {
			v.lastAuthor = make(map[codafs.FID]string)
		}
		for i := range vi.Objects {
			o := vi.Objects[i]
			v.objects[o.Status.FID] = &o
		}
		s.volumes[vi.Info.ID] = v
		s.byName[vi.Info.Name] = vi.Info.ID
	}
	return nil
}

// SaveStateFile persists to path atomically.
func (s *Server) SaveStateFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.SaveState(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadStateFile restores from a SaveStateFile image; a missing file is not
// an error (first boot).
func (s *Server) LoadStateFile(path string) error {
	f, err := os.Open(filepath.Clean(path))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadState(f)
}
