package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/crashfs"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/wal"
)

// Server-side durability. Real Coda servers keep their metadata in RVM;
// here every mutation that reaches commitApply is first framed into a
// write-ahead log, so a crashed server recovers to exactly the set of
// updates it acknowledged. The journal is split along the concurrency
// domains of DESIGN.md §8: one meta WAL (under the registry lock)
// records volume creations, and one WAL per volume (under that volume's
// lock) records applied mutation batches — a shared log would re-
// serialize the volumes that the per-volume locking deliberately keeps
// independent.
//
// Replay is deterministic because apply.go takes every timestamp and
// version decision from the records themselves and from volume state;
// the server clock is never consulted during apply. The administrative
// seeding helpers (WriteFile, MakeDir, MakeSymlink) bypass the apply
// pipeline and are NOT journaled: seed volumes before attaching the
// journal, or re-seed on boot.

// metaEntry is one meta-WAL record: a volume creation.
type metaEntry struct {
	LSN     uint64
	Name    string
	ID      codafs.VolumeID
	ModTime time.Time // the root directory's creation time
}

// volEntry is one per-volume WAL record: a batch of records that passed
// validation and committed atomically. Recs are the reconstructed
// records (fragments attached, deltas applied), so replay needs neither
// the fragment buffers nor the delta bases.
type volEntry struct {
	LSN    uint64
	Client string
	Recs   []cml.Record
}

// JournalOptions configures Server.AttachJournal.
type JournalOptions struct {
	FS           crashfs.FS
	Dir          string
	Policy       wal.SyncPolicy
	Interval     time.Duration
	SegmentBytes int64
}

// RecoveryInfo reports what Server.AttachJournal reconstructed.
type RecoveryInfo struct {
	SnapshotLoaded  bool
	VolumesReplayed int // volume creations replayed from the meta WAL
	BatchesReplayed int // mutation batches replayed from per-volume WALs
	RecordsReplayed int
	Meta            wal.RecoveryStats
	Volumes         wal.RecoveryStats // summed across per-volume WALs
}

// serverJournal is the attached durability state. sjMu guards the meta
// WAL and its LSN; it nests inside s.mu (CreateVolume and Checkpoint
// hold s.mu first). Per-volume WALs are guarded by their volume's mu.
type serverJournal struct {
	fs    crashfs.FS
	dir   string
	opts  JournalOptions
	clock simtime.Clock
	obs   *obs.Registry
	node  string // the server's address, span node label for WAL spans

	sjMu    sync.Mutex
	meta    *wal.WAL
	metaLSN uint64
	encBuf  bytes.Buffer // gob scratch reused across meta appends (sjMu serializes)
}

func (sj *serverJournal) snapshotPath() string { return filepath.Join(sj.dir, "snapshot") }

func (sj *serverJournal) volDir(id codafs.VolumeID) string {
	return filepath.Join(sj.dir, fmt.Sprintf("vol-%d", id))
}

func (sj *serverJournal) walOptions(dir string) wal.Options {
	return wal.Options{
		FS:           sj.fs,
		Dir:          dir,
		SegmentBytes: sj.opts.SegmentBytes,
		Policy:       sj.opts.Policy,
		Interval:     sj.opts.Interval,
		Clock:        sj.clock,
		Obs:          sj.obs,
		Node:         sj.node,
	}
}

// AttachJournal recovers durable server state from opts.Dir and begins
// journaling every subsequent applied mutation and volume creation. It
// must run before the server takes traffic, on a server whose volumes
// (if any) come only from the snapshot and WALs.
func (s *Server) AttachJournal(opts JournalOptions) (RecoveryInfo, error) {
	var info RecoveryInfo
	if opts.FS == nil || opts.Dir == "" {
		return info, errors.New("server: journal needs FS and Dir")
	}
	s.mu.Lock()
	attached := s.journal != nil
	s.mu.Unlock()
	if attached {
		return info, errors.New("server: journal already attached")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return info, err
	}
	sj := &serverJournal{fs: opts.FS, dir: opts.Dir, opts: opts, clock: s.clock, obs: s.obs, node: s.addr}

	// Snapshot: restores the bulk and carries the LSN watermarks that
	// fence off WAL entries already reflected in it.
	var metaWatermark uint64
	volWatermarks := make(map[codafs.VolumeID]uint64)
	if f, err := opts.FS.Open(sj.snapshotPath()); err == nil {
		img, derr := decodeServerImage(f)
		_ = f.Close()
		if derr != nil {
			return info, fmt.Errorf("server: journal snapshot: %w", derr)
		}
		if err := s.installImage(img); err != nil {
			return info, err
		}
		metaWatermark = img.MetaLSN
		for _, vi := range img.Volumes {
			volWatermarks[vi.Info.ID] = vi.JournalLSN
		}
		info.SnapshotLoaded = true
	} else if !crashfs.IsNotExist(err) {
		return info, err
	}

	// Meta WAL: replay volume creations the snapshot predates.
	meta, metaStats, err := wal.Open(sj.walOptions(filepath.Join(opts.Dir, "meta")), func(payload []byte) error {
		var e metaEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return fmt.Errorf("server: meta journal entry: %w", err)
		}
		if e.LSN > sj.metaLSN {
			sj.metaLSN = e.LSN
		}
		if e.LSN <= metaWatermark {
			return nil
		}
		info.VolumesReplayed++
		return s.replayCreateVolume(e)
	})
	if err != nil {
		return info, fmt.Errorf("server: meta journal open: %w", err)
	}
	if sj.metaLSN < metaWatermark {
		sj.metaLSN = metaWatermark
	}
	sj.meta = meta

	// Per-volume WALs: replay applied batches through the same apply
	// pipeline the live path uses, in ascending volume-ID order so the
	// recovery is deterministic.
	for _, v := range s.volumesByID() {
		v.mu.Lock()
		watermark := volWatermarks[v.info.ID]
		//codalint:ignore lockhold recovery replay runs before the server takes traffic; the volume lock covers replaying WAL batches into volume state
		w, stats, err := wal.Open(sj.walOptions(sj.volDir(v.info.ID)), func(payload []byte) error {
			var e volEntry
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
				return fmt.Errorf("server: volume %d journal entry: %w", v.info.ID, err)
			}
			if e.LSN > v.walLSN {
				v.walLSN = e.LSN
			}
			if e.LSN <= watermark {
				return nil
			}
			info.BatchesReplayed++
			info.RecordsReplayed += len(e.Recs)
			if err := replayBatchLocked(v, e); err != nil {
				return err
			}
			// Rebuild the replication state the entry represented: the
			// chain folds over the exact payload bytes, so a replayed
			// server fingerprints identically to one that never crashed.
			v.advanceReplLocked(e.Client, e.LSN, e.Recs, payload)
			return nil
		})
		if err != nil {
			v.mu.Unlock()
			return info, fmt.Errorf("server: volume %d journal open: %w", v.info.ID, err)
		}
		if v.walLSN < watermark {
			v.walLSN = watermark
		}
		// Replayed entries were pushed by the pre-crash process (or will
		// be pulled by peers); recovery does not re-ship them.
		v.shippedLSN = v.walLSN
		v.wal = w
		v.mu.Unlock()
		info.Volumes.Records += stats.Records
		info.Volumes.Segments += stats.Segments
		info.Volumes.TornBytes += stats.TornBytes
		info.Volumes.TornSegments += stats.TornSegments
	}
	info.Meta = metaStats

	s.mu.Lock()
	s.journal = sj
	s.mu.Unlock()
	return info, nil
}

// replayCreateVolume re-creates one journaled volume with its recorded
// identity; the clock is not consulted, so replay is reproducible.
func (s *Server) replayCreateVolume(e metaEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.volumes[e.ID]; dup {
		return fmt.Errorf("server: journal re-creates volume %d", e.ID)
	}
	v := newVolume(e.ID, e.Name, e.ModTime)
	s.volumes[e.ID] = v
	s.byName[e.Name] = e.ID
	if e.ID > s.nextVolID {
		s.nextVolID = e.ID
	}
	return nil
}

// replayBatchLocked re-applies one journaled batch. The batch passed
// validation when it was journaled, and apply is a pure function of
// volume state and the records, so a validation failure here means the
// journal and snapshot disagree — surfaced, not ignored. Caller holds
// v.mu.
func replayBatchLocked(v *volume, e volEntry) error {
	a := newApply(v)
	for i := range e.Recs {
		if res := applyRecord(a, &e.Recs[i], e.Client); !res.OK {
			return fmt.Errorf("server: journal replay: record %d (%s) no longer applies: %s",
				i, e.Recs[i].Kind, res.Msg)
		}
	}
	// Callback state is empty during recovery, so the breaks are empty
	// and there is nothing to dispatch.
	_, _, _ = commitApply(a, e.Client)
	return nil
}

// journalBatchLocked frames an applied batch into v's WAL before it
// commits, and advances the volume's replication state. Caller holds
// v.mu. The frame is built even when no WAL is attached (a nil WAL just
// skips the Append): the payload bytes are what the chain fingerprint
// folds over and what peers receive, so an unjournaled server is still a
// full replica — the LSN sequence IS the replication order.
//
// Each WAL payload must be a self-contained gob stream — replay runs a
// fresh decoder per record — so the encoder is rebuilt per batch; the
// buffer it fills is the volume's reusable scratch, and the WAL copies
// the payload into its own frame before Append returns
// (BenchmarkAllocJournalBatch pins the steady state).
//
//codalint:hotpath per-batch journal framing
func journalBatchLocked(v *volume, client string, recs []cml.Record, sc obs.SpanContext) error {
	lsn := v.walLSN + 1
	v.encBuf.Reset()
	//codalint:ignore allocscan gob must box and walk the batch, and each payload needs a fresh encoder to stay self-contained; the buffer underneath is reused
	if err := gob.NewEncoder(&v.encBuf).Encode(volEntry{LSN: lsn, Client: client, Recs: recs}); err != nil {
		return err
	}
	if v.wal != nil {
		if err := v.wal.AppendSpan(v.encBuf.Bytes(), sc); err != nil {
			return err
		}
	}
	v.walLSN = lsn
	//codalint:ignore allocscan retaining the entry for peer shipping must grow the in-memory log; the records themselves are shared, not copied
	v.advanceReplLocked(client, lsn, recs, v.encBuf.Bytes())
	return nil
}

// journalCreateLocked records a volume creation in the meta WAL and
// opens the new volume's own WAL. Caller holds s.mu.
func (s *Server) journalCreateLocked(v *volume, modTime time.Time) error {
	sj := s.journal
	if sj == nil {
		return nil
	}
	sj.sjMu.Lock()
	defer sj.sjMu.Unlock()
	e := metaEntry{LSN: sj.metaLSN + 1, Name: v.info.Name, ID: v.info.ID, ModTime: modTime}
	sj.encBuf.Reset()
	if err := gob.NewEncoder(&sj.encBuf).Encode(e); err != nil {
		return err
	}
	//codalint:ignore lockhold journal-first commit: sjMu must cover the meta append so meta-LSN order matches creation order
	if err := sj.meta.Append(sj.encBuf.Bytes()); err != nil {
		return err
	}
	sj.metaLSN = e.LSN
	//codalint:ignore lockhold the new volume's WAL must exist before the creation is visible; sjMu covers the open
	w, _, err := wal.Open(sj.walOptions(sj.volDir(v.info.ID)), nil)
	if err != nil {
		return err
	}
	v.wal = w
	return nil
}

// Checkpoint writes a durable snapshot carrying every WAL's watermark,
// then truncates all WALs — the RVM truncation analogue. It holds the
// registry lock and every volume lock for the duration, so mutations and
// creations are blocked and the snapshot is exactly consistent with its
// watermarks.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	sj := s.journal
	if sj == nil {
		s.mu.Unlock()
		return errors.New("server: no journal attached")
	}
	vols := make([]*volume, 0, len(s.volumes))
	for _, v := range s.volumes {
		vols = append(vols, v)
	}
	sort.Slice(vols, func(i, j int) bool { return vols[i].id() < vols[j].id() })
	for _, v := range vols {
		v.mu.Lock()
	}
	defer func() {
		for i := len(vols) - 1; i >= 0; i-- {
			vols[i].mu.Unlock()
		}
		s.mu.Unlock()
	}()

	sj.sjMu.Lock()
	img := serverImage{NextVolID: s.nextVolID, MetaLSN: sj.metaLSN}
	sj.sjMu.Unlock()
	for _, v := range vols {
		vi := v.imageLocked()
		vi.JournalLSN = v.walLSN
		vi.ReplChain = v.chain
		img.Volumes = append(img.Volumes, vi)
	}
	//codalint:ignore lockhold checkpoint holds every lock for the duration so the snapshot is exactly consistent with its WAL watermarks
	if err := writeImageFS(sj.fs, sj.snapshotPath(), img); err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	sj.sjMu.Lock()
	//codalint:ignore lockhold WAL truncation must happen under the same locks as the snapshot it fences, or a racing append could be dropped
	err := sj.meta.Reset()
	sj.sjMu.Unlock()
	if err != nil {
		return fmt.Errorf("server: checkpoint: reset meta WAL: %w", err)
	}
	for _, v := range vols {
		if v.wal == nil {
			continue
		}
		//codalint:ignore lockhold WAL truncation must happen under the same locks as the snapshot it fences, or a racing append could be dropped
		if err := v.wal.Reset(); err != nil {
			return fmt.Errorf("server: checkpoint: reset volume %d WAL: %w", v.info.ID, err)
		}
	}
	return nil
}

// CloseJournal detaches the journal and closes every WAL.
func (s *Server) CloseJournal() error {
	s.mu.Lock()
	sj := s.journal
	s.journal = nil
	vols := make([]*volume, 0, len(s.volumes))
	for _, v := range s.volumes {
		vols = append(vols, v)
	}
	s.mu.Unlock()
	if sj == nil {
		return nil
	}
	var firstErr error
	sj.sjMu.Lock()
	//codalint:ignore lockhold final flush on shutdown; the journal is being detached and no traffic remains
	if err := sj.meta.Close(); err != nil {
		firstErr = err
	}
	sj.sjMu.Unlock()
	for _, v := range vols {
		v.mu.Lock()
		w := v.wal
		v.wal = nil
		v.mu.Unlock()
		if w != nil {
			if err := w.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
