package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/wire"
)

func TestServerSaveLoadRoundTrip(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("usr")
	w.srv.WriteFile("usr", "a/b/file.txt", []byte("persist me"))
	w.srv.MakeSymlink("usr", "link", "a/b/file.txt")
	stampBefore, _ := w.srv.VolumeStamp("usr")

	var buf bytes.Buffer
	if err := w.srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh server (a restart) restores the image.
	s2 := simtime.NewSim(simtime.Epoch1995)
	n2 := netsim.New(s2, 2)
	n2.SetDefaults(netsim.Ethernet.Params())
	srv2 := New(s2, n2.Host("server"))
	if err := srv2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if data, err := srv2.ReadFile("usr", "a/b/file.txt"); err != nil || string(data) != "persist me" {
		t.Fatalf("restored file = %q, %v", data, err)
	}
	if stampAfter, _ := srv2.VolumeStamp("usr"); stampAfter != stampBefore {
		t.Errorf("volume stamp changed across restart: %d != %d", stampAfter, stampBefore)
	}

	// Mutations continue cleanly: new objects get fresh FIDs, stamps
	// advance from where they were.
	if _, err := srv2.WriteFile("usr", "post-restart.txt", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if stampAfter2, _ := srv2.VolumeStamp("usr"); stampAfter2 <= stampBefore {
		t.Error("stamp did not advance after restart")
	}
}

func TestServerRestartInvalidatesNothingForClients(t *testing.T) {
	// A client that cached state and volume stamps before the restart
	// validates successfully afterwards: stamps persist even though
	// callback promises do not.
	w := newWorld()
	w.srv.CreateVolume("usr")
	w.srv.WriteFile("usr", "f", []byte("stable"))

	var img bytes.Buffer
	w.sim.Run(func() {
		c := w.client("c1")
		gv := call[wire.GetVolumeRep](t, c, wire.GetVolume{Name: "usr"})
		call[wire.GetVolumeStampRep](t, c, wire.GetVolumeStamp{Volume: gv.Info.ID})
		if err := w.srv.SaveState(&img); err != nil {
			t.Fatal(err)
		}
		// "Restart": new server instance at the same address.
		w.srv.Close()
		w.sim.Sleep(time.Second)
		srv2 := New(w.sim, w.net.Host("server2"))
		if err := srv2.LoadState(&img); err != nil {
			t.Fatal(err)
		}
		// Same stamp → the client's validation succeeds.
		c2 := w.client("c1b")
		rep, err := wire.Call[wire.ValidateVolumesRep](c2.node, "server2", wire.ValidateVolumes{
			Volumes: []wire.VolStampPair{{ID: gv.Info.ID, Stamp: gv.Info.Stamp}},
		}, callOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Valid[0] {
			t.Error("volume stamp invalid after clean restart")
		}
	})
}

func TestLoadStateRefusesNonEmptyServer(t *testing.T) {
	w := newWorld()
	w.srv.CreateVolume("usr")
	var buf bytes.Buffer
	if err := w.srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := w.srv.LoadState(&buf); err == nil {
		t.Error("LoadState into a non-empty server accepted")
	}
}
