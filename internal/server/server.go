// Package server implements the Coda file server of the reproduction.
//
// A Server exports volumes of objects to Venus clients over rpc2/wire. It
// maintains the two granularities of cache-coherence state from §4.2:
// per-object version stamps with object callbacks, and per-volume version
// stamps with volume callbacks. Any update to an object bumps both its own
// version and its volume's stamp, and breaks the callbacks other clients
// hold on the object and on the volume.
//
// Reintegration (§4.3) is atomic: a chunk of CML records is validated and
// applied under an all-or-nothing overlay, so a failure — conflict, crash,
// or network loss — leaves no server state that would hinder a retry.
// Large files arrive ahead of reintegration as resumable fragments
// (§4.3.5); the server assembles them and only then lets the Reintegrate
// that references them proceed, the reverse of the strong-connectivity
// ordering, exactly as the paper argues.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/codafs"
	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Server is one Coda file server.
type Server struct {
	clock simtime.Clock
	node  *rpc2.Node

	mu        sync.Mutex
	volumes   map[codafs.VolumeID]*volume
	byName    map[string]codafs.VolumeID
	nextVolID codafs.VolumeID
	clients   map[string]bool
	frags     map[fragKey]*fragBuf
	stats     Stats

	breaksSent atomic.Int64 // outside mu: bumped while breaks dispatch
}

// Stats counts server activity, for tests and experiments.
type Stats struct {
	Calls              int64
	Reintegrations     int64
	ReintegrationFails int64
	RecordsApplied     int64
	Conflicts          int64
	BreaksSent         int64
}

type volume struct {
	info      codafs.VolumeInfo
	root      codafs.FID
	objects   map[codafs.FID]*codafs.Object
	nextVnode uint64

	// lastAuthor remembers which client produced each object's current
	// version; a reintegrating client is not in conflict with its own
	// earlier chunks (the storeid rule).
	lastAuthor map[codafs.FID]string

	objCallbacks map[codafs.FID]map[string]bool
	volCallbacks map[string]bool
}

type fragKey struct {
	client   string
	transfer uint64
}

type fragBuf struct {
	total int64
	data  []byte
}

// New creates a server listening on conn.
func New(clock simtime.Clock, conn netsim.PacketConn) *Server {
	s := &Server{
		clock:   clock,
		volumes: make(map[codafs.VolumeID]*volume),
		byName:  make(map[string]codafs.VolumeID),
		clients: make(map[string]bool),
		frags:   make(map[fragKey]*fragBuf),
	}
	s.node = rpc2.NewNode(clock, conn, netmon.NewMonitor(clock), s.handle)
	return s
}

// Addr returns the server's network address.
func (s *Server) Addr() string { return s.node.Addr() }

// Node exposes the server's RPC node (for tests).
func (s *Server) Node() *rpc2.Node { return s.node }

// Stats returns a snapshot of activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BreaksSent = s.breaksSent.Load()
	return st
}

// Close shuts the server down.
func (s *Server) Close() { s.node.Close() }

// ---- Administrative (non-RPC) interface ----

// CreateVolume creates an empty volume with a root directory.
func (s *Server) CreateVolume(name string) (codafs.VolumeInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		return codafs.VolumeInfo{}, fmt.Errorf("server: volume %q exists", name)
	}
	s.nextVolID++
	id := s.nextVolID
	v := &volume{
		info:         codafs.VolumeInfo{ID: id, Name: name, Stamp: 1},
		nextVnode:    1,
		objects:      make(map[codafs.FID]*codafs.Object),
		lastAuthor:   make(map[codafs.FID]string),
		objCallbacks: make(map[codafs.FID]map[string]bool),
		volCallbacks: make(map[string]bool),
	}
	root := codafs.FID{Volume: id, Vnode: 1, Unique: 1}
	v.root = root
	v.objects[root] = &codafs.Object{
		Status: codafs.Status{
			FID: root, Type: codafs.Directory, Version: 1,
			ModTime: s.clock.Now(), Mode: 0755, Owner: "root",
		},
		Children: make(map[string]codafs.FID),
	}
	s.volumes[id] = v
	s.byName[name] = id
	return v.info, nil
}

// WriteFile creates or replaces a file at relPath inside the named volume,
// creating intermediate directories. It acts as an anonymous co-located
// client: versions are bumped and callbacks broken, which is how the
// experiments inject "another client updated the volume" events (Fig 9).
func (s *Server) WriteFile(volName, relPath string, data []byte) (codafs.Status, error) {
	return s.writeObject(volName, relPath, codafs.File, data, "")
}

// MakeDir creates a directory (and parents) inside the named volume.
func (s *Server) MakeDir(volName, relPath string) (codafs.Status, error) {
	return s.writeObject(volName, relPath, codafs.Directory, nil, "")
}

// MakeSymlink creates a symlink at relPath pointing at target.
func (s *Server) MakeSymlink(volName, relPath, target string) (codafs.Status, error) {
	return s.writeObject(volName, relPath, codafs.Symlink, nil, target)
}

// Resolve walks relPath within the named volume and returns the object's
// status. An empty relPath names the volume root.
func (s *Server) Resolve(volName, relPath string) (codafs.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, fid, err := s.walkLocked(volName, relPath)
	if err != nil {
		return codafs.Status{}, err
	}
	o := v.objects[fid]
	if o == nil {
		return codafs.Status{}, fmt.Errorf("server: dangling entry %s/%s", volName, relPath)
	}
	return o.Status, nil
}

// ReadFile returns a file's contents, server-side.
func (s *Server) ReadFile(volName, relPath string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, fid, err := s.walkLocked(volName, relPath)
	if err != nil {
		return nil, err
	}
	o := v.objects[fid]
	if o == nil {
		return nil, fmt.Errorf("server: dangling entry %s/%s", volName, relPath)
	}
	if o.Status.Type != codafs.File {
		return nil, fmt.Errorf("server: %s/%s is a %s", volName, relPath, o.Status.Type)
	}
	return append([]byte(nil), o.Data...), nil
}

// VolumeStamp returns the named volume's current stamp.
func (s *Server) VolumeStamp(volName string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byName[volName]
	if !ok {
		return 0, fmt.Errorf("server: no volume %q", volName)
	}
	return s.volumes[id].info.Stamp, nil
}

func (s *Server) writeObject(volName, relPath string, typ codafs.ObjType, data []byte, target string) (codafs.Status, error) {
	vol, comps, err := s.splitAdminPath(volName, relPath)
	if err != nil {
		return codafs.Status{}, err
	}
	s.mu.Lock()
	v := vol
	dir := v.root
	var breaks []breakWork
	for i, c := range comps {
		last := i == len(comps)-1
		parent := v.objects[dir]
		child, exists := parent.Children[c]
		if last {
			if typ == codafs.File && exists {
				o := v.objects[child]
				if o.Status.Type != codafs.File {
					s.mu.Unlock()
					return codafs.Status{}, fmt.Errorf("server: %s exists and is a %s", c, o.Status.Type)
				}
				o.Data = append([]byte(nil), data...)
				o.Status.Length = int64(len(data))
				o.Status.ModTime = s.clock.Now()
				s.bumpLocked(v, child, "")
				breaks = append(breaks, s.collectBreaksLocked(v, child, ""))
				st := o.Status
				s.mu.Unlock()
				s.dispatchBreaks(breaks)
				return st, nil
			}
			if exists {
				s.mu.Unlock()
				return codafs.Status{}, fmt.Errorf("server: %s already exists", c)
			}
			fid := s.allocFIDLocked(v)
			o := &codafs.Object{
				Status: codafs.Status{
					FID: fid, Type: typ, Length: int64(len(data)),
					ModTime: s.clock.Now(), Mode: 0644, Owner: "root", Links: 1,
				},
				Target: target,
			}
			if typ == codafs.File {
				o.Data = append([]byte(nil), data...)
			}
			if typ == codafs.Directory {
				o.Children = make(map[string]codafs.FID)
				o.Status.Mode = 0755
			}
			v.objects[fid] = o
			parent.Children[c] = fid
			refreshDirLen(parent)
			parent.Status.ModTime = s.clock.Now()
			s.bumpLocked(v, fid, "")
			s.bumpLocked(v, parent.Status.FID, "")
			breaks = append(breaks,
				s.collectBreaksLocked(v, fid, ""),
				s.collectBreaksLocked(v, parent.Status.FID, ""))
			st := o.Status
			s.mu.Unlock()
			s.dispatchBreaks(breaks)
			return st, nil
		}
		if !exists {
			fid := s.allocFIDLocked(v)
			v.objects[fid] = &codafs.Object{
				Status: codafs.Status{
					FID: fid, Type: codafs.Directory,
					ModTime: s.clock.Now(), Mode: 0755, Owner: "root",
				},
				Children: make(map[string]codafs.FID),
			}
			parent.Children[c] = fid
			refreshDirLen(parent)
			s.bumpLocked(v, fid, "")
			s.bumpLocked(v, parent.Status.FID, "")
			child = fid
		} else if v.objects[child].Status.Type != codafs.Directory {
			s.mu.Unlock()
			return codafs.Status{}, fmt.Errorf("server: %s is not a directory", c)
		}
		dir = child
	}
	s.mu.Unlock()
	return codafs.Status{}, fmt.Errorf("server: empty path")
}

func (s *Server) splitAdminPath(volName, relPath string) (*volume, []string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byName[volName]
	if !ok {
		return nil, nil, fmt.Errorf("server: no volume %q", volName)
	}
	_, comps, err := codafs.SplitPath(codafs.JoinPath(volName, relPath))
	if err != nil {
		return nil, nil, err
	}
	if len(comps) == 0 {
		return nil, nil, fmt.Errorf("server: path names the volume root")
	}
	return s.volumes[id], comps, nil
}

func (s *Server) walkLocked(volName, relPath string) (*volume, codafs.FID, error) {
	id, ok := s.byName[volName]
	if !ok {
		return nil, codafs.FID{}, fmt.Errorf("server: no volume %q", volName)
	}
	v := s.volumes[id]
	_, comps, err := codafs.SplitPath(codafs.JoinPath(volName, relPath))
	if err != nil {
		return nil, codafs.FID{}, err
	}
	fid := v.root
	for _, c := range comps {
		o := v.objects[fid]
		if o == nil {
			return nil, codafs.FID{}, fmt.Errorf("server: dangling entry at %s", c)
		}
		if o.Status.Type != codafs.Directory {
			return nil, codafs.FID{}, fmt.Errorf("server: %s is not a directory", c)
		}
		child, ok := o.Children[c]
		if !ok {
			return nil, codafs.FID{}, fmt.Errorf("server: %s not found", c)
		}
		fid = child
	}
	return v, fid, nil
}

func (s *Server) allocFIDLocked(v *volume) codafs.FID {
	v.nextVnode++
	return codafs.FID{Volume: v.info.ID, Vnode: v.nextVnode, Unique: v.nextVnode}
}

// bumpLocked advances the volume stamp and sets the object's version to it.
func (s *Server) bumpLocked(v *volume, fid codafs.FID, author string) {
	v.info.Stamp++
	if o, ok := v.objects[fid]; ok {
		o.Status.Version = v.info.Stamp
	}
	if author != "" {
		v.lastAuthor[fid] = author
	} else {
		delete(v.lastAuthor, fid)
	}
}

// breakWork is a set of clients to notify about one invalidation.
type breakWork struct {
	fid     codafs.FID
	volID   codafs.VolumeID
	objTo   []string
	volTo   []string
	hasWork bool
}

// collectBreaksLocked gathers and clears the callback registrations that an
// update to fid invalidates, excluding the updating client.
func (s *Server) collectBreaksLocked(v *volume, fid codafs.FID, updater string) breakWork {
	w := breakWork{fid: fid, volID: v.info.ID}
	if cbs := v.objCallbacks[fid]; cbs != nil {
		for c := range cbs {
			if c != updater {
				w.objTo = append(w.objTo, c)
				delete(cbs, c)
				w.hasWork = true
			}
		}
	}
	for c := range v.volCallbacks {
		if c != updater {
			w.volTo = append(w.volTo, c)
			delete(v.volCallbacks, c)
			w.hasWork = true
		}
	}
	return w
}

// dispatchBreaks delivers callback breaks asynchronously; a client updating
// an object never waits on other clients' notifications (first design
// principle: don't punish strongly-connected clients).
func (s *Server) dispatchBreaks(work []breakWork) {
	// Coalesce per destination client.
	type agg struct {
		fids map[codafs.FID]bool
		vols map[codafs.VolumeID]bool
	}
	byClient := make(map[string]*agg)
	get := func(c string) *agg {
		a := byClient[c]
		if a == nil {
			a = &agg{fids: make(map[codafs.FID]bool), vols: make(map[codafs.VolumeID]bool)}
			byClient[c] = a
		}
		return a
	}
	for _, w := range work {
		if !w.hasWork {
			continue
		}
		for _, c := range w.objTo {
			get(c).fids[w.fid] = true
		}
		for _, c := range w.volTo {
			get(c).vols[w.volID] = true
		}
	}
	for client, a := range byClient {
		brk := wire.CallbackBreak{}
		for f := range a.fids {
			brk.FIDs = append(brk.FIDs, f)
		}
		for v := range a.vols {
			brk.Volumes = append(brk.Volumes, v)
		}
		client := client
		s.breaksSent.Add(1)
		s.clock.Go(func() {
			// Best effort: an unreachable client revalidates later.
			_, _ = wire.Call[wire.CallbackBreakRep](s.node, client, brk, rpc2.CallOpts{MaxRetries: 2})
		})
	}
}
