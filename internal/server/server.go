// Package server implements the Coda file server of the reproduction.
//
// A Server exports volumes of objects to Venus clients over rpc2/wire. It
// maintains the two granularities of cache-coherence state from §4.2:
// per-object version stamps with object callbacks, and per-volume version
// stamps with volume callbacks. Any update to an object bumps both its own
// version and its volume's stamp, and breaks the callbacks other clients
// hold on the object and on the volume.
//
// Reintegration (§4.3) is atomic: a chunk of CML records is validated and
// applied under an all-or-nothing overlay, so a failure — conflict, crash,
// or network loss — leaves no server state that would hinder a retry.
// Large files arrive ahead of reintegration as resumable fragments
// (§4.3.5); the server assembles them and only then lets the Reintegrate
// that references them proceed, the reverse of the strong-connectivity
// ordering, exactly as the paper argues.
//
// Concurrency model: the volume is the locking unit, matching §4.3.3's
// observation that reintegration is applied per-volume. Each volume is an
// independent concurrency domain behind its own mutex; the Server itself
// only serializes the narrow shared structures around the domains — the
// volume registry, the connected-client table, and the fragment buffers —
// each behind its own lock. The lock hierarchy is registry → volume, never
// reversed; when several volume locks are needed at once (persistence
// snapshots) they are taken in ascending volume-ID order. RPCs are never
// issued while holding any server lock. See DESIGN.md §8.
package server

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codafs"
	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/simtime"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Maintenance policy. The sweeper bounds state that remote peers can
// abandon: fragment buffers from transfers that died mid-shipment and
// table entries for clients that will never call again.
const (
	// sweepInterval is how often the maintenance sweep runs.
	sweepInterval = 5 * time.Minute
	// fragTTL is how long a fragment buffer survives without the client
	// appending to it. Weakly-connected clients legitimately pause
	// mid-transfer (disconnections, foreground deference), so this is
	// generous; a client that outlives it restarts from offset zero.
	fragTTL = 6 * time.Hour
	// clientTTL evicts connected-client entries for peers netmon has not
	// heard from. Callback registrations are deliberately untouched: a
	// silent client may merely be disconnected, and its promises are
	// reclaimed object-by-object as updates break them.
	clientTTL = 6 * time.Hour
)

// Server is one Coda file server.
type Server struct {
	clock simtime.Clock
	node  *rpc2.Node
	obs   *obs.Registry // nil unless WithObs; nil is fully inert
	addr  string        // the server's own address, span node label
	met   smetrics

	stats   counters      // atomics: bumped from any domain without a lock
	stopped chan struct{} // closed by Close; stops the maintenance sweep
	closer  sync.Once

	// peers are the replica group members this server pushes committed
	// log entries to (ShipLog) and pulls missed suffixes from (FetchLog).
	// Immutable after New; empty means unreplicated.
	peers []string

	// divergenceHook fires once per locally-detected divergence event
	// (ErrDiverged). Immutable after New; nil means no observer. Called
	// without server locks held beyond the detecting site's own.
	divergenceHook func()

	// mu guards the volume registry — the maps locating a volume domain
	// and the ID allocator — and nothing inside the domains themselves.
	// Lock order: mu before any volume.mu; never acquire mu while holding
	// a volume lock.
	mu        sync.Mutex
	volumes   map[codafs.VolumeID]*volume
	byName    map[string]codafs.VolumeID
	nextVolID codafs.VolumeID
	journal   *serverJournal // durability WALs; nil until AttachJournal

	// clientsMu guards the connected-client table. Not nested with any
	// other server lock.
	clientsMu sync.Mutex
	clients   map[string]bool

	// fragMu guards the resumable fragment buffers (§4.3.5). Not nested
	// with any other server lock.
	fragMu sync.Mutex
	frags  map[fragKey]*fragBuf
}

// counters holds the activity counters behind Stats. All fields are
// atomics so any handler, in any volume domain, may bump them without
// synchronizing with the others.
type counters struct {
	calls              atomic.Int64
	reintegrations     atomic.Int64
	reintegrationFails atomic.Int64
	recordsApplied     atomic.Int64
	conflicts          atomic.Int64
	breaksSent         atomic.Int64
	duplicatesDropped  atomic.Int64
	replApplied        atomic.Int64
	catchupRecords     atomic.Int64
}

// Stats counts server activity, for tests and experiments.
type Stats struct {
	Calls              int64
	Reintegrations     int64
	ReintegrationFails int64
	RecordsApplied     int64
	Conflicts          int64
	BreaksSent         int64
	// DuplicatesDropped counts reintegrated records filtered by the
	// (client, sequence-number) dedup set — retransmits after failover.
	DuplicatesDropped int64
	// ReplApplied counts records applied from peer-shipped log entries.
	ReplApplied int64
	// CatchupRecords counts records pulled from a peer via FetchLog.
	CatchupRecords int64
}

// smetrics holds the server's pre-registered obs handles; all nil (and
// inert) without WithObs.
type smetrics struct {
	self           obs.Label
	calls          *obs.Counter
	reintegrations *obs.Counter
	reintegFails   *obs.Counter
	recordsApplied *obs.Counter
	conflicts      *obs.Counter
	breaks         *obs.Counter
	lockWait       *obs.Histogram

	replShipped   *obs.Counter // log entries pushed to peers
	replApplied   *obs.Counter // records applied from peer-shipped entries
	replDups      *obs.Counter // reintegrated records dropped as duplicates
	replGaps      *obs.Counter // shipped entries refused pending catch-up
	catchupRecs   *obs.Counter // records pulled via FetchLog
	catchupBytes  *obs.Counter // journal-payload bytes pulled via FetchLog
	catchupRounds *obs.Counter // FetchLog round trips issued
}

// lockWaitBucketsUS buckets volume-lock acquisition waits (microseconds).
// Under simtime a blocked goroutine does not advance the clock, so sim
// runs observe zero — the histogram is a live-deployment signal.
var lockWaitBucketsUS = []int64{10, 100, 1_000, 10_000, 100_000, 1_000_000}

// initMetrics pre-registers the server's obs handles. It must run
// before the rpc2 node exists: NewNode starts the receive loop, and on
// a real connection a request may reach handle — which reads s.met —
// the instant the loop is up.
func (s *Server) initMetrics(addr string) {
	node := obs.L("node", addr)
	s.met = smetrics{
		self:           node,
		calls:          s.obs.Counter("server_calls_total", node),
		reintegrations: s.obs.Counter("server_reintegrations_total", node),
		reintegFails:   s.obs.Counter("server_reintegration_failures_total", node),
		recordsApplied: s.obs.Counter("server_records_applied_total", node),
		conflicts:      s.obs.Counter("server_conflicts_total", node),
		breaks:         s.obs.Counter("server_callback_breaks_total", node),
		lockWait:       s.obs.Histogram("server_lock_wait_us", lockWaitBucketsUS, node),

		replShipped:   s.obs.Counter("server_repl_shipped_entries_total", node),
		replApplied:   s.obs.Counter("server_repl_applied_records_total", node),
		replDups:      s.obs.Counter("server_repl_duplicate_records_total", node),
		replGaps:      s.obs.Counter("server_repl_gaps_total", node),
		catchupRecs:   s.obs.Counter("server_catchup_records_total", node),
		catchupBytes:  s.obs.Counter("server_catchup_bytes_total", node),
		catchupRounds: s.obs.Counter("server_catchup_rounds_total", node),
	}
	s.obs.GaugeFunc("server_clients_connected", func() int64 { return int64(s.ClientCount()) }, node)
	s.obs.GaugeFunc("server_fragment_buffers", func() int64 { return int64(s.FragmentCount()) }, node)
}

// observeOp counts one dispatched RPC by request type.
func (s *Server) observeOp(op string) {
	if s.obs == nil {
		return
	}
	s.obs.Counter("server_ops_total", s.met.self, obs.L("op", op)).Inc()
}

// observeVolOp counts one operation entering a volume domain. The name is
// immutable once the volume is published, so no lock is needed.
func (s *Server) observeVolOp(v *volume) {
	if s.obs == nil {
		return
	}
	s.obs.Counter("server_volume_ops_total", s.met.self, obs.L("volume", v.info.Name)).Inc()
}

// lockVolume acquires v.mu, recording the wait on the lock-wait histogram.
func (s *Server) lockVolume(v *volume) {
	start := s.clock.Now()
	v.mu.Lock()
	s.met.lockWait.Observe(s.clock.Now().Sub(start).Microseconds())
}

// volume is one concurrency domain: every piece of per-volume state —
// objects, version stamps, authorship, and callback registrations — lives
// behind its mu, so operations on distinct volumes never contend.
type volume struct {
	mu        sync.Mutex
	info      codafs.VolumeInfo
	root      codafs.FID
	objects   map[codafs.FID]*codafs.Object
	nextVnode uint64

	// lastAuthor remembers which client produced each object's current
	// version; a reintegrating client is not in conflict with its own
	// earlier chunks (the storeid rule).
	lastAuthor map[codafs.FID]string

	objCallbacks map[codafs.FID]map[string]bool
	volCallbacks map[string]bool

	// wal journals this volume's applied mutation batches; walLSN is the
	// last framed entry (it advances with or without a WAL attached: the
	// LSN sequence is also the replication order). Guarded by mu.
	wal    *wal.WAL
	walLSN uint64
	// encBuf is the gob scratch buffer journalBatchLocked reuses across
	// appends; mu serializes them, and the WAL copies the payload into
	// its own frame before Append returns.
	encBuf bytes.Buffer

	// Replication state (see repl.go), guarded by mu. chain is the
	// cumulative CRC32C over the exact journal payload bytes through
	// walLSN — replicas with equal chains at equal LSNs hold
	// byte-identical logs. repl retains the log suffix after
	// (replBaseLSN, replBaseChain) — the last checkpoint watermark — for
	// ShipLog pushes and FetchLog pulls. applied is the (client, CML
	// sequence) dedup set that makes failover retransmits idempotent.
	chain         uint32
	replBaseLSN   uint64
	replBaseChain uint32
	repl          []wire.LogEntry
	applied       map[appliedKey]bool

	// shippedLSN is the last entry pushed to peers. shipTok is a
	// one-token queue serializing ship/catch-up rounds so entries leave
	// in LSN order; it is a simtime.Queue rather than a mutex because
	// the holder blocks in peer RPCs, and a goroutine parked on a bare
	// mutex is invisible to the sim scheduler and would stall virtual
	// time. Lazily created (needs the clock); guarded by mu. Order:
	// token before mu (the holder takes mu only briefly).
	shippedLSN uint64
	shipTok    *simtime.Queue[struct{}]
}

type fragKey struct {
	client   string
	transfer uint64
}

type fragBuf struct {
	total      int64
	data       []byte
	lastActive time.Time // last append, for the TTL sweep
}

// Option configures a Server at construction.
type Option func(*Server)

// WithObs injects the observability registry the server (and its rpc2
// node) registers metrics with.
func WithObs(reg *obs.Registry) Option {
	return func(s *Server) { s.obs = reg }
}

// WithPeers names the replica group members this server replicates to.
// Every committed log entry is pushed to each peer (ShipLog), and a
// restarted server pulls missed suffixes back from them (CatchUp).
func WithPeers(addrs ...string) Option {
	return func(s *Server) { s.peers = append([]string(nil), addrs...) }
}

// WithDivergenceHook registers fn to run once per locally-detected
// replica divergence event (an error wrapping ErrDiverged at an apply
// or fetch site). The group layer uses it to surface divergence as a
// counter; fn must be cheap and must not call back into the server.
func WithDivergenceHook(fn func()) Option {
	return func(s *Server) { s.divergenceHook = fn }
}

// New creates a server listening on conn.
func New(clock simtime.Clock, conn netsim.PacketConn, opts ...Option) *Server {
	s := &Server{
		clock:   clock,
		stopped: make(chan struct{}),
		volumes: make(map[codafs.VolumeID]*volume),
		byName:  make(map[string]codafs.VolumeID),
		clients: make(map[string]bool),
		frags:   make(map[fragKey]*fragBuf),
	}
	for _, o := range opts {
		o(s)
	}
	s.addr = conn.LocalAddr()
	s.initMetrics(conn.LocalAddr())
	s.node = rpc2.NewNode(clock, conn, netmon.NewMonitor(clock), s.handle, s.obs)
	clock.Go(s.sweepLoop)
	return s
}

// Addr returns the server's network address.
func (s *Server) Addr() string { return s.node.Addr() }

// Node exposes the server's RPC node (for tests).
func (s *Server) Node() *rpc2.Node { return s.node }

// Stats returns a snapshot of activity counters.
func (s *Server) Stats() Stats {
	return Stats{
		Calls:              s.stats.calls.Load(),
		Reintegrations:     s.stats.reintegrations.Load(),
		ReintegrationFails: s.stats.reintegrationFails.Load(),
		RecordsApplied:     s.stats.recordsApplied.Load(),
		Conflicts:          s.stats.conflicts.Load(),
		BreaksSent:         s.stats.breaksSent.Load(),
		DuplicatesDropped:  s.stats.duplicatesDropped.Load(),
		ReplApplied:        s.stats.replApplied.Load(),
		CatchupRecords:     s.stats.catchupRecords.Load(),
	}
}

// ClientCount returns the number of clients in the connected table.
func (s *Server) ClientCount() int {
	s.clientsMu.Lock()
	defer s.clientsMu.Unlock()
	return len(s.clients)
}

// FragmentCount returns the number of live fragment buffers.
func (s *Server) FragmentCount() int {
	s.fragMu.Lock()
	defer s.fragMu.Unlock()
	return len(s.frags)
}

// Close shuts the server down.
func (s *Server) Close() {
	s.closer.Do(func() { close(s.stopped) })
	s.node.Close()
}

// ---- Registry access ----

// volByID resolves a volume domain under the registry lock.
func (s *Server) volByID(id codafs.VolumeID) (*volume, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[id]
	return v, ok
}

// volByName resolves a volume domain by name under the registry lock.
func (s *Server) volByName(name string) (*volume, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return s.volumes[id], true
}

// volumesByID snapshots the registry in ascending volume-ID order — the
// canonical order in which multiple volume locks may be acquired.
func (s *Server) volumesByID() []*volume {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*volume, 0, len(s.volumes))
	for _, v := range s.volumes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id() < out[j].id() })
	return out
}

// id returns the volume's immutable identifier. The ID is assigned before
// the volume is published in the registry and never changes, so it may be
// read without the volume lock (it is what the lock order is keyed on).
func (v *volume) id() codafs.VolumeID { return v.info.ID }

// ---- Maintenance sweep ----

// sweepLoop reclaims abandoned fragment buffers and stale client-table
// entries until the server closes.
func (s *Server) sweepLoop() {
	for {
		s.clock.Sleep(sweepInterval)
		select {
		case <-s.stopped:
			return
		default:
		}
		s.sweepFrags()
		s.sweepClients()
	}
}

// sweepFrags drops fragment buffers whose transfer has gone idle past
// fragTTL. A client that resumes afterwards is told Received: 0 and
// restarts the shipment (§4.3.5's resumability is best-effort).
func (s *Server) sweepFrags() {
	now := s.clock.Now()
	s.fragMu.Lock()
	defer s.fragMu.Unlock()
	for k, fb := range s.frags {
		if now.Sub(fb.lastActive) > fragTTL {
			delete(s.frags, k)
		}
	}
}

// sweepClients evicts table entries for peers netmon has not heard from
// within clientTTL, bounding the table against clients that are gone for
// good. rpc2 bounds its reply cache the same way.
func (s *Server) sweepClients() {
	mon := s.node.Monitor()
	s.clientsMu.Lock()
	defer s.clientsMu.Unlock()
	// Probe in sorted order: Peer registers gauges on first sight, and
	// that registration order must not depend on map iteration.
	addrs := make([]string, 0, len(s.clients))
	for c := range s.clients {
		addrs = append(addrs, c)
	}
	sort.Strings(addrs)
	for _, c := range addrs {
		if !mon.Peer(c).Alive(clientTTL) {
			delete(s.clients, c)
		}
	}
}

// ---- Administrative (non-RPC) interface ----

// newVolume builds an empty volume with a root directory. modTime is the
// root's creation time — passed in rather than read from a clock so a
// journal replay reproduces the original volume exactly.
func newVolume(id codafs.VolumeID, name string, modTime time.Time) *volume {
	v := &volume{
		info:         codafs.VolumeInfo{ID: id, Name: name, Stamp: 1},
		nextVnode:    1,
		objects:      make(map[codafs.FID]*codafs.Object),
		lastAuthor:   make(map[codafs.FID]string),
		objCallbacks: make(map[codafs.FID]map[string]bool),
		volCallbacks: make(map[string]bool),
		applied:      make(map[appliedKey]bool),
	}
	root := codafs.FID{Volume: id, Vnode: 1, Unique: 1}
	v.root = root
	v.objects[root] = &codafs.Object{
		Status: codafs.Status{
			FID: root, Type: codafs.Directory, Version: 1,
			ModTime: modTime, Mode: 0755, Owner: "root",
		},
		Children: make(map[string]codafs.FID),
	}
	return v
}

// CreateVolume creates an empty volume with a root directory. With a
// journal attached, the creation is durable before it is visible.
func (s *Server) CreateVolume(name string) (codafs.VolumeInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		return codafs.VolumeInfo{}, fmt.Errorf("server: volume %q exists", name)
	}
	id := s.nextVolID + 1
	modTime := s.clock.Now()
	v := newVolume(id, name, modTime)
	//codalint:ignore lockhold journal-first commit: s.mu must cover the meta append so a concurrent CreateVolume cannot reorder LSNs
	if err := s.journalCreateLocked(v, modTime); err != nil {
		return codafs.VolumeInfo{}, fmt.Errorf("server: create volume %q: journal: %w", name, err)
	}
	s.nextVolID = id
	s.volumes[id] = v
	s.byName[name] = id
	return v.info, nil
}

// WriteFile creates or replaces a file at relPath inside the named volume,
// creating intermediate directories. It acts as an anonymous co-located
// client: versions are bumped and callbacks broken, which is how the
// experiments inject "another client updated the volume" events (Fig 9).
func (s *Server) WriteFile(volName, relPath string, data []byte) (codafs.Status, error) {
	return s.writeObject(volName, relPath, codafs.File, data, "")
}

// MakeDir creates a directory (and parents) inside the named volume.
func (s *Server) MakeDir(volName, relPath string) (codafs.Status, error) {
	return s.writeObject(volName, relPath, codafs.Directory, nil, "")
}

// MakeSymlink creates a symlink at relPath pointing at target.
func (s *Server) MakeSymlink(volName, relPath, target string) (codafs.Status, error) {
	return s.writeObject(volName, relPath, codafs.Symlink, nil, target)
}

// Resolve walks relPath within the named volume and returns the object's
// status. An empty relPath names the volume root.
func (s *Server) Resolve(volName, relPath string) (codafs.Status, error) {
	v, comps, err := s.splitPath(volName, relPath)
	if err != nil {
		return codafs.Status{}, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	fid, err := v.walkLocked(comps)
	if err != nil {
		return codafs.Status{}, err
	}
	o := v.objects[fid]
	if o == nil {
		return codafs.Status{}, fmt.Errorf("server: dangling entry %s/%s", volName, relPath)
	}
	return o.Status, nil
}

// ReadFile returns a file's contents, server-side.
func (s *Server) ReadFile(volName, relPath string) ([]byte, error) {
	v, comps, err := s.splitPath(volName, relPath)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	fid, err := v.walkLocked(comps)
	if err != nil {
		return nil, err
	}
	o := v.objects[fid]
	if o == nil {
		return nil, fmt.Errorf("server: dangling entry %s/%s", volName, relPath)
	}
	if o.Status.Type != codafs.File {
		return nil, fmt.Errorf("server: %s/%s is a %s", volName, relPath, o.Status.Type)
	}
	return append([]byte(nil), o.Data...), nil
}

// VolumeStamp returns the named volume's current stamp.
func (s *Server) VolumeStamp(volName string) (uint64, error) {
	v, ok := s.volByName(volName)
	if !ok {
		return 0, fmt.Errorf("server: no volume %q", volName)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.info.Stamp, nil
}

func (s *Server) writeObject(volName, relPath string, typ codafs.ObjType, data []byte, target string) (codafs.Status, error) {
	v, comps, err := s.splitPath(volName, relPath)
	if err != nil {
		return codafs.Status{}, err
	}
	if len(comps) == 0 {
		return codafs.Status{}, fmt.Errorf("server: path names the volume root")
	}
	v.mu.Lock()
	dir := v.root
	var breaks []breakWork
	for i, c := range comps {
		last := i == len(comps)-1
		parent := v.objects[dir]
		child, exists := parent.Children[c]
		if last {
			if typ == codafs.File && exists {
				o := v.objects[child]
				if o.Status.Type != codafs.File {
					v.mu.Unlock()
					return codafs.Status{}, fmt.Errorf("server: %s exists and is a %s", c, o.Status.Type)
				}
				o.Data = append([]byte(nil), data...)
				o.Status.Length = int64(len(data))
				o.Status.ModTime = s.clock.Now()
				v.bumpLocked(child, "")
				breaks = append(breaks, v.collectBreaksLocked(child, ""))
				st := o.Status
				v.mu.Unlock()
				s.dispatchBreaks(breaks)
				return st, nil
			}
			if exists {
				v.mu.Unlock()
				return codafs.Status{}, fmt.Errorf("server: %s already exists", c)
			}
			fid := v.allocFIDLocked()
			o := &codafs.Object{
				Status: codafs.Status{
					FID: fid, Type: typ, Length: int64(len(data)),
					ModTime: s.clock.Now(), Mode: 0644, Owner: "root", Links: 1,
				},
				Target: target,
			}
			if typ == codafs.File {
				o.Data = append([]byte(nil), data...)
			}
			if typ == codafs.Directory {
				o.Children = make(map[string]codafs.FID)
				o.Status.Mode = 0755
			}
			v.objects[fid] = o
			parent.Children[c] = fid
			refreshDirLen(parent)
			parent.Status.ModTime = s.clock.Now()
			v.bumpLocked(fid, "")
			v.bumpLocked(parent.Status.FID, "")
			breaks = append(breaks,
				v.collectBreaksLocked(fid, ""),
				v.collectBreaksLocked(parent.Status.FID, ""))
			st := o.Status
			v.mu.Unlock()
			s.dispatchBreaks(breaks)
			return st, nil
		}
		if !exists {
			fid := v.allocFIDLocked()
			v.objects[fid] = &codafs.Object{
				Status: codafs.Status{
					FID: fid, Type: codafs.Directory,
					ModTime: s.clock.Now(), Mode: 0755, Owner: "root",
				},
				Children: make(map[string]codafs.FID),
			}
			parent.Children[c] = fid
			refreshDirLen(parent)
			v.bumpLocked(fid, "")
			v.bumpLocked(parent.Status.FID, "")
			child = fid
		} else if v.objects[child].Status.Type != codafs.Directory {
			v.mu.Unlock()
			return codafs.Status{}, fmt.Errorf("server: %s is not a directory", c)
		}
		dir = child
	}
	v.mu.Unlock()
	return codafs.Status{}, fmt.Errorf("server: empty path")
}

// splitPath resolves the named volume's domain and splits relPath into
// components. Pure registry work: no volume lock is taken.
func (s *Server) splitPath(volName, relPath string) (*volume, []string, error) {
	v, ok := s.volByName(volName)
	if !ok {
		return nil, nil, fmt.Errorf("server: no volume %q", volName)
	}
	_, comps, err := codafs.SplitPath(codafs.JoinPath(volName, relPath))
	if err != nil {
		return nil, nil, err
	}
	return v, comps, nil
}

// walkLocked resolves comps from the volume root. Caller holds v.mu.
func (v *volume) walkLocked(comps []string) (codafs.FID, error) {
	fid := v.root
	for _, c := range comps {
		o := v.objects[fid]
		if o == nil {
			return codafs.FID{}, fmt.Errorf("server: dangling entry at %s", c)
		}
		if o.Status.Type != codafs.Directory {
			return codafs.FID{}, fmt.Errorf("server: %s is not a directory", c)
		}
		child, ok := o.Children[c]
		if !ok {
			return codafs.FID{}, fmt.Errorf("server: %s not found", c)
		}
		fid = child
	}
	return fid, nil
}

// allocFIDLocked allocates a fresh FID. Caller holds v.mu.
func (v *volume) allocFIDLocked() codafs.FID {
	v.nextVnode++
	return codafs.FID{Volume: v.info.ID, Vnode: v.nextVnode, Unique: v.nextVnode}
}

// bumpLocked advances the volume stamp and sets the object's version to it.
// Caller holds v.mu.
func (v *volume) bumpLocked(fid codafs.FID, author string) {
	v.info.Stamp++
	if o, ok := v.objects[fid]; ok {
		o.Status.Version = v.info.Stamp
	}
	if author != "" {
		v.lastAuthor[fid] = author
	} else {
		delete(v.lastAuthor, fid)
	}
}

// registerObjCallbackLocked grants client a callback on fid. Caller holds
// v.mu.
func (v *volume) registerObjCallbackLocked(fid codafs.FID, client string) {
	cbs := v.objCallbacks[fid]
	if cbs == nil {
		cbs = make(map[string]bool)
		v.objCallbacks[fid] = cbs
	}
	cbs[client] = true
}

// breakWork is a set of clients to notify about one invalidation.
type breakWork struct {
	fid     codafs.FID
	volID   codafs.VolumeID
	objTo   []string
	volTo   []string
	hasWork bool
}

// collectBreaksLocked gathers and clears the callback registrations that an
// update to fid invalidates, excluding the updating client. Caller holds
// v.mu; the returned work is dispatched after the lock is released.
func (v *volume) collectBreaksLocked(fid codafs.FID, updater string) breakWork {
	w := breakWork{fid: fid, volID: v.info.ID}
	if cbs := v.objCallbacks[fid]; cbs != nil {
		for c := range cbs {
			if c != updater {
				w.objTo = append(w.objTo, c)
				delete(cbs, c)
				w.hasWork = true
			}
		}
	}
	for c := range v.volCallbacks {
		if c != updater {
			w.volTo = append(w.volTo, c)
			delete(v.volCallbacks, c)
			w.hasWork = true
		}
	}
	return w
}

// dispatchBreaks delivers callback breaks asynchronously; a client updating
// an object never waits on other clients' notifications (first design
// principle: don't punish strongly-connected clients). Callers must not
// hold any server or volume lock: the RPCs go out on fresh goroutines, and
// no lock is required to start them.
func (s *Server) dispatchBreaks(work []breakWork) {
	// Coalesce per destination client.
	type agg struct {
		fids map[codafs.FID]bool
		vols map[codafs.VolumeID]bool
	}
	byClient := make(map[string]*agg)
	get := func(c string) *agg {
		a := byClient[c]
		if a == nil {
			a = &agg{fids: make(map[codafs.FID]bool), vols: make(map[codafs.VolumeID]bool)}
			byClient[c] = a
		}
		return a
	}
	for _, w := range work {
		if !w.hasWork {
			continue
		}
		for _, c := range w.objTo {
			get(c).fids[w.fid] = true
		}
		for _, c := range w.volTo {
			get(c).vols[w.volID] = true
		}
	}
	for client, a := range byClient {
		brk := wire.CallbackBreak{}
		for f := range a.fids {
			brk.FIDs = append(brk.FIDs, f)
		}
		for v := range a.vols {
			brk.Volumes = append(brk.Volumes, v)
		}
		client := client
		s.stats.breaksSent.Add(1)
		s.met.breaks.Inc()
		s.clock.Go(func() {
			// Best effort: an unreachable client revalidates later.
			_, _ = wire.Call[wire.CallbackBreakRep](s.node, client, brk, rpc2.CallOpts{MaxRetries: 2})
		})
	}
}
