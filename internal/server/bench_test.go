package server

import (
	"testing"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/crashfs"
	"repro/internal/obs"
	"repro/internal/wal"
)

// BenchmarkAllocJournalBatch measures the gob framing of one applied
// mutation batch into the volume WAL. Gob walks and boxes the batch on
// every encode — that floor is inherent to the format — but the buffer
// underneath is the volume's reusable scratch, so AllocsPerOp must stay
// flat as batches flow; benchgate fails the build if it grows past
// bench_baseline.json.
func BenchmarkAllocJournalBatch(b *testing.B) {
	fs := crashfs.NewMem()
	w, _, err := wal.Open(wal.Options{FS: fs, Dir: "j", Policy: wal.SyncNone, SegmentBytes: 1 << 30}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	v := newVolume(1, "bench", time.Unix(0, 0))
	v.wal = w

	recs := []cml.Record{{
		Kind:   cml.Store,
		FID:    codafs.FID{Volume: 1, Vnode: 2},
		Parent: codafs.FID{Volume: 1, Vnode: 1},
		Name:   "file",
		Owner:  "bench-client",
		Data:   make([]byte, 256),
		Length: 256,
	}}
	// Warm gob's global type registry so the first-encode setup cost is
	// not charged to the steady state.
	if err := journalBatchLocked(v, "bench-client", recs, obs.SpanContext{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := journalBatchLocked(v, "bench-client", recs, obs.SpanContext{}); err != nil {
			b.Fatal(err)
		}
	}
}
