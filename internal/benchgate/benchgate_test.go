package benchgate

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro/internal/rpc2
BenchmarkAllocSendPacket-8   	     200	       412.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllocSendSFTP-8     	     200	       395.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/rpc2	0.012s
pkg: repro/internal/wal
BenchmarkWALAppend/each-8    	     200	     10212 ns/op	  25.07 MB/s
BenchmarkAllocWALAppend-8    	     200	       899.1 ns/op	    1345 B/op	       0 allocs/op
PASS
ok  	repro/internal/wal	0.031s
`

// benchJSON mimics the codabench -json shape: runs with figure labels
// and registry snapshots whose dumps carry named metric values.
const benchJSON = `[
  {"figure": "9", "metrics": [
    {"label": "a", "dump": {"metrics": [{"name": "rpc2_retransmits_total", "value": 70}]}},
    {"label": "b", "dump": {"metrics": [{"name": "rpc2_retransmits_total", "value": 46}]}}
  ]},
  {"figure": "12", "metrics": [
    {"label": "a", "dump": {"metrics": [{"name": "venus_shipped_bytes_total", "value": 4208152}]}}
  ]}
]`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	wal := got["BenchmarkAllocWALAppend"]
	if !wal.HasMem || wal.BytesPerOp != 1345 || wal.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkAllocWALAppend parsed wrong: %+v", wal)
	}
	if sub := got["BenchmarkWALAppend/each"]; sub.HasMem {
		t.Fatalf("non-ReportAllocs sub-benchmark should have HasMem=false: %+v", sub)
	}
}

func TestParseSeriesSumsAcrossSnapshots(t *testing.T) {
	got, err := ParseSeries(strings.NewReader(benchJSON))
	if err != nil {
		t.Fatal(err)
	}
	if got["9/rpc2_retransmits_total"] != 116 {
		t.Fatalf("9/rpc2_retransmits_total = %v, want 116 (sum of snapshots)", got["9/rpc2_retransmits_total"])
	}
	if got["12/venus_shipped_bytes_total"] != 4208152 {
		t.Fatalf("12/venus_shipped_bytes_total = %v", got["12/venus_shipped_bytes_total"])
	}
}

func baseline() Baseline {
	return Baseline{
		ThresholdPct: 10,
		Benchmarks: map[string]Entry{
			"BenchmarkAllocSendPacket": {AllocsPerOp: 0, BytesPerOp: 0},
			"BenchmarkAllocWALAppend":  {AllocsPerOp: 0, BytesPerOp: 1345},
		},
		Series: map[string]float64{
			"9/rpc2_retransmits_total": 116,
		},
	}
}

func TestCompareClean(t *testing.T) {
	benches, _ := ParseBench(strings.NewReader(benchText))
	series, _ := ParseSeries(strings.NewReader(benchJSON))
	// SendSFTP is unpinned in this baseline, so it must fail the gate;
	// drop it to model a fully pinned run.
	delete(benches, "BenchmarkAllocSendSFTP")
	for _, f := range Compare(baseline(), benches, series) {
		if f.Fail {
			t.Fatalf("clean run produced failure: %s", f.Message)
		}
	}
}

func TestCompareAllocGrowthIsStrict(t *testing.T) {
	benches := map[string]Result{
		"BenchmarkAllocSendPacket": {HasMem: true, AllocsPerOp: 1},
		"BenchmarkAllocWALAppend":  {HasMem: true, BytesPerOp: 1345},
	}
	series := map[string]float64{"9/rpc2_retransmits_total": 116}
	findings := Compare(baseline(), benches, series)
	if len(findings) != 1 || !findings[0].Fail ||
		!strings.Contains(findings[0].Message, "allocs/op regressed 0 -> 1") {
		t.Fatalf("want one strict allocs failure, got %+v", findings)
	}
}

func TestCompareBytesAndSeriesGetHeadroom(t *testing.T) {
	benches := map[string]Result{
		"BenchmarkAllocSendPacket": {HasMem: true},
		"BenchmarkAllocWALAppend":  {HasMem: true, BytesPerOp: 1400}, // +4.1%: inside 10%
	}
	series := map[string]float64{"9/rpc2_retransmits_total": 127} // +9.5%: inside 10%
	for _, f := range Compare(baseline(), benches, series) {
		if f.Fail {
			t.Fatalf("within-threshold drift failed the gate: %s", f.Message)
		}
	}

	benches["BenchmarkAllocWALAppend"] = Result{HasMem: true, BytesPerOp: 1600} // +19%
	series["9/rpc2_retransmits_total"] = 140                                    // +20.7%
	findings := Compare(baseline(), benches, series)
	fails := 0
	for _, f := range findings {
		if f.Fail {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("want 2 over-threshold failures, got %+v", findings)
	}
}

func TestCompareMissingAndUnpinnedFail(t *testing.T) {
	benches := map[string]Result{
		// BenchmarkAllocSendPacket deliberately absent.
		"BenchmarkAllocWALAppend": {HasMem: true, BytesPerOp: 1345},
		"BenchmarkAllocBrandNew":  {HasMem: true, AllocsPerOp: 3},
		"BenchmarkColdPath":       {HasMem: true, AllocsPerOp: 99}, // not Alloc-prefixed: advisory only
	}
	series := map[string]float64{} // gated series missing too
	var missing, unpinned, seriesMissing bool
	for _, f := range Compare(baseline(), benches, series) {
		switch {
		case strings.Contains(f.Message, "gated benchmark missing"):
			missing = f.Fail
		case strings.Contains(f.Message, "not pinned in the baseline"):
			unpinned = f.Fail && strings.Contains(f.Message, "BenchmarkAllocBrandNew")
		case strings.Contains(f.Message, "gated series missing"):
			seriesMissing = f.Fail
		case strings.Contains(f.Message, "BenchmarkColdPath"):
			t.Fatalf("non-Alloc benchmark should not be gated: %s", f.Message)
		}
	}
	if !missing || !unpinned || !seriesMissing {
		t.Fatalf("missing=%v unpinned=%v seriesMissing=%v — all should fail", missing, unpinned, seriesMissing)
	}
}

func TestMainGateAndUpdateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench_allocs.txt")
	jsonPath := filepath.Join(dir, "bench.json")
	basePath := filepath.Join(dir, "bench_baseline.json")
	diffPath := filepath.Join(dir, "bench_diff.txt")
	if err := os.WriteFile(benchPath, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, []byte(benchJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	// No baseline yet: -update creates one pinning every BenchmarkAlloc*.
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-baseline", basePath, "-bench", benchPath, "-json", jsonPath, "-update"},
		&stdout, &stderr); code != ExitOK {
		t.Fatalf("update exit %d, stderr: %s", code, stderr.String())
	}
	var b Baseline
	raw, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.ThresholdPct != 10 || len(b.Benchmarks) != 3 {
		t.Fatalf("fresh baseline wrong: %+v", b)
	}

	// Gating against the just-written baseline is clean.
	stdout.Reset()
	stderr.Reset()
	if code := Main([]string{"-baseline", basePath, "-bench", benchPath, "-json", jsonPath, "-diff", diffPath},
		&stdout, &stderr); code != ExitOK {
		t.Fatalf("clean gate exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	diff, err := os.ReadFile(diffPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(diff), "BenchmarkAllocWALAppend") {
		t.Fatalf("diff report missing gated benchmark:\n%s", diff)
	}

	// Hand-add a gated series, refresh, and check -update filled it.
	b.Series = map[string]float64{"9/rpc2_retransmits_total": 0}
	raw, _ = json.MarshalIndent(b, "", "  ")
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := Main([]string{"-baseline", basePath, "-bench", benchPath, "-json", jsonPath, "-update"},
		&stdout, &stderr); code != ExitOK {
		t.Fatalf("update exit %d", code)
	}
	raw, _ = os.ReadFile(basePath)
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Series["9/rpc2_retransmits_total"] != 116 {
		t.Fatalf("update did not refresh hand-added series: %+v", b.Series)
	}

	// Regress one benchmark and check the annotation anchors at the
	// baseline entry's own line, in problem-matcher format.
	regressed := strings.Replace(benchText,
		"BenchmarkAllocSendPacket-8   \t     200\t       412.3 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkAllocSendPacket-8   \t     200\t       512.3 ns/op\t      48 B/op\t       2 allocs/op", 1)
	if regressed == benchText {
		t.Fatal("test bug: replacement did not apply")
	}
	if err := os.WriteFile(benchPath, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := Main([]string{"-baseline", basePath, "-bench", benchPath, "-json", jsonPath},
		&stdout, &stderr); code != ExitRegression {
		t.Fatalf("regressed gate exit %d, want %d", code, ExitRegression)
	}
	wantLine := lineOf(raw, "BenchmarkAllocSendPacket")
	if wantLine == 1 {
		t.Fatal("test bug: key not found in baseline file")
	}
	ann := stdout.String()
	if !strings.Contains(ann, basePath+":"+strconv.Itoa(wantLine)+":1: [benchgate] BenchmarkAllocSendPacket: allocs/op regressed 0 -> 2") {
		t.Fatalf("annotation missing or mis-anchored (want line %d):\n%s", wantLine, ann)
	}
}

func TestMainUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := Main(nil, &out, &out); code != ExitUsage {
		t.Fatalf("missing -bench: exit %d, want %d", code, ExitUsage)
	}
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "b.txt")
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(benchPath, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(baseline())
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Baseline gates series but no -json given.
	if code := Main([]string{"-baseline", basePath, "-bench", benchPath}, &out, &out); code != ExitUsage {
		t.Fatalf("series without -json: exit %d, want %d", code, ExitUsage)
	}
	// Missing baseline without -update.
	if code := Main([]string{"-baseline", filepath.Join(dir, "nope.json"), "-bench", benchPath}, &out, &out); code != ExitUsage {
		t.Fatalf("missing baseline: exit %d, want %d", code, ExitUsage)
	}
}
