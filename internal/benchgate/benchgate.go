// Package benchgate is the enforcement half of the performance story:
// it diffs the current benchmark sweep against a committed baseline
// (bench_baseline.json) and fails when a gated number regresses.
//
// Two inputs feed the gate:
//
//   - the text output of `go test -bench BenchmarkAlloc -benchmem`
//     (made by `make bench-allocs`), whose AllocsPerOp counts are
//     deterministic at a fixed -benchtime iteration count — those are
//     gated strictly: any growth fails, no threshold;
//   - the codabench -json run (`make bench-json`), whose per-figure
//     metric sums drift by scheduling noise in the network emulator —
//     those, and B/op, get threshold_pct of headroom.
//
// The gate is one-directional: every gated series is a
// higher-is-worse counter (retransmits, timeouts, bytes on the wire),
// so only growth fails. Improvements are reported as notes, nudging a
// baseline refresh (`make bench-baseline`) so the win is locked in.
//
// A new Benchmark with ReportAllocs data whose name starts with
// "BenchmarkAlloc" must be pinned in the baseline — an unpinned one
// fails the gate, which is what forces every new alloc-fenced
// benchmark under enforcement rather than leaving it advisory.
//
// Findings are printed as `bench_baseline.json:line:1: [benchgate]
// message`, anchored at the gated entry's line in the baseline file,
// so the CI problem matcher can annotate the offending number itself.
package benchgate

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Exit codes, mirroring codalint's convention of distinct codes per
// failure class.
const (
	ExitOK         = 0 // everything within budget
	ExitRegression = 1 // a gated number regressed (or is missing/unpinned)
	ExitUsage      = 2 // bad flags or unreadable input
)

// Entry pins one benchmark's memory numbers in the baseline.
type Entry struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// Baseline is the committed bench_baseline.json: the threshold plus
// the gated benchmarks and figure series.
type Baseline struct {
	ThresholdPct float64            `json:"threshold_pct"`
	Benchmarks   map[string]Entry   `json:"benchmarks"`
	Series       map[string]float64 `json:"series"`
}

// Result is one parsed benchmark line from `go test -bench` output.
type Result struct {
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
	HasMem      bool // line carried B/op and allocs/op (ReportAllocs ran)
}

// Finding is one gate verdict: a regression that fails the build, or
// an informational note for the diff report.
type Finding struct {
	Key     string // baseline key the finding anchors to
	Message string
	Fail    bool
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
	memSuffix = regexp.MustCompile(`(\d+) B/op\s+(\d+) allocs/op`)
)

// ParseBench reads `go test -bench` text output. Names keep their
// sub-benchmark path but drop the trailing -GOMAXPROCS suffix. A name
// appearing twice keeps the worse (higher-allocating) line, so a
// duplicate across packages can only tighten the gate's view.
func ParseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{}
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if mm := memSuffix.FindStringSubmatch(m[4]); mm != nil {
			res.HasMem = true
			res.BytesPerOp, _ = strconv.ParseInt(mm[1], 10, 64)
			res.AllocsPerOp, _ = strconv.ParseInt(mm[2], 10, 64)
		}
		name := m[1]
		if prev, ok := out[name]; !ok || res.AllocsPerOp > prev.AllocsPerOp ||
			(res.AllocsPerOp == prev.AllocsPerOp && res.BytesPerOp > prev.BytesPerOp) {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// ParseSeries reads a codabench -json file and sums every numeric
// metric across each run's registry snapshots, keyed
// "<figure>/<metric>" — e.g. "12/venus_shipped_bytes_total".
func ParseSeries(r io.Reader) (map[string]float64, error) {
	var runs []struct {
		Figure  string `json:"figure"`
		Metrics []struct {
			Dump struct {
				Metrics []struct {
					Name  string   `json:"name"`
					Value *float64 `json:"value"`
				} `json:"metrics"`
			} `json:"dump"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(r).Decode(&runs); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, run := range runs {
		for _, snap := range run.Metrics {
			for _, met := range snap.Dump.Metrics {
				if met.Value != nil {
					out[run.Figure+"/"+met.Name] += *met.Value
				}
			}
		}
	}
	return out, nil
}

// Compare applies the gate rules and returns findings in deterministic
// (sorted-key) order: baseline benchmarks, unpinned new benchmarks,
// then series.
func Compare(b Baseline, benches map[string]Result, series map[string]float64) []Finding {
	var out []Finding
	headroom := 1 + b.ThresholdPct/100

	for _, name := range sortedKeys(b.Benchmarks) {
		base := b.Benchmarks[name]
		cur, ok := benches[name]
		if !ok {
			out = append(out, Finding{name, fmt.Sprintf(
				"%s: gated benchmark missing from bench output — deleted benchmarks must leave the baseline too", name), true})
			continue
		}
		switch {
		case cur.AllocsPerOp > base.AllocsPerOp:
			out = append(out, Finding{name, fmt.Sprintf(
				"%s: allocs/op regressed %d -> %d (allocs gate is strict: any growth fails)",
				name, base.AllocsPerOp, cur.AllocsPerOp), true})
		case float64(cur.BytesPerOp) > float64(base.BytesPerOp)*headroom:
			out = append(out, Finding{name, fmt.Sprintf(
				"%s: B/op regressed %d -> %d (%s, threshold %.0f%%)",
				name, base.BytesPerOp, cur.BytesPerOp,
				pctChange(float64(base.BytesPerOp), float64(cur.BytesPerOp)), b.ThresholdPct), true})
		case cur.AllocsPerOp < base.AllocsPerOp || cur.BytesPerOp < base.BytesPerOp:
			out = append(out, Finding{name, fmt.Sprintf(
				"%s: improved (allocs/op %d -> %d, B/op %d -> %d); run `make bench-baseline` to lock it in",
				name, base.AllocsPerOp, cur.AllocsPerOp, base.BytesPerOp, cur.BytesPerOp), false})
		}
	}

	for _, name := range sortedKeys(benches) {
		if _, pinned := b.Benchmarks[name]; !pinned &&
			benches[name].HasMem && strings.HasPrefix(name, "BenchmarkAlloc") {
			out = append(out, Finding{name, fmt.Sprintf(
				"%s: new ReportAllocs benchmark is not pinned in the baseline; run `make bench-baseline` and commit the result",
				name), true})
		}
	}

	for _, key := range sortedKeys(b.Series) {
		base := b.Series[key]
		cur, ok := series[key]
		if !ok {
			out = append(out, Finding{key, fmt.Sprintf(
				"series %s: gated series missing from codabench output", key), true})
			continue
		}
		if cur > base*headroom {
			out = append(out, Finding{key, fmt.Sprintf(
				"series %s: regressed %s -> %s (%s, threshold %.0f%%)",
				key, trimFloat(base), trimFloat(cur),
				pctChange(base, cur), b.ThresholdPct), true})
		}
	}
	return out
}

// Update returns the baseline rewritten from the current run: every
// existing benchmark entry and series value is refreshed, and any
// unpinned BenchmarkAlloc* benchmark with ReportAllocs data is added.
// Series keys are never added automatically — gating a new series is
// an editorial decision, made by hand-adding its key (any value) and
// re-running -update to fill it in.
func Update(b Baseline, benches map[string]Result, series map[string]float64) Baseline {
	next := Baseline{
		ThresholdPct: b.ThresholdPct,
		Benchmarks:   make(map[string]Entry),
		Series:       make(map[string]float64),
	}
	if next.ThresholdPct == 0 {
		next.ThresholdPct = 10
	}
	for name := range b.Benchmarks {
		if cur, ok := benches[name]; ok {
			next.Benchmarks[name] = Entry{cur.AllocsPerOp, cur.BytesPerOp}
		}
	}
	for name, cur := range benches {
		if _, pinned := next.Benchmarks[name]; !pinned && cur.HasMem && strings.HasPrefix(name, "BenchmarkAlloc") {
			next.Benchmarks[name] = Entry{cur.AllocsPerOp, cur.BytesPerOp}
		}
	}
	for key := range b.Series {
		if cur, ok := series[key]; ok {
			next.Series[key] = cur
		}
	}
	return next
}

// Main is the benchgate entry point, factored out of cmd/benchgate so
// tests drive it directly. Annotations go to stdout (problem-matcher
// format), the summary to stderr.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "bench_baseline.json", "committed baseline to gate against")
	benchPath := fs.String("bench", "", "`go test -bench` text output to gate (required)")
	jsonPath := fs.String("json", "", "codabench -json output (required when the baseline gates series)")
	update := fs.Bool("update", false, "rewrite the baseline from the current run instead of gating")
	diffPath := fs.String("diff", "", "also write the full comparison table to this file")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchgate -bench bench_allocs.txt [-json bench.json] [-baseline bench_baseline.json] [-update] [-diff out.txt]\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "exit codes: %d clean, %d regression, %d usage error\n", ExitOK, ExitRegression, ExitUsage)
	}
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if *benchPath == "" {
		fs.Usage()
		return ExitUsage
	}

	benches, err := parseBenchFile(*benchPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return ExitUsage
	}

	base, raw, err := loadBaseline(*baselinePath, *update)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return ExitUsage
	}

	var series map[string]float64
	if *jsonPath != "" {
		if series, err = parseSeriesFile(*jsonPath); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return ExitUsage
		}
	} else if len(base.Series) > 0 {
		fmt.Fprintf(stderr, "benchgate: baseline gates %d series but no -json input was given\n", len(base.Series))
		return ExitUsage
	}

	if *update {
		next := Update(base, benches, series)
		out, err := json.MarshalIndent(next, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return ExitUsage
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return ExitUsage
		}
		fmt.Fprintf(stderr, "benchgate: baseline refreshed: %d benchmark(s), %d series -> %s\n",
			len(next.Benchmarks), len(next.Series), *baselinePath)
		return ExitOK
	}

	findings := Compare(base, benches, series)
	fails := 0
	for _, f := range findings {
		if f.Fail {
			fails++
			fmt.Fprintf(stdout, "%s:%d:1: [benchgate] %s\n", *baselinePath, lineOf(raw, f.Key), f.Message)
		} else {
			fmt.Fprintf(stdout, "note: %s\n", f.Message)
		}
	}
	if *diffPath != "" {
		if err := os.WriteFile(*diffPath, diffReport(base, benches, series, findings), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return ExitUsage
		}
	}
	fmt.Fprintf(stderr, "benchgate: %d benchmark(s), %d series gated; %d regression(s)\n",
		len(base.Benchmarks), len(base.Series), fails)
	if fails > 0 {
		return ExitRegression
	}
	return ExitOK
}

func parseBenchFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBench(f)
}

func parseSeriesFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSeries(f)
}

// loadBaseline reads and decodes the baseline; with update set, a
// missing file yields an empty baseline to be filled in.
func loadBaseline(path string, update bool) (Baseline, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if update && os.IsNotExist(err) {
			return Baseline{}, nil, nil
		}
		return Baseline{}, nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return Baseline{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, raw, nil
}

// lineOf finds the 1-based line of a gated key inside the raw baseline
// bytes so annotations point at the number being defended; keys not in
// the file (e.g. unpinned new benchmarks) anchor at line 1.
func lineOf(raw []byte, key string) int {
	needle := `"` + key + `"`
	for i, line := range strings.Split(string(raw), "\n") {
		if strings.Contains(line, needle) {
			return i + 1
		}
	}
	return 1
}

// diffReport renders the full comparison table — every gated entry,
// its baseline and current value, and the verdict — for the CI
// artifact. ns/op appears informationally; it is never gated.
func diffReport(b Baseline, benches map[string]Result, series map[string]float64, findings []Finding) []byte {
	verdicts := make(map[string]string)
	for _, f := range findings {
		if f.Fail {
			verdicts[f.Key] = "FAIL"
		} else if _, ok := verdicts[f.Key]; !ok {
			verdicts[f.Key] = "note"
		}
	}
	verdict := func(key string) string {
		if v, ok := verdicts[key]; ok {
			return v
		}
		return "ok"
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "benchgate diff (threshold %.0f%% on B/op and series; allocs/op strict)\n\n", b.ThresholdPct)
	fmt.Fprintf(&sb, "%-34s %14s %14s %10s  %s\n", "benchmark", "base allocs/B", "cur allocs/B", "ns/op", "verdict")
	for _, name := range sortedKeys(b.Benchmarks) {
		base := b.Benchmarks[name]
		cur, ok := benches[name]
		curCol, ns := "missing", "-"
		if ok {
			curCol = fmt.Sprintf("%d/%d", cur.AllocsPerOp, cur.BytesPerOp)
			ns = strconv.FormatFloat(cur.NsPerOp, 'f', 1, 64)
		}
		fmt.Fprintf(&sb, "%-34s %14s %14s %10s  %s\n", name,
			fmt.Sprintf("%d/%d", base.AllocsPerOp, base.BytesPerOp), curCol, ns, verdict(name))
	}
	fmt.Fprintf(&sb, "\n%-44s %16s %16s  %s\n", "series", "base", "current", "verdict")
	for _, key := range sortedKeys(b.Series) {
		curCol := "missing"
		if cur, ok := series[key]; ok {
			curCol = trimFloat(cur)
		}
		fmt.Fprintf(&sb, "%-44s %16s %16s  %s\n", key, trimFloat(b.Series[key]), curCol, verdict(key))
	}
	return []byte(sb.String())
}

func pctChange(base, cur float64) string {
	if base == 0 {
		return "from zero"
	}
	return fmt.Sprintf("%+.1f%%", (cur-base)/base*100)
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
