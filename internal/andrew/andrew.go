// Package andrew implements an Andrew-benchmark-style workload over Venus.
//
// The paper considers the Andrew benchmark as the obvious way to evaluate
// trickle reintegration and rejects it (§6.2) for three reasons: it runs in
// under three minutes (no updates propagate within any reasonable aging
// window), its references are only marginally affected by log optimizations
// (no overwrite cancellations), and it has no user think time. This package
// exists to *demonstrate* those limitations on this reproduction — see
// BenchmarkAndrewInsensitivity in the repository root — and doubles as a
// compact end-to-end smoke workload.
//
// Phases follow the classic structure: MakeDir (create the subtree),
// Copy (populate source files), ScanDir (stat everything), ReadAll (read
// every file), and Make (a "compilation" that reads sources and writes
// objects).
package andrew

import (
	"fmt"
	"time"

	"repro/internal/simtime"
	"repro/internal/venus"
)

// Config sizes the benchmark tree.
type Config struct {
	// Root is the /coda path under which the tree is built.
	Root string
	// Dirs and FilesPerDir shape the source tree (default 5 × 14 ≈ the
	// original's ~70 files).
	Dirs        int
	FilesPerDir int
	// FileKB sizes each source file (default 4 KB).
	FileKB int
	// CompileCost models per-file CPU time in the Make phase.
	CompileCost time.Duration
}

func (c *Config) fill() {
	if c.Dirs == 0 {
		c.Dirs = 5
	}
	if c.FilesPerDir == 0 {
		c.FilesPerDir = 14
	}
	if c.FileKB == 0 {
		c.FileKB = 4
	}
	if c.CompileCost == 0 {
		c.CompileCost = 100 * time.Millisecond
	}
}

// Result reports per-phase and total elapsed (virtual) time.
type Result struct {
	MakeDir, Copy, ScanDir, ReadAll, Make time.Duration
	Total                                 time.Duration
	Files                                 int
}

// Run executes the benchmark against v on clock.
func Run(clock simtime.Clock, v *venus.Venus, cfg Config) (Result, error) {
	cfg.fill()
	var res Result
	start := clock.Now()
	phase := func(d *time.Duration, fn func() error) error {
		t0 := clock.Now()
		if err := fn(); err != nil {
			return err
		}
		*d = clock.Now().Sub(t0)
		return nil
	}

	dir := func(i int) string { return fmt.Sprintf("%s/d%02d", cfg.Root, i) }
	file := func(i, j int) string { return fmt.Sprintf("%s/src%02d.c", dir(i), j) }
	content := make([]byte, cfg.FileKB<<10)
	for i := range content {
		content[i] = byte('a' + i%23)
	}

	// Phase I: MakeDir.
	if err := phase(&res.MakeDir, func() error {
		if err := v.Mkdir(cfg.Root); err != nil {
			return err
		}
		for i := 0; i < cfg.Dirs; i++ {
			if err := v.Mkdir(dir(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return res, fmt.Errorf("andrew: MakeDir: %w", err)
	}

	// Phase II: Copy.
	if err := phase(&res.Copy, func() error {
		for i := 0; i < cfg.Dirs; i++ {
			for j := 0; j < cfg.FilesPerDir; j++ {
				if err := v.WriteFile(file(i, j), content); err != nil {
					return err
				}
				res.Files++
			}
		}
		return nil
	}); err != nil {
		return res, fmt.Errorf("andrew: Copy: %w", err)
	}

	// Phase III: ScanDir.
	if err := phase(&res.ScanDir, func() error {
		for i := 0; i < cfg.Dirs; i++ {
			names, err := v.ReadDir(dir(i))
			if err != nil {
				return err
			}
			for _, n := range names {
				if _, err := v.Stat(dir(i) + "/" + n); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return res, fmt.Errorf("andrew: ScanDir: %w", err)
	}

	// Phase IV: ReadAll.
	if err := phase(&res.ReadAll, func() error {
		for i := 0; i < cfg.Dirs; i++ {
			for j := 0; j < cfg.FilesPerDir; j++ {
				if _, err := v.ReadFile(file(i, j)); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return res, fmt.Errorf("andrew: ReadAll: %w", err)
	}

	// Phase V: Make.
	if err := phase(&res.Make, func() error {
		for i := 0; i < cfg.Dirs; i++ {
			for j := 0; j < cfg.FilesPerDir; j++ {
				if _, err := v.ReadFile(file(i, j)); err != nil {
					return err
				}
				clock.Sleep(cfg.CompileCost)
				obj := fmt.Sprintf("%s/src%02d.o", dir(i), j)
				if err := v.WriteFile(obj, content[:len(content)/2]); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return res, fmt.Errorf("andrew: Make: %w", err)
	}

	res.Total = clock.Now().Sub(start)
	return res, nil
}
