package andrew

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

func runAt(t *testing.T, prof netsim.Profile) Result {
	t.Helper()
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 1)
	net.SetDefaults(netsim.Ethernet.Params())
	srv := server.New(s, net.Host("server"))
	srv.CreateVolume("bench")
	var res Result
	s.Run(func() {
		v := venus.New(s, net.Host("client"), venus.Config{
			Server:               "server",
			ClientID:             1,
			PinWriteDisconnected: true,
			TrickleInterval:      time.Second,
		})
		if err := v.Mount("bench"); err != nil {
			t.Fatal(err)
		}
		v.WriteDisconnect()
		net.SetLink("client", "server", prof.Params())
		v.Connect(prof.Bandwidth)
		var err error
		res, err = Run(s, v, Config{Root: "/coda/bench/andrew"})
		if err != nil {
			t.Fatal(err)
		}
	})
	return res
}

func TestAndrewCompletesAllPhases(t *testing.T) {
	res := runAt(t, netsim.Ethernet)
	if res.Files != 70 {
		t.Errorf("Files = %d, want 70", res.Files)
	}
	for name, d := range map[string]time.Duration{
		"MakeDir": res.MakeDir, "Copy": res.Copy, "ScanDir": res.ScanDir,
		"ReadAll": res.ReadAll, "Make": res.Make,
	} {
		if d < 0 {
			t.Errorf("phase %s has negative duration %v", name, d)
		}
	}
	// The paper's first objection: the whole benchmark takes under three
	// minutes, far less than any reasonable aging window.
	if res.Total > 3*time.Minute {
		t.Errorf("Total = %v; the Andrew analogue should be short", res.Total)
	}
}

// TestAndrewInsensitiveToBandwidth reproduces the paper's reason for NOT
// using the Andrew benchmark to evaluate trickle reintegration: with all
// updates logged locally and no cache misses, its running time barely
// notices the network at all.
func TestAndrewInsensitiveToBandwidth(t *testing.T) {
	eth := runAt(t, netsim.Ethernet)
	modem := runAt(t, netsim.Modem)
	ratio := float64(modem.Total) / float64(eth.Total)
	if ratio > 1.10 {
		t.Errorf("modem/Ethernet = %.2f; the benchmark should be insensitive (which is why the paper rejects it)", ratio)
	}
	t.Logf("Ethernet %v vs Modem %v (ratio %.3f) — insensitive, as §6.2 argues", eth.Total, modem.Total, ratio)
}
