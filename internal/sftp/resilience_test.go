package sftp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// TestTransferSurvivesTransientOutage: a link outage in the middle of a
// transfer must stall it, not kill it; the exponential backoff spans the
// outage and the transfer completes after reconnection.
func TestTransferSurvivesTransientOutage(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 9)
	net.SetDefaults(netsim.ISDN.Params())
	s.Run(func() {
		a, b := newPair(s, net)
		data := bytes.Repeat([]byte("outage"), 30_000) // 180 KB ≈ 23 s at ISDN

		// Sever the link 5 seconds in, restore it 40 seconds later.
		s.AfterFunc(5*time.Second, func() { net.SetUp("a", "b", false) })
		s.AfterFunc(45*time.Second, func() { net.SetUp("a", "b", true) })

		done := simtime.NewQueue[error](s)
		start := s.Now()
		s.Go(func() { done.Put(a.engine.Send("b", 1, data, obs.SpanContext{})) })
		got, err := b.engine.Await("a", 1, time.Hour)
		if err != nil {
			t.Fatalf("Await: %v", err)
		}
		if sendErr, _ := done.Get(); sendErr != nil {
			t.Fatalf("Send: %v", sendErr)
		}
		if !bytes.Equal(got, data) {
			t.Error("payload corrupted across outage")
		}
		elapsed := s.Now().Sub(start)
		if elapsed < 45*time.Second {
			t.Errorf("finished in %v, before the outage ended?", elapsed)
		}
	})
}

// TestBandwidthChangeMidTransfer: the link drops from WaveLan to modem
// partway through; the serialization-aware timeouts must adapt rather than
// declaring the peer dead.
func TestBandwidthChangeMidTransfer(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 10)
	net.SetDefaults(netsim.WaveLan.Params())
	s.Run(func() {
		a, b := newPair(s, net)
		data := bytes.Repeat([]byte("shift"), 24_000) // 120 KB
		s.AfterFunc(200*time.Millisecond, func() {
			net.SetLink("a", "b", netsim.Modem.Params())
		})
		done := simtime.NewQueue[error](s)
		s.Go(func() { done.Put(a.engine.Send("b", 1, data, obs.SpanContext{})) })
		got, err := b.engine.Await("a", 1, 2*time.Hour)
		if err != nil {
			t.Fatalf("Await: %v", err)
		}
		if sendErr, _ := done.Get(); sendErr != nil {
			t.Fatalf("Send: %v", sendErr)
		}
		if !bytes.Equal(got, data) {
			t.Error("payload corrupted across bandwidth change")
		}
	})
}
