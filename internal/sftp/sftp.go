// Package sftp implements the windowed bulk-transfer protocol that ships
// file contents for RPC2, modeled on Coda's SFTP (§4.1).
//
// A transfer moves one byte slice from sender to receiver as a stream of
// data packets under a selective-repeat sliding window. Acknowledgements
// carry a cumulative count plus a bitmap, so a single lost packet costs one
// retransmission rather than a window. Retransmission timeouts come from
// the shared per-peer netmon estimator, and every packet in either
// direction refreshes the peer's liveness — this is the keepalive
// unification the paper describes (SFTP traffic suppresses RPC2 and Venus
// keepalives).
//
// The Engine does not own a socket: its owner (rpc2.Node) passes a send
// function and routes incoming SFTP packets to Deliver. Both directions of
// both protocols therefore share one datagram endpoint, as in Coda.
package sftp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/netmon"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Protocol constants.
const (
	// DataPacketSize is the payload carried by one data packet.
	DataPacketSize = 1200
	// WindowPackets is the sender's maximum number of unacked packets.
	WindowPackets = 64
	// maxConsecutiveTimeouts aborts a transfer wedged on a dead link.
	maxConsecutiveTimeouts = 10
)

// Packet type tags (first byte of an SFTP payload).
const (
	tagData = 0x01
	tagAck  = 0x02
)

// ErrTransferFailed reports a transfer abandoned after repeated timeouts.
var ErrTransferFailed = errors.New("sftp: transfer failed (peer unreachable)")

// ErrAwaitTimeout reports that an expected incoming transfer never
// completed within the deadline.
var ErrAwaitTimeout = errors.New("sftp: timed out awaiting transfer")

type key struct {
	peer string
	id   uint64
}

// Engine manages all SFTP transfers for one node.
type Engine struct {
	clock simtime.Clock
	send  func(dst string, payload []byte) error
	mon   *netmon.Monitor

	// reg/self mint sftp spans; engine metrics stay unlabeled, so the
	// node label for span attribution is carried explicitly.
	reg  *obs.Registry
	self string

	mu        sync.Mutex
	senders   map[key]*simtime.Queue[ackInfo]
	incoming  map[key]*inTransfer
	done      map[key]*simtime.Queue[[]byte]
	completed map[key]uint32 // packet counts of finished transfers, for re-acking
	order     []key          // FIFO bound on completed

	met engineMetrics
}

// engineMetrics caches the engine's counter handles. All handles are
// nil (and inert) when no registry was injected.
type engineMetrics struct {
	packetsSent  *obs.Counter
	bytesSent    *obs.Counter
	retransmits  *obs.Counter
	windowStalls *obs.Counter
	transfers    *obs.Counter
	failures     *obs.Counter
	packetsRecv  *obs.Counter
	bytesRecv    *obs.Counter
}

type ackInfo struct {
	cum    uint32
	bitmap uint64
}

type inTransfer struct {
	total      uint32
	totalBytes uint64
	got        map[uint32][]byte
	sp         *obs.SpanHandle // sftp_receive, when the stream is traced
}

// NewEngine returns an Engine sending through send — which must not
// retain the payload after it returns: fragment buffers are pooled and
// recycled as soon as send comes back — and accounting against
// mon. reg may be nil, in which case the engine records no metrics and
// mints no spans; self is the owning node's address, used as the span
// node label.
func NewEngine(clock simtime.Clock, mon *netmon.Monitor, send func(dst string, payload []byte) error, reg *obs.Registry, self string) *Engine {
	return &Engine{
		clock:     clock,
		send:      send,
		mon:       mon,
		reg:       reg,
		self:      self,
		senders:   make(map[key]*simtime.Queue[ackInfo]),
		incoming:  make(map[key]*inTransfer),
		done:      make(map[key]*simtime.Queue[[]byte]),
		completed: make(map[key]uint32),
		met: engineMetrics{
			packetsSent:  reg.Counter("sftp_data_packets_sent_total"),
			bytesSent:    reg.Counter("sftp_bytes_sent_total"),
			retransmits:  reg.Counter("sftp_retransmits_total"),
			windowStalls: reg.Counter("sftp_window_stalls_total"),
			transfers:    reg.Counter("sftp_transfers_total"),
			failures:     reg.Counter("sftp_transfer_failures_total"),
			packetsRecv:  reg.Counter("sftp_data_packets_received_total"),
			bytesRecv:    reg.Counter("sftp_bytes_received_total"),
		},
	}
}

// Send transfers data to dst under transfer id, blocking until the receiver
// has acknowledged every packet or the transfer is abandoned. On success it
// feeds a throughput sample to the peer's bandwidth estimator. A valid sc
// makes the transfer one sftp_transfer span in the caller's trace, and
// every data fragment carries the span context so the receive side joins
// the same tree.
func (e *Engine) Send(dst string, id uint64, data []byte, sc obs.SpanContext) error {
	peer := e.mon.Peer(dst)
	total := uint32((len(data) + DataPacketSize - 1) / DataPacketSize)
	if total == 0 {
		total = 1 // zero-length transfers still need one (empty) packet
	}

	var sp *obs.SpanHandle
	wireCtx := obs.SpanContext{}
	if sc.Valid() {
		sp = e.reg.StartSpan(e.self, "sftp_transfer", sc, obs.F("dst", dst))
		wireCtx = sp.Context()
		if !wireCtx.Valid() {
			wireCtx = sc // registry absent or table full: still propagate
		}
	}
	defer sp.End()

	k := key{dst, id}
	acks := simtime.NewQueue[ackInfo](e.clock)
	e.mu.Lock()
	e.senders[k] = acks
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.senders, k)
		e.mu.Unlock()
	}()

	start := e.clock.Now()
	acked := make([]bool, total)
	base := uint32(0) // all packets < base are acked
	sent := uint32(0) // highest packet index ever sent + 1
	timeouts := 0

	// Single-timer RTT sampling (as in TCP): time one fresh packet at a
	// time; abandon the measurement if it is retransmitted (Karn).
	var timedSeq int64 = -1
	var timedAt time.Time

	xmit := func(i uint32) {
		lo := int(i) * DataPacketSize
		hi := lo + DataPacketSize
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		e.met.packetsSent.Inc()
		e.met.bytesSent.Add(int64(hi - lo))
		e.shipData(dst, id, i, total, uint64(len(data)), wireCtx, data[lo:hi])
	}
	xmitFresh := func(i uint32) {
		xmit(i)
		if timedSeq < 0 {
			timedSeq = int64(i)
			timedAt = e.clock.Now()
		}
	}
	xmitRetx := func(i uint32) {
		e.met.retransmits.Inc()
		xmit(i)
		if timedSeq >= 0 && int64(i) <= timedSeq {
			timedSeq = -1
		}
	}

	// Fill the initial window.
	for sent < total && sent < base+WindowPackets {
		xmitFresh(sent)
		sent++
	}

	// ackWait allows for the serialization time of everything in flight
	// at the estimated path bandwidth on top of the round-trip RTO; with
	// a window larger than the bandwidth-delay product (always true on a
	// modem), ack spacing is serialization-limited, not RTT-limited.
	ackWait := func(extra time.Duration) time.Duration {
		wait := peer.RTO() + extra
		if bw := peer.Bandwidth(); bw > 0 {
			var inflight int64
			for i := base; i < sent; i++ {
				if !acked[i] {
					inflight += DataPacketSize
				}
			}
			wait += time.Duration(inflight * 8 * int64(time.Second) / bw)
		}
		return wait
	}

	var backoff time.Duration
	lastRetx := make(map[uint32]time.Time) // dedup fast retransmissions per hole
	for base < total {
		ack, ok := acks.GetTimeout(ackWait(backoff))
		if !ok {
			// Timeout: retransmit everything still outstanding (a small
			// set — fast retransmit handles mid-window holes, so this
			// path is mostly tail losses) and back off.
			timeouts++
			e.met.windowStalls.Inc()
			if timeouts >= maxConsecutiveTimeouts {
				e.met.failures.Inc()
				return fmt.Errorf("%w: %s transfer %d at packet %d/%d",
					ErrTransferFailed, dst, id, base, total)
			}
			for i := base; i < sent; i++ {
				if !acked[i] {
					xmitRetx(i)
				}
			}
			if backoff == 0 {
				backoff = peer.RTO()
			} else {
				backoff *= 2
			}
			if backoff > netmon.MaxRTO {
				backoff = netmon.MaxRTO
			}
			continue
		}
		timeouts = 0
		backoff = 0

		for i := uint32(0); i < ack.cum && i < total; i++ {
			acked[i] = true
		}
		for b := 0; b < 64; b++ {
			if ack.bitmap&(1<<b) != 0 {
				if i := ack.cum + uint32(b); i < total {
					acked[i] = true
				}
			}
		}
		if timedSeq >= 0 && acked[timedSeq] {
			peer.ObserveRTT(e.clock.Now().Sub(timedAt))
			timedSeq = -1
		}
		maxAcked := int64(-1)
		for i := int64(sent) - 1; i >= int64(base); i-- {
			if acked[i] {
				maxAcked = i
				break
			}
		}
		for base < total && acked[base] {
			base++
		}
		// Send any packets newly admitted to the window; selectively
		// retransmit every hole below the highest acked packet (their
		// successors arrived, so they are presumed lost), at most once
		// per hole per timeout interval.
		for sent < total && sent < base+WindowPackets {
			xmitFresh(sent)
			sent++
		}
		now := e.clock.Now()
		rto := peer.RTO()
		for i := int64(base); i < maxAcked; i++ {
			if acked[i] {
				continue
			}
			if last, seen := lastRetx[uint32(i)]; !seen || now.Sub(last) > rto {
				xmitRetx(uint32(i))
				lastRetx[uint32(i)] = now
			}
		}
	}

	e.met.transfers.Inc()
	peer.ObserveTransfer(int64(len(data)), e.clock.Now().Sub(start))
	return nil
}

// Await blocks until the transfer (src, id) completes and returns its
// contents. Each completed transfer can be taken exactly once.
func (e *Engine) Await(src string, id uint64, timeout time.Duration) ([]byte, error) {
	k := key{src, id}
	e.mu.Lock()
	q, ok := e.done[k]
	if !ok {
		q = simtime.NewQueue[[]byte](e.clock)
		e.done[k] = q
	}
	e.mu.Unlock()

	data, ok := q.GetTimeout(timeout)
	if !ok {
		return nil, fmt.Errorf("%w: %s transfer %d", ErrAwaitTimeout, src, id)
	}
	e.mu.Lock()
	delete(e.done, k)
	e.mu.Unlock()
	return data, nil
}

// Deliver routes one incoming SFTP payload from src into the engine. The
// owning node calls it from its demultiplex loop.
func (e *Engine) Deliver(src string, payload []byte) {
	if len(payload) == 0 {
		return
	}
	e.mon.Peer(src).Heard()
	switch payload[0] {
	case tagData:
		e.deliverData(src, payload)
	case tagAck:
		e.deliverAck(src, payload)
	}
}

func (e *Engine) deliverData(src string, payload []byte) {
	id, seq, total, totalBytes, sc, data, ok := decodeData(payload)
	if !ok {
		return
	}
	e.met.packetsRecv.Inc()
	e.met.bytesRecv.Add(int64(len(data)))
	k := key{src, id}

	e.mu.Lock()
	if doneTotal, finished := e.completed[k]; finished {
		// The sender missed our final ack; re-ack so it can finish.
		e.mu.Unlock()
		e.shipAck(src, id, doneTotal, 0)
		return
	}
	t, ok := e.incoming[k]
	if !ok {
		t = &inTransfer{total: total, totalBytes: totalBytes, got: make(map[uint32][]byte)}
		if sc.Valid() {
			// The receive span opens on the first fragment and closes
			// on assembly; its parent context rode in on the wire.
			t.sp = e.reg.StartSpan(e.self, "sftp_receive", sc, obs.F("src", src))
		}
		e.incoming[k] = t
	}
	if _, dup := t.got[seq]; !dup && seq < t.total {
		t.got[seq] = append([]byte(nil), data...)
	}

	cum := uint32(0)
	for {
		if _, have := t.got[cum]; !have {
			break
		}
		cum++
	}
	var bitmap uint64
	for b := uint32(0); b < 64; b++ {
		if _, have := t.got[cum+b]; have {
			bitmap |= 1 << b
		}
	}

	complete := cum >= t.total
	var assembled []byte
	if complete {
		assembled = make([]byte, 0, t.totalBytes)
		for i := uint32(0); i < t.total; i++ {
			assembled = append(assembled, t.got[i]...)
		}
		delete(e.incoming, k)
		e.completed[k] = t.total
		e.order = append(e.order, k)
		if len(e.order) > 256 {
			delete(e.completed, e.order[0])
			e.order = e.order[1:]
		}
		q, ok := e.done[k]
		if !ok {
			q = simtime.NewQueue[[]byte](e.clock)
			e.done[k] = q
		}
		e.mu.Unlock()
		t.sp.End()
		e.shipAck(src, id, cum, bitmap)
		q.Put(assembled)
		return
	}
	e.mu.Unlock()
	e.shipAck(src, id, cum, bitmap)
}

func (e *Engine) deliverAck(src string, payload []byte) {
	id, cum, bitmap, ok := decodeAck(payload)
	if !ok {
		return
	}
	e.mu.Lock()
	q := e.senders[key{src, id}]
	e.mu.Unlock()
	if q != nil {
		q.Put(ackInfo{cum: cum, bitmap: bitmap})
	}
}

// Framed header sizes: data is tag(1) id(8) seq(4) total(4)
// totalBytes(8) len(2) trace(8) span(8) — the trailing span context is
// all-zero on untraced streams; ack is tag(1) id(8) cum(4) bitmap(8).
const (
	dataHeader = 43
	ackHeader  = 21
)

// appendData frames one data fragment into dst (the caller owns the
// buffer) and returns the extended slice.
//
//codalint:hotpath sftp fragment framing
func appendData(dst []byte, id uint64, seq, total uint32, totalBytes uint64, sc obs.SpanContext, data []byte) []byte {
	dst = append(dst, tagData)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, total)
	dst = binary.BigEndian.AppendUint64(dst, totalBytes)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(data)))
	dst = binary.BigEndian.AppendUint64(dst, sc.Trace)
	dst = binary.BigEndian.AppendUint64(dst, sc.Span)
	return append(dst, data...)
}

// shipData frames one data fragment into a pooled buffer and hands it
// to the send callback, which must not retain it. One of these fires
// per fragment of every bulk transfer; zero steady-state allocations
// here is pinned by BenchmarkAllocShipData and the benchgate (the span
// context is two fixed header words, nothing heap-allocated).
//
//codalint:hotpath sftp fragment framing
func (e *Engine) shipData(dst string, id uint64, seq, total uint32, totalBytes uint64, sc obs.SpanContext, data []byte) {
	bp := bufpool.Get(dataHeader + len(data))
	*bp = appendData(*bp, id, seq, total, totalBytes, sc, data)
	_ = e.send(dst, *bp)
	bufpool.Put(bp)
}

//codalint:hotpath sftp fragment parsing
func decodeData(p []byte) (id uint64, seq, total uint32, totalBytes uint64, sc obs.SpanContext, data []byte, ok bool) {
	if len(p) < dataHeader {
		return
	}
	n := int(binary.BigEndian.Uint16(p[25:]))
	if len(p) < dataHeader+n {
		return
	}
	id = binary.BigEndian.Uint64(p[1:])
	seq = binary.BigEndian.Uint32(p[9:])
	total = binary.BigEndian.Uint32(p[13:])
	totalBytes = binary.BigEndian.Uint64(p[17:])
	sc.Trace = binary.BigEndian.Uint64(p[27:])
	sc.Span = binary.BigEndian.Uint64(p[35:])
	return id, seq, total, totalBytes, sc, p[dataHeader : dataHeader+n], true
}

// shipAck frames one ack into a pooled buffer; every received data
// fragment answers with one of these.
//
//codalint:hotpath sftp ack framing
func (e *Engine) shipAck(dst string, id uint64, cum uint32, bitmap uint64) {
	bp := bufpool.Get(ackHeader)
	buf := append(*bp, tagAck)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, cum)
	buf = binary.BigEndian.AppendUint64(buf, bitmap)
	*bp = buf
	_ = e.send(dst, *bp)
	bufpool.Put(bp)
}

//codalint:hotpath sftp ack parsing
func decodeAck(p []byte) (id uint64, cum uint32, bitmap uint64, ok bool) {
	if len(p) < ackHeader {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint64(p[1:]), binary.BigEndian.Uint32(p[9:]), binary.BigEndian.Uint64(p[13:]), true
}
