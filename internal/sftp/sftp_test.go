package sftp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// node bundles an endpoint with an Engine and a pump goroutine.
type node struct {
	ep     *netsim.Endpoint
	engine *Engine
}

func newPair(s *simtime.Sim, n *netsim.Network) (a, b *node) {
	mk := func(name string) *node {
		ep := n.Host(name)
		mon := netmon.NewMonitor(s)
		eng := NewEngine(s, mon, ep.Send, nil, name)
		s.Go(func() {
			for {
				payload, src, ok := ep.Recv()
				if !ok {
					return
				}
				eng.Deliver(src, payload)
			}
		})
		return &node{ep: ep, engine: eng}
	}
	return mk("a"), mk("b")
}

func runTransfer(t *testing.T, params netsim.LinkParams, size int) time.Duration {
	t.Helper()
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 42)
	net.SetDefaults(params)
	var elapsed time.Duration
	s.Run(func() {
		a, b := newPair(s, net)
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 7)
		}
		done := simtime.NewQueue[error](s)
		start := s.Now()
		s.Go(func() { done.Put(a.engine.Send("b", 1, data, obs.SpanContext{})) })
		got, err := b.engine.Await("a", 1, time.Hour)
		if err != nil {
			t.Errorf("Await: %v", err)
		}
		if sendErr, _ := done.Get(); sendErr != nil {
			t.Errorf("Send: %v", sendErr)
		}
		elapsed = s.Now().Sub(start)
		if !bytes.Equal(got, data) {
			t.Errorf("payload corrupted: got %d bytes, want %d", len(got), len(data))
		}
	})
	return elapsed
}

func TestTransferSmall(t *testing.T) {
	runTransfer(t, netsim.Ethernet.Params(), 100)
}

func TestTransferOnePacketExactly(t *testing.T) {
	runTransfer(t, netsim.Ethernet.Params(), DataPacketSize)
}

func TestTransferZeroLength(t *testing.T) {
	runTransfer(t, netsim.Ethernet.Params(), 0)
}

func TestTransferMegabyteEthernet(t *testing.T) {
	elapsed := runTransfer(t, netsim.Ethernet.Params(), 1<<20)
	// 1 MB at 10 Mb/s is ~0.88 s on the wire; allow protocol overhead.
	if elapsed > 3*time.Second {
		t.Errorf("1MB over Ethernet took %v", elapsed)
	}
}

func TestTransferModemThroughput(t *testing.T) {
	size := 64 << 10
	elapsed := runTransfer(t, netsim.Modem.Params(), size)
	ideal := time.Duration(float64(size*8) / 9600 * float64(time.Second))
	if elapsed < ideal {
		t.Errorf("transfer faster than line rate: %v < %v", elapsed, ideal)
	}
	if elapsed > ideal*13/10 {
		t.Errorf("modem transfer %v exceeds 1.3× ideal %v", elapsed, ideal)
	}
}

func TestTransferSurvivesLoss(t *testing.T) {
	p := netsim.WaveLan.Params()
	p.LossRate = 0.10
	runTransfer(t, p, 256<<10)
}

func TestTransferSevereLoss(t *testing.T) {
	p := netsim.ISDN.Params()
	p.LossRate = 0.30
	runTransfer(t, p, 32<<10)
}

func TestConcurrentTransfers(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 3)
	net.SetDefaults(netsim.WaveLan.Params())
	s.Run(func() {
		a, b := newPair(s, net)
		const nt = 4
		done := simtime.NewQueue[error](s)
		for i := 0; i < nt; i++ {
			id := uint64(i + 1)
			data := bytes.Repeat([]byte{byte(id)}, 20<<10)
			s.Go(func() { done.Put(a.engine.Send("b", id, data, obs.SpanContext{})) })
		}
		for i := 0; i < nt; i++ {
			id := uint64(i + 1)
			got, err := b.engine.Await("a", id, time.Hour)
			if err != nil {
				t.Fatalf("Await %d: %v", id, err)
			}
			if len(got) != 20<<10 || got[0] != byte(id) {
				t.Errorf("transfer %d corrupted", id)
			}
		}
		for i := 0; i < nt; i++ {
			if err, _ := done.Get(); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
}

func TestSendFailsOnDeadLink(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 4)
	s.Run(func() {
		a, _ := newPair(s, net)
		net.SetUp("a", "b", false)
		err := a.engine.Send("b", 9, make([]byte, 5000), obs.SpanContext{})
		if !errors.Is(err, ErrTransferFailed) {
			t.Errorf("Send over dead link: %v, want ErrTransferFailed", err)
		}
	})
}

func TestAwaitTimeout(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 5)
	s.Run(func() {
		_, b := newPair(s, net)
		_, err := b.engine.Await("a", 77, 5*time.Second)
		if !errors.Is(err, ErrAwaitTimeout) {
			t.Errorf("Await with no sender: %v, want ErrAwaitTimeout", err)
		}
	})
}

func TestBandwidthEstimateAfterTransfer(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 6)
	net.SetDefaults(netsim.Modem.Params())
	s.Run(func() {
		a, b := newPair(s, net)
		mon := netmon.NewMonitor(s)
		a.engine.mon = mon
		data := make([]byte, 24<<10)
		done := simtime.NewQueue[error](s)
		s.Go(func() { done.Put(a.engine.Send("b", 1, data, obs.SpanContext{})) })
		if _, err := b.engine.Await("a", 1, time.Hour); err != nil {
			t.Fatal(err)
		}
		done.Get()
		bw := mon.Peer("b").Bandwidth()
		if bw < 6000 || bw > 9600 {
			t.Errorf("estimated bandwidth %d b/s over a 9600 b/s modem", bw)
		}
	})
}

// Property: any payload (up to 64 KB) survives a 5%-lossy link intact.
func TestTransferIntegrityProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		size := int(sizeRaw) // 0..65535
		s := simtime.NewSim(simtime.Epoch1995)
		p := netsim.WaveLan.Params()
		p.LossRate = 0.05
		net := netsim.New(s, seed)
		net.SetDefaults(p)
		ok := true
		s.Run(func() {
			a, b := newPair(s, net)
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(seed>>uint(i%8) + int64(i))
			}
			done := simtime.NewQueue[error](s)
			s.Go(func() { done.Put(a.engine.Send("b", 1, data, obs.SpanContext{})) })
			got, err := b.engine.Await("a", 1, time.Hour)
			errSend, _ := done.Get()
			ok = err == nil && errSend == nil && bytes.Equal(got, data)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
