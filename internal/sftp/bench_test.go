package sftp

import (
	"testing"

	"repro/internal/obs"
)

// The ship benchmarks pin the per-fragment framing paths at zero
// steady-state heap allocations (pooled buffers, recycled as soon as
// the send callback returns). Enforced by benchgate against
// bench_baseline.json.

func BenchmarkAllocShipData(b *testing.B) {
	e := &Engine{send: func(dst string, p []byte) error { return nil }}
	data := make([]byte, DataPacketSize)
	e.shipData("dst", 1, 0, 1, uint64(len(data)), obs.SpanContext{}, data) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.shipData("dst", 1, uint32(i), uint32(b.N), uint64(len(data)), obs.SpanContext{}, data)
	}
}

func BenchmarkAllocShipAck(b *testing.B) {
	e := &Engine{send: func(dst string, p []byte) error { return nil }}
	e.shipAck("dst", 1, 0, 0) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.shipAck("dst", 1, uint32(i), 0xff)
	}
}
