package integration

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/venus"
	"repro/internal/wire"
)

// TestServerSurvivesGarbageDatagrams sprays random bytes at a live server
// while a real client works; nothing may panic, and the client's traffic
// must keep flowing.
func TestServerSurvivesGarbageDatagrams(t *testing.T) {
	w := newWorld(50)
	w.srv.CreateVolume("usr")
	w.srv.WriteFile("usr", "f", []byte("payload"))
	rng := rand.New(rand.NewSource(50))

	w.sim.Run(func() {
		attacker := w.net.Host("attacker")
		w.sim.Go(func() {
			for i := 0; i < 500; i++ {
				n := rng.Intn(300)
				junk := make([]byte, n)
				rng.Read(junk)
				// Valid-looking kind bytes with garbage bodies, plus
				// pure noise.
				if n > 0 && i%3 == 0 {
					junk[0] = byte(1 + rng.Intn(6))
				}
				attacker.Send("server", junk)
				w.sim.Sleep(50 * time.Millisecond)
			}
		})

		v := w.venus("c", 1, venus.Config{})
		if err := v.Mount("usr"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := v.ReadFile("/coda/usr/f"); err != nil {
				t.Fatalf("read %d failed during garbage spray: %v", i, err)
			}
			if err := v.WriteFile("/coda/usr/g", []byte{byte(i)}); err != nil {
				t.Fatalf("write %d failed during garbage spray: %v", i, err)
			}
			w.sim.Sleep(time.Second)
		}
	})
}

// TestWireDecodeNeverPanics fuzzes the gob envelope decoder.
func TestWireDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		wire.Decode(buf) // must not panic; errors are fine
	}
	// Truncations of a valid message.
	valid, err := wire.Encode(wire.GetAttr{})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut++ {
		wire.Decode(valid[:cut])
	}
}

// TestClientSurvivesGarbageFromServerAddress: junk arriving at the client
// from the address it trusts must not corrupt its state machine.
func TestClientSurvivesGarbageFromServerAddress(t *testing.T) {
	w := newWorld(52)
	w.srv.CreateVolume("usr")
	w.srv.WriteFile("usr", "f", []byte("x"))
	rng := rand.New(rand.NewSource(52))

	w.sim.Run(func() {
		v := w.venus("c", 1, venus.Config{})
		if err := v.Mount("usr"); err != nil {
			t.Fatal(err)
		}
		// Inject junk that arrives with the server's source address (an
		// on-path spoofer); netsim hands back the server's own endpoint
		// for its name, which is exactly what we need here.
		evil := w.net.Host("server")
		for i := 0; i < 200; i++ {
			junk := make([]byte, rng.Intn(100))
			rng.Read(junk)
			if len(junk) > 0 {
				junk[0] = byte(1 + rng.Intn(6))
			}
			evil.Send("c", junk)
		}
		w.sim.Sleep(time.Second)
		if _, err := v.ReadFile("/coda/usr/f"); err != nil {
			t.Fatalf("client wedged by junk: %v", err)
		}
		if v.State() != venus.Hoarding {
			t.Errorf("junk changed client state to %v", v.State())
		}
	})
}
