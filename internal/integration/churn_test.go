package integration

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/venus"
)

// TestConnectivityChurnConverges tortures one client with random link
// flapping — outages, modem periods, LAN periods — while it writes
// continuously. When the dust settles on a strong link, every surviving
// file must be byte-identical on the server, with no conflicts (single
// writer) and no duplicated applications.
func TestConnectivityChurnConverges(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := newWorld(200 + seed)
			w.srv.CreateVolume("churn")
			rng := rand.New(rand.NewSource(seed))

			w.sim.Run(func() {
				v := w.venus("c", 1, venus.Config{
					AgingWindow:     5 * time.Second,
					TrickleInterval: 2 * time.Second,
				})
				if err := v.Mount("churn"); err != nil {
					t.Fatal(err)
				}

				// The expected final contents, maintained alongside.
				want := make(map[string][]byte)

				connected := true
				for round := 0; round < 60; round++ {
					// Flap the network.
					switch rng.Intn(4) {
					case 0: // outage
						if connected {
							w.net.SetUp("c", "server", false)
							v.Disconnect()
							connected = false
						}
					case 1: // modem
						w.net.SetUp("c", "server", true)
						w.net.SetLink("c", "server", netsim.Modem.Params())
						v.Connect(9600)
						connected = true
					case 2: // LAN
						w.net.SetUp("c", "server", true)
						w.net.SetLink("c", "server", netsim.Ethernet.Params())
						v.Connect(10_000_000)
						connected = true
					case 3: // stay put
					}

					// Work: create, overwrite, or remove.
					name := fmt.Sprintf("/coda/churn/f%02d", rng.Intn(12))
					switch rng.Intn(5) {
					case 0, 1, 2: // write
						content := bytes.Repeat([]byte{byte(round)}, 500+rng.Intn(8000))
						if err := v.WriteFile(name, content); err == nil {
							want[name] = content
						}
					case 3: // remove
						if err := v.Remove(name); err == nil {
							delete(want, name)
						}
					case 4: // read (may miss while disconnected; fine)
						v.ReadFile(name)
					}
					w.sim.Sleep(time.Duration(5+rng.Intn(40)) * time.Second)
				}

				// Settle: strong link, full drain.
				w.net.SetUp("c", "server", true)
				w.net.SetLink("c", "server", netsim.Ethernet.Params())
				v.Connect(10_000_000)
				if err := v.ForceReintegrate(); err != nil {
					t.Fatalf("final drain: %v", err)
				}
				if n := v.CMLRecords(); n != 0 {
					t.Fatalf("CML still has %d records", n)
				}
				if conflicts := v.Conflicts(); len(conflicts) != 0 {
					t.Fatalf("single-writer run produced conflicts: %+v", conflicts)
				}

				// The server must agree with the client's view exactly.
				for name, content := range want {
					rel := name[len("/coda/churn/"):]
					got, err := w.srv.ReadFile("churn", rel)
					if err != nil {
						t.Errorf("%s missing on server: %v", name, err)
						continue
					}
					if !bytes.Equal(got, content) {
						t.Errorf("%s differs: server %d bytes, want %d", name, len(got), len(content))
					}
				}
				// And nothing extra.
				names, err := v.ReadDir("/coda/churn")
				if err != nil {
					t.Fatal(err)
				}
				if len(names) != len(want) {
					t.Errorf("server has %d entries, want %d", len(names), len(want))
				}
			})
		})
	}
}
