package integration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// TestParallelVolumesSerializePerVolume hammers one server with C clients
// × V volumes concurrently and checks the per-volume serialization
// invariant: every volume's final stamp is exactly 1 + 3·C·K (each
// connected-mode file creation is one MakeObject — bumping the new FID
// and its parent — plus one Store), so no update was lost and no stamp
// was double-allocated across the volume domains.
func TestParallelVolumesSerializePerVolume(t *testing.T) {
	const (
		C = 4 // clients
		V = 4 // volumes
		K = 3 // files per (client, volume)
	)
	w := newWorld(7)
	for j := 0; j < V; j++ {
		w.srv.CreateVolume(fmt.Sprintf("vol%d", j))
	}
	w.sim.Run(func() {
		clients := make([]*venus.Venus, C)
		for i := range clients {
			clients[i] = w.venus(fmt.Sprintf("c%d", i), uint32(i+1), venus.Config{})
			for j := 0; j < V; j++ {
				if err := clients[i].Mount(fmt.Sprintf("vol%d", j)); err != nil {
					t.Fatal(err)
				}
			}
		}

		// One goroutine per (client, volume) pair, all writing at once.
		done := simtime.NewQueue[error](w.sim)
		for i := 0; i < C; i++ {
			for j := 0; j < V; j++ {
				i, j := i, j
				w.sim.Go(func() {
					var err error
					for k := 0; k < K; k++ {
						path := fmt.Sprintf("/coda/vol%d/c%d_f%d.txt", j, i, k)
						if e := clients[i].WriteFile(path, payload(i, j, k)); e != nil && err == nil {
							err = fmt.Errorf("%s: %w", path, e)
						}
					}
					done.Put(err)
				})
			}
		}
		for n := 0; n < C*V; n++ {
			if err, _ := done.Get(); err != nil {
				t.Fatal(err)
			}
		}

		// Exact stamp accounting per volume.
		want := uint64(1 + 3*C*K)
		for j := 0; j < V; j++ {
			name := fmt.Sprintf("vol%d", j)
			stamp, err := w.srv.VolumeStamp(name)
			if err != nil {
				t.Fatal(err)
			}
			if stamp != want {
				t.Errorf("%s stamp = %d, want %d", name, stamp, want)
			}
		}
		// And every byte arrived intact.
		for i := 0; i < C; i++ {
			for j := 0; j < V; j++ {
				for k := 0; k < K; k++ {
					rel := fmt.Sprintf("c%d_f%d.txt", i, k)
					got, err := w.srv.ReadFile(fmt.Sprintf("vol%d", j), rel)
					if err != nil || !bytes.Equal(got, payload(i, j, k)) {
						t.Errorf("vol%d/%s = %d bytes, %v", j, rel, len(got), err)
					}
				}
			}
		}
	})
}

func payload(i, j, k int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("c%d v%d f%d;", i, j, k)), 50)
}

// TestTrickleVolumesIndependent: with per-volume trickle loops, a small
// update in one volume reintegrates while another volume's huge store is
// still shipping over the weak link. A serialized drain would hold the
// small record hostage for the big file's entire transfer time.
func TestTrickleVolumesIndependent(t *testing.T) {
	w := newWorld(8)
	w.srv.CreateVolume("bulk")
	w.srv.CreateVolume("mail")
	w.sim.Run(func() {
		v := w.venus("c", 1, venus.Config{
			AgingWindow:          time.Second,
			PinWriteDisconnected: true,
		})
		for _, name := range []string{"bulk", "mail"} {
			if err := v.Mount(name); err != nil {
				t.Fatal(err)
			}
		}
		w.net.SetLink("c", "server", netsim.Modem.Params())
		v.Connect(9600)

		// ~200 KB takes ≥ 166 s of pure transmission at 9600 b/s.
		big := bytes.Repeat([]byte("bulk data "), 20_000)
		must(t, v.WriteFile("/coda/bulk/archive.tar", big))
		w.sim.Sleep(10 * time.Second) // the bulk shipment is now underway
		must(t, v.WriteFile("/coda/mail/outbox.txt", []byte("short note")))

		// The mail volume's record must land while bulk is still shipping.
		// (The bulk file may already exist empty — its Create record ships
		// in a small first chunk — so "still shipping" means the contents
		// are incomplete, not that the name is absent.)
		start := w.sim.Now()
		for {
			if got, err := w.srv.ReadFile("mail", "outbox.txt"); err == nil {
				if string(got) != "short note" {
					t.Fatalf("outbox = %q", got)
				}
				break
			}
			if w.sim.Now().Sub(start) > 110*time.Second {
				t.Fatal("small volume starved behind the bulk transfer")
			}
			w.sim.Sleep(5 * time.Second)
		}
		if got, err := w.srv.ReadFile("bulk", "archive.tar"); err == nil && bytes.Equal(got, big) {
			t.Fatal("bulk transfer finished impossibly fast; test not discriminating")
		}

		// Eventually the bulk volume completes too.
		w.sim.Sleep(15 * time.Minute)
		got, err := w.srv.ReadFile("bulk", "archive.tar")
		if err != nil || !bytes.Equal(got, big) {
			t.Fatalf("archive.tar = %d bytes, %v", len(got), err)
		}
		if n := v.CMLRecords(); n != 0 {
			t.Errorf("CML still holds %d records", n)
		}
	})
}
