package integration

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
	"repro/internal/wal"
)

// TestTraceTreeWeakLinkFailover pins the parent/child structure of one
// traced weak-link reintegration that fails over mid-batch: the client
// logs a batch disconnected, reconnects against a two-member journaled
// group, and the preferred member's return path dies — the request
// executes there but the ack vanishes, so the client waits out the
// failover and retransmits to the second member. Every layer the batch
// crosses must hang off the single venus_reintegrate root:
//
//	venus_reintegrate (laptop)
//	├── venus_failover_wait (laptop)           — the abandoned attempt
//	└── rpc2_call (laptop)                     — per member tried
//	    └── server_apply (srvN)                — crossed the wire
//	        └── wal_append (srvN)
//	            └── wal_fsync (srvN)           — SyncEachRecord
func TestTraceTreeWeakLinkFailover(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	n := netsim.New(s, 9)
	n.SetDefaults(netsim.Ethernet.Params())
	reg := obs.NewRegistry(s)
	conns := make([]netsim.PacketConn, 2)
	for i := range conns {
		conns[i] = n.Host(fmt.Sprintf("srv%d", i))
	}
	grp, err := group.New(s, conns, group.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < grp.Len(); i++ {
		opts := server.JournalOptions{FS: crashfs.NewMem(), Dir: "sj", Policy: wal.SyncEachRecord}
		if _, err := grp.Member(i).AttachJournal(opts); err != nil {
			t.Fatal(err)
		}
	}
	info, err := grp.CreateVolume("work")
	if err != nil {
		t.Fatal(err)
	}
	pref := grp.Addrs()[int(uint64(info.ID)%uint64(grp.Len()))]

	s.Run(func() {
		v := venus.New(s, n.Host("laptop"), venus.Config{
			Servers:         grp.Addrs(),
			ClientID:        1,
			AgingWindow:     time.Minute,
			TrickleInterval: time.Second,
			Obs:             reg,
		})
		if err := v.Mount("work"); err != nil {
			t.Fatal(err)
		}
		v.Disconnect()
		if err := v.WriteFile("/coda/work/f0.txt", []byte("draft")); err != nil {
			t.Fatal(err)
		}
		v.Connect(0)
		s.Sleep(5 * time.Second)
		if n := v.CMLRecords(); n == 0 {
			t.Fatal("CML drained before the ack path was cut; raise AgingWindow")
		}
		n.ConfigureOneWay(pref, "laptop", func(p *netsim.LinkParams) { p.Up = false })
		deadline := s.Now().Add(30 * time.Minute)
		for v.CMLRecords() > 0 && s.Now().Before(deadline) {
			s.Sleep(10 * time.Second)
		}
		if n := v.CMLRecords(); n != 0 {
			t.Fatalf("CML still holds %d records after failover window", n)
		}
		if v.Stats().Failovers == 0 {
			t.Fatal("no failover despite dead return path")
		}
	})

	spans := reg.Spans()
	if reg.DroppedSpans() != 0 {
		t.Fatalf("span table dropped %d spans", reg.DroppedSpans())
	}
	byID := map[uint64]obs.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	parentName := func(sp obs.Span) string {
		if sp.Parent == 0 {
			return ""
		}
		p, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %s (trace %d) has unknown parent %d", sp.Name, sp.Trace, sp.Parent)
		}
		return p.Name
	}

	// Locate the reintegration that carried the batch across: the
	// venus_reintegrate trace holding a server_apply. The whole chain
	// below pins who may parent whom, layer by layer.
	counts := map[string]int{}
	var batchTrace uint64
	for _, sp := range spans {
		if sp.Name == "server_apply" {
			root, ok := byID[sp.Trace]
			if !ok || root.Name != "venus_reintegrate" {
				continue
			}
			batchTrace = sp.Trace
		}
	}
	if batchTrace == 0 {
		t.Fatal("no server_apply recorded under a venus_reintegrate trace")
	}
	for _, sp := range spans {
		if sp.Trace != batchTrace {
			continue
		}
		counts[sp.Name]++
		switch sp.Name {
		case "venus_reintegrate":
			if sp.Parent != 0 {
				t.Errorf("venus_reintegrate has parent %q, want root", parentName(sp))
			}
			if sp.Node != "laptop" {
				t.Errorf("venus_reintegrate on node %q, want laptop", sp.Node)
			}
		case "venus_failover_wait":
			if got := parentName(sp); got != "venus_reintegrate" {
				t.Errorf("venus_failover_wait parent = %q, want venus_reintegrate", got)
			}
			if sp.Node != "laptop" {
				t.Errorf("venus_failover_wait on node %q, want laptop", sp.Node)
			}
		case "rpc2_call":
			// The client's reintegration RPCs hang off the root; the
			// servers' own ShipLog anti-entropy RPCs hang off their
			// server_ship_log spans, still inside the same trace.
			if got := parentName(sp); got != "venus_reintegrate" && got != "server_ship_log" {
				t.Errorf("rpc2_call parent = %q, want venus_reintegrate or server_ship_log", got)
			}
		case "rpc2_retransmit_wait":
			if got := parentName(sp); got != "rpc2_call" {
				t.Errorf("rpc2_retransmit_wait parent = %q, want rpc2_call", got)
			}
		case "server_apply":
			if got := parentName(sp); got != "rpc2_call" {
				t.Errorf("server_apply parent = %q, want rpc2_call", got)
			}
			if !strings.HasPrefix(sp.Node, "srv") {
				t.Errorf("server_apply on node %q, want a group member", sp.Node)
			}
		case "wal_append":
			if got := parentName(sp); got != "server_apply" {
				t.Errorf("wal_append parent = %q, want server_apply", got)
			}
		case "wal_fsync":
			if got := parentName(sp); got != "wal_append" {
				t.Errorf("wal_fsync parent = %q, want wal_append", got)
			}
		case "server_ship_log":
			if got := parentName(sp); got != "rpc2_call" && got != "server_ship_log" {
				t.Errorf("server_ship_log parent = %q, want rpc2_call", got)
			}
		}
	}

	// The tree must contain every layer exactly as the failover story
	// tells it: one root, at least one abandoned attempt, both deliveries
	// applied and journaled durably.
	if counts["venus_reintegrate"] != 1 {
		t.Errorf("trace holds %d venus_reintegrate roots, want 1", counts["venus_reintegrate"])
	}
	if counts["venus_failover_wait"] < 1 {
		t.Error("no venus_failover_wait span in the batch trace")
	}
	for _, name := range []string{"rpc2_call", "server_apply", "wal_append", "wal_fsync"} {
		if counts[name] < 1 {
			t.Errorf("no %s span in the batch trace (counts: %v)", name, counts)
		}
	}
	if counts["server_apply"] < 2 {
		t.Errorf("trace holds %d server_apply spans, want original + failover retransmit", counts["server_apply"])
	}
}
