package integration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// gworld is a sim whose server side is a replicated group instead of a
// single server.
type gworld struct {
	sim *simtime.Sim
	net *netsim.Network
	grp *group.Group
}

func newGroupWorld(t *testing.T, seed int64, members int) *gworld {
	t.Helper()
	s := simtime.NewSim(simtime.Epoch1995)
	n := netsim.New(s, seed)
	n.SetDefaults(netsim.Ethernet.Params())
	conns := make([]netsim.PacketConn, members)
	for i := range conns {
		conns[i] = n.Host(fmt.Sprintf("srv%d", i))
	}
	grp, err := group.New(s, conns)
	if err != nil {
		t.Fatal(err)
	}
	return &gworld{sim: s, net: n, grp: grp}
}

func (w *gworld) venus(name string, id uint32, cfg venus.Config) *venus.Venus {
	cfg.Servers = w.grp.Addrs()
	cfg.ClientID = id
	if cfg.TrickleInterval == 0 {
		cfg.TrickleInterval = time.Second
	}
	return venus.New(w.sim, w.net.Host(name), cfg)
}

// requireGroupConverged asserts byte-identical SaveState across members.
func (w *gworld) requireGroupConverged(t *testing.T) {
	t.Helper()
	var img0 bytes.Buffer
	if err := w.grp.Member(0).SaveState(&img0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < w.grp.Len(); i++ {
		var img bytes.Buffer
		if err := w.grp.Member(i).SaveState(&img); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img0.Bytes(), img.Bytes()) {
			t.Errorf("member %d SaveState differs from member 0", i)
		}
	}
}

// TestParallelVolumesReplicatedGroup extends the 1 + 3·C·K per-volume
// stamp invariant to a three-member group: C clients × V volumes writing
// concurrently through their per-volume preferred members, with every
// mutation shipped to the peers. The exact stamp must hold on EVERY
// member — replication may not lose an update, deliver one twice, or
// reorder within a volume — and the members must end byte-identical.
func TestParallelVolumesReplicatedGroup(t *testing.T) {
	const (
		C = 3 // clients
		V = 3 // volumes
		K = 2 // files per (client, volume)
	)
	w := newGroupWorld(t, 7, 3)
	for j := 0; j < V; j++ {
		if _, err := w.grp.CreateVolume(fmt.Sprintf("vol%d", j)); err != nil {
			t.Fatal(err)
		}
	}
	w.sim.Run(func() {
		clients := make([]*venus.Venus, C)
		for i := range clients {
			clients[i] = w.venus(fmt.Sprintf("c%d", i), uint32(i+1), venus.Config{})
			for j := 0; j < V; j++ {
				if err := clients[i].Mount(fmt.Sprintf("vol%d", j)); err != nil {
					t.Fatal(err)
				}
			}
		}

		done := simtime.NewQueue[error](w.sim)
		for i := 0; i < C; i++ {
			for j := 0; j < V; j++ {
				i, j := i, j
				w.sim.Go(func() {
					var err error
					for k := 0; k < K; k++ {
						path := fmt.Sprintf("/coda/vol%d/c%d_f%d.txt", j, i, k)
						if e := clients[i].WriteFile(path, payload(i, j, k)); e != nil && err == nil {
							err = fmt.Errorf("%s: %w", path, e)
						}
					}
					done.Put(err)
				})
			}
		}
		for n := 0; n < C*V; n++ {
			if err, _ := done.Get(); err != nil {
				t.Fatal(err)
			}
		}
		w.sim.Sleep(30 * time.Second) // let ships drain group-wide

		want := uint64(1 + 3*C*K)
		for j := 0; j < V; j++ {
			name := fmt.Sprintf("vol%d", j)
			for m := 0; m < w.grp.Len(); m++ {
				stamp, err := w.grp.Member(m).VolumeStamp(name)
				if err != nil {
					t.Fatal(err)
				}
				if stamp != want {
					t.Errorf("member %d %s stamp = %d, want %d", m, name, stamp, want)
				}
			}
		}
		for i := 0; i < C; i++ {
			for j := 0; j < V; j++ {
				for k := 0; k < K; k++ {
					rel := fmt.Sprintf("c%d_f%d.txt", i, k)
					for m := 0; m < w.grp.Len(); m++ {
						got, err := w.grp.Member(m).ReadFile(fmt.Sprintf("vol%d", j), rel)
						if err != nil || !bytes.Equal(got, payload(i, j, k)) {
							t.Errorf("member %d vol%d/%s = %d bytes, %v", m, j, rel, len(got), err)
						}
					}
				}
			}
		}
		w.requireGroupConverged(t)
	})
}

// TestReintegrateRetransmitDedupUnderAckLoss: the preferred member
// applies a reintegration but every packet back to the client is lost,
// so the client times out, fails over, and retransmits the same CML
// batch to the second member. The (client, seq) dedup set must absorb
// the retransmit: the exact single-delivery stamp on both members, the
// CML drained, and the group byte-identical.
//
// The batch is kept to one small file so the Reintegrate body stays
// inline (under rpc2.InlineLimit): a larger body travels by SFTP, whose
// reliable transfer cannot even complete against a dead return path, so
// the preferred member would never receive the batch and there would be
// nothing to deduplicate.
func TestReintegrateRetransmitDedupUnderAckLoss(t *testing.T) {
	const K = 1
	w := newGroupWorld(t, 9, 2)
	info, err := w.grp.CreateVolume("work")
	if err != nil {
		t.Fatal(err)
	}
	prefIdx := int(uint64(info.ID) % uint64(w.grp.Len()))
	pref := w.grp.Addrs()[prefIdx]
	otherIdx := (prefIdx + 1) % w.grp.Len()
	w.sim.Run(func() {
		// AgingWindow holds the records back long enough to reconnect and
		// cut the ack path before the first drain attempt.
		v := w.venus("laptop", 1, venus.Config{AgingWindow: time.Minute})
		if err := v.Mount("work"); err != nil {
			t.Fatal(err)
		}

		// Log a batch while disconnected.
		v.Disconnect()
		for k := 0; k < K; k++ {
			path := fmt.Sprintf("/coda/work/f%d.txt", k)
			if err := v.WriteFile(path, []byte(fmt.Sprintf("draft %d", k))); err != nil {
				t.Fatal(err)
			}
		}

		// Reconnect over healthy links so reconnection validation keeps
		// the preferred member, then kill its return path: reintegration
		// requests will arrive and execute there, but the acks vanish —
		// the lost-ack half of the failover-retransmit scenario.
		v.Connect(0)
		w.sim.Sleep(5 * time.Second)
		if n := v.CMLRecords(); n != 2*K {
			t.Fatalf("CML drained to %d records before the ack path was cut; raise AgingWindow", n)
		}
		w.net.ConfigureOneWay(pref, "laptop", func(p *netsim.LinkParams) { p.Up = false })

		deadline := w.sim.Now().Add(30 * time.Minute)
		for v.CMLRecords() > 0 && w.sim.Now().Before(deadline) {
			w.sim.Sleep(10 * time.Second)
		}
		if n := v.CMLRecords(); n != 0 {
			t.Fatalf("CML still holds %d records after failover window", n)
		}
		if v.Stats().Failovers == 0 {
			t.Error("no failover counted despite dead return path")
		}

		// Exact accounting: one delivery's worth of stamps, nothing more.
		// A reintegrated batch bumps the stamp once per distinct object it
		// touches — K files plus the root directory over the initial 1.
		w.net.ConfigureOneWay(pref, "laptop", func(p *netsim.LinkParams) { p.Up = true })
		w.sim.Sleep(30 * time.Second) // ships settle
		want := uint64(1 + K + 1)
		for m := 0; m < w.grp.Len(); m++ {
			stamp, err := w.grp.Member(m).VolumeStamp("work")
			if err != nil {
				t.Fatal(err)
			}
			if stamp != want {
				t.Errorf("member %d stamp = %d, want %d (duplicate apply?)", m, stamp, want)
			}
		}
		// Both members saw a Reintegrate (original + retransmit), and the
		// failover target absorbed the whole batch as duplicates.
		if got := w.grp.Member(otherIdx).Stats().DuplicatesDropped; got != 2*K {
			t.Errorf("failover target DuplicatesDropped = %d, want %d", got, 2*K)
		}
		if reints := w.grp.Member(prefIdx).Stats().Reintegrations +
			w.grp.Member(otherIdx).Stats().Reintegrations; reints < 2 {
			t.Errorf("group saw %d reintegrations, want original + retransmit", reints)
		}
		for k := 0; k < K; k++ {
			for m := 0; m < w.grp.Len(); m++ {
				got, err := w.grp.Member(m).ReadFile("work", fmt.Sprintf("f%d.txt", k))
				if err != nil || string(got) != fmt.Sprintf("draft %d", k) {
					t.Errorf("member %d f%d.txt = %q, %v", m, k, got, err)
				}
			}
		}
		w.requireGroupConverged(t)
	})
}
