// Package integration exercises the full stack across package boundaries:
// multiple clients sharing a server over degrading links, conflict
// matrices, equivalence of the connected and reintegration update paths,
// and the whole system running over real UDP with the real clock.
package integration

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

type world struct {
	sim *simtime.Sim
	net *netsim.Network
	srv *server.Server
}

func newWorld(seed int64) *world {
	s := simtime.NewSim(simtime.Epoch1995)
	n := netsim.New(s, seed)
	n.SetDefaults(netsim.Ethernet.Params())
	return &world{sim: s, net: n, srv: server.New(s, n.Host("server"))}
}

func (w *world) venus(name string, id uint32, cfg venus.Config) *venus.Venus {
	cfg.Server = "server"
	cfg.ClientID = id
	if cfg.TrickleInterval == 0 {
		cfg.TrickleInterval = time.Second
	}
	return venus.New(w.sim, w.net.Host(name), cfg)
}

// TestTwoClientsShareUpdatesViaCallbacks: classic sharing — one client
// writes, the other's cached copy is invalidated by a callback break and
// refetched.
func TestTwoClientsShareUpdatesViaCallbacks(t *testing.T) {
	w := newWorld(1)
	w.srv.CreateVolume("shared")
	w.srv.WriteFile("shared", "board.txt", []byte("round 0"))
	w.sim.Run(func() {
		a := w.venus("alice", 1, venus.Config{})
		b := w.venus("bob", 2, venus.Config{})
		for _, v := range []*venus.Venus{a, b} {
			if err := v.Mount("shared"); err != nil {
				t.Fatal(err)
			}
		}
		for round := 1; round <= 5; round++ {
			msg := []byte(fmt.Sprintf("round %d", round))
			writer, reader := a, b
			if round%2 == 0 {
				writer, reader = b, a
			}
			if err := writer.WriteFile("/coda/shared/board.txt", msg); err != nil {
				t.Fatal(err)
			}
			w.sim.Sleep(time.Second) // break delivery
			got, err := reader.ReadFile("/coda/shared/board.txt")
			if err != nil || !bytes.Equal(got, msg) {
				t.Fatalf("round %d: reader saw %q, %v", round, got, err)
			}
		}
	})
}

// TestConflictMatrix drives the classic disconnected-conflict pairs and
// checks the server's verdicts: update/update conflicts, remove/update
// conflicts, create/create collisions.
func TestConflictMatrix(t *testing.T) {
	w := newWorld(2)
	w.srv.CreateVolume("v")
	w.srv.WriteFile("v", "both-edit", []byte("base"))
	w.srv.WriteFile("v", "edit-vs-remove", []byte("base"))
	w.sim.Run(func() {
		a := w.venus("alice", 1, venus.Config{AgingWindow: time.Second})
		b := w.venus("bob", 2, venus.Config{AgingWindow: time.Second})
		for _, v := range []*venus.Venus{a, b} {
			if err := v.Mount("v"); err != nil {
				t.Fatal(err)
			}
			// Warm both caches.
			v.ReadFile("/coda/v/both-edit")
			v.ReadFile("/coda/v/edit-vs-remove")
		}

		// Both disconnect and diverge.
		w.net.SetUp("alice", "server", false)
		w.net.SetUp("bob", "server", false)
		a.Disconnect()
		b.Disconnect()

		must(t, a.WriteFile("/coda/v/both-edit", []byte("alice's version")))
		must(t, b.WriteFile("/coda/v/both-edit", []byte("bob's version")))
		must(t, a.WriteFile("/coda/v/edit-vs-remove", []byte("alice edits")))
		must(t, b.Remove("/coda/v/edit-vs-remove"))
		must(t, a.WriteFile("/coda/v/new-name", []byte("from alice")))
		must(t, b.WriteFile("/coda/v/new-name", []byte("from bob")))

		// Alice reconnects first: all her updates win cleanly.
		w.net.SetUp("alice", "server", true)
		a.Connect(10_000_000)
		w.sim.Sleep(30 * time.Second)
		if len(a.Conflicts()) != 0 {
			t.Error("first reintegrator saw conflicts")
		}
		if got, _ := w.srv.ReadFile("v", "both-edit"); string(got) != "alice's version" {
			t.Errorf("both-edit = %q", got)
		}

		// Bob reconnects: every one of his divergent updates conflicts.
		w.net.SetUp("bob", "server", true)
		b.Connect(10_000_000)
		w.sim.Sleep(time.Minute)
		conflicts := b.Conflicts()
		if len(conflicts) < 3 {
			t.Fatalf("bob saw %d conflicts (%+v), want ≥ 3", len(conflicts), conflicts)
		}
		// The server retains the first writer's state.
		if got, _ := w.srv.ReadFile("v", "both-edit"); string(got) != "alice's version" {
			t.Errorf("both-edit clobbered: %q", got)
		}
		if got, _ := w.srv.ReadFile("v", "edit-vs-remove"); string(got) != "alice edits" {
			t.Errorf("edit-vs-remove = %q", got)
		}
		if got, _ := w.srv.ReadFile("v", "new-name"); string(got) != "from alice" {
			t.Errorf("new-name = %q", got)
		}
		// Bob's CML must have dropped the conflicting records rather than
		// retrying them forever.
		if b.CMLRecords() != 0 {
			t.Errorf("bob's CML still has %d records", b.CMLRecords())
		}
	})
}

// TestConnectedAndReintegratedPathsEquivalent is the equivalence property:
// the same random operation sequence applied write-through (connected) and
// via disconnection+reintegration must leave identical server state.
func TestConnectedAndReintegratedPathsEquivalent(t *testing.T) {
	type op struct {
		kind int
		a, b int
		data []byte
	}
	genOps := func(rng *rand.Rand, n int) []op {
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				kind: rng.Intn(5),
				a:    rng.Intn(6),
				b:    rng.Intn(6),
				data: bytes.Repeat([]byte{byte(rng.Intn(256))}, rng.Intn(2000)+1),
			}
		}
		return ops
	}
	apply := func(v *venus.Venus, ops []op) {
		for _, o := range ops {
			pathA := fmt.Sprintf("/coda/eq/f%d", o.a)
			pathB := fmt.Sprintf("/coda/eq/g%d", o.b)
			switch o.kind {
			case 0, 1: // writes dominate
				v.WriteFile(pathA, o.data)
			case 2:
				v.Remove(pathA) // may fail if absent; fine
			case 3:
				v.Rename(pathA, pathB) // may fail; fine
			case 4:
				v.Mkdir(fmt.Sprintf("/coda/eq/d%d", o.a))
			}
		}
	}
	snapshot := func(srv *server.Server) map[string]string {
		out := make(map[string]string)
		var walk func(rel string)
		walk = func(rel string) {
			st, err := srv.Resolve("eq", rel)
			if err != nil {
				return
			}
			_ = st
			names := []string{}
			for i := 0; i < 6; i++ {
				names = append(names, fmt.Sprintf("f%d", i), fmt.Sprintf("g%d", i), fmt.Sprintf("d%d", i))
			}
			for _, n := range names {
				child := n
				if rel != "" {
					child = rel + "/" + n
				}
				if data, err := srv.ReadFile("eq", child); err == nil {
					out[child] = string(data)
				} else if _, err := srv.Resolve("eq", child); err == nil {
					out[child] = "<dir>"
				}
			}
		}
		walk("")
		return out
	}

	for seed := int64(0); seed < 5; seed++ {
		ops := genOps(rand.New(rand.NewSource(seed)), 30)

		run := func(disconnected bool) map[string]string {
			w := newWorld(100 + seed)
			w.srv.CreateVolume("eq")
			var snap map[string]string
			w.sim.Run(func() {
				v := w.venus("c", 1, venus.Config{AgingWindow: time.Second})
				if err := v.Mount("eq"); err != nil {
					t.Fatal(err)
				}
				if disconnected {
					w.net.SetUp("c", "server", false)
					v.Disconnect()
					apply(v, ops)
					w.net.SetUp("c", "server", true)
					v.Connect(10_000_000)
					w.sim.Sleep(30 * time.Second)
					if n := v.CMLRecords(); n != 0 {
						t.Fatalf("seed %d: CML not drained (%d records)", seed, n)
					}
				} else {
					apply(v, ops)
				}
				snap = snapshot(w.srv)
			})
			return snap
		}

		connected := run(false)
		reintegrated := run(true)
		if len(connected) != len(reintegrated) {
			t.Fatalf("seed %d: %d vs %d entries\nconnected: %v\nreintegrated: %v",
				seed, len(connected), len(reintegrated), connected, reintegrated)
		}
		for k, v := range connected {
			if reintegrated[k] != v {
				t.Errorf("seed %d: %s differs: connected %d bytes, reintegrated %d bytes",
					seed, k, len(v), len(reintegrated[k]))
			}
		}
	}
}

// TestLossyWeakLinkEndToEnd runs the whole stack over a 15%-lossy modem:
// updates must still propagate exactly once.
func TestLossyWeakLinkEndToEnd(t *testing.T) {
	w := newWorld(3)
	p := netsim.Modem.Params()
	p.LossRate = 0.15
	w.srv.CreateVolume("v")
	w.sim.Run(func() {
		v := w.venus("c", 1, venus.Config{AgingWindow: 2 * time.Second, PinWriteDisconnected: true})
		if err := v.Mount("v"); err != nil {
			t.Fatal(err)
		}
		w.net.SetLink("c", "server", p)
		v.Connect(9600)
		content := bytes.Repeat([]byte("resilient"), 3000) // 27 KB
		must(t, v.WriteFile("/coda/v/file", content))
		w.sim.Sleep(5 * time.Minute)
		got, err := w.srv.ReadFile("v", "file")
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("after lossy reintegration: %d bytes, %v", len(got), err)
		}
		if w.srv.Stats().RecordsApplied > 2 {
			t.Errorf("records applied %d times; retransmissions must not duplicate",
				w.srv.Stats().RecordsApplied)
		}
	})
}

// TestBandwidthCrossSection sweeps the four networks and confirms the
// update-propagation latency scales with bandwidth while foreground writes
// never block.
func TestBandwidthCrossSection(t *testing.T) {
	for _, prof := range netsim.StandardNetworks {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			w := newWorld(4)
			w.srv.CreateVolume("v")
			w.sim.Run(func() {
				v := w.venus("c", 1, venus.Config{AgingWindow: time.Second, PinWriteDisconnected: true})
				if err := v.Mount("v"); err != nil {
					t.Fatal(err)
				}
				w.net.SetLink("c", "server", prof.Params())
				v.Connect(prof.Bandwidth)

				start := w.sim.Now()
				must(t, v.WriteFile("/coda/v/doc", bytes.Repeat([]byte("z"), 30_000)))
				writeLatency := w.sim.Now().Sub(start)
				// Foreground write returns immediately at every speed.
				if writeLatency > 100*time.Millisecond {
					t.Errorf("foreground write blocked %v at %s", writeLatency, prof.Name)
				}
				w.sim.Sleep(4 * time.Minute)
				if _, err := w.srv.ReadFile("v", "doc"); err != nil {
					t.Errorf("doc not propagated at %s: %v", prof.Name, err)
				}
			})
		})
	}
}

// TestRealUDPRealClock runs server + client over genuine UDP sockets with
// the real clock — the deployment configuration of cmd/codasrv and
// cmd/codaclient.
func TestRealUDPRealClock(t *testing.T) {
	srvConn, err := netsim.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(simtime.Real{}, srvConn)
	defer srv.Close()
	srv.CreateVolume("usr")
	srv.WriteFile("usr", "hello.txt", []byte("over real UDP"))

	cliConn, err := netsim.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	v := venus.New(simtime.Real{}, cliConn, venus.Config{
		Server:          srvConn.LocalAddr(),
		ClientID:        1,
		AgingWindow:     200 * time.Millisecond,
		TrickleInterval: 100 * time.Millisecond,
	})
	defer v.Close()

	if err := v.Mount("usr"); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile("/coda/usr/hello.txt")
	if err != nil || string(data) != "over real UDP" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// Write-through while hoarding.
	if err := v.WriteFile("/coda/usr/reply.txt", []byte("ack")); err != nil {
		t.Fatal(err)
	}
	if got, err := srv.ReadFile("usr", "reply.txt"); err != nil || string(got) != "ack" {
		t.Fatalf("server reply.txt = %q, %v", got, err)
	}
	// Disconnected logging and real-time trickle reintegration.
	v.Disconnect()
	if err := v.WriteFile("/coda/usr/offline.txt", []byte("logged")); err != nil {
		t.Fatal(err)
	}
	v.Connect(10_000_000)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got, err := srv.ReadFile("usr", "offline.txt"); err == nil && string(got) == "logged" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("offline update never reintegrated over real UDP")
		}
		//codalint:ignore testhygiene polling a live UDP stack on the Real clock; no virtual time to drive
		time.Sleep(50 * time.Millisecond)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
