// Package bufpool recycles the byte buffers of the wire hot path.
//
// Every RPC2 packet and SFTP fragment used to be framed into a fresh
// make([]byte, header+len(body)); at modem speeds that is noise, but at
// the LAN rates the scale work targets it is one garbage buffer per
// message on both ends of every transfer. The pool bounds that to a
// handful of warm buffers per P. Both network backends copy the payload
// out before Send returns (netsim duplicates it into the simulated
// packet, the UDP adapter hands it to the kernel), so a buffer can be
// returned to the pool immediately after Send.
//
// The allocscan analyzer recognizes Get/Put as pooled sinks: memory
// obtained here does not count as an allocation on a
// //codalint:hotpath function.
package bufpool

import "sync"

// defaultCap fits the largest framed datagram either protocol emits: an
// SFTP data packet (27-byte header + 1200-byte fragment) wrapped in the
// one-byte RPC2 mux tag, with headroom.
const defaultCap = 1536

var pool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, defaultCap)
		return &b
	},
}

// Get returns an empty (length-zero) buffer with capacity at least n.
// Append into it, hand the result to a send path that does not retain
// it, then Put it back.
func Get(n int) *[]byte {
	bp := pool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	return bp
}

// Put recycles a buffer obtained from Get. The caller must not touch
// the slice (or anything aliasing it) afterwards.
func Put(bp *[]byte) {
	*bp = (*bp)[:0]
	pool.Put(bp)
}
