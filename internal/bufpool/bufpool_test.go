package bufpool

import "testing"

func TestGetCapacityAndReuse(t *testing.T) {
	bp := Get(64)
	if len(*bp) != 0 {
		t.Fatalf("Get returned non-empty buffer: len %d", len(*bp))
	}
	if cap(*bp) < 64 {
		t.Fatalf("Get(64) capacity %d < 64", cap(*bp))
	}
	*bp = append(*bp, "hello"...)
	Put(bp)

	again := Get(8)
	if len(*again) != 0 {
		t.Fatalf("recycled buffer not reset: len %d", len(*again))
	}
	Put(again)
}

func TestGetGrowsBeyondDefault(t *testing.T) {
	bp := Get(defaultCap * 4)
	if cap(*bp) < defaultCap*4 {
		t.Fatalf("Get did not grow: cap %d", cap(*bp))
	}
	Put(bp)
}

// BenchmarkAllocBufpoolCycle pins the pool cycle itself at zero
// steady-state allocations: a Get/append/Put round trip must not touch
// the heap, or every framed packet pays for it.
func BenchmarkAllocBufpoolCycle(b *testing.B) {
	payload := make([]byte, 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := Get(27 + len(payload))
		*bp = append(*bp, payload...)
		Put(bp)
	}
}
