// Package netmon maintains per-peer network quality estimates shared by
// RPC2, SFTP, and Venus.
//
// The paper's §4.1 describes two transport changes: (1) keepalive
// information is shared between RPC2 and SFTP and exported to Venus, and
// (2) round-trip times are monitored with timestamp echoing (Jacobson) and
// used to adapt retransmission parameters. This package is that shared
// state: one Peer record per remote host accumulates RTT samples (Jacobson
// SRTT/RTTVAR with an RTO clamp), observed transfer throughput (a
// byte-weighted exponential average), and a last-heard timestamp updated by
// any traffic from either protocol. Venus reads the bandwidth estimate to
// size reintegration chunks (§4.3.5) and to evaluate the patience model
// (§4.4.4), and reads liveness instead of generating its own keepalives.
package netmon

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// RTO bounds. The minimum keeps retransmission sane on LANs; the maximum
// keeps a single backoff from writing off a modem that is merely busy.
const (
	MinRTO     = time.Second // RFC 6298 §2.4: SHOULD be one second
	MaxRTO     = 60 * time.Second
	InitialRTO = 3 * time.Second // before any RTT sample (RFC 6298 default)
)

// Monitor tracks quality estimates for every peer of one node.
type Monitor struct {
	clock simtime.Clock

	mu    sync.Mutex
	peers map[string]*Peer
	reg   *obs.Registry
	self  string // label distinguishing this node's gauges from other nodes sharing the registry
}

// NewMonitor returns an empty Monitor on clock.
func NewMonitor(clock simtime.Clock) *Monitor {
	return &Monitor{clock: clock, peers: make(map[string]*Peer)}
}

// Observe exports every peer's estimates — bandwidth, SRTT, RTO — as
// pull gauges on reg, labeled {node=self, peer=addr}. Peers learned
// later are registered as they appear. These gauges are the one exposed
// view of the estimator state: Venus and the experiments read the same
// Peer accessors the gauges wrap, so there is no second bookkeeping
// path to drift out of sync.
func (m *Monitor) Observe(reg *obs.Registry, self string) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	m.reg = reg
	m.self = self
	peers := make([]*Peer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	for _, p := range peers {
		registerPeer(reg, self, p)
	}
}

// registerPeer publishes one peer's gauges. Called without m.mu held:
// registry registration takes the registry lock, and the gauge closures
// take only the peer lock.
func registerPeer(reg *obs.Registry, self string, p *Peer) {
	labels := []obs.Label{obs.L("node", self), obs.L("peer", p.addr)}
	reg.GaugeFunc("netmon_peer_bandwidth_bps", p.Bandwidth, labels...)
	reg.GaugeFunc("netmon_peer_srtt_us", func() int64 { return p.SRTT().Microseconds() }, labels...)
	reg.GaugeFunc("netmon_peer_rto_us", func() int64 { return p.RTO().Microseconds() }, labels...)
}

// Peer returns the record for addr, creating it on first use.
func (m *Monitor) Peer(addr string) *Peer {
	m.mu.Lock()
	p, ok := m.peers[addr]
	if !ok {
		p = &Peer{clock: m.clock, addr: addr}
		m.peers[addr] = p
	}
	reg, self := m.reg, m.self
	m.mu.Unlock()
	if !ok && reg != nil {
		registerPeer(reg, self, p)
	}
	return p
}

// Peers returns a snapshot of all known peer records.
func (m *Monitor) Peers() []*Peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Peer, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, p)
	}
	return out
}

// Peer accumulates network quality estimates for one remote host.
type Peer struct {
	clock simtime.Clock
	addr  string

	mu        sync.Mutex
	srtt      time.Duration
	rttvar    time.Duration
	hasRTT    bool
	bwBits    float64 // bits/second estimate
	hasBW     bool
	lastHeard time.Time
	heardEver bool
}

// Addr returns the peer's address.
func (p *Peer) Addr() string { return p.addr }

// ObserveRTT folds one round-trip sample into the Jacobson estimator.
// Samples from retransmitted packets are valid here because timestamp
// echoing identifies which copy the peer answered. One of these fires
// per RPC reply, so the estimator must stay allocation-free.
//
//codalint:hotpath per-reply RTT estimator
func (p *Peer) ObserveRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hasRTT {
		p.srtt = sample
		p.rttvar = sample / 2
		p.hasRTT = true
		return
	}
	// RFC 6298 / Jacobson '88: g = 1/8, h = 1/4.
	diff := sample - p.srtt
	if diff < 0 {
		p.rttvar += (-diff - p.rttvar) / 4
	} else {
		p.rttvar += (diff - p.rttvar) / 4
	}
	p.srtt += diff / 8
}

// SRTT returns the smoothed RTT estimate (0 before any sample).
func (p *Peer) SRTT() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.srtt
}

// RTO returns the current retransmission timeout: SRTT + 4·RTTVAR clamped
// to [MinRTO, MaxRTO], or InitialRTO before any sample.
//
//codalint:hotpath consulted per send decision
func (p *Peer) RTO() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hasRTT {
		return InitialRTO
	}
	rto := p.srtt + 4*p.rttvar
	if rto < MinRTO {
		rto = MinRTO
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}

// ObserveTransfer folds one completed exchange (bytes moved in elapsed)
// into the bandwidth estimate. The sample's weight grows with its size, so
// a bulk SFTP transfer dominates chatter from small RPCs, whose apparent
// throughput is mostly round-trip latency.
//
//codalint:hotpath per-transfer bandwidth estimator
func (p *Peer) ObserveTransfer(bytes int64, elapsed time.Duration) {
	if bytes <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(bytes*8) / elapsed.Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hasBW {
		p.bwBits = sample
		p.hasBW = true
		return
	}
	weight := 0.5 * float64(bytes) / float64(bytes+16<<10)
	p.bwBits += weight * (sample - p.bwBits)
}

// Bandwidth returns the estimated path bandwidth in bits per second, or 0
// if nothing has been observed yet.
func (p *Peer) Bandwidth() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.bwBits)
}

// SetBandwidth overrides the estimate; used when an out-of-band hint is
// available (e.g. the user names the attached network) and by tests.
func (p *Peer) SetBandwidth(bitsPerSec int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bwBits = float64(bitsPerSec)
	p.hasBW = bitsPerSec > 0
}

// Heard records that any traffic (RPC2 reply, SFTP data or ack, probe) was
// received from the peer. This is the unified keepalive of §4.1; it
// fires per received packet.
//
//codalint:hotpath per-packet keepalive
func (p *Peer) Heard() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastHeard = p.clock.Now()
	p.heardEver = true
}

// LastHeard returns the time of the most recent traffic from the peer and
// whether any was ever heard.
func (p *Peer) LastHeard() (time.Time, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastHeard, p.heardEver
}

// Alive reports whether the peer has been heard from within window.
func (p *Peer) Alive(window time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.heardEver && p.clock.Now().Sub(p.lastHeard) <= window
}

// Forget clears all estimates (used when a mobile client knows it has
// changed networks and history is meaningless).
func (p *Peer) Forget() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.srtt, p.rttvar, p.hasRTT = 0, 0, false
	p.bwBits, p.hasBW = 0, false
	p.heardEver = false
}
