package netmon

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

func TestRTOBeforeSamples(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	if got := p.RTO(); got != InitialRTO {
		t.Errorf("RTO with no samples = %v, want %v", got, InitialRTO)
	}
}

func TestRTTFirstSampleInitializes(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	p.ObserveRTT(200 * time.Millisecond)
	if got := p.SRTT(); got != 200*time.Millisecond {
		t.Errorf("SRTT = %v, want 200ms", got)
	}
	// RTO = srtt + 4*rttvar = 200 + 4*100 = 600ms, clamped up to MinRTO.
	if got := p.RTO(); got != MinRTO {
		t.Errorf("RTO = %v, want MinRTO %v", got, MinRTO)
	}
}

func TestRTTConvergesToSteadyValue(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	for i := 0; i < 100; i++ {
		p.ObserveRTT(50 * time.Millisecond)
	}
	srtt := p.SRTT()
	if srtt < 45*time.Millisecond || srtt > 55*time.Millisecond {
		t.Errorf("SRTT after steady samples = %v, want ~50ms", srtt)
	}
	// With variance decayed near zero, RTO clamps at MinRTO.
	if got := p.RTO(); got != MinRTO {
		t.Errorf("steady RTO = %v, want MinRTO %v", got, MinRTO)
	}
}

func TestRTOClampMax(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	p.ObserveRTT(5 * time.Minute)
	if got := p.RTO(); got != MaxRTO {
		t.Errorf("RTO = %v, want MaxRTO %v", got, MaxRTO)
	}
}

func TestRTTIgnoresNonPositive(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	p.ObserveRTT(0)
	p.ObserveRTT(-time.Second)
	if p.SRTT() != 0 {
		t.Error("non-positive samples changed SRTT")
	}
}

func TestBandwidthFirstSample(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	p.ObserveTransfer(1200, time.Second) // 9600 b/s
	if got := p.Bandwidth(); got != 9600 {
		t.Errorf("Bandwidth = %d, want 9600", got)
	}
}

func TestBandwidthLargeTransfersDominate(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	// A big transfer establishes ~2 Mb/s.
	p.ObserveTransfer(1<<20, 4*time.Second)
	// Small RPCs whose apparent rate is latency-bound must not wreck it.
	for i := 0; i < 20; i++ {
		p.ObserveTransfer(100, 10*time.Millisecond) // apparent 80 Kb/s
	}
	if got := p.Bandwidth(); got < 1_500_000 {
		t.Errorf("Bandwidth dragged to %d by small RPCs", got)
	}
}

func TestBandwidthTracksChange(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	p.ObserveTransfer(1<<20, time.Second) // ~8.4 Mb/s
	// Move to a modem: repeated slow bulk samples should converge down.
	for i := 0; i < 30; i++ {
		p.ObserveTransfer(36<<10, 30*time.Second) // 9.8 Kb/s
	}
	got := p.Bandwidth()
	if got > 100_000 {
		t.Errorf("Bandwidth = %d after sustained modem transfers, want near 10K", got)
	}
}

func TestSetBandwidthOverride(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	p.SetBandwidth(64_000)
	if p.Bandwidth() != 64_000 {
		t.Error("SetBandwidth not applied")
	}
}

func TestLivenessWindow(t *testing.T) {
	s := simtime.NewSim(simtime.Epoch1995)
	m := NewMonitor(s)
	p := m.Peer("server")
	s.Run(func() {
		if p.Alive(time.Minute) {
			t.Error("peer alive before any traffic")
		}
		p.Heard()
		if !p.Alive(time.Minute) {
			t.Error("peer not alive immediately after Heard")
		}
		s.Sleep(2 * time.Minute)
		if p.Alive(time.Minute) {
			t.Error("peer still alive after window expired")
		}
		p.Heard()
		if !p.Alive(time.Minute) {
			t.Error("peer not revived by new traffic")
		}
	})
}

func TestForget(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	p := m.Peer("server")
	p.ObserveRTT(time.Second)
	p.ObserveTransfer(1000, time.Second)
	p.Heard()
	p.Forget()
	if p.SRTT() != 0 || p.Bandwidth() != 0 {
		t.Error("Forget left estimates behind")
	}
	if _, ever := p.LastHeard(); ever {
		t.Error("Forget left liveness behind")
	}
	if p.RTO() != InitialRTO {
		t.Error("Forget did not reset RTO")
	}
}

func TestPeerIdentity(t *testing.T) {
	m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
	if m.Peer("a") != m.Peer("a") {
		t.Error("Peer not stable per address")
	}
	if m.Peer("a") == m.Peer("b") {
		t.Error("distinct addresses share a Peer")
	}
	if len(m.Peers()) != 2 {
		t.Errorf("Peers() len = %d, want 2", len(m.Peers()))
	}
	if m.Peer("a").Addr() != "a" {
		t.Error("Addr mismatch")
	}
}

// Property: RTO is always within [MinRTO, MaxRTO] after any sample history.
func TestRTOBoundsProperty(t *testing.T) {
	f := func(samplesMs []uint16) bool {
		m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
		p := m.Peer("x")
		for _, ms := range samplesMs {
			p.ObserveRTT(time.Duration(ms) * time.Millisecond)
		}
		rto := p.RTO()
		if len(samplesMs) == 0 {
			return rto == InitialRTO
		}
		hasPositive := false
		for _, ms := range samplesMs {
			if ms > 0 {
				hasPositive = true
			}
		}
		if !hasPositive {
			return rto == InitialRTO
		}
		return rto >= MinRTO && rto <= MaxRTO
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bandwidth estimate stays within the min/max of observed sample
// rates (it is a convex combination of samples).
func TestBandwidthConvexProperty(t *testing.T) {
	f := func(kbs []uint8) bool {
		m := NewMonitor(simtime.NewSim(simtime.Epoch1995))
		p := m.Peer("x")
		lo, hi := int64(1<<62), int64(0)
		any := false
		for _, kb := range kbs {
			if kb == 0 {
				continue
			}
			bytes := int64(kb) * 1024
			p.ObserveTransfer(bytes, time.Second)
			rate := bytes * 8
			if rate < lo {
				lo = rate
			}
			if rate > hi {
				hi = rate
			}
			any = true
		}
		if !any {
			return p.Bandwidth() == 0
		}
		got := p.Bandwidth()
		return got >= lo-1 && got <= hi+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
