package crashfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
)

// memNode is one file's state: the volatile view (data) and the prefix
// of it made durable by the last File.Sync (durable).
type memNode struct {
	data    []byte
	durable []byte
}

// Mem is an in-memory FS with scripted fault injection. It models the
// POSIX durability contract exactly: data survives a crash only up to
// the last File.Sync, and a name (create/rename/remove) survives only
// if its parent directory was SyncDir'd afterwards. Directory creation
// itself (MkdirAll) is treated as immediately durable — the durability
// layer creates its directories once, at attach time.
//
// Faults are armed by the test and fire deterministically on operation
// counts; Mem never consults a clock or a random source.
type Mem struct {
	mu   sync.Mutex
	cur  map[string]*memNode // volatile namespace
	dur  map[string]*memNode // durable namespace
	dirs map[string]bool

	crashed bool
	writes  int // File.Write calls observed so far
	syncs   int // File.Sync calls observed so far

	crashAtWrite int // crash when the crashAtWrite-th write arrives (1-based)
	keepUnsynced int // un-synced tail bytes per file that survive the cut

	failWriteAt   int   // the failWriteAt-th write fails, applying nothing
	injectedErr   error // error returned by failWriteAt / failSyncAt
	shortWriteAt  int   // the shortWriteAt-th write applies only shortWriteLen bytes
	shortWriteLen int
	failSyncAt    int // the failSyncAt-th sync fails (data stays volatile)
	failRenames   int // the next failRenames renames fail
}

// NewMem returns an empty in-memory filesystem with no faults armed.
func NewMem() *Mem {
	return &Mem{
		cur:  make(map[string]*memNode),
		dur:  make(map[string]*memNode),
		dirs: make(map[string]bool),
	}
}

// ---- Fault scripting ----

// ArmCrash schedules a power cut at the n-th future File.Write (1-based
// from now): that write's bytes are applied to the volatile image, the
// write returns ErrCrashed, and every later operation fails until
// Reboot. keepUnsynced bytes of each file's un-synced tail survive the
// cut (real devices persist partial sectors), which is what produces
// torn frames for recovery to truncate.
func (m *Mem) ArmCrash(n, keepUnsynced int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAtWrite = m.writes + n
	m.keepUnsynced = keepUnsynced
}

// FailWrite makes the n-th future write fail with err without applying
// any bytes.
func (m *Mem) FailWrite(n int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failWriteAt = m.writes + n
	m.injectedErr = err
}

// ShortWrite makes the n-th future write apply only keep bytes and
// return io.ErrShortWrite.
func (m *Mem) ShortWrite(n, keep int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shortWriteAt = m.writes + n
	m.shortWriteLen = keep
}

// FailSync makes the n-th future File.Sync fail with err; the file's
// data stays volatile.
func (m *Mem) FailSync(n int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failSyncAt = m.syncs + n
	m.injectedErr = err
}

// FailRenames makes the next n renames fail.
func (m *Mem) FailRenames(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failRenames = n
}

// Crash simulates an immediate power cut.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = true
}

// Reboot applies the crash semantics — only durable names and durable
// contents (plus the armed un-synced allowance) survive — and makes the
// filesystem usable again.
func (m *Mem) Reboot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := make(map[string]*memNode, len(m.dur))
	for name, n := range m.dur {
		keep := len(n.durable)
		if extra := len(n.data) - keep; extra > 0 {
			if extra > m.keepUnsynced {
				extra = m.keepUnsynced
			}
			keep += extra
		}
		survived := append([]byte(nil), n.data[:min(keep, len(n.data))]...)
		if len(survived) < len(n.durable) {
			survived = append([]byte(nil), n.durable...)
		}
		node := &memNode{data: survived, durable: append([]byte(nil), survived...)}
		cur[name] = node
		m.dur[name] = node
	}
	m.cur = cur
	m.crashed = false
	m.crashAtWrite = 0
	m.keepUnsynced = 0
}

// Writes returns the number of File.Write calls observed so far; the
// crash matrix sweeps its crash point across this count.
func (m *Mem) Writes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// ---- FS implementation ----

type memFile struct {
	fs   *Mem
	name string
	node *memNode
	rd   int  // read offset
	ro   bool // opened read-only
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if f.rd >= len(f.node.data) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.rd:])
	f.rd += n
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	m := f.fs
	if m.crashed {
		return 0, ErrCrashed
	}
	if f.ro {
		return 0, fmt.Errorf("crashfs: %s opened read-only", f.name)
	}
	m.writes++
	switch {
	case m.failWriteAt != 0 && m.writes == m.failWriteAt:
		m.failWriteAt = 0
		return 0, m.injectedErr
	case m.shortWriteAt != 0 && m.writes == m.shortWriteAt:
		m.shortWriteAt = 0
		n := min(m.shortWriteLen, len(p))
		f.node.data = append(f.node.data, p[:n]...)
		return n, io.ErrShortWrite
	case m.crashAtWrite != 0 && m.writes == m.crashAtWrite:
		// The bytes reach the volatile image; whether any of them
		// survive is decided by keepUnsynced at Reboot.
		f.node.data = append(f.node.data, p...)
		m.crashed = true
		return 0, ErrCrashed
	}
	f.node.data = append(f.node.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	m := f.fs
	if m.crashed {
		return ErrCrashed
	}
	if f.ro {
		return nil
	}
	m.syncs++
	if m.failSyncAt != 0 && m.syncs == m.failSyncAt {
		m.failSyncAt = 0
		return m.injectedErr
	}
	f.node.durable = append([]byte(nil), f.node.data...)
	return nil
}

func (f *memFile) Close() error { return nil }

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	node := &memNode{}
	m.cur[name] = node
	return &memFile{fs: m, name: name, node: node}, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	node, ok := m.cur[name]
	if !ok {
		return nil, fmt.Errorf("crashfs: open %s: %w", name, errNotExist)
	}
	return &memFile{fs: m, name: name, node: node, ro: true}, nil
}

// Rename implements FS.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.failRenames > 0 {
		m.failRenames--
		return fmt.Errorf("crashfs: rename %s: injected fault", oldname)
	}
	node, ok := m.cur[oldname]
	if !ok {
		return fmt.Errorf("crashfs: rename %s: %w", oldname, errNotExist)
	}
	delete(m.cur, oldname)
	m.cur[newname] = node
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if _, ok := m.cur[name]; !ok {
		return fmt.Errorf("crashfs: remove %s: %w", name, errNotExist)
	}
	delete(m.cur, name)
	return nil
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	for d := dir; d != "." && d != "/" && d != ""; d = filepath.Dir(d) {
		m.dirs[d] = true
	}
	return nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	var names []string
	for name := range m.cur {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Truncate implements FS. Recovery uses it to drop a torn tail, so the
// cut applies to the durable image as well.
func (m *Mem) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	node, ok := m.cur[name]
	if !ok {
		return fmt.Errorf("crashfs: truncate %s: %w", name, errNotExist)
	}
	if int64(len(node.data)) > size {
		node.data = node.data[:size]
	}
	if int64(len(node.durable)) > size {
		node.durable = node.durable[:size]
	}
	return nil
}

// SyncDir implements FS: the volatile entry set under dir becomes the
// durable one.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	for name, node := range m.cur {
		if filepath.Dir(name) == dir {
			m.dur[name] = node
		}
	}
	for name := range m.dur {
		if filepath.Dir(name) == dir {
			if _, live := m.cur[name]; !live {
				delete(m.dur, name)
			}
		}
	}
	return nil
}

// errNotExist aliases the standard sentinel so errors.Is treats Mem and
// OS misses alike.
var errNotExist = fs.ErrNotExist

// IsNotExist reports whether err marks a missing file on either
// implementation.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
