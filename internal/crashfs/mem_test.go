package crashfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func write(t *testing.T, fs FS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMemDurabilityModel: synced content + synced directory entry
// survive a crash; anything less does not.
func TestMemDurabilityModel(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}

	write(t, m, "d/durable", []byte("kept"), true)
	write(t, m, "d/unsynced-content", []byte("lost"), false)
	write(t, m, "d/unsynced-entry", []byte("lost too"), true) // content synced, entry not
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	write(t, m, "d/after-dirsync", []byte("entry volatile"), true)

	m.Crash()
	if _, err := m.Open("d/durable"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: got %v, want ErrCrashed", err)
	}
	m.Reboot()

	if got := read(t, m, "d/durable"); !bytes.Equal(got, []byte("kept")) {
		t.Fatalf("durable file: got %q", got)
	}
	// Content was never synced: the durable entry holds an empty file.
	if got := read(t, m, "d/unsynced-content"); len(got) != 0 {
		t.Fatalf("unsynced content survived: %q", got)
	}
	// unsynced-entry was SyncDir'd together with the others, so it
	// survives; after-dirsync's entry was created after the SyncDir and
	// is gone.
	if got := read(t, m, "d/unsynced-entry"); !bytes.Equal(got, []byte("lost too")) {
		t.Fatalf("synced-entry file: got %q", got)
	}
	if _, err := m.Open("d/after-dirsync"); !IsNotExist(err) {
		t.Fatalf("entry created after SyncDir survived crash: %v", err)
	}
}

// TestMemRenameDurability: a rename is volatile until SyncDir.
func TestMemRenameDurability(t *testing.T) {
	m := NewMem()
	write(t, m, "d/tmp", []byte("v2"), true)
	write(t, m, "d/state", []byte("v1"), true)
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("d/tmp", "d/state"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	m.Reboot()
	// Without a SyncDir after the rename, the old entries are back.
	if got := read(t, m, "d/state"); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("un-synced rename became durable: state=%q", got)
	}
	if got := read(t, m, "d/tmp"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("tmp: got %q", got)
	}

	// Now the same rename with the directory sync: durable.
	if err := m.Rename("d/tmp", "d/state"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	m.Reboot()
	if got := read(t, m, "d/state"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("synced rename lost: state=%q", got)
	}
	if _, err := m.Open("d/tmp"); !IsNotExist(err) {
		t.Fatalf("tmp survived synced rename: %v", err)
	}
}

// TestMemArmCrashTearsWrite: the crashing write's bytes survive only up
// to the keepUnsynced allowance — a torn tail.
func TestMemArmCrashTearsWrite(t *testing.T) {
	m := NewMem()
	f, err := m.Create("d/log")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	m.ArmCrash(1, 3) // next write crashes; 3 un-synced bytes survive
	if _, err := f.Write([]byte("efgh")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: got %v", err)
	}
	m.Reboot()
	if got := read(t, m, "d/log"); !bytes.Equal(got, []byte("abcdefg")) {
		t.Fatalf("torn tail: got %q, want %q", got, "abcdefg")
	}
}

// TestMemScriptedFaults: fail-Nth-write, short write, sync error,
// rename error.
func TestMemScriptedFaults(t *testing.T) {
	m := NewMem()
	boom := errors.New("boom")

	f, err := m.Create("d/f")
	if err != nil {
		t.Fatal(err)
	}
	m.FailWrite(1, boom)
	if _, err := f.Write([]byte("xx")); !errors.Is(err, boom) {
		t.Fatalf("failed write: got %v", err)
	}
	if n, err := f.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("write after fault: %d, %v", n, err)
	}

	m.ShortWrite(1, 1)
	if n, err := f.Write([]byte("yz")); n != 1 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: %d, %v", n, err)
	}
	if got := read(t, m, "d/f"); !bytes.Equal(got, []byte("oky")) {
		t.Fatalf("content after short write: %q", got)
	}

	m.FailSync(1, boom)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("failed sync: got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after fault: %v", err)
	}

	m.FailRenames(1)
	if err := m.Rename("d/f", "d/g"); err == nil {
		t.Fatal("rename fault did not fire")
	}
	if err := m.Rename("d/f", "d/g"); err != nil {
		t.Fatalf("rename after fault: %v", err)
	}
}

// TestOSRoundTrip exercises the real-filesystem implementation against
// a temp dir.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var o OS
	if err := o.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	write(t, o, dir+"/sub/a", []byte("hello"), true)
	if err := o.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if got := read(t, o, dir+"/sub/a"); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("read back: %q", got)
	}
	if err := o.Rename(dir+"/sub/a", dir+"/sub/b"); err != nil {
		t.Fatal(err)
	}
	names, err := o.ReadDir(dir + "/sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("dir listing: %v", names)
	}
	if err := o.Truncate(dir+"/sub/b", 2); err != nil {
		t.Fatal(err)
	}
	if got := read(t, o, dir+"/sub/b"); !bytes.Equal(got, []byte("he")) {
		t.Fatalf("after truncate: %q", got)
	}
	if err := o.Remove(dir + "/sub/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Open(dir + "/sub/b"); !IsNotExist(err) {
		t.Fatalf("removed file: %v", err)
	}
}
