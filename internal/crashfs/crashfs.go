// Package crashfs abstracts the narrow filesystem surface the durability
// layer needs (internal/wal and the Save/Load state paths) behind an
// interface with two implementations:
//
//   - OS: the real filesystem, with the fsync discipline spelled out —
//     File.Sync for contents, SyncDir for the directory entries that
//     link them (a rename is not durable until its parent directory is
//     synced).
//   - Mem: an in-memory filesystem with scripted fault injection — fail
//     the Nth write, short writes, one-shot sync/rename errors, and a
//     simulated power cut that drops (or partially keeps) un-synced
//     data — so recovery code is tested against realistic torn states
//     rather than happy paths.
//
// The durability model both implementations share is the POSIX one:
// written data is volatile until the file is synced, and a created,
// renamed, or removed name is volatile until its parent directory is
// synced. Mem enforces the model literally: whatever was not synced is
// gone (or torn) after Crash.
package crashfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ErrCrashed is returned by every Mem operation after a simulated power
// cut, until Reboot.
var ErrCrashed = errors.New("crashfs: filesystem crashed")

// File is the per-file surface: sequential reads OR appends plus Sync.
type File interface {
	io.Reader
	io.Writer
	// Sync makes the file's current contents durable.
	Sync() error
	// Close releases the handle. Closing does not imply Sync.
	Close() error
}

// FS is the filesystem surface. Paths use the host separator (callers
// join with path/filepath).
type FS interface {
	// Create truncate-creates name for writing. The new (empty) name is
	// volatile until SyncDir on its parent.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname. Volatile until
	// SyncDir on the parent.
	Rename(oldname, newname string) error
	// Remove unlinks name. Volatile until SyncDir on the parent.
	Remove(name string) error
	// MkdirAll creates dir and parents as needed.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not subdirectories) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Truncate cuts name to size bytes (used to drop a torn WAL tail).
	// The truncation is made durable by the implementation (OS relies
	// on the caller's following File/SyncDir sync; Mem applies it to
	// the durable image directly, as recovery runs before new faults
	// are armed).
	Truncate(name string, size int64) error
	// SyncDir makes dir's entries (creations, renames, removals)
	// durable.
	SyncDir(dir string) error
}

// ---- OS: the real filesystem ----

// OS implements FS over package os.
type OS struct{}

type osFile struct{ f *os.File }

func (o osFile) Read(p []byte) (int, error)  { return o.f.Read(p) }
func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Close() error                { return o.f.Close() }

// Create implements FS.
func (OS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OS) Open(name string) (File, error) {
	f, err := os.Open(filepath.Clean(name))
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS. Directory fsync is what makes renames and
// creations durable on a real filesystem; this is the half the original
// rename-based SaveStateFile forgot.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
