package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Sim is a discrete-event virtual clock.
//
// A Sim tracks goroutines: the one that calls Run, plus any started with Go
// or AfterFunc. Virtual time advances only when every tracked goroutine is
// parked inside a simtime primitive (Sleep, Queue.Get, ...). At that moment
// the earliest pending event fires, waking exactly the goroutines it names,
// and execution resumes at the event's timestamp. Events at equal timestamps
// fire in scheduling order (FIFO), which keeps runs reproducible.
//
// If every tracked goroutine is parked and no events are pending, the
// simulation can never progress; Sim panics with a deadlock report.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	seq     int64
	events  eventHeap
	running int  // tracked goroutines currently runnable
	parked  int  // tracked goroutines blocked in a simtime primitive
	inRun   bool // a Run call is active; time may advance
}

// NewSim returns a Sim whose clock reads start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Epoch1995 is a convenient simulation start time contemporary with the
// paper's deployment (mid-1995).
var Epoch1995 = time.Date(1995, time.July, 1, 9, 0, 0, 0, time.UTC)

// Run executes fn on the virtual clock, tracking the calling goroutine.
// It returns when fn returns. fn must join (via Queue) any goroutines whose
// completion it depends on: once Run returns, time stops advancing, so
// stragglers parked on the clock stay parked. Run calls must not nest, but
// sequential Run calls on the same Sim continue from the current time.
func (s *Sim) Run(fn func()) {
	s.mu.Lock()
	if s.inRun {
		s.mu.Unlock()
		panic("simtime: nested Sim.Run")
	}
	s.inRun = true
	s.running++
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		s.inRun = false
		s.running--
		s.mu.Unlock()
	}()
	fn()
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock.
func (s *Sim) Sleep(d time.Duration) {
	wake := make(chan struct{})
	s.mu.Lock()
	s.scheduleLocked(d, func() {
		s.unparkLocked()
		close(wake)
	})
	s.parkLocked()
	s.mu.Unlock()
	<-wake
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()

	fire := func() {
		s.running++
		go func() {
			fn()
			s.goExit()
		}()
	}
	ev := s.scheduleLocked(d, fire)
	t := &simTimer{s: s, fire: fire, ev: ev}
	return &Timer{stop: t.Stop, reset: t.Reset}
}

// Go implements Clock.
func (s *Sim) Go(fn func()) {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	go func() {
		fn()
		s.goExit()
	}()
}

// Pending reports the number of scheduled events, for tests and diagnostics.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.events {
		if !ev.stopped {
			n++
		}
	}
	return n
}

// goExit retires a tracked goroutine started by Go or AfterFunc.
func (s *Sim) goExit() {
	s.mu.Lock()
	s.running--
	s.maybeAdvanceLocked()
	s.mu.Unlock()
}

// scheduleLocked enqueues fire to run at now+d. The returned event can be
// cancelled until it fires. fire runs with s.mu held and must only touch
// Sim-internal state (counters, waiter lists, channels); it must not call
// public Sim or Queue methods.
func (s *Sim) scheduleLocked(d time.Duration, fire func()) *event {
	if d < 0 {
		d = 0
	}
	s.seq++
	ev := &event{when: s.now.Add(d), seq: s.seq, fire: fire}
	heap.Push(&s.events, ev)
	return ev
}

// parkLocked marks the calling goroutine as blocked and, if it was the last
// runnable one, advances virtual time. The caller must hold s.mu, must have
// already registered a wakeup (an event or a queue waiter), and must block
// on that wakeup after releasing s.mu.
func (s *Sim) parkLocked() {
	s.running--
	s.parked++
	if s.running < 0 {
		panic("simtime: park from a goroutine not tracked by this Sim")
	}
	s.maybeAdvanceLocked()
}

// unparkLocked accounts for one parked goroutine becoming runnable. It is
// called from event fires and queue hand-offs, with s.mu held.
func (s *Sim) unparkLocked() {
	s.running++
	s.parked--
}

// maybeAdvanceLocked fires events until some goroutine is runnable again.
func (s *Sim) maybeAdvanceLocked() {
	if !s.inRun {
		return // Run has finished; the simulation is frozen.
	}
	for s.running == 0 {
		ev := s.popLocked()
		if ev == nil {
			if s.parked > 0 {
				// Release the lock before panicking so deferred
				// cleanup (Sim.Run's bookkeeping, test recovery) can
				// acquire it during unwinding.
				msg := fmt.Sprintf(
					"simtime: deadlock at %s: %d goroutine(s) parked with no pending events",
					s.now.Format(time.RFC3339), s.parked)
				s.mu.Unlock()
				panic(msg)
			}
			return
		}
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		ev.fire()
	}
}

// popLocked removes and returns the earliest live event, or nil.
func (s *Sim) popLocked() *event {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if !ev.stopped {
			return ev
		}
	}
	return nil
}

// simTimer implements Timer.Stop/Reset for the Sim clock.
type simTimer struct {
	s    *Sim
	fire func()
	ev   *event
}

func (t *simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.ev.cancelLocked()
}

func (t *simTimer) Reset(d time.Duration) bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	active := t.ev.cancelLocked()
	t.ev = t.s.scheduleLocked(d, t.fire)
	return active
}

// event is a pending occurrence in the simulation.
type event struct {
	when    time.Time
	seq     int64
	fire    func()
	stopped bool
	index   int // heap index; -1 once popped
}

// cancelLocked marks the event dead. It reports whether it was still pending.
func (ev *event) cancelLocked() bool {
	if ev.stopped || ev.index < 0 {
		return false
	}
	ev.stopped = true
	return true
}

// eventHeap orders events by (when, seq); seq breaks ties FIFO.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
